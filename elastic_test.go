package sqloop_test

// The elastic-shard fault matrix: sharded executions over killable wire
// servers, with standby replicas taking over mid-query. Each cell kills
// shard 0 at a round boundary and shard 1 mid-exchange, across three
// algorithm families (MIN path sums, MIN label propagation, exact
// dyadic SUM), all three storage profiles and all three parallel modes
// — and the recovered result must match the undisturbed single-node
// run type-for-type and bit-for-bit. Rebalance conformance on embedded
// engines lives in internal/core; this file owns everything that needs
// an endpoint to die for real.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqloop"
	"sqloop/internal/driver"
)

const elasticSSSP = `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT Node, Distance FROM sssp ORDER BY Node`

const elasticCC = `
WITH ITERATIVE cc(Node, Label, Delta) AS (
  SELECT src, src + 0.0, src + 0.0
  FROM (SELECT src FROM biedges UNION SELECT dst AS src FROM biedges) AS alledges
  GROUP BY src
  ITERATE
  SELECT cc.Node,
         LEAST(cc.Label, cc.Delta),
         COALESCE(MIN(Neighbor.Delta + Links.weight), Infinity)
  FROM cc
  LEFT JOIN biedges AS Links ON cc.Node = Links.dst
  LEFT JOIN cc AS Neighbor ON Neighbor.Node = Links.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY cc.Node
  UNTIL 0 UPDATES
)
SELECT Node, Label FROM cc ORDER BY Node`

const elasticDAGRank = `
WITH ITERATIVE dagrank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.25
  FROM (SELECT src FROM dag UNION SELECT dst AS src FROM dag) AS alledges
  GROUP BY src
  ITERATE
  SELECT dagrank.Node,
         COALESCE(dagrank.Rank + dagrank.Delta, 0.25),
         COALESCE(0.5 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM dagrank
  LEFT JOIN dag AS IncomingEdges ON dagrank.Node = IncomingEdges.dst
  LEFT JOIN dagrank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY dagrank.Node
  UNTIL 0 UPDATES
)
SELECT Node, Rank + Delta AS Rank FROM dagrank ORDER BY Node`

// loadElasticFixtures creates the conformance relations through exec so
// a group broadcast replicates them to every shard and standby.
func loadElasticFixtures(t *testing.T, exec func(string) (*sqloop.Result, error)) {
	t.Helper()
	must := func(q string) {
		t.Helper()
		if _, err := exec(q); err != nil {
			t.Fatalf("fixture %q: %v", q, err)
		}
	}
	edges := [][3]any{
		{1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 2.0}, {4, 5, 1.0}, {5, 6, 3.0},
		{6, 2, 1.0}, {1, 7, 10.0}, {7, 6, 1.0}, {3, 8, 2.0}, {8, 9, 1.0},
		{9, 10, 1.0}, {10, 8, 4.0},
		{20, 21, 1.0}, {21, 22, 2.0}, {22, 20, 1.0},
	}
	must(`CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`)
	must(`CREATE TABLE biedges (src BIGINT, dst BIGINT, weight DOUBLE)`)
	must(`CREATE TABLE dag (src BIGINT, dst BIGINT, weight DOUBLE)`)
	var rows, birows []string
	nodes := map[int]bool{}
	for _, e := range edges {
		rows = append(rows, fmt.Sprintf("(%d, %d, %g)", e[0], e[1], e[2]))
		birows = append(birows,
			fmt.Sprintf("(%d, %d, 0.0)", e[0], e[1]),
			fmt.Sprintf("(%d, %d, 0.0)", e[1], e[0]))
		nodes[e[0].(int)], nodes[e[1].(int)] = true, true
	}
	// Self-loops keep synchronous min-propagation monotone (see the
	// sharded differential suite in internal/core).
	for n := range nodes {
		birows = append(birows, fmt.Sprintf("(%d, %d, 0.0)", n, n))
	}
	must(`INSERT INTO edges VALUES ` + strings.Join(rows, ", "))
	must(`INSERT INTO biedges VALUES ` + strings.Join(birows, ", "))
	dag := [][2]int{
		{1, 2}, {1, 3}, {2, 4}, {2, 5}, {3, 5}, {3, 6}, {4, 7}, {5, 7},
		{5, 8}, {6, 8}, {7, 9}, {7, 10}, {8, 10}, {9, 11}, {10, 11}, {10, 12},
	}
	outdeg := map[int]int{}
	for _, e := range dag {
		outdeg[e[0]]++
	}
	var dagRows []string
	for _, e := range dag {
		dagRows = append(dagRows, fmt.Sprintf("(%d, %d, %g)", e[0], e[1], 1.0/float64(outdeg[e[0]])))
	}
	must(`INSERT INTO dag VALUES ` + strings.Join(dagRows, ", "))
}

// wireShards starts n+standbys wire servers of the profile and opens a
// SQLoop per server with fast reconnect policies. Returned servers are
// index-aligned with the instances: servers[i] backs instances[i].
func wireShards(t *testing.T, profile string, n int, opts sqloop.Options) (servers []*sqloop.Server, instances []*sqloop.SQLoop) {
	t.Helper()
	for i := 0; i < n; i++ {
		srv, err := sqloop.Serve(profile, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		dsn := srv.DSN()
		driver.Configure(dsn, driver.Config{Retry: driver.RetryPolicy{
			MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
		}})
		t.Cleanup(func() { driver.Configure(dsn, driver.Config{}) })
		s, err := sqloop.Open(dsn, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		servers = append(servers, srv)
		instances = append(instances, s)
	}
	return servers, instances
}

// requireIdenticalResults compares two results for type-exact bit
// identity: columns, row count, row order and the Go type and value of
// every cell.
func requireIdenticalResults(t *testing.T, want, got *sqloop.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Columns, got.Columns) {
		t.Fatalf("columns differ: want %v, got %v", want.Columns, got.Columns)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts differ: want %d, got %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			w, g := want.Rows[i][j], got.Rows[i][j]
			if reflect.TypeOf(w) != reflect.TypeOf(g) || !reflect.DeepEqual(w, g) {
				t.Fatalf("row %d col %d: want %T(%v), got %T(%v)", i, j, w, w, g, g)
			}
		}
	}
}

// singleNodeWireReference executes the query undisturbed on one wire
// server in ModeSingle (same transport, same type decoding as the
// faulted group runs).
func singleNodeWireReference(t *testing.T, profile, query string) *sqloop.Result {
	t.Helper()
	_, inst := wireShards(t, profile, 1, sqloop.Options{Mode: sqloop.ModeSingle})
	ctx := context.Background()
	loadElasticFixtures(t, func(q string) (*sqloop.Result, error) { return inst[0].Exec(ctx, q) })
	res, err := inst[0].Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestElasticFaultMatrix is the headline conformance suite: for every
// algorithm × profile × mode cell, a 2-shard group with 2 standby
// replicas runs the fix point while shard 0's server dies at the first
// round boundary and shard 1's server dies mid-exchange during the
// replay. Both failovers must complete and the final result must be
// type-exact identical to the undisturbed single-node run.
func TestElasticFaultMatrix(t *testing.T) {
	queries := []struct{ name, query string }{
		{"sssp", elasticSSSP},
		{"cc", elasticCC},
		{"dagrank", elasticDAGRank},
	}
	modes := []struct {
		name string
		mode sqloop.Mode
	}{
		{"sync", sqloop.ModeSync},
		{"async", sqloop.ModeAsync},
		{"asyncp", sqloop.ModeAsyncPrio},
	}
	for _, profile := range sqloop.Profiles() {
		for _, q := range queries {
			for _, m := range modes {
				t.Run(fmt.Sprintf("%s/%s/%s", profile, q.name, m.name), func(t *testing.T) {
					t.Parallel()
					want := singleNodeWireReference(t, profile, q.query)

					opts := sqloop.Options{Mode: m.mode}
					servers, instances := wireShards(t, profile, 4, opts)

					var boundaryKill, exchangeKill atomic.Bool
					rec := &sqloop.Recorder{}
					observer := sqloop.MultiTracer(rec, sqloop.FuncTracer(func(ev sqloop.Event) {
						switch e := ev.(type) {
						case sqloop.RoundEndEvent:
							// Kill shard 0 at the first round boundary.
							if e.Round == 1 && boundaryKill.CompareAndSwap(false, true) {
								_ = servers[0].Close()
							}
						case sqloop.ShardExchangeEvent:
							// Kill shard 1 mid-exchange once the replay is past
							// the checkpointed cut.
							if e.Round >= 2 && boundaryKill.Load() &&
								exchangeKill.CompareAndSwap(false, true) {
								_ = servers[1].Close()
							}
						}
					}))
					opts.Observer = observer
					opts.Checkpoint = sqloop.CheckpointOptions{
						Dir: t.TempDir(), EveryRounds: 1, RetryBackoff: time.Millisecond,
					}
					group, err := sqloop.NewElasticShardGroup(instances[:2], sqloop.ShardGroupOptions{
						Replicas:     instances[2:],
						ProbeTimeout: time.Second,
					}, opts)
					if err != nil {
						t.Fatal(err)
					}
					ctx := context.Background()
					loadElasticFixtures(t, func(qq string) (*sqloop.Result, error) {
						return group.Exec(ctx, qq)
					})

					res, err := group.Exec(ctx, q.query)
					if err != nil {
						t.Fatalf("query did not survive the shard kills: %v", err)
					}
					if !boundaryKill.Load() {
						t.Fatal("the round-boundary kill never fired")
					}
					requireIdenticalResults(t, want, res)
					if res.Stats.Recoveries < 1 {
						t.Errorf("Recoveries = %d, want >= 1", res.Stats.Recoveries)
					}
					if res.Stats.Failovers < 1 {
						t.Errorf("Stats.Failovers = %d, want >= 1", res.Stats.Failovers)
					}
					if n := rec.Count("shard_failover"); n != res.Stats.Failovers {
						t.Errorf("shard_failover events = %d, stats say %d", n, res.Stats.Failovers)
					}
					snap := group.Metrics().Snapshot()
					if n := snap.Counters["sqloop_shard_failovers_total"]; n != int64(res.Stats.Failovers) {
						t.Errorf("sqloop_shard_failovers_total = %d, want %d", n, res.Stats.Failovers)
					}
					if group.Epoch() < int64(res.Stats.Failovers) {
						t.Errorf("Epoch = %d, want >= %d", group.Epoch(), res.Stats.Failovers)
					}
					if rec.Count("restore") < 1 {
						t.Error("no restore event: failover did not replay from the checkpoint")
					}
				})
			}
		}
	}
}

// TestElasticFailoverExhausted pins the graceful-degradation contract:
// with no standby replicas left, a killed shard surfaces a retry-
// exhausted error — never a panic, never a wrong result.
func TestElasticFailoverExhausted(t *testing.T) {
	opts := sqloop.Options{Mode: sqloop.ModeSync}
	servers, instances := wireShards(t, "pgsim", 2, opts)

	var killed atomic.Bool
	rec := &sqloop.Recorder{}
	opts.Observer = sqloop.MultiTracer(rec, sqloop.FuncTracer(func(ev sqloop.Event) {
		if e, ok := ev.(sqloop.RoundEndEvent); ok && e.Round == 1 &&
			killed.CompareAndSwap(false, true) {
			_ = servers[1].Close()
		}
	}))
	opts.Checkpoint = sqloop.CheckpointOptions{
		Dir: t.TempDir(), EveryRounds: 1, RetryBackoff: time.Millisecond, MaxRecoveries: 2,
	}
	group, err := sqloop.NewElasticShardGroup(instances, sqloop.ShardGroupOptions{
		ProbeTimeout: 500 * time.Millisecond,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	loadElasticFixtures(t, func(q string) (*sqloop.Result, error) { return group.Exec(ctx, q) })
	if _, err := group.Exec(ctx, elasticSSSP); err == nil {
		t.Fatal("a dead shard with no standbys must fail the execution")
	}
	if rec.Count("retry") < 1 {
		t.Errorf("retry events = %d, want >= 1", rec.Count("retry"))
	}
	if rec.Count("shard_failover") != 0 {
		t.Errorf("shard_failover events = %d, want 0 without standbys", rec.Count("shard_failover"))
	}
}

// TestRouterElasticRace races Router.RemoveTarget and Router.AddTarget
// against an in-flight ShardGroup execution. Removing a target closes
// its instance under the group, which must surface as a clean error or
// a completed result — never a panic (run under -race).
func TestRouterElasticRace(t *testing.T) {
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			r := sqloop.NewRouter()
			defer r.Close()
			for i := 0; i < 3; i++ {
				if err := r.AddEmbeddedTarget(fmt.Sprintf("shard%d", i), "pgsim",
					sqloop.Options{Mode: sqloop.ModeSync}); err != nil {
					t.Fatal(err)
				}
			}
			group, err := r.ShardGroup(sqloop.Options{Mode: sqloop.ModeSync},
				"shard0", "shard1", "shard2")
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			loadElasticFixtures(t, func(q string) (*sqloop.Result, error) {
				return group.Exec(ctx, q)
			})

			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				// Either outcome is legal; panicking is not.
				_, _ = group.Exec(ctx, elasticSSSP)
			}()
			go func() {
				defer wg.Done()
				_ = r.RemoveTarget("shard2")
				_ = r.AddEmbeddedTarget("shard3", "pgsim", sqloop.Options{Mode: sqloop.ModeSync})
			}()
			wg.Wait()
		})
	}
}
