package sqloop

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Router holds connections to several target databases and redirects
// queries on demand — the deployment sketched in the paper's §I: "it is
// possible to create connections with multiple RDBMSs on different
// machines by specifying the URL of each target database engine and use
// SQLoop to redirect the queries on demand."
type Router struct {
	mu      sync.RWMutex
	targets map[string]*SQLoop
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{targets: make(map[string]*SQLoop)}
}

// AddTarget connects a named target by DSN.
func (r *Router) AddTarget(name, dsn string, opts Options) error {
	s, err := Open(dsn, opts)
	if err != nil {
		return err
	}
	return r.AddInstance(name, s)
}

// AddEmbeddedTarget spins up an embedded engine as a named target.
func (r *Router) AddEmbeddedTarget(name, profile string, opts Options) error {
	s, err := OpenEmbedded(profile, opts, false)
	if err != nil {
		return err
	}
	return r.AddInstance(name, s)
}

// AddInstance registers an already-open SQLoop under name. The router
// takes ownership (Close closes it).
func (r *Router) AddInstance(name string, s *SQLoop) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.targets[name]; dup {
		_ = s.Close()
		return fmt.Errorf("sqloop: target %q already registered", name)
	}
	r.targets[name] = s
	return nil
}

// Target returns the named instance.
func (r *Router) Target(name string) (*SQLoop, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.targets[name]
	if !ok {
		return nil, fmt.Errorf("sqloop: unknown target %q", name)
	}
	return s, nil
}

// Targets lists registered target names, sorted.
func (r *Router) Targets() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.targets))
	for n := range r.targets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec redirects one statement (iterative CTEs included) to the named
// target.
func (r *Router) Exec(ctx context.Context, target, query string) (*Result, error) {
	s, err := r.Target(target)
	if err != nil {
		return nil, err
	}
	return s.Exec(ctx, query)
}

// ExecAll runs the same statement on every target, returning results by
// target name; it stops at the first error.
func (r *Router) ExecAll(ctx context.Context, query string) (map[string]*Result, error) {
	out := make(map[string]*Result)
	for _, name := range r.Targets() {
		res, err := r.Exec(ctx, name, query)
		if err != nil {
			return nil, fmt.Errorf("target %s: %w", name, err)
		}
		out[name] = res
	}
	return out, nil
}

// Close closes every target, returning the first error.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, s := range r.targets {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.targets = make(map[string]*SQLoop)
	return first
}
