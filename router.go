package sqloop

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sqloop/internal/core"
)

// Router holds connections to several target databases and redirects
// queries on demand — the deployment sketched in the paper's §I: "it is
// possible to create connections with multiple RDBMSs on different
// machines by specifying the URL of each target database engine and use
// SQLoop to redirect the queries on demand."
type Router struct {
	mu      sync.RWMutex
	targets map[string]*SQLoop
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{targets: make(map[string]*SQLoop)}
}

// AddTarget connects a named target by DSN.
func (r *Router) AddTarget(name, dsn string, opts Options) error {
	s, err := Open(dsn, opts)
	if err != nil {
		return err
	}
	return r.AddInstance(name, s)
}

// AddEmbeddedTarget spins up an embedded engine as a named target.
func (r *Router) AddEmbeddedTarget(name, profile string, opts Options) error {
	s, err := OpenEmbedded(profile, opts)
	if err != nil {
		return err
	}
	return r.AddInstance(name, s)
}

// AddInstance registers an already-open SQLoop under name. The router
// takes ownership (Close closes it).
func (r *Router) AddInstance(name string, s *SQLoop) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.targets[name]; dup {
		_ = s.Close()
		return fmt.Errorf("sqloop: target %q already registered", name)
	}
	r.targets[name] = s
	return nil
}

// RemoveTarget closes the named target and unregisters it. In-flight
// statements on the target finish or fail per database/sql semantics
// (Close waits for checked-out connections); new Exec calls for the
// name fail with unknown target.
func (r *Router) RemoveTarget(name string) error {
	r.mu.Lock()
	s, ok := r.targets[name]
	if ok {
		delete(r.targets, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("sqloop: unknown target %q", name)
	}
	if err := s.Close(); err != nil {
		return fmt.Errorf("sqloop: closing target %q: %w", name, err)
	}
	return nil
}

// ShardGroup builds a scale-out execution group from named targets, in
// the order given (target i executes hash partition i). The group
// borrows the targets — Router.Close still owns them — so closing the
// group never closes router targets.
func (r *Router) ShardGroup(opts Options, names ...string) (*ShardGroup, error) {
	shards := make([]*SQLoop, len(names))
	for i, name := range names {
		s, err := r.Target(name)
		if err != nil {
			return nil, err
		}
		shards[i] = s
	}
	return core.NewShardGroup(shards, opts, false)
}

// ElasticShardGroup builds a scale-out group from named shard targets
// with named standby targets as failover/rebalance replicas. Both
// lists are borrowed from the router — Router.Close still owns them —
// and any replicas already present in gopts.Replicas keep priority
// over the named standbys.
func (r *Router) ElasticShardGroup(gopts ShardGroupOptions, opts Options, names, standbys []string) (*ShardGroup, error) {
	resolve := func(names []string) ([]*SQLoop, error) {
		out := make([]*SQLoop, len(names))
		for i, name := range names {
			s, err := r.Target(name)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	}
	shards, err := resolve(names)
	if err != nil {
		return nil, err
	}
	repl, err := resolve(standbys)
	if err != nil {
		return nil, err
	}
	gopts.Replicas = append(gopts.Replicas, repl...)
	return core.NewElasticShardGroup(shards, gopts, opts, false)
}

// Target returns the named instance.
func (r *Router) Target(name string) (*SQLoop, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.targets[name]
	if !ok {
		return nil, fmt.Errorf("sqloop: unknown target %q", name)
	}
	return s, nil
}

// Targets lists registered target names, sorted.
func (r *Router) Targets() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.targets))
	for n := range r.targets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec redirects one statement (iterative CTEs included) to the named
// target.
func (r *Router) Exec(ctx context.Context, target, query string) (*Result, error) {
	s, err := r.Target(target)
	if err != nil {
		return nil, err
	}
	return s.Exec(ctx, query)
}

// ExecAll runs the same statement on every target concurrently (each
// target is an independent database, so there is nothing to serialize).
// It returns results by target name plus a per-target error map; errs is
// nil when every target succeeded. A failed target has no entry in the
// result map, so partial results stay usable.
func (r *Router) ExecAll(ctx context.Context, query string) (map[string]*Result, map[string]error) {
	names := r.Targets()
	type outcome struct {
		name string
		res  *Result
		err  error
	}
	ch := make(chan outcome, len(names))
	for _, name := range names {
		go func(name string) {
			res, err := r.Exec(ctx, name, query)
			ch <- outcome{name: name, res: res, err: err}
		}(name)
	}
	out := make(map[string]*Result, len(names))
	var errs map[string]error
	for range names {
		o := <-ch
		if o.err != nil {
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[o.name] = o.err
			continue
		}
		out[o.name] = o.res
	}
	return out, errs
}

// Close closes every target, joining all errors.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for name, s := range r.targets {
		if err := s.Close(); err != nil {
			errs = append(errs, fmt.Errorf("target %s: %w", name, err))
		}
	}
	r.targets = make(map[string]*SQLoop)
	return errors.Join(errs...)
}
