module sqloop

go 1.22
