package sqloop_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sqloop"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/serve"
	"sqloop/internal/wire"
)

// prTenantQuery is the embedded-suite PageRank with a caller-chosen CTE
// name, so two tenants can iterate concurrently on one shared server
// without their working tables colliding.
func prTenantQuery(name string, iters int) string {
	return fmt.Sprintf(`
WITH ITERATIVE %[1]s(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT %[1]s.Node,
         COALESCE(%[1]s.Rank + %[1]s.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM %[1]s
  LEFT JOIN edges AS IncomingEdges ON %[1]s.Node = IncomingEdges.dst
  LEFT JOIN %[1]s AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY %[1]s.Node
  UNTIL %[2]d ITERATIONS
)
SELECT COUNT(*) FROM %[1]s`, name, iters)
}

// slowPoolServer starts a pooled wire server whose engine charges a
// fixed latency per statement, making session occupancy deterministic.
func slowPoolServer(t *testing.T, profile string, perStmt time.Duration, pool serve.Config) (srv *wire.Server, dsn string) {
	t.Helper()
	cfg, err := engine.Profile(profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cost = &engine.CostModel{PerStatement: perStmt, Scale: 1}
	eng := engine.New(cfg)
	srv = wire.NewServer(eng)
	srv.EnablePool(pool)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, driver.TCPDSN(addr)
}

// roundLog collects (tenant, round) RoundEnd observations from several
// concurrently executing loops into one timeline.
type roundLog struct {
	mu      sync.Mutex
	tenants []string
	rounds  []int
}

func (l *roundLog) tracer(tenant string, slow time.Duration) sqloop.Tracer {
	return sqloop.FuncTracer(func(e sqloop.Event) {
		if re, ok := e.(sqloop.RoundEndEvent); ok {
			l.mu.Lock()
			l.tenants = append(l.tenants, tenant)
			l.rounds = append(l.rounds, re.Round)
			l.mu.Unlock()
			if slow > 0 {
				time.Sleep(slow)
			}
		}
	})
}

// stats summarises the merged timeline: per-tenant event counts, the
// number of tenant switches, and the longest same-tenant run.
func (l *roundLog) stats() (counts map[string]int, switches, maxRun int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	counts = make(map[string]int)
	run := 0
	for i, tn := range l.tenants {
		counts[tn]++
		if i > 0 && tn != l.tenants[i-1] {
			switches++
			run = 1
		} else {
			run++
		}
		if run > maxRun {
			maxRun = run
		}
	}
	return counts, switches, maxRun
}

// TestSchedulerFairRoundInterleave proves the embedded fairness
// contract: two iterative executions sharing a one-slot RoundScheduler
// hand the slot over at every round boundary, so their per-round trace
// events strictly interleave instead of running back to back.
func TestSchedulerFairRoundInterleave(t *testing.T) {
	const rounds = 6
	sched := sqloop.NewRoundScheduler(1, 0)
	log := &roundLog{}

	open := func(tenant string) *sqloop.SQLoop {
		s, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{
			Mode:      sqloop.ModeSingle,
			Scheduler: sched,
			Tenant:    tenant,
			Observer:  log.tracer(tenant, 2*time.Millisecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		if _, err := sqloop.LoadDataset(s, "google-web", 150, 1); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open("a"), open("b")

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, s := range []*sqloop.SQLoop{a, b} {
		wg.Add(1)
		go func(i int, s *sqloop.SQLoop) {
			defer wg.Done()
			_, errs[i] = s.Exec(ctx, prTenantQuery("pr", rounds))
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("execution %d: %v", i, err)
		}
	}

	counts, switches, maxRun := log.stats()
	if counts["a"] != rounds || counts["b"] != rounds {
		t.Fatalf("round counts = %v, want %d each", counts, rounds)
	}
	// Strict alternation allows a same-tenant run of 2 only at the very
	// start (before the second execution was admitted); anything longer
	// means a tenant monopolised the slot across a round boundary.
	if maxRun > 2 {
		t.Fatalf("longest same-tenant run = %d (timeline %v), want <= 2", maxRun, log.tenants)
	}
	if switches < 2*rounds-4 {
		t.Fatalf("only %d tenant switches in %v, want >= %d", switches, log.tenants, 2*rounds-4)
	}
}

// TestServeFairRoundInterleave proves the same property across the
// wire: one single-session server, two tenants' client-side round
// loops — per-tenant round-robin admission makes their RoundEnd events
// interleave rather than letting the first loop drain completely.
func TestServeFairRoundInterleave(t *testing.T) {
	const rounds = 5
	_, base := slowPoolServer(t, "pgsim", 4*time.Millisecond,
		serve.Config{MaxSessions: 1, QueueDepth: 64})

	loader, err := sqloop.Open(base, sqloop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqloop.LoadDataset(loader, "google-web", 150, 1); err != nil {
		t.Fatal(err)
	}
	if err := loader.Close(); err != nil {
		t.Fatal(err)
	}

	log := &roundLog{}
	open := func(tenant string) *sqloop.SQLoop {
		s, err := sqloop.Open(sqloop.TenantDSN(base, tenant, 0), sqloop.Options{
			Mode:     sqloop.ModeSingle,
			Observer: log.tracer(tenant, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	a, b := open("a"), open("b")

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	queries := []string{prTenantQuery("ranka", rounds), prTenantQuery("rankb", rounds)}
	for i, s := range []*sqloop.SQLoop{a, b} {
		wg.Add(1)
		go func(i int, s *sqloop.SQLoop, q string) {
			defer wg.Done()
			_, errs[i] = s.Exec(ctx, q)
		}(i, s, queries[i])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("execution %d: %v", i, err)
		}
	}

	counts, switches, _ := log.stats()
	if counts["a"] != rounds || counts["b"] != rounds {
		t.Fatalf("round counts = %v, want %d each", counts, rounds)
	}
	// The loops' statements are multiplexed per tenant, so the rounds
	// must overlap: several switches, not one block after the other.
	if switches < 3 {
		t.Fatalf("only %d tenant switches in %v, want >= 3 (rounds did not interleave)", switches, log.tenants)
	}
}

// TestServeAdmissionReject drives a saturated one-session server on
// every backend and checks the overflow request surfaces as a typed
// admission error through database/sql, with the tenant attached.
func TestServeAdmissionReject(t *testing.T) {
	for _, profile := range sqloop.Profiles() {
		t.Run(profile, func(t *testing.T) {
			_, base := slowPoolServer(t, profile, 250*time.Millisecond,
				serve.Config{MaxSessions: 1, QueueDepth: 1})
			dsn := sqloop.TenantDSN(base, "acme", 0)
			// Admission rejections are retried transparently by default;
			// pin a single attempt so the rejection reaches the test.
			driver.Configure(dsn, driver.Config{Retry: driver.RetryPolicy{
				MaxAttempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
			}})
			defer driver.Configure(dsn, driver.Config{})

			s, err := sqloop.Open(dsn, sqloop.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			db := s.DB()

			// First statement occupies the session for 250ms, the second
			// fills the depth-1 queue, the third must be turned away.
			errs := make([]error, 3)
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					time.Sleep(time.Duration(i) * 60 * time.Millisecond)
					_, errs[i] = db.ExecContext(context.Background(),
						fmt.Sprintf("CREATE TABLE staged_%d (a INTEGER)", i))
				}(i)
			}
			wg.Wait()

			var rejected, succeeded int
			for _, err := range errs {
				switch {
				case err == nil:
					succeeded++
				case errors.Is(err, sqloop.ErrAdmissionRejected):
					rejected++
					var ae *sqloop.AdmissionError
					if !errors.As(err, &ae) {
						t.Fatalf("rejection %v does not unwrap to *AdmissionError", err)
					}
					if ae.Tenant != "acme" {
						t.Fatalf("rejection tenant = %q, want acme", ae.Tenant)
					}
				default:
					t.Fatalf("unexpected error class: %v", err)
				}
			}
			if rejected == 0 {
				t.Fatalf("no admission rejection among %v", errs)
			}
			if succeeded == 0 {
				t.Fatalf("no statement succeeded among %v", errs)
			}
		})
	}
}

// TestDeadlineExpiresMidRound checks deadline propagation on every
// backend: a context deadline shorter than the fix point cuts the
// iterative loop at a statement boundary mid-round-loop and surfaces
// as context.DeadlineExceeded, leaving the instance usable.
func TestDeadlineExpiresMidRound(t *testing.T) {
	for _, profile := range sqloop.Profiles() {
		t.Run(profile, func(t *testing.T) {
			log := &roundLog{}
			s, err := sqloop.OpenEmbedded(profile, sqloop.Options{
				Mode: sqloop.ModeSingle,
				// Each round costs >= 5ms, so the 60ms deadline expires a
				// few rounds into the 1000-iteration loop.
				Observer: log.tracer("t", 5*time.Millisecond),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := sqloop.LoadDataset(s, "google-web", 120, 1); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
			defer cancel()
			_, err = s.Exec(ctx, prTenantQuery("deadpr", 1000))
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			counts, _, _ := log.stats()
			if counts["t"] == 0 || counts["t"] >= 1000 {
				t.Fatalf("deadline cut after %d rounds, want mid-loop", counts["t"])
			}

			// The session survives the expired execution.
			if _, err := s.Exec(context.Background(), prTenantQuery("alivepr", 2)); err != nil {
				t.Fatalf("instance unusable after deadline: %v", err)
			}
		})
	}
}

// TestServeDeadlineExpiresMidRound is the wire-protocol variant: the
// client context deadline rides each request frame, the server aborts
// the in-flight statement, and the client loop stops mid-round with
// the canonical sentinel.
func TestServeDeadlineExpiresMidRound(t *testing.T) {
	_, base := slowPoolServer(t, "pgsim", 3*time.Millisecond, serve.Config{})

	s, err := sqloop.Open(sqloop.TenantDSN(base, "t", 0), sqloop.Options{Mode: sqloop.ModeSingle})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := sqloop.LoadDataset(s, "google-web", 120, 1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	_, err = s.Exec(ctx, prTenantQuery("deadpr", 1000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// The connection survives; a bounded loop completes afterwards.
	if _, err := s.Exec(context.Background(), prTenantQuery("alivepr", 2)); err != nil {
		t.Fatalf("connection unusable after deadline: %v", err)
	}
}
