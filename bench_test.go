// Benchmarks mapping one-to-one onto the paper's evaluation (§VI): one
// benchmark per figure series, at smoke scale so `go test -bench=.`
// finishes quickly. cmd/sqloopbench regenerates the full figures with
// the calibrated cost model; these benches track relative regressions.
//
// Naming: BenchmarkFig<N><Workload>_<Method>[_<Engine>].
package sqloop_test

import (
	"context"
	"testing"

	"sqloop/internal/bench"
	"sqloop/internal/core"
)

// benchScale keeps testing.B iterations affordable.
const (
	benchPRNodes   = 800
	benchPRIters   = 10
	benchSSSPNodes = 800
	benchDQNodes   = 1000
	benchParts     = 8
)

func runBench(b *testing.B, cfg bench.Config, query string) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		m, err := bench.Run(ctx, cfg, query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Rounds), "rounds")
		b.ReportMetric(float64(m.Work.Statements), "stmts")
	}
}

func prConfig(mode core.Mode, threads int, profile string) bench.Config {
	return bench.Config{
		Profile: profile, Mode: mode, Threads: threads, Partitions: benchParts,
		Dataset: "google-web", Nodes: benchPRNodes, Seed: 42,
		Priority: bench.PendingRankPriority,
	}
}

func ssspConfig(mode core.Mode, threads int, profile string) bench.Config {
	return bench.Config{
		Profile: profile, Mode: mode, Threads: threads, Partitions: benchParts,
		Dataset: "twitter-ego", Nodes: benchSSSPNodes, Seed: 42,
		Priority: bench.MinFrontierPriority,
	}
}

func dqConfig(mode core.Mode, threads int, profile string) bench.Config {
	return bench.Config{
		Profile: profile, Mode: mode, Threads: threads, Partitions: benchParts,
		Dataset: "berkstan-web", Nodes: benchDQNodes, Seed: 42,
		Priority: bench.MinFrontierPriority,
	}
}

// --- Fig 4: single-thread methods, per engine ---

func BenchmarkFig4PR_Sync_PG(b *testing.B) {
	runBench(b, prConfig(core.ModeSync, 1, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig4PR_Async_PG(b *testing.B) {
	runBench(b, prConfig(core.ModeAsync, 1, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig4PR_AsyncP_PG(b *testing.B) {
	runBench(b, prConfig(core.ModeAsyncPrio, 1, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig4PR_Sync_My(b *testing.B) {
	runBench(b, prConfig(core.ModeSync, 1, "mysim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig4PR_Sync_Maria(b *testing.B) {
	runBench(b, prConfig(core.ModeSync, 1, "mariasim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig4SSSP_Sync_PG(b *testing.B) {
	runBench(b, ssspConfig(core.ModeSync, 1, "pgsim"), bench.SSSPQuery(100))
}

func BenchmarkFig4SSSP_Async_PG(b *testing.B) {
	runBench(b, ssspConfig(core.ModeAsync, 1, "pgsim"), bench.SSSPQuery(100))
}

func BenchmarkFig4SSSP_AsyncP_PG(b *testing.B) {
	runBench(b, ssspConfig(core.ModeAsyncPrio, 1, "pgsim"), bench.SSSPQuery(100))
}

func BenchmarkFig4DQ_Sync_PG(b *testing.B) {
	runBench(b, dqConfig(core.ModeSync, 1, "pgsim"), bench.DQQuery(1, 100))
}

func BenchmarkFig4DQ_Async_PG(b *testing.B) {
	runBench(b, dqConfig(core.ModeAsync, 1, "pgsim"), bench.DQQuery(1, 100))
}

func BenchmarkFig4DQ_AsyncP_PG(b *testing.B) {
	runBench(b, dqConfig(core.ModeAsyncPrio, 1, "pgsim"), bench.DQQuery(1, 100))
}

// --- Fig 5: thread scaling (representative points of the sweep) ---

func BenchmarkFig5PR_Async_1Thread(b *testing.B) {
	runBench(b, prConfig(core.ModeAsync, 1, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig5PR_Async_4Threads(b *testing.B) {
	runBench(b, prConfig(core.ModeAsync, 4, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig5SSSP_Sync_1Thread(b *testing.B) {
	runBench(b, ssspConfig(core.ModeSync, 1, "pgsim"), bench.SSSPQuery(100))
}

func BenchmarkFig5SSSP_Sync_4Threads(b *testing.B) {
	runBench(b, ssspConfig(core.ModeSync, 4, "pgsim"), bench.SSSPQuery(100))
}

// --- Fig 6: SQL-script baseline vs SQLoop ---

func BenchmarkFig6PR_Script_PG(b *testing.B) {
	cfg := prConfig(core.ModeSingle, 4, "pgsim")
	cfg.DisableMaterialization = true
	runBench(b, cfg, bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig6PR_Async4_PG(b *testing.B) {
	runBench(b, prConfig(core.ModeAsync, 4, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkFig6DQ_Script_PG(b *testing.B) {
	cfg := dqConfig(core.ModeSingle, 4, "pgsim")
	cfg.DisableMaterialization = true
	runBench(b, cfg, bench.DQQuery(1, 100))
}

func BenchmarkFig6DQ_Async4_PG(b *testing.B) {
	runBench(b, dqConfig(core.ModeAsync, 4, "pgsim"), bench.DQQuery(1, 100))
}

// --- Ablations (DESIGN.md design choices) ---

// Materialized join on vs off (§V-B): the paper's claim that reusing the
// constant join part "greatly improves performance".
func BenchmarkAblationMaterializationOn(b *testing.B) {
	runBench(b, prConfig(core.ModeSync, 2, "pgsim"), bench.PageRankQuery(benchPRIters))
}

func BenchmarkAblationMaterializationOff(b *testing.B) {
	cfg := prConfig(core.ModeSync, 2, "pgsim")
	cfg.DisableMaterialization = true
	runBench(b, cfg, bench.PageRankQuery(benchPRIters))
}

// Partition-count sensitivity (§V-B: "the more partitions, the faster
// intermediate results propagate").
func BenchmarkAblationPartitions4(b *testing.B) {
	cfg := dqConfig(core.ModeAsync, 2, "pgsim")
	cfg.Partitions = 4
	runBench(b, cfg, bench.DQQuery(1, 100))
}

func BenchmarkAblationPartitions32(b *testing.B) {
	cfg := dqConfig(core.ModeAsync, 2, "pgsim")
	cfg.Partitions = 32
	runBench(b, cfg, bench.DQQuery(1, 100))
}
