// Command sqloopcli runs SQL — including WITH RECURSIVE and the paper's
// WITH ITERATIVE extension — through SQLoop against an embedded engine
// or a remote sqlsimd server.
//
//	sqloopcli -e 'SELECT 1 + 1'
//	sqloopcli -mode asyncp -dataset google-web -nodes 2000 -e "$(cat pagerank.sql)"
//	sqloopcli -dsn sqlsim://tcp/host:5499 -f script.sql
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sqloop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		dsn       = flag.String("dsn", "", "target DSN (empty: embedded engine)")
		profile   = flag.String("profile", "pgsim", "embedded engine profile")
		modeName  = flag.String("mode", "auto", "execution mode: auto, single, sync, async, asyncp")
		threads   = flag.Int("threads", 0, "worker threads (0: half the CPUs)")
		shards    = flag.Int("shards", 1, "embedded engine endpoints; >1 runs iterative CTEs scale-out across a shard group")
		replicas  = flag.Int("replicas", 0, "standby replica endpoints for the shard group (failover + rebalance headroom)")
		rebalance = flag.String("rebalance", "", "scheduled online repartitions, 'afterRound:shards[,afterRound:shards...]' (e.g. '3:4' grows 2 shards to 4 after round 3)")
		handoff   = flag.Bool("handoff", false, "asyncp shard groups: enable straggler work handoff")
		parts     = flag.Int("partitions", 0, "hash partitions (0: 256)")
		prio      = flag.String("priority", "", "AsyncP priority query ($PART placeholder)")
		exec      = flag.String("e", "", "SQL to execute")
		file      = flag.String("f", "", "file with SQL script ('-' for stdin)")
		dataset   = flag.String("dataset", "", "preload a synthetic dataset: google-web, twitter-ego, berkstan-web")
		nodes     = flag.Int64("nodes", 2000, "dataset size when -dataset is set")
		maxRows   = flag.Int("max-rows", 50, "result rows to print")
		explain   = flag.Bool("explain", false, "analyze the statement instead of executing it")
		analyze   = flag.Bool("analyze", false, "execute the statement and print its per-round profile (EXPLAIN ANALYZE)")
		metrics   = flag.Bool("metrics", false, "print the metrics snapshot after execution")
		cost      = flag.Bool("cost", false, "embedded engine: enable the calibrated latency model")
		script    = flag.Bool("gen-script", false, "print the hand-written SQL script equivalent of an iterative CTE")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for round-boundary snapshots (enables crash recovery)")
		ckptN     = flag.Int("checkpoint-every", 2, "checkpoint every N rounds when -checkpoint-dir is set")
		noCache   = flag.Bool("no-stmt-cache", false, "disable the statement/plan cache (escape hatch; parses every statement from text)")
		noCompile = flag.Bool("no-compile", false, "disable the expression compiler (escape hatch; interprets expressions from their ASTs)")
		noVec     = flag.Bool("no-vectorize", false, "disable vectorized batch execution (escape hatch; compiled programs run row-at-a-time)")
		workers   = flag.Int("workers", 0, "embedded engine: intra-query parallelism degree (0: one per CPU, 1: serial)")
		noPar     = flag.Bool("no-parallel", false, "disable morsel-driven intra-query parallelism (escape hatch; queries run serially)")
	)
	flag.Parse()

	mode, err := sqloop.ParseMode(*modeName)
	if err != nil {
		return err
	}
	opts := sqloop.Options{Mode: mode, Threads: *threads, Partitions: *parts, PriorityQuery: *prio}
	if *ckptDir != "" {
		opts.Checkpoint = sqloop.CheckpointOptions{Dir: *ckptDir, EveryRounds: *ckptN}
	}
	if *noCache {
		opts.DisableStmtCache = true
	}
	if *noCompile {
		opts.DisableExprCompile = true
	}
	if *noVec {
		opts.DisableVectorize = true
	}
	if *noPar {
		opts.DisableParallel = true
	}
	opts.Workers = *workers

	steps, err := parseRebalance(*rebalance)
	if err != nil {
		return err
	}
	gopts := sqloop.ShardGroupOptions{Rebalance: steps, Handoff: *handoff}

	var db *sqloop.SQLoop
	var group *sqloop.ShardGroup
	if *dsn != "" {
		if *shards > 1 {
			return fmt.Errorf("-shards needs the embedded engine; omit -dsn or use a Router shard group programmatically")
		}
		db, err = sqloop.Open(*dsn, opts)
	} else {
		var extra []sqloop.OpenOption
		if *cost {
			extra = append(extra, sqloop.WithCostModel())
		}
		if *noCache {
			extra = append(extra, sqloop.WithoutStmtCache())
		}
		if *noCompile {
			extra = append(extra, sqloop.WithoutExprCompile())
		}
		if *noVec {
			extra = append(extra, sqloop.WithoutVectorize())
		}
		if *noPar {
			extra = append(extra, sqloop.WithoutParallel())
		}
		if *workers != 0 {
			extra = append(extra, sqloop.WithWorkers(*workers))
		}
		if *shards > 1 {
			group, err = sqloop.OpenEmbeddedElasticShards(*profile, *shards, *replicas, gopts, opts, extra...)
			if err == nil {
				db = group.Shard(0)
			}
		} else {
			if *replicas > 0 || len(steps) > 0 || *handoff {
				return fmt.Errorf("-replicas/-rebalance/-handoff need a shard group; set -shards > 1")
			}
			db, err = sqloop.OpenEmbedded(*profile, opts, extra...)
		}
	}
	if err != nil {
		return err
	}
	if group != nil {
		defer group.Close()
	} else {
		defer db.Close()
	}

	if *dataset != "" {
		// A shard group keeps base relations whole on every endpoint; only
		// the iterative working table is hash-partitioned.
		var n int
		for _, target := range dataTargets(db, group) {
			n, err = sqloop.LoadDataset(target, *dataset, *nodes, 42)
			if err != nil {
				return err
			}
		}
		fmt.Printf("loaded %s: %d nodes, %d edges\n", *dataset, *nodes, n)
	}

	sqlText := *exec
	switch {
	case sqlText != "":
	case *file == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		sqlText = string(b)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		sqlText = string(b)
	default:
		// No -e / -f: interactive loop over stdin.
		return repl(db, *maxRows)
	}

	if *explain {
		ex, err := sqloop.ExplainQuery(db, sqlText)
		if err != nil {
			return err
		}
		fmt.Printf("kind: %s\nmode: %s\n", ex.Kind, ex.Mode)
		if ex.Kind == "iterative" {
			fmt.Printf("terminates: %s\n", ex.Termination)
			if ex.Analysis.Parallelizable {
				fmt.Printf("parallelizable: yes (aggregate %s over self-join alias %s via relation %s)\n",
					ex.Analysis.AggName, ex.Analysis.NeighborAlias, ex.Analysis.EdgeTable)
			} else {
				fmt.Printf("parallelizable: no (%s)\n", ex.Analysis.Reason)
			}
		}
		return nil
	}
	if *script {
		out, err := sqloop.GenerateScript(sqlText, 0, db.Options().Dialect)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	if *analyze {
		ea, err := db.ExplainAnalyzeQuery(context.Background(), sqlText)
		if err != nil {
			return err
		}
		fmt.Print(ea.Render())
		if *metrics {
			fmt.Print(db.Metrics().Snapshot().Format())
		}
		return nil
	}

	start := time.Now()
	var res *sqloop.Result
	if group != nil {
		res, err = group.ExecScript(context.Background(), sqlText)
	} else {
		res, err = db.ExecScript(context.Background(), sqlText)
	}
	if err != nil {
		return err
	}
	if len(res.Columns) > 0 {
		fmt.Print(sqloop.FormatRows(res, *maxRows))
	} else {
		fmt.Printf("%d row(s) affected\n", res.RowsAffected)
	}
	fmt.Printf("-- %v", time.Since(start).Round(time.Millisecond))
	if res.Stats.Iterations > 0 {
		fmt.Printf(", %d iterations, mode %s", res.Stats.Iterations, res.Stats.Mode)
		if res.Stats.ShardCount > 1 {
			fmt.Printf(", %d shards (%d rows exchanged)", res.Stats.ShardCount, res.Stats.CrossShardRows)
		}
		if res.Stats.Failovers > 0 || res.Stats.Rebalances > 0 || res.Stats.Handoffs > 0 {
			fmt.Printf(", elastic: %d failovers, %d rebalances, %d handoffs",
				res.Stats.Failovers, res.Stats.Rebalances, res.Stats.Handoffs)
		}
		if res.Stats.FallbackReason != "" {
			fmt.Printf(" (fell back to single-threaded: %s)", res.Stats.FallbackReason)
		}
	}
	fmt.Println()
	if *metrics {
		if group != nil {
			fmt.Print(group.Metrics().Snapshot().Format())
		} else {
			fmt.Print(db.Metrics().Snapshot().Format())
		}
	}
	return nil
}

// dataTargets lists the instances a dataset load must reach: the single
// instance, or every endpoint of a shard group — standbys included, so
// base relations are already in place when a replica is promoted by
// failover or an online rebalance.
func dataTargets(db *sqloop.SQLoop, group *sqloop.ShardGroup) []*sqloop.SQLoop {
	if group == nil {
		return []*sqloop.SQLoop{db}
	}
	return append(group.Shards(), group.Standbys()...)
}

// parseRebalance parses the -rebalance schedule: comma-separated
// "afterRound:shards" pairs.
func parseRebalance(s string) ([]sqloop.RebalanceStep, error) {
	if s == "" {
		return nil, nil
	}
	var steps []sqloop.RebalanceStep
	for _, part := range strings.Split(s, ",") {
		at, to, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("-rebalance %q: want 'afterRound:shards'", part)
		}
		round, err := strconv.Atoi(at)
		if err != nil {
			return nil, fmt.Errorf("-rebalance %q: %v", part, err)
		}
		n, err := strconv.Atoi(to)
		if err != nil {
			return nil, fmt.Errorf("-rebalance %q: %v", part, err)
		}
		steps = append(steps, sqloop.RebalanceStep{AfterRound: round, Shards: n})
	}
	return steps, nil
}

// repl reads statements from stdin. SQL accumulates until a line ends
// with ';'; backslash commands act immediately:
//
//	\metrics      print the instance's metrics snapshot
//	\explain SQL  analyze a statement without executing it
//	\checkpoints  list stored snapshots (needs -checkpoint-dir)
//	\q            quit
func repl(db *sqloop.SQLoop, maxRows int) error {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	fmt.Println(`sqloopcli interactive — end statements with ';', \metrics for metrics, \checkpoints for snapshots, \q to quit`)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sqloop> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch cmd, rest, _ := strings.Cut(trimmed, " "); cmd {
			case `\q`, `\quit`:
				return nil
			case `\metrics`:
				fmt.Print(db.Metrics().Snapshot().Format())
			case `\checkpoints`:
				infos, err := db.ListCheckpoints()
				switch {
				case err != nil:
					fmt.Println("error:", err)
				case len(infos) == 0:
					fmt.Println("no checkpoints")
				default:
					for _, ci := range infos {
						fmt.Printf("%s  %s/%s  round %d  %d bytes  %s\n",
							ci.Key, ci.CTE, ci.Mode, ci.Round, ci.Size,
							ci.ModTime.Format(time.RFC3339))
					}
				}
			case `\explain`:
				ex, err := sqloop.ExplainQuery(db, strings.TrimSuffix(strings.TrimSpace(rest), ";"))
				if err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Printf("kind: %s\nmode: %s\n", ex.Kind, ex.Mode)
				}
			default:
				fmt.Printf("unknown command %s\n", cmd)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			prompt()
			continue
		}
		stmtText := buf.String()
		buf.Reset()
		start := time.Now()
		res, err := db.ExecScript(context.Background(), stmtText)
		if err != nil {
			fmt.Println("error:", err)
			prompt()
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Print(sqloop.FormatRows(res, maxRows))
		} else {
			fmt.Printf("%d row(s) affected\n", res.RowsAffected)
		}
		fmt.Printf("-- %v", time.Since(start).Round(time.Millisecond))
		if res.Stats.Iterations > 0 {
			fmt.Printf(", %d iterations, mode %s", res.Stats.Iterations, res.Stats.Mode)
		}
		fmt.Println()
		prompt()
	}
	return in.Err()
}
