// Command sqloopbench regenerates every table and figure of the paper's
// evaluation (§VI) against the embedded engines. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
//	sqloopbench -fig all            # everything, default scale
//	sqloopbench -fig 4 -query pr    # one figure/query
//	sqloopbench -quick              # small smoke-scale run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sqloop/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4, 5, 6, rounds, stmtcache, pr4, shards, traffic, io, vec, par, elastic, trend or all")
	out := flag.String("out", "", "output path for the -fig pr4 / shards / traffic / io / vec / par / elastic report")
	query := flag.String("query", "all", "workload within the figure: pr, sssp, dq or all")
	quick := flag.Bool("quick", false, "smoke-scale run (pgsim only, small graphs)")
	nocost := flag.Bool("nocost", false, "disable the calibrated latency model")
	engines := flag.String("engines", "", "comma-separated engine profiles (default all three)")
	prNodes := flag.Int64("pr-nodes", 0, "override PageRank graph size")
	ssspNodes := flag.Int64("sssp-nodes", 0, "override SSSP graph size")
	dqNodes := flag.Int64("dq-nodes", 0, "override DQ graph size")
	parts := flag.Int("partitions", 0, "override partition count")
	flag.Parse()

	sc := bench.DefaultScale()
	if *quick {
		sc = sc.Quick()
	}
	if *nocost {
		sc.WithCost = false
	}
	if *engines != "" {
		sc.Engines = strings.Split(*engines, ",")
	}
	if *prNodes > 0 {
		sc.PRNodes = *prNodes
	}
	if *ssspNodes > 0 {
		sc.SSSPNodes = *ssspNodes
	}
	if *dqNodes > 0 {
		sc.DQNodes = *dqNodes
	}
	if *parts > 0 {
		sc.Partitions = *parts
	}
	if *out == "" {
		switch *fig {
		case "shards":
			*out = "BENCH_PR5.json"
		case "traffic":
			*out = "BENCH_PR6.json"
		case "io":
			*out = "BENCH_PR7.json"
		case "vec":
			*out = "BENCH_PR8.json"
		case "par":
			*out = "BENCH_PR9.json"
		case "elastic":
			*out = "BENCH_PR10.json"
		default:
			*out = "BENCH_PR4.json"
		}
	}

	if err := run(*fig, *query, *out, sc); err != nil {
		log.Fatal(err)
	}
}

func run(fig, query, out string, sc bench.Scale) error {
	ctx := context.Background()
	w := os.Stdout
	want := func(f, q string) bool {
		return (fig == "all" || fig == f) && (query == "all" || query == q)
	}
	if want("4", "sssp") {
		if err := bench.Fig4SSSP(ctx, w, sc); err != nil {
			return err
		}
	}
	if want("4", "pr") {
		if err := bench.Fig4PR(ctx, w, sc); err != nil {
			return err
		}
	}
	if want("4", "dq") {
		if err := bench.Fig4DQ(ctx, w, sc); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "5" {
		if err := bench.Fig5(ctx, w, sc); err != nil {
			return err
		}
	}
	if fig == "all" || fig == "6" {
		if err := bench.Fig6(ctx, w, sc); err != nil {
			return err
		}
	}
	if fig == "rounds" {
		if err := bench.RoundTrace(ctx, w, sc); err != nil {
			return err
		}
	}
	if fig == "stmtcache" {
		if err := bench.StmtCacheFig(ctx, w, sc); err != nil {
			return err
		}
	}
	if fig == "pr4" {
		if err := bench.PR4Fig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "shards" {
		if err := bench.PR5Fig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "traffic" {
		if err := bench.TrafficFig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "io" {
		if err := bench.IOFig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "vec" {
		if err := bench.PR8Fig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "par" {
		if err := bench.PR9Fig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "elastic" {
		if err := bench.ElasticFig(ctx, w, sc, out); err != nil {
			return err
		}
	}
	if fig == "trend" {
		if err := bench.TrendFig(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\ndone.")
	return nil
}
