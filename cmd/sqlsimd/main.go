// Command sqlsimd serves an embedded engine over the wire protocol so
// SQLoop instances (or any sqlsim database/sql client) on other machines
// can use it — the paper's remote-database deployment: "it is possible
// to create connections with multiple RDBMSs on different machines by
// specifying the URL of each target database engine".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"sqloop"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5499", "listen address")
	profile := flag.String("profile", "pgsim", "engine profile: pgsim, mysim or mariasim")
	withCost := flag.Bool("cost", false, "enable the calibrated latency model")
	flag.Parse()
	if err := run(*addr, *profile, *withCost); err != nil {
		log.Fatal(err)
	}
}

func run(addr, profile string, withCost bool) error {
	var extra []sqloop.OpenOption
	if withCost {
		extra = append(extra, sqloop.WithCostModel())
	}
	srv, err := sqloop.Serve(profile, addr, extra...)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("sqlsimd (%s) listening on %s\nconnect with DSN %s\n",
		profile, srv.Addr(), srv.DSN())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return nil
}
