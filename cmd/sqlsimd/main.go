// Command sqlsimd serves an embedded engine over the wire protocol so
// SQLoop instances (or any sqlsim database/sql client) on other machines
// can use it — the paper's remote-database deployment: "it is possible
// to create connections with multiple RDBMSs on different machines by
// specifying the URL of each target database engine".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"sqloop"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5499", "listen address")
	profile := flag.String("profile", "pgsim", "engine profile: pgsim, mysim or mariasim")
	withCost := flag.Bool("cost", false, "enable the calibrated latency model")
	maxSessions := flag.Int("max-sessions", 0, "concurrent request cap (0 = default 8)")
	queueDepth := flag.Int("queue-depth", 0, "per-tenant wait queue cap (0 = default 64)")
	tenantLimit := flag.Int("tenant-limit", 0, "per-tenant concurrent request cap (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = unbounded)")
	backend := flag.String("backend", "", "storage backend: heap, btree, lsm or disk (default heap)")
	dataDir := flag.String("data-dir", "", "data directory for -backend disk (default: a temp dir removed on exit)")
	poolPages := flag.Int("buffer-pool-pages", 0, "disk backend buffer pool size in 8 KiB pages (0 = default)")
	workers := flag.Int("workers", 0, "intra-query parallelism degree (0 = one per CPU, 1 = serial)")
	walCkpt := flag.Int64("wal-checkpoint-bytes", 0, "checkpoint a table when its WAL exceeds this many bytes (0 = only explicit checkpoints)")
	flag.Parse()
	extra := []sqloop.OpenOption{
		sqloop.WithMaxSessions(*maxSessions),
		sqloop.WithQueueDepth(*queueDepth),
		sqloop.WithTenantLimit(*tenantLimit),
		sqloop.WithDeadline(*deadline),
	}
	if *backend != "" {
		extra = append(extra, sqloop.WithBackend(*backend))
	}
	if *dataDir != "" {
		extra = append(extra, sqloop.WithDataDir(*dataDir))
	}
	if *poolPages != 0 {
		extra = append(extra, sqloop.WithBufferPoolPages(*poolPages))
	}
	if *workers != 0 {
		extra = append(extra, sqloop.WithWorkers(*workers))
	}
	if *walCkpt > 0 {
		extra = append(extra, sqloop.WithWALCheckpointBytes(*walCkpt))
	}
	if *withCost {
		extra = append(extra, sqloop.WithCostModel())
	}
	if err := run(*addr, *profile, extra); err != nil {
		log.Fatal(err)
	}
}

func run(addr, profile string, extra []sqloop.OpenOption) error {
	srv, err := sqloop.Serve(profile, addr, extra...)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("sqlsimd (%s) listening on %s\nconnect with DSN %s\n",
		profile, srv.Addr(), srv.DSN())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return nil
}
