// Package sqloop is the public API of the SQLoop reproduction: a
// middleware that extends SQL with iterative common table expressions
//
//	WITH ITERATIVE R AS (R0 ITERATE Ri UNTIL Tc) Qf
//
// and transparently parallelizes qualifying iterative queries with
// synchronous, asynchronous (delta-accumulative) and prioritized
// asynchronous execution against any engine reachable through
// database/sql — including the embedded engine this repository ships
// with its three storage profiles (pgsim, mysim, mariasim).
//
// Quick start:
//
//	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{})
//	...
//	res, err := db.Exec(ctx, `WITH ITERATIVE ... UNTIL 10 ITERATIONS) SELECT ...`)
package sqloop

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"sqloop/internal/core"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/graph"
	"sqloop/internal/obs"
	"sqloop/internal/serve"
	"sqloop/internal/sqlparser"
	"sqloop/internal/storage"
	"sqloop/internal/wire"
)

// Re-exported core types: these aliases are the supported public
// surface; internal/core is not importable outside this module.
type (
	// SQLoop is one middleware instance bound to a target database.
	SQLoop = core.SQLoop
	// Options configures a SQLoop instance.
	Options = core.Options
	// Result is the outcome of one Exec call.
	Result = core.Result
	// ExecStats describes how a CTE was executed.
	ExecStats = core.ExecStats
	// Mode selects the execution strategy.
	Mode = core.Mode
	// Analysis reports whether a query qualifies for parallel execution.
	Analysis = core.Analysis
	// RoundStats is the per-round trace entry inside ExecStats.
	RoundStats = core.RoundStats
	// CheckpointOptions configures round-boundary snapshots and
	// crash recovery (Options.Checkpoint).
	CheckpointOptions = core.CheckpointOptions
	// CheckpointInfo describes one stored snapshot
	// (SQLoop.ListCheckpoints).
	CheckpointInfo = core.CheckpointInfo
	// ShardGroup executes iterative CTEs across several engine
	// endpoints at once (scale-out), hash-partitioning the working
	// table and exchanging deltas between rounds.
	ShardGroup = core.ShardGroup
	// ShardGroupOptions configures a group's elastic behaviour: standby
	// replicas for failover and growth, scheduled online repartitions,
	// and AsyncP straggler work handoff.
	ShardGroupOptions = core.ShardGroupOptions
	// RebalanceStep is one scheduled online repartition (change the
	// shard count after a given round completes).
	RebalanceStep = core.RebalanceStep
)

// Re-exported serving-layer types (see internal/serve): multi-tenant
// admission control and fair round scheduling.
type (
	// RoundScheduler fair-schedules concurrent iterative executions:
	// each holds a slot for one round at a time and yields at round
	// boundaries, so tenants' fix-point loops interleave rounds. Attach
	// one shared instance via Options.Scheduler (with Options.Tenant).
	RoundScheduler = serve.Scheduler
	// AdmissionError reports work turned away by admission control
	// (per-tenant limits, full queues) before anything executed.
	AdmissionError = serve.AdmissionError
)

// ErrAdmissionRejected matches every admission failure via errors.Is,
// whether it happened in-process (Options.Scheduler) or server-side
// across the wire protocol.
var ErrAdmissionRejected = serve.ErrAdmissionRejected

// NewRoundScheduler builds a fair round scheduler with the given
// number of concurrently-running rounds (minimum 1) and per-tenant
// concurrent-execution limit (0 = unlimited).
func NewRoundScheduler(slots, tenantLimit int) *RoundScheduler {
	return serve.NewScheduler(slots, tenantLimit)
}

// TenantDSN appends tenant identity (and, when positive, a default
// per-statement deadline) to a DSN as query parameters, giving each
// tenant its own connection pool against a shared server:
//
//	sqloop.Open(sqloop.TenantDSN(srv.DSN(), "acme", 300*time.Millisecond), opts)
func TenantDSN(dsn, tenant string, deadline time.Duration) string {
	return driver.TenantDSN(dsn, tenant, deadline)
}

// Re-exported observability types (see internal/obs). Observers receive
// typed events through Options.Observer or WithObserver; metrics are
// read with SQLoop.Metrics().Snapshot().
type (
	// Event is one typed execution event.
	Event = obs.Event
	// Tracer consumes events.
	Tracer = obs.Tracer
	// FuncTracer adapts a function to the Tracer interface.
	FuncTracer = obs.FuncTracer
	// Recorder is a Tracer that stores every event (tests, tooling).
	Recorder = obs.Recorder
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot

	// Event payload types.
	ExecStartEvent        = obs.ExecStart
	ExecEndEvent          = obs.ExecEnd
	RoundStartEvent       = obs.RoundStart
	RoundEndEvent         = obs.RoundEnd
	PartitionDoneEvent    = obs.PartitionDone
	FallbackEvent         = obs.Fallback
	TerminationCheckEvent = obs.TerminationCheck
	CheckpointEvent       = obs.Checkpoint
	RestoreEvent          = obs.Restore
	RetryEvent            = obs.Retry
	ShardExchangeEvent    = obs.ShardExchange
	ShardFailoverEvent    = obs.ShardFailover
	ShardRebalanceEvent   = obs.ShardRebalance
	ShardHandoffEvent     = obs.ShardHandoff
)

// MultiTracer fans events out to every non-nil tracer.
func MultiTracer(ts ...Tracer) Tracer { return obs.Multi(ts...) }

// Execution modes (see the package documentation of internal/core).
const (
	ModeAuto      = core.ModeAuto
	ModeSingle    = core.ModeSingle
	ModeSync      = core.ModeSync
	ModeAsync     = core.ModeAsync
	ModeAsyncPrio = core.ModeAsyncPrio
)

// ParseMode resolves a mode name ("auto", "single", "sync", "async",
// "asyncp").
func ParseMode(name string) (Mode, error) { return core.ParseMode(name) }

// Open connects to a database by DSN through the bundled database/sql
// driver. Supported DSNs: sqlsim://inproc/<handle> for engines
// registered in-process and sqlsim://tcp/<host:port> for a remote
// sqlsimd server.
func Open(dsn string, opts Options) (*SQLoop, error) {
	// Share one registry between the middleware and the driver (and, for
	// tcp DSNs, the wire client), mirroring OpenEmbedded's wiring; the
	// registration must precede core.Open so the first pooled connection
	// reports into it.
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	dcfg := driver.ConfigFor(dsn)
	dcfg.Metrics = opts.Metrics
	driver.Configure(dsn, dcfg)
	return core.Open(driver.DriverName, dsn, opts)
}

var embeddedSeq atomic.Int64

// OpenOption configures OpenEmbedded and Serve beyond Options — the
// knobs that concern the embedded engine rather than the middleware.
type OpenOption func(*openConfig)

type openConfig struct {
	cost          bool
	observer      obs.Tracer
	noStmtCache   bool
	noExprCompile bool
	noVectorize   bool
	noParallel    bool
	workers       int
	backend       string
	dataDir       string
	poolPages     int
	walCkptBytes  int64

	// Serving-layer knobs (Serve only; OpenEmbedded has no sessions to
	// pool and ignores them).
	maxSessions int
	queueDepth  int
	tenantLimit int
	deadline    time.Duration
}

// WithMaxSessions caps how many requests a server executes at once;
// excess requests queue per tenant and are drained fairly (round-robin
// across tenants). 0 keeps the default (8).
func WithMaxSessions(n int) OpenOption {
	return func(c *openConfig) { c.maxSessions = n }
}

// WithQueueDepth caps each tenant's wait queue; a request arriving
// beyond the cap is rejected immediately with ErrAdmissionRejected
// instead of waiting. 0 keeps the default (64).
func WithQueueDepth(n int) OpenOption {
	return func(c *openConfig) { c.queueDepth = n }
}

// WithTenantLimit caps how many of one tenant's requests may run
// concurrently, so a single tenant cannot occupy every session. 0
// means no per-tenant cap.
func WithTenantLimit(n int) OpenOption {
	return func(c *openConfig) { c.tenantLimit = n }
}

// WithDeadline bounds every request that arrives without its own
// deadline: queue wait plus execution, enforced at statement and round
// boundaries. 0 means unbounded.
func WithDeadline(d time.Duration) OpenOption {
	return func(c *openConfig) { c.deadline = d }
}

// WithBackend overrides the profile's storage backend ("heap",
// "btree", "lsm", "disk"). "disk" selects the durable pager: tables
// live in 8 KiB slotted pages under a data directory, every mutation
// is write-ahead logged, and a crash loses at most the uncommitted
// tail of the last statement. Unknown names fail Open/Serve.
func WithBackend(name string) OpenOption {
	return func(c *openConfig) { c.backend = name }
}

// WithDataDir sets where the disk backend keeps its page and WAL files
// (the option-API form of Options.DataDir). Empty keeps the default: a
// throwaway temp directory.
func WithDataDir(dir string) OpenOption {
	return func(c *openConfig) { c.dataDir = dir }
}

// WithBufferPoolPages sizes the disk backend's shared buffer pool in
// 8 KiB pages (0 keeps the default of 256 = 2 MiB).
func WithBufferPoolPages(n int) OpenOption {
	return func(c *openConfig) { c.poolPages = n }
}

// WithCostModel enables the calibrated latency model used by the
// benchmark harness, so multi-connection parallelism behaves like the
// paper's multi-core server even on a small host.
func WithCostModel() OpenOption {
	return func(c *openConfig) { c.cost = true }
}

// WithObserver attaches a tracer in addition to any Options.Observer,
// as a composable alternative to setting the struct field.
func WithObserver(t Tracer) OpenOption {
	return func(c *openConfig) { c.observer = obs.Multi(c.observer, t) }
}

// WithoutStmtCache disables the embedded engine's parse+plan statement
// cache and the middleware's per-connection prepared-statement cache —
// an escape hatch for debugging and for cache-ablation benchmarks.
// Every statement is then parsed and planned from its text on each
// execution, the behaviour before prepared statements existed.
func WithoutStmtCache() OpenOption {
	return func(c *openConfig) { c.noStmtCache = true }
}

// WithoutExprCompile disables the embedded engine's expression
// compiler (the option-API form of Options.DisableExprCompile, and the
// only form Serve accepts). Expressions are then interpreted from
// their ASTs on every row — the A/B baseline for compile-ablation
// benchmarks.
func WithoutExprCompile() OpenOption {
	return func(c *openConfig) { c.noExprCompile = true }
}

// WithoutVectorize disables the embedded engine's vectorized batch
// execution (the option-API form of Options.DisableVectorize, and the
// only form Serve accepts). Compiled programs then run row-at-a-time —
// the A/B baseline for vectorize-ablation benchmarks. Implied by
// WithoutExprCompile, since the batch kernels ride on compiled
// programs.
func WithoutVectorize() OpenOption {
	return func(c *openConfig) { c.noVectorize = true }
}

// WithWorkers sets the embedded engine's intra-query parallelism
// degree (the option-API form of Options.Workers, and the only form
// Serve accepts): morsel-driven parallel scans, joins and aggregation
// over a shared pool of n goroutines. 0 means one worker per CPU; 1 is
// exactly the serial path. Results are bit-identical at every setting.
func WithWorkers(n int) OpenOption {
	return func(c *openConfig) { c.workers = n }
}

// WithoutParallel disables morsel-driven intra-query parallelism (the
// option-API form of Options.DisableParallel, and the only form Serve
// accepts) — the A/B baseline for the parallel-ablation benchmarks.
func WithoutParallel() OpenOption {
	return func(c *openConfig) { c.noParallel = true }
}

// WithWALCheckpointBytes starts the embedded disk backend's background
// checkpointer: a table whose write-ahead log grows past n bytes is
// checkpointed (pages flushed, WAL truncated) without waiting for a
// middleware snapshot, keeping long DML-only runs' logs bounded. 0
// (the default) leaves checkpointing to explicit Checkpoint calls.
func WithWALCheckpointBytes(n int64) OpenOption {
	return func(c *openConfig) { c.walCkptBytes = n }
}

func applyOpenOptions(extra []OpenOption) openConfig {
	var c openConfig
	for _, o := range extra {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// applyStorageOptions resolves the backend/data-dir/pool-size knobs
// (option API first, Options fields as fallback) onto an engine config.
func applyStorageOptions(cfg *engine.Config, oc openConfig, dataDir string, poolPages int) error {
	if oc.backend != "" {
		k, err := storage.ParseKind(oc.backend)
		if err != nil {
			return err
		}
		cfg.Backend = k
	}
	cfg.DataDir = dataDir
	if oc.dataDir != "" {
		cfg.DataDir = oc.dataDir
	}
	cfg.BufferPoolPages = poolPages
	if oc.poolPages != 0 {
		cfg.BufferPoolPages = oc.poolPages
	}
	return nil
}

// OpenEmbedded spins up an embedded engine with the named profile
// ("pgsim"/"postgres", "mysim"/"mysql", "mariasim"/"mariadb") and
// returns a SQLoop bound to it. The engine and the driver report into
// the instance's Metrics() registry, so one snapshot covers all layers.
func OpenEmbedded(profile string, opts Options, extra ...OpenOption) (*SQLoop, error) {
	oc := applyOpenOptions(extra)
	cfg, err := engine.Profile(profile)
	if err != nil {
		return nil, err
	}
	if oc.cost {
		cfg.Cost = engine.DefaultCost(cfg.Dialect)
	}
	if oc.noStmtCache {
		cfg.StmtCacheSize = -1
		opts.DisableStmtCache = true
	}
	if oc.noExprCompile || opts.DisableExprCompile {
		cfg.DisableExprCompile = true
	}
	if oc.noVectorize || opts.DisableVectorize {
		cfg.DisableVectorize = true
	}
	if oc.noParallel || opts.DisableParallel {
		cfg.DisableParallel = true
	}
	cfg.Workers = opts.Workers
	if oc.workers != 0 {
		cfg.Workers = oc.workers
	}
	cfg.WALCheckpointBytes = oc.walCkptBytes
	if oc.observer != nil {
		opts.Observer = obs.Multi(opts.Observer, oc.observer)
	}
	if err := applyStorageOptions(&cfg, oc, opts.DataDir, opts.BufferPoolPages); err != nil {
		return nil, err
	}
	eng := engine.New(cfg)
	// A middleware checkpoint on a durable engine also flushes the
	// engine's pages and truncates its WALs, so a post-crash restart
	// replays only the post-snapshot tail.
	if cfg.Backend == storage.KindDisk && opts.AfterCheckpoint == nil {
		opts.AfterCheckpoint = eng.Checkpoint
	}
	handle := "embedded-" + strconv.FormatInt(embeddedSeq.Add(1), 10)
	driver.RegisterEngine(handle, eng)
	if opts.Dialect == "" {
		opts.Dialect = cfg.Dialect.String()
	}
	// One registry shared by the middleware, the driver connections and
	// the engine: register it before core.Open so even the first pooled
	// connection reports into it.
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	dsn := driver.InprocDSN(handle)
	eng.SetMetrics(opts.Metrics)
	driver.Configure(dsn, driver.Config{Metrics: opts.Metrics})
	s, err := core.Open(driver.DriverName, dsn, opts)
	if err != nil {
		driver.UnregisterEngine(handle)
		driver.Configure(dsn, driver.Config{})
		return nil, err
	}
	return s, nil
}

// NewShardGroup builds a scale-out execution group from already-open
// instances (mixed backends and remote servers allowed; shard i
// executes hash partition i). The group borrows the shards; closing it
// leaves them open.
func NewShardGroup(shards []*SQLoop, opts Options) (*ShardGroup, error) {
	return core.NewShardGroup(shards, opts, false)
}

// NewElasticShardGroup builds a scale-out group with elastic behaviour:
// standby replicas in gopts.Replicas take over for dead shards
// (failover) and activate when the shard count grows, and
// gopts.Rebalance (or ShardGroup.RequestRebalance) repartitions the
// working table online between rounds. The group borrows the shards
// and replicas; closing it leaves them open.
func NewElasticShardGroup(shards []*SQLoop, gopts ShardGroupOptions, opts Options) (*ShardGroup, error) {
	return core.NewElasticShardGroup(shards, gopts, opts, false)
}

// OpenEmbeddedShards spins up n embedded engines of the named profile
// and groups them for scale-out execution. The group owns the engines:
// Close shuts all of them down.
func OpenEmbeddedShards(profile string, n int, opts Options, extra ...OpenOption) (*ShardGroup, error) {
	return OpenEmbeddedElasticShards(profile, n, 0, ShardGroupOptions{}, opts, extra...)
}

// OpenEmbeddedElasticShards spins up n embedded shard engines plus
// replicas standby engines of the named profile and groups them
// elastically. Replicas listed in gopts.Replicas are prepended to the
// standby pool ahead of the freshly-opened ones. The group owns every
// engine it opened: Close shuts them all down.
func OpenEmbeddedElasticShards(profile string, n, replicas int, gopts ShardGroupOptions, opts Options, extra ...OpenOption) (*ShardGroup, error) {
	if n < 1 {
		return nil, fmt.Errorf("sqloop: shard count %d, need at least 1", n)
	}
	if replicas < 0 {
		return nil, fmt.Errorf("sqloop: replica count %d, need at least 0", replicas)
	}
	all := make([]*SQLoop, 0, n+replicas)
	for i := 0; i < n+replicas; i++ {
		s, err := OpenEmbedded(profile, opts, extra...)
		if err != nil {
			for _, prev := range all {
				_ = prev.Close()
			}
			return nil, err
		}
		all = append(all, s)
	}
	gopts.Replicas = append(gopts.Replicas, all[n:]...)
	return core.NewElasticShardGroup(all[:n], gopts, opts, true)
}

// Server is a network-facing embedded engine (the standalone form of
// cmd/sqlsimd), so SQLoop instances on other machines can reach it via
// sqlsim://tcp DSNs — the paper's remote-database deployment.
type Server struct {
	srv  *wire.Server
	addr string
}

// Serve starts an embedded engine with the given profile listening on
// addr ("127.0.0.1:0" picks a free port). The server admits requests
// through a bounded multi-tenant session pool — size it with
// WithMaxSessions, WithQueueDepth, WithTenantLimit and WithDeadline.
func Serve(profile, addr string, extra ...OpenOption) (*Server, error) {
	oc := applyOpenOptions(extra)
	cfg, err := engine.Profile(profile)
	if err != nil {
		return nil, err
	}
	if oc.cost {
		cfg.Cost = engine.DefaultCost(cfg.Dialect)
	}
	if oc.noStmtCache {
		cfg.StmtCacheSize = -1
	}
	if oc.noExprCompile {
		cfg.DisableExprCompile = true
	}
	if oc.noVectorize {
		cfg.DisableVectorize = true
	}
	if oc.noParallel {
		cfg.DisableParallel = true
	}
	cfg.Workers = oc.workers
	cfg.WALCheckpointBytes = oc.walCkptBytes
	if err := applyStorageOptions(&cfg, oc, "", 0); err != nil {
		return nil, err
	}
	eng := engine.New(cfg)
	srv := wire.NewServer(eng)
	// Server-side statements and lock waits land in the same registry as
	// the wire request metrics.
	eng.SetMetrics(srv.Metrics())
	srv.EnablePool(serve.Config{
		MaxSessions:     oc.maxSessions,
		QueueDepth:      oc.queueDepth,
		TenantLimit:     oc.tenantLimit,
		DefaultDeadline: oc.deadline,
	})
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &Server{srv: srv, addr: bound}, nil
}

// Addr returns the bound address (connect with sqloop.Open(TCPDSN)).
func (s *Server) Addr() string { return s.addr }

// DSN returns the DSN clients should open.
func (s *Server) DSN() string { return driver.TCPDSN(s.addr) }

// Close stops the server and its connections.
func (s *Server) Close() error { return s.srv.Close() }

// Metrics returns the server's registry: per-statement wire latency,
// request counts, traffic bytes and engine-side instruments.
func (s *Server) Metrics() *MetricsRegistry { return s.srv.Metrics() }

// Profiles lists the available embedded engine profiles.
func Profiles() []string { return []string{"pgsim", "mysim", "mariasim"} }

// FormatRows renders a result set as a plain text table (a convenience
// for the example programs and the CLI). Columns are aligned to the
// widest value instead of a fixed width.
func FormatRows(res *Result, max int) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for i, c := range res.Columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	truncated := 0
	for i, row := range res.Rows {
		if max > 0 && i >= max {
			truncated = len(res.Rows) - max
			break
		}
		for j, v := range row {
			if j > 0 {
				fmt.Fprint(tw, "\t")
			}
			if v == nil {
				fmt.Fprint(tw, "NULL")
			} else {
				fmt.Fprintf(tw, "%v", v)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if truncated > 0 {
		fmt.Fprintf(&b, "... (%d more rows)\n", truncated)
	}
	return b.String()
}

// LoadDataset generates one of the bundled synthetic datasets
// ("google-web", "twitter-ego", "berkstan-web" — the stand-ins for the
// paper's SNAP graphs) at the given node count and loads it into an
// edges(src, dst, weight) table through s.
func LoadDataset(s *SQLoop, name string, nodes, seed int64) (int, error) {
	g, err := graph.ByName(name, nodes, seed)
	if err != nil {
		return 0, err
	}
	if err := graph.Load(context.Background(), s.DB(), "edges", g, 500); err != nil {
		return 0, err
	}
	return len(g.Edges), nil
}

// Explain describes how SQLoop would execute a statement (see
// core.Explain).
type Explain = core.Explain

// ExplainAnalysis pairs the static plan with the observed profile of
// one actual run (see core.ExplainAnalysis); render it with Render.
type ExplainAnalysis = core.ExplainAnalysis

// ExplainQuery is re-exported for convenience; it analyzes a statement
// without executing it.
func ExplainQuery(s *SQLoop, query string) (*Explain, error) { return s.ExplainQuery(query) }

// GenerateScript renders the hand-written multi-statement SQL script
// equivalent to an iterative CTE (the paper's §VI-D baseline), unrolled
// for the given iteration count (taken from the query when it uses
// UNTIL n ITERATIONS). dialect names the target engine's SQL flavour.
func GenerateScript(query string, iterations int, dialect string) (string, error) {
	d, err := sqlparser.ParseDialect(dialect)
	if err != nil {
		return "", err
	}
	return core.GenerateScript(query, iterations, d)
}
