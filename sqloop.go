// Package sqloop is the public API of the SQLoop reproduction: a
// middleware that extends SQL with iterative common table expressions
//
//	WITH ITERATIVE R AS (R0 ITERATE Ri UNTIL Tc) Qf
//
// and transparently parallelizes qualifying iterative queries with
// synchronous, asynchronous (delta-accumulative) and prioritized
// asynchronous execution against any engine reachable through
// database/sql — including the embedded engine this repository ships
// with its three storage profiles (pgsim, mysim, mariasim).
//
// Quick start:
//
//	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{})
//	...
//	res, err := db.Exec(ctx, `WITH ITERATIVE ... UNTIL 10 ITERATIONS) SELECT ...`)
package sqloop

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"sqloop/internal/core"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/graph"
	"sqloop/internal/sqlparser"
	"sqloop/internal/wire"
)

// Re-exported core types: these aliases are the supported public
// surface; internal/core is not importable outside this module.
type (
	// SQLoop is one middleware instance bound to a target database.
	SQLoop = core.SQLoop
	// Options configures a SQLoop instance.
	Options = core.Options
	// Result is the outcome of one Exec call.
	Result = core.Result
	// ExecStats describes how a CTE was executed.
	ExecStats = core.ExecStats
	// Mode selects the execution strategy.
	Mode = core.Mode
	// Analysis reports whether a query qualifies for parallel execution.
	Analysis = core.Analysis
)

// Execution modes (see the package documentation of internal/core).
const (
	ModeAuto      = core.ModeAuto
	ModeSingle    = core.ModeSingle
	ModeSync      = core.ModeSync
	ModeAsync     = core.ModeAsync
	ModeAsyncPrio = core.ModeAsyncPrio
)

// ParseMode resolves a mode name ("auto", "single", "sync", "async",
// "asyncp").
func ParseMode(name string) (Mode, error) { return core.ParseMode(name) }

// Open connects to a database by DSN through the bundled database/sql
// driver. Supported DSNs: sqlsim://inproc/<handle> for engines
// registered in-process and sqlsim://tcp/<host:port> for a remote
// sqlsimd server.
func Open(dsn string, opts Options) (*SQLoop, error) {
	return core.Open(driver.DriverName, dsn, opts)
}

var embeddedSeq atomic.Int64

// OpenEmbedded spins up an embedded engine with the named profile
// ("pgsim"/"postgres", "mysim"/"mysql", "mariasim"/"mariadb") and
// returns a SQLoop bound to it. withCost enables the calibrated latency
// model used by the benchmark harness; leave it false for plain use.
func OpenEmbedded(profile string, opts Options, withCost bool) (*SQLoop, error) {
	cfg, err := engine.Profile(profile)
	if err != nil {
		return nil, err
	}
	if withCost {
		cfg.Cost = engine.DefaultCost(cfg.Dialect)
	}
	eng := engine.New(cfg)
	handle := "embedded-" + strconv.FormatInt(embeddedSeq.Add(1), 10)
	driver.RegisterEngine(handle, eng)
	if opts.Dialect == "" {
		opts.Dialect = cfg.Dialect.String()
	}
	s, err := core.Open(driver.DriverName, driver.InprocDSN(handle), opts)
	if err != nil {
		driver.UnregisterEngine(handle)
		return nil, err
	}
	return s, nil
}

// Server is a network-facing embedded engine (the standalone form of
// cmd/sqlsimd), so SQLoop instances on other machines can reach it via
// sqlsim://tcp DSNs — the paper's remote-database deployment.
type Server struct {
	srv  *wire.Server
	addr string
}

// Serve starts an embedded engine with the given profile listening on
// addr ("127.0.0.1:0" picks a free port).
func Serve(profile, addr string, withCost bool) (*Server, error) {
	cfg, err := engine.Profile(profile)
	if err != nil {
		return nil, err
	}
	if withCost {
		cfg.Cost = engine.DefaultCost(cfg.Dialect)
	}
	srv := wire.NewServer(engine.New(cfg))
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &Server{srv: srv, addr: bound}, nil
}

// Addr returns the bound address (connect with sqloop.Open(TCPDSN)).
func (s *Server) Addr() string { return s.addr }

// DSN returns the DSN clients should open.
func (s *Server) DSN() string { return driver.TCPDSN(s.addr) }

// Close stops the server and its connections.
func (s *Server) Close() error { return s.srv.Close() }

// Profiles lists the available embedded engine profiles.
func Profiles() []string { return []string{"pgsim", "mysim", "mariasim"} }

// FormatRows renders a result set as a plain text table (a convenience
// for the example programs and the CLI).
func FormatRows(res *Result, max int) string {
	out := ""
	for _, c := range res.Columns {
		out += fmt.Sprintf("%-16s", c)
	}
	out += "\n"
	for i, row := range res.Rows {
		if max > 0 && i >= max {
			out += fmt.Sprintf("... (%d more rows)\n", len(res.Rows)-max)
			break
		}
		for _, v := range row {
			if v == nil {
				out += fmt.Sprintf("%-16s", "NULL")
			} else {
				out += fmt.Sprintf("%-16v", v)
			}
		}
		out += "\n"
	}
	return out
}

// LoadDataset generates one of the bundled synthetic datasets
// ("google-web", "twitter-ego", "berkstan-web" — the stand-ins for the
// paper's SNAP graphs) at the given node count and loads it into an
// edges(src, dst, weight) table through s.
func LoadDataset(s *SQLoop, name string, nodes, seed int64) (int, error) {
	g, err := graph.ByName(name, nodes, seed)
	if err != nil {
		return 0, err
	}
	if err := graph.Load(context.Background(), s.DB(), "edges", g, 500); err != nil {
		return 0, err
	}
	return len(g.Edges), nil
}

// Explain describes how SQLoop would execute a statement (see
// core.Explain).
type Explain = core.Explain

// ExplainQuery is re-exported for convenience; it analyzes a statement
// without executing it.
func ExplainQuery(s *SQLoop, query string) (*Explain, error) { return s.ExplainQuery(query) }

// GenerateScript renders the hand-written multi-statement SQL script
// equivalent to an iterative CTE (the paper's §VI-D baseline), unrolled
// for the given iteration count (taken from the query when it uses
// UNTIL n ITERATIONS). dialect names the target engine's SQL flavour.
func GenerateScript(query string, iterations int, dialect string) (string, error) {
	d, err := sqlparser.ParseDialect(dialect)
	if err != nil {
		return "", err
	}
	return core.GenerateScript(query, iterations, d)
}
