// Command quickstart shows the smallest useful SQLoop session: an
// embedded engine, a recursive CTE (Fibonacci, straight from the paper's
// Example 1) and an iterative CTE with an explicit termination
// condition.
package main

import (
	"context"
	"fmt"
	"log"

	"sqloop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()

	// Recursive CTEs work on any engine through SQLoop, whether or not
	// the engine implements them natively (ours does not).
	fib, err := db.Exec(ctx, `
WITH RECURSIVE Fibonacci(n, pn) AS (
  VALUES (0, 1)
  UNION ALL
  SELECT n + pn, n FROM Fibonacci WHERE n < 1000
)
SELECT SUM(n) FROM Fibonacci`)
	if err != nil {
		return err
	}
	fmt.Printf("sum of Fibonacci numbers reached below 1000: %v (in %d recursions)\n",
		fib.Rows[0][0], fib.Stats.Iterations)

	// Iterative CTEs update rows in place and terminate on data values —
	// the paper's extension to the SQL standard.
	compound, err := db.Exec(ctx, `
WITH ITERATIVE savings(id, balance) AS (
  VALUES (1, 100.0)
  ITERATE
  SELECT id, balance * 1.05 FROM savings
  UNTIL (SELECT MAX(balance) FROM savings) > 200.0
)
SELECT balance FROM savings`)
	if err != nil {
		return err
	}
	fmt.Printf("100.00 at 5%% doubles after %d years: %.2f\n",
		compound.Stats.Iterations, compound.Rows[0][0])

	// Regular SQL passes straight through to the engine.
	if _, err := db.Exec(ctx, `CREATE TABLE notes (id BIGINT PRIMARY KEY, body TEXT)`); err != nil {
		return err
	}
	if _, err := db.Exec(ctx, `INSERT INTO notes VALUES (1, 'works like any database/sql target')`); err != nil {
		return err
	}
	note, err := db.Exec(ctx, `SELECT body FROM notes WHERE id = 1`)
	if err != nil {
		return err
	}
	fmt.Printf("passthrough: %v\n", note.Rows[0][0])
	return nil
}
