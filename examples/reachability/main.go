// Command reachability computes the transitive closure of a web graph
// with WITH RECURSIVE ... UNION (set semantics). On cyclic data the
// standard's UNION ALL form never terminates; the deduplicating variant
// reaches the fix point — the kind of query recursive CTEs were designed
// for (paper §II), complementing the iterative examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sqloop"
)

const closureCTE = `
WITH RECURSIVE reach(src, dst) AS (
  SELECT src, dst FROM edges
  UNION
  SELECT reach.src, edges.dst
  FROM reach JOIN edges ON reach.dst = edges.src
)
SELECT COUNT(*) FROM reach`

const fromRootCTE = `
WITH RECURSIVE reach(dst) AS (
  SELECT dst FROM edges WHERE src = %d
  UNION
  SELECT edges.dst FROM reach JOIN edges ON reach.dst = edges.src
)
SELECT COUNT(*) FROM reach`

func main() {
	nodes := flag.Int64("nodes", 300, "graph size (closure is quadratic; keep modest)")
	root := flag.Int64("root", 2, "root node for single-source reachability")
	flag.Parse()
	if err := run(*nodes, *root); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, root int64) error {
	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()
	edges, err := sqloop.LoadDataset(db, "google-web", nodes, 21)
	if err != nil {
		return err
	}
	fmt.Printf("web graph: %d nodes, %d links (cyclic)\n", nodes, edges)

	start := time.Now()
	res, err := db.Exec(ctx, fmt.Sprintf(fromRootCTE, root))
	if err != nil {
		return err
	}
	fmt.Printf("pages reachable from %d (excluding itself): %v (%d recursions, %v)\n",
		root, res.Rows[0][0], res.Stats.Iterations, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	res, err = db.Exec(ctx, closureCTE)
	if err != nil {
		return err
	}
	fmt.Printf("full transitive closure: %v reachable pairs (%d recursions, %v)\n",
		res.Rows[0][0], res.Stats.Iterations, time.Since(start).Round(time.Millisecond))
	return nil
}
