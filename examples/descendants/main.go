// Command descendants runs the paper's third workload, the Descendant
// Query (DQ): which pages are within n clicks of a given page — a BFS
// expressed as an iterative CTE with a data-value termination condition
// (§VI-A, also used in HaLoop). The dataset mimics web-BerkStan: two
// site communities with deep link chains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sqloop"
)

// The DQ query is SSSP with unit weights; Hops counts clicks from the
// root page. It terminates when no page's hop count improves.
const descendantCTE = `
WITH ITERATIVE dq(Node, Hops, Delta) AS (
  SELECT src, CASE WHEN src = %d THEN 0.0 ELSE Infinity END,
         CASE WHEN src = %d THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT dq.Node,
         LEAST(dq.Hops, dq.Delta),
         COALESCE(MIN(Neighbor.Hops + IncomingEdges.weight), Infinity)
  FROM dq
  LEFT JOIN edges AS IncomingEdges ON dq.Node = IncomingEdges.dst
  LEFT JOIN dq AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY dq.Node
  UNTIL 0 UPDATES
)
SELECT COUNT(*) FROM dq WHERE dq.Hops <= %d`

func main() {
	nodes := flag.Int64("nodes", 3000, "web graph size")
	root := flag.Int64("root", 1, "root page")
	hops := flag.Int("hops", 100, "friend-hop limit n")
	threads := flag.Int("threads", 4, "SQLoop worker threads")
	parts := flag.Int("partitions", 16, "hash partitions")
	flag.Parse()
	if err := run(*nodes, *root, *hops, *threads, *parts); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, root int64, hops, threads, parts int) error {
	ctx := context.Background()
	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{
		Mode: sqloop.ModeAsyncPrio, Threads: threads, Partitions: parts,
		PriorityQuery: "SELECT 0 - MIN(Delta) FROM $PART WHERE Delta != Infinity",
	})
	if err != nil {
		return err
	}
	defer db.Close()
	edges, err := sqloop.LoadDataset(db, "berkstan-web", nodes, 11)
	if err != nil {
		return err
	}
	fmt.Printf("exploring %d pages / %d links from page %d\n", nodes, edges, root)
	for _, n := range []int{1, 5, 20, hops} {
		start := time.Now()
		res, err := db.Exec(ctx, fmt.Sprintf(descendantCTE, root, root, n))
		if err != nil {
			return err
		}
		fmt.Printf("pages within %3d clicks: %6v  (%d rounds, %v)\n",
			n, res.Rows[0][0], res.Stats.Iterations, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
