// Command sssp runs the paper's Example 3 — single-source shortest path
// as an iterative CTE terminating on UNTIL 0 UPDATES — over an
// ego-network graph, demonstrating the prioritized asynchronous
// execution the paper built for frontier-style workloads (§V-E, §VI-B).
//
// The seed differs from the paper's listing in one respect: the source's
// Distance starts at 0 (not Infinity). As printed in the paper, the
// query cannot make progress under snapshot semantics because the
// source's distance is only ever folded in through Delta, which no other
// node can observe; see DESIGN.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sqloop"
)

const ssspCTE = `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT sssp.Distance FROM sssp WHERE sssp.Node = %d`

func main() {
	nodes := flag.Int64("nodes", 2000, "graph size")
	dest := flag.Int64("dest", 100, "destination node (paper uses 100)")
	threads := flag.Int("threads", 4, "SQLoop worker threads")
	parts := flag.Int("partitions", 16, "hash partitions")
	flag.Parse()
	if err := run(*nodes, *dest, *threads, *parts); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, dest int64, threads, parts int) error {
	ctx := context.Background()
	for _, mode := range []sqloop.Mode{sqloop.ModeSync, sqloop.ModeAsync, sqloop.ModeAsyncPrio} {
		opts := sqloop.Options{Mode: mode, Threads: threads, Partitions: parts}
		if mode == sqloop.ModeAsyncPrio {
			// The paper lets the user define the priority; for SSSP the
			// partition holding the closest frontier node goes first.
			opts.PriorityQuery = "SELECT 0 - MIN(Delta) FROM $PART WHERE Delta != Infinity"
		}
		db, err := sqloop.OpenEmbedded("pgsim", opts)
		if err != nil {
			return err
		}
		edges, err := sqloop.LoadDataset(db, "twitter-ego", nodes, 7)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := db.Exec(ctx, fmt.Sprintf(ssspCTE, dest))
		if err != nil {
			return err
		}
		dist := "unreachable"
		if len(res.Rows) > 0 && res.Rows[0][0] != nil {
			dist = fmt.Sprintf("%.3f", res.Rows[0][0])
		}
		fmt.Printf("%s: distance(1 -> %d) = %s over %d edges, %d rounds, %v\n",
			mode, dest, dist, edges, res.Stats.Iterations,
			time.Since(start).Round(time.Millisecond))
		if err := db.Close(); err != nil {
			return err
		}
	}
	return nil
}
