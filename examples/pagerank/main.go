// Command pagerank runs the paper's Example 2 — PageRank expressed as an
// iterative CTE — on a synthetic web graph, once per execution method,
// and reports the convergence behaviour that motivates asynchronous
// execution (§VI-B).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sqloop"
)

const pageRankCTE = `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL (SELECT MAX(PageRank.Delta) FROM PageRank) < 0.000001
)
SELECT Node, Rank + Delta AS Rank FROM PageRank ORDER BY Rank DESC LIMIT 10`

func main() {
	nodes := flag.Int64("nodes", 2000, "web graph size")
	threads := flag.Int("threads", 4, "SQLoop worker threads")
	parts := flag.Int("partitions", 16, "hash partitions")
	profile := flag.String("profile", "pgsim", "embedded engine profile")
	flag.Parse()
	if err := run(*nodes, *threads, *parts, *profile); err != nil {
		log.Fatal(err)
	}
}

func run(nodes int64, threads, parts int, profile string) error {
	ctx := context.Background()
	for _, mode := range []sqloop.Mode{sqloop.ModeSync, sqloop.ModeAsync, sqloop.ModeAsyncPrio} {
		db, err := sqloop.OpenEmbedded(profile, sqloop.Options{
			Mode: mode, Threads: threads, Partitions: parts,
		})
		if err != nil {
			return err
		}
		edges, err := sqloop.LoadDataset(db, "google-web", nodes, 42)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := db.Exec(ctx, pageRankCTE)
		if err != nil {
			return err
		}
		fmt.Printf("== %s: %d nodes / %d edges, converged in %d rounds, %v ==\n",
			mode, nodes, edges, res.Stats.Iterations, time.Since(start).Round(time.Millisecond))
		fmt.Print(sqloop.FormatRows(res, 10))
		if err := db.Close(); err != nil {
			return err
		}
	}
	return nil
}
