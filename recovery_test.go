package sqloop_test

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"sqloop"
	"sqloop/internal/driver"
	"sqloop/internal/wire"
)

// The crash-restart matrix: every storage backend × every parallel
// execution mode. Each subtest runs a query uninterrupted, then runs it
// again with the engine connection killed right after the first
// checkpoint, and requires the recovered run to produce the same final
// result while reporting where it resumed.

const recoveryPageRank = `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 8 ITERATIONS
)
SELECT Node, Rank + Delta AS Rank FROM PageRank`

const recoverySSSP = `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL %s
)
SELECT Node, Distance FROM sssp`

// loadRecoveryGraph creates edges(src, dst, weight) with out-degree
// normalized weights over a small cyclic graph.
func loadRecoveryGraph(t *testing.T, s *sqloop.SQLoop) {
	t.Helper()
	ctx := context.Background()
	if _, err := s.Exec(ctx, `DROP TABLE IF EXISTS edges`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	edges := [][2]int64{
		{1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {4, 1},
		{4, 5}, {5, 3}, {5, 6}, {6, 7}, {7, 6}, {3, 7},
	}
	outdeg := map[int64]int{}
	for _, e := range edges {
		outdeg[e[0]]++
	}
	for _, e := range edges {
		stmt := fmt.Sprintf(`INSERT INTO edges VALUES (%d, %d, %g)`, e[0], e[1], 1.0/float64(outdeg[e[0]]))
		if _, err := s.Exec(ctx, stmt); err != nil {
			t.Fatal(err)
		}
	}
}

func resultMap(t *testing.T, res *sqloop.Result) map[int64]float64 {
	t.Helper()
	out := map[int64]float64{}
	for _, row := range res.Rows {
		out[row[0].(int64)] = row[1].(float64)
	}
	return out
}

func TestCrashRecoveryMatrix(t *testing.T) {
	modes := []struct {
		mode  sqloop.Mode
		name  string
		query string
	}{
		// Iteration-capped async runs of PageRank are schedule-dependent,
		// so the async modes use SSSP, whose fix point is
		// schedule-independent. The prioritized scheduler only advances
		// rounds for partitions with work, so its round counter — and with
		// it the checkpoint cadence — needs the iteration-bounded variant
		// (8 rounds is far past convergence on this graph, so the result
		// is still the exact fix point).
		{sqloop.ModeSync, "sync", recoveryPageRank},
		{sqloop.ModeAsync, "async", fmt.Sprintf(recoverySSSP, "0 UPDATES")},
		{sqloop.ModeAsyncPrio, "asyncp", fmt.Sprintf(recoverySSSP, "8 ITERATIONS")},
	}
	for _, profile := range sqloop.Profiles() {
		for _, m := range modes {
			t.Run(profile+"/"+m.name, func(t *testing.T) {
				runCrashRecovery(t, profile, m.mode, m.query)
			})
		}
	}
}

func runCrashRecovery(t *testing.T, profile string, mode sqloop.Mode, query string, serveOpts ...sqloop.OpenOption) {
	srv, err := sqloop.Serve(profile, "127.0.0.1:0", serveOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dsn := srv.DSN()
	ctx := context.Background()

	// Keep the driver's reconnect loop fast under test. sqloop.Open
	// below merges its metrics registry into this same per-DSN entry.
	driver.Configure(dsn, driver.Config{Retry: driver.RetryPolicy{
		MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
	}})
	defer driver.Configure(dsn, driver.Config{})
	// The injector must be registered before any connection dials so
	// every connection (coordinator and workers) shares it; it carries
	// no scheduled faults until the test arms it.
	inj := wire.NewInjector()
	wire.SetAddrInjector(srv.Addr(), inj)
	defer wire.SetAddrInjector(srv.Addr(), nil)

	opts := sqloop.Options{Mode: mode, Partitions: 4, Threads: 2}

	// Uninterrupted reference run.
	base, err := sqloop.Open(dsn, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	loadRecoveryGraph(t, base)
	ref, err := base.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	want := resultMap(t, ref)

	// Faulted run: on the first checkpoint event, schedule a connection
	// kill on the very next wire operation. The request is dropped after
	// it was sent, the worst case: the driver cannot transparently retry
	// and must surface a lost connection to the middleware.
	var killed atomic.Bool
	rec := &sqloop.Recorder{}
	observer := sqloop.MultiTracer(rec, sqloop.FuncTracer(func(ev sqloop.Event) {
		if _, ok := ev.(sqloop.CheckpointEvent); ok && killed.CompareAndSwap(false, true) {
			inj.Arm(wire.FaultDropAfterSend)
		}
	}))
	opts.Observer = observer
	// EveryRounds must be 1: the async schedulers checkpoint when the
	// minimum per-partition round counter hits a multiple of K, and on
	// this small graph some schedules reach quiescence before every
	// partition finishes round 2 — with K=2 the fault would then never
	// arm. Every partition completes round 1 before quiescence, so K=1
	// guarantees a checkpoint in every schedule.
	opts.Checkpoint = sqloop.CheckpointOptions{
		Dir: t.TempDir(), EveryRounds: 1, RetryBackoff: time.Millisecond,
	}
	s, err := sqloop.Open(dsn, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := s.Exec(ctx, query)
	if err != nil {
		t.Fatalf("query did not survive the connection kill: %v", err)
	}
	if !killed.Load() {
		t.Fatal("no checkpoint was ever taken; the fault never fired")
	}
	if inj.Fired() < 1 {
		t.Fatal("the armed fault never fired")
	}
	if res.Stats.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1", res.Stats.Recoveries)
	}
	if res.Stats.ResumedFromRound < 1 {
		t.Fatalf("ResumedFromRound = %d, want the last checkpointed round", res.Stats.ResumedFromRound)
	}
	if rec.Count("retry") < 1 {
		t.Fatalf("retry events = %d, want >= 1", rec.Count("retry"))
	}
	if rec.Count("restore") < 1 {
		t.Fatalf("restore events = %d, want >= 1", rec.Count("restore"))
	}

	got := resultMap(t, res)
	if len(got) != len(want) {
		t.Fatalf("row counts differ: want %d, got %d", len(want), len(got))
	}
	for n, w := range want {
		g, ok := got[n]
		if !ok {
			t.Fatalf("node %d missing from recovered result", n)
		}
		if math.Abs(w-g) > 1e-9 {
			t.Fatalf("node %d: uninterrupted %g, recovered %g", n, w, g)
		}
	}
}

// TestCrashRecoverySingleMode covers the single-threaded executor's
// checkpoint path over the wire as well.
func TestCrashRecoverySingleMode(t *testing.T) {
	runCrashRecovery(t, "pgsim", sqloop.ModeSingle, recoveryPageRank)
}

// TestCrashRecoveryDiskBackend runs the interruption matrix against a
// server on the durable pager backend with a deliberately small buffer
// pool, so the kill lands while table state straddles the buffer pool,
// the page files and the write-ahead logs. The recovered result must
// match the uninterrupted run, same as for the in-memory backends.
func TestCrashRecoveryDiskBackend(t *testing.T) {
	modes := []struct {
		mode  sqloop.Mode
		name  string
		query string
	}{
		{sqloop.ModeSingle, "single", recoveryPageRank},
		{sqloop.ModeSync, "sync", recoveryPageRank},
		{sqloop.ModeAsync, "async", fmt.Sprintf(recoverySSSP, "0 UPDATES")},
		{sqloop.ModeAsyncPrio, "asyncp", fmt.Sprintf(recoverySSSP, "8 ITERATIONS")},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			runCrashRecovery(t, "pgsim", m.mode, m.query,
				sqloop.WithBackend("disk"),
				sqloop.WithDataDir(t.TempDir()),
				sqloop.WithBufferPoolPages(64))
		})
	}
}
