GO ?= go

.PHONY: all build vet test race race-par race-elastic fuzz crash tier1 bench bench-smoke bench-traffic bench-trend check-deprecated clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel executors, the observability layer, the checkpoint store,
# the fault-injected transport/driver, the engine's compiled-program
# cache, the shard partitioner, the serving layer's session pool /
# round scheduler and the pager's buffer pool are the concurrency hot
# spots; the root package holds the crash-recovery matrix. Keep them
# race-clean.
race:
	$(GO) test -race . ./internal/core ./internal/engine ./internal/vec ./internal/obs ./internal/ckpt ./internal/wire ./internal/driver ./internal/shard ./internal/serve ./internal/pager

# The morsel dispatcher, worker pool shutdown and background
# checkpointer under varying GOMAXPROCS: the single-CPU schedule hides
# ordering bugs that only surface when goroutines truly interleave.
race-par:
	$(GO) test -race -cpu 1,2,4 -run 'TestParallel|TestEngineClose|TestBackgroundCheckpointer|TestEffectiveWorkers' ./internal/engine

# Elastic shards under varying GOMAXPROCS: the fault matrix (shard kills
# at round boundaries and mid-exchange with standby failover), the
# rebalance-during-iteration differential suite and the router/group
# membership race.
race-elastic:
	$(GO) test -race -cpu 1,2,4 -run 'TestElastic|TestRouterElasticRace' -count=1 .
	$(GO) test -race -cpu 1,2,4 -run 'TestShardedRebalance|TestShardedRepartition|TestShardedHandoff|TestShardedMalformedGroupSnapshot|TestElasticGroupValidation' -count=1 ./internal/core

# The snapshot codec must reject arbitrary corruption without panicking,
# the shard router must stay bit-compatible with the engine's PARTHASH
# for every key and shard count, and the WAL record codec must decode
# arbitrary bytes without panicking and re-encode canonically.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzSnapshotRoundTrip -fuzztime=10s ./internal/ckpt
	$(GO) test -run=NONE -fuzz=FuzzShardRouteRoundTrip -fuzztime=10s ./internal/shard
	$(GO) test -run=NONE -fuzz=FuzzWALRecordRoundTrip -fuzztime=10s ./internal/pager

# The crash matrix: cut the write-ahead log at every byte offset and
# require recovery to surface exactly the committed prefix, with and
# without a checkpointed page file underneath.
crash:
	$(GO) test -run 'TestCrash' -count=1 ./internal/pager

# The deleted pre-option-API shims must stay deleted, and the legacy
# per-DSN setters may only appear inside internal/driver (where the
# deprecated wrappers live and are tested). Doc files are exempt.
check-deprecated: vet
	@! grep -rn --include='*.go' -E 'OpenEmbeddedWithCost|ServeWithCost' . \
		|| { echo 'deleted deprecated symbol referenced'; exit 1; }
	@! grep -rln --include='*.go' -E 'SetDSNMetrics|SetDSNRetry|SetDSNWireVersion' . \
		| grep -v '^\./internal/driver/' \
		|| { echo 'legacy SetDSN* setter used outside internal/driver'; exit 1; }

# Tier-1 verification (ROADMAP.md): everything must stay green.
tier1: build vet test race race-par race-elastic crash check-deprecated

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick allocation check of the hot row path: the compiled-expression,
# vectorized-batch and wire-codec micro-benchmarks at a fixed, small
# iteration count.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime=100x -benchmem ./internal/engine ./internal/vec ./internal/wire

# Smoke-scale run of the PR6 serving-traffic experiment (open-loop
# mixed load against the pooled server); the full run writes
# BENCH_PR6.json via `go run ./cmd/sqloopbench -fig traffic`.
bench-traffic:
	$(GO) run ./cmd/sqloopbench -fig traffic -quick -out /tmp/sqloop_traffic_smoke.json

# One-table view of every committed BENCH_PR*.json perf artifact.
bench-trend:
	$(GO) run ./cmd/sqloopbench -fig trend

clean:
	$(GO) clean ./...
