GO ?= go

.PHONY: all build vet test race fuzz tier1 bench clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel executors, the observability layer, the checkpoint store
# and the fault-injected transport/driver are the concurrency hot spots;
# the root package holds the crash-recovery matrix. Keep them race-clean.
race:
	$(GO) test -race . ./internal/core ./internal/obs ./internal/ckpt ./internal/wire ./internal/driver

# The snapshot codec must reject arbitrary corruption without panicking.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzSnapshotRoundTrip -fuzztime=10s ./internal/ckpt

# Tier-1 verification (ROADMAP.md): everything must stay green.
tier1: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
