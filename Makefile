GO ?= go

.PHONY: all build vet test race tier1 bench clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel executors and the observability layer are the concurrency
# hot spots; keep them race-clean.
race:
	$(GO) test -race ./internal/core ./internal/obs

# Tier-1 verification (ROADMAP.md): everything must stay green.
tier1: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
