GO ?= go

.PHONY: all build vet test race fuzz tier1 bench bench-smoke clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel executors, the observability layer, the checkpoint store,
# the fault-injected transport/driver, the engine's compiled-program
# cache and the shard partitioner are the concurrency hot spots; the
# root package holds the crash-recovery matrix. Keep them race-clean.
race:
	$(GO) test -race . ./internal/core ./internal/engine ./internal/obs ./internal/ckpt ./internal/wire ./internal/driver ./internal/shard

# The snapshot codec must reject arbitrary corruption without panicking,
# and the shard router must stay bit-compatible with the engine's
# PARTHASH for every key and shard count.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzSnapshotRoundTrip -fuzztime=10s ./internal/ckpt
	$(GO) test -run=NONE -fuzz=FuzzShardRouteRoundTrip -fuzztime=10s ./internal/shard

# Tier-1 verification (ROADMAP.md): everything must stay green.
tier1: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick allocation check of the hot row path: the compiled-expression
# and wire-codec micro-benchmarks at a fixed, small iteration count.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime=100x -benchmem ./internal/engine ./internal/wire

clean:
	$(GO) clean ./...
