package sqloop_test

import (
	"context"
	"strings"
	"testing"

	"sqloop"
)

func TestPublicAPIEmbedded(t *testing.T) {
	for _, profile := range sqloop.Profiles() {
		t.Run(profile, func(t *testing.T) {
			db, err := sqloop.OpenEmbedded(profile, sqloop.Options{Mode: sqloop.ModeSync, Threads: 2, Partitions: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			ctx := context.Background()
			if _, err := sqloop.LoadDataset(db, "google-web", 200, 1); err != nil {
				t.Fatal(err)
			}
			res, err := db.Exec(ctx, `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 5 ITERATIONS
)
SELECT COUNT(*) FROM PageRank`)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].(int64) != 200 {
				t.Fatalf("count = %v", res.Rows[0][0])
			}
			if !res.Stats.Parallelized || res.Stats.Iterations != 5 {
				t.Fatalf("stats = %+v", res.Stats)
			}
		})
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	srv, err := sqloop.Serve("pgsim", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	db, err := sqloop.Open(srv.DSN(), sqloop.Options{Mode: sqloop.ModeAsync, Threads: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := sqloop.LoadDataset(db, "twitter-ego", 200, 3); err != nil {
		t.Fatal(err)
	}
	// An iterative CTE executed over the network: SQLoop drives the
	// remote engine through many concurrent wire connections, the
	// paper's remote-JDBC deployment.
	res, err := db.Exec(ctx, `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT COUNT(*) FROM sssp WHERE Distance != Infinity`)
	if err != nil {
		t.Fatal(err)
	}
	reached := res.Rows[0][0].(int64)
	if reached < 150 {
		t.Fatalf("only %d nodes reached", reached)
	}
}

func TestFormatRows(t *testing.T) {
	res := &sqloop.Result{
		Columns: []string{"a", "b"},
		Rows:    [][]any{{int64(1), "x"}, {nil, "y"}, {int64(3), "z"}},
	}
	out := sqloop.FormatRows(res, 2)
	if !strings.Contains(out, "NULL") || !strings.Contains(out, "1 more row") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestOpenEmbeddedBadProfile(t *testing.T) {
	if _, err := sqloop.OpenEmbedded("oracle", sqloop.Options{}); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestLoadDatasetBadName(t *testing.T) {
	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := sqloop.LoadDataset(db, "friendster", 100, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestObservabilityFacade(t *testing.T) {
	rec := &sqloop.Recorder{}
	db, err := sqloop.OpenEmbedded("pgsim",
		sqloop.Options{Mode: sqloop.ModeSync, Threads: 2, Partitions: 4},
		sqloop.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := sqloop.LoadDataset(db, "google-web", 100, 1); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(ctx, `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 3 ITERATIONS
)
SELECT COUNT(*) FROM PageRank`)
	if err != nil {
		t.Fatal(err)
	}
	// The tracer attached through the functional option saw every round.
	if got := rec.Count("round_end"); got != res.Stats.Iterations {
		t.Errorf("round_end events = %d, want %d", got, res.Stats.Iterations)
	}
	if len(res.Stats.Rounds) != res.Stats.Iterations {
		t.Errorf("Stats.Rounds has %d entries, want %d",
			len(res.Stats.Rounds), res.Stats.Iterations)
	}
	// OpenEmbedded wires middleware, driver and engine into one shared
	// registry, so a single snapshot spans all three layers.
	snap := db.Metrics().Snapshot()
	if snap.Empty() {
		t.Fatal("metrics snapshot empty after iterative Exec")
	}
	for _, name := range []string{
		"sqloop_statements_total",
		"driver_statements_total",
		"engine_statements_total",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("%s = 0, want > 0 (counters: %+v)", name, snap.Counters)
		}
	}
	if h, ok := snap.Histograms["engine_statement_seconds"]; !ok || h.Count == 0 {
		t.Errorf("engine latency histogram missing/empty")
	}
}

func TestExplainFacade(t *testing.T) {
	db, err := sqloop.OpenEmbedded("pgsim", sqloop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ex, err := sqloop.ExplainQuery(db, `SELECT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kind != "statement" {
		t.Fatalf("kind = %q", ex.Kind)
	}
}
