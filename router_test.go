package sqloop_test

import (
	"context"
	"testing"

	"sqloop"
)

func TestRouterRedirectsQueries(t *testing.T) {
	r := sqloop.NewRouter()
	defer r.Close()
	if err := r.AddEmbeddedTarget("pg", "pgsim", sqloop.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddEmbeddedTarget("my", "mysim", sqloop.Options{}); err != nil {
		t.Fatal(err)
	}
	// A remote target over the wire protocol, like a second machine.
	srv, err := sqloop.Serve("mariasim", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := r.AddTarget("maria", srv.DSN(), sqloop.Options{}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// Different state per target.
	if _, err := r.Exec(ctx, "pg", `CREATE TABLE t (v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec(ctx, "pg", `INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec(ctx, "my", `CREATE TABLE t (v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec(ctx, "my", `INSERT INTO t VALUES (10)`); err != nil {
		t.Fatal(err)
	}
	res, err := r.Exec(ctx, "pg", `SELECT SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("pg sum = %v", res.Rows[0][0])
	}
	res, err = r.Exec(ctx, "my", `SELECT SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 10 {
		t.Fatalf("my sum = %v", res.Rows[0][0])
	}

	// Fan-out to every target, including the remote one.
	if _, err := r.Exec(ctx, "maria", `CREATE TABLE t (v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	all, errs := r.ExecAll(ctx, `SELECT COUNT(*) FROM t`)
	if errs != nil {
		t.Fatal(errs)
	}
	if len(all) != 3 {
		t.Fatalf("targets = %v", r.Targets())
	}
	// A failing statement reports per-target errors while the healthy
	// targets still return results.
	if _, err := r.Exec(ctx, "maria", `CREATE TABLE only_maria (v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	partial, errs := r.ExecAll(ctx, `SELECT COUNT(*) FROM only_maria`)
	if len(errs) != 2 {
		t.Fatalf("errs = %v", errs)
	}
	if len(partial) != 1 || partial["maria"] == nil {
		t.Fatalf("partial = %v", partial)
	}
	// Wire-server metrics accumulated across the remote target's work.
	snap := srv.Metrics().Snapshot()
	if snap.Counters["wire_requests_total"] == 0 {
		t.Fatalf("wire metrics empty: %+v", snap.Counters)
	}
	if h, ok := snap.Histograms["wire_request_seconds"]; !ok || h.Count == 0 {
		t.Fatalf("wire latency histogram empty: %+v", snap.Histograms)
	}

	// An iterative CTE redirected to a chosen target.
	if _, err := r.Exec(ctx, "pg", `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec(ctx, "pg", `INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0)`); err != nil {
		t.Fatal(err)
	}
	res, err = r.Exec(ctx, "pg", `
WITH ITERATIVE hops(Node, H, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT hops.Node, LEAST(hops.H, hops.Delta),
         COALESCE(MIN(N.H + E.weight), Infinity)
  FROM hops
  LEFT JOIN edges AS E ON hops.Node = E.dst
  LEFT JOIN hops AS N ON N.Node = E.src
  WHERE N.Delta != Infinity
  GROUP BY hops.Node
  UNTIL 0 UPDATES
)
SELECT H FROM hops WHERE Node = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 2.0 {
		t.Fatalf("hops = %v", res.Rows[0][0])
	}

	// Errors.
	if _, err := r.Exec(ctx, "nope", `SELECT 1`); err == nil {
		t.Fatal("unknown target must error")
	}
	if err := r.AddEmbeddedTarget("pg", "pgsim", sqloop.Options{}); err == nil {
		t.Fatal("duplicate target must error")
	}
}

func TestRouterRemoveTarget(t *testing.T) {
	r := sqloop.NewRouter()
	defer r.Close()
	for _, name := range []string{"a", "b", "c"} {
		if err := r.AddEmbeddedTarget(name, "pgsim", sqloop.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if _, errs := r.ExecAll(ctx, `CREATE TABLE t (v BIGINT)`); errs != nil {
		t.Fatal(errs)
	}

	if err := r.RemoveTarget("b"); err != nil {
		t.Fatal(err)
	}
	if got := r.Targets(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Targets after removal = %v", got)
	}
	if _, err := r.Exec(ctx, "b", `SELECT 1`); err == nil {
		t.Fatal("removed target must be unknown")
	}
	if err := r.RemoveTarget("b"); err == nil {
		t.Fatal("double removal must error")
	}
	// Remaining targets keep working.
	all, errs := r.ExecAll(ctx, `SELECT COUNT(*) FROM t`)
	if errs != nil {
		t.Fatal(errs)
	}
	if len(all) != 2 || all["a"] == nil || all["c"] == nil {
		t.Fatalf("ExecAll after removal = %v", all)
	}
}

// TestRouterExecAllWithClosedTarget removes a target whose *SQLoop a
// caller still holds mid-flight: statements against the closed handle
// must fail with an error, not hang or panic, and ExecAll on the
// router must no longer include it.
func TestRouterExecAllWithClosedTarget(t *testing.T) {
	r := sqloop.NewRouter()
	defer r.Close()
	for _, name := range []string{"x", "y"} {
		if err := r.AddEmbeddedTarget(name, "pgsim", sqloop.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	stale, err := r.Target("y")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveTarget("y"); err != nil {
		t.Fatal(err)
	}
	// The stale handle is closed: its pool rejects new work.
	if _, err := stale.Exec(ctx, `SELECT 1`); err == nil {
		t.Fatal("Exec on a removed target's handle must error")
	}
	out, errs := r.ExecAll(ctx, `SELECT 1`)
	if errs != nil {
		t.Fatal(errs)
	}
	if len(out) != 1 || out["x"] == nil {
		t.Fatalf("ExecAll after mid-flight removal = %v", out)
	}
}

// TestRouterShardGroup drives a scale-out group built from router
// targets and checks the borrowed-shards contract: closing the group
// leaves the targets usable.
func TestRouterShardGroup(t *testing.T) {
	r := sqloop.NewRouter()
	defer r.Close()
	for _, name := range []string{"s0", "s1"} {
		if err := r.AddEmbeddedTarget(name, "pgsim", sqloop.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := r.ShardGroup(sqloop.Options{Mode: sqloop.ModeSync}, "s0", "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := g.Exec(ctx, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Exec(ctx, `INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)`); err != nil {
		t.Fatal(err)
	}
	res, err := g.Exec(ctx, `
WITH ITERATIVE hops(Node, H, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT hops.Node, LEAST(hops.H, hops.Delta),
         COALESCE(MIN(N.H + E.weight), Infinity)
  FROM hops
  LEFT JOIN edges AS E ON hops.Node = E.dst
  LEFT JOIN hops AS N ON N.Node = E.src
  WHERE N.Delta != Infinity
  GROUP BY hops.Node
  UNTIL 0 UPDATES
)
SELECT H FROM hops WHERE Node = 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 3.0 {
		t.Fatalf("hops = %v", res.Rows[0][0])
	}
	if res.Stats.ShardCount != 2 {
		t.Fatalf("ShardCount = %d, want 2", res.Stats.ShardCount)
	}
	// The group borrows: closing it must not close router targets.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec(ctx, "s0", `SELECT 1`); err != nil {
		t.Fatalf("router target closed by borrowed group: %v", err)
	}
	if _, err := r.ShardGroup(sqloop.Options{}, "s0", "nope"); err == nil {
		t.Fatal("unknown shard target must error")
	}
}
