package sqltypes

import "testing"

func TestParseColumnType(t *testing.T) {
	tests := []struct {
		in   string
		want ColumnType
	}{
		{"INT", TypeInt}, {"integer", TypeInt}, {"BIGINT", TypeInt},
		{"DOUBLE", TypeFloat}, {"float", TypeFloat}, {"REAL", TypeFloat},
		{"TEXT", TypeString}, {"varchar", TypeString},
		{"BOOLEAN", TypeBool}, {"bool", TypeBool},
		{"ANY", TypeAny},
	}
	for _, tt := range tests {
		got, err := ParseColumnType(tt.in)
		if err != nil {
			t.Fatalf("ParseColumnType(%q): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("ParseColumnType(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if _, err := ParseColumnType("BLOB"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestSchemaDuplicateColumns(t *testing.T) {
	_, err := NewSchema(Column{Name: "a"}, Column{Name: "A"})
	if err == nil {
		t.Fatal("expected duplicate-column error (case-insensitive)")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s, err := NewSchema(Column{Name: "Node", Type: TypeInt}, Column{Name: "Rank", Type: TypeFloat})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ColumnIndex("node"); got != 0 {
		t.Errorf("ColumnIndex(node) = %d, want 0", got)
	}
	if got := s.ColumnIndex("RANK"); got != 1 {
		t.Errorf("ColumnIndex(RANK) = %d, want 1", got)
	}
	if got := s.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
	if got := s.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "Node" {
		t.Errorf("Names() = %v", names)
	}
}

func TestSchemaClone(t *testing.T) {
	s, _ := NewSchema(Column{Name: "a", Type: TypeInt})
	c := s.Clone()
	c.Columns[0].Name = "b"
	if s.Columns[0].Name != "a" {
		t.Error("Clone must not alias the original")
	}
}

func TestCoerce(t *testing.T) {
	tests := []struct {
		typ     ColumnType
		in      Value
		want    Value
		wantErr bool
	}{
		{TypeFloat, NewInt(3), NewFloat(3), false},
		{TypeFloat, NewFloat(2.5), NewFloat(2.5), false},
		{TypeInt, NewInt(3), NewInt(3), false},
		{TypeInt, NewFloat(3), Null, true},
		{TypeString, NewString("x"), NewString("x"), false},
		{TypeString, NewInt(1), Null, true},
		{TypeBool, NewBool(true), NewBool(true), false},
		{TypeAny, NewString("x"), NewString("x"), false},
		{TypeInt, Null, Null, false},
	}
	for _, tt := range tests {
		got, err := tt.typ.Coerce(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Coerce(%v, %v) err = %v, wantErr %v", tt.typ, tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && !tt.in.IsNull() {
			if c, _ := Compare(got, tt.want); c != 0 || got.Kind() != tt.want.Kind() {
				t.Errorf("Coerce(%v, %v) = %v, want %v", tt.typ, tt.in, got, tt.want)
			}
		}
	}
}

func TestAdmits(t *testing.T) {
	if !TypeFloat.Admits(KindInt) {
		t.Error("float column must admit int values")
	}
	if TypeInt.Admits(KindFloat) {
		t.Error("int column must not admit float values")
	}
	if !TypeInt.Admits(KindNull) {
		t.Error("columns must admit NULL")
	}
	if !TypeAny.Admits(KindBool) {
		t.Error("ANY admits everything")
	}
}

func TestUnifyColumnTypes(t *testing.T) {
	tests := []struct {
		a, b, want ColumnType
	}{
		{TypeInt, TypeInt, TypeInt},
		{TypeInt, TypeFloat, TypeFloat},
		{TypeFloat, TypeInt, TypeFloat},
		{TypeAny, TypeString, TypeString},
		{TypeString, TypeAny, TypeString},
		{TypeString, TypeInt, TypeAny},
	}
	for _, tt := range tests {
		if got := UnifyColumnTypes(tt.a, tt.b); got != tt.want {
			t.Errorf("UnifyColumnTypes(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestKindToColumnType(t *testing.T) {
	if KindToColumnType(KindInt) != TypeInt || KindToColumnType(KindNull) != TypeAny {
		t.Error("KindToColumnType mapping wrong")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Row.Clone must not alias")
	}
}
