// Package sqltypes defines the datum model shared by the SQL parser, the
// embedded relational engine and the SQLoop middleware: typed values with
// SQL NULL semantics, three-valued comparisons, arithmetic with implicit
// numeric widening, and hashing for join/partition keys.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// The supported value kinds. KindNull is deliberately the zero value so
// that a zero Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single SQL datum. The zero value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a TEXT value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the int64 payload. It is only meaningful for KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float64 payload, widening an int payload.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Bool returns the bool payload. It is only meaningful for KindBool.
func (v Value) Bool() bool { return v.b }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsTrue reports whether v is boolean TRUE (NULL and FALSE are not).
func (v Value) IsTrue() bool { return v.kind == KindBool && v.b }

// String renders the value the way a result printer would.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		if math.IsInf(v.f, 1) {
			return "Infinity"
		}
		if math.IsInf(v.f, -1) {
			return "-Infinity"
		}
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// GoValue converts v to the natural Go representation used by
// database/sql (nil, int64, float64, string, bool).
func (v Value) GoValue() any {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindBool:
		return v.b
	default:
		return nil
	}
}

// FromGo converts a Go value produced by database/sql (or user bind
// parameters) to a Value.
func FromGo(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Null, nil
	case int:
		return NewInt(int64(t)), nil
	case int32:
		return NewInt(int64(t)), nil
	case int64:
		return NewInt(t), nil
	case float32:
		return NewFloat(float64(t)), nil
	case float64:
		return NewFloat(t), nil
	case string:
		return NewString(t), nil
	case bool:
		return NewBool(t), nil
	case []byte:
		return NewString(string(t)), nil
	default:
		return Null, fmt.Errorf("sqltypes: unsupported Go value %T", x)
	}
}

// Compare orders a and b. NULL compares less than everything (this
// ordering is used for sorting, not predicate evaluation; predicates use
// CompareSQL). Numeric kinds compare by value with widening; otherwise
// kinds must match.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			default:
				return 0, nil
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("sqltypes: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("sqltypes: cannot compare %s values", a.kind)
	}
}

// CompareSQL implements SQL predicate comparison: if either side is NULL
// the result is NULL (unknown). Otherwise it returns a bool Value per op.
func CompareSQL(op CompareOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return Null, err
	}
	var r bool
	switch op {
	case CmpEQ:
		r = c == 0
	case CmpNE:
		r = c != 0
	case CmpLT:
		r = c < 0
	case CmpLE:
		r = c <= 0
	case CmpGT:
		r = c > 0
	case CmpGE:
		r = c >= 0
	default:
		return Null, fmt.Errorf("sqltypes: unknown comparison op %d", op)
	}
	return NewBool(r), nil
}

// CompareOp enumerates SQL comparison operators.
type CompareOp int

// Comparison operators.
const (
	CmpEQ CompareOp = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// ArithOp enumerates SQL arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("ArithOp(%d)", int(op))
	}
}

// Arith evaluates a op b with SQL semantics: NULL if either operand is
// NULL, integer arithmetic when both are ints (division by zero errors),
// float arithmetic otherwise.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("sqltypes: arithmetic %s on %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case OpAdd:
			return NewInt(a.i + b.i), nil
		case OpSub:
			return NewInt(a.i - b.i), nil
		case OpMul:
			return NewInt(a.i * b.i), nil
		case OpDiv:
			if b.i == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewInt(a.i / b.i), nil
		case OpMod:
			if b.i == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewInt(a.i % b.i), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case OpAdd:
		return NewFloat(af + bf), nil
	case OpSub:
		return NewFloat(af - bf), nil
	case OpMul:
		return NewFloat(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewFloat(af / bf), nil
	case OpMod:
		if bf == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewFloat(math.Mod(af, bf)), nil
	}
	return Null, fmt.Errorf("sqltypes: unknown arithmetic op %d", op)
}

// Hash returns a stable 64-bit hash of v, used for hash joins, GROUP BY
// buckets and SQLoop's partition function. Int and float values that
// represent the same number hash identically.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.kind {
	case KindNull:
		mix(0)
	case KindInt:
		mix(1)
		u := uint64(v.i)
		for s := 0; s < 64; s += 8 {
			mix(byte(u >> s))
		}
	case KindFloat:
		// Hash integral floats as ints so 1 and 1.0 join.
		if f := v.f; f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return NewInt(int64(f)).Hash()
		}
		mix(2)
		u := math.Float64bits(v.f)
		for s := 0; s < 64; s += 8 {
			mix(byte(u >> s))
		}
	case KindString:
		mix(3)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBool:
		mix(4)
		if v.b {
			mix(1)
		}
	}
	return h
}

// Key returns a canonical comparable representation of v suitable for use
// as a Go map key in joins and aggregation. Numeric values that are equal
// under SQL comparison produce equal keys.
type Key struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// MapKey converts v into a Key.
func (v Value) MapKey() Key {
	k := Key{kind: v.kind, i: v.i, f: v.f, s: v.s, b: v.b}
	if v.kind == KindFloat {
		if f := v.f; f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return Key{kind: KindInt, i: int64(f)}
		}
	}
	return k
}

// Value converts a Key back to the Value it was derived from.
func (k Key) Value() Value {
	return Value{kind: k.kind, i: k.i, f: k.f, s: k.s, b: k.b}
}

// CompareTotal orders any two values with a total order usable by
// ordered containers (B-trees, sorted runs): NULL first, then numerics by
// value, then strings, then bools. Unlike Compare it never errors.
func CompareTotal(a, b Value) int {
	ra, rb := totalRank(a), totalRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	c, err := Compare(a, b)
	if err != nil {
		return 0
	}
	return c
}

// totalRank buckets values so cross-kind comparisons are well defined;
// ints and floats share a bucket because Compare handles them.
func totalRank(v Value) int {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	case KindString:
		return 2
	default:
		return 3
	}
}
