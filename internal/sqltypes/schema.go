package sqltypes

import (
	"fmt"
	"strings"
)

// ColumnType is the declared type of a table column.
type ColumnType int

// Declared column types. TypeAny admits any datum and is used for columns
// whose type SQLoop infers at runtime from the seed query.
const (
	TypeAny ColumnType = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

// String returns the canonical SQL spelling of the type.
func (t ColumnType) String() string {
	switch t {
	case TypeAny:
		return "ANY"
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// ParseColumnType maps a SQL type name to a ColumnType. It accepts the
// common aliases that the three dialect profiles emit.
func ParseColumnType(name string) (ColumnType, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TypeInt, nil
	case "DOUBLE", "FLOAT", "REAL", "NUMERIC", "DECIMAL", "DOUBLE PRECISION":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "ANY":
		return TypeAny, nil
	default:
		return TypeAny, fmt.Errorf("sqltypes: unknown column type %q", name)
	}
}

// Admits reports whether a value of kind k may be stored in a column of
// type t. NULL is storable everywhere; ints widen into float columns.
func (t ColumnType) Admits(k Kind) bool {
	switch t {
	case TypeAny:
		return true
	case TypeInt:
		return k == KindNull || k == KindInt
	case TypeFloat:
		return k == KindNull || k == KindInt || k == KindFloat
	case TypeString:
		return k == KindNull || k == KindString
	case TypeBool:
		return k == KindNull || k == KindBool
	default:
		return false
	}
}

// Coerce converts v for storage in a column of type t, widening ints to
// floats where needed. It errors when the value cannot be stored.
func (t ColumnType) Coerce(v Value) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch t {
	case TypeAny:
		return v, nil
	case TypeFloat:
		if v.Kind() == KindInt {
			return NewFloat(float64(v.Int())), nil
		}
		if v.Kind() == KindFloat {
			return v, nil
		}
	case TypeInt:
		if v.Kind() == KindInt {
			return v, nil
		}
	case TypeString:
		if v.Kind() == KindString {
			return v, nil
		}
	case TypeBool:
		if v.Kind() == KindBool {
			return v, nil
		}
	}
	return Null, fmt.Errorf("sqltypes: cannot store %s in %s column", v.Kind(), t)
}

// Column describes one column of a relation.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of columns. By SQLoop convention the first
// column of an (iterative) CTE table is the primary key Rid.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns, rejecting duplicate names.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("sqltypes: duplicate column %q", c.Name)
		}
		seen[lc] = true
	}
	return &Schema{Columns: cols}, nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// KindToColumnType maps a datum kind to the narrowest column type that
// admits it; NULL maps to TypeAny.
func KindToColumnType(k Kind) ColumnType {
	switch k {
	case KindInt:
		return TypeInt
	case KindFloat:
		return TypeFloat
	case KindString:
		return TypeString
	case KindBool:
		return TypeBool
	default:
		return TypeAny
	}
}

// UnifyColumnTypes returns a column type admitting both inputs,
// preferring the narrower when one side is unknown and widening
// int+float to float.
func UnifyColumnTypes(a, b ColumnType) ColumnType {
	if a == b {
		return a
	}
	if a == TypeAny {
		return b
	}
	if b == TypeAny {
		return a
	}
	if (a == TypeInt && b == TypeFloat) || (a == TypeFloat && b == TypeInt) {
		return TypeFloat
	}
	return TypeAny
}
