package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"null", Null, KindNull, "NULL"},
		{"int", NewInt(42), KindInt, "42"},
		{"negint", NewInt(-7), KindInt, "-7"},
		{"float", NewFloat(2.5), KindFloat, "2.5"},
		{"inf", NewFloat(math.Inf(1)), KindFloat, "Infinity"},
		{"neginf", NewFloat(math.Inf(-1)), KindFloat, "-Infinity"},
		{"string", NewString("abc"), KindString, "abc"},
		{"true", NewBool(true), KindBool, "true"},
		{"false", NewBool(false), KindBool, "false"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
}

func TestFloatWidening(t *testing.T) {
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("NewInt(3).Float() = %v, want 3", got)
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewFloat(1.0), 0},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewInt(5), NewInt(5), 0},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewFloat(math.Inf(1)), NewFloat(1e308), 1},
	}
	for _, tt := range tests {
		got, err := Compare(tt.a, tt.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareTypeMismatch(t *testing.T) {
	if _, err := Compare(NewString("x"), NewInt(1)); err == nil {
		t.Error("expected error comparing string with int")
	}
	if _, err := Compare(NewBool(true), NewString("t")); err == nil {
		t.Error("expected error comparing bool with string")
	}
}

func TestCompareSQLNullPropagation(t *testing.T) {
	for _, op := range []CompareOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE} {
		got, err := CompareSQL(op, Null, NewInt(1))
		if err != nil {
			t.Fatalf("CompareSQL(%v): %v", op, err)
		}
		if !got.IsNull() {
			t.Errorf("CompareSQL(%v, NULL, 1) = %v, want NULL", op, got)
		}
	}
}

func TestCompareSQLOps(t *testing.T) {
	tests := []struct {
		op   CompareOp
		a, b Value
		want bool
	}{
		{CmpEQ, NewInt(1), NewInt(1), true},
		{CmpNE, NewInt(1), NewInt(2), true},
		{CmpLT, NewInt(1), NewInt(2), true},
		{CmpLE, NewInt(2), NewInt(2), true},
		{CmpGT, NewFloat(2.5), NewInt(2), true},
		{CmpGE, NewInt(2), NewFloat(2.5), false},
	}
	for _, tt := range tests {
		got, err := CompareSQL(tt.op, tt.a, tt.b)
		if err != nil {
			t.Fatalf("CompareSQL: %v", err)
		}
		if got.IsNull() || got.Bool() != tt.want {
			t.Errorf("CompareSQL(%v,%v,%v) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestArith(t *testing.T) {
	tests := []struct {
		op   ArithOp
		a, b Value
		want Value
	}{
		{OpAdd, NewInt(2), NewInt(3), NewInt(5)},
		{OpSub, NewInt(2), NewInt(3), NewInt(-1)},
		{OpMul, NewInt(4), NewInt(3), NewInt(12)},
		{OpDiv, NewInt(7), NewInt(2), NewInt(3)},
		{OpMod, NewInt(7), NewInt(2), NewInt(1)},
		{OpAdd, NewInt(2), NewFloat(0.5), NewFloat(2.5)},
		{OpMul, NewFloat(0.85), NewFloat(2.0), NewFloat(1.7)},
		{OpDiv, NewFloat(1), NewFloat(4), NewFloat(0.25)},
	}
	for _, tt := range tests {
		got, err := Arith(tt.op, tt.a, tt.b)
		if err != nil {
			t.Fatalf("Arith(%v,%v,%v): %v", tt.op, tt.a, tt.b, err)
		}
		if c, _ := Compare(got, tt.want); c != 0 {
			t.Errorf("Arith(%v,%v,%v) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestArithNullAndErrors(t *testing.T) {
	if got, err := Arith(OpAdd, Null, NewInt(1)); err != nil || !got.IsNull() {
		t.Errorf("NULL + 1 = (%v, %v), want NULL", got, err)
	}
	if _, err := Arith(OpDiv, NewInt(1), NewInt(0)); err == nil {
		t.Error("expected division-by-zero error")
	}
	if _, err := Arith(OpDiv, NewFloat(1), NewFloat(0)); err == nil {
		t.Error("expected float division-by-zero error")
	}
	if _, err := Arith(OpAdd, NewString("a"), NewInt(1)); err == nil {
		t.Error("expected type error adding string")
	}
}

func TestGoValueRoundTrip(t *testing.T) {
	vals := []Value{Null, NewInt(9), NewFloat(1.25), NewString("s"), NewBool(true)}
	for _, v := range vals {
		back, err := FromGo(v.GoValue())
		if err != nil {
			t.Fatalf("FromGo(%v): %v", v, err)
		}
		if back.Kind() != v.Kind() {
			t.Errorf("round trip of %v changed kind to %v", v, back.Kind())
		}
		if !v.IsNull() {
			if c, _ := Compare(v, back); c != 0 {
				t.Errorf("round trip of %v = %v", v, back)
			}
		}
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("expected error for unsupported Go type")
	}
}

func TestHashIntFloatAgreement(t *testing.T) {
	if NewInt(12345).Hash() != NewFloat(12345).Hash() {
		t.Error("int and integral float must hash identically")
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("distinct ints should (overwhelmingly) hash differently")
	}
}

func TestMapKeyEquality(t *testing.T) {
	if NewInt(7).MapKey() != NewFloat(7).MapKey() {
		t.Error("int 7 and float 7.0 must have equal map keys")
	}
	if NewInt(7).MapKey() == NewInt(8).MapKey() {
		t.Error("different values must have different keys")
	}
	v := NewString("hello")
	if got := v.MapKey().Value(); got.Str() != "hello" {
		t.Errorf("Key.Value() = %v", got)
	}
}

// Property: Compare is antisymmetric and reflexive for numeric values.
func TestQuickCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		ab, _ := Compare(va, vb)
		ba, _ := Compare(vb, va)
		aa, _ := Compare(va, va)
		return ab == -ba && aa == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hash equality follows SQL equality for mixed int/float.
func TestQuickHashConsistency(t *testing.T) {
	f := func(x int32) bool {
		return NewInt(int64(x)).Hash() == NewFloat(float64(x)).Hash() &&
			NewInt(int64(x)).MapKey() == NewFloat(float64(x)).MapKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: addition then subtraction round-trips for ints.
func TestQuickArithRoundTrip(t *testing.T) {
	f := func(a, b int32) bool {
		sum, err := Arith(OpAdd, NewInt(int64(a)), NewInt(int64(b)))
		if err != nil {
			return false
		}
		back, err := Arith(OpSub, sum, NewInt(int64(b)))
		if err != nil {
			return false
		}
		return back.Int() == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTotal(t *testing.T) {
	ordered := []Value{Null, NewInt(-5), NewFloat(0.5), NewInt(1), NewString("a"), NewBool(false), NewBool(true)}
	for i := range ordered {
		for j := range ordered {
			got := CompareTotal(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CompareTotal(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}
