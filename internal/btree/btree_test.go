package btree_test

import (
	"testing"
	"testing/quick"

	"sqloop/internal/btree"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
	"sqloop/internal/storage/storagetest"
)

func TestBTreeConformance(t *testing.T) {
	storagetest.Run(t, func() storage.Store { return btree.New() })
}

func TestBTreeDepthGrows(t *testing.T) {
	tr := btree.New()
	if tr.Depth() != 1 {
		t.Fatalf("empty depth = %d", tr.Depth())
	}
	for i := int64(0); i < 10000; i++ {
		if err := tr.Insert(sqltypes.NewInt(i).MapKey(), sqltypes.Row{sqltypes.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Depth() < 2 {
		t.Fatalf("depth after 10k inserts = %d", tr.Depth())
	}
	// Delete everything back down; tree must stay consistent.
	for i := int64(0); i < 10000; i++ {
		if !tr.Delete(sqltypes.NewInt(i).MapKey()) {
			t.Fatalf("Delete(%d) missing", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after drain = %d", tr.Len())
	}
}

// Property: inserting any permutation of keys yields a sorted scan.
func TestQuickBTreeSortedScan(t *testing.T) {
	f := func(xs []int16) bool {
		tr := btree.New()
		seen := map[int16]bool{}
		for _, x := range xs {
			if seen[x] {
				continue
			}
			seen[x] = true
			if err := tr.Insert(sqltypes.NewInt(int64(x)).MapKey(), sqltypes.Row{sqltypes.NewInt(int64(x))}); err != nil {
				return false
			}
		}
		prev := int64(-1 << 62)
		ok := true
		n := 0
		tr.Scan(func(k sqltypes.Key, _ sqltypes.Row) bool {
			v := k.Value().Int()
			if v <= prev {
				ok = false
			}
			prev = v
			n++
			return true
		})
		return ok && n == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
