// Package btree implements an in-memory B-tree keyed by sqltypes values,
// used as the ordered storage backend standing in for the MySQL profile
// of the embedded engine.
package btree

import (
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

// degree is the minimum number of children of an internal node. Nodes
// hold between degree-1 and 2*degree-1 items.
const degree = 16

type item struct {
	key sqltypes.Key
	row sqltypes.Row
}

type node struct {
	items    []item
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Tree is a B-tree implementing storage.Store. Scans visit keys in
// sqltypes.CompareTotal order.
type Tree struct {
	root *node
	size int
}

// New returns an empty B-tree store.
func New() *Tree { return &Tree{root: &node{}} }

var _ storage.Store = (*Tree)(nil)

// Name identifies the backend.
func (t *Tree) Name() string { return "btree" }

// Len returns the number of stored rows.
func (t *Tree) Len() int { return t.size }

// Clear drops every row.
func (t *Tree) Clear() {
	t.root = &node{}
	t.size = 0
}

func less(a, b sqltypes.Key) bool {
	return sqltypes.CompareTotal(a.Value(), b.Value()) < 0
}

// find returns the index of the first item in n not less than key, and
// whether that item's key equals key.
func (n *node) find(key sqltypes.Key) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(n.items[mid].key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && !less(key, n.items[lo].key) {
		return lo, true
	}
	return lo, false
}

// Get returns the row stored under key.
func (t *Tree) Get(key sqltypes.Key) (sqltypes.Row, bool) {
	n := t.root
	for n != nil {
		i, eq := n.find(key)
		if eq {
			return n.items[i].row, true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
	return nil, false
}

// Insert adds a new row; inserting an existing key fails.
func (t *Tree) Insert(key sqltypes.Key, row sqltypes.Row) error {
	if _, ok := t.Get(key); ok {
		return storage.ErrDuplicateKey
	}
	if len(t.root.items) == 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(key, row)
	t.size++
	return nil
}

// splitChild splits the full child at index i of n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	up := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = up
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insertNonFull(key sqltypes.Key, row sqltypes.Row) {
	i, _ := n.find(key)
	if n.leaf() {
		n.items = append(n.items, item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item{key: key, row: row}
		return
	}
	if len(n.children[i].items) == 2*degree-1 {
		n.splitChild(i)
		if less(n.items[i].key, key) {
			i++
		}
	}
	n.children[i].insertNonFull(key, row)
}

// Update replaces the row under key, reporting whether it existed.
func (t *Tree) Update(key sqltypes.Key, row sqltypes.Row) bool {
	n := t.root
	for n != nil {
		i, eq := n.find(key)
		if eq {
			n.items[i].row = row
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// Delete removes the row under key, reporting whether it existed.
func (t *Tree) Delete(key sqltypes.Key) bool {
	if !t.root.delete(key) {
		return false
	}
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

// delete removes key from the subtree rooted at n, which is guaranteed to
// have at least degree items unless it is the root.
func (n *node) delete(key sqltypes.Key) bool {
	i, eq := n.find(key)
	if n.leaf() {
		if !eq {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if eq {
		// Replace with predecessor from the left child (growing it first
		// if minimal).
		if len(n.children[i].items) >= degree {
			pred := n.children[i].max()
			n.items[i] = pred
			return n.children[i].delete(pred.key)
		}
		if len(n.children[i+1].items) >= degree {
			succ := n.children[i+1].min()
			n.items[i] = succ
			return n.children[i+1].delete(succ.key)
		}
		n.merge(i)
		return n.children[i].delete(key)
	}
	// Descend, ensuring the child has at least degree items.
	if len(n.children[i].items) < degree {
		n.grow(i)
		// grow may have merged and shifted; recompute.
		i, eq = n.find(key)
		if eq {
			return n.delete(key)
		}
		if n.leaf() {
			return n.delete(key)
		}
	}
	return n.children[i].delete(key)
}

func (n *node) max() item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *node) min() item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// grow gives child i at least degree items by borrowing from a sibling or
// merging.
func (n *node) grow(i int) {
	switch {
	case i > 0 && len(n.children[i-1].items) >= degree:
		// Borrow from left sibling.
		child, left := n.children[i], n.children[i-1]
		child.items = append([]item{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) >= degree:
		// Borrow from right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append([]item(nil), right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append([]*node(nil), right.children[1:]...)
		}
	case i > 0:
		n.merge(i - 1)
	default:
		n.merge(i)
	}
}

// merge folds child i+1 and separator i into child i.
func (n *node) merge(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Scan visits rows in ascending key order until fn returns false.
func (t *Tree) Scan(fn func(key sqltypes.Key, row sqltypes.Row) bool) {
	t.root.scan(fn)
}

func (n *node) scan(fn func(key sqltypes.Key, row sqltypes.Row) bool) bool {
	for i, it := range n.items {
		if !n.leaf() {
			if !n.children[i].scan(fn) {
				return false
			}
		}
		if !fn(it.key, it.row) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].scan(fn)
	}
	return true
}

// Depth returns the tree height (1 for a lone root), exposed for tests
// and the engine's cost model.
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}
