package sqlparser

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sqloop/internal/sqltypes"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparser: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Statement
	for {
		for p.peekOp(";") {
			p.next()
		}
		if p.peek().kind == tokEOF {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.peekOp(";") && p.peek().kind != tokEOF {
			return nil, p.errHere("expected ';' or end of input")
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sqlparser: empty input")
	}
	return out, nil
}

// ParseExpr parses a standalone scalar expression (used in tests and by
// the SQLoop analyzer).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errHere("unexpected trailing input")
	}
	return e, nil
}

type parser struct {
	toks    []token
	pos     int
	src     string
	nParams int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token { // token after the current one
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) peekKw(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere("expected %q", op)
	}
	return nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.peek()
	line, col := 1, 1
	for i := 0; i < t.pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	what := t.text
	if t.kind == tokEOF {
		what = "end of input"
	}
	return fmt.Errorf("sql:%d:%d: %s (near %q)", line, col, fmt.Sprintf(format, args...), what)
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	// Be lenient: allow non-reserved-feeling keywords as identifiers where
	// an identifier is required (e.g. a column named "delta" or "key").
	if t.kind == tokKeyword && identifiableKeyword(t.text) {
		p.next()
		return t.orig, nil
	}
	return "", p.errHere("expected identifier")
}

// identifiableKeyword reports keywords that may double as identifiers.
func identifiableKeyword(kw string) bool {
	switch kw {
	case "DELTA", "KEY", "INDEX", "COUNT", "SUM", "MIN", "MAX", "AVG",
		"UPDATES", "ITERATIONS", "VALUES", "VIEW", "TEMP", "BEGIN", "END", "ANY":
		return true
	default:
		return false
	}
}

// --- statements ---

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errHere("expected statement keyword")
	}
	switch t.text {
	case "WITH":
		return p.parseWith()
	case "SELECT", "VALUES":
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		return &SelectStmt{Body: body}, nil
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "TRUNCATE":
		p.next()
		p.acceptKw("TABLE")
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &TruncateStmt{Table: name}, nil
	case "BEGIN", "START":
		p.next()
		p.acceptKw("TRANSACTION")
		return &TxStmt{Kind: TxBegin}, nil
	case "COMMIT":
		p.next()
		return &TxStmt{Kind: TxCommit}, nil
	case "ROLLBACK":
		p.next()
		return &TxStmt{Kind: TxRollback}, nil
	default:
		return nil, p.errHere("unsupported statement")
	}
}

// parseWith handles plain, RECURSIVE and ITERATIVE WITH clauses.
func (p *parser) parseWith() (Statement, error) {
	if err := p.expectKw("WITH"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("RECURSIVE"):
		return p.parseLoopCTE(CTERecursive)
	case p.acceptKw("ITERATIVE"):
		return p.parseLoopCTE(CTEIterative)
	}
	// plain WITH name [(cols)] AS (body) [, ...] select
	var ctes []PlainCTE
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols, err := p.parseOptColumnList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ctes = append(ctes, PlainCTE{Name: name, Columns: cols, Body: body})
		if !p.acceptOp(",") {
			break
		}
	}
	body, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	return &SelectStmt{With: ctes, Body: body}, nil
}

func (p *parser) parseOptColumnList() ([]string, error) {
	if !p.acceptOp("(") {
		return nil, nil
	}
	var cols []string
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

// parseLoopCTE parses the body shared by RECURSIVE and ITERATIVE CTEs.
func (p *parser) parseLoopCTE(kind CTEKind) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseOptColumnList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	seed, err := p.parseSelectCoreOrValues()
	if err != nil {
		return nil, err
	}
	st := &LoopCTEStmt{Kind: kind, Name: name, Columns: cols, Seed: seed}
	switch kind {
	case CTERecursive:
		if err := p.expectKw("UNION"); err != nil {
			return nil, err
		}
		st.UnionAll = p.acceptKw("ALL")
		st.Step, err = p.parseSelectCoreOrValues()
		if err != nil {
			return nil, err
		}
	case CTEIterative:
		if err := p.expectKw("ITERATE"); err != nil {
			return nil, err
		}
		st.Step, err = p.parseSelectCoreOrValues()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("UNTIL"); err != nil {
			return nil, err
		}
		st.Until, err = p.parseTermination()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	final, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	st.Final = final
	return st, nil
}

// parseTermination parses every Table I form.
func (p *parser) parseTermination() (*Termination, error) {
	term := &Termination{}
	// Metadata forms start with an integer literal.
	if p.peek().kind == tokNumber {
		numTok := p.next()
		n, err := strconv.ParseInt(numTok.text, 10, 64)
		if err != nil {
			return nil, p.errHere("invalid termination count %q", numTok.text)
		}
		switch {
		case p.acceptKw("ITERATIONS"):
			term.Kind = TermIterations
			term.N = n
			return term, nil
		case p.acceptKw("UPDATES"):
			term.Kind = TermUpdates
			term.N = n
			return term, nil
		default:
			return nil, p.errHere("expected ITERATIONS or UPDATES")
		}
	}
	term.Kind = TermExpr
	if p.acceptKw("ANY") {
		term.Any = true
	}
	if p.acceptKw("DELTA") {
		term.Delta = true
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	body, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	term.Expr = body
	// Optional comparison to a constant: expr <,=,> e.
	for _, op := range []struct {
		text string
		op   sqltypes.CompareOp
	}{{"<=", sqltypes.CmpLE}, {">=", sqltypes.CmpGE}, {"<", sqltypes.CmpLT},
		{">", sqltypes.CmpGT}, {"=", sqltypes.CmpEQ}} {
		if p.acceptOp(op.text) {
			term.CmpOp = op.op
			cmpTo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			term.CmpTo = cmpTo
			break
		}
	}
	return term, nil
}

// --- select ---

// parseSelectBody parses a select core / VALUES with UNION [ALL] chains
// and trailing ORDER BY / LIMIT applied to the whole set operation.
func (p *parser) parseSelectBody() (SelectBody, error) {
	left, err := p.parseSelectCoreOrValues()
	if err != nil {
		return nil, err
	}
	for p.peekKw("UNION") || p.peekKw("INTERSECT") || p.peekKw("EXCEPT") {
		kind := SetUnion
		switch p.next().text {
		case "INTERSECT":
			kind = SetIntersect
		case "EXCEPT":
			kind = SetExcept
		}
		all := p.acceptKw("ALL")
		if all && kind != SetUnion {
			return nil, p.errHere("INTERSECT/EXCEPT ALL are not supported")
		}
		right, err := p.parseSelectCoreOrValues()
		if err != nil {
			return nil, err
		}
		so := &SetOp{Kind: kind, Left: left, Right: right, All: all}
		// ORDER BY / LIMIT after a union arm bind to the whole set
		// operation; hoist them off the right-hand core.
		if rc, ok := right.(*Select); ok {
			so.OrderBy, rc.OrderBy = rc.OrderBy, nil
			so.Limit, rc.Limit = rc.Limit, nil
		}
		left = so
	}
	if so, ok := left.(*SetOp); ok {
		if p.peekKw("ORDER") {
			items, err := p.parseOrderBy()
			if err != nil {
				return nil, err
			}
			so.OrderBy = items
		}
		if p.peekKw("LIMIT") {
			lim, err := p.parseLimit()
			if err != nil {
				return nil, err
			}
			so.Limit = lim
		}
	}
	return left, nil
}

func (p *parser) parseSelectCoreOrValues() (SelectBody, error) {
	switch {
	case p.peekKw("SELECT"):
		return p.parseSelectCore()
	case p.peekKw("VALUES"):
		return p.parseValues()
	case p.peekOp("("):
		p.next()
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return body, nil
	default:
		return nil, p.errHere("expected SELECT or VALUES")
	}
}

func (p *parser) parseValues() (SelectBody, error) {
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	v := &Values{}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		v.Rows = append(v.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return v, nil
}

func (p *parser) parseSelectCore() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.acceptKw("DISTINCT")
	p.acceptKw("ALL")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, te)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.peekKw("ORDER") {
		items, err := p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = items
	}
	if p.peekKw("LIMIT") {
		lim, err := p.parseLimit()
		if err != nil {
			return nil, err
		}
		sel.Limit = lim
		if p.acceptKw("OFFSET") {
			t := p.peek()
			if t.kind != tokNumber {
				return nil, p.errHere("expected OFFSET count")
			}
			p.next()
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return nil, p.errHere("invalid OFFSET %q", t.text)
			}
			sel.Offset = &n
		}
	}
	return sel, nil
}

func (p *parser) parseOrderBy() ([]OrderItem, error) {
	if err := p.expectKw("ORDER"); err != nil {
		return nil, err
	}
	if err := p.expectKw("BY"); err != nil {
		return nil, err
	}
	var items []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := OrderItem{Expr: e}
		if p.acceptKw("DESC") {
			it.Desc = true
		} else {
			p.acceptKw("ASC")
		}
		items = append(items, it)
		if !p.acceptOp(",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseLimit() (*int64, error) {
	if err := p.expectKw("LIMIT"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokNumber {
		return nil, p.errHere("expected LIMIT count")
	}
	p.next()
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return nil, p.errHere("invalid LIMIT %q", t.text)
	}
	return &n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if p.peek().kind == tokIdent && p.peek2().kind == tokOp && p.peek2().text == "." {
		save := p.pos
		tbl := p.next().text
		p.next() // .
		if p.acceptOp("*") {
			return SelectItem{Star: true, Table: tbl}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

// parseTableExpr parses one FROM item with any chained JOINs.
func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.peekKw("JOIN"):
			p.next()
			jt = JoinInner
		case p.peekKw("INNER"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.peekKw("LEFT"):
			p.next()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.peekKw("CROSS"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Type: jt, Left: left, Right: right}
		if jt != JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
		}
		left = join
	}
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.acceptOp("(") {
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.acceptKw("AS") {
			alias, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		} else if p.peek().kind == tokIdent {
			alias = p.next().text
		}
		if alias == "" {
			return nil, p.errHere("derived table requires an alias")
		}
		return &SubqueryTable{Body: body, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	if p.acceptKw("AS") {
		tn.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.peek().kind == tokIdent {
		tn.Alias = p.next().text
	}
	return tn, nil
}

// --- DDL / DML ---

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	orReplace := false
	if p.acceptKw("OR") {
		if err := p.expectKw("REPLACE"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	unlogged := p.acceptKw("UNLOGGED") || p.acceptKw("TEMPORARY") || p.acceptKw("TEMP")
	switch {
	case p.acceptKw("TABLE"):
		st := &CreateTableStmt{Unlogged: unlogged}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if p.acceptKw("AS") {
			st.AsSelect, err = p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			return st, nil
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			if p.acceptKw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				found := false
				for i := range st.Columns {
					if strings.EqualFold(st.Columns[i].Name, col) {
						st.Columns[i].PrimaryKey = true
						found = true
					}
				}
				if !found {
					return nil, p.errHere("PRIMARY KEY names unknown column %q", col)
				}
			} else {
				cname, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				typName, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				// DOUBLE PRECISION is two words.
				if strings.EqualFold(typName, "DOUBLE") && p.peek().kind == tokIdent &&
					strings.EqualFold(p.peek().text, "PRECISION") {
					p.next()
				}
				ct, err := sqltypes.ParseColumnType(typName)
				if err != nil {
					return nil, p.errHere("%v", err)
				}
				// Skip optional length spec like VARCHAR(255).
				if p.acceptOp("(") {
					for !p.peekOp(")") && p.peek().kind != tokEOF {
						p.next()
					}
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
				}
				cd := ColumnDef{Name: cname, Type: ct}
				if p.acceptKw("PRIMARY") {
					if err := p.expectKw("KEY"); err != nil {
						return nil, err
					}
					cd.PrimaryKey = true
				}
				if p.acceptKw("NOT") {
					if err := p.expectKw("NULL"); err != nil {
						return nil, err
					}
				}
				st.Columns = append(st.Columns, cd)
			}
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return st, nil
	case p.acceptKw("INDEX"):
		st := &CreateIndexStmt{}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		st.Table, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Columns, err = p.parseOptColumnList()
		if err != nil {
			return nil, err
		}
		if len(st.Columns) == 0 {
			return nil, p.errHere("CREATE INDEX requires a column list")
		}
		return st, nil
	case p.acceptKw("VIEW"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, OrReplace: orReplace, Body: body}, nil
	default:
		return nil, p.errHere("expected TABLE, INDEX or VIEW")
	}
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	st := &DropStmt{}
	switch {
	case p.acceptKw("TABLE"):
		st.Kind = DropTable
	case p.acceptKw("VIEW"):
		st.Kind = DropView
	case p.acceptKw("INDEX"):
		st.Kind = DropIndex
	default:
		return nil, p.errHere("expected TABLE, VIEW or INDEX")
	}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	// A parenthesis here may open a column list or a parenthesized SELECT.
	if p.peekOp("(") && !p.parenOpensSelect() {
		st.Columns, err = p.parseOptColumnList()
		if err != nil {
			return nil, err
		}
	}
	st.Source, err = p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	return st, nil
}

// parenOpensSelect looks ahead to see whether the upcoming "(" begins a
// subquery rather than a column list.
func (p *parser) parenOpensSelect() bool {
	i := p.pos
	depth := 0
	for ; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tokOp && t.text == "(" {
			depth++
			continue
		}
		if depth > 0 {
			if t.kind == tokKeyword && (t.text == "SELECT" || t.text == "VALUES") {
				return true
			}
			return false
		}
	}
	return false
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	if p.acceptKw("AS") {
		st.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.peek().kind == tokIdent && !p.peekKw("SET") {
		st.Alias = p.next().text
	}
	// MySQL-style UPDATE t JOIN u ON cond SET ... — normalize: u moves to
	// FROM and cond is ANDed into WHERE.
	var joinFrom []TableExpr
	var joinCond Expr
	for p.peekKw("JOIN") || p.peekKw("INNER") || p.peekKw("LEFT") {
		if p.acceptKw("INNER") || p.acceptKw("LEFT") {
			p.acceptKw("OUTER")
		}
		if err := p.expectKw("JOIN"); err != nil {
			return nil, err
		}
		te, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		joinFrom = append(joinFrom, te)
		if joinCond == nil {
			joinCond = on
		} else {
			joinCond = &LogicalExpr{Op: LogicAnd, Left: joinCond, Right: on}
		}
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// allow qualified target t.col — keep the column part.
		if p.acceptOp(".") {
			col, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, Assignment{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, te)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	st.From = append(st.From, joinFrom...)
	if joinCond != nil {
		if st.Where == nil {
			st.Where = joinCond
		} else {
			st.Where = &LogicalExpr{Op: LogicAnd, Left: joinCond, Right: st.Where}
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKw("WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &LogicalExpr{Op: LogicOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &LogicalExpr{Op: LogicAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("IS") {
		not := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Inner: left, Not: not}, nil
	}
	// [NOT] IN / [NOT] LIKE / [NOT] BETWEEN
	negated := false
	if p.peekKw("NOT") && p.peek2().kind == tokKeyword &&
		(p.peek2().text == "IN" || p.peek2().text == "LIKE" || p.peek2().text == "BETWEEN") {
		p.next()
		negated = true
	}
	if p.acceptKw("IN") {
		if p.parenOpensSelect() {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			body, err := p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InExpr{Left: left, Sub: body, Not: negated}, nil
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Left: left, List: list, Not: negated}, nil
	}
	if p.acceptKw("LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Left: left, Pattern: pat, Not: negated}, nil
	}
	if p.acceptKw("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		// Desugar: x BETWEEN lo AND hi == x >= lo AND x <= hi.
		rng := &LogicalExpr{Op: LogicAnd,
			Left:  &ComparisonExpr{Op: sqltypes.CmpGE, Left: left, Right: lo},
			Right: &ComparisonExpr{Op: sqltypes.CmpLE, Left: CloneExpr(left), Right: hi},
		}
		if negated {
			return &NotExpr{Inner: rng}, nil
		}
		return rng, nil
	}
	ops := []struct {
		text string
		op   sqltypes.CompareOp
	}{{"<=", sqltypes.CmpLE}, {">=", sqltypes.CmpGE}, {"<>", sqltypes.CmpNE},
		{"!=", sqltypes.CmpNE}, {"<", sqltypes.CmpLT}, {">", sqltypes.CmpGT},
		{"=", sqltypes.CmpEQ}}
	for _, o := range ops {
		if p.acceptOp(o.text) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &ComparisonExpr{Op: o.op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op sqltypes.ArithOp
		switch {
		case p.acceptOp("+"):
			op = sqltypes.OpAdd
		case p.acceptOp("-"):
			op = sqltypes.OpSub
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op sqltypes.ArithOp
		switch {
		case p.acceptOp("*"):
			op = sqltypes.OpMul
		case p.acceptOp("/"):
			op = sqltypes.OpDiv
		case p.acceptOp("%"):
			op = sqltypes.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Literal); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind() == sqltypes.KindInt {
				return &Literal{Val: sqltypes.NewInt(-lit.Val.Int())}, nil
			}
			return &Literal{Val: sqltypes.NewFloat(-lit.Val.Float())}, nil
		}
		return &BinaryExpr{Op: sqltypes.OpSub,
			Left:  &Literal{Val: sqltypes.NewInt(0)},
			Right: inner}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errHere("invalid number %q", t.text)
			}
			return &Literal{Val: sqltypes.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errHere("invalid integer %q", t.text)
		}
		return &Literal{Val: sqltypes.NewInt(n)}, nil
	case tokString:
		p.next()
		return &Literal{Val: sqltypes.NewString(t.text)}, nil
	case tokParam:
		p.next()
		e := &Param{Index: p.nParams}
		p.nParams++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: sqltypes.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		case "INFINITY":
			p.next()
			return &Literal{Val: sqltypes.NewFloat(math.Inf(1))}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			body, err := p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Body: body}, nil
		case "CAST":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			typName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ct, err := sqltypes.ParseColumnType(typName)
			if err != nil {
				return nil, p.errHere("%v", err)
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{Inner: inner, Type: ct}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			if p.peek2().kind == tokOp && p.peek2().text == "(" {
				p.next()
				return p.parseFuncCall(t.text)
			}
			// Aggregate keyword used as a bare identifier (column name).
			p.next()
			return p.maybeQualified(t.orig)
		default:
			// Keywords like REPLACE double as function names.
			if p.peek2().kind == tokOp && p.peek2().text == "(" {
				p.next()
				return p.parseFuncCall(t.text)
			}
			if identifiableKeyword(t.text) {
				p.next()
				return p.maybeQualified(t.orig)
			}
			return nil, p.errHere("unexpected keyword in expression")
		}
	case tokIdent:
		if p.peek2().kind == tokOp && p.peek2().text == "(" {
			p.next()
			return p.parseFuncCall(strings.ToUpper(t.text))
		}
		p.next()
		return p.maybeQualified(t.text)
	case tokOp:
		if t.text == "(" {
			// Could be a scalar subquery or a parenthesized expression.
			if p.parenOpensSelect() {
				p.next()
				body, err := p.parseSelectBody()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Body: body}, nil
			}
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("expected expression")
}

// maybeQualified handles ident or ident.ident column references.
func (p *parser) maybeQualified(first string) (Expr, error) {
	if p.acceptOp(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: first, Name: col}, nil
	}
	return &ColumnRef{Name: first}, nil
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptOp("*") {
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	fc.Distinct = p.acceptKw("DISTINCT")
	if !p.peekOp(")") {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, arg)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
