package sqlparser

// WalkExpr calls fn for e and every sub-expression, pre-order. fn
// returning false prunes descent into that node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *ComparisonExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *LogicalExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *NotExpr:
		WalkExpr(x.Inner, fn)
	case *IsNullExpr:
		WalkExpr(x.Inner, fn)
	case *InExpr:
		WalkExpr(x.Left, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *CastExpr:
		WalkExpr(x.Inner, fn)
	case *LikeExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Pattern, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Result, fn)
		}
		WalkExpr(x.Else, fn)
	}
}

// RewriteExpr returns a deep copy of e with fn applied bottom-up: each
// node is copied, its children rewritten, then fn may replace the node.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	var out Expr
	switch x := e.(type) {
	case *ColumnRef:
		c := *x
		out = &c
	case *Literal:
		c := *x
		out = &c
	case *Param:
		c := *x
		out = &c
	case *BinaryExpr:
		out = &BinaryExpr{Op: x.Op, Left: RewriteExpr(x.Left, fn), Right: RewriteExpr(x.Right, fn)}
	case *ComparisonExpr:
		out = &ComparisonExpr{Op: x.Op, Left: RewriteExpr(x.Left, fn), Right: RewriteExpr(x.Right, fn)}
	case *LogicalExpr:
		out = &LogicalExpr{Op: x.Op, Left: RewriteExpr(x.Left, fn), Right: RewriteExpr(x.Right, fn)}
	case *NotExpr:
		out = &NotExpr{Inner: RewriteExpr(x.Inner, fn)}
	case *IsNullExpr:
		out = &IsNullExpr{Inner: RewriteExpr(x.Inner, fn), Not: x.Not}
	case *InExpr:
		n := &InExpr{Left: RewriteExpr(x.Left, fn), Not: x.Not}
		for _, it := range x.List {
			n.List = append(n.List, RewriteExpr(it, fn))
		}
		if x.Sub != nil {
			n.Sub = CloneBody(x.Sub)
		}
		out = n
	case *ExistsExpr:
		out = &ExistsExpr{Body: CloneBody(x.Body)}
	case *CastExpr:
		out = &CastExpr{Inner: RewriteExpr(x.Inner, fn), Type: x.Type}
	case *LikeExpr:
		out = &LikeExpr{Left: RewriteExpr(x.Left, fn), Pattern: RewriteExpr(x.Pattern, fn), Not: x.Not}
	case *FuncCall:
		n := &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			n.Args = append(n.Args, RewriteExpr(a, fn))
		}
		out = n
	case *CaseExpr:
		n := &CaseExpr{}
		for _, w := range x.Whens {
			n.Whens = append(n.Whens, CaseWhen{
				Cond:   RewriteExpr(w.Cond, fn),
				Result: RewriteExpr(w.Result, fn),
			})
		}
		n.Else = RewriteExpr(x.Else, fn)
		out = n
	case *Subquery:
		out = &Subquery{Body: CloneBody(x.Body)}
	default:
		out = e
	}
	if r := fn(out); r != nil {
		return r
	}
	return out
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	return RewriteExpr(e, func(x Expr) Expr { return x })
}

// CloneBody deep-copies a select body.
func CloneBody(b SelectBody) SelectBody {
	switch s := b.(type) {
	case nil:
		return nil
	case *Select:
		n := &Select{Distinct: s.Distinct}
		for _, it := range s.Items {
			n.Items = append(n.Items, SelectItem{
				Expr:  CloneExpr(it.Expr),
				Alias: it.Alias,
				Star:  it.Star,
				Table: it.Table,
			})
		}
		for _, te := range s.From {
			n.From = append(n.From, CloneTableExpr(te))
		}
		n.Where = CloneExpr(s.Where)
		for _, g := range s.GroupBy {
			n.GroupBy = append(n.GroupBy, CloneExpr(g))
		}
		n.Having = CloneExpr(s.Having)
		for _, o := range s.OrderBy {
			n.OrderBy = append(n.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
		}
		if s.Limit != nil {
			v := *s.Limit
			n.Limit = &v
		}
		if s.Offset != nil {
			v := *s.Offset
			n.Offset = &v
		}
		return n
	case *Values:
		n := &Values{}
		for _, row := range s.Rows {
			var r []Expr
			for _, e := range row {
				r = append(r, CloneExpr(e))
			}
			n.Rows = append(n.Rows, r)
		}
		return n
	case *SetOp:
		n := &SetOp{Kind: s.Kind, Left: CloneBody(s.Left), Right: CloneBody(s.Right), All: s.All}
		for _, o := range s.OrderBy {
			n.OrderBy = append(n.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
		}
		if s.Limit != nil {
			v := *s.Limit
			n.Limit = &v
		}
		return n
	default:
		return b
	}
}

// CloneTableExpr deep-copies a table expression.
func CloneTableExpr(te TableExpr) TableExpr {
	switch t := te.(type) {
	case nil:
		return nil
	case *TableName:
		c := *t
		return &c
	case *SubqueryTable:
		return &SubqueryTable{Body: CloneBody(t.Body), Alias: t.Alias}
	case *JoinExpr:
		return &JoinExpr{
			Type:  t.Type,
			Left:  CloneTableExpr(t.Left),
			Right: CloneTableExpr(t.Right),
			On:    CloneExpr(t.On),
		}
	default:
		return te
	}
}

// WalkTableExprs visits every table expression in a body (including
// nested joins and derived tables), pre-order.
func WalkTableExprs(b SelectBody, fn func(TableExpr) bool) {
	switch s := b.(type) {
	case *Select:
		for _, te := range s.From {
			walkTE(te, fn)
		}
	case *SetOp:
		WalkTableExprs(s.Left, fn)
		WalkTableExprs(s.Right, fn)
	}
}

func walkTE(te TableExpr, fn func(TableExpr) bool) {
	if te == nil || !fn(te) {
		return
	}
	switch t := te.(type) {
	case *JoinExpr:
		walkTE(t.Left, fn)
		walkTE(t.Right, fn)
	case *SubqueryTable:
		WalkTableExprs(t.Body, fn)
	}
}

// RewriteBodyTables returns a deep copy of b with fn applied to every
// TableName node (post-clone); fn may return a replacement table expr.
func RewriteBodyTables(b SelectBody, fn func(*TableName) TableExpr) SelectBody {
	c := CloneBody(b)
	rewriteBodyTablesInPlace(c, fn)
	return c
}

func rewriteBodyTablesInPlace(b SelectBody, fn func(*TableName) TableExpr) {
	switch s := b.(type) {
	case *Select:
		for i, te := range s.From {
			s.From[i] = rewriteTE(te, fn)
		}
	case *SetOp:
		rewriteBodyTablesInPlace(s.Left, fn)
		rewriteBodyTablesInPlace(s.Right, fn)
	}
}

func rewriteTE(te TableExpr, fn func(*TableName) TableExpr) TableExpr {
	switch t := te.(type) {
	case *TableName:
		if r := fn(t); r != nil {
			return r
		}
		return t
	case *JoinExpr:
		t.Left = rewriteTE(t.Left, fn)
		t.Right = rewriteTE(t.Right, fn)
		return t
	case *SubqueryTable:
		rewriteBodyTablesInPlace(t.Body, fn)
		return t
	default:
		return te
	}
}
