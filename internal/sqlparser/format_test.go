package sqlparser

import (
	"strings"
	"testing"
)

// roundTrip checks Format output re-parses to an AST that formats
// identically (fixed point after one round).
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out1 := Format(st)
	st2, err := Parse(out1)
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", out1, err)
	}
	out2 := Format(st2)
	if out1 != out2 {
		t.Errorf("format not stable:\n  first:  %s\n  second: %s", out1, out2)
	}
	return out1
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a, b AS x FROM t WHERE (a > 1) AND (b = 'it''s')",
		"SELECT dst, SUM(w * 0.85) FROM e GROUP BY dst HAVING COUNT(*) > 2 ORDER BY dst DESC LIMIT 3",
		"SELECT * FROM a LEFT JOIN b ON a.id = b.id",
		"SELECT src FROM (SELECT src FROM e UNION SELECT dst AS src FROM e) AS u GROUP BY src",
		"VALUES (1, 2.5, NULL, TRUE, Infinity)",
		"CREATE UNLOGGED TABLE IF NOT EXISTS t (a BIGINT PRIMARY KEY, b DOUBLE, c TEXT)",
		"CREATE INDEX i ON t (a, b)",
		"CREATE OR REPLACE VIEW v AS SELECT * FROM a UNION ALL SELECT * FROM b",
		"DROP TABLE IF EXISTS t",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"INSERT INTO t SELECT * FROM u WHERE u.a IS NOT NULL",
		"UPDATE r SET d = m.v FROM msgs AS m WHERE r.id = m.id",
		"DELETE FROM t WHERE a IN (1, 2)",
		"TRUNCATE TABLE t",
		"SELECT CASE WHEN a = 1 THEN 0 ELSE Infinity END FROM t",
		"SELECT COALESCE(MIN(a + b), Infinity) FROM t GROUP BY c",
		`WITH ITERATIVE r(id, v) AS (SELECT 1, 2 ITERATE SELECT id, v + 1 FROM r UNTIL 5 ITERATIONS) SELECT * FROM r`,
		`WITH ITERATIVE r(id, v) AS (SELECT 1, 2 ITERATE SELECT id, v + 1 FROM r UNTIL ANY DELTA (SELECT id FROM r)) SELECT * FROM r`,
		`WITH ITERATIVE r(id, v) AS (SELECT 1, 2 ITERATE SELECT id, v + 1 FROM r UNTIL DELTA (SELECT MAX(r.v) FROM r) < 0.001) SELECT * FROM r`,
		`WITH RECURSIVE f(n, pn) AS (VALUES (0, 1) UNION ALL SELECT n + pn, n FROM f WHERE n < 1000) SELECT SUM(n) FROM f`,
		"WITH tmp AS (SELECT 1 AS a) SELECT a FROM tmp",
		"BEGIN",
		"COMMIT",
		"SELECT a FROM t WHERE NOT (a = 1) OR a IS NULL",
	}
	for _, src := range srcs {
		t.Run(src[:min(len(src), 40)], func(t *testing.T) { roundTrip(t, src) })
	}
}

func TestFormatDialectNE(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a != 1")
	pg := FormatDialect(st, DialectPGSim)
	my := FormatDialect(st, DialectMySim)
	if !strings.Contains(pg, "!=") {
		t.Errorf("pgsim output %q should keep !=", pg)
	}
	if !strings.Contains(my, "<>") {
		t.Errorf("mysim output %q should use <>", my)
	}
	// Both must re-parse.
	for _, out := range []string{pg, my} {
		if _, err := Parse(out); err != nil {
			t.Errorf("dialect output %q does not re-parse: %v", out, err)
		}
	}
}

func TestFormatDialectUpdateJoin(t *testing.T) {
	st := mustParse(t, "UPDATE r SET d = m.v FROM msgs AS m WHERE r.id = m.id")
	my := FormatDialect(st, DialectMariaSim)
	if !strings.Contains(my, "JOIN") {
		t.Errorf("mariasim UPDATE should use JOIN style, got %q", my)
	}
	st2, err := Parse(my)
	if err != nil {
		t.Fatalf("mysql-style update does not re-parse: %v", err)
	}
	up := st2.(*UpdateStmt)
	if len(up.From) != 1 || up.Where == nil {
		t.Errorf("normalized update = %+v", up)
	}
}

func TestParseDialectNames(t *testing.T) {
	for name, want := range map[string]Dialect{
		"pgsim": DialectPGSim, "postgres": DialectPGSim,
		"mysim": DialectMySim, "mysql": DialectMySim,
		"mariasim": DialectMariaSim, "mariadb": DialectMariaSim,
		"generic": DialectGeneric, "": DialectGeneric,
	} {
		got, err := ParseDialect(name)
		if err != nil || got != want {
			t.Errorf("ParseDialect(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseDialect("oracle"); err == nil {
		t.Error("expected error for unknown dialect")
	}
	if DialectPGSim.String() != "pgsim" || DialectGeneric.String() != "generic" {
		t.Error("dialect String() wrong")
	}
}

func TestWalkAndClone(t *testing.T) {
	st := mustParse(t, `SELECT COALESCE(SUM(a.x * b.y), 0) FROM a JOIN b ON a.id = b.id WHERE a.x > 1 GROUP BY a.id`)
	body := st.(*SelectStmt).Body.(*Select)

	// CloneBody must be deep: mutating the clone leaves the original alone.
	clone := CloneBody(body).(*Select)
	clone.Items[0].Alias = "changed"
	cloneRef := clone.Where.(*ComparisonExpr).Left.(*ColumnRef)
	cloneRef.Name = "zzz"
	if body.Items[0].Alias == "changed" {
		t.Error("CloneBody aliased Items")
	}
	if body.Where.(*ComparisonExpr).Left.(*ColumnRef).Name == "zzz" {
		t.Error("CloneBody aliased Where")
	}

	// WalkTableExprs sees both tables and the join.
	var names []string
	WalkTableExprs(body, func(te TableExpr) bool {
		if tn, ok := te.(*TableName); ok {
			names = append(names, tn.Name)
		}
		return true
	})
	if len(names) != 2 {
		t.Errorf("walk found %v", names)
	}

	// RewriteBodyTables renames a table without touching the original.
	out := RewriteBodyTables(body, func(tn *TableName) TableExpr {
		if tn.Name == "a" {
			return &TableName{Name: "a_part1", Alias: tn.Alias}
		}
		return nil
	})
	txt := Format(&SelectStmt{Body: out})
	if !strings.Contains(txt, "a_part1") {
		t.Errorf("rewrite lost: %s", txt)
	}
	orig := Format(&SelectStmt{Body: body})
	if strings.Contains(orig, "a_part1") {
		t.Errorf("rewrite mutated original: %s", orig)
	}
}

func TestRewriteExprReplacesColumns(t *testing.T) {
	e, err := ParseExpr("R.Delta * e.weight + 1")
	if err != nil {
		t.Fatal(err)
	}
	out := RewriteExpr(e, func(x Expr) Expr {
		if cr, ok := x.(*ColumnRef); ok && cr.Table == "R" {
			return &ColumnRef{Table: "part3", Name: cr.Name}
		}
		return nil
	})
	txt := FormatExpr(out)
	if !strings.Contains(txt, "part3.Delta") {
		t.Errorf("rewrite output %q", txt)
	}
	if got := FormatExpr(e); strings.Contains(got, "part3") {
		t.Errorf("original mutated: %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
