package sqlparser

import (
	"fmt"
	"math/rand"
	"testing"

	"sqloop/internal/sqltypes"
)

// genExpr builds a random expression tree of bounded depth. Every
// generated tree must survive Format → Parse → Format unchanged.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return &Literal{Val: sqltypes.NewInt(rng.Int63n(1000))}
		case 1:
			return &Literal{Val: sqltypes.NewFloat(float64(rng.Intn(100)) + 0.5)}
		case 2:
			return &Literal{Val: sqltypes.NewString(fmt.Sprintf("s%d", rng.Intn(50)))}
		case 3:
			return &ColumnRef{Name: fmt.Sprintf("c%d", rng.Intn(5))}
		default:
			return &ColumnRef{Table: "t", Name: fmt.Sprintf("c%d", rng.Intn(5))}
		}
	}
	switch rng.Intn(10) {
	case 0:
		return &BinaryExpr{
			Op:   sqltypes.ArithOp(1 + rng.Intn(5)),
			Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1),
		}
	case 1:
		return &ComparisonExpr{
			Op:   sqltypes.CompareOp(1 + rng.Intn(6)),
			Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1),
		}
	case 2:
		return &LogicalExpr{
			Op:   LogicalOp(1 + rng.Intn(2)),
			Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1),
		}
	case 3:
		return &NotExpr{Inner: genExpr(rng, depth-1)}
	case 4:
		return &IsNullExpr{Inner: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	case 5:
		n := 1 + rng.Intn(3)
		in := &InExpr{Left: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
		for i := 0; i < n; i++ {
			in.List = append(in.List, genExpr(rng, depth-1))
		}
		return in
	case 6:
		names := []string{"COALESCE", "LEAST", "GREATEST", "ABS", "UPPER", "CONCAT"}
		fc := &FuncCall{Name: names[rng.Intn(len(names))]}
		for i := 0; i < 1+rng.Intn(2); i++ {
			fc.Args = append(fc.Args, genExpr(rng, depth-1))
		}
		return fc
	case 7:
		ce := &CaseExpr{}
		for i := 0; i < 1+rng.Intn(2); i++ {
			ce.Whens = append(ce.Whens, CaseWhen{
				Cond:   genExpr(rng, depth-1),
				Result: genExpr(rng, depth-1),
			})
		}
		if rng.Intn(2) == 0 {
			ce.Else = genExpr(rng, depth-1)
		}
		return ce
	case 8:
		return &CastExpr{Inner: genExpr(rng, depth-1),
			Type: []sqltypes.ColumnType{sqltypes.TypeInt, sqltypes.TypeFloat, sqltypes.TypeString}[rng.Intn(3)]}
	default:
		return &LikeExpr{Left: genExpr(rng, depth-1),
			Pattern: &Literal{Val: sqltypes.NewString("%x_")}, Not: rng.Intn(2) == 0}
	}
}

// TestRandomExprRoundTrip checks Format/Parse stability on thousands of
// generated expression trees.
func TestRandomExprRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	for i := 0; i < 3000; i++ {
		e := genExpr(rng, 1+rng.Intn(4))
		text := FormatExpr(e)
		parsed, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("case %d: ParseExpr(%q): %v", i, text, err)
		}
		again := FormatExpr(parsed)
		if again != text {
			t.Fatalf("case %d: not a fixed point:\n  first:  %s\n  second: %s", i, text, again)
		}
	}
}

// TestRandomSelectRoundTrip does the same for whole SELECT statements.
func TestRandomSelectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFACE))
	for i := 0; i < 1500; i++ {
		sel := &Select{}
		for j := 0; j < 1+rng.Intn(3); j++ {
			sel.Items = append(sel.Items, SelectItem{
				Expr:  genExpr(rng, 2),
				Alias: fmt.Sprintf("o%d", j),
			})
		}
		sel.From = []TableExpr{&TableName{Name: "t", Alias: "t"}}
		if rng.Intn(2) == 0 {
			sel.Where = genExpr(rng, 2)
		}
		if rng.Intn(3) == 0 {
			sel.GroupBy = []Expr{&ColumnRef{Table: "t", Name: "c0"}}
		}
		st := &SelectStmt{Body: sel}
		text := Format(st)
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("case %d: Parse(%q): %v", i, text, err)
		}
		again := Format(parsed)
		if again != text {
			t.Fatalf("case %d: not a fixed point:\n  first:  %s\n  second: %s", i, text, again)
		}
	}
}
