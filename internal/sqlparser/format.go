package sqlparser

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sqloop/internal/sqltypes"
)

// Dialect controls engine-specific SQL spellings. SQLoop's translation
// module (§IV-B of the paper) renders every generated query through the
// dialect of the target engine so that users never write engine-specific
// SQL themselves.
type Dialect int

// Supported dialect profiles, mirroring the paper's three engines.
const (
	DialectGeneric  Dialect = iota
	DialectPGSim            // PostgreSQL-flavoured: UPDATE ... FROM, != kept
	DialectMySim            // MySQL-flavoured: UPDATE ... JOIN, <> for !=
	DialectMariaSim         // MariaDB-flavoured: same family as MySim
)

// String names the dialect.
func (d Dialect) String() string {
	switch d {
	case DialectPGSim:
		return "pgsim"
	case DialectMySim:
		return "mysim"
	case DialectMariaSim:
		return "mariasim"
	default:
		return "generic"
	}
}

// ParseDialect resolves a dialect name.
func ParseDialect(name string) (Dialect, error) {
	switch strings.ToLower(name) {
	case "", "generic":
		return DialectGeneric, nil
	case "pgsim", "postgres", "postgresql":
		return DialectPGSim, nil
	case "mysim", "mysql":
		return DialectMySim, nil
	case "mariasim", "mariadb":
		return DialectMariaSim, nil
	default:
		return DialectGeneric, fmt.Errorf("sqlparser: unknown dialect %q", name)
	}
}

// Format renders a statement in the generic dialect.
func Format(st Statement) string { return FormatDialect(st, DialectGeneric) }

// FormatDialect renders a statement as SQL text for the given dialect.
func FormatDialect(st Statement, d Dialect) string {
	f := &formatter{dialect: d}
	f.stmt(st)
	return f.sb.String()
}

// FormatExpr renders an expression in the generic dialect.
func FormatExpr(e Expr) string {
	f := &formatter{}
	f.expr(e)
	return f.sb.String()
}

// ident renders an identifier, quoting it when its spelling would not
// survive the lexer (non-word characters or a reserved keyword).
func ident(name string) string {
	plain := name != ""
	for i, r := range name {
		if r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9') {
			continue
		}
		plain = false
		break
	}
	if plain {
		up := strings.ToUpper(name)
		if !keywords[up] || identifiableKeyword(up) {
			return name
		}
	}
	return "\"" + strings.ReplaceAll(name, "\"", "") + "\""
}

type formatter struct {
	sb      strings.Builder
	dialect Dialect
}

func (f *formatter) ws(s string)           { f.sb.WriteString(s) }
func (f *formatter) wf(s string, a ...any) { fmt.Fprintf(&f.sb, s, a...) }

func (f *formatter) stmt(st Statement) {
	switch s := st.(type) {
	case *SelectStmt:
		if len(s.With) > 0 {
			f.ws("WITH ")
			for i, cte := range s.With {
				if i > 0 {
					f.ws(", ")
				}
				f.ws(ident(cte.Name))
				if len(cte.Columns) > 0 {
					f.ws("(" + joinIdents(cte.Columns) + ")")
				}
				f.ws(" AS (")
				f.body(cte.Body)
				f.ws(")")
			}
			f.ws(" ")
		}
		f.body(s.Body)
	case *LoopCTEStmt:
		f.loopCTE(s)
	case *CreateTableStmt:
		f.ws("CREATE ")
		if s.Unlogged {
			f.ws("UNLOGGED ")
		}
		f.ws("TABLE ")
		if s.IfNotExists {
			f.ws("IF NOT EXISTS ")
		}
		f.ws(ident(s.Name))
		if s.AsSelect != nil {
			f.ws(" AS ")
			f.body(s.AsSelect)
			return
		}
		f.ws(" (")
		for i, c := range s.Columns {
			if i > 0 {
				f.ws(", ")
			}
			f.ws(ident(c.Name) + " " + c.Type.String())
			if c.PrimaryKey {
				f.ws(" PRIMARY KEY")
			}
		}
		f.ws(")")
	case *CreateIndexStmt:
		f.ws("CREATE INDEX ")
		if s.IfNotExists {
			f.ws("IF NOT EXISTS ")
		}
		f.wf("%s ON %s (%s)", ident(s.Name), ident(s.Table), joinIdents(s.Columns))
	case *CreateViewStmt:
		f.ws("CREATE ")
		if s.OrReplace {
			f.ws("OR REPLACE ")
		}
		f.ws("VIEW " + ident(s.Name) + " AS ")
		f.body(s.Body)
	case *DropStmt:
		f.ws("DROP ")
		switch s.Kind {
		case DropTable:
			f.ws("TABLE ")
		case DropView:
			f.ws("VIEW ")
		case DropIndex:
			f.ws("INDEX ")
		}
		if s.IfExists {
			f.ws("IF EXISTS ")
		}
		f.ws(ident(s.Name))
	case *InsertStmt:
		f.ws("INSERT INTO " + ident(s.Table))
		if len(s.Columns) > 0 {
			f.ws(" (" + joinIdents(s.Columns) + ")")
		}
		f.ws(" ")
		f.body(s.Source)
	case *UpdateStmt:
		f.update(s)
	case *DeleteStmt:
		f.ws("DELETE FROM " + ident(s.Table))
		if s.Where != nil {
			f.ws(" WHERE ")
			f.expr(s.Where)
		}
	case *TruncateStmt:
		f.ws("TRUNCATE TABLE " + ident(s.Table))
	case *TxStmt:
		switch s.Kind {
		case TxBegin:
			f.ws("BEGIN")
		case TxCommit:
			f.ws("COMMIT")
		case TxRollback:
			f.ws("ROLLBACK")
		}
	default:
		f.wf("/* unknown statement %T */", st)
	}
}

// update renders UPDATE per dialect: the PG family uses UPDATE..FROM,
// the MySQL family uses UPDATE..JOIN.
func (f *formatter) update(s *UpdateStmt) {
	mysqlStyle := (f.dialect == DialectMySim || f.dialect == DialectMariaSim) && len(s.From) > 0
	f.ws("UPDATE " + ident(s.Table))
	if s.Alias != "" {
		f.ws(" AS " + ident(s.Alias))
	}
	writeSets := func() {
		f.ws(" SET ")
		for i, a := range s.Sets {
			if i > 0 {
				f.ws(", ")
			}
			f.ws(ident(a.Column) + " = ")
			f.expr(a.Value)
		}
	}
	if mysqlStyle {
		// UPDATE t JOIN u ON <where> SET ... ; the whole WHERE moves into
		// the ON clause, which our engine re-normalizes on parse.
		for _, te := range s.From {
			f.ws(" JOIN ")
			f.tableExpr(te)
			f.ws(" ON ")
			if s.Where != nil {
				f.expr(s.Where)
			} else {
				f.ws("TRUE")
			}
		}
		writeSets()
		return
	}
	writeSets()
	if len(s.From) > 0 {
		f.ws(" FROM ")
		for i, te := range s.From {
			if i > 0 {
				f.ws(", ")
			}
			f.tableExpr(te)
		}
	}
	if s.Where != nil {
		f.ws(" WHERE ")
		f.expr(s.Where)
	}
}

func (f *formatter) loopCTE(s *LoopCTEStmt) {
	f.ws("WITH ")
	if s.Kind == CTERecursive {
		f.ws("RECURSIVE ")
	} else {
		f.ws("ITERATIVE ")
	}
	f.ws(ident(s.Name))
	if len(s.Columns) > 0 {
		f.ws("(" + joinIdents(s.Columns) + ")")
	}
	f.ws(" AS (")
	f.body(s.Seed)
	if s.Kind == CTERecursive {
		if s.UnionAll {
			f.ws(" UNION ALL ")
		} else {
			f.ws(" UNION ")
		}
		f.body(s.Step)
	} else {
		f.ws(" ITERATE ")
		f.body(s.Step)
		f.ws(" UNTIL ")
		f.termination(s.Until)
	}
	f.ws(") ")
	f.body(s.Final)
}

func (f *formatter) termination(t *Termination) {
	if t == nil {
		f.ws("/* nil */")
		return
	}
	switch t.Kind {
	case TermIterations:
		f.wf("%d ITERATIONS", t.N)
	case TermUpdates:
		f.wf("%d UPDATES", t.N)
	case TermExpr:
		if t.Any {
			f.ws("ANY ")
		}
		if t.Delta {
			f.ws("DELTA ")
		}
		f.ws("(")
		f.body(t.Expr)
		f.ws(")")
		if t.CmpOp != 0 {
			f.ws(" " + t.CmpOp.String() + " ")
			f.expr(t.CmpTo)
		}
	}
}

func (f *formatter) body(b SelectBody) {
	switch s := b.(type) {
	case *Select:
		f.selectCore(s)
	case *Values:
		f.ws("VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				f.ws(", ")
			}
			f.ws("(")
			for j, e := range row {
				if j > 0 {
					f.ws(", ")
				}
				f.expr(e)
			}
			f.ws(")")
		}
	case *SetOp:
		f.body(s.Left)
		switch s.Kind {
		case SetIntersect:
			f.ws(" INTERSECT ")
		case SetExcept:
			f.ws(" EXCEPT ")
		default:
			if s.All {
				f.ws(" UNION ALL ")
			} else {
				f.ws(" UNION ")
			}
		}
		f.body(s.Right)
		f.orderLimit(s.OrderBy, s.Limit)
	default:
		f.wf("/* unknown body %T */", b)
	}
}

func (f *formatter) orderLimit(items []OrderItem, limit *int64) {
	if len(items) > 0 {
		f.ws(" ORDER BY ")
		for i, it := range items {
			if i > 0 {
				f.ws(", ")
			}
			f.expr(it.Expr)
			if it.Desc {
				f.ws(" DESC")
			}
		}
	}
	if limit != nil {
		f.wf(" LIMIT %d", *limit)
	}
}

func (f *formatter) selectCore(s *Select) {
	f.ws("SELECT ")
	if s.Distinct {
		f.ws("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			f.ws(", ")
		}
		switch {
		case it.Star && it.Table != "":
			f.ws(ident(it.Table) + ".*")
		case it.Star:
			f.ws("*")
		default:
			f.expr(it.Expr)
			if it.Alias != "" {
				f.ws(" AS " + ident(it.Alias))
			}
		}
	}
	if len(s.From) > 0 {
		f.ws(" FROM ")
		for i, te := range s.From {
			if i > 0 {
				f.ws(", ")
			}
			f.tableExpr(te)
		}
	}
	if s.Where != nil {
		f.ws(" WHERE ")
		f.expr(s.Where)
	}
	if len(s.GroupBy) > 0 {
		f.ws(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				f.ws(", ")
			}
			f.expr(e)
		}
	}
	if s.Having != nil {
		f.ws(" HAVING ")
		f.expr(s.Having)
	}
	f.orderLimit(s.OrderBy, s.Limit)
	if s.Offset != nil {
		f.wf(" OFFSET %d", *s.Offset)
	}
}

func (f *formatter) tableExpr(te TableExpr) {
	switch t := te.(type) {
	case *TableName:
		f.ws(ident(t.Name))
		if t.Alias != "" {
			f.ws(" AS " + ident(t.Alias))
		}
	case *SubqueryTable:
		f.ws("(")
		f.body(t.Body)
		f.ws(") AS " + ident(t.Alias))
	case *JoinExpr:
		f.tableExpr(t.Left)
		switch t.Type {
		case JoinInner:
			f.ws(" JOIN ")
		case JoinLeft:
			f.ws(" LEFT JOIN ")
		case JoinCross:
			f.ws(" CROSS JOIN ")
		}
		f.tableExpr(t.Right)
		if t.On != nil {
			f.ws(" ON ")
			f.expr(t.On)
		}
	default:
		f.wf("/* unknown table expr %T */", te)
	}
}

func (f *formatter) expr(e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			f.ws(ident(x.Table) + "." + ident(x.Name))
		} else {
			f.ws(ident(x.Name))
		}
	case *Literal:
		f.literal(x.Val)
	case *Param:
		f.ws("?")
	case *BinaryExpr:
		f.ws("(")
		f.expr(x.Left)
		f.ws(" " + x.Op.String() + " ")
		f.expr(x.Right)
		f.ws(")")
	case *ComparisonExpr:
		f.ws("(")
		f.expr(x.Left)
		op := x.Op.String()
		if x.Op == sqltypes.CmpNE &&
			(f.dialect == DialectMySim || f.dialect == DialectMariaSim) {
			op = "<>"
		}
		f.ws(" " + op + " ")
		f.expr(x.Right)
		f.ws(")")
	case *LogicalExpr:
		f.ws("(")
		f.expr(x.Left)
		if x.Op == LogicAnd {
			f.ws(" AND ")
		} else {
			f.ws(" OR ")
		}
		f.expr(x.Right)
		f.ws(")")
	case *NotExpr:
		f.ws("(NOT ")
		f.expr(x.Inner)
		f.ws(")")
	case *IsNullExpr:
		f.ws("(")
		f.expr(x.Inner)
		if x.Not {
			f.ws(" IS NOT NULL)")
		} else {
			f.ws(" IS NULL)")
		}
	case *InExpr:
		f.ws("(")
		f.expr(x.Left)
		if x.Not {
			f.ws(" NOT IN (")
		} else {
			f.ws(" IN (")
		}
		if x.Sub != nil {
			f.body(x.Sub)
		} else {
			for i, it := range x.List {
				if i > 0 {
					f.ws(", ")
				}
				f.expr(it)
			}
		}
		f.ws("))")
	case *ExistsExpr:
		f.ws("EXISTS (")
		f.body(x.Body)
		f.ws(")")
	case *CastExpr:
		f.ws("CAST(")
		f.expr(x.Inner)
		f.ws(" AS " + x.Type.String() + ")")
	case *LikeExpr:
		f.ws("(")
		f.expr(x.Left)
		if x.Not {
			f.ws(" NOT LIKE ")
		} else {
			f.ws(" LIKE ")
		}
		f.expr(x.Pattern)
		f.ws(")")
	case *FuncCall:
		f.ws(ident(x.Name) + "(")
		if x.Star {
			f.ws("*")
		} else {
			if x.Distinct {
				f.ws("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					f.ws(", ")
				}
				f.expr(a)
			}
		}
		f.ws(")")
	case *CaseExpr:
		f.ws("CASE")
		for _, w := range x.Whens {
			f.ws(" WHEN ")
			f.expr(w.Cond)
			f.ws(" THEN ")
			f.expr(w.Result)
		}
		if x.Else != nil {
			f.ws(" ELSE ")
			f.expr(x.Else)
		}
		f.ws(" END")
	case *Subquery:
		f.ws("(")
		f.body(x.Body)
		f.ws(")")
	default:
		f.wf("/* unknown expr %T */", e)
	}
}

func (f *formatter) literal(v sqltypes.Value) {
	switch v.Kind() {
	case sqltypes.KindNull:
		f.ws("NULL")
	case sqltypes.KindInt:
		f.ws(strconv.FormatInt(v.Int(), 10))
	case sqltypes.KindFloat:
		fl := v.Float()
		switch {
		case math.IsInf(fl, 1):
			f.ws("Infinity")
		case math.IsInf(fl, -1):
			f.ws("-Infinity")
		default:
			s := strconv.FormatFloat(fl, 'g', -1, 64)
			// Keep floats recognizable as floats on re-parse.
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			f.ws(s)
		}
	case sqltypes.KindString:
		f.ws("'" + strings.ReplaceAll(v.Str(), "'", "''") + "'")
	case sqltypes.KindBool:
		if v.Bool() {
			f.ws("TRUE")
		} else {
			f.ws("FALSE")
		}
	}
}

// joinIdents renders a comma-separated identifier list with quoting.
func joinIdents(names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = ident(n)
	}
	return strings.Join(out, ", ")
}
