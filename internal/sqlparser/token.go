// Package sqlparser implements a hand-written lexer and recursive-descent
// parser for the SQL subset used by SQLoop and the embedded engine,
// including the paper's iterative-CTE extension:
//
//	WITH ITERATIVE R AS (R0 ITERATE Ri UNTIL Tc) Qf
//
// The parser produces an AST (ast.go) that the engine executes directly
// and that SQLoop's translation module re-renders as dialect-specific SQL
// text (format.go).
package sqlparser

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // ? placeholder
)

// token is one lexical token with its source position (for errors).
type token struct {
	kind tokenKind
	text string // keyword text is upper-cased; idents keep original case
	orig string // original spelling for keywords used as identifiers
	pos  int
}

// keywords recognized by the lexer. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "ON": true, "JOIN": true, "LEFT": true,
	"RIGHT": true, "INNER": true, "OUTER": true, "CROSS": true, "UNION": true,
	"ALL": true, "DISTINCT": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"VIEW": true, "DROP": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "TRUNCATE": true,
	"PRIMARY": true, "KEY": true, "IF": true, "EXISTS": true, "REPLACE": true,
	"UNLOGGED": true, "TEMPORARY": true, "TEMP": true, "WITH": true,
	"RECURSIVE": true, "ITERATIVE": true, "ITERATE": true, "UNTIL": true,
	"ITERATIONS": true, "UPDATES": true, "ANY": true, "DELTA": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "START": true,
	"TRANSACTION": true, "INFINITY": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "USING": true,
	"INTERSECT": true, "EXCEPT": true, "CAST": true,
}

// lexer splits SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning an error with position context on invalid
// input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, orig: word, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	default:
		return l.lexOp()
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

func (l *lexer) lexQuotedIdent() (token, error) {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return token{kind: tokIdent, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated quoted identifier")
}

// multi-char operators, longest first.
var operators = []string{"<=", ">=", "<>", "!=", "||", "<", ">", "=", "+", "-", "*", "/", "%", "(", ")", ",", ";", "."}

func (l *lexer) lexOp() (token, error) {
	rest := l.src[l.pos:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			t := token{kind: tokOp, text: op, pos: l.pos}
			l.pos += len(op)
			return t, nil
		}
	}
	return token{}, l.errf(l.pos, "unexpected character %q", l.src[l.pos])
}

// Identifiers are ASCII-only (the lexer walks bytes, so admitting
// unicode.IsLetter here would misclassify UTF-8 continuation bytes);
// anything else must be double-quoted.
func isIdentStart(r rune) bool {
	return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

func isIdentPart(r rune) bool { return isIdentStart(r) || r >= '0' && r <= '9' }
func isDigit(b byte) bool     { return b >= '0' && b <= '9' }
