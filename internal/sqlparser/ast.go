package sqlparser

import (
	"sqloop/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression.
type Expr interface{ expr() }

// TableExpr is any FROM-clause item.
type TableExpr interface{ tableExpr() }

// SelectBody is a SELECT core, a VALUES list, or a set operation over
// them.
type SelectBody interface{ selectBody() }

// --- select bodies ---

// Select is a single SELECT core.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr // cross-joined list; JOIN trees live inside items
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// Values is a VALUES (...), (...) literal relation.
type Values struct {
	Rows [][]Expr
}

// SetOpKind distinguishes UNION, INTERSECT and EXCEPT.
type SetOpKind int

// Set operation kinds.
const (
	SetUnion SetOpKind = iota // zero value: UNION (the common case)
	SetIntersect
	SetExcept
)

// SetOp is a set operation over two bodies. All applies to UNION only
// (INTERSECT/EXCEPT use set semantics, as in the SQL standard's core).
type SetOp struct {
	Kind        SetOpKind
	Left, Right SelectBody
	All         bool
	OrderBy     []OrderItem
	Limit       *int64
}

func (*Select) selectBody() {}
func (*Values) selectBody() {}
func (*SetOp) selectBody()  {}

// SelectItem is one projection: an expression with an optional alias, or
// a star.
type SelectItem struct {
	Expr  Expr   // nil for star
	Alias string // optional
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// --- table expressions ---

// TableName references a named table or view.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Body  SelectBody
	Alias string
}

// JoinType distinguishes join flavours.
type JoinType int

// Join flavours.
const (
	JoinInner JoinType = iota + 1
	JoinLeft
	JoinCross
)

// JoinExpr is an explicit JOIN between two table expressions.
type JoinExpr struct {
	Type        JoinType
	Left, Right TableExpr
	On          Expr
}

func (*TableName) tableExpr()     {}
func (*SubqueryTable) tableExpr() {}
func (*JoinExpr) tableExpr()      {}

// --- expressions ---

// ColumnRef names a column, optionally table-qualified.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

// Param is a ? bind placeholder; Index is its 0-based ordinal.
type Param struct {
	Index int
}

// BinaryExpr is arithmetic: + - * / %.
type BinaryExpr struct {
	Op          sqltypes.ArithOp
	Left, Right Expr
}

// ComparisonExpr is = != < <= > >=.
type ComparisonExpr struct {
	Op          sqltypes.CompareOp
	Left, Right Expr
}

// LogicalOp is AND/OR.
type LogicalOp int

// Logical connectives.
const (
	LogicAnd LogicalOp = iota + 1
	LogicOr
)

// LogicalExpr combines predicates with AND/OR.
type LogicalExpr struct {
	Op          LogicalOp
	Left, Right Expr
}

// NotExpr negates a predicate.
type NotExpr struct {
	Inner Expr
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	Inner Expr
	Not   bool
}

// InExpr is `x [NOT] IN (e1, e2, ...)` or `x [NOT] IN (SELECT ...)`.
type InExpr struct {
	Left Expr
	List []Expr     // nil when Sub is set
	Sub  SelectBody // subquery form
	Not  bool
}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Distinct bool
	Star     bool
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Subquery is a scalar subquery: (SELECT ...).
type Subquery struct {
	Body SelectBody
}

// ExistsExpr is EXISTS (SELECT ...).
type ExistsExpr struct {
	Body SelectBody
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	Inner Expr
	Type  sqltypes.ColumnType
}

// LikeExpr is `x [NOT] LIKE pattern` with % and _ wildcards.
type LikeExpr struct {
	Left, Pattern Expr
	Not           bool
}

func (*ColumnRef) expr()      {}
func (*Literal) expr()        {}
func (*Param) expr()          {}
func (*BinaryExpr) expr()     {}
func (*ComparisonExpr) expr() {}
func (*LogicalExpr) expr()    {}
func (*NotExpr) expr()        {}
func (*IsNullExpr) expr()     {}
func (*InExpr) expr()         {}
func (*FuncCall) expr()       {}
func (*CaseExpr) expr()       {}
func (*Subquery) expr()       {}
func (*ExistsExpr) expr()     {}
func (*CastExpr) expr()       {}
func (*LikeExpr) expr()       {}

// --- statements ---

// SelectStmt wraps a select body (with optional plain WITH CTEs) as a
// statement.
type SelectStmt struct {
	With []PlainCTE
	Body SelectBody
}

// PlainCTE is a non-recursive WITH entry.
type PlainCTE struct {
	Name    string
	Columns []string
	Body    SelectBody
}

// CTEKind distinguishes the three WITH forms SQLoop accepts.
type CTEKind int

// CTE kinds.
const (
	CTERecursive CTEKind = iota + 1
	CTEIterative
)

// LoopCTEStmt is the paper's construct:
//
//	WITH RECURSIVE R AS (R0 UNION ALL Ri) Qf
//	WITH ITERATIVE R AS (R0 ITERATE Ri UNTIL Tc) Qf
//
// It is handled by SQLoop, never sent to an engine directly.
type LoopCTEStmt struct {
	Kind    CTEKind
	Name    string
	Columns []string
	Seed    SelectBody   // R0
	Step    SelectBody   // Ri
	Until   *Termination // nil for recursive CTEs (fix-point implied)
	Final   SelectBody   // Qf
	// UnionAll distinguishes RECURSIVE ... UNION ALL (bag semantics,
	// the paper's form) from ... UNION (set semantics with
	// deduplication, needed for transitive closure on cyclic data).
	UnionAll bool
}

// TermKind classifies Table I termination conditions.
type TermKind int

// Termination kinds per Table I of the paper.
const (
	TermIterations TermKind = iota + 1 // UNTIL n ITERATIONS
	TermUpdates                        // UNTIL n UPDATES
	TermExpr                           // UNTIL [ANY] [DELTA] expr [cmp e]
)

// Termination is the parsed Tc.
type Termination struct {
	Kind  TermKind
	N     int64 // iterations or updates threshold
	Any   bool  // ANY: at least one row satisfies
	Delta bool  // DELTA: expr may reference Rdelta
	Expr  SelectBody
	CmpOp sqltypes.CompareOp // 0 when no comparison
	CmpTo Expr               // literal e
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqltypes.ColumnType
	PrimaryKey bool
}

// CreateTableStmt is CREATE [UNLOGGED|TEMP] TABLE [IF NOT EXISTS] t (...)
// or CREATE TABLE t AS select.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Unlogged    bool
	Columns     []ColumnDef
	AsSelect    SelectBody // nil unless CREATE TABLE ... AS
}

// CreateIndexStmt is CREATE INDEX [IF NOT EXISTS] name ON t (cols).
type CreateIndexStmt struct {
	Name        string
	Table       string
	Columns     []string
	IfNotExists bool
}

// CreateViewStmt is CREATE [OR REPLACE] VIEW v AS select.
type CreateViewStmt struct {
	Name      string
	OrReplace bool
	Body      SelectBody
}

// DropKind says what a DROP statement removes.
type DropKind int

// Droppable object kinds.
const (
	DropTable DropKind = iota + 1
	DropView
	DropIndex
)

// DropStmt is DROP TABLE/VIEW/INDEX [IF EXISTS] name.
type DropStmt struct {
	Kind     DropKind
	Name     string
	IfExists bool
}

// InsertStmt is INSERT INTO t [(cols)] select-or-values.
type InsertStmt struct {
	Table   string
	Columns []string
	Source  SelectBody
}

// Assignment is one SET col = expr.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE t [AS a] SET ... [FROM ...] WHERE ...
// The FROM list supports the PostgreSQL-style correlated update that
// SQLoop's translator emits; the MySQL-style UPDATE t JOIN u ON ... SET
// is normalized into the same shape by the parser.
type UpdateStmt struct {
	Table string
	Alias string
	Sets  []Assignment
	From  []TableExpr
	Where Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// TruncateStmt empties a table.
type TruncateStmt struct {
	Table string
}

// TxStmt is BEGIN/COMMIT/ROLLBACK.
type TxStmt struct {
	Kind TxKind
}

// TxKind enumerates transaction-control statements.
type TxKind int

// Transaction statement kinds.
const (
	TxBegin TxKind = iota + 1
	TxCommit
	TxRollback
)

func (*SelectStmt) stmt()      {}
func (*LoopCTEStmt) stmt()     {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*CreateViewStmt) stmt()  {}
func (*DropStmt) stmt()        {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*TruncateStmt) stmt()    {}
func (*TxStmt) stmt()          {}
