package sqlparser

import "testing"

// FuzzParse checks the lexer/parser never panic and that anything they
// accept survives a format/parse round trip. `go test` runs the seed
// corpus; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"SELECT 1",
		"SELECT * FROM t WHERE a = 'x''y' AND b != 2.5e3",
		"WITH ITERATIVE r(a, b) AS (VALUES (1, 2) ITERATE SELECT a, b FROM r UNTIL 1 ITERATIONS) SELECT * FROM r",
		"WITH RECURSIVE r(a) AS (VALUES (1) UNION ALL SELECT a FROM r WHERE a < 5) SELECT * FROM r",
		"CREATE TABLE t (a BIGINT PRIMARY KEY, b DOUBLE)",
		"UPDATE t SET a = b + 1 FROM u WHERE t.id = u.id",
		"INSERT INTO t VALUES (1), (NULL), (Infinity)",
		"SELECT CAST(a AS TEXT) FROM t WHERE b LIKE '%x_' OR c BETWEEN 1 AND 2",
		"SELECT a FROM t INTERSECT SELECT b FROM u ORDER BY 1 LIMIT 3",
		"SELECT COUNT(*), SUM(DISTINCT x) FROM t GROUP BY y HAVING COUNT(*) > 1",
		"-- comment\nSELECT /* block */ 1",
		"SELECT \"quoted ident\" FROM \"weird table\"",
		"SELECT ((((1))))",
		"WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a, b",
		"SELECT 0xNOT A NUMBER",
		"SELECT 'unterminated",
		"\x00\x01\x02",
		"UNTIL DELTA ANY",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		out := Format(st)
		st2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted %q, but its formatting %q does not re-parse: %v", src, out, err)
		}
		out2 := Format(st2)
		if out != out2 {
			t.Fatalf("format not stable for %q:\n  %s\n  %s", src, out, out2)
		}
	})
}
