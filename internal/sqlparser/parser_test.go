package sqlparser

import (
	"math"
	"strings"
	"testing"

	"sqloop/internal/sqltypes"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := mustParse(t, "SELECT a, b AS x FROM t WHERE a > 1")
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	core, ok := sel.Body.(*Select)
	if !ok {
		t.Fatalf("body %T", sel.Body)
	}
	if len(core.Items) != 2 || core.Items[1].Alias != "x" {
		t.Errorf("items = %+v", core.Items)
	}
	if core.Where == nil {
		t.Error("missing WHERE")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	st := mustParse(t, "SELECT a val FROM t u")
	core := st.(*SelectStmt).Body.(*Select)
	if core.Items[0].Alias != "val" {
		t.Errorf("implicit alias = %q", core.Items[0].Alias)
	}
	tn := core.From[0].(*TableName)
	if tn.Alias != "u" {
		t.Errorf("table alias = %q", tn.Alias)
	}
}

func TestParseJoins(t *testing.T) {
	st := mustParse(t, `SELECT * FROM a LEFT JOIN b ON a.id = b.id JOIN c ON c.id = a.id`)
	core := st.(*SelectStmt).Body.(*Select)
	j, ok := core.From[0].(*JoinExpr)
	if !ok {
		t.Fatalf("from[0] = %T", core.From[0])
	}
	if j.Type != JoinInner {
		t.Errorf("outer join type = %v, want inner", j.Type)
	}
	inner, ok := j.Left.(*JoinExpr)
	if !ok || inner.Type != JoinLeft {
		t.Errorf("nested join = %+v", j.Left)
	}
}

func TestParseGroupByAggregates(t *testing.T) {
	st := mustParse(t, `SELECT dst, SUM(w * 0.85), COUNT(*), AVG(w) FROM e GROUP BY dst HAVING COUNT(*) > 2`)
	core := st.(*SelectStmt).Body.(*Select)
	if len(core.GroupBy) != 1 || core.Having == nil {
		t.Fatalf("groupby/having: %+v", core)
	}
	fc := core.Items[2].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Errorf("COUNT(*) parsed as %+v", fc)
	}
}

func TestParseUnion(t *testing.T) {
	st := mustParse(t, "SELECT src FROM e UNION SELECT dst FROM e UNION ALL SELECT 1")
	so, ok := st.(*SelectStmt).Body.(*SetOp)
	if !ok {
		t.Fatalf("body %T", st.(*SelectStmt).Body)
	}
	if !so.All {
		t.Error("outer set op should be UNION ALL")
	}
	left, ok := so.Left.(*SetOp)
	if !ok || left.All {
		t.Errorf("left = %+v", so.Left)
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	st := mustParse(t, `SELECT src FROM (SELECT src FROM e UNION SELECT dst FROM e) AS alledges GROUP BY src`)
	core := st.(*SelectStmt).Body.(*Select)
	sub, ok := core.From[0].(*SubqueryTable)
	if !ok || sub.Alias != "alledges" {
		t.Fatalf("from = %+v", core.From[0])
	}
}

func TestParseCaseCoalesceLeastInfinity(t *testing.T) {
	st := mustParse(t, `SELECT CASE WHEN src = 1 THEN 0 ELSE Infinity END, COALESCE(a, 0.15), LEAST(d, x) FROM t`)
	core := st.(*SelectStmt).Body.(*Select)
	ce := core.Items[0].Expr.(*CaseExpr)
	lit := ce.Else.(*Literal)
	if !math.IsInf(lit.Val.Float(), 1) {
		t.Errorf("ELSE = %v, want Infinity", lit.Val)
	}
	if fc := core.Items[1].Expr.(*FuncCall); fc.Name != "COALESCE" {
		t.Errorf("item1 = %+v", fc)
	}
	if fc := core.Items[2].Expr.(*FuncCall); fc.Name != "LEAST" {
		t.Errorf("item2 = %+v", fc)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE UNLOGGED TABLE IF NOT EXISTS edges (src BIGINT PRIMARY KEY, dst BIGINT, weight DOUBLE)`)
	ct := st.(*CreateTableStmt)
	if !ct.IfNotExists || !ct.Unlogged || ct.Name != "edges" {
		t.Fatalf("create = %+v", ct)
	}
	if len(ct.Columns) != 3 || !ct.Columns[0].PrimaryKey {
		t.Fatalf("columns = %+v", ct.Columns)
	}
	if ct.Columns[2].Type != sqltypes.TypeFloat {
		t.Errorf("weight type = %v", ct.Columns[2].Type)
	}
}

func TestParseCreateTableTrailingPrimaryKey(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a))`)
	ct := st.(*CreateTableStmt)
	if !ct.Columns[0].PrimaryKey {
		t.Error("PRIMARY KEY (a) not applied")
	}
}

func TestParseCreateTableAs(t *testing.T) {
	st := mustParse(t, `CREATE TABLE m AS SELECT a FROM t`)
	ct := st.(*CreateTableStmt)
	if ct.AsSelect == nil {
		t.Fatal("missing AS SELECT")
	}
}

func TestParseCreateIndexViewDrop(t *testing.T) {
	st := mustParse(t, `CREATE INDEX idx_e ON edges (dst, src)`)
	ci := st.(*CreateIndexStmt)
	if ci.Table != "edges" || len(ci.Columns) != 2 {
		t.Fatalf("index = %+v", ci)
	}
	st = mustParse(t, `CREATE OR REPLACE VIEW v AS SELECT * FROM a UNION ALL SELECT * FROM b`)
	cv := st.(*CreateViewStmt)
	if !cv.OrReplace {
		t.Error("OR REPLACE lost")
	}
	st = mustParse(t, `DROP TABLE IF EXISTS tmp`)
	dt := st.(*DropStmt)
	if dt.Kind != DropTable || !dt.IfExists {
		t.Fatalf("drop = %+v", dt)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	ins := st.(*InsertStmt)
	if len(ins.Columns) != 2 {
		t.Fatalf("columns = %v", ins.Columns)
	}
	v := ins.Source.(*Values)
	if len(v.Rows) != 2 {
		t.Fatalf("rows = %d", len(v.Rows))
	}
	st = mustParse(t, `INSERT INTO t SELECT * FROM u`)
	if _, ok := st.(*InsertStmt).Source.(*Select); !ok {
		t.Error("INSERT ... SELECT body wrong")
	}
	st = mustParse(t, `INSERT INTO t (SELECT a FROM u)`)
	if _, ok := st.(*InsertStmt).Source.(*Select); !ok {
		t.Error("INSERT with parenthesized SELECT wrong")
	}
}

func TestParseUpdateFromStyle(t *testing.T) {
	st := mustParse(t, `UPDATE r SET delta = m.val FROM msgs AS m WHERE r.id = m.id`)
	up := st.(*UpdateStmt)
	if len(up.From) != 1 || up.Where == nil || len(up.Sets) != 1 {
		t.Fatalf("update = %+v", up)
	}
}

func TestParseUpdateJoinStyleNormalized(t *testing.T) {
	st := mustParse(t, `UPDATE r JOIN m ON r.id = m.id SET delta = m.val`)
	up := st.(*UpdateStmt)
	if len(up.From) != 1 {
		t.Fatalf("join not moved to FROM: %+v", up)
	}
	if up.Where == nil {
		t.Fatal("ON condition not moved to WHERE")
	}
}

func TestParseDeleteTruncateTx(t *testing.T) {
	if st := mustParse(t, `DELETE FROM t WHERE a = 1`); st.(*DeleteStmt).Where == nil {
		t.Error("delete where lost")
	}
	if st := mustParse(t, `TRUNCATE TABLE t`); st.(*TruncateStmt).Table != "t" {
		t.Error("truncate table lost")
	}
	if st := mustParse(t, `BEGIN`); st.(*TxStmt).Kind != TxBegin {
		t.Error("begin")
	}
	if st := mustParse(t, `COMMIT`); st.(*TxStmt).Kind != TxCommit {
		t.Error("commit")
	}
}

func TestParseRecursiveCTEFibonacci(t *testing.T) {
	src := `
WITH RECURSIVE Fibonacci(n, pn) AS (
  VALUES (0, 1)
  UNION ALL
  SELECT n + pn, n FROM Fibonacci WHERE n < 1000
)
SELECT SUM(n) FROM Fibonacci`
	st := mustParse(t, src)
	cte := st.(*LoopCTEStmt)
	if cte.Kind != CTERecursive || cte.Name != "Fibonacci" {
		t.Fatalf("cte = %+v", cte)
	}
	if len(cte.Columns) != 2 {
		t.Fatalf("columns = %v", cte.Columns)
	}
	if _, ok := cte.Seed.(*Values); !ok {
		t.Errorf("seed = %T", cte.Seed)
	}
	if cte.Until != nil {
		t.Error("recursive CTE must not carry UNTIL")
	}
}

func TestParseIterativeCTEPageRank(t *testing.T) {
	src := `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 100 ITERATIONS
)
SELECT Node, Rank FROM PageRank`
	st := mustParse(t, src)
	cte := st.(*LoopCTEStmt)
	if cte.Kind != CTEIterative {
		t.Fatalf("kind = %v", cte.Kind)
	}
	if cte.Until == nil || cte.Until.Kind != TermIterations || cte.Until.N != 100 {
		t.Fatalf("until = %+v", cte.Until)
	}
	step := cte.Step.(*Select)
	if len(step.Items) != 3 || len(step.GroupBy) != 1 {
		t.Fatalf("step = %+v", step)
	}
}

func TestParseIterativeCTESSSP(t *testing.T) {
	src := `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, Infinity, CASE WHEN src = 1 THEN 0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT sssp.Distance FROM sssp WHERE sssp.Node = 100`
	st := mustParse(t, src)
	cte := st.(*LoopCTEStmt)
	if cte.Until.Kind != TermUpdates || cte.Until.N != 0 {
		t.Fatalf("until = %+v", cte.Until)
	}
}

func TestParseTerminationForms(t *testing.T) {
	base := `WITH ITERATIVE r(id, v) AS (SELECT 1, 2 ITERATE SELECT id, v + 1 FROM r UNTIL %s) SELECT * FROM r`
	tests := []struct {
		until string
		check func(*Termination) bool
	}{
		{"5 ITERATIONS", func(tc *Termination) bool { return tc.Kind == TermIterations && tc.N == 5 }},
		{"0 UPDATES", func(tc *Termination) bool { return tc.Kind == TermUpdates && tc.N == 0 }},
		{"(SELECT id FROM r WHERE v > 10)", func(tc *Termination) bool {
			return tc.Kind == TermExpr && !tc.Any && !tc.Delta && tc.CmpOp == 0
		}},
		{"ANY (SELECT id FROM r WHERE v > 10)", func(tc *Termination) bool { return tc.Any && !tc.Delta }},
		{"(SELECT SUM(v) FROM r) > 100", func(tc *Termination) bool {
			return tc.CmpOp == sqltypes.CmpGT && tc.CmpTo != nil
		}},
		{"DELTA (SELECT id FROM r JOIN rdelta ON r.id = rdelta.id WHERE r.v - rdelta.v < 1)",
			func(tc *Termination) bool { return tc.Delta && !tc.Any }},
		{"ANY DELTA (SELECT id FROM r)", func(tc *Termination) bool { return tc.Delta && tc.Any }},
		{"DELTA (SELECT MAX(r.v - rdelta.v) FROM r JOIN rdelta ON r.id = rdelta.id) < 0.001",
			func(tc *Termination) bool { return tc.Delta && tc.CmpOp == sqltypes.CmpLT }},
	}
	for _, tt := range tests {
		t.Run(tt.until, func(t *testing.T) {
			st := mustParse(t, strings.Replace(base, "%s", tt.until, 1))
			tc := st.(*LoopCTEStmt).Until
			if !tt.check(tc) {
				t.Errorf("termination %q parsed as %+v", tt.until, tc)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"CREATE TABLE t (a BLOB)",
		"WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 2) SELECT 1", // missing UNTIL
		"SELECT 'unterminated",
		"SELECT a FROM t GROUP",
		"INSERT INTO",
		"UPDATE t SET",
		"SELECT CASE END",
		"SELECT (SELECT 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll("SELECT 1; SELECT 2;; SELECT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseParams(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a = ? AND b > ?")
	core := st.(*SelectStmt).Body.(*Select)
	n := 0
	WalkExpr(core.Where, func(e Expr) bool {
		if p, ok := e.(*Param); ok {
			if p.Index != n {
				t.Errorf("param index = %d, want %d", p.Index, n)
			}
			n++
		}
		return true
	})
	if n != 2 {
		t.Errorf("found %d params, want 2", n)
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, "SELECT a -- trailing\nFROM t /* block\ncomment */ WHERE a = 1")
	if _, ok := st.(*SelectStmt); !ok {
		t.Fatalf("got %T", st)
	}
}

func TestParsePlainWith(t *testing.T) {
	st := mustParse(t, `WITH tmp AS (SELECT 1 AS a), t2(x) AS (SELECT 2) SELECT * FROM tmp, t2`)
	sel := st.(*SelectStmt)
	if len(sel.With) != 2 || sel.With[1].Columns[0] != "x" {
		t.Fatalf("with = %+v", sel.With)
	}
}

func TestParseNegativeNumberFolding(t *testing.T) {
	e, err := ParseExpr("-3.5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*Literal)
	if !ok || lit.Val.Float() != -3.5 {
		t.Fatalf("got %#v", e)
	}
	e, err = ParseExpr("-Infinity")
	if err != nil {
		t.Fatal(err)
	}
	if lit := e.(*Literal); !math.IsInf(lit.Val.Float(), -1) {
		t.Fatalf("got %v", lit.Val)
	}
}

func TestParseInAndIsNull(t *testing.T) {
	e, err := ParseExpr("a IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	in := e.(*InExpr)
	if len(in.List) != 3 || in.Not {
		t.Fatalf("in = %+v", in)
	}
	e, err = ParseExpr("a NOT IN (1)")
	if err != nil {
		t.Fatal(err)
	}
	if !e.(*InExpr).Not {
		t.Error("NOT IN lost")
	}
	e, err = ParseExpr("x IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if !e.(*IsNullExpr).Not {
		t.Error("IS NOT NULL lost")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	be := e.(*BinaryExpr)
	if be.Op != sqltypes.OpAdd {
		t.Fatalf("top op = %v", be.Op)
	}
	if inner := be.Right.(*BinaryExpr); inner.Op != sqltypes.OpMul {
		t.Fatalf("inner op = %v", inner.Op)
	}
	e, err = ParseExpr("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	le := e.(*LogicalExpr)
	if le.Op != LogicOr {
		t.Fatalf("top logical = %v", le.Op)
	}
	if right := le.Right.(*LogicalExpr); right.Op != LogicAnd {
		t.Fatalf("right logical = %v", right.Op)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
	core := st.(*SelectStmt).Body.(*Select)
	if len(core.OrderBy) != 2 || !core.OrderBy[0].Desc || core.OrderBy[1].Desc {
		t.Fatalf("order = %+v", core.OrderBy)
	}
	if core.Limit == nil || *core.Limit != 10 {
		t.Fatalf("limit = %v", core.Limit)
	}
	st = mustParse(t, "SELECT a FROM t UNION SELECT b FROM u ORDER BY 1 LIMIT 5")
	so := st.(*SelectStmt).Body.(*SetOp)
	if so.Limit == nil || *so.Limit != 5 || len(so.OrderBy) != 1 {
		t.Fatalf("setop order/limit = %+v", so)
	}
}

func TestParseNewFeatures(t *testing.T) {
	srcs := []string{
		`SELECT * FROM t WHERE name LIKE 'a%'`,
		`SELECT * FROM t WHERE name NOT LIKE '_b%'`,
		`SELECT * FROM t WHERE age BETWEEN 1 AND 10`,
		`SELECT * FROM t WHERE age NOT BETWEEN 1 AND 10`,
		`SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)`,
		`SELECT * FROM t WHERE id IN (SELECT id FROM u)`,
		`SELECT * FROM t WHERE id NOT IN (SELECT id FROM u WHERE x > 2)`,
		`SELECT CAST(a AS BIGINT) FROM t`,
		`SELECT CAST('1.5' AS DOUBLE)`,
		`SELECT a FROM t INTERSECT SELECT b FROM u`,
		`SELECT a FROM t EXCEPT SELECT b FROM u`,
		`SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 10`,
		`SELECT UPPER(name), SUBSTR(name, 1, 3) FROM t`,
	}
	for _, src := range srcs {
		st, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Round-trip through the formatter.
		out := Format(st)
		if _, err := Parse(out); err != nil {
			t.Errorf("re-Parse(%q): %v", out, err)
		}
	}
}

func TestParseBetweenDesugar(t *testing.T) {
	e, err := ParseExpr("x BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	le, ok := e.(*LogicalExpr)
	if !ok || le.Op != LogicAnd {
		t.Fatalf("BETWEEN desugar = %T", e)
	}
}

func TestParseSetOpKinds(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t INTERSECT SELECT b FROM u")
	so := st.(*SelectStmt).Body.(*SetOp)
	if so.Kind != SetIntersect {
		t.Fatalf("kind = %v", so.Kind)
	}
	st = mustParse(t, "SELECT a FROM t EXCEPT SELECT b FROM u")
	if st.(*SelectStmt).Body.(*SetOp).Kind != SetExcept {
		t.Fatal("EXCEPT kind lost")
	}
	if _, err := Parse("SELECT a FROM t EXCEPT ALL SELECT b FROM u"); err == nil {
		t.Fatal("EXCEPT ALL must be rejected")
	}
}

func TestParseOffset(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t LIMIT 3 OFFSET 7")
	core := st.(*SelectStmt).Body.(*Select)
	if core.Offset == nil || *core.Offset != 7 {
		t.Fatalf("offset = %v", core.Offset)
	}
}
