package lsm_test

import (
	"testing"

	"sqloop/internal/lsm"
	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
	"sqloop/internal/storage/storagetest"
)

func TestLSMConformance(t *testing.T) {
	storagetest.Run(t, func() storage.Store { return lsm.New() })
}

func TestLSMFlushAndCompaction(t *testing.T) {
	s := lsm.New()
	// Enough churn to force several flushes and at least one compaction.
	for i := int64(0); i < 20000; i++ {
		k := sqltypes.NewInt(i % 3000).MapKey()
		if _, ok := s.Get(k); ok {
			s.Update(k, sqltypes.Row{sqltypes.NewInt(i)})
		} else if err := s.Insert(k, sqltypes.Row{sqltypes.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Flushes == 0 {
		t.Error("expected at least one flush")
	}
	if s.Compactions == 0 {
		t.Error("expected at least one compaction")
	}
	if s.Len() != 3000 {
		t.Errorf("Len = %d, want 3000", s.Len())
	}
	// Newest version wins after compaction.
	r, ok := s.Get(sqltypes.NewInt(0).MapKey())
	if !ok {
		t.Fatal("key 0 missing")
	}
	if r[0].Int()%3000 != 0 {
		t.Errorf("row = %v", r)
	}
}

func TestLSMTombstonesAcrossRuns(t *testing.T) {
	s := lsm.New()
	// Insert enough to flush key 7 into a run, then delete it so the
	// tombstone lives in a newer layer than the value.
	for i := int64(0); i < 2000; i++ {
		if err := s.Insert(sqltypes.NewInt(i).MapKey(), sqltypes.Row{sqltypes.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() == 0 {
		t.Fatal("expected flushed runs")
	}
	if !s.Delete(sqltypes.NewInt(7).MapKey()) {
		t.Fatal("delete failed")
	}
	if _, ok := s.Get(sqltypes.NewInt(7).MapKey()); ok {
		t.Fatal("tombstoned key still visible")
	}
	n := 0
	s.Scan(func(sqltypes.Key, sqltypes.Row) bool { n++; return true })
	if n != 1999 {
		t.Fatalf("scan visited %d rows, want 1999", n)
	}
}
