// Package lsm implements a log-structured merge store — a mutable
// memtable plus immutable sorted runs merged by compaction — used as the
// storage backend standing in for the MariaDB profile of the embedded
// engine.
package lsm

import (
	"sort"

	"sqloop/internal/sqltypes"
	"sqloop/internal/storage"
)

const (
	// memtableFlushSize is the number of entries a memtable holds before
	// it is flushed into a sorted run.
	memtableFlushSize = 1024
	// maxRuns triggers a full compaction when exceeded.
	maxRuns = 6
)

// entry is one key/value pair; a nil row with dead=true is a tombstone.
type entry struct {
	key  sqltypes.Key
	row  sqltypes.Row
	dead bool
}

// run is an immutable, key-sorted slice of entries (newest state of each
// key within the run).
type run []entry

// find locates key in the run via binary search.
func (r run) find(key sqltypes.Key) (entry, bool) {
	i := sort.Search(len(r), func(i int) bool {
		return sqltypes.CompareTotal(r[i].key.Value(), key.Value()) >= 0
	})
	if i < len(r) && r[i].key == key {
		return r[i], true
	}
	return entry{}, false
}

// Store is an LSM tree implementing storage.Store. Scans visit keys in
// sqltypes.CompareTotal order, merging the memtable and all runs.
type Store struct {
	mem  map[sqltypes.Key]entry
	runs []run // runs[0] oldest, runs[len-1] newest
	size int   // live rows

	// Compactions and Flushes count maintenance operations, exposed for
	// tests and ablation benchmarks.
	Compactions int
	Flushes     int
}

// New returns an empty LSM store.
func New() *Store {
	return &Store{mem: make(map[sqltypes.Key]entry)}
}

var _ storage.Store = (*Store)(nil)

// Name identifies the backend.
func (s *Store) Name() string { return "lsm" }

// Len returns the number of live rows.
func (s *Store) Len() int { return s.size }

// Clear drops all rows and runs.
func (s *Store) Clear() {
	s.mem = make(map[sqltypes.Key]entry)
	s.runs = nil
	s.size = 0
}

// lookup finds the newest entry for key across memtable and runs.
func (s *Store) lookup(key sqltypes.Key) (entry, bool) {
	if e, ok := s.mem[key]; ok {
		return e, true
	}
	for i := len(s.runs) - 1; i >= 0; i-- {
		if e, ok := s.runs[i].find(key); ok {
			return e, true
		}
	}
	return entry{}, false
}

// Get returns the live row under key.
func (s *Store) Get(key sqltypes.Key) (sqltypes.Row, bool) {
	e, ok := s.lookup(key)
	if !ok || e.dead {
		return nil, false
	}
	return e.row, true
}

// Insert adds a new row; an existing live key fails.
func (s *Store) Insert(key sqltypes.Key, row sqltypes.Row) error {
	if _, ok := s.Get(key); ok {
		return storage.ErrDuplicateKey
	}
	s.put(entry{key: key, row: row})
	s.size++
	return nil
}

// Update replaces a live row, reporting whether it existed.
func (s *Store) Update(key sqltypes.Key, row sqltypes.Row) bool {
	if _, ok := s.Get(key); !ok {
		return false
	}
	s.put(entry{key: key, row: row})
	return true
}

// Delete tombstones a live row, reporting whether it existed.
func (s *Store) Delete(key sqltypes.Key) bool {
	if _, ok := s.Get(key); !ok {
		return false
	}
	s.put(entry{key: key, dead: true})
	s.size--
	return true
}

func (s *Store) put(e entry) {
	s.mem[e.key] = e
	if len(s.mem) >= memtableFlushSize {
		s.flush()
	}
}

// flush freezes the memtable into a sorted run.
func (s *Store) flush() {
	if len(s.mem) == 0 {
		return
	}
	r := make(run, 0, len(s.mem))
	for _, e := range s.mem {
		r = append(r, e)
	}
	sort.Slice(r, func(i, j int) bool {
		return sqltypes.CompareTotal(r[i].key.Value(), r[j].key.Value()) < 0
	})
	s.runs = append(s.runs, r)
	s.mem = make(map[sqltypes.Key]entry)
	s.Flushes++
	if len(s.runs) > maxRuns {
		s.compact()
	}
}

// compact merges every run into one, dropping tombstones and stale
// versions.
func (s *Store) compact() {
	merged := s.mergedEntries(true)
	s.runs = nil
	if len(merged) > 0 {
		s.runs = []run{merged}
	}
	s.Compactions++
}

// mergedEntries returns the newest entry per key across runs and
// memtable in key order; dropDead removes tombstones.
func (s *Store) mergedEntries(dropDead bool) run {
	newest := make(map[sqltypes.Key]entry)
	for _, r := range s.runs { // oldest first; later wins
		for _, e := range r {
			newest[e.key] = e
		}
	}
	for k, e := range s.mem {
		newest[k] = e
	}
	out := make(run, 0, len(newest))
	for _, e := range newest {
		if dropDead && e.dead {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return sqltypes.CompareTotal(out[i].key.Value(), out[j].key.Value()) < 0
	})
	return out
}

// Scan visits live rows in key order until fn returns false.
func (s *Store) Scan(fn func(key sqltypes.Key, row sqltypes.Row) bool) {
	for _, e := range s.mergedEntries(true) {
		if !fn(e.key, e.row) {
			return
		}
	}
}

// Runs reports the current number of immutable runs (for tests and the
// cost model).
func (s *Store) Runs() int { return len(s.runs) }
