package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotRoundTrip drives the decoder with arbitrary bytes: it
// must either reject the input with a CorruptError or produce a
// snapshot that re-encodes and re-decodes to the same value — never
// panic, never accept garbage silently.
func FuzzSnapshotRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, &Snapshot{Key: "k", CTE: "r", Round: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	i := int64(9)
	fl := 1.5
	s := "v"
	b := true
	buf.Reset()
	if _, err := Encode(&buf, &Snapshot{
		Key: "abc", Query: "SELECT 1", Mode: "sync", Round: 3, Partitions: 2,
		PartRounds: []int{3, 4}, Columns: []string{"id", "v"},
		Tables: []TableState{{Name: "t", Columns: []string{"id", "v"}, Rows: [][]Value{
			{{Int: &i}, {Float: &fl}},
			{{Str: &s}, {Bool: &b}},
			{{Special: "+inf"}, {}},
		}}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a CorruptError: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if _, err := Encode(&out, snap); err != nil {
			t.Fatalf("re-encode of a decoded snapshot failed: %v", err)
		}
		again, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Key != snap.Key || again.Round != snap.Round || len(again.Tables) != len(snap.Tables) {
			t.Fatalf("unstable round trip: %+v vs %+v", again, snap)
		}
		// Every stored value must decode (or carry a diagnosable error).
		for _, tb := range snap.Tables {
			for _, row := range tb.Rows {
				for _, v := range row {
					_, _ = v.Decode()
				}
			}
		}
	})
}
