// Package ckpt implements SQLoop's checkpoint/recovery snapshots: the
// durable form of an iterative query's in-flight state (the recursion
// table R or the per-partition delta tables, plus the round counter).
// Long-running iterative queries — PageRank and SSSP run dozens to
// hundreds of rounds — lose every completed round to a single dropped
// connection without it; with it, core re-enters the loop at the last
// checkpointed round boundary.
//
// Snapshots are engine-neutral: core reads the state through plain SQL
// and hands this package column names and Go scalar rows, so the same
// snapshot restores against any engine reachable through database/sql.
// The on-disk format is versioned, CRC-checksummed and written through
// an atomic rename, so a crash during Save never leaves a snapshot a
// later run could half-read.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Version is the current snapshot payload version. Decoders reject
// snapshots written by a newer version instead of misreading them.
const Version = 1

// magic identifies a SQLoop checkpoint file. The trailing newline makes
// accidental text files fail fast.
const magic = "SQLCKPT\n"

// maxPayload bounds a snapshot payload (1 GiB); anything larger is a
// corrupt length field, not a real checkpoint.
const maxPayload = 1 << 30

// fileExt is the snapshot file suffix inside a Store directory.
const fileExt = ".ckpt"

// CorruptError reports a snapshot that failed structural validation
// (bad magic, bad checksum, truncated payload, unknown version).
type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return "ckpt: corrupt snapshot: " + e.Reason }

// Snapshot is the full recoverable state of one iterative execution at
// a round boundary.
type Snapshot struct {
	// Key identifies the execution: Key(query, mode, engine DSN).
	Key string `json:"key"`
	// Query is the normalized statement text (for listing/debugging;
	// the key, not this field, decides matches).
	Query string `json:"query"`
	// Mode names the execution mode the snapshot was taken under; a
	// snapshot only resumes the same mode.
	Mode string `json:"mode"`
	// Engine is the DSN of the target database.
	Engine string `json:"engine"`
	// CTE is the CTE's declared name.
	CTE string `json:"cte"`
	// Token is the per-execution working-table namespace token the
	// snapshot's table names were minted under. Empty for snapshots
	// from before tokens existed; restoring with an empty token
	// reproduces the historical (un-namespaced) table names, so old
	// snapshots stay loadable without a version bump.
	Token string `json:"token,omitempty"`
	// Round is the last completed round; a resumed run continues from
	// Round instead of 0.
	Round int `json:"round"`
	// Partitions is the partition count of a parallel run (0 for the
	// single-threaded executors). In-process executors only resume under
	// the same partitioning — PARTHASH assignments depend on it — while
	// the sharded coordinator re-routes a mismatched snapshot's rows
	// under its current shard count instead of discarding it.
	Partitions int `json:"partitions,omitempty"`
	// Epoch is the shard group's topology epoch at save time: it starts
	// at 0 and each failover or online repartition increments it, so the
	// newest snapshot under a group's stable key always carries the
	// highest epoch and resume after a topology change is well-defined.
	// Zero for single-instance snapshots (and for pre-epoch files, which
	// therefore stay loadable without a version bump).
	Epoch int64 `json:"epoch,omitempty"`
	// PartRounds is the per-partition completed round count of an
	// asynchronous run (partitions run ahead of the global round).
	PartRounds []int `json:"partRounds,omitempty"`
	// Columns are the CTE's public column names.
	Columns []string `json:"columns"`
	// Tables is the captured working state.
	Tables []TableState `json:"tables"`
	// CreatedAt is the wall-clock time the snapshot was taken.
	CreatedAt time.Time `json:"createdAt"`
}

// TableState is one captured working table.
type TableState struct {
	Name    string    `json:"name"`
	Columns []string  `json:"columns"`
	Rows    [][]Value `json:"rows"`
}

// Value is the JSON encoding of one SQL scalar. Exactly one pointer
// field is set, or all nil for SQL NULL; non-finite floats ride in
// Special because JSON has no literal for them.
type Value struct {
	Int     *int64   `json:"i,omitempty"`
	Float   *float64 `json:"f,omitempty"`
	Str     *string  `json:"s,omitempty"`
	Bool    *bool    `json:"b,omitempty"`
	Special string   `json:"x,omitempty"` // "+inf" | "-inf" | "nan"
}

// EncodeValue converts a database/sql scan value for storage.
func EncodeValue(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Value{}, nil
	case int64:
		return Value{Int: &x}, nil
	case int:
		i := int64(x)
		return Value{Int: &i}, nil
	case float64:
		switch {
		case math.IsInf(x, 1):
			return Value{Special: "+inf"}, nil
		case math.IsInf(x, -1):
			return Value{Special: "-inf"}, nil
		case math.IsNaN(x):
			return Value{Special: "nan"}, nil
		default:
			return Value{Float: &x}, nil
		}
	case string:
		return Value{Str: &x}, nil
	case []byte:
		s := string(x)
		return Value{Str: &s}, nil
	case bool:
		return Value{Bool: &x}, nil
	default:
		return Value{}, fmt.Errorf("ckpt: unsupported value type %T", v)
	}
}

// Decode converts a stored value back to its Go scalar.
func (v Value) Decode() (any, error) {
	set := 0
	if v.Int != nil {
		set++
	}
	if v.Float != nil {
		set++
	}
	if v.Str != nil {
		set++
	}
	if v.Bool != nil {
		set++
	}
	if v.Special != "" {
		set++
	}
	if set > 1 {
		return nil, fmt.Errorf("ckpt: value sets %d fields", set)
	}
	switch {
	case v.Int != nil:
		return *v.Int, nil
	case v.Float != nil:
		return *v.Float, nil
	case v.Str != nil:
		return *v.Str, nil
	case v.Bool != nil:
		return *v.Bool, nil
	case v.Special == "+inf":
		return math.Inf(1), nil
	case v.Special == "-inf":
		return math.Inf(-1), nil
	case v.Special == "nan":
		return math.NaN(), nil
	case v.Special != "":
		return nil, fmt.Errorf("ckpt: unknown special value %q", v.Special)
	default:
		return nil, nil
	}
}

// Key derives the snapshot identity from the normalized query text, the
// execution mode and the engine DSN. Callers must canonicalize the
// query (core formats the parsed statement) so whitespace and case
// variants of the same query share a checkpoint.
func Key(query, mode, dsn string) string {
	h := sha256.New()
	io.WriteString(h, query)
	h.Write([]byte{0})
	io.WriteString(h, mode)
	h.Write([]byte{0})
	io.WriteString(h, dsn)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Encode writes one snapshot: magic, version, payload length, CRC-32
// (IEEE) of the payload, then the JSON payload. It returns the total
// bytes written.
func Encode(w io.Writer, s *Snapshot) (int64, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return 0, fmt.Errorf("ckpt: marshal: %w", err)
	}
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("ckpt: snapshot of %d bytes exceeds limit", len(payload))
	}
	var hdr [20]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint32(hdr[8:12], Version)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("ckpt: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return int64(len(hdr)), fmt.Errorf("ckpt: write payload: %w", err)
	}
	return int64(len(hdr) + len(payload)), nil
}

// Decode reads and validates one snapshot.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated header"}
	}
	if string(hdr[:8]) != magic {
		return nil, &CorruptError{Reason: "bad magic"}
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != Version {
		return nil, &CorruptError{Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > maxPayload {
		return nil, &CorruptError{Reason: fmt.Sprintf("payload length %d exceeds limit", n)}
	}
	sum := binary.BigEndian.Uint32(hdr[16:20])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, &CorruptError{Reason: "truncated payload"}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, &CorruptError{Reason: "checksum mismatch"}
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, &CorruptError{Reason: "unmarshal: " + err.Error()}
	}
	return &s, nil
}

// Info describes one stored snapshot (for listing, e.g. the CLI's
// \checkpoints command).
type Info struct {
	Key     string
	CTE     string
	Mode    string
	Round   int
	Query   string
	Size    int64
	ModTime time.Time
}

// Store manages the snapshot files of one checkpoint directory. One
// file per key; Save replaces atomically.
type Store struct{ dir string }

// NewStore opens (creating if needed) the checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(key string) string { return filepath.Join(st.dir, key+fileExt) }

// Save durably writes the snapshot for its key, replacing any previous
// one. The write goes to a temp file first and is renamed into place,
// so readers only ever see complete snapshots. Returns the byte size.
func (st *Store) Save(s *Snapshot) (int64, error) {
	f, err := os.CreateTemp(st.dir, "."+s.Key+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	tmp := f.Name()
	n, err := Encode(f, s)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, st.path(s.Key))
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// Load reads the snapshot for key. A missing snapshot returns
// (nil, nil); a corrupt one returns a *CorruptError.
func (st *Store) Load(key string) (*Snapshot, error) {
	f, err := os.Open(st.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, err
	}
	if s.Key != key {
		return nil, &CorruptError{Reason: fmt.Sprintf("key mismatch: file %s holds %s", key, s.Key)}
	}
	return s, nil
}

// Remove deletes the snapshot for key (no error when absent).
func (st *Store) Remove(key string) error {
	err := os.Remove(st.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// List describes every readable snapshot in the directory, newest
// first. Corrupt or foreign files are skipped, not errors: a listing
// must not fail because one snapshot is damaged.
func (st *Store) List() ([]Info, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []Info
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fileExt) || strings.HasPrefix(name, ".") {
			continue
		}
		key := strings.TrimSuffix(name, fileExt)
		s, err := st.Load(key)
		if err != nil || s == nil {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, Info{
			Key:     s.Key,
			CTE:     s.CTE,
			Mode:    s.Mode,
			Round:   s.Round,
			Query:   s.Query,
			Size:    fi.Size(),
			ModTime: fi.ModTime(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModTime.After(out[j].ModTime) })
	return out, nil
}
