package ckpt

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// sampleSnapshot builds a snapshot exercising every value kind.
func sampleSnapshot() *Snapshot {
	i := int64(42)
	f := 3.5
	s := "node-1"
	b := true
	return &Snapshot{
		Key:        Key("SELECT 1", "async", "sqlsim://tcp/127.0.0.1:1"),
		Query:      "SELECT 1",
		Mode:       "async",
		Engine:     "sqlsim://tcp/127.0.0.1:1",
		CTE:        "pr",
		Round:      6,
		Partitions: 4,
		PartRounds: []int{6, 7, 6, 6},
		Columns:    []string{"id", "rank", "delta"},
		Tables: []TableState{
			{
				Name:    "sqloop_pr_pt0",
				Columns: []string{"id", "rank", "delta"},
				Rows: [][]Value{
					{{Int: &i}, {Float: &f}, {Str: &s}},
					{{Bool: &b}, {Special: "+inf"}, {}},
					{{Special: "-inf"}, {Special: "nan"}, {Int: &i}},
				},
			},
			{Name: "sqloop_pr_pt1", Columns: []string{"id"}, Rows: nil},
		},
		CreatedAt: time.Now().UTC().Truncate(time.Second),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	var buf bytes.Buffer
	n, err := Encode(&buf, want)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:10],
		"bad magic":       append([]byte("NOTCKPT\n"), good[8:]...),
		"truncated":       good[:len(good)-5],
		"flipped payload": flipByte(good, len(good)-3),
		"flipped crc":     flipByte(good, 17),
		"bad version":     flipByte(good, 11),
	}
	for name, data := range cases {
		_, err := Decode(bytes.NewReader(data))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want CorruptError, got %v", name, err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func TestValueEncodeDecode(t *testing.T) {
	for _, v := range []any{nil, int64(7), 2.25, "x", true, math.Inf(1), math.Inf(-1)} {
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("value %v round-tripped to %v", v, got)
		}
	}
	// NaN compares unequal to itself; check the kind explicitly.
	enc, err := EncodeValue(math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := got.(float64); !ok || !math.IsNaN(f) {
		t.Errorf("NaN round-tripped to %v", got)
	}
	// []byte flattens to string (database/sql hands text back as bytes
	// with some drivers).
	enc, err = EncodeValue([]byte("bs"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := enc.Decode(); got != "bs" {
		t.Errorf("[]byte round-tripped to %v", got)
	}
	if _, err := EncodeValue(struct{}{}); err == nil {
		t.Error("EncodeValue accepted a struct")
	}
}

func TestKeyStability(t *testing.T) {
	k1 := Key("SELECT * FROM r", "sync", "dsn-a")
	if k1 != Key("SELECT * FROM r", "sync", "dsn-a") {
		t.Error("identical inputs produced different keys")
	}
	for name, other := range map[string]string{
		"query": Key("SELECT * FROM s", "sync", "dsn-a"),
		"mode":  Key("SELECT * FROM r", "async", "dsn-a"),
		"dsn":   Key("SELECT * FROM r", "sync", "dsn-b"),
	} {
		if other == k1 {
			t.Errorf("changing the %s did not change the key", name)
		}
	}
	if len(k1) != 16 {
		t.Errorf("key %q is not 16 hex chars", k1)
	}
}

func TestStoreSaveLoadListRemove(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := sampleSnapshot()
	n, err := st.Save(s)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("Save reported %d bytes", n)
	}

	got, err := st.Load(s.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Round != s.Round || len(got.Tables) != len(s.Tables) {
		t.Fatalf("Load returned %+v", got)
	}

	// Replacement: a later snapshot at a higher round wins.
	s2 := sampleSnapshot()
	s2.Round = 8
	if _, err := st.Save(s2); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load(s.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 8 {
		t.Fatalf("replacement not visible: round %d", got.Round)
	}

	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Key != s.Key || infos[0].Round != 8 || infos[0].Size <= 0 {
		t.Fatalf("List returned %+v", infos)
	}

	if err := st.Remove(s.Key); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Load(s.Key); err != nil || got != nil {
		t.Fatalf("Load after Remove: %v, %v", got, err)
	}
	if err := st.Remove(s.Key); err != nil {
		t.Fatalf("Remove of a missing snapshot: %v", err)
	}
}

func TestLoadMissingAndCorrupt(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := st.Load("deadbeefdeadbeef"); err != nil || got != nil {
		t.Fatalf("missing snapshot: %v, %v", got, err)
	}
	// A corrupt file must surface as CorruptError, and List must skip it.
	if err := os.WriteFile(filepath.Join(st.Dir(), "deadbeefdeadbeef.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Load("deadbeefdeadbeef")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptError, got %v", err)
	}
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("List included the corrupt file: %+v", infos)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after Save", len(entries))
	}
}

// groupSnapshot builds a 4-partition sharded group snapshot: one
// working table per partition plus per-partition round counters.
func groupSnapshot() *Snapshot {
	iv := func(n int64) Value { return Value{Int: &n} }
	tables := make([]TableState, 4)
	for p := range tables {
		rows := make([][]Value, 0, 8)
		for r := 0; r < 8; r++ {
			rows = append(rows, []Value{iv(int64(p*100 + r)), iv(int64(r))})
		}
		tables[p] = TableState{
			Name:    "sqloop_shard_part" + string(rune('0'+p)),
			Columns: []string{"id", "val"},
			Rows:    rows,
		}
	}
	return &Snapshot{
		Key:        Key("WITH ITERATIVE g ...", "sync", "dsn0;dsn1;dsn2;dsn3|shards=4"),
		Query:      "WITH ITERATIVE g ...",
		Mode:       "sync",
		Engine:     "dsn0;dsn1;dsn2;dsn3|shards=4",
		CTE:        "g",
		Round:      3,
		Partitions: 4,
		Epoch:      2,
		PartRounds: []int{3, 3, 4, 3},
		Columns:    []string{"Node", "Rank", "Delta"},
		Tables:     tables,
		CreatedAt:  time.Now().UTC().Truncate(time.Second),
	}
}

// TestGroupSnapshotPartialTruncation pins the atomicity of group
// snapshots: a snapshot holding every shard's partition is one
// CRC-guarded unit, so corrupting the byte range of just ONE
// partition's table — while every other partition's bytes stay intact
// — must fail the whole Load with CorruptError. A load must never
// resurrect three healthy partitions and silently drop the fourth.
func TestGroupSnapshotPartialTruncation(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := groupSnapshot()
	if _, err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), snap.Key+fileExt)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate partition 2's table inside the encoded payload and damage
	// only bytes inside its row region.
	marker := []byte("sqloop_shard_part2")
	at := bytes.Index(good, marker)
	if at < 0 {
		t.Fatalf("partition marker not found in %d-byte snapshot", len(good))
	}
	cases := map[string][]byte{
		// Splice 40 bytes out of partition 2's rows (other partitions intact).
		"spliced rows": append(append([]byte(nil), good[:at+len(marker)+10]...),
			good[at+len(marker)+50:]...),
		// Flip one byte inside partition 2's region.
		"flipped row byte": flipByte(good, at+len(marker)+20),
		// Cut the file just after partition 2 begins (partitions 0-1 whole).
		"tail truncated": good[:at],
	}
	for name, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := st.Load(snap.Key)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want CorruptError, got %v", name, err)
		}
	}
	// Restoring the intact bytes loads every partition again.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(snap.Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 4 || got.Epoch != 2 || !reflect.DeepEqual(got.PartRounds, snap.PartRounds) {
		t.Fatalf("intact reload mismatch: %+v", got)
	}
}
