package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the wire protocol's fault-injection layer: a transport
// hook that can drop, delay or error client round trips on a schedule.
// Recovery code paths — driver reconnect/retry, core checkpoint
// restore — are only trustworthy if a test can kill the connection at
// an exact point in an iterative execution and watch the query finish;
// the injector provides that exact point.

// ErrInjected marks a failure produced by a FaultErr injection rather
// than a real transport problem.
var ErrInjected = errors.New("wire: injected fault")

// FaultKind selects what an injected fault does to the round trip.
type FaultKind int

const (
	// FaultDropBeforeSend closes the connection before the request is
	// written: the statement never reaches the server, so retrying it
	// on a fresh connection is safe.
	FaultDropBeforeSend FaultKind = iota + 1
	// FaultDropAfterSend closes the connection after the request is
	// written but before the response is read: the statement may have
	// executed server-side, so the client cannot safely retry it — the
	// failure surfaces as an OpError with Sent set.
	FaultDropAfterSend
	// FaultErr fails the round trip with ErrInjected without touching
	// the connection (a transient error: the next attempt succeeds).
	FaultErr
	// FaultDelay sleeps Delay before the request is written (for
	// deadline and slow-peer testing).
	FaultDelay
)

// String names the kind for test output.
func (k FaultKind) String() string {
	switch k {
	case FaultDropBeforeSend:
		return "drop-before-send"
	case FaultDropAfterSend:
		return "drop-after-send"
	case FaultErr:
		return "err"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// everyOp marks a persistent fault that fires on every round trip (see
// ArmEvery) instead of at one scheduled op.
const everyOp int64 = -1

// Fault is one scheduled fault.
type Fault struct {
	// AtOp is the 1-based client round-trip count at which the fault
	// fires. The counter is shared by every client attached to the same
	// Injector (including reconnects), so schedules keep meaning across
	// redials. The sentinel -1 means "every round trip from now on"
	// (a persistently dead endpoint; see ArmEvery).
	AtOp int64
	// Kind is what happens.
	Kind FaultKind
	// Delay is the sleep for FaultDelay.
	Delay time.Duration
}

// Injector holds a fault schedule and the shared operation counter.
// Attach one to an address with SetAddrInjector (every subsequent Dial
// to that address consults it) or to a single client via
// Client.SetInjector. Safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	ops    int64
	faults []Fault
	fired  int64 // count of faults that actually triggered
}

// NewInjector builds an injector with a fixed schedule.
func NewInjector(faults ...Fault) *Injector {
	return &Injector{faults: append([]Fault(nil), faults...)}
}

// Arm schedules kind to fire on the next round trip, wherever the
// shared counter currently stands. Tests use it to react to execution
// events ("drop the connection right after the first checkpoint").
func (i *Injector) Arm(kind FaultKind) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = append(i.faults, Fault{AtOp: i.ops + 1, Kind: kind})
}

// ArmEvery schedules kind to fire on every round trip from now on — a
// persistently dead endpoint, as opposed to Arm's single transient
// fault. Elastic-shard tests use it to keep a killed shard dead across
// the driver's redial attempts until a standby takes over. Disarm
// clears it.
func (i *Injector) ArmEvery(kind FaultKind) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = append(i.faults, Fault{AtOp: everyOp, Kind: kind})
}

// Disarm drops every pending fault (scheduled and persistent), leaving
// the op counter intact: the endpoint heals.
func (i *Injector) Disarm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = nil
}

// Ops returns the round trips counted so far.
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Fired returns how many faults have triggered.
func (i *Injector) Fired() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// next advances the op counter and returns the fault scheduled for this
// op, if any.
func (i *Injector) next() *Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	for idx := range i.faults {
		if i.faults[idx].AtOp == i.ops || i.faults[idx].AtOp == everyOp {
			i.fired++
			f := i.faults[idx]
			return &f
		}
	}
	return nil
}

// addrInjectors maps server addresses to injectors, mirroring the
// driver's DSN → metrics registry pattern: Dial constructs clients from
// the address string alone, so attaching a fault schedule requires a
// process-wide mapping.
var addrInjectors = struct {
	sync.RWMutex
	m map[string]*Injector
}{m: make(map[string]*Injector)}

// SetAddrInjector attaches inj to every client subsequently dialed to
// addr (pass nil to detach). Reconnects to the same address share the
// same injector, and therefore the same op counter.
func SetAddrInjector(addr string, inj *Injector) {
	addrInjectors.Lock()
	defer addrInjectors.Unlock()
	if inj == nil {
		delete(addrInjectors.m, addr)
		return
	}
	addrInjectors.m[addr] = inj
}

func injectorFor(addr string) *Injector {
	addrInjectors.RLock()
	defer addrInjectors.RUnlock()
	return addrInjectors.m[addr]
}

// OpError is the failure of one client round trip. Sent distinguishes
// the two recovery situations: a request that never reached the
// transport is safe to retry on a new connection; once it was sent, the
// statement may have executed server-side and only a higher layer
// (core's checkpoint recovery) can decide what to do.
type OpError struct {
	// Op is the phase that failed: "dial", "write", "read", "inject".
	Op string
	// Sent reports whether the request reached the transport.
	Sent bool
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *OpError) Error() string { return "wire " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *OpError) Unwrap() error { return e.Err }
