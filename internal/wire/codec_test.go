package wire

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"testing"

	"sqloop/internal/engine"
	"sqloop/internal/sqltypes"
)

// codecRows is a value corpus covering every tag and the encodings
// JSON handles badly: NaN, infinities, empty strings, unicode,
// negative ints, NULL.
func codecRows() []sqltypes.Row {
	return []sqltypes.Row{
		{sqltypes.NewInt(0), sqltypes.NewInt(-1), sqltypes.NewInt(math.MaxInt64), sqltypes.NewInt(math.MinInt64)},
		{sqltypes.NewFloat(2.5), sqltypes.NewFloat(math.Inf(1)), sqltypes.NewFloat(math.Inf(-1)), sqltypes.NewFloat(math.NaN())},
		{sqltypes.NewFloat(math.Copysign(0, -1)), sqltypes.NewFloat(math.SmallestNonzeroFloat64), sqltypes.NewFloat(math.MaxFloat64), sqltypes.Null},
		{sqltypes.NewString(""), sqltypes.NewString("it's"), sqltypes.NewString("héllo 世界 🚀"), sqltypes.NewString("a\x00b")},
		{sqltypes.NewBool(true), sqltypes.NewBool(false), sqltypes.Null, sqltypes.NewString("trailing")},
	}
}

func sameValue(a, b sqltypes.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.IsNull() {
		return true
	}
	if a.Kind() == sqltypes.KindFloat {
		// Bit-exact: NaN == NaN, -0 != 0.
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	}
	c, err := sqltypes.Compare(a, b)
	return err == nil && c == 0
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	in := &Response{
		Error:        "",
		Handle:       -7,
		RowsAffected: 1 << 40,
		Columns:      []string{"a", "", "héllo"},
	}
	rows := codecRows()
	payload := AppendBinaryResponse(nil, in, rows)
	out, gotRows, err := DecodeBinaryResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Error != in.Error || out.Handle != in.Handle || out.RowsAffected != in.RowsAffected {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if len(out.Columns) != len(in.Columns) || out.Columns[2] != "héllo" {
		t.Fatalf("columns = %v", out.Columns)
	}
	if len(gotRows) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(gotRows), len(rows))
	}
	for i, row := range rows {
		for j, v := range row {
			if !sameValue(gotRows[i][j], v) {
				t.Errorf("row %d col %d: %v != %v", i, j, gotRows[i][j], v)
			}
		}
	}
}

func TestBinaryResponseErrorRoundTrip(t *testing.T) {
	in := &Response{Error: "engine: table missing"}
	out, rows, err := DecodeBinaryResponse(AppendBinaryResponse(nil, in, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Error != in.Error || rows != nil {
		t.Fatalf("got %+v rows %v", out, rows)
	}
}

// TestBinaryDecodeRejectsCorruptFrames: truncations and bit flips must
// fail with errors, never panic or over-allocate.
func TestBinaryDecodeRejectsCorruptFrames(t *testing.T) {
	payload := AppendBinaryResponse(nil, &Response{Columns: []string{"a"}}, codecRows())
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := DecodeBinaryResponse(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xFF
		_, _, _ = DecodeBinaryResponse(mut) // must not panic
	}
	if _, _, err := DecodeBinaryResponse(append(payload, 0)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
}

// startCodecServer serves a fresh engine with one loaded table.
func startCodecServer(t *testing.T, maxVer int) (*Server, string) {
	t.Helper()
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	srv.SetMaxWireVersion(maxVer)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	sess := eng.NewSession()
	if _, err := sess.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		v := float64(i) * 0.5
		if i%10 == 0 {
			v = math.Inf(1)
		}
		if _, err := sess.Exec(`INSERT INTO t VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewFloat(v),
			sqltypes.NewString(fmt.Sprintf("row-%d-héllo", i))); err != nil {
			t.Fatal(err)
		}
	}
	return srv, addr
}

const codecQuery = `SELECT id, v, s FROM t ORDER BY id`

// TestCodecNegotiation covers the four version pairings: each must
// execute correctly and settle on min(client, server).
func TestCodecNegotiation(t *testing.T) {
	cases := []struct {
		name             string
		serverMax, clMax int
		wantVer          int
	}{
		{"both-new", WireVersion, WireVersion, 1},
		{"old-server", 0, WireVersion, 0},
		{"old-client", WireVersion, 0, 0},
		{"both-old", 0, 0, 0},
	}
	var want string
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startCodecServer(t, tc.serverMax)
			cl, err := DialVersion(addr, tc.clMax)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if cl.WireVer() != tc.wantVer {
				t.Fatalf("negotiated version %d, want %d", cl.WireVer(), tc.wantVer)
			}
			res, err := cl.Exec(codecQuery)
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%v %v", res.Columns, res.Rows)
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("results differ across codecs:\n%s\nvs\n%s", got, want)
			}
			// Remote errors still travel on the negotiated codec.
			if _, err := cl.Exec(`SELECT * FROM missing`); err == nil {
				t.Fatal("expected remote error")
			}
			if _, err := cl.Exec(`SELECT COUNT(*) FROM t`); err != nil {
				t.Fatalf("connection unusable after remote error: %v", err)
			}
		})
	}
}

// TestHelloAgainstPreHelloServer: a server that answers OpHello with
// an unknown-operation error (the protocol before negotiation existed)
// must downgrade the client to JSON instead of failing the dial.
func TestHelloAgainstPreHelloServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// A pre-hello server: JSON frames only, unknown ops get an error
		// response and the connection stays open.
		for {
			var req Request
			if err := ReadFrame(conn, &req); err != nil {
				return
			}
			resp := &Response{}
			switch req.Op {
			case OpExec:
				resp.Columns = []string{"one"}
				i := int64(1)
				resp.Rows = [][]WireValue{{{Int: &i}}}
			default:
				resp.Error = fmt.Sprintf("wire: unknown operation %q", req.Op)
			}
			if err := WriteFrame(conn, resp); err != nil {
				return
			}
		}
	}()

	cl, err := DialVersion(ln.Addr().String(), WireVersion)
	if err != nil {
		t.Fatalf("dial against pre-hello server failed: %v", err)
	}
	defer cl.Close()
	if cl.WireVer() != 0 {
		t.Fatalf("negotiated version %d against pre-hello server, want 0", cl.WireVer())
	}
	res, err := cl.Exec(`SELECT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestBinaryBytesBeatJSON runs the same workload over a version-0 and
// a version-1 connection to one server and checks the server-side
// byte counters: the binary encoding must be strictly smaller.
func TestBinaryBytesBeatJSON(t *testing.T) {
	srv, addr := startCodecServer(t, WireVersion)

	for _, ver := range []int{0, WireVersion} {
		cl, err := DialVersion(addr, ver)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := cl.Exec(codecQuery); err != nil {
				t.Fatal(err)
			}
		}
		cl.Close()
	}

	jsonBytes := srv.Metrics().Counter("sqloop_wire_bytes_json").Value()
	binBytes := srv.Metrics().Counter("sqloop_wire_bytes_binary").Value()
	rowsEnc := srv.Metrics().Counter("sqloop_wire_rows_encoded").Value()
	if binBytes == 0 || jsonBytes == 0 {
		t.Fatalf("metrics missing: json=%d binary=%d", jsonBytes, binBytes)
	}
	if binBytes >= jsonBytes {
		t.Fatalf("binary codec not smaller: binary=%d json=%d", binBytes, jsonBytes)
	}
	if rowsEnc != 5*50 {
		t.Fatalf("sqloop_wire_rows_encoded = %d, want %d", rowsEnc, 5*50)
	}
}

// BenchmarkWireCodecJSONvsBinary compares the response codecs on a
// 1000-row result: full encode + decode per op.
func BenchmarkWireCodecJSONvsBinary(b *testing.B) {
	rows := make([]sqltypes.Row, 1000)
	for i := range rows {
		rows[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewFloat(float64(i) * 0.25),
			sqltypes.NewString(fmt.Sprintf("node-%d", i)),
		}
	}
	resp := &Response{Columns: []string{"id", "rank", "label"}}

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp.Rows = make([][]WireValue, len(rows))
			for j, row := range rows {
				wr := make([]WireValue, len(row))
				for k, v := range row {
					wr[k] = ToWire(v)
				}
				resp.Rows[j] = wr
			}
			payload, err := json.Marshal(resp)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			var out Response
			if err := json.Unmarshal(payload, &out); err != nil {
				b.Fatal(err)
			}
			for _, wr := range out.Rows {
				for _, wv := range wr {
					if _, err := FromWire(wv); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		resp.Rows = nil
	})

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		buf := []byte(nil)
		for i := 0; i < b.N; i++ {
			buf = AppendBinaryResponse(buf[:0], resp, rows)
			b.SetBytes(int64(len(buf)))
			if _, _, err := DecodeBinaryResponse(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
