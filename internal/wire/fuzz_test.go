package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame checks the frame decoder never panics or over-allocates
// on malformed input.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	_ = WriteFrame(&good, &Request{SQL: "SELECT 1"})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req) // must not panic
	})
}
