package wire

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sqloop/internal/engine"
	"sqloop/internal/sqltypes"
)

func TestWireValueRoundTrip(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewInt(42),
		sqltypes.NewInt(-1),
		sqltypes.NewFloat(2.5),
		sqltypes.NewFloat(math.Inf(1)),
		sqltypes.NewFloat(math.Inf(-1)),
		sqltypes.NewString(""),
		sqltypes.NewString("it's"),
		sqltypes.NewBool(true),
		sqltypes.NewBool(false),
	}
	for _, v := range vals {
		back, err := FromWire(ToWire(v))
		if err != nil {
			t.Fatalf("FromWire(ToWire(%v)): %v", v, err)
		}
		if back.Kind() != v.Kind() {
			t.Errorf("round trip of %v changed kind: %v", v, back.Kind())
		}
		if !v.IsNull() {
			if c, _ := sqltypes.Compare(v, back); c != 0 {
				t.Errorf("round trip of %v = %v", v, back)
			}
		}
	}
}

func TestFromWireRejectsMultipleFields(t *testing.T) {
	i, f := int64(1), 2.5
	if _, err := FromWire(WireValue{Int: &i, Float: &f}); err == nil {
		t.Error("expected error for multi-field value")
	}
	if _, err := FromWire(WireValue{Special: "nan?"}); err == nil {
		t.Error("expected error for unknown special")
	}
}

func TestQuickWireFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN not representable; engine never produces it
		}
		v, err := FromWire(ToWire(sqltypes.NewFloat(x)))
		return err == nil && v.Float() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{SQL: "SELECT 1", Args: []WireValue{ToWire(sqltypes.NewInt(7))}}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.SQL != in.SQL || len(out.Args) != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length header
	var out Request
	if err := ReadFrame(&buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	big := Request{SQL: strings.Repeat("x", MaxFrameSize+1)}
	err := WriteFrame(&buf, &big)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized frame leaked %d bytes onto the wire", buf.Len())
	}
}

func TestServerEndToEnd(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`INSERT INTO t VALUES (?, ?), (?, ?)`,
		sqltypes.NewInt(1), sqltypes.NewFloat(1.5),
		sqltypes.NewInt(2), sqltypes.NewFloat(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("inserted = %d", res.RowsAffected)
	}
	res, err = cl.Exec(`SELECT v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Float() != 1.5 || !math.IsInf(res.Rows[1][0].Float(), 1) {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Errors travel back as errors, and the connection survives them.
	if _, err := cl.Exec(`SELECT * FROM missing`); err == nil {
		t.Fatal("expected remote error")
	}
	if _, err := cl.Exec(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatalf("connection unusable after remote error: %v", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if _, err := setup.Exec(`CREATE TABLE c (id BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 20; i++ {
				id := int64(g*100 + i)
				if _, err := cl.Exec(`INSERT INTO c VALUES (?, ?)`,
					sqltypes.NewInt(id), sqltypes.NewInt(id)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	res, err := setup.Exec(`SELECT COUNT(*) FROM c`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != clients*20 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
