package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sqloop/internal/engine"
	"sqloop/internal/obs"
	"sqloop/internal/serve"
	"sqloop/internal/sqltypes"
)

// Server exposes an engine over TCP. Each accepted connection gets its
// own engine session, mirroring the one-process-per-connection behaviour
// SQLoop exploits for parallelism. With a session pool enabled
// (EnablePool), connections only hold sessions; statements execute on
// the pool's bounded workers under per-tenant admission control.
type Server struct {
	eng     *engine.Engine
	ln      net.Listener
	metrics *obs.Registry
	maxVer  int
	pool    *serve.Pool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine for network serving.
func NewServer(eng *engine.Engine) *Server {
	return &Server{
		eng:     eng,
		conns:   make(map[net.Conn]struct{}),
		metrics: obs.NewRegistry(),
		maxVer:  WireVersion,
	}
}

// SetMaxWireVersion caps the protocol version the server will
// negotiate; 0 forces JSON responses for every connection, emulating a
// pre-binary-codec server. Call before Listen.
func (s *Server) SetMaxWireVersion(v int) { s.maxVer = v }

// EnablePool routes every statement through a bounded serve.Pool:
// MaxSessions worker goroutines drain per-tenant queues round-robin,
// and submissions beyond a tenant's queue depth or admitted limit are
// rejected with CodeAdmissionRejected instead of piling up. A nil
// cfg.Metrics defaults to the server's registry. Call before Listen.
func (s *Server) EnablePool(cfg serve.Config) {
	if cfg.Metrics == nil {
		cfg.Metrics = s.metrics
	}
	s.pool = serve.NewPool(cfg)
}

// Metrics returns the server's registry: wire_requests_total,
// wire_request_seconds (per-statement server-side latency),
// wire_bytes_read_total, wire_bytes_written_total and
// wire_connections_total accumulate while the server runs.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire server: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	sess := s.eng.NewSession()
	s.metrics.Counter("wire_connections_total").Inc()
	bytesIn := s.metrics.Counter("wire_bytes_read_total")
	bytesOut := s.metrics.Counter("wire_bytes_written_total")
	requests := s.metrics.Counter("wire_requests_total")
	latency := s.metrics.Histogram("wire_request_seconds")
	rowsEncoded := s.metrics.Counter("sqloop_wire_rows_encoded")
	bytesJSON := s.metrics.Counter("sqloop_wire_bytes_json")
	bytesBinary := s.metrics.Counter("sqloop_wire_bytes_binary")
	ver := 0 // protocol version for this connection, raised by OpHello
	tenant := serve.DefaultTenant
	for {
		var req Request
		n, err := readFrameTimed(conn, &req, DefaultFrameTimeout)
		bytesIn.Add(int64(n))
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol error: answer once, then drop the connection.
				_ = WriteFrame(conn, &Response{Error: err.Error()})
			}
			return
		}
		requests.Inc()
		start := time.Now()
		var resp *Response
		var rows []sqltypes.Row
		if req.Op == OpHello {
			// Version negotiation: settle on the lower of the two peers.
			// The reply itself is always JSON so pre-binary clients could
			// at least parse an error. The hello also pins the session's
			// tenant for admission control.
			ver = min(req.WireVer, s.maxVer)
			if req.Tenant != "" {
				tenant = req.Tenant
			}
			resp = &Response{WireVer: ver}
		} else {
			resp, rows = s.dispatch(sess, &req, tenant)
		}
		latency.Observe(time.Since(start))
		_ = conn.SetWriteDeadline(time.Now().Add(DefaultFrameTimeout))
		var wn int
		if ver >= 1 && req.Op != OpHello && resp.Code == "" {
			wn, err = writeRawFrameN(conn, AppendBinaryResponse(nil, resp, rows))
			rowsEncoded.Add(int64(len(rows)))
			bytesBinary.Add(int64(wn))
		} else {
			resp.Rows = toWireRows(rows)
			wn, err = WriteFrameN(conn, resp)
			bytesJSON.Add(int64(wn))
		}
		_ = conn.SetWriteDeadline(time.Time{})
		bytesOut.Add(int64(wn))
		if err != nil {
			return
		}
	}
}

// toWireRows converts engine rows to the JSON value encoding.
func toWireRows(rows []sqltypes.Row) [][]WireValue {
	if len(rows) == 0 {
		return nil
	}
	out := make([][]WireValue, len(rows))
	for i, row := range rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = ToWire(v)
		}
		out[i] = wr
	}
	return out
}

// dispatch executes one statement under the session pool (when
// enabled) with the request's deadline as a context bound. Without a
// pool it degrades to direct execution, preserving pre-pool behaviour.
func (s *Server) dispatch(sess *engine.Session, req *Request, tenant string) (*Response, []sqltypes.Row) {
	ctx := context.Background()
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	if s.pool == nil {
		return s.execute(ctx, sess, req)
	}
	var (
		resp *Response
		rows []sqltypes.Row
	)
	err := s.pool.Do(ctx, tenant, func(ctx context.Context) {
		resp, rows = s.execute(ctx, sess, req)
	})
	if err != nil {
		// The statement never ran: admission rejection, or the deadline
		// was spent entirely in the queue.
		return errorResponse(err), nil
	}
	return resp, rows
}

// errorResponse classifies a serving-layer error into a typed wire
// response so clients can reconstruct it (retry decisions depend on
// the class, not the message text).
func errorResponse(err error) *Response {
	var ae *serve.AdmissionError
	switch {
	case errors.As(err, &ae):
		return &Response{Error: err.Error(), Code: CodeAdmissionRejected, Reason: ae.Reason}
	case errors.Is(err, context.DeadlineExceeded):
		return &Response{Error: err.Error(), Code: CodeDeadlineExceeded}
	case errors.Is(err, context.Canceled):
		return &Response{Error: err.Error(), Code: CodeCanceled}
	default:
		return &Response{Error: err.Error()}
	}
}

// execute runs one request and returns the response shell plus any
// result rows. Rows stay as engine values so the negotiated codec —
// not this function — decides how they hit the wire. The context is
// checked at the statement boundary: engine statements themselves are
// not interruptible, so an expired deadline fails here rather than
// mid-execution.
func (s *Server) execute(ctx context.Context, sess *engine.Session, req *Request) (*Response, []sqltypes.Row) {
	if err := ctx.Err(); err != nil {
		return errorResponse(err), nil
	}
	args := make([]sqltypes.Value, len(req.Args))
	for i, wv := range req.Args {
		v, err := FromWire(wv)
		if err != nil {
			return &Response{Error: err.Error()}, nil
		}
		args[i] = v
	}
	var (
		res *engine.Result
		err error
	)
	switch req.Op {
	case OpExec:
		res, err = sess.Exec(req.SQL, args...)
	case OpPrepare:
		h, perr := sess.Prepare(req.SQL)
		if perr != nil {
			return &Response{Error: perr.Error()}, nil
		}
		return &Response{Handle: h}, nil
	case OpExecPrepared:
		res, err = sess.ExecPrepared(req.Handle, args)
	case OpClosePrepared:
		if cerr := sess.ClosePrepared(req.Handle); cerr != nil {
			return &Response{Error: cerr.Error()}, nil
		}
		return &Response{}, nil
	default:
		return &Response{Error: fmt.Sprintf("wire: unknown operation %q", req.Op)}, nil
	}
	if err != nil {
		return &Response{Error: err.Error()}, nil
	}
	return &Response{Columns: res.Columns, RowsAffected: res.RowsAffected}, res.Rows
}

// Close stops accepting, closes every live connection and waits for
// handler goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	// Handlers are gone, so no new submissions: the pool drains what it
	// already accepted and stops.
	if s.pool != nil {
		s.pool.Close()
	}
	return err
}

// Client is one network connection speaking the wire protocol. It is
// not safe for concurrent use (use one per goroutine, as with JDBC
// connections).
type Client struct {
	conn         net.Conn
	metrics      *obs.Registry
	injector     *Injector
	frameTimeout time.Duration
	ver          int           // negotiated protocol version
	tenant       string        // tenant pinned at hello time
	deadline     time.Duration // default per-statement deadline
}

// WireVer reports the protocol version negotiated at dial time: 0 for
// JSON responses, 1 when the server streams binary row frames.
func (c *Client) WireVer() int { return c.ver }

// SetMetrics attaches a registry; the client then reports round-trips
// (wire_roundtrips_total), client-observed latency
// (wire_roundtrip_seconds) and traffic (wire_bytes_written_total /
// wire_bytes_read_total) into it. Pass nil to detach.
func (c *Client) SetMetrics(r *obs.Registry) { c.metrics = r }

// SetInjector attaches a fault injector to this client only (Dial
// already attaches any injector registered for the address).
func (c *Client) SetInjector(i *Injector) { c.injector = i }

// SetFrameTimeout bounds each frame transfer (a read or write of one
// request/response). Zero disables deadlines. The default is
// DefaultFrameTimeout.
func (c *Client) SetFrameTimeout(d time.Duration) { c.frameTimeout = d }

// DefaultFrameTimeout is the per-frame deadline clients and servers
// apply unless overridden: generous enough for the cost-model's
// simulated multi-second statements, short enough that a dead peer
// surfaces as an error instead of a hung coordinator.
const DefaultFrameTimeout = 2 * time.Minute

// DialOptions configures DialOpts.
type DialOptions struct {
	// MaxVer caps the negotiated protocol version. 0 means the build's
	// WireVersion; a negative value forces the version-0 JSON protocol.
	MaxVer int
	// Tenant identifies the connection to the server's admission
	// control; empty means serve.DefaultTenant.
	Tenant string
	// Deadline bounds each statement that executes without a
	// caller-supplied context deadline; 0 means none.
	Deadline time.Duration
}

// Dial connects to a wire server, attaching any injector registered
// for addr and negotiating the highest protocol version both peers
// speak.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, DialOptions{})
}

// DialVersion is Dial with the client's protocol version capped at
// maxVer; 0 skips negotiation entirely and behaves like a
// pre-binary-codec client.
func DialVersion(addr string, maxVer int) (*Client, error) {
	if maxVer < 1 {
		maxVer = -1
	}
	return DialOpts(addr, DialOptions{MaxVer: maxVer})
}

// DialOpts is Dial with explicit options: protocol cap, tenant
// identity (carried in the hello frame) and a default per-statement
// deadline.
func DialOpts(addr string, o DialOptions) (*Client, error) {
	maxVer := o.MaxVer
	switch {
	case maxVer == 0:
		maxVer = WireVersion
	case maxVer < 0:
		maxVer = 0
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &OpError{Op: "dial", Err: fmt.Errorf("wire dial %s: %w", addr, err)}
	}
	c := &Client{
		conn:         conn,
		injector:     injectorFor(addr),
		frameTimeout: DefaultFrameTimeout,
		tenant:       o.Tenant,
		deadline:     o.Deadline,
	}
	// The hello both negotiates the version and registers the tenant,
	// so it is needed even for a JSON-only client that has a tenant.
	if maxVer >= 1 || o.Tenant != "" {
		if err := c.hello(maxVer); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	return c, nil
}

// Tenant reports the tenant this connection identified as at dial
// time; empty means the server's default tenant.
func (c *Client) Tenant() string { return c.tenant }

// hello negotiates the protocol version. It deliberately bypasses
// roundTrip: the handshake is part of dialing, so fault injectors —
// which count application round trips — must not see it. An error
// reply (a server that predates OpHello) downgrades to version 0.
func (c *Client) hello(maxVer int) error {
	if c.frameTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.frameTimeout))
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := WriteFrame(c.conn, &Request{Op: OpHello, WireVer: maxVer, Tenant: c.tenant}); err != nil {
		return &OpError{Op: "hello", Err: err}
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return &OpError{Op: "hello", Sent: true, Err: err}
	}
	if resp.Error != "" {
		c.ver = 0 // old server: keep speaking JSON
		return nil
	}
	c.ver = min(resp.WireVer, maxVer)
	return nil
}

// Exec executes one statement remotely. Transport failures come back
// as *OpError; its Sent field tells retrying callers whether the
// request could have reached the server.
func (c *Client) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return c.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec with the context's deadline carried to the
// server as the statement's DeadlineMillis budget (queue wait plus
// execution). A context without a deadline falls back to the
// connection's default deadline from DialOptions.
func (c *Client) ExecContext(ctx context.Context, sql string, args ...sqltypes.Value) (*engine.Result, error) {
	req := Request{SQL: sql}
	wireArgs(&req, args)
	return c.execCtx(ctx, &req)
}

// execCtx stamps the effective deadline onto req and round-trips it.
func (c *Client) execCtx(ctx context.Context, req *Request) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.DeadlineMillis = deadlineMillis(ctx, c.deadline)
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// deadlineMillis renders the tighter of the context deadline and the
// connection default as a wire millisecond budget; 0 means unbounded.
// Sub-millisecond remainders round up to 1ms so an almost-expired
// context still reaches the server as a deadline, not as "none".
func deadlineMillis(ctx context.Context, fallback time.Duration) int64 {
	d := fallback
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem < time.Millisecond {
			rem = time.Millisecond // expired/nearly-expired must not read as "none"
		}
		if d <= 0 || rem < d {
			d = rem
		}
	}
	if d <= 0 {
		return 0
	}
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Prepare parses sql in the server-side session and returns a handle
// for ExecPrepared. The handle is valid only on this connection.
func (c *Client) Prepare(sql string) (int64, error) {
	resp, err := c.roundTrip(&Request{Op: OpPrepare, SQL: sql})
	if err != nil {
		return 0, err
	}
	return resp.Handle, nil
}

// ExecPrepared executes a prepared handle with bind args; the round
// trip carries only the handle and the values, no statement text.
func (c *Client) ExecPrepared(handle int64, args ...sqltypes.Value) (*engine.Result, error) {
	return c.ExecPreparedContext(context.Background(), handle, args...)
}

// ExecPreparedContext is ExecPrepared with the context's deadline
// carried to the server, as in ExecContext.
func (c *Client) ExecPreparedContext(ctx context.Context, handle int64, args ...sqltypes.Value) (*engine.Result, error) {
	req := Request{Op: OpExecPrepared, Handle: handle}
	wireArgs(&req, args)
	return c.execCtx(ctx, &req)
}

// ClosePrepared releases a server-side handle.
func (c *Client) ClosePrepared(handle int64) error {
	_, err := c.roundTrip(&Request{Op: OpClosePrepared, Handle: handle})
	return err
}

// wireArgs encodes bind values into the request.
func wireArgs(req *Request, args []sqltypes.Value) {
	if len(args) == 0 {
		return
	}
	req.Args = make([]WireValue, len(args))
	for i, v := range args {
		req.Args[i] = ToWire(v)
	}
}

// decodeResult converts a successful response into an engine result.
func decodeResult(resp *Response) (*engine.Result, error) {
	res := &engine.Result{Columns: resp.Columns, RowsAffected: resp.RowsAffected}
	if resp.binRows != nil {
		res.Rows = resp.binRows
		return res, nil
	}
	if len(resp.Rows) > 0 {
		res.Rows = make([]sqltypes.Row, len(resp.Rows))
		for i, wr := range resp.Rows {
			row := make(sqltypes.Row, len(wr))
			for j, wv := range wr {
				v, err := FromWire(wv)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			res.Rows[i] = row
		}
	}
	return res, nil
}

// roundTrip sends one request frame and reads its response, applying
// injector faults, metrics and the OpError Sent classification shared
// by every operation.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	dropAfterSend := false
	if c.injector != nil {
		if f := c.injector.next(); f != nil {
			switch f.Kind {
			case FaultDelay:
				time.Sleep(f.Delay)
			case FaultErr:
				return nil, &OpError{Op: "inject", Err: ErrInjected}
			case FaultDropBeforeSend:
				_ = c.conn.Close()
			case FaultDropAfterSend:
				dropAfterSend = true
			}
		}
	}
	start := time.Now()
	if c.frameTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.frameTimeout))
	}
	wn, err := WriteFrameN(c.conn, req)
	if c.frameTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	if c.metrics != nil {
		c.metrics.Counter("wire_bytes_written_total").Add(int64(wn))
	}
	if err != nil {
		// A failed write means the server never saw a complete frame,
		// so the statement did not execute: safe to retry elsewhere.
		return nil, &OpError{Op: "write", Err: err}
	}
	if dropAfterSend {
		_ = c.conn.Close()
	}
	if c.frameTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.frameTimeout))
	}
	payload, rn, err := readRawFrameN(c.conn)
	if c.frameTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Time{})
	}
	if c.metrics != nil {
		c.metrics.Counter("wire_bytes_read_total").Add(int64(rn))
		c.metrics.Counter("wire_roundtrips_total").Inc()
		c.metrics.Histogram("wire_roundtrip_seconds").Observe(time.Since(start))
	}
	if err != nil {
		// The request was sent; the statement may have executed even
		// though the response was lost. Not retryable at this layer.
		return nil, &OpError{Op: "read", Sent: true, Err: err}
	}
	resp, err := decodeResponsePayload(payload)
	if err != nil {
		return nil, &OpError{Op: "read", Sent: true, Err: err}
	}
	if resp.Error != "" {
		return nil, decodeError(resp, c.tenant)
	}
	return resp, nil
}

// decodeError reconstructs a typed error from a coded response, so
// errors.Is/As classification works identically for embedded and
// remote serving: admission rejections come back as *serve.
// AdmissionError, deadline and cancellation as the context sentinels.
func decodeError(resp *Response, tenant string) error {
	switch resp.Code {
	case CodeAdmissionRejected:
		if tenant == "" {
			tenant = serve.DefaultTenant
		}
		return &serve.AdmissionError{Tenant: tenant, Reason: resp.Reason}
	case CodeDeadlineExceeded:
		return fmt.Errorf("wire: server: %s: %w", resp.Error, context.DeadlineExceeded)
	case CodeCanceled:
		return fmt.Errorf("wire: server: %s: %w", resp.Error, context.Canceled)
	default:
		return errors.New(resp.Error)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
