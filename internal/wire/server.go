package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sqloop/internal/engine"
	"sqloop/internal/obs"
	"sqloop/internal/sqltypes"
)

// Server exposes an engine over TCP. Each accepted connection gets its
// own engine session, mirroring the one-process-per-connection behaviour
// SQLoop exploits for parallelism.
type Server struct {
	eng     *engine.Engine
	ln      net.Listener
	metrics *obs.Registry

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine for network serving.
func NewServer(eng *engine.Engine) *Server {
	return &Server{
		eng:     eng,
		conns:   make(map[net.Conn]struct{}),
		metrics: obs.NewRegistry(),
	}
}

// Metrics returns the server's registry: wire_requests_total,
// wire_request_seconds (per-statement server-side latency),
// wire_bytes_read_total, wire_bytes_written_total and
// wire_connections_total accumulate while the server runs.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire server: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	sess := s.eng.NewSession()
	s.metrics.Counter("wire_connections_total").Inc()
	bytesIn := s.metrics.Counter("wire_bytes_read_total")
	bytesOut := s.metrics.Counter("wire_bytes_written_total")
	requests := s.metrics.Counter("wire_requests_total")
	latency := s.metrics.Histogram("wire_request_seconds")
	for {
		var req Request
		n, err := readFrameTimed(conn, &req, DefaultFrameTimeout)
		bytesIn.Add(int64(n))
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol error: answer once, then drop the connection.
				_ = WriteFrame(conn, &Response{Error: err.Error()})
			}
			return
		}
		requests.Inc()
		start := time.Now()
		resp := s.execute(sess, &req)
		latency.Observe(time.Since(start))
		_ = conn.SetWriteDeadline(time.Now().Add(DefaultFrameTimeout))
		wn, err := WriteFrameN(conn, resp)
		_ = conn.SetWriteDeadline(time.Time{})
		bytesOut.Add(int64(wn))
		if err != nil {
			return
		}
	}
}

func (s *Server) execute(sess *engine.Session, req *Request) *Response {
	args := make([]sqltypes.Value, len(req.Args))
	for i, wv := range req.Args {
		v, err := FromWire(wv)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		args[i] = v
	}
	var (
		res *engine.Result
		err error
	)
	switch req.Op {
	case OpExec:
		res, err = sess.Exec(req.SQL, args...)
	case OpPrepare:
		h, perr := sess.Prepare(req.SQL)
		if perr != nil {
			return &Response{Error: perr.Error()}
		}
		return &Response{Handle: h}
	case OpExecPrepared:
		res, err = sess.ExecPrepared(req.Handle, args)
	case OpClosePrepared:
		if cerr := sess.ClosePrepared(req.Handle); cerr != nil {
			return &Response{Error: cerr.Error()}
		}
		return &Response{}
	default:
		return &Response{Error: fmt.Sprintf("wire: unknown operation %q", req.Op)}
	}
	if err != nil {
		return &Response{Error: err.Error()}
	}
	resp := &Response{Columns: res.Columns, RowsAffected: res.RowsAffected}
	if len(res.Rows) > 0 {
		resp.Rows = make([][]WireValue, len(res.Rows))
		for i, row := range res.Rows {
			wr := make([]WireValue, len(row))
			for j, v := range row {
				wr[j] = ToWire(v)
			}
			resp.Rows[i] = wr
		}
	}
	return resp
}

// Close stops accepting, closes every live connection and waits for
// handler goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is one network connection speaking the wire protocol. It is
// not safe for concurrent use (use one per goroutine, as with JDBC
// connections).
type Client struct {
	conn         net.Conn
	metrics      *obs.Registry
	injector     *Injector
	frameTimeout time.Duration
}

// SetMetrics attaches a registry; the client then reports round-trips
// (wire_roundtrips_total), client-observed latency
// (wire_roundtrip_seconds) and traffic (wire_bytes_written_total /
// wire_bytes_read_total) into it. Pass nil to detach.
func (c *Client) SetMetrics(r *obs.Registry) { c.metrics = r }

// SetInjector attaches a fault injector to this client only (Dial
// already attaches any injector registered for the address).
func (c *Client) SetInjector(i *Injector) { c.injector = i }

// SetFrameTimeout bounds each frame transfer (a read or write of one
// request/response). Zero disables deadlines. The default is
// DefaultFrameTimeout.
func (c *Client) SetFrameTimeout(d time.Duration) { c.frameTimeout = d }

// DefaultFrameTimeout is the per-frame deadline clients and servers
// apply unless overridden: generous enough for the cost-model's
// simulated multi-second statements, short enough that a dead peer
// surfaces as an error instead of a hung coordinator.
const DefaultFrameTimeout = 2 * time.Minute

// Dial connects to a wire server, attaching any injector registered
// for addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &OpError{Op: "dial", Err: fmt.Errorf("wire dial %s: %w", addr, err)}
	}
	return &Client{conn: conn, injector: injectorFor(addr), frameTimeout: DefaultFrameTimeout}, nil
}

// Exec executes one statement remotely. Transport failures come back
// as *OpError; its Sent field tells retrying callers whether the
// request could have reached the server.
func (c *Client) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	req := Request{SQL: sql}
	wireArgs(&req, args)
	resp, err := c.roundTrip(&req)
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Prepare parses sql in the server-side session and returns a handle
// for ExecPrepared. The handle is valid only on this connection.
func (c *Client) Prepare(sql string) (int64, error) {
	resp, err := c.roundTrip(&Request{Op: OpPrepare, SQL: sql})
	if err != nil {
		return 0, err
	}
	return resp.Handle, nil
}

// ExecPrepared executes a prepared handle with bind args; the round
// trip carries only the handle and the values, no statement text.
func (c *Client) ExecPrepared(handle int64, args ...sqltypes.Value) (*engine.Result, error) {
	req := Request{Op: OpExecPrepared, Handle: handle}
	wireArgs(&req, args)
	resp, err := c.roundTrip(&req)
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// ClosePrepared releases a server-side handle.
func (c *Client) ClosePrepared(handle int64) error {
	_, err := c.roundTrip(&Request{Op: OpClosePrepared, Handle: handle})
	return err
}

// wireArgs encodes bind values into the request.
func wireArgs(req *Request, args []sqltypes.Value) {
	if len(args) == 0 {
		return
	}
	req.Args = make([]WireValue, len(args))
	for i, v := range args {
		req.Args[i] = ToWire(v)
	}
}

// decodeResult converts a successful response into an engine result.
func decodeResult(resp *Response) (*engine.Result, error) {
	res := &engine.Result{Columns: resp.Columns, RowsAffected: resp.RowsAffected}
	if len(resp.Rows) > 0 {
		res.Rows = make([]sqltypes.Row, len(resp.Rows))
		for i, wr := range resp.Rows {
			row := make(sqltypes.Row, len(wr))
			for j, wv := range wr {
				v, err := FromWire(wv)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			res.Rows[i] = row
		}
	}
	return res, nil
}

// roundTrip sends one request frame and reads its response, applying
// injector faults, metrics and the OpError Sent classification shared
// by every operation.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	dropAfterSend := false
	if c.injector != nil {
		if f := c.injector.next(); f != nil {
			switch f.Kind {
			case FaultDelay:
				time.Sleep(f.Delay)
			case FaultErr:
				return nil, &OpError{Op: "inject", Err: ErrInjected}
			case FaultDropBeforeSend:
				_ = c.conn.Close()
			case FaultDropAfterSend:
				dropAfterSend = true
			}
		}
	}
	start := time.Now()
	if c.frameTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.frameTimeout))
	}
	wn, err := WriteFrameN(c.conn, req)
	if c.frameTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	if c.metrics != nil {
		c.metrics.Counter("wire_bytes_written_total").Add(int64(wn))
	}
	if err != nil {
		// A failed write means the server never saw a complete frame,
		// so the statement did not execute: safe to retry elsewhere.
		return nil, &OpError{Op: "write", Err: err}
	}
	if dropAfterSend {
		_ = c.conn.Close()
	}
	if c.frameTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.frameTimeout))
	}
	var resp Response
	rn, err := ReadFrameN(c.conn, &resp)
	if c.frameTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Time{})
	}
	if c.metrics != nil {
		c.metrics.Counter("wire_bytes_read_total").Add(int64(rn))
		c.metrics.Counter("wire_roundtrips_total").Inc()
		c.metrics.Histogram("wire_roundtrip_seconds").Observe(time.Since(start))
	}
	if err != nil {
		// The request was sent; the statement may have executed even
		// though the response was lost. Not retryable at this layer.
		return nil, &OpError{Op: "read", Sent: true, Err: err}
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return &resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
