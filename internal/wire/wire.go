// Package wire implements the client/server protocol that lets SQLoop
// reach a remote engine the way the paper's middleware reaches remote
// databases over JDBC: newline-free, length-prefixed JSON frames over
// TCP, one engine session per accepted connection.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"sqloop/internal/sqltypes"
)

// MaxFrameSize bounds a single frame; larger frames indicate a protocol
// error or a hostile peer. Enforced on both the read and the write
// path: an oversized outgoing frame fails before a single byte reaches
// the wire, so the peer never sees a half-frame.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge marks a frame exceeding MaxFrameSize, in either
// direction. Test with errors.Is; the wrapping error carries the size.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// Request operations. The zero value (OpExec) keeps the PR-1/PR-2
// frame layout: old clients never set "op" and old servers never see
// one, so mixed-version pairs keep exchanging plain Exec frames.
const (
	// OpExec executes statement text directly.
	OpExec = ""
	// OpPrepare parses SQL once server-side and returns a handle.
	OpPrepare = "prepare"
	// OpExecPrepared executes a previously prepared handle with bind
	// args — steady-state round trips carry no statement text.
	OpExecPrepared = "exec_prepared"
	// OpClosePrepared releases a handle.
	OpClosePrepared = "close_prepared"
	// OpHello negotiates the protocol version for a connection. Servers
	// that predate it answer with an unknown-operation error, which
	// clients treat as version 0 (JSON responses) — so mixed-version
	// pairs degrade transparently instead of failing.
	OpHello = "hello"
)

// Request is one client → server message.
type Request struct {
	// Op selects the operation; empty means OpExec.
	Op string `json:"op,omitempty"`
	// SQL is the statement text (OpExec and OpPrepare).
	SQL string `json:"sql,omitempty"`
	// Handle identifies a prepared statement (OpExecPrepared,
	// OpClosePrepared). Handles are scoped to this connection's session.
	Handle int64 `json:"handle,omitempty"`
	// Args are the bind parameters.
	Args []WireValue `json:"args,omitempty"`
	// WireVer is the highest protocol version the client speaks
	// (OpHello only).
	WireVer int `json:"wireVer,omitempty"`
	// Tenant identifies the connection's tenant for admission control
	// and fair scheduling (OpHello only; the server pins it to the
	// session). Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMillis bounds this statement's queue wait plus execution,
	// in milliseconds from server receipt; 0 means no deadline.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// Machine-readable error classes carried in Response.Code. Responses
// with a Code are always JSON-framed (the binary codec is reserved for
// the row hot path), which every client build can decode.
const (
	// CodeAdmissionRejected marks a statement turned away by admission
	// control before executing; Response.Reason carries the
	// serve.Reason* detail. Safe to retry after backoff.
	CodeAdmissionRejected = "admission_rejected"
	// CodeDeadlineExceeded marks a statement whose deadline expired
	// before or during execution. Not safe to blindly retry.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled marks a statement cancelled before completion.
	CodeCanceled = "canceled"
)

// Response is one server → client message.
type Response struct {
	// Error is the execution error, empty on success.
	Error string `json:"error,omitempty"`
	// Handle is the prepared-statement id (OpPrepare replies only).
	Handle int64 `json:"handle,omitempty"`
	// Columns names the result columns (queries only).
	Columns []string `json:"columns,omitempty"`
	// Rows holds the result rows.
	Rows [][]WireValue `json:"rows,omitempty"`
	// RowsAffected counts changed rows for DML.
	RowsAffected int64 `json:"rowsAffected"`
	// WireVer is the version the server settled on (OpHello replies
	// only).
	WireVer int `json:"wireVer,omitempty"`
	// Code classifies Error for machine handling (Code* constants);
	// empty for success and plain execution errors.
	Code string `json:"code,omitempty"`
	// Reason refines Code (the admission rejection reason).
	Reason string `json:"reason,omitempty"`

	// binRows carries rows decoded from a binary frame; JSON responses
	// leave it nil and use Rows instead.
	binRows []sqltypes.Row
}

// WireValue is the JSON encoding of one sqltypes.Value. Exactly one
// pointer field is set, or all are nil for SQL NULL; infinities are
// carried in Special because JSON has no literal for them.
type WireValue struct {
	Int     *int64   `json:"i,omitempty"`
	Float   *float64 `json:"f,omitempty"`
	Str     *string  `json:"s,omitempty"`
	Bool    *bool    `json:"b,omitempty"`
	Special string   `json:"x,omitempty"` // "+inf" | "-inf"
}

// ToWire converts a value for transmission.
func ToWire(v sqltypes.Value) WireValue {
	switch v.Kind() {
	case sqltypes.KindInt:
		i := v.Int()
		return WireValue{Int: &i}
	case sqltypes.KindFloat:
		f := v.Float()
		switch {
		case math.IsInf(f, 1):
			return WireValue{Special: "+inf"}
		case math.IsInf(f, -1):
			return WireValue{Special: "-inf"}
		default:
			return WireValue{Float: &f}
		}
	case sqltypes.KindString:
		s := v.Str()
		return WireValue{Str: &s}
	case sqltypes.KindBool:
		b := v.Bool()
		return WireValue{Bool: &b}
	default:
		return WireValue{}
	}
}

// FromWire decodes a transmitted value.
func FromWire(w WireValue) (sqltypes.Value, error) {
	set := 0
	if w.Int != nil {
		set++
	}
	if w.Float != nil {
		set++
	}
	if w.Str != nil {
		set++
	}
	if w.Bool != nil {
		set++
	}
	if w.Special != "" {
		set++
	}
	if set > 1 {
		return sqltypes.Null, fmt.Errorf("wire: value sets %d fields", set)
	}
	switch {
	case w.Int != nil:
		return sqltypes.NewInt(*w.Int), nil
	case w.Float != nil:
		return sqltypes.NewFloat(*w.Float), nil
	case w.Str != nil:
		return sqltypes.NewString(*w.Str), nil
	case w.Bool != nil:
		return sqltypes.NewBool(*w.Bool), nil
	case w.Special == "+inf":
		return sqltypes.NewFloat(math.Inf(1)), nil
	case w.Special == "-inf":
		return sqltypes.NewFloat(math.Inf(-1)), nil
	case w.Special != "":
		return sqltypes.Null, fmt.Errorf("wire: unknown special value %q", w.Special)
	default:
		return sqltypes.Null, nil
	}
}

// WriteFrame sends one length-prefixed JSON message.
func WriteFrame(w io.Writer, msg any) error {
	_, err := WriteFrameN(w, msg)
	return err
}

// WriteFrameN is WriteFrame reporting the bytes put on the wire
// (header + payload), for traffic accounting.
func WriteFrameN(w io.Writer, msg any) (int, error) {
	payload, err := json.Marshal(msg)
	if err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return 0, fmt.Errorf("outgoing frame of %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return len(hdr), fmt.Errorf("wire: write payload: %w", err)
	}
	return len(hdr) + len(payload), nil
}

// writeRawFrameN sends one length-prefixed payload without re-encoding
// it (the binary response path builds its payload directly).
func writeRawFrameN(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxFrameSize {
		return 0, fmt.Errorf("outgoing frame of %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return len(hdr), fmt.Errorf("wire: write payload: %w", err)
	}
	return len(hdr) + len(payload), nil
}

// readRawFrameN receives one length-prefixed payload verbatim, letting
// the caller dispatch on the encoding (binary frames start with
// binaryMagic, JSON ones with '{').
func readRawFrameN(r io.Reader) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err // io.EOF passes through for clean connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, len(hdr), fmt.Errorf("incoming frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, len(hdr), fmt.Errorf("wire: read payload: %w", err)
	}
	return payload, len(hdr) + int(n), nil
}

// decodeResponsePayload turns a raw response payload into a Response,
// accepting either encoding. Binary rows land in resp.binRows.
func decodeResponsePayload(payload []byte) (*Response, error) {
	if len(payload) > 0 && payload[0] == binaryMagic {
		resp, rows, err := DecodeBinaryResponse(payload)
		if err != nil {
			return nil, err
		}
		resp.binRows = rows
		return resp, nil
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &resp, nil
}

// readFrameTimed is ReadFrameN for a net.Conn with the payload under a
// deadline: the wait for the header is unbounded (idle connections may
// sit between statements indefinitely), but once a frame is announced
// the rest of it must arrive within d. Zero d disables the deadline.
func readFrameTimed(conn net.Conn, msg any, d time.Duration) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, err // io.EOF passes through for clean connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return len(hdr), fmt.Errorf("incoming frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	if d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(d))
		defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return len(hdr), fmt.Errorf("wire: read payload: %w", err)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return len(hdr) + int(n), fmt.Errorf("wire: unmarshal: %w", err)
	}
	return len(hdr) + int(n), nil
}

// ReadFrame receives one length-prefixed JSON message into msg.
func ReadFrame(r io.Reader, msg any) error {
	_, err := ReadFrameN(r, msg)
	return err
}

// ReadFrameN is ReadFrame reporting the bytes taken off the wire
// (header + payload), for traffic accounting.
func ReadFrameN(r io.Reader, msg any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err // io.EOF passes through for clean connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return len(hdr), fmt.Errorf("incoming frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return len(hdr), fmt.Errorf("wire: read payload: %w", err)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return len(hdr) + int(n), fmt.Errorf("wire: unmarshal: %w", err)
	}
	return len(hdr) + int(n), nil
}
