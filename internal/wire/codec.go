package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqloop/internal/sqltypes"
)

// WireVersion is the highest protocol version this build speaks.
// Version 0 is the original JSON-only protocol; version 1 adds the
// binary response codec negotiated via OpHello.
const WireVersion = 1

// binaryMagic is the first payload byte of every binary response
// frame. JSON responses always start with '{' (0x7B), so one byte
// disambiguates the two encodings and lets a reader accept either.
const binaryMagic = 0xBF

// Value tags in the binary codec. Bools get two tags so true/false
// need no payload byte, and NULL is a bare tag.
const (
	tagNull  = 0
	tagInt   = 1 // zigzag varint
	tagFloat = 2 // 8-byte big-endian IEEE 754 (NaN and ±Inf round-trip natively)
	tagStr   = 3 // uvarint length + bytes
	tagFalse = 4
	tagTrue  = 5
)

// zigzag maps signed to unsigned so small negative ints stay short.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, zigzag(v))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v sqltypes.Value) []byte {
	switch v.Kind() {
	case sqltypes.KindInt:
		b = append(b, tagInt)
		return appendVarint(b, v.Int())
	case sqltypes.KindFloat:
		b = append(b, tagFloat)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		return append(b, buf[:]...)
	case sqltypes.KindString:
		b = append(b, tagStr)
		return appendString(b, v.Str())
	case sqltypes.KindBool:
		if v.Bool() {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	default:
		return append(b, tagNull)
	}
}

// AppendBinaryResponse encodes a response and its rows into the
// version-1 binary frame payload. Rows are passed separately from the
// Response so the server's hot path never materializes the per-value
// pointer structs the JSON encoding needs.
func AppendBinaryResponse(b []byte, resp *Response, rows []sqltypes.Row) []byte {
	b = append(b, binaryMagic, 1)
	b = appendString(b, resp.Error)
	b = appendVarint(b, resp.Handle)
	b = appendVarint(b, resp.RowsAffected)
	b = appendUvarint(b, uint64(len(resp.Columns)))
	for _, c := range resp.Columns {
		b = appendString(b, c)
	}
	b = appendUvarint(b, uint64(len(rows)))
	for _, row := range rows {
		b = appendUvarint(b, uint64(len(row)))
		for _, v := range row {
			b = appendValue(b, v)
		}
	}
	return b
}

// binReader walks a binary payload with strict bounds checking: any
// truncated or oversized field fails decoding instead of panicking.
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: binary frame: bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	u, err := r.uvarint()
	return unzigzag(u), err
}

func (r *binReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: binary frame: %d-byte field exceeds remaining %d bytes", n, len(r.b)-r.off)
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

func (r *binReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	return string(b), err
}

func (r *binReader) value() (sqltypes.Value, error) {
	if r.off >= len(r.b) {
		return sqltypes.Null, fmt.Errorf("wire: binary frame: truncated value")
	}
	tag := r.b[r.off]
	r.off++
	switch tag {
	case tagNull:
		return sqltypes.Null, nil
	case tagInt:
		v, err := r.varint()
		return sqltypes.NewInt(v), err
	case tagFloat:
		b, err := r.bytes(8)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b))), nil
	case tagStr:
		s, err := r.string()
		return sqltypes.NewString(s), err
	case tagFalse:
		return sqltypes.NewBool(false), nil
	case tagTrue:
		return sqltypes.NewBool(true), nil
	default:
		return sqltypes.Null, fmt.Errorf("wire: binary frame: unknown value tag %d", tag)
	}
}

// DecodeBinaryResponse decodes a version-1 binary frame payload. The
// returned rows are engine values directly; the Response's JSON Rows
// field stays empty.
func DecodeBinaryResponse(payload []byte) (*Response, []sqltypes.Row, error) {
	if len(payload) < 2 || payload[0] != binaryMagic {
		return nil, nil, fmt.Errorf("wire: not a binary response frame")
	}
	if payload[1] != 1 {
		return nil, nil, fmt.Errorf("wire: unsupported binary frame version %d", payload[1])
	}
	r := &binReader{b: payload, off: 2}
	resp := &Response{}
	var err error
	if resp.Error, err = r.string(); err != nil {
		return nil, nil, err
	}
	if resp.Handle, err = r.varint(); err != nil {
		return nil, nil, err
	}
	if resp.RowsAffected, err = r.varint(); err != nil {
		return nil, nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if ncols > uint64(len(payload)) {
		return nil, nil, fmt.Errorf("wire: binary frame: %d columns exceeds frame size", ncols)
	}
	if ncols > 0 {
		resp.Columns = make([]string, ncols)
		for i := range resp.Columns {
			if resp.Columns[i], err = r.string(); err != nil {
				return nil, nil, err
			}
		}
	}
	nrows, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nrows > uint64(len(payload)) {
		return nil, nil, fmt.Errorf("wire: binary frame: %d rows exceeds frame size", nrows)
	}
	var rows []sqltypes.Row
	if nrows > 0 {
		rows = make([]sqltypes.Row, nrows)
		for i := range rows {
			width, err := r.uvarint()
			if err != nil {
				return nil, nil, err
			}
			if width > uint64(len(payload)) {
				return nil, nil, fmt.Errorf("wire: binary frame: row of %d values exceeds frame size", width)
			}
			row := make(sqltypes.Row, width)
			for j := range row {
				if row[j], err = r.value(); err != nil {
					return nil, nil, err
				}
			}
			rows[i] = row
		}
	}
	if r.off != len(payload) {
		return nil, nil, fmt.Errorf("wire: binary frame: %d trailing bytes", len(payload)-r.off)
	}
	return resp, rows, nil
}
