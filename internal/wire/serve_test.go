package wire

import (
	"context"
	"errors"
	"testing"
	"time"

	"sqloop/internal/engine"
	"sqloop/internal/serve"
)

// slowServer boots a pooled wire server whose every statement takes
// ~cost, so tests can fill the single worker and its queue on purpose.
func slowServer(t *testing.T, cfg serve.Config, cost time.Duration) (srv *Server, addr string) {
	t.Helper()
	eng := engine.New(engine.Config{Cost: &engine.CostModel{PerStatement: cost, Scale: 1}})
	srv = NewServer(eng)
	srv.EnablePool(cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr
}

func TestPooledServerExecutesAndMeters(t *testing.T) {
	srv, addr := slowServer(t, serve.Config{MaxSessions: 2}, 0)
	cl, err := DialOpts(addr, DialOptions{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(`CREATE TABLE p (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO p VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`SELECT COUNT(*) FROM p`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("select: %v / %v", res, err)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counters["serve_admitted_total"] != 3 {
		t.Fatalf("serve_admitted_total = %d, want 3", snap.Counters["serve_admitted_total"])
	}
	if h, ok := snap.Histograms[serve.TenantMetric("serve_exec_seconds", "acme")]; !ok || h.Count != 3 {
		t.Fatalf("per-tenant histogram missing or short: %+v (present=%v)", h, ok)
	}
}

// TestPooledServerQueueFull drives one slow statement plus one queued
// statement into a MaxSessions=1/QueueDepth=1 server; the third must be
// rejected as a typed admission error that survives the wire.
func TestPooledServerQueueFull(t *testing.T) {
	_, addr := slowServer(t, serve.Config{MaxSessions: 1, QueueDepth: 1}, 300*time.Millisecond)
	dial := func() *Client {
		t.Helper()
		cl, err := DialOpts(addr, DialOptions{Tenant: "a"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cl.Close() })
		return cl
	}
	running, queued, rejecter := dial(), dial(), dial()
	done := make(chan error, 2)
	go func() { _, err := running.Exec(`CREATE TABLE q1 (id BIGINT PRIMARY KEY)`); done <- err }()
	time.Sleep(75 * time.Millisecond) // statement is on the worker
	go func() { _, err := queued.Exec(`CREATE TABLE q2 (id BIGINT PRIMARY KEY)`); done <- err }()
	time.Sleep(75 * time.Millisecond) // statement is in the queue (depth 1: full)

	_, err := rejecter.Exec(`CREATE TABLE q3 (id BIGINT PRIMARY KEY)`)
	var ae *serve.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *serve.AdmissionError across the wire", err)
	}
	if ae.Reason != serve.ReasonQueueFull || ae.Tenant != "a" {
		t.Fatalf("admission error = %+v, want queue_full for tenant a", ae)
	}
	if !errors.Is(err, serve.ErrAdmissionRejected) {
		t.Fatalf("errors.Is sentinel match failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted statement %d failed: %v", i, err)
		}
	}
}

// TestPooledServerDeadlineInQueue submits a statement whose deadline
// cannot survive the queue wait behind a slow statement; the server
// must answer CodeDeadlineExceeded without running it, and the client
// must surface context.DeadlineExceeded.
func TestPooledServerDeadlineInQueue(t *testing.T) {
	_, addr := slowServer(t, serve.Config{MaxSessions: 1}, 300*time.Millisecond)
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	impatient, err := DialOpts(addr, DialOptions{Tenant: "b", Deadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer impatient.Close()

	done := make(chan error, 1)
	go func() { _, err := slow.Exec(`CREATE TABLE d1 (id BIGINT PRIMARY KEY)`); done <- err }()
	time.Sleep(75 * time.Millisecond) // slow statement holds the only worker

	_, err = impatient.Exec(`CREATE TABLE d2 (id BIGINT PRIMARY KEY)`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded across the wire", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow statement failed: %v", err)
	}
	// The connection survives a deadline rejection.
	if _, err := impatient.ExecContext(context.Background(), `SELECT COUNT(*) FROM d1`); err != nil {
		t.Fatalf("connection unusable after deadline rejection: %v", err)
	}
}

// TestExecContextDeadlineStamp checks the client carries a context
// deadline to the server even on a connection with no default.
func TestExecContextDeadlineStamp(t *testing.T) {
	_, addr := slowServer(t, serve.Config{MaxSessions: 1}, 300*time.Millisecond)
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	done := make(chan error, 1)
	go func() { _, err := slow.Exec(`CREATE TABLE e1 (id BIGINT PRIMARY KEY)`); done <- err }()
	time.Sleep(75 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.ExecContext(ctx, `CREATE TABLE e2 (id BIGINT PRIMARY KEY)`); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow statement failed: %v", err)
	}
}
