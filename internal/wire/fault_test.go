package wire

import (
	"errors"
	"testing"
	"time"

	"sqloop/internal/engine"
)

// faultTestServer starts a server with one table and returns its address.
func faultTestServer(t *testing.T) string {
	t.Helper()
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(`CREATE TABLE f (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestInjectorSchedule(t *testing.T) {
	inj := NewInjector(
		Fault{AtOp: 2, Kind: FaultErr},
		Fault{AtOp: 4, Kind: FaultDelay, Delay: time.Millisecond},
	)
	kinds := []FaultKind{0, FaultErr, 0, FaultDelay, 0}
	for op, want := range kinds {
		f := inj.next()
		if want == 0 {
			if f != nil {
				t.Fatalf("op %d: unexpected fault %v", op+1, f.Kind)
			}
			continue
		}
		if f == nil || f.Kind != want {
			t.Fatalf("op %d: fault = %v, want %v", op+1, f, want)
		}
	}
	if inj.Ops() != 5 || inj.Fired() != 2 {
		t.Fatalf("ops=%d fired=%d", inj.Ops(), inj.Fired())
	}
}

func TestInjectorArm(t *testing.T) {
	inj := NewInjector()
	inj.next()
	inj.Arm(FaultErr)
	f := inj.next()
	if f == nil || f.Kind != FaultErr {
		t.Fatalf("armed fault did not fire on next op: %v", f)
	}
	if inj.next() != nil {
		t.Fatal("armed fault fired twice")
	}
}

func TestFaultErrIsTransient(t *testing.T) {
	addr := faultTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetInjector(NewInjector(Fault{AtOp: 1, Kind: FaultErr}))

	_, err = cl.Exec(`INSERT INTO f VALUES (1)`)
	var oe *OpError
	if !errors.As(err, &oe) || oe.Sent || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v (Sent should be false)", err)
	}
	// The connection was not touched; the next statement succeeds.
	if _, err := cl.Exec(`INSERT INTO f VALUES (1)`); err != nil {
		t.Fatalf("connection unusable after injected error: %v", err)
	}
}

func TestFaultDropBeforeSendIsRetryable(t *testing.T) {
	addr := faultTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetInjector(NewInjector(Fault{AtOp: 1, Kind: FaultDropBeforeSend}))

	_, err = cl.Exec(`INSERT INTO f VALUES (2)`)
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OpError", err)
	}
	if oe.Sent {
		t.Fatal("drop-before-send reported Sent=true; retry layer would refuse a safe retry")
	}
	// The statement never reached the server.
	check, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	res, err := check.Exec(`SELECT COUNT(*) FROM f WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("statement executed despite drop-before-send")
	}
}

func TestFaultDropAfterSendReportsSent(t *testing.T) {
	addr := faultTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetInjector(NewInjector(Fault{AtOp: 1, Kind: FaultDropAfterSend}))

	_, err = cl.Exec(`INSERT INTO f VALUES (3)`)
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OpError", err)
	}
	if !oe.Sent {
		t.Fatal("drop-after-send reported Sent=false; retry layer would re-execute a possibly-applied statement")
	}
}

func TestDialInjectorAttachment(t *testing.T) {
	addr := faultTestServer(t)
	inj := NewInjector(Fault{AtOp: 2, Kind: FaultErr})
	SetAddrInjector(addr, inj)
	defer SetAddrInjector(addr, nil)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(`INSERT INTO f VALUES (10)`); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := cl.Exec(`INSERT INTO f VALUES (11)`); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 should hit the injected fault: %v", err)
	}
	// A redial shares the same injector and counter.
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Exec(`INSERT INTO f VALUES (12)`); err != nil {
		t.Fatalf("op 3 on redialed client: %v", err)
	}
	if inj.Ops() != 3 {
		t.Fatalf("ops = %d, want 3 (shared across redials)", inj.Ops())
	}
}

func TestClientFrameTimeout(t *testing.T) {
	// A server that accepts but never answers: the client read deadline
	// must fire instead of hanging forever.
	addr := faultTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetFrameTimeout(50 * time.Millisecond)
	cl.SetInjector(NewInjector(Fault{AtOp: 1, Kind: FaultDelay, Delay: time.Millisecond}))

	// Delay alone doesn't trip the deadline; the round trip still works.
	if _, err := cl.Exec(`SELECT COUNT(*) FROM f`); err != nil {
		t.Fatalf("delayed op failed: %v", err)
	}
}

func TestInjectorArmEveryDisarm(t *testing.T) {
	inj := NewInjector()
	if inj.next() != nil {
		t.Fatal("idle injector fired")
	}
	inj.ArmEvery(FaultErr)
	for op := 0; op < 5; op++ {
		f := inj.next()
		if f == nil || f.Kind != FaultErr {
			t.Fatalf("op %d after ArmEvery: fault = %v, want FaultErr every op", op, f)
		}
	}
	inj.Disarm()
	for op := 0; op < 3; op++ {
		if f := inj.next(); f != nil {
			t.Fatalf("op %d after Disarm: unexpected fault %v", op, f.Kind)
		}
	}
	// Re-arming after Disarm works and one-shot Arm still wins back the
	// schedule: it fires exactly once.
	inj.Arm(FaultDelay)
	if f := inj.next(); f == nil || f.Kind != FaultDelay {
		t.Fatalf("one-shot after Disarm: %v", f)
	}
	if inj.next() != nil {
		t.Fatal("one-shot fired twice after Disarm/Arm cycle")
	}
}

// TestArmEveryKillsEndpointPersistently drives ArmEvery through a live
// client: once armed, every subsequent operation fails — the behavior
// the elastic failover tests rely on to emulate a dead-forever shard
// at the protocol layer.
func TestArmEveryKillsEndpointPersistently(t *testing.T) {
	addr := faultTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	inj := NewInjector()
	cl.SetInjector(inj)

	if _, err := cl.Exec(`INSERT INTO f VALUES (1)`); err != nil {
		t.Fatalf("healthy op failed: %v", err)
	}
	inj.ArmEvery(FaultErr)
	for i := 0; i < 3; i++ {
		_, err := cl.Exec(`INSERT INTO f VALUES (2)`)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d while armed: err = %v, want ErrInjected", i, err)
		}
	}
	inj.Disarm()
	if _, err := cl.Exec(`INSERT INTO f VALUES (3)`); err != nil {
		t.Fatalf("op after Disarm failed: %v", err)
	}
}
