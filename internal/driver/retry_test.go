package driver

import (
	"context"
	"database/sql"
	"errors"
	"testing"
	"time"

	"sqloop/internal/engine"
	"sqloop/internal/obs"
	"sqloop/internal/wire"
)

// retryTestServer serves a fresh engine over TCP and returns the DSN
// and address.
func retryTestServer(t *testing.T) (string, string) {
	t.Helper()
	eng := engine.New(engine.Config{})
	srv := wire.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return TCPDSN(addr), addr
}

// fastRetry keeps test backoff under a millisecond per attempt.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}

func TestRetryTransientInjectedError(t *testing.T) {
	dsn, addr := retryTestServer(t)
	reg := obs.NewRegistry()
	SetDSNMetrics(dsn, reg)
	defer SetDSNMetrics(dsn, nil)
	SetDSNRetry(dsn, fastRetry)
	defer SetDSNRetry(dsn, RetryPolicy{})
	// Injected transient errors on ops 2 and 3: the INSERT should
	// succeed on its third try without the caller noticing.
	wire.SetAddrInjector(addr, wire.NewInjector(
		wire.Fault{AtOp: 2, Kind: wire.FaultErr},
		wire.Fault{AtOp: 3, Kind: wire.FaultErr},
	))
	defer wire.SetAddrInjector(addr, nil)

	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE r (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO r VALUES (1)`); err != nil {
		t.Fatalf("retry did not absorb transient faults: %v", err)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM r`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d", n)
	}
	if got := reg.Counter("driver_retries_total").Value(); got < 2 {
		t.Fatalf("driver_retries_total = %d, want >= 2", got)
	}
}

func TestRetryDropBeforeSendReconnects(t *testing.T) {
	dsn, addr := retryTestServer(t)
	reg := obs.NewRegistry()
	SetDSNMetrics(dsn, reg)
	defer SetDSNMetrics(dsn, nil)
	SetDSNRetry(dsn, fastRetry)
	defer SetDSNRetry(dsn, RetryPolicy{})
	wire.SetAddrInjector(addr, wire.NewInjector(
		wire.Fault{AtOp: 2, Kind: wire.FaultDropBeforeSend},
	))
	defer wire.SetAddrInjector(addr, nil)

	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE r (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	// The connection is killed before the request leaves the client;
	// the driver must redial and run the statement exactly once.
	if _, err := db.Exec(`INSERT INTO r VALUES (7)`); err != nil {
		t.Fatalf("reconnect retry failed: %v", err)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM r WHERE id = 7`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("statement ran %d times, want exactly 1", n)
	}
	if got := reg.Counter("driver_redials_total").Value(); got < 2 {
		t.Fatalf("driver_redials_total = %d, want >= 2 (initial dial + reconnect)", got)
	}
}

func TestDropAfterSendSurfacesConnLost(t *testing.T) {
	dsn, addr := retryTestServer(t)
	SetDSNRetry(dsn, fastRetry)
	defer SetDSNRetry(dsn, RetryPolicy{})
	wire.SetAddrInjector(addr, wire.NewInjector(
		wire.Fault{AtOp: 2, Kind: wire.FaultDropAfterSend},
	))
	defer wire.SetAddrInjector(addr, nil)

	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE r (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec(`INSERT INTO r VALUES (9)`)
	var cl *ConnLostError
	if !errors.As(err, &cl) {
		t.Fatalf("err = %v, want *ConnLostError", err)
	}
	var lost interface{ ConnLost() bool }
	if !errors.As(err, &lost) || !lost.ConnLost() {
		t.Fatal("ConnLostError does not satisfy the duck-typed ConnLost interface")
	}
	// The driver healed the connection: the next statement works, and
	// the lost INSERT was applied exactly once, never replayed. The
	// server handler applies the in-flight statement asynchronously, so
	// poll briefly before judging.
	var n int
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := db.QueryRow(`SELECT COUNT(*) FROM r WHERE id = 9`).Scan(&n); err != nil {
			t.Fatalf("connection not healed after ConnLost: %v", err)
		}
		if n == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n != 1 {
		t.Fatalf("lost statement applied %d times", n)
	}
}

func TestRetryExhaustionReturnsConnLost(t *testing.T) {
	dsn, addr := retryTestServer(t)
	SetDSNRetry(dsn, RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond})
	defer SetDSNRetry(dsn, RetryPolicy{})
	// Every attempt (and every redial) is dropped before sending; op 1
	// is spared for the CREATE below.
	faults := make([]wire.Fault, 0, 28)
	for op := int64(2); op < 30; op++ {
		faults = append(faults, wire.Fault{AtOp: op, Kind: wire.FaultDropBeforeSend})
	}
	wire.SetAddrInjector(addr, wire.NewInjector(faults...))
	defer wire.SetAddrInjector(addr, nil)

	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE r (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec(`INSERT INTO r VALUES (1)`)
	var lost interface{ ConnLost() bool }
	if !errors.As(err, &lost) {
		t.Fatalf("exhausted retries returned %v, want ConnLost error", err)
	}
}

func TestCloseDuringBackoffReturnsPromptly(t *testing.T) {
	_, addr := retryTestServer(t)
	// Every op is dropped before sending, so the first statement enters
	// the retry loop immediately.
	faults := make([]wire.Fault, 0, 50)
	for op := int64(1); op <= 50; op++ {
		faults = append(faults, wire.Fault{AtOp: op, Kind: wire.FaultDropBeforeSend})
	}
	wire.SetAddrInjector(addr, wire.NewInjector(faults...))
	defer wire.SetAddrInjector(addr, nil)

	// Hour-scale backoff: if Close failed to interrupt the sleeping
	// retry loop, the exec below would ride out the full backoff instead
	// of returning.
	e := newWireExec(addr, Config{}, RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Hour, MaxBackoff: time.Hour}, wire.WireVersion)
	errc := make(chan error, 1)
	go func() {
		_, err := e.exec(context.Background(), `SELECT 1`, nil)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	start := time.Now()
	_ = e.close()
	select {
	case err := <-errc:
		if !errors.Is(err, errConnClosed) {
			t.Fatalf("exec after close = %v, want errConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the retry backoff")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("exec returned %v after close, want a prompt return", d)
	}
}

func TestPreparedReprepareAfterConnectionLoss(t *testing.T) {
	dsn, addr := retryTestServer(t)
	reg := obs.NewRegistry()
	SetDSNMetrics(dsn, reg)
	defer SetDSNMetrics(dsn, nil)
	SetDSNRetry(dsn, fastRetry)
	defer SetDSNRetry(dsn, RetryPolicy{})
	// Op schedule: 1 = CREATE, 2 = PREPARE, 3 = first EXEC_PREPARED,
	// 4 = second EXEC_PREPARED — killed before it reaches the server, so
	// the driver redials and the server-side handle dies with its
	// session. The injector must be attached before the first dial.
	wire.SetAddrInjector(addr, wire.NewInjector(
		wire.Fault{AtOp: 4, Kind: wire.FaultDropBeforeSend},
	))
	defer wire.SetAddrInjector(addr, nil)

	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE r (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`INSERT INTO r VALUES (?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// First execution pins a server-side handle on this dial generation.
	if _, err := st.Exec(1); err != nil {
		t.Fatal(err)
	}
	// The handle must be re-prepared transparently on the healed
	// connection.
	if _, err := st.Exec(2); err != nil {
		t.Fatalf("prepared exec after connection loss: %v", err)
	}

	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM r`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2 (re-prepared statement lost or replayed rows)", n)
	}
	if got := reg.Counter("driver_redials_total").Value(); got < 2 {
		t.Fatalf("driver_redials_total = %d, want >= 2 (initial dial + reconnect)", got)
	}
}

// TestBackoffNeverOverflows: with no MaxBackoff configured, the
// unbounded doubling used to overflow int64 into a negative duration at
// high attempt numbers, and the jitter draw (rand.Int63n over a
// negative bound) panicked inside the retry loop. The backoff must stay
// positive and bounded for every attempt count.
func TestBackoffNeverOverflows(t *testing.T) {
	policies := []RetryPolicy{
		{MaxAttempts: 200, BaseBackoff: 10 * time.Millisecond}, // no cap: the overflow case
		{MaxAttempts: 200},                                     // all defaults zero
		{MaxAttempts: 200, BaseBackoff: time.Hour},             // base above the ceiling
		DefaultRetryPolicy,
	}
	for _, p := range policies {
		prev := time.Duration(0)
		for n := 1; n <= 200; n++ {
			d := p.backoff(n)
			if d <= 0 {
				t.Fatalf("policy %+v attempt %d: backoff %v, want > 0", p, n, d)
			}
			ceiling := p.MaxBackoff
			if ceiling <= 0 {
				ceiling = backoffCeiling
			}
			if d > ceiling {
				t.Fatalf("policy %+v attempt %d: backoff %v exceeds cap %v", p, n, d, ceiling)
			}
			if d < prev {
				t.Fatalf("policy %+v attempt %d: backoff %v decreased from %v", p, n, d, prev)
			}
			prev = d
		}
	}
	// The full sleep path (including the jitter draw) must not panic at
	// an attempt count that used to produce a negative doubled duration.
	// The draw happens before the timer, so a short context deadline
	// bounds the test without weakening the panic check.
	p := RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Nanosecond}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.sleep(ctx, 100, nil); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sleep at high attempt: %v", err)
	}
}

// TestBackoffMatchesLegacyForSaneConfigs: the clamp must not change the
// schedule of a policy with an explicit MaxBackoff.
func TestBackoffMatchesLegacyForSaneConfigs(t *testing.T) {
	p := fastRetry // 100µs base, 1ms cap
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond, 800 * time.Microsecond, time.Millisecond, time.Millisecond}
	for i, w := range want {
		if d := p.backoff(i + 1); d != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, d, w)
		}
	}
}

func TestRemoteErrorsAreNotRetried(t *testing.T) {
	dsn, _ := retryTestServer(t)
	reg := obs.NewRegistry()
	SetDSNMetrics(dsn, reg)
	defer SetDSNMetrics(dsn, nil)
	SetDSNRetry(dsn, fastRetry)
	defer SetDSNRetry(dsn, RetryPolicy{})

	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`SELECT * FROM missing`); err == nil {
		t.Fatal("expected remote error")
	}
	if got := reg.Counter("driver_retries_total").Value(); got != 0 {
		t.Fatalf("remote execution error triggered %d retries", got)
	}
}
