package driver

import (
	"context"
	"math/rand"
	"time"
)

// This file is the driver's fault-tolerance layer. The wire client
// classifies every transport failure (wire.OpError.Sent); this layer
// turns that classification into policy: requests that provably never
// reached the server are retried transparently on a fresh connection
// with exponential backoff, while requests that may have executed
// server-side surface as ConnLostError so core's checkpoint recovery
// can decide — the driver must never re-execute a possibly-applied
// statement.

// RetryPolicy bounds the driver's transparent dial/exec retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries for one statement or
	// dial, including the first. Values below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it (plus up to 50% jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is used for wire DSNs without a SetDSNRetry
// override: four tries over roughly a tenth of a second, enough to
// ride out an engine restart without stalling a failed cluster.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 10 * time.Millisecond,
	MaxBackoff:  250 * time.Millisecond,
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoffCeiling caps the doubling when the policy sets no MaxBackoff.
// Without a cap, enough doublings overflow int64 into a negative
// duration, and the jitter draw below panics (rand.Int63n requires a
// positive bound).
const backoffCeiling = time.Minute

// backoff computes the deterministic (pre-jitter) sleep before retry
// number n (1-based): BaseBackoff doubled per retry, clamped to
// MaxBackoff — or to backoffCeiling when the policy leaves MaxBackoff
// unset, so high attempt counts can never overflow the doubling.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = DefaultRetryPolicy.BaseBackoff
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = backoffCeiling
	}
	for i := 1; i < n && d < max; i++ {
		d *= 2
		if d <= 0 || d >= max {
			// d <= 0 is int64 overflow wrapping negative.
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	return d
}

// sleep blocks for the backoff of retry number n (1-based), doubling
// from BaseBackoff and adding up to 50% jitter so a pool of
// reconnecting workers does not stampede the engine in lockstep. The
// wait aborts early — returning errConnClosed or ctx.Err() — when the
// connection closes or the caller's context is done: a cancelled
// statement must not ride out its backoff window before noticing.
func (p RetryPolicy) sleep(ctx context.Context, n int, done <-chan struct{}) error {
	d := p.backoff(n)
	if j := int64(d)/2 + 1; j > 0 {
		d += time.Duration(rand.Int63n(j))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return errConnClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ConnLostError reports a statement whose request reached the engine
// but whose outcome is unknown (the connection died before the
// response). The driver has already re-established the connection for
// whatever the caller does next; re-running the lost statement is the
// caller's call, because it may have been applied. Core's checkpoint
// recovery detects this error through the ConnLost method (duck-typed
// via errors.As, keeping core free of a driver import).
type ConnLostError struct {
	// Err is the underlying transport failure.
	Err error
}

// Error implements error.
func (e *ConnLostError) Error() string {
	return "driver: connection lost with statement outcome unknown: " + e.Err.Error()
}

// Unwrap exposes the transport failure.
func (e *ConnLostError) Unwrap() error { return e.Err }

// ConnLost marks the error for duck-typed detection by higher layers.
func (e *ConnLostError) ConnLost() bool { return true }
