package driver

import (
	"context"
	"math/rand"
	"time"
)

// This file is the driver's fault-tolerance layer. The wire client
// classifies every transport failure (wire.OpError.Sent); this layer
// turns that classification into policy: requests that provably never
// reached the server are retried transparently on a fresh connection
// with exponential backoff, while requests that may have executed
// server-side surface as ConnLostError so core's checkpoint recovery
// can decide — the driver must never re-execute a possibly-applied
// statement.

// RetryPolicy bounds the driver's transparent dial/exec retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries for one statement or
	// dial, including the first. Values below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it (plus up to 50% jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry sleep.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is used for wire DSNs without a SetDSNRetry
// override: four tries over roughly a tenth of a second, enough to
// ride out an engine restart without stalling a failed cluster.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 10 * time.Millisecond,
	MaxBackoff:  250 * time.Millisecond,
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// sleep blocks for the backoff of retry number n (1-based), doubling
// from BaseBackoff and adding up to 50% jitter so a pool of
// reconnecting workers does not stampede the engine in lockstep. The
// wait aborts early — returning errConnClosed or ctx.Err() — when the
// connection closes or the caller's context is done: a cancelled
// statement must not ride out its backoff window before noticing.
func (p RetryPolicy) sleep(ctx context.Context, n int, done <-chan struct{}) error {
	d := p.BaseBackoff
	if d <= 0 {
		d = DefaultRetryPolicy.BaseBackoff
	}
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return errConnClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ConnLostError reports a statement whose request reached the engine
// but whose outcome is unknown (the connection died before the
// response). The driver has already re-established the connection for
// whatever the caller does next; re-running the lost statement is the
// caller's call, because it may have been applied. Core's checkpoint
// recovery detects this error through the ConnLost method (duck-typed
// via errors.As, keeping core free of a driver import).
type ConnLostError struct {
	// Err is the underlying transport failure.
	Err error
}

// Error implements error.
func (e *ConnLostError) Error() string {
	return "driver: connection lost with statement outcome unknown: " + e.Err.Error()
}

// Unwrap exposes the transport failure.
func (e *ConnLostError) Unwrap() error { return e.Err }

// ConnLost marks the error for duck-typed detection by higher layers.
func (e *ConnLostError) ConnLost() bool { return true }
