package driver

import (
	"sync"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/wire"
)

// Config is the complete per-DSN configuration, applied to every
// connection subsequently opened for that DSN. database/sql constructs
// connections from the DSN string alone, so per-DSN state must live in
// a process-wide map; Configure replaces the whole entry atomically —
// unlike the three legacy Set* setters, a reader can never observe a
// half-updated combination.
type Config struct {
	// Metrics receives per-statement counters and latency histograms
	// (driver_statements_total, driver_statement_seconds) plus, for
	// wire DSNs, round-trip and traffic instruments.
	Metrics *obs.Registry
	// Retry bounds transparent dial/exec retries for wire DSNs; the
	// zero value means DefaultRetryPolicy.
	Retry RetryPolicy
	// WireVer caps the negotiated wire protocol version: 0 means the
	// build's wire.WireVersion, negative forces the version-0 JSON
	// protocol.
	WireVer int
	// Tenant identifies connections to the server's admission control;
	// empty means the server's default tenant. A tenant=<id> DSN query
	// parameter fills this when the Config leaves it empty.
	Tenant string
	// Deadline bounds each statement issued without a context deadline
	// (queue wait plus execution, enforced server-side); 0 means none.
	// A deadline=<duration> DSN query parameter fills this when the
	// Config leaves it zero.
	Deadline time.Duration
}

// dsnConfigs is the process-wide DSN → Config map.
var dsnConfigs = struct {
	sync.RWMutex
	m map[string]Config
}{m: make(map[string]Config)}

// Configure sets the complete configuration for dsn in one atomic
// replacement. A zero Config removes the entry.
func Configure(dsn string, cfg Config) {
	dsnConfigs.Lock()
	defer dsnConfigs.Unlock()
	if cfg == (Config{}) {
		delete(dsnConfigs.m, dsn)
		return
	}
	dsnConfigs.m[dsn] = cfg
}

// ConfigFor reads the current configuration for dsn (zero Config if
// none) — read-modify-Configure lets callers adjust one field without
// clobbering the rest.
func ConfigFor(dsn string) Config { return configFor(dsn) }

// configFor reads the configuration for dsn (zero Config if none).
func configFor(dsn string) Config {
	dsnConfigs.RLock()
	defer dsnConfigs.RUnlock()
	return dsnConfigs.m[dsn]
}

// updateConfig applies one field mutation under the write lock — the
// compatibility shim for the legacy piecewise setters.
func updateConfig(dsn string, f func(*Config)) {
	dsnConfigs.Lock()
	defer dsnConfigs.Unlock()
	c := dsnConfigs.m[dsn]
	f(&c)
	if c == (Config{}) {
		delete(dsnConfigs.m, dsn)
		return
	}
	dsnConfigs.m[dsn] = c
}

// SetDSNMetrics attaches a registry to every connection subsequently
// opened for dsn. Pass nil to detach.
//
// Deprecated: use Configure, which replaces the whole per-DSN
// configuration atomically instead of mutating one field at a time.
func SetDSNMetrics(dsn string, r *obs.Registry) {
	updateConfig(dsn, func(c *Config) { c.Metrics = r })
}

// SetDSNRetry overrides the retry policy for connections subsequently
// opened for dsn. A zero policy restores the default.
//
// Deprecated: use Configure.
func SetDSNRetry(dsn string, p RetryPolicy) {
	updateConfig(dsn, func(c *Config) { c.Retry = p })
}

// SetDSNWireVersion caps the protocol version for connections
// subsequently opened for dsn: 0 forces JSON responses (a
// pre-binary-codec client), wire.WireVersion restores the default.
//
// Deprecated: use Configure (note Configure's WireVer uses 0 for the
// default and negative values to force JSON).
func SetDSNWireVersion(dsn string, ver int) {
	if ver < 1 {
		ver = -1 // legacy call convention: 0 forced the JSON protocol
	}
	updateConfig(dsn, func(c *Config) { c.WireVer = ver })
}

// metricsFor, retryFor and wireVerFor read single fields for the
// driver's internals.

func metricsFor(dsn string) *obs.Registry { return configFor(dsn).Metrics }

func retryFor(dsn string) RetryPolicy {
	if p := configFor(dsn).Retry; p != (RetryPolicy{}) {
		return p
	}
	return DefaultRetryPolicy
}

func wireVerFor(dsn string) int {
	switch v := configFor(dsn).WireVer; {
	case v == 0:
		return wire.WireVersion
	case v < 0:
		return 0
	default:
		return v
	}
}
