package driver

import (
	"context"
	"errors"
	"testing"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/wire"
)

func TestConfigureReplacesWholeEntry(t *testing.T) {
	const dsn = "sqlsim://tcp/example:1?cfgtest"
	reg := obs.NewRegistry()
	Configure(dsn, Config{
		Metrics:  reg,
		Retry:    RetryPolicy{MaxAttempts: 2},
		WireVer:  -1,
		Tenant:   "acme",
		Deadline: 250 * time.Millisecond,
	})
	defer Configure(dsn, Config{})
	got := configFor(dsn)
	if got.Metrics != reg || got.Retry.MaxAttempts != 2 || got.Tenant != "acme" || got.Deadline != 250*time.Millisecond {
		t.Fatalf("configFor = %+v", got)
	}
	if wireVerFor(dsn) != 0 {
		t.Fatalf("wireVerFor = %d, want 0 (negative WireVer forces JSON)", wireVerFor(dsn))
	}
	// Replacing drops fields not restated — atomic, not merged.
	Configure(dsn, Config{Tenant: "other"})
	if got := configFor(dsn); got.Metrics != nil || got.Tenant != "other" {
		t.Fatalf("after replace: %+v", got)
	}
	Configure(dsn, Config{})
	if got := configFor(dsn); got != (Config{}) {
		t.Fatalf("zero Config should delete the entry, got %+v", got)
	}
}

// TestDeprecatedSettersComposeOnOneConfig pins the compatibility
// contract: the three legacy setters mutate fields of the same Config
// entry, so mixed old/new callers see one coherent configuration.
func TestDeprecatedSettersComposeOnOneConfig(t *testing.T) {
	const dsn = "sqlsim://tcp/example:1?shimtest"
	reg := obs.NewRegistry()
	SetDSNMetrics(dsn, reg)
	SetDSNRetry(dsn, RetryPolicy{MaxAttempts: 7})
	SetDSNWireVersion(dsn, 0) // legacy convention: 0 forces JSON
	defer Configure(dsn, Config{})
	got := configFor(dsn)
	if got.Metrics != reg || got.Retry.MaxAttempts != 7 {
		t.Fatalf("composed config = %+v", got)
	}
	if wireVerFor(dsn) != 0 {
		t.Fatalf("wireVerFor = %d, want 0 after legacy SetDSNWireVersion(0)", wireVerFor(dsn))
	}
	SetDSNMetrics(dsn, nil)
	if got := configFor(dsn); got.Metrics != nil || got.Retry.MaxAttempts != 7 {
		t.Fatalf("detaching metrics disturbed other fields: %+v", got)
	}
}

func TestDSNParamsParse(t *testing.T) {
	cfg := Config{}
	target, err := applyDSNParams("127.0.0.1:9999?tenant=acme&deadline=300ms", &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if target != "127.0.0.1:9999" || cfg.Tenant != "acme" || cfg.Deadline != 300*time.Millisecond {
		t.Fatalf("target=%q cfg=%+v", target, cfg)
	}
	// Configure-set fields win over DSN parameters.
	cfg = Config{Tenant: "explicit", Deadline: time.Second}
	if _, err := applyDSNParams("h:1?tenant=param&deadline=1ms", &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Tenant != "explicit" || cfg.Deadline != time.Second {
		t.Fatalf("params overrode Configure: %+v", cfg)
	}
	if _, err := applyDSNParams("h:1?bogus=1", &cfg); err == nil {
		t.Fatal("unknown DSN parameter accepted")
	}
	cfg = Config{}
	if _, err := applyDSNParams("h:1?deadline=notaduration", &cfg); err == nil {
		t.Fatal("malformed deadline accepted")
	}
}

func TestTenantDSN(t *testing.T) {
	got := TenantDSN(TCPDSN("127.0.0.1:4000"), "a b", 300*time.Millisecond)
	want := "sqlsim://tcp/127.0.0.1:4000?tenant=a+b&deadline=300ms"
	if got != want {
		t.Fatalf("TenantDSN = %q, want %q", got, want)
	}
	if got := TenantDSN("sqlsim://tcp/h:1?tenant=x", "", time.Second); got != "sqlsim://tcp/h:1?tenant=x&deadline=1s" {
		t.Fatalf("TenantDSN append = %q", got)
	}
}

// TestCtxCancelDuringBackoffReturnsPromptly is the satellite bug fix's
// regression test: a context cancelled mid-backoff must abort the
// hour-scale sleep instead of riding it out.
func TestCtxCancelDuringBackoffReturnsPromptly(t *testing.T) {
	_, addr := retryTestServer(t)
	faults := make([]wire.Fault, 0, 50)
	for op := int64(1); op <= 50; op++ {
		faults = append(faults, wire.Fault{AtOp: op, Kind: wire.FaultDropBeforeSend})
	}
	wire.SetAddrInjector(addr, wire.NewInjector(faults...))
	defer wire.SetAddrInjector(addr, nil)

	e := newWireExec(addr, Config{}, RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Hour, MaxBackoff: time.Hour}, wire.WireVersion)
	defer e.close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.exec(ctx, `SELECT 1`, nil)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // first attempt fails, backoff starts
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("exec after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ctx cancellation did not interrupt the retry backoff")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("exec returned %v after cancel, want a prompt return", d)
	}
}
