// Package driver exposes the embedded engine (in-process or over the
// wire protocol) through database/sql — Go's equivalent of the JDBC
// layer the paper's middleware is built on. SQLoop issues every
// statement through database/sql connections and never touches engine
// internals.
//
// DSN forms:
//
//	sqlsim://inproc/<handle>   — engine previously registered with RegisterEngine
//	sqlsim://tcp/<host:port>   — remote engine served by internal/wire
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strings"
	"sync"
	"time"

	"sqloop/internal/engine"
	"sqloop/internal/obs"
	"sqloop/internal/sqltypes"
	"sqloop/internal/wire"
)

// DriverName is the name registered with database/sql.
const DriverName = "sqlsim"

// engines is the in-process handle registry used by inproc DSNs.
// A mutable global is required here: database/sql resolves drivers by
// string DSN, so there must be a process-wide name → engine mapping.
var engines = struct {
	sync.RWMutex
	m map[string]*engine.Engine
}{m: make(map[string]*engine.Engine)}

// RegisterEngine makes eng reachable at sqlsim://inproc/<handle>.
// Re-registering a handle replaces the previous engine.
func RegisterEngine(handle string, eng *engine.Engine) {
	engines.Lock()
	defer engines.Unlock()
	engines.m[handle] = eng
}

// UnregisterEngine removes a handle.
func UnregisterEngine(handle string) {
	engines.Lock()
	defer engines.Unlock()
	delete(engines.m, handle)
}

// InprocDSN returns the DSN for a registered engine handle.
func InprocDSN(handle string) string { return "sqlsim://inproc/" + handle }

// TCPDSN returns the DSN for a remote engine at addr.
func TCPDSN(addr string) string { return "sqlsim://tcp/" + addr }

// TenantDSN appends tenant (and a per-statement deadline, when
// positive) as DSN query parameters. Two tenants sharing one server
// address need distinct DSN strings so database/sql pools their
// connections separately, which is exactly what query parameters give:
//
//	sqlsim://tcp/127.0.0.1:4000?tenant=acme&deadline=300ms
func TenantDSN(dsn, tenant string, deadline time.Duration) string {
	sep := "?"
	if strings.Contains(dsn, "?") {
		sep = "&"
	}
	out := dsn
	if tenant != "" {
		out += sep + "tenant=" + url.QueryEscape(tenant)
		sep = "&"
	}
	if deadline > 0 {
		out += sep + "deadline=" + url.QueryEscape(deadline.String())
	}
	return out
}

// Driver implements database/sql/driver.Driver.
type Driver struct{}

var (
	_ driver.Driver = Driver{}

	registerOnce sync.Once
)

// init registers the driver with database/sql (the canonical pluggable-
// hook use of init).
func init() {
	registerOnce.Do(func() { sql.Register(DriverName, Driver{}) })
}

// Open creates one connection for the DSN. The DSN may carry
// tenant=<id> and deadline=<duration> query parameters; an explicit
// Configure for the same DSN string takes precedence field by field.
func (Driver) Open(dsn string) (driver.Conn, error) {
	rest, ok := strings.CutPrefix(dsn, "sqlsim://")
	if !ok {
		return nil, fmt.Errorf("driver: DSN %q must start with sqlsim://", dsn)
	}
	kind, target, ok := strings.Cut(rest, "/")
	if !ok {
		return nil, fmt.Errorf("driver: DSN %q missing target", dsn)
	}
	cfg := configFor(dsn)
	target, err := applyDSNParams(target, &cfg)
	if err != nil {
		return nil, fmt.Errorf("driver: DSN %q: %w", dsn, err)
	}
	switch kind {
	case "inproc":
		engines.RLock()
		eng := engines.m[target]
		engines.RUnlock()
		if eng == nil {
			return nil, fmt.Errorf("driver: no engine registered as %q", target)
		}
		return newConn(&inprocExec{sess: eng.NewSession()}, cfg.Metrics), nil
	case "tcp":
		e := newWireExec(target, cfg, retryFor(dsn), wireVerFor(dsn))
		if err := e.dialRetry(context.Background()); err != nil {
			return nil, err
		}
		return newConn(e, cfg.Metrics), nil
	default:
		return nil, fmt.Errorf("driver: unknown DSN scheme %q", kind)
	}
}

// applyDSNParams strips the query part off a DSN target and merges the
// recognized parameters into cfg (Configure-set fields win).
func applyDSNParams(target string, cfg *Config) (string, error) {
	target, query, ok := strings.Cut(target, "?")
	if !ok {
		return target, nil
	}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return "", err
	}
	for key := range vals {
		switch key {
		case "tenant", "deadline":
		default:
			return "", fmt.Errorf("unknown DSN parameter %q", key)
		}
	}
	if cfg.Tenant == "" {
		cfg.Tenant = vals.Get("tenant")
	}
	if cfg.Deadline == 0 {
		if s := vals.Get("deadline"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				return "", fmt.Errorf("deadline parameter: %w", err)
			}
			cfg.Deadline = d
		}
	}
	return target, nil
}

// executor abstracts the two transports. All execution is
// context-first: the wire transport carries the context's deadline to
// the server and aborts retry backoffs on cancellation; the inproc
// transport checks the context at statement boundaries (engine
// statements themselves are not interruptible).
type executor interface {
	exec(ctx context.Context, sql string, args []sqltypes.Value) (*engine.Result, error)
	prepare(sql string) (prepared, error)
	close() error
}

// prepared is one prepared statement on an executor.
type prepared interface {
	exec(ctx context.Context, args []sqltypes.Value) (*engine.Result, error)
	close() error
}

// errConnClosed reports an operation aborted because the connection
// was closed, possibly while a retry backoff was still pending.
var errConnClosed = errors.New("driver: connection closed")

type inprocExec struct{ sess *engine.Session }

func (e *inprocExec) exec(ctx context.Context, sql string, args []sqltypes.Value) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.sess.Exec(sql, args...)
}

func (e *inprocExec) prepare(sql string) (prepared, error) {
	id, err := e.sess.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &inprocPrepared{sess: e.sess, id: id}, nil
}
func (e *inprocExec) close() error { return nil }

// inprocPrepared pins a parsed statement in the engine session.
type inprocPrepared struct {
	sess *engine.Session
	id   int64
}

func (p *inprocPrepared) exec(ctx context.Context, args []sqltypes.Value) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.sess.ExecPrepared(p.id, args)
}
func (p *inprocPrepared) close() error { return p.sess.ClosePrepared(p.id) }

// wireExec is the remote transport with the retry layer on top: dial
// failures and never-sent requests retry with backoff on a fresh
// connection; sent-but-unanswered requests surface as ConnLostError
// (see retry.go). database/sql serves a conn to one goroutine at a
// time, but Close may arrive from another goroutine while a backoff
// sleep is pending, so the client pointer is mutex-guarded and the
// closed channel interrupts any sleeping retry loop.
type wireExec struct {
	mu  sync.Mutex
	cl  *wire.Client
	gen uint64 // dial generation; prepared handles are valid for one gen

	addr     string
	reg      *obs.Registry
	policy   RetryPolicy
	maxVer   int
	tenant   string
	deadline time.Duration

	closeOnce sync.Once
	closed    chan struct{}
}

func newWireExec(addr string, cfg Config, policy RetryPolicy, maxVer int) *wireExec {
	return &wireExec{
		addr:     addr,
		reg:      cfg.Metrics,
		policy:   policy,
		maxVer:   maxVer,
		tenant:   cfg.Tenant,
		deadline: cfg.Deadline,
		closed:   make(chan struct{}),
	}
}

func (e *wireExec) isClosed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

// client returns the live wire client, nil when disconnected.
func (e *wireExec) client() *wire.Client {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cl
}

// generation reports the current dial generation; it changes whenever
// dialRetry establishes a fresh connection, invalidating every
// server-side prepared handle from earlier generations.
func (e *wireExec) generation() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gen
}

// dropClient discards cl if it is still current (a failed request whose
// statement never reached the engine).
func (e *wireExec) dropClient(cl *wire.Client) {
	e.mu.Lock()
	if e.cl == cl {
		e.cl = nil
	}
	e.mu.Unlock()
	_ = cl.Close()
}

// dialRetry (re)connects under the retry policy. ctx aborts a pending
// backoff sleep; it does not bound the dial itself.
func (e *wireExec) dialRetry(ctx context.Context) error {
	e.mu.Lock()
	if e.cl != nil {
		_ = e.cl.Close()
		e.cl = nil
	}
	e.mu.Unlock()
	dialVer := e.maxVer
	if dialVer < 1 {
		dialVer = -1 // wire.DialOpts convention: negative forces JSON
	}
	var lastErr error
	for attempt := 1; attempt <= e.policy.attempts(); attempt++ {
		if attempt > 1 {
			if e.reg != nil {
				e.reg.Counter("driver_retries_total").Inc()
			}
			if err := e.policy.sleep(ctx, attempt-1, e.closed); err != nil {
				return err
			}
		}
		if e.isClosed() {
			return errConnClosed
		}
		cl, err := wire.DialOpts(e.addr, wire.DialOptions{
			MaxVer:   dialVer,
			Tenant:   e.tenant,
			Deadline: e.deadline,
		})
		if err != nil {
			lastErr = err
			continue
		}
		if e.reg != nil {
			cl.SetMetrics(e.reg)
			e.reg.Counter("driver_redials_total").Inc()
		}
		e.mu.Lock()
		if e.isClosed() {
			// Closed while dialing: don't resurrect the connection.
			e.mu.Unlock()
			_ = cl.Close()
			return errConnClosed
		}
		e.cl = cl
		e.gen++
		e.mu.Unlock()
		return nil
	}
	return lastErr
}

func (e *wireExec) exec(ctx context.Context, sql string, args []sqltypes.Value) (*engine.Result, error) {
	return e.withRetry(ctx, func(cl *wire.Client) (*engine.Result, error) {
		return cl.ExecContext(ctx, sql, args...)
	})
}

func (e *wireExec) prepare(sql string) (prepared, error) {
	// Lazy: the PREPARE frame goes out with the first execution, so a
	// handle prepared just before a connection failure costs nothing.
	return &wirePrepared{e: e, sql: sql}, nil
}

// withRetry runs one logical statement through the retry policy:
// dialing if disconnected, classifying transport failures via
// wire.OpError.Sent, and retrying never-sent requests on a fresh
// connection. Sent-but-unanswered requests heal the connection and
// surface as ConnLostError (only a layer with checkpoints may rerun a
// possibly-applied statement). Admission rejections are also retried —
// the server provably never ran the statement — and surface typed
// (*serve.AdmissionError) when the attempts run out, so callers can
// classify them with errors.Is. Backoff sleeps abort on ctx
// cancellation as well as on Close.
func (e *wireExec) withRetry(ctx context.Context, op func(cl *wire.Client) (*engine.Result, error)) (*engine.Result, error) {
	var lastErr error
	for attempt := 1; attempt <= e.policy.attempts(); attempt++ {
		if attempt > 1 {
			if e.reg != nil {
				e.reg.Counter("driver_retries_total").Inc()
			}
			if err := e.policy.sleep(ctx, attempt-1, e.closed); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.isClosed() {
			return nil, errConnClosed
		}
		cl := e.client()
		if cl == nil {
			if err := e.dialRetry(ctx); err != nil {
				lastErr = err
				continue
			}
			cl = e.client()
			if cl == nil {
				return nil, errConnClosed
			}
		}
		res, err := op(cl)
		if err == nil {
			return res, nil
		}
		if isAdmissionRejected(err) {
			// Backpressure, not failure: the connection is healthy and
			// the statement never ran. Back off and resubmit.
			if e.reg != nil {
				e.reg.Counter("driver_admission_rejections_total").Inc()
			}
			lastErr = err
			continue
		}
		var oe *wire.OpError
		if !errors.As(err, &oe) {
			return nil, err // remote execution error, not a transport failure
		}
		if oe.Sent {
			// The statement may have executed server-side. Heal the
			// connection for the caller's next statement, but do not
			// re-execute: only a layer with checkpoints can recover.
			_ = e.dialRetry(ctx)
			return nil, &ConnLostError{Err: err}
		}
		// The request never reached the engine: retrying is safe.
		e.dropClient(cl)
		lastErr = err
	}
	if isAdmissionRejected(lastErr) {
		return nil, lastErr // typed: callers match serve.ErrAdmissionRejected
	}
	return nil, &ConnLostError{Err: lastErr}
}

// isAdmissionRejected duck-types serve.AdmissionError without naming
// the concrete type, mirroring how core detects ConnLostError.
func isAdmissionRejected(err error) bool {
	var ar interface{ AdmissionRejected() bool }
	return errors.As(err, &ar) && ar.AdmissionRejected()
}

func (e *wireExec) close() error {
	e.closeOnce.Do(func() { close(e.closed) })
	e.mu.Lock()
	cl := e.cl
	e.cl = nil
	e.mu.Unlock()
	if cl == nil {
		return nil
	}
	return cl.Close()
}

// wirePrepared is a prepared handle over the wire transport. The
// server-side handle lives in the per-connection session, so it dies
// whenever the connection does; the handle is therefore keyed to the
// wireExec dial generation and re-prepared transparently the first
// time it runs after the retry/recovery path has healed the
// connection.
type wirePrepared struct {
	e      *wireExec
	sql    string
	handle int64
	gen    uint64 // 0 = not yet prepared (dial generations start at 1)
}

func (p *wirePrepared) exec(ctx context.Context, args []sqltypes.Value) (*engine.Result, error) {
	return p.e.withRetry(ctx, func(cl *wire.Client) (*engine.Result, error) {
		if gen := p.e.generation(); p.gen != gen {
			h, err := cl.Prepare(p.sql)
			if err != nil {
				return nil, err
			}
			p.handle, p.gen = h, gen
		}
		return cl.ExecPreparedContext(ctx, p.handle, args...)
	})
}

func (p *wirePrepared) close() error {
	if p.gen == 0 || p.gen != p.e.generation() {
		return nil // never prepared, or the handle died with its connection
	}
	if cl := p.e.client(); cl != nil {
		_ = cl.ClosePrepared(p.handle) // best-effort release
	}
	return nil
}

// conn is one database/sql connection.
type conn struct {
	exec executor
	// per-statement instruments, nil without SetDSNMetrics
	stmtCount   *obs.Counter
	stmtLatency *obs.Histogram
}

func newConn(e executor, reg *obs.Registry) *conn {
	c := &conn{exec: e}
	if reg != nil {
		c.stmtCount = reg.Counter("driver_statements_total")
		c.stmtLatency = reg.Histogram("driver_statement_seconds")
	}
	return c
}

var (
	_ driver.Conn           = (*conn)(nil)
	_ driver.ExecerContext  = (*conn)(nil)
	_ driver.QueryerContext = (*conn)(nil)
)

// Prepare creates a real prepared statement: inproc handles pin the
// parsed statement in the engine session (through the engine's
// statement cache), wire handles prepare server-side on first
// execution and transparently re-prepare after the retry/recovery
// path heals the connection.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	ps, err := c.exec.prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{c: c, query: query, ps: ps}, nil
}

// Close releases the underlying session/connection.
func (c *conn) Close() error { return c.exec.close() }

// Begin starts an explicit transaction.
func (c *conn) Begin() (driver.Tx, error) {
	if _, err := c.exec.exec(context.Background(), "BEGIN", nil); err != nil {
		return nil, err
	}
	return &tx{c: c}, nil
}

// ExecContext implements direct execution without Prepare.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	res, err := c.run(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return execResult{n: res.RowsAffected}, nil
}

// QueryContext implements direct querying without Prepare.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	res, err := c.run(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

func (c *conn) run(ctx context.Context, query string, args []driver.NamedValue) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals := make([]sqltypes.Value, len(args))
	for i, a := range args {
		v, err := sqltypes.FromGo(a.Value)
		if err != nil {
			return nil, fmt.Errorf("driver: arg %d: %w", i+1, err)
		}
		vals[i] = v
	}
	if c.stmtLatency == nil {
		return c.exec.exec(ctx, query, vals)
	}
	start := time.Now()
	res, err := c.exec.exec(ctx, query, vals)
	c.stmtCount.Inc()
	c.stmtLatency.Observe(time.Since(start))
	return res, err
}

type tx struct{ c *conn }

func (t *tx) Commit() error {
	_, err := t.c.exec.exec(context.Background(), "COMMIT", nil)
	return err
}

func (t *tx) Rollback() error {
	_, err := t.c.exec.exec(context.Background(), "ROLLBACK", nil)
	return err
}

type stmt struct {
	c     *conn
	query string
	ps    prepared
}

var (
	_ driver.Stmt             = (*stmt)(nil)
	_ driver.StmtExecContext  = (*stmt)(nil)
	_ driver.StmtQueryContext = (*stmt)(nil)
)

func (s *stmt) Close() error  { return s.ps.close() }
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	res, err := s.run(context.Background(), args)
	if err != nil {
		return nil, err
	}
	return execResult{n: res.RowsAffected}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	res, err := s.run(context.Background(), args)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// ExecContext executes the prepared handle with the caller's context:
// its deadline reaches the server and its cancellation aborts retry
// backoffs, same as the unprepared path.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	res, err := s.run(ctx, namedValues(args))
	if err != nil {
		return nil, err
	}
	return execResult{n: res.RowsAffected}, nil
}

// QueryContext is ExecContext for queries.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	res, err := s.run(ctx, namedValues(args))
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// namedValues flattens ordinal NamedValues to plain values (the driver
// does not support named parameters).
func namedValues(args []driver.NamedValue) []driver.Value {
	out := make([]driver.Value, len(args))
	for i, a := range args {
		out[i] = a.Value
	}
	return out
}

// run executes the prepared handle, converting args and reporting the
// same per-statement instruments as the unprepared path.
func (s *stmt) run(ctx context.Context, args []driver.Value) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals := make([]sqltypes.Value, len(args))
	for i, a := range args {
		v, err := sqltypes.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("driver: arg %d: %w", i+1, err)
		}
		vals[i] = v
	}
	if s.c.stmtLatency == nil {
		return s.ps.exec(ctx, vals)
	}
	start := time.Now()
	res, err := s.ps.exec(ctx, vals)
	s.c.stmtCount.Inc()
	s.c.stmtLatency.Observe(time.Since(start))
	return res, err
}

type execResult struct{ n int64 }

func (r execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("driver: LastInsertId is not supported")
}
func (r execResult) RowsAffected() (int64, error) { return r.n, nil }

// rows adapts an engine result to driver.Rows.
type rows struct {
	res *engine.Result
	i   int
}

var _ driver.Rows = (*rows)(nil)

func (r *rows) Columns() []string {
	if len(r.res.Columns) == 0 && len(r.res.Rows) == 0 {
		return []string{}
	}
	return r.res.Columns
}

func (r *rows) Close() error { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for j := range dest {
		if j < len(row) {
			dest[j] = row[j].GoValue()
		} else {
			dest[j] = nil
		}
	}
	return nil
}
