package driver

import (
	"database/sql"
	"fmt"
	"math"
	"strings"
	"testing"

	"sqloop/internal/engine"
	"sqloop/internal/wire"
)

func openInproc(t *testing.T) *sql.DB {
	t.Helper()
	eng := engine.New(engine.Config{})
	RegisterEngine(t.Name(), eng)
	t.Cleanup(func() { UnregisterEngine(t.Name()) })
	db, err := sql.Open(DriverName, InprocDSN(t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

func TestInprocExecQuery(t *testing.T) {
	db := openInproc(t)
	if _, err := db.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, name TEXT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?), (?, ?, ?)`,
		int64(1), "a", 1.5, int64(2), "b", math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Fatalf("affected = %d", n)
	}
	rows, err := db.Query(`SELECT id, name, v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var (
		ids   []int64
		names []string
		vs    []float64
	)
	for rows.Next() {
		var id int64
		var name string
		var v float64
		if err := rows.Scan(&id, &name, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		names = append(names, name)
		vs = append(vs, v)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || names[0] != "a" || !math.IsInf(vs[1], 1) {
		t.Fatalf("scan = %v %v %v", ids, names, vs)
	}
}

func TestNullScan(t *testing.T) {
	db := openInproc(t)
	if _, err := db.Exec(`CREATE TABLE t (a BIGINT, b DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, NULL)`); err != nil {
		t.Fatal(err)
	}
	var b sql.NullFloat64
	if err := db.QueryRow(`SELECT b FROM t`).Scan(&b); err != nil {
		t.Fatal(err)
	}
	if b.Valid {
		t.Fatalf("b = %+v, want NULL", b)
	}
}

func TestTransactions(t *testing.T) {
	db := openInproc(t)
	if _, err := db.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count after rollback = %d", n)
	}
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count after commit = %d", n)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := openInproc(t)
	if _, err := db.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`INSERT INTO t VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := int64(0); i < 10; i++ {
		if _, err := st.Exec(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	var v int64
	if err := db.QueryRow(`SELECT v FROM t WHERE id = ?`, int64(7)).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != 49 {
		t.Fatalf("v = %d", v)
	}
}

func TestBadDSNs(t *testing.T) {
	for _, dsn := range []string{
		"mysql://whatever",
		"sqlsim://",
		"sqlsim://inproc/unregistered",
		"sqlsim://nope/x",
		"sqlsim://tcp/127.0.0.1:1", // nothing listening
	} {
		db, err := sql.Open(DriverName, dsn)
		if err != nil {
			continue // open may fail eagerly
		}
		if err := db.Ping(); err == nil {
			t.Errorf("Ping(%q) succeeded", dsn)
		}
		_ = db.Close()
	}
}

func TestTCPDSN(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := wire.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	db, err := sql.Open(DriverName, TCPDSN(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (?)`, int64(5)); err != nil {
		t.Fatal(err)
	}
	var id int64
	if err := db.QueryRow(`SELECT id FROM t`).Scan(&id); err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Fatalf("id = %d", id)
	}
	// Remote errors surface as errors without killing the pool.
	if _, err := db.Exec(`SELECT * FROM missing`); err == nil {
		t.Fatal("expected error")
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&id); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionsAreIndependentSessions(t *testing.T) {
	// Two connections must be separate engine sessions: a transaction on
	// one must not leak onto the other. database/sql pools connections,
	// so pin them with Conn.
	db := openInproc(t)
	if _, err := db.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	c1, err := db.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := db.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.ExecContext(ctx, `BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ExecContext(ctx, `INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// c2 inserting its own row is unaffected by c1's open transaction.
	if _, err := c2.ExecContext(ctx, `INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ExecContext(ctx, `ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d, want only c2's row", n)
	}
}

// TestWireVersionBinaryVsJSON runs the same queries through a
// binary-framed connection and a JSON-capped one against a single
// server, checking database/sql sees identical rows — including the
// values JSON encodes specially (infinities, NULL, unicode).
func TestWireVersionBinaryVsJSON(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := wire.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dsn := TCPDSN(addr)
	defer SetDSNWireVersion(dsn, wire.WireVersion)

	setup, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v DOUBLE, s TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		v := any(float64(i) / 4)
		s := any(fmt.Sprintf("héllo-%d", i))
		if i%5 == 0 {
			v = math.Inf(1)
		}
		if i%7 == 0 {
			s = nil
		}
		if _, err := setup.Exec(`INSERT INTO t VALUES (?, ?, ?)`, int64(i), v, s); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	read := func(ver int) string {
		t.Helper()
		SetDSNWireVersion(dsn, ver)
		db, err := sql.Open(DriverName, dsn)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		rows, err := db.Query(`SELECT id, v, s FROM t ORDER BY id`)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out strings.Builder
		for rows.Next() {
			var (
				id int64
				v  float64
				s  sql.NullString
			)
			if err := rows.Scan(&id, &v, &s); err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&out, "%d|%v|%v;", id, v, s)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}

	binary := read(wire.WireVersion)
	jsonOut := read(0)
	if binary != jsonOut {
		t.Fatalf("binary and JSON connections disagree:\n%s\nvs\n%s", binary, jsonOut)
	}
	if binary == "" {
		t.Fatal("no rows read")
	}
	if got := srv.Metrics().Counter("sqloop_wire_rows_encoded").Value(); got == 0 {
		t.Fatal("binary connection never used the binary codec")
	}
	if got := srv.Metrics().Counter("sqloop_wire_bytes_json").Value(); got == 0 {
		t.Fatal("JSON-capped connection never used the JSON codec")
	}
}
