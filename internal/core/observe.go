package core

import (
	"time"

	"sqloop/internal/obs"
)

// roundTrace accumulates one executor run's per-round trace and emits
// the round-level events. All methods run on the coordinator goroutine.
//
// The single-threaded and synchronous executors have real round
// boundaries, so they call begin at the top of each round (emitting
// RoundStart at the true start). The asynchronous executors only
// discover that a round completed when the slowest partition advances;
// they run in lazy mode, where end emits RoundStart immediately before
// RoundEnd. Both shapes guarantee the invariant observers rely on:
// count(RoundStart) == count(RoundEnd) == ExecStats.Iterations.
type roundTrace struct {
	tracer  obs.Tracer
	lazy    bool
	rounds  []RoundStats
	startAt time.Time
	parts   int
	msgs    int
	maxW    time.Duration
	minW    time.Duration
}

func newRoundTrace(tracer obs.Tracer, lazy bool) *roundTrace {
	return &roundTrace{tracer: tracer, lazy: lazy, startAt: time.Now()}
}

// begin opens a round (eager mode only).
func (rt *roundTrace) begin(round int) {
	rt.startAt = time.Now()
	if !rt.lazy {
		rt.tracer.Emit(obs.RoundStart{Round: round})
	}
}

// task records one completed partition task and emits PartitionDone.
func (rt *roundTrace) task(ev obs.PartitionDone) {
	rt.parts++
	if ev.Duration > rt.maxW {
		rt.maxW = ev.Duration
	}
	if rt.minW == 0 || ev.Duration < rt.minW {
		rt.minW = ev.Duration
	}
	rt.tracer.Emit(ev)
}

// msgTables counts message tables created during the current round.
func (rt *roundTrace) msgTables(n int) { rt.msgs += n }

// end closes the round: it emits RoundEnd (preceded by RoundStart in
// lazy mode), appends the RoundStats entry and resets the per-round
// accumulators for the next round.
func (rt *roundTrace) end(round int, changed int64) {
	if rt.lazy {
		rt.tracer.Emit(obs.RoundStart{Round: round})
	}
	st := RoundStats{
		Round:         round,
		Changed:       changed,
		Duration:      time.Since(rt.startAt),
		Partitions:    rt.parts,
		MessageTables: rt.msgs,
		MaxWorker:     rt.maxW,
		MinWorker:     rt.minW,
	}
	rt.tracer.Emit(obs.RoundEnd{
		Round:         st.Round,
		Changed:       st.Changed,
		Duration:      st.Duration,
		Partitions:    st.Partitions,
		MessageTables: st.MessageTables,
		MaxWorker:     st.MaxWorker,
		MinWorker:     st.MinWorker,
	})
	rt.rounds = append(rt.rounds, st)
	rt.startAt = time.Now()
	rt.parts, rt.msgs, rt.maxW, rt.minW = 0, 0, 0, 0
}
