package core

// Seeded property test for sharded execution: deterministic random
// graphs and random query shapes (aggregate, mode, backend, shard
// count, termination) run sharded and single-node, and every case must
// match bit for bit. All randomness flows from the per-case seed — no
// wall clock, no global rand — so any failure is reproduced by its
// printed seed alone.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/obs"
	"sqloop/internal/wire"
)

// shardPropCases is the number of seeds the property test sweeps. Each
// case builds fresh engines, so the sweep stays deliberately modest in
// graph size rather than case count.
const shardPropCases = 60

// propCase is one generated scenario, fully determined by Seed.
type propCase struct {
	Seed     int64
	Profile  string
	Mode     Mode
	Shards   int
	Template string // "sssp", "cc" or "dagrank"
	ExprTerm bool   // dagrank only: aggregate UNTIL instead of 0 UPDATES
	Edges    []shardEdge
	Source   int64 // sssp only

	// Elastic schedule. A case with any of these runs over killable
	// wire endpoints instead of inproc engines.
	Standbys    int
	KillShard   int // -1 when no kill is scheduled
	KillRound   int
	RebalanceTo int // 0 when no rebalance is scheduled
	RebalanceAt int
	Handoff     bool
}

func (c propCase) elastic() bool {
	return c.Standbys > 0 || c.KillShard >= 0 || c.RebalanceTo > 0 || c.Handoff
}

func (c propCase) String() string {
	return fmt.Sprintf("seed=%d profile=%s mode=%s shards=%d template=%s exprTerm=%v edges=%d source=%d standbys=%d kill=%d@%d rebalance=%d@%d handoff=%v",
		c.Seed, c.Profile, c.Mode, c.Shards, c.Template, c.ExprTerm, len(c.Edges), c.Source,
		c.Standbys, c.KillShard, c.KillRound, c.RebalanceTo, c.RebalanceAt, c.Handoff)
}

// genPropCase derives a scenario from a seed. Weights stay exact in
// binary floating point — integers for the MIN fix points, dyadic
// rationals (out-degrees forced to powers of two) for the SUM one — so
// bit identity is a sound oracle for every generated case.
func genPropCase(seed int64) propCase {
	rng := rand.New(rand.NewSource(seed))
	c := propCase{
		Seed:      seed,
		Profile:   []string{"pgsim", "mysim", "mariasim"}[rng.Intn(3)],
		Mode:      []Mode{ModeSync, ModeAsync, ModeAsyncPrio}[rng.Intn(3)],
		Shards:    2 + rng.Intn(3),
		KillShard: -1,
	}
	nodes := 6 + rng.Intn(11)
	switch rng.Intn(3) {
	case 0:
		c.Template = "sssp"
		nEdges := nodes + rng.Intn(2*nodes)
		for i := 0; i < nEdges; i++ {
			src := int64(1 + rng.Intn(nodes))
			dst := int64(1 + rng.Intn(nodes))
			if src == dst {
				continue
			}
			c.Edges = append(c.Edges, shardEdge{src, dst, float64(1 + rng.Intn(8))})
		}
		if len(c.Edges) == 0 {
			c.Edges = append(c.Edges, shardEdge{1, 2, 1})
		}
		c.Source = c.Edges[rng.Intn(len(c.Edges))].src
	case 1:
		c.Template = "cc"
		nEdges := nodes/2 + rng.Intn(nodes)
		for i := 0; i < nEdges; i++ {
			src := int64(1 + rng.Intn(nodes))
			dst := int64(1 + rng.Intn(nodes))
			if src == dst {
				continue
			}
			// Label propagation wants both directions with zero weight.
			c.Edges = append(c.Edges, shardEdge{src, dst, 0}, shardEdge{dst, src, 0})
		}
		if len(c.Edges) == 0 {
			c.Edges = append(c.Edges, shardEdge{1, 2, 0}, shardEdge{2, 1, 0})
		}
		// Self-loops keep min-propagation monotone on bipartite
		// components (see loadShardFixtures); without them synchronous
		// label exchange oscillates and 0 UPDATES never quiesces.
		for n := int64(1); n <= int64(nodes); n++ {
			c.Edges = append(c.Edges, shardEdge{n, n, 0})
		}
	default:
		c.Template = "dagrank"
		c.ExprTerm = rng.Intn(2) == 1
		// A layered DAG: each non-sink node links forward to 1, 2 or 4
		// later nodes, so 1/outdeg is always a dyadic rational.
		for n := 1; n < nodes; n++ {
			remaining := nodes - n
			deg := []int{1, 2, 4}[rng.Intn(3)]
			if deg > remaining {
				deg = remaining
			}
			if deg == 3 {
				deg = 2
			}
			seen := map[int64]bool{}
			for len(seen) < deg {
				seen[int64(n+1+rng.Intn(remaining))] = true
			}
			for dst := range seen {
				c.Edges = append(c.Edges, shardEdge{int64(n), dst, 1.0 / float64(deg)})
			}
		}
	}
	// Elastic schedule: some cases get standby replicas plus a shard
	// kill, a topology change, straggler handoff, or a mix — the fix
	// point must come out bit-identical regardless.
	c.Standbys = rng.Intn(3)
	if c.Standbys > 0 && rng.Intn(3) == 0 {
		c.KillShard = rng.Intn(c.Shards)
		c.KillRound = 1 + rng.Intn(3)
	}
	if rng.Intn(3) == 0 {
		// A kill consumes one standby at failover, so a grow may only
		// reach a size that still leaves a replica for the swap.
		spare := c.Standbys
		if c.KillShard >= 0 {
			spare--
		}
		to := 1 + rng.Intn(c.Shards+spare)
		if to != c.Shards {
			c.RebalanceTo = to
			c.RebalanceAt = 1 + rng.Intn(3)
		}
	}
	c.Handoff = c.Mode == ModeAsyncPrio && rng.Intn(2) == 1
	return c
}

// query renders the scenario's CTE text.
func (c propCase) query() string {
	switch c.Template {
	case "sssp":
		return fmt.Sprintf(`
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = %[1]d THEN 0.0 ELSE Infinity END,
         CASE WHEN src = %[1]d THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT Node, Distance FROM sssp ORDER BY Node`, c.Source)
	case "cc":
		return strings.ReplaceAll(shardCC, "biedges", "edges")
	default:
		q := shardDAGRank
		if c.ExprTerm {
			q = strings.Replace(q, "UNTIL 0 UPDATES",
				"UNTIL (SELECT MAX(dagrank.Delta) FROM dagrank) < 0.0000001", 1)
		}
		// Renames the edge table AND the CTE ("dagrank" -> "edgesrank"),
		// consistently across step, UNTIL and final.
		return strings.ReplaceAll(q, "dag", "edges")
	}
}

// load creates and fills the edges table through exec.
func (c propCase) load(t *testing.T, exec func(string) (*Result, error)) {
	t.Helper()
	if _, err := exec(`CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatalf("%s: create: %v", c, err)
	}
	rows := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		rows[i] = fmt.Sprintf("(%d, %d, %g)", e.src, e.dst, e.w)
	}
	if _, err := exec(`INSERT INTO edges VALUES ` + strings.Join(rows, ", ")); err != nil {
		t.Fatalf("%s: insert: %v", c, err)
	}
}

// wirePropInstance starts one killable wire endpoint of the profile's
// config and opens a SQLoop over TCP with fast reconnect policies.
func wirePropInstance(t *testing.T, cfg engine.Config, opts Options) (*wire.Server, *SQLoop) {
	t.Helper()
	srv := wire.NewServer(engine.New(cfg))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	dsn := driver.TCPDSN(addr)
	driver.Configure(dsn, driver.Config{Retry: driver.RetryPolicy{
		MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
	}})
	t.Cleanup(func() { driver.Configure(dsn, driver.Config{}) })
	s, err := Open(driver.DriverName, dsn, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return srv, s
}

// runPlainPropCase is the original inproc differential: sharded versus
// single-node on embedded engines, no faults.
func runPlainPropCase(t *testing.T, c propCase, query string) {
	ctx := context.Background()
	ref := newTestShardGroup(t, c.Profile, 1, Options{Mode: ModeSingle})
	c.load(t, func(q string) (*Result, error) { return ref.Exec(ctx, q) })
	want, err := ref.Exec(ctx, query)
	if err != nil {
		t.Fatalf("%s: single-node run: %v", c, err)
	}

	g := newTestShardGroup(t, c.Profile, c.Shards, Options{Mode: c.Mode})
	c.load(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
	got, err := g.Exec(ctx, query)
	if err != nil {
		t.Fatalf("%s: sharded run: %v", c, err)
	}
	if got.Stats.ShardCount != c.Shards {
		t.Fatalf("%s: ShardCount = %d, want %d", c, got.Stats.ShardCount, c.Shards)
	}
	if !reflectEqualResults(want, got) {
		t.Fatalf("%s: sharded result diverged from single-node\nwant: %v\ngot:  %v",
			c, want.Rows, got.Rows)
	}
}

// runElasticPropCase executes the scheduled kill/rebalance/handoff
// events over killable wire endpoints. The reference runs single-node
// over the same transport so type identity stays a sound oracle.
func runElasticPropCase(t *testing.T, c propCase, query string) {
	ctx := context.Background()
	cfg, err := engine.Profile(c.Profile)
	if err != nil {
		t.Fatal(err)
	}
	_, ref := wirePropInstance(t, cfg, Options{Mode: ModeSingle, Dialect: cfg.Dialect.String()})
	c.load(t, func(q string) (*Result, error) { return ref.Exec(ctx, q) })
	want, err := ref.Exec(ctx, query)
	if err != nil {
		t.Fatalf("%s: single-node run: %v", c, err)
	}

	opts := Options{Mode: c.Mode, Dialect: cfg.Dialect.String()}
	servers := make([]*wire.Server, c.Shards+c.Standbys)
	instances := make([]*SQLoop, c.Shards+c.Standbys)
	for i := range servers {
		servers[i], instances[i] = wirePropInstance(t, cfg, opts)
	}
	var killed atomic.Bool
	if c.KillShard >= 0 {
		opts.Observer = obs.FuncTracer(func(ev obs.Event) {
			if e, ok := ev.(obs.RoundEnd); ok && e.Round == c.KillRound &&
				killed.CompareAndSwap(false, true) {
				_ = servers[c.KillShard].Close()
			}
		})
	}
	opts.Checkpoint = CheckpointOptions{
		Dir: t.TempDir(), EveryRounds: 1, RetryBackoff: time.Millisecond,
	}
	gopts := ShardGroupOptions{
		Replicas:     instances[c.Shards:],
		Handoff:      c.Handoff,
		ProbeTimeout: time.Second,
	}
	if c.RebalanceTo > 0 {
		gopts.Rebalance = []RebalanceStep{{AfterRound: c.RebalanceAt, Shards: c.RebalanceTo}}
	}
	g, err := NewElasticShardGroup(instances[:c.Shards], gopts, opts, false)
	if err != nil {
		t.Fatalf("%s: group: %v", c, err)
	}
	c.load(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
	got, err := g.Exec(ctx, query)
	if err != nil {
		t.Fatalf("%s: elastic run: %v", c, err)
	}
	if c.KillShard >= 0 && killed.Load() && got.Stats.Failovers < 1 {
		// The kill may land after convergence; only a fired kill that
		// went unnoticed is suspicious when rounds remained.
		t.Logf("%s: kill fired but no failover (converged first)", c)
	}
	// A consumed rebalance step (even one consumed before a failover
	// replay) leaves the group at the target size; an unconsumed one
	// (converged first) leaves it at the original size.
	if n := g.Size(); n != c.Shards && n != c.RebalanceTo {
		t.Fatalf("%s: group size = %d, want %d or %d", c, n, c.Shards, c.RebalanceTo)
	}
	if got.Stats.ShardCount != g.Size() {
		t.Fatalf("%s: ShardCount = %d, group size %d", c, got.Stats.ShardCount, g.Size())
	}
	if !reflectEqualResults(want, got) {
		t.Fatalf("%s: elastic result diverged from single-node\nwant: %v\ngot:  %v",
			c, want.Rows, got.Rows)
	}
}

// TestShardedProperty sweeps the seeded scenarios. A failing case names
// its seed; set SQLOOP_PROP_SEED to that number to re-run exactly that
// case (the env override also bypasses -short).
func TestShardedProperty(t *testing.T) {
	first, last := int64(0), int64(shardPropCases)
	if env := os.Getenv("SQLOOP_PROP_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("SQLOOP_PROP_SEED=%q: %v", env, err)
		}
		first, last = seed, seed+1
	} else if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	for seed := first; seed < last; seed++ {
		c := genPropCase(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			query := c.query()
			if c.elastic() {
				runElasticPropCase(t, c, query)
			} else {
				runPlainPropCase(t, c, query)
			}
		})
	}
}

// reflectEqualResults is requireIdenticalRows as a predicate, so the
// property test can attach the reproducing seed to the failure.
func reflectEqualResults(want, got *Result) bool {
	if len(want.Columns) != len(got.Columns) || len(want.Rows) != len(got.Rows) {
		return false
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			return false
		}
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			return false
		}
		for j := range want.Rows[i] {
			if fmt.Sprintf("%T|%v", want.Rows[i][j], want.Rows[i][j]) !=
				fmt.Sprintf("%T|%v", got.Rows[i][j], got.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}
