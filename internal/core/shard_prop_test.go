package core

// Seeded property test for sharded execution: deterministic random
// graphs and random query shapes (aggregate, mode, backend, shard
// count, termination) run sharded and single-node, and every case must
// match bit for bit. All randomness flows from the per-case seed — no
// wall clock, no global rand — so any failure is reproduced by its
// printed seed alone.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// shardPropCases is the number of seeds the property test sweeps. Each
// case builds fresh engines, so the sweep stays deliberately modest in
// graph size rather than case count.
const shardPropCases = 60

// propCase is one generated scenario, fully determined by Seed.
type propCase struct {
	Seed     int64
	Profile  string
	Mode     Mode
	Shards   int
	Template string // "sssp", "cc" or "dagrank"
	ExprTerm bool   // dagrank only: aggregate UNTIL instead of 0 UPDATES
	Edges    []shardEdge
	Source   int64 // sssp only
}

func (c propCase) String() string {
	return fmt.Sprintf("seed=%d profile=%s mode=%s shards=%d template=%s exprTerm=%v edges=%d source=%d",
		c.Seed, c.Profile, c.Mode, c.Shards, c.Template, c.ExprTerm, len(c.Edges), c.Source)
}

// genPropCase derives a scenario from a seed. Weights stay exact in
// binary floating point — integers for the MIN fix points, dyadic
// rationals (out-degrees forced to powers of two) for the SUM one — so
// bit identity is a sound oracle for every generated case.
func genPropCase(seed int64) propCase {
	rng := rand.New(rand.NewSource(seed))
	c := propCase{
		Seed:    seed,
		Profile: []string{"pgsim", "mysim", "mariasim"}[rng.Intn(3)],
		Mode:    []Mode{ModeSync, ModeAsync, ModeAsyncPrio}[rng.Intn(3)],
		Shards:  2 + rng.Intn(3),
	}
	nodes := 6 + rng.Intn(11)
	switch rng.Intn(3) {
	case 0:
		c.Template = "sssp"
		nEdges := nodes + rng.Intn(2*nodes)
		for i := 0; i < nEdges; i++ {
			src := int64(1 + rng.Intn(nodes))
			dst := int64(1 + rng.Intn(nodes))
			if src == dst {
				continue
			}
			c.Edges = append(c.Edges, shardEdge{src, dst, float64(1 + rng.Intn(8))})
		}
		if len(c.Edges) == 0 {
			c.Edges = append(c.Edges, shardEdge{1, 2, 1})
		}
		c.Source = c.Edges[rng.Intn(len(c.Edges))].src
	case 1:
		c.Template = "cc"
		nEdges := nodes/2 + rng.Intn(nodes)
		for i := 0; i < nEdges; i++ {
			src := int64(1 + rng.Intn(nodes))
			dst := int64(1 + rng.Intn(nodes))
			if src == dst {
				continue
			}
			// Label propagation wants both directions with zero weight.
			c.Edges = append(c.Edges, shardEdge{src, dst, 0}, shardEdge{dst, src, 0})
		}
		if len(c.Edges) == 0 {
			c.Edges = append(c.Edges, shardEdge{1, 2, 0}, shardEdge{2, 1, 0})
		}
		// Self-loops keep min-propagation monotone on bipartite
		// components (see loadShardFixtures); without them synchronous
		// label exchange oscillates and 0 UPDATES never quiesces.
		for n := int64(1); n <= int64(nodes); n++ {
			c.Edges = append(c.Edges, shardEdge{n, n, 0})
		}
	default:
		c.Template = "dagrank"
		c.ExprTerm = rng.Intn(2) == 1
		// A layered DAG: each non-sink node links forward to 1, 2 or 4
		// later nodes, so 1/outdeg is always a dyadic rational.
		for n := 1; n < nodes; n++ {
			remaining := nodes - n
			deg := []int{1, 2, 4}[rng.Intn(3)]
			if deg > remaining {
				deg = remaining
			}
			if deg == 3 {
				deg = 2
			}
			seen := map[int64]bool{}
			for len(seen) < deg {
				seen[int64(n+1+rng.Intn(remaining))] = true
			}
			for dst := range seen {
				c.Edges = append(c.Edges, shardEdge{int64(n), dst, 1.0 / float64(deg)})
			}
		}
	}
	return c
}

// query renders the scenario's CTE text.
func (c propCase) query() string {
	switch c.Template {
	case "sssp":
		return fmt.Sprintf(`
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = %[1]d THEN 0.0 ELSE Infinity END,
         CASE WHEN src = %[1]d THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT Node, Distance FROM sssp ORDER BY Node`, c.Source)
	case "cc":
		return strings.ReplaceAll(shardCC, "biedges", "edges")
	default:
		q := shardDAGRank
		if c.ExprTerm {
			q = strings.Replace(q, "UNTIL 0 UPDATES",
				"UNTIL (SELECT MAX(dagrank.Delta) FROM dagrank) < 0.0000001", 1)
		}
		// Renames the edge table AND the CTE ("dagrank" -> "edgesrank"),
		// consistently across step, UNTIL and final.
		return strings.ReplaceAll(q, "dag", "edges")
	}
}

// load creates and fills the edges table through exec.
func (c propCase) load(t *testing.T, exec func(string) (*Result, error)) {
	t.Helper()
	if _, err := exec(`CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatalf("%s: create: %v", c, err)
	}
	rows := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		rows[i] = fmt.Sprintf("(%d, %d, %g)", e.src, e.dst, e.w)
	}
	if _, err := exec(`INSERT INTO edges VALUES ` + strings.Join(rows, ", ")); err != nil {
		t.Fatalf("%s: insert: %v", c, err)
	}
}

// TestShardedProperty sweeps the seeded scenarios. A failing case names
// its seed, so `genPropCase(seed)` rebuilds it exactly.
func TestShardedProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	for seed := int64(0); seed < shardPropCases; seed++ {
		c := genPropCase(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ctx := context.Background()
			query := c.query()

			ref := newTestShardGroup(t, c.Profile, 1, Options{Mode: ModeSingle})
			c.load(t, func(q string) (*Result, error) { return ref.Exec(ctx, q) })
			want, err := ref.Exec(ctx, query)
			if err != nil {
				t.Fatalf("%s: single-node run: %v", c, err)
			}

			g := newTestShardGroup(t, c.Profile, c.Shards, Options{Mode: c.Mode})
			c.load(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
			got, err := g.Exec(ctx, query)
			if err != nil {
				t.Fatalf("%s: sharded run: %v", c, err)
			}
			if got.Stats.ShardCount != c.Shards {
				t.Fatalf("%s: ShardCount = %d, want %d", c, got.Stats.ShardCount, c.Shards)
			}
			if !reflectEqualResults(want, got) {
				t.Fatalf("%s: sharded result diverged from single-node\nwant: %v\ngot:  %v",
					c, want.Rows, got.Rows)
			}
		})
	}
}

// reflectEqualResults is requireIdenticalRows as a predicate, so the
// property test can attach the reproducing seed to the failure.
func reflectEqualResults(want, got *Result) bool {
	if len(want.Columns) != len(got.Columns) || len(want.Rows) != len(got.Rows) {
		return false
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			return false
		}
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			return false
		}
		for j := range want.Rows[i] {
			if fmt.Sprintf("%T|%v", want.Rows[i][j], want.Rows[i][j]) !=
				fmt.Sprintf("%T|%v", got.Rows[i][j], got.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}
