package core

import (
	"context"
	"fmt"
	"strings"

	"sqloop/internal/obs"
	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// terminator evaluates the UNTIL condition of an iterative CTE after
// each iteration (Table I of the paper). One terminator instance is
// shared by the single-threaded and parallel executors; both report the
// per-iteration update count and the terminator issues whatever extra
// queries the condition needs on the coordinator connection.
type terminator struct {
	cte  *sqlparser.LoopCTEStmt
	term *sqlparser.Termination
	// rTable is what the CTE name resolves to right now (a table in
	// single mode, a view over partitions in parallel mode).
	rTable string
	// token is the execution's working-table namespace token; the
	// Rdelta snapshot lives under it.
	token string
	// deltaReady reports whether the Rdelta snapshot exists yet.
	deltaReady bool
	// tracer receives a TerminationCheck event per evaluation.
	tracer obs.Tracer
}

func newTerminator(cte *sqlparser.LoopCTEStmt, tracer obs.Tracer, token string) *terminator {
	if tracer == nil {
		tracer = obs.NopTracer{}
	}
	return &terminator{cte: cte, term: cte.Until, rTable: cte.Name, token: token, tracer: tracer}
}

// kindString names the condition for events and EXPLAIN output.
func (t *terminator) kindString() string {
	switch t.term.Kind {
	case sqlparser.TermIterations:
		return "iterations"
	case sqlparser.TermUpdates:
		return "updates"
	default:
		return "expr"
	}
}

// needsDeltaSnapshot reports whether the condition references Rdelta.
func (t *terminator) needsDeltaSnapshot() bool {
	return t.term.Kind == sqlparser.TermExpr && t.term.Delta
}

// prepare creates the initial Rdelta snapshot (a copy of R after the
// seed) when the condition needs one.
func (t *terminator) prepare(ctx context.Context, c *dbConn) error {
	if !t.needsDeltaSnapshot() {
		return nil
	}
	return t.refreshDelta(ctx, c)
}

// refreshDelta re-snapshots R into Rdelta ("at the end of each
// iteration, it simply copies the data from R to a new Rdelta table",
// §III-B). The table is created once with R's column layout (ANY-typed,
// so value kinds may drift between rounds) and refilled by TRUNCATE +
// INSERT: the per-round snapshot involves no DDL, so it neither
// invalidates cached statements over Rdelta nor re-pins column types.
func (t *terminator) refreshDelta(ctx context.Context, c *dbConn) error {
	name := deltaTableName(t.token, t.cte.Name)
	if !t.deltaReady {
		cols, err := columnNamesOf(ctx, c, t.rTable)
		if err != nil {
			return err
		}
		if _, err := c.runStmt(ctx, dropTable(name)); err != nil {
			return err
		}
		if _, err := c.runStmt(ctx, createAnyTable(name, cols, false)); err != nil {
			return err
		}
		t.deltaReady = true
	} else if _, err := c.runStmt(ctx, &sqlparser.TruncateStmt{Table: name}); err != nil {
		return err
	}
	if _, err := c.runStmt(ctx, insertBody(name, selectStar(t.rTable))); err != nil {
		return fmt.Errorf("snapshot %s: %w", name, err)
	}
	return nil
}

// satisfied evaluates the condition after iteration `iter` (1-based)
// whose update step changed `updated` rows. It refreshes the Rdelta
// snapshot after checking, per the paper's ordering.
func (t *terminator) satisfied(ctx context.Context, c *dbConn, iter int, updated int64) (bool, error) {
	done, err := t.check(ctx, c, iter, updated)
	if err != nil {
		return false, err
	}
	t.tracer.Emit(obs.TerminationCheck{Round: iter, Kind: t.kindString(), Updated: updated, Satisfied: done})
	if !done && t.needsDeltaSnapshot() {
		if err := t.refreshDelta(ctx, c); err != nil {
			return false, err
		}
	}
	return done, nil
}

func (t *terminator) check(ctx context.Context, c *dbConn, iter int, updated int64) (bool, error) {
	switch t.term.Kind {
	case sqlparser.TermIterations:
		return int64(iter) >= t.term.N, nil
	case sqlparser.TermUpdates:
		// "Terminate if Ri updated less than n rows" — with the
		// convention that UNTIL 0 UPDATES stops on a no-change iteration.
		return updated <= t.term.N, nil
	case sqlparser.TermExpr:
		return t.checkExpr(ctx, c)
	default:
		return false, fmt.Errorf("core: unknown termination kind %d", t.term.Kind)
	}
}

// checkExpr runs the user's expr query, retargeting references to the
// CTE name (and Rdelta) at the current physical tables.
func (t *terminator) checkExpr(ctx context.Context, c *dbConn) (bool, error) {
	body := renameTableRefs(t.term.Expr, t.cte.Name, t.rTable)
	if t.token != "" {
		// References to Rdelta in the user's condition are written
		// against the un-namespaced name; retarget them too.
		body = renameTableRefs(body, strings.ToLower(t.cte.Name)+"delta", deltaTableName(t.token, t.cte.Name))
	}
	stmt := &sqlparser.SelectStmt{Body: body}

	// With a comparison the query must return one value: expr <,=,> e.
	if t.term.CmpOp != 0 {
		got, ok, err := c.scalar(ctx, sqlparser.FormatDialect(stmt, c.dialect))
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil // NULL/no rows: condition not satisfied
		}
		lit, isLit := t.term.CmpTo.(*sqlparser.Literal)
		if !isLit || !lit.Val.IsNumeric() {
			return false, fmt.Errorf("core: UNTIL comparison requires a numeric literal")
		}
		cmp, err := sqltypes.CompareSQL(t.term.CmpOp, sqltypes.NewFloat(got), lit.Val)
		if err != nil {
			return false, err
		}
		return cmp.IsTrue(), nil
	}

	res, err := c.runStmt(ctx, stmt)
	if err != nil {
		return false, err
	}
	if t.term.Any {
		// ANY expr: satisfied when at least one row comes back.
		return len(res.Rows) >= 1, nil
	}
	// expr: satisfied when it returns |R| rows.
	total, _, err := c.scalar(ctx, sqlparser.FormatDialect(countStmt(t.rTable), c.dialect))
	if err != nil {
		return false, err
	}
	return int64(len(res.Rows)) >= int64(total), nil
}

// cleanup drops the Rdelta snapshot.
func (t *terminator) cleanup(ctx context.Context, c *dbConn) error {
	if !t.deltaReady {
		return nil
	}
	_, err := c.runStmt(ctx, dropTable(deltaTableName(t.token, t.cte.Name)))
	return err
}

// countStmt builds SELECT COUNT(*) FROM table.
func countStmt(table string) sqlparser.Statement {
	return &sqlparser.SelectStmt{Body: &sqlparser.Select{
		Items: []sqlparser.SelectItem{{Expr: &sqlparser.FuncCall{Name: "COUNT", Star: true}}},
		From:  []sqlparser.TableExpr{tbl(table)},
	}}
}
