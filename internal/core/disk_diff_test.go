package core

// Differential conformance for the durable pager backend: the same
// schedule-independent fix points of the shard suite (SSSP, connected
// components, dyadic DAG rank) run on the disk backend in every
// execution mode and must reproduce the in-memory heap ModeSingle
// result bit for bit. A tiny buffer pool forces page eviction (and
// with it WAL-commit-before-flush ordering) right through the middle
// of the round loops.

import (
	"context"
	"fmt"
	"testing"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/storage"
)

// newDiffInstance opens a SQLoop over a fresh embedded engine with the
// shard-suite fixture tables loaded, on an arbitrary engine config.
func newDiffInstance(t *testing.T, cfg engine.Config, opts Options) *SQLoop {
	t.Helper()
	eng := engine.New(cfg)
	handle := fmt.Sprintf("%s-diskdiff-%p", t.Name(), &opts)
	driver.RegisterEngine(handle, eng)
	t.Cleanup(func() {
		driver.UnregisterEngine(handle)
		_ = eng.Close()
	})
	s, err := Open(driver.DriverName, driver.InprocDSN(handle), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	loadShardFixtures(t, func(q string) (*Result, error) {
		return s.Exec(context.Background(), q)
	})
	return s
}

func TestDiskDifferential(t *testing.T) {
	queries := map[string]string{
		"sssp":    shardSSSP,
		"cc":      shardCC,
		"dagrank": shardDAGRank,
	}
	modes := []Mode{ModeSingle, ModeSync, ModeAsync, ModeAsyncPrio}
	ctx := context.Background()
	for name, query := range queries {
		t.Run(name, func(t *testing.T) {
			ref := newDiffInstance(t, engine.Config{}, Options{Mode: ModeSingle})
			want, err := ref.Exec(ctx, query)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				t.Run(mode.String(), func(t *testing.T) {
					cfg := engine.Config{
						Backend:         storage.KindDisk,
						DataDir:         t.TempDir(),
						BufferPoolPages: 16,
					}
					s := newDiffInstance(t, cfg, Options{Mode: mode})
					got, err := s.Exec(ctx, query)
					if err != nil {
						t.Fatal(err)
					}
					requireIdenticalRows(t, want, got)
					if mode != ModeSingle && !got.Stats.Parallelized {
						t.Errorf("mode %s did not parallelize on disk: %s", mode, got.Stats.FallbackReason)
					}
				})
			}
		})
	}
}
