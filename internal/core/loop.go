package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/sqlparser"
)

// execRecursive runs WITH RECURSIVE via semi-naive evaluation (§II-A):
// each recursion sees only the rows the previous recursion produced, and
// evaluation stops at the fix point (no new rows).
func (s *SQLoop) execRecursive(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	start := time.Now()
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := s.newConn(conn)
	rt := newRoundTrace(s.tracer, false)

	rName := strings.ToLower(cte.Name)
	workName := "sqloop_" + rName + "_work" // current delta fed to Ri
	nextName := "sqloop_" + rName + "_next" // rows produced by Ri

	cleanup := func() {
		cctx := context.WithoutCancel(ctx)
		_, _ = c.runStmt(cctx, dropTable(workName))
		_, _ = c.runStmt(cctx, dropTable(nextName))
		if !s.opts.KeepTable {
			_, _ = c.runStmt(cctx, dropTable(rName))
		}
	}
	defer cleanup()
	// Stale tables from a crashed run must not break this one.
	for _, n := range []string{rName, workName, nextName} {
		if _, err := c.runStmt(ctx, dropTable(n)); err != nil {
			return nil, err
		}
	}

	ck, err := s.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// A recursive snapshot holds exactly R and the working delta.
	if ck.restoring() && len(ck.resumed.Tables) != 2 {
		ck.resumed = nil
	}

	var cols []string
	iters := 0
	if ck.restoring() {
		// Resume: R and work come back from the snapshot; the iteration
		// counter continues where the checkpoint left it.
		cols = ck.resumed.Columns
		for _, ts := range ck.resumed.Tables {
			if err := ck.restoreTable(ctx, c, ts, false); err != nil {
				return nil, err
			}
		}
		iters = ck.resumed.Round
		ck.markResumed()
	} else {
		// Seed: R and the working delta both start as R0. Column names
		// come from the CTE declaration when present, else from the seed
		// query.
		cols, err = s.seedTable(ctx, c, cte, rName, false)
		if err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, createAnyTable(workName, cols, false)); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, insertBody(workName, selectStar(rName))); err != nil {
			return nil, err
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iters >= s.opts.MaxIterations {
			return nil, fmt.Errorf("core: recursive CTE %s exceeded %d iterations", cte.Name, s.opts.MaxIterations)
		}
		iters++
		rt.begin(iters)

		// next = Ri evaluated against the working delta only. With set
		// semantics (UNION without ALL) the delta is additionally pruned
		// against everything already in R — classic semi-naive
		// deduplication, without which transitive closure over cyclic
		// data never reaches its fix point.
		step := renameTableRefs(cte.Step, cte.Name, workName)
		if !cte.UnionAll {
			step = &sqlparser.SetOp{Kind: sqlparser.SetExcept, Left: step, Right: selectStar(rName)}
		}
		if _, err := c.runStmt(ctx, dropTable(nextName)); err != nil {
			return nil, err
		}
		create := &sqlparser.CreateTableStmt{Name: nextName, AsSelect: step, Unlogged: true}
		if _, err := c.runStmt(ctx, create); err != nil {
			return nil, err
		}
		n, _, err := c.scalar(ctx, sqlparser.FormatDialect(countStmt(nextName), c.dialect))
		if err != nil {
			return nil, err
		}
		rt.end(iters, int64(n))
		if n == 0 {
			break // fix point
		}
		// R ∪= next (UNION ALL / bag semantics); delta = next.
		if _, err := c.runStmt(ctx, insertBody(rName, selectStar(nextName))); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, &sqlparser.TruncateStmt{Table: workName}); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, insertBody(workName, selectStar(nextName))); err != nil {
			return nil, err
		}
		if ck.due(iters) {
			if err := ck.save(ctx, c, iters, 0, nil, cols, []string{rName, workName}); err != nil {
				return nil, err
			}
		}
	}

	res, err := s.runFinal(ctx, c, cte, rName)
	if err != nil {
		return nil, err
	}
	res.Stats = ExecStats{Mode: ModeSingle, Iterations: iters, Elapsed: time.Since(start), Rounds: rt.rounds}
	ck.finish(&res.Stats)
	return res, nil
}

// seedTable creates the CTE table (first column primary key for
// iterative CTEs, §III-A) and fills it from R0, returning the column
// names in use.
func (s *SQLoop) seedTable(ctx context.Context, c *dbConn, cte *sqlparser.LoopCTEStmt, rName string, pk bool) ([]string, error) {
	cols := cte.Columns
	if len(cols) == 0 {
		// Derive names by materializing the seed once into a scratch
		// table and probing its header.
		scratch := "sqloop_" + rName + "_seed"
		if _, err := c.runStmt(ctx, dropTable(scratch)); err != nil {
			return nil, err
		}
		create := &sqlparser.CreateTableStmt{Name: scratch, AsSelect: cte.Seed, Unlogged: true}
		if _, err := c.runStmt(ctx, create); err != nil {
			return nil, fmt.Errorf("seed of %s: %w", cte.Name, err)
		}
		var err error
		cols, err = columnNamesOf(ctx, c, scratch)
		if err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, createAnyTable(rName, cols, pk)); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, insertBody(rName, selectStar(scratch))); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, dropTable(scratch)); err != nil {
			return nil, err
		}
		return cols, nil
	}
	if _, err := c.runStmt(ctx, createAnyTable(rName, cols, pk)); err != nil {
		return nil, err
	}
	if _, err := c.runStmt(ctx, insertBody(rName, cte.Seed)); err != nil {
		return nil, fmt.Errorf("seed of %s: %w", cte.Name, err)
	}
	return cols, nil
}

// runFinal executes Qf with the CTE name resolving to rName.
func (s *SQLoop) runFinal(ctx context.Context, c *dbConn, cte *sqlparser.LoopCTEStmt, rName string) (*Result, error) {
	final := renameTableRefs(cte.Final, cte.Name, rName)
	return c.runStmt(ctx, &sqlparser.SelectStmt{Body: final})
}

// execIterative runs WITH ITERATIVE. It analyzes Ri (§V-A); when the
// query qualifies and a parallel mode is requested (or auto), the
// partitioned executor runs; otherwise the single-threaded algorithm of
// §III/IV executes Ri against the live table and merges Rtmp by primary
// key each iteration.
func (s *SQLoop) execIterative(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	mode := s.opts.Mode
	an := analyzeStep(cte)

	switch mode {
	case ModeAuto:
		if an.Parallelizable {
			mode = ModeAsync
		} else {
			mode = ModeSingle
		}
	case ModeSync, ModeAsync, ModeAsyncPrio:
		if !an.Parallelizable {
			s.tracer.Emit(obs.Fallback{CTE: cte.Name, Reason: an.Reason})
			s.metrics.Counter("sqloop_fallbacks_total").Inc()
			res, err := s.execIterativeSingle(ctx, cte)
			if err != nil {
				return nil, err
			}
			res.Stats.FallbackReason = an.Reason
			return res, nil
		}
	}
	if mode == ModeSingle {
		return s.execIterativeSingle(ctx, cte)
	}
	return s.execIterativeParallel(ctx, cte, an, mode)
}

// execIterativeSingle is the single-threaded iterative algorithm: R is a
// real table; each iteration materializes Ri into Rtmp and updates R by
// matching primary keys (§III-A, §IV-B).
func (s *SQLoop) execIterativeSingle(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	start := time.Now()
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := s.newConn(conn)
	rt := newRoundTrace(s.tracer, false)

	rName := strings.ToLower(cte.Name)
	tmpName := tmpTableName(cte.Name)
	term := newTerminator(cte, s.tracer)
	term.rTable = rName

	cleanup := func() {
		cctx := context.WithoutCancel(ctx)
		_, _ = c.runStmt(cctx, dropTable(tmpName))
		_ = term.cleanup(cctx, c)
		if !s.opts.KeepTable {
			_, _ = c.runStmt(cctx, dropTable(rName))
		}
	}
	defer cleanup()
	for _, n := range []string{rName, tmpName, deltaTableName(cte.Name)} {
		if _, err := c.runStmt(ctx, dropTable(n)); err != nil {
			return nil, err
		}
	}

	ck, err := s.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// An iterative single-mode snapshot holds exactly R.
	if ck.restoring() && (ck.resumed.Partitions != 0 || len(ck.resumed.Tables) != 1) {
		ck.resumed = nil
	}

	var cols []string
	iters := 0
	if ck.restoring() {
		cols = ck.resumed.Columns
		if err := ck.restoreTable(ctx, c, ck.resumed.Tables[0], true); err != nil {
			return nil, err
		}
		iters = ck.resumed.Round
		ck.markResumed()
	} else {
		cols, err = s.seedTable(ctx, c, cte, rName, true)
		if err != nil {
			return nil, err
		}
	}
	// Rdelta == R at every round boundary (the terminator refreshes it
	// after each check), so prepare can rebuild it from R when resuming.
	if err := term.prepare(ctx, c); err != nil {
		return nil, err
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iters >= s.opts.MaxIterations {
			return nil, fmt.Errorf("core: iterative CTE %s exceeded %d iterations", cte.Name, s.opts.MaxIterations)
		}
		iters++
		rt.begin(iters)

		// Rtmp = Ri (R referenced live).
		if _, err := c.runStmt(ctx, dropTable(tmpName)); err != nil {
			return nil, err
		}
		create := &sqlparser.CreateTableStmt{Name: tmpName, AsSelect: cte.Step, Unlogged: true}
		if _, err := c.runStmt(ctx, create); err != nil {
			return nil, fmt.Errorf("iteration %d of %s: %w", iters, cte.Name, err)
		}
		tmpCols, err := columnNamesOf(ctx, c, tmpName)
		if err != nil {
			return nil, err
		}
		if len(tmpCols) != len(cols) {
			return nil, fmt.Errorf("core: Ri of %s returns %d columns, table has %d",
				cte.Name, len(tmpCols), len(cols))
		}

		// UPDATE R by matching Rid with Rtmp's first column: only rows
		// whose keys intersect are touched (§III-A).
		upd := &sqlparser.UpdateStmt{Table: rName, Where: eq(col(rName, cols[0]), col("t", tmpCols[0]))}
		for i := 1; i < len(cols); i++ {
			upd.Sets = append(upd.Sets, sqlparser.Assignment{Column: cols[i], Value: col("t", tmpCols[i])})
		}
		upd.From = []sqlparser.TableExpr{tblAs(tmpName, "t")}
		res, err := c.runStmt(ctx, upd)
		if err != nil {
			return nil, err
		}
		rt.end(iters, res.RowsAffected)

		done, err := term.satisfied(ctx, c, iters, res.RowsAffected)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if ck.due(iters) {
			if err := ck.save(ctx, c, iters, 0, nil, cols, []string{rName}); err != nil {
				return nil, err
			}
		}
	}

	out, err := s.runFinal(ctx, c, cte, rName)
	if err != nil {
		return nil, err
	}
	out.Stats = ExecStats{Mode: ModeSingle, Iterations: iters, Elapsed: time.Since(start), Rounds: rt.rounds}
	ck.finish(&out.Stats)
	return out, nil
}
