package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/sqlparser"
)

// execRecursive runs WITH RECURSIVE via semi-naive evaluation (§II-A):
// each recursion sees only the rows the previous recursion produced, and
// evaluation stops at the fix point (no new rows).
func (s *SQLoop) execRecursive(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	start := time.Now()
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := s.newConn(conn)
	defer c.closeStmts()
	rt := newRoundTrace(s.tracer, false)

	ck, err := s.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// A recursive snapshot holds exactly R and the working delta.
	if ck.restoring() && len(ck.resumed.Tables) != 2 {
		ck.resumed = nil
	}
	// The namespace token must be settled after the snapshot decision:
	// a restored run reuses the snapshot's token (its table names embed
	// it), a fresh run mints its own so concurrent executions of
	// same-named CTEs never share working tables.
	tok := ck.execToken()

	rUser := strings.ToLower(cte.Name)
	rName := rTableName(tok, cte.Name)
	workName := workTableName(tok, cte.Name) // current delta fed to Ri
	nextName := nextTableName(tok, cte.Name) // rows produced by Ri

	cleanup := func() {
		cctx := context.WithoutCancel(ctx)
		_, _ = c.runStmt(cctx, dropTable(workName))
		_, _ = c.runStmt(cctx, dropTable(nextName))
		if s.opts.KeepTable {
			materializeKeepTable(cctx, c, rUser, rName)
		} else {
			// The user name holds at most this execution's advisory
			// view; the working table lives under the tokenized name.
			_, _ = c.runStmt(cctx, dropView(rUser))
			_, _ = c.runStmt(cctx, dropTable(rName))
		}
	}
	defer cleanup()
	// Stale user-visible objects from a crashed legacy run must not
	// break this one (the tokenized names cannot pre-exist).
	if _, err := c.runStmt(ctx, dropView(rUser)); err != nil {
		return nil, err
	}
	if _, err := c.runStmt(ctx, dropTable(rUser)); err != nil {
		return nil, err
	}
	if tok == "" {
		// Restoring a pre-token snapshot: the legacy working names come
		// back into use, so stale copies must go first.
		for _, n := range []string{workName, nextName} {
			if _, err := c.runStmt(ctx, dropTable(n)); err != nil {
				return nil, err
			}
		}
	}

	var cols []string
	iters := 0
	if ck.restoring() {
		// Resume: R and work come back from the snapshot; the iteration
		// counter continues where the checkpoint left it.
		cols = ck.resumed.Columns
		for _, ts := range ck.resumed.Tables {
			if err := ck.restoreTable(ctx, c, ts, false); err != nil {
				return nil, err
			}
		}
		iters = ck.resumed.Round
		ck.markResumed()
	} else {
		// Seed: R and the working delta both start as R0. Column names
		// come from the CTE declaration when present, else from the seed
		// query.
		cols, err = s.seedTable(ctx, c, cte, tok, rName, false)
		if err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, createAnyTable(workName, cols, false)); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, insertBody(workName, selectStar(rName))); err != nil {
			return nil, err
		}
	}
	publishAdvisoryView(ctx, c, rUser, rName)

	// Round statement templates are generated once, outside the loop:
	// every iteration re-executes the same statements, so the engine's
	// statement cache serves them from round two onward. `next` is
	// created here with R's column layout (ANY-typed, like every working
	// table, so value kinds may drift between rounds) and refilled by
	// TRUNCATE + INSERT — steady-state rounds contain no DDL, which is
	// what lets the cached round statements stay valid across rounds.
	//
	// next = Ri evaluated against the working delta only. With set
	// semantics (UNION without ALL) the delta is additionally pruned
	// against everything already in R — classic semi-naive
	// deduplication, without which transitive closure over cyclic
	// data never reaches its fix point.
	step := renameTableRefs(cte.Step, cte.Name, workName)
	if !cte.UnionAll {
		step = &sqlparser.SetOp{Kind: sqlparser.SetExcept, Left: step, Right: selectStar(rName)}
	}
	if _, err := c.runStmt(ctx, dropTable(nextName)); err != nil {
		return nil, err
	}
	if _, err := c.runStmt(ctx, createAnyTable(nextName, cols, false)); err != nil {
		return nil, err
	}
	truncNext := &sqlparser.TruncateStmt{Table: nextName}
	fillNext := insertBody(nextName, step)

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iters >= s.opts.MaxIterations {
			return nil, fmt.Errorf("core: recursive CTE %s exceeded %d iterations", cte.Name, s.opts.MaxIterations)
		}
		iters++
		rt.begin(iters)

		if _, err := c.runStmt(ctx, truncNext); err != nil {
			return nil, err
		}
		res, err := c.runStmt(ctx, fillNext)
		if err != nil {
			return nil, err
		}
		n := res.RowsAffected
		rt.end(iters, n)
		if n == 0 {
			break // fix point
		}
		// R ∪= next (UNION ALL / bag semantics); delta = next.
		if _, err := c.runStmt(ctx, insertBody(rName, selectStar(nextName))); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, &sqlparser.TruncateStmt{Table: workName}); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, insertBody(workName, selectStar(nextName))); err != nil {
			return nil, err
		}
		if ck.due(iters) {
			if err := ck.save(ctx, c, iters, 0, nil, cols, []string{rName, workName}); err != nil {
				return nil, err
			}
		}
		// Round boundary: hand the scheduler slot to any waiting
		// execution before starting the next round.
		if err := yieldRound(ctx); err != nil {
			return nil, err
		}
	}

	res, err := s.runFinal(ctx, c, cte, tok)
	if err != nil {
		return nil, err
	}
	res.Stats = ExecStats{Mode: ModeSingle, Iterations: iters, Elapsed: time.Since(start), Rounds: rt.rounds}
	ck.finish(&res.Stats)
	return res, nil
}

// seedTable creates the CTE table (first column primary key for
// iterative CTEs, §III-A) and fills it from R0, returning the column
// names in use.
func (s *SQLoop) seedTable(ctx context.Context, c *dbConn, cte *sqlparser.LoopCTEStmt, tok, rName string, pk bool) ([]string, error) {
	cols := cte.Columns
	if len(cols) == 0 {
		// Derive names by materializing the seed once into a scratch
		// table and probing its header.
		scratch := seedScratchName(tok, cte.Name)
		if _, err := c.runStmt(ctx, dropTable(scratch)); err != nil {
			return nil, err
		}
		create := &sqlparser.CreateTableStmt{Name: scratch, AsSelect: cte.Seed, Unlogged: true}
		if _, err := c.runStmt(ctx, create); err != nil {
			return nil, fmt.Errorf("seed of %s: %w", cte.Name, err)
		}
		var err error
		cols, err = columnNamesOf(ctx, c, scratch)
		if err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, createAnyTable(rName, cols, pk)); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, insertBody(rName, selectStar(scratch))); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, dropTable(scratch)); err != nil {
			return nil, err
		}
		return cols, nil
	}
	if _, err := c.runStmt(ctx, createAnyTable(rName, cols, pk)); err != nil {
		return nil, err
	}
	if _, err := c.runStmt(ctx, insertBody(rName, cte.Seed)); err != nil {
		return nil, fmt.Errorf("seed of %s: %w", cte.Name, err)
	}
	return cols, nil
}

// runFinal executes Qf with the CTE name (and Rdelta) resolving to this
// execution's tokenized tables.
func (s *SQLoop) runFinal(ctx context.Context, c *dbConn, cte *sqlparser.LoopCTEStmt, tok string) (*Result, error) {
	final := retargetCTE(cte.Final, cte, tok)
	return c.runStmt(ctx, &sqlparser.SelectStmt{Body: final})
}

// publishAdvisoryView exposes the execution's working table under the
// user-visible CTE name as a read-only view, so external observers (the
// bench sampler, concurrent readers) can watch progress. Best effort:
// the name may legitimately be occupied (a user table, another
// execution's view), and execution correctness never depends on it —
// every internal reference is retargeted at the tokenized tables.
func publishAdvisoryView(ctx context.Context, c *dbConn, user, phys string) {
	if user == phys {
		return
	}
	_, _ = c.runStmt(ctx, dropView(user))
	_, _ = c.runStmt(ctx, &sqlparser.CreateViewStmt{Name: user, Body: selectStar(phys)})
}

// materializeKeepTable re-publishes the final R under the user-visible
// CTE name for Options.KeepTable, replacing whatever holds the name.
// No-op when the working table already is the user name (legacy,
// token-less executions).
func materializeKeepTable(ctx context.Context, c *dbConn, user, phys string) {
	if user == phys {
		return
	}
	_, _ = c.runStmt(ctx, dropView(user))
	_, _ = c.runStmt(ctx, dropTable(user))
	_, _ = c.runStmt(ctx, &sqlparser.CreateTableStmt{Name: user, AsSelect: selectStar(phys), Unlogged: true})
	_, _ = c.runStmt(ctx, dropTable(phys))
}

// execIterative runs WITH ITERATIVE. It analyzes Ri (§V-A); when the
// query qualifies and a parallel mode is requested (or auto), the
// partitioned executor runs; otherwise the single-threaded algorithm of
// §III/IV executes Ri against the live table and merges Rtmp by primary
// key each iteration.
func (s *SQLoop) execIterative(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	mode := s.opts.Mode
	an := analyzeStep(cte)

	switch mode {
	case ModeAuto:
		if an.Parallelizable {
			mode = ModeAsync
		} else {
			mode = ModeSingle
		}
	case ModeSync, ModeAsync, ModeAsyncPrio:
		if !an.Parallelizable {
			s.tracer.Emit(obs.Fallback{CTE: cte.Name, Reason: an.Reason})
			s.metrics.Counter("sqloop_fallbacks_total").Inc()
			res, err := s.execIterativeSingle(ctx, cte)
			if err != nil {
				return nil, err
			}
			res.Stats.FallbackReason = an.Reason
			return res, nil
		}
	}
	if mode == ModeSingle {
		return s.execIterativeSingle(ctx, cte)
	}
	return s.execIterativeParallel(ctx, cte, an, mode)
}

// execIterativeSingle is the single-threaded iterative algorithm: R is a
// real table; each iteration materializes Ri into Rtmp and updates R by
// matching primary keys (§III-A, §IV-B).
func (s *SQLoop) execIterativeSingle(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	start := time.Now()
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := s.newConn(conn)
	defer c.closeStmts()
	rt := newRoundTrace(s.tracer, false)

	ck, err := s.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// An iterative single-mode snapshot holds exactly R.
	if ck.restoring() && (ck.resumed.Partitions != 0 || len(ck.resumed.Tables) != 1) {
		ck.resumed = nil
	}
	tok := ck.execToken()

	rUser := strings.ToLower(cte.Name)
	rName := rTableName(tok, cte.Name)
	tmpName := tmpTableName(tok, cte.Name)
	term := newTerminator(cte, s.tracer, tok)
	term.rTable = rName

	cleanup := func() {
		cctx := context.WithoutCancel(ctx)
		_, _ = c.runStmt(cctx, dropTable(tmpName))
		_ = term.cleanup(cctx, c)
		if s.opts.KeepTable {
			materializeKeepTable(cctx, c, rUser, rName)
		} else {
			_, _ = c.runStmt(cctx, dropView(rUser))
			_, _ = c.runStmt(cctx, dropTable(rName))
		}
	}
	defer cleanup()
	// Stale user-visible objects from a crashed legacy run must not
	// break this one (tokenized names cannot pre-exist).
	if _, err := c.runStmt(ctx, dropView(rUser)); err != nil {
		return nil, err
	}
	if _, err := c.runStmt(ctx, dropTable(rUser)); err != nil {
		return nil, err
	}
	if tok == "" {
		for _, n := range []string{tmpName, deltaTableName(tok, cte.Name)} {
			if _, err := c.runStmt(ctx, dropTable(n)); err != nil {
				return nil, err
			}
		}
	}

	var cols []string
	iters := 0
	if ck.restoring() {
		cols = ck.resumed.Columns
		if err := ck.restoreTable(ctx, c, ck.resumed.Tables[0], true); err != nil {
			return nil, err
		}
		iters = ck.resumed.Round
		ck.markResumed()
	} else {
		cols, err = s.seedTable(ctx, c, cte, tok, rName, true)
		if err != nil {
			return nil, err
		}
	}
	publishAdvisoryView(ctx, c, rUser, rName)
	// Rdelta == R at every round boundary (the terminator refreshes it
	// after each check), so prepare can rebuild it from R when resuming.
	if err := term.prepare(ctx, c); err != nil {
		return nil, err
	}

	// The per-round statement templates are built once and contain no
	// DDL: Rtmp is created here with R's column layout (ANY-typed, like
	// every working table) and refilled by TRUNCATE + INSERT each round,
	// so the cached round statements stay valid across rounds instead of
	// being invalidated by working-table churn. Ri references R (and
	// Rdelta) live; its table refs are retargeted at this execution's
	// tokenized tables. An Ri whose column count differs from R's is
	// rejected by the positional INSERT.
	if _, err := c.runStmt(ctx, dropTable(tmpName)); err != nil {
		return nil, err
	}
	if _, err := c.runStmt(ctx, createAnyTable(tmpName, cols, false)); err != nil {
		return nil, err
	}
	truncTmp := &sqlparser.TruncateStmt{Table: tmpName}
	fillTmp := insertBody(tmpName, retargetCTE(cte.Step, cte, tok))
	// UPDATE R by matching Rid with Rtmp's first column: only rows whose
	// keys intersect are touched (§III-A).
	upd := &sqlparser.UpdateStmt{Table: rName, Where: eq(col(rName, cols[0]), col("t", cols[0]))}
	for i := 1; i < len(cols); i++ {
		upd.Sets = append(upd.Sets, sqlparser.Assignment{Column: cols[i], Value: col("t", cols[i])})
	}
	upd.From = []sqlparser.TableExpr{tblAs(tmpName, "t")}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iters >= s.opts.MaxIterations {
			return nil, fmt.Errorf("core: iterative CTE %s exceeded %d iterations", cte.Name, s.opts.MaxIterations)
		}
		iters++
		rt.begin(iters)

		// Rtmp = Ri (R referenced live).
		if _, err := c.runStmt(ctx, truncTmp); err != nil {
			return nil, err
		}
		if _, err := c.runStmt(ctx, fillTmp); err != nil {
			return nil, fmt.Errorf("iteration %d of %s: %w", iters, cte.Name, err)
		}
		res, err := c.runStmt(ctx, upd)
		if err != nil {
			return nil, err
		}
		rt.end(iters, res.RowsAffected)

		done, err := term.satisfied(ctx, c, iters, res.RowsAffected)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if ck.due(iters) {
			if err := ck.save(ctx, c, iters, 0, nil, cols, []string{rName}); err != nil {
				return nil, err
			}
		}
		// Round boundary: hand the scheduler slot to any waiting
		// execution before starting the next round.
		if err := yieldRound(ctx); err != nil {
			return nil, err
		}
	}

	out, err := s.runFinal(ctx, c, cte, tok)
	if err != nil {
		return nil, err
	}
	out.Stats = ExecStats{Mode: ModeSingle, Iterations: iters, Elapsed: time.Since(start), Rounds: rt.rounds}
	ck.finish(&out.Stats)
	return out, nil
}
