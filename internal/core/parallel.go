package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/sqlparser"
)

// msgRegistry tracks message tables (§V-C): which partitions have
// consumed which tables, and when a table may be dropped. It is the
// "global data-structure that is visible across all SQLoop threads" of
// the paper.
type msgRegistry struct {
	mu       sync.Mutex
	seq      int64
	entries  []*msgEntry
	consumed []int64 // per partition: highest seq consumed
	p        int
}

type msgEntry struct {
	seq   int64
	name  string
	refs  int    // in-flight gather tasks reading this table
	dests []bool // which partitions the table holds rows for
}

func newMsgRegistry(p int) *msgRegistry {
	return &msgRegistry{consumed: make([]int64, p), p: p}
}

// add registers a created message table, assigning its sequence number
// under the lock. Sequence numbers must be issued at registration time:
// if they were reserved before the table was built, a gather could
// advance its cursor past a still-unregistered table and lose messages.
// dests lists the partitions the table holds rows for (message tables
// carry Rid, so SQLoop can hash each id to its partition, §V-C); a
// partition with no rows in any unread table has no gather work.
func (r *msgRegistry) add(name string, dests []bool) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.entries = append(r.entries, &msgEntry{seq: r.seq, name: name, dests: dests})
	return r.seq
}

// unreadFor returns the message tables partition x has not consumed yet
// and pins them against garbage collection. through is the highest seq
// in the snapshot (pass to doneReading).
func (r *msgRegistry) unreadFor(x int) (names []string, through int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	through = r.consumed[x]
	for _, e := range r.entries {
		if e.seq > r.consumed[x] {
			// The cursor advances over tables with nothing for x; only
			// tables that target x are actually read.
			if e.seq > through {
				through = e.seq
			}
			if e.dests == nil || (x < len(e.dests) && e.dests[x]) {
				e.refs++
				names = append(names, e.name)
			}
		}
	}
	return names, through
}

// doneReading releases the pin and advances x's consumption cursor.
func (r *msgRegistry) doneReading(x int, names []string, through int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, e := range r.entries {
		if set[e.name] {
			e.refs--
		}
	}
	if through > r.consumed[x] {
		r.consumed[x] = through
	}
}

// hasUnread reports whether partition x has pending messages.
func (r *msgRegistry) hasUnread(x int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.seq > r.consumed[x] && (e.dests == nil || (x < len(e.dests) && e.dests[x])) {
			return true
		}
	}
	return false
}

// anyUnread reports whether any partition still has messages targeted
// at it that it has not consumed.
func (r *msgRegistry) anyUnread() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		for x := 0; x < r.p; x++ {
			if r.consumed[x] < e.seq && (e.dests == nil || e.dests[x]) {
				return true
			}
		}
	}
	return false
}

// garbage removes fully consumed, unpinned tables from the registry and
// returns their names for dropping.
func (r *msgRegistry) garbage() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	min := r.seq
	for _, c := range r.consumed {
		if c < min {
			min = c
		}
	}
	var drop []string
	kept := r.entries[:0]
	for _, e := range r.entries {
		droppable := e.refs == 0
		if droppable && e.seq > min {
			// Tables above the global low-water mark are still droppable
			// once every TARGETED partition has consumed them.
			for x := 0; x < r.p; x++ {
				if (e.dests == nil || e.dests[x]) && r.consumed[x] < e.seq {
					droppable = false
					break
				}
			}
		}
		if droppable {
			drop = append(drop, e.name)
		} else {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	return drop
}

// remaining lists every live message table (for cleanup).
func (r *msgRegistry) remaining() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.entries))
	for i, e := range r.entries {
		names[i] = e.name
	}
	r.entries = nil
	return names
}

// taskResult is what a worker reports after one partition task.
type taskResult struct {
	part    int
	changed int64 // absorb + gather row changes
	msgs    int   // message tables created
	err     error
	// dur is the task's wall time on the worker connection; phase names
	// the task kind ("compute", "gather", "pair") for PartitionDone
	// events and straggler accounting.
	dur   time.Duration
	phase string
	// prio carries the refreshed partition priority (AsyncP runs the
	// priority query on the worker at the end of each task, §V-E).
	prio    float64
	hasPrio bool
	// gatherOnly marks a prioritized-scheduler gather task (it does not
	// complete a round; see driveAsync).
	gatherOnly bool
}

// workerPool runs partition tasks on dedicated connections — SQLoop's
// thread pool where "each thread opens a new connection with the
// underlying database system" (§V-B).
type workerPool struct {
	tasks   chan func(*dbConn) taskResult
	results chan taskResult
	wg      sync.WaitGroup
	conns   []*dbConn
	closers []func() error
}

// newWorkerPool opens n pinned connections and starts the workers.
func newWorkerPool(ctx context.Context, s *SQLoop, n int) (*workerPool, error) {
	p := &workerPool{
		tasks:   make(chan func(*dbConn) taskResult),
		results: make(chan taskResult, n),
	}
	for i := 0; i < n; i++ {
		conn, err := s.db.Conn(ctx)
		if err != nil {
			_ = p.close()
			return nil, fmt.Errorf("core: worker %d connection: %w", i, err)
		}
		c := s.newConn(conn)
		p.conns = append(p.conns, c)
		p.closers = append(p.closers, conn.Close)
	}
	for _, c := range p.conns {
		p.wg.Add(1)
		// Capture the channel: close() nils the struct field, and a
		// not-yet-scheduled worker must still see the real channel.
		go func(c *dbConn, tasks <-chan func(*dbConn) taskResult) {
			defer p.wg.Done()
			for task := range tasks {
				p.results <- task(c)
			}
		}(c, p.tasks)
	}
	return p, nil
}

// close shuts the pool down and releases connections.
func (p *workerPool) close() error {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
	p.wg.Wait()
	for _, c := range p.conns {
		c.closeStmts()
	}
	var err error
	for _, cl := range p.closers {
		if e := cl(); e != nil && err == nil {
			err = e
		}
	}
	p.closers = nil
	return err
}

// debugAsync enables scheduler tracing (tests only).
var debugAsync = os.Getenv("SQLOOP_DEBUG") != ""

// parallelRun executes one iterative CTE with the partitioned
// Compute/Gather model.
type parallelRun struct {
	s       *SQLoop
	nameSeq atomic.Int64
	cte     *sqlparser.LoopCTEStmt
	pl      *plan
	mode    Mode
	coord   *dbConn
	pool    *workerPool
	msgs    *msgRegistry
	term    *terminator

	rt *roundTrace

	rounds []int  // per partition completed G+C rounds
	clean  []bool // async quiescence flags
	// lastGather tracks each partition's most recent gather change
	// count; with it the Compute task can prove it has nothing to emit
	// (see computeTask) and skip the message statements entirely.
	lastGather []int64
	computed   []atomic.Bool // partition has computed at least once
	priority   []float64
	hasPrio    []bool
	prioQuery  string

	// ckpt is this run's checkpoint context (nil when disabled);
	// startRound is the round the run resumes after (0 for fresh starts).
	ckpt       *ckptRun
	startRound int

	stats ExecStats
}

// execIterativeParallel is the entry point from execIterative.
func (s *SQLoop) execIterativeParallel(ctx context.Context, cte *sqlparser.LoopCTEStmt, an Analysis, mode Mode) (*Result, error) {
	start := time.Now()
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	coord := s.newConn(conn)
	defer coord.closeStmts()

	ck, err := s.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// A parallel snapshot holds one table per partition plus each
	// partition's round counter; anything else (the partition count
	// changed, or the snapshot came from a single-mode run) is unusable.
	if ck.restoring() && (ck.resumed.Partitions != s.opts.Partitions ||
		len(ck.resumed.PartRounds) != s.opts.Partitions ||
		len(ck.resumed.Tables) != s.opts.Partitions) {
		ck.resumed = nil
	}
	tok := ck.execToken()

	rUser := strings.ToLower(cte.Name)
	rName := rTableName(tok, cte.Name)

	// Stale user-visible objects from a crashed legacy run must not
	// break this one (tokenized names cannot pre-exist).
	if _, err := coord.runStmt(ctx, dropView(rUser)); err != nil {
		return nil, err
	}
	if _, err := coord.runStmt(ctx, dropTable(rUser)); err != nil {
		return nil, err
	}
	if tok == "" {
		if _, err := coord.runStmt(ctx, dropTable(deltaTableName(tok, cte.Name))); err != nil {
			return nil, err
		}
	}

	var cols []string
	if ck.restoring() {
		cols = ck.resumed.Columns
	} else {
		// Seed R as a real table, then partition it.
		cols, err = s.seedTable(ctx, coord, cte, tok, rName, true)
		if err != nil {
			return nil, err
		}
	}
	if len(cols) <= an.DeltaItem {
		return nil, fmt.Errorf("core: CTE %s declares %d columns but the delta is item %d",
			cte.Name, len(cols), an.DeltaItem+1)
	}

	pl := newPlan(cte, an, cols, s.opts.Partitions, tok, !s.opts.DisableMaterialization)
	run := &parallelRun{
		s: s, cte: cte, pl: pl, mode: mode, coord: coord,
		// Sync has real barriers, so its rounds trace eagerly; the async
		// schedulers discover rounds at completion (lazy).
		rt:         newRoundTrace(s.tracer, mode != ModeSync),
		msgs:       newMsgRegistry(pl.p),
		term:       newTerminator(cte, s.tracer, tok),
		rounds:     make([]int, pl.p),
		clean:      make([]bool, pl.p),
		lastGather: make([]int64, pl.p),
		computed:   make([]atomic.Bool, pl.p),
		priority:   make([]float64, pl.p),
		hasPrio:    make([]bool, pl.p),
	}
	run.term.rTable = pl.rQL
	run.prioQuery = s.opts.PriorityQuery
	if run.prioQuery == "" {
		run.prioQuery = pl.defaultPriorityQuery()
	}

	run.ckpt = ck
	defer run.cleanup(context.WithoutCancel(ctx))

	if ck.restoring() {
		// Resume: the partition tables come back from the snapshot (the
		// save drained every message table first, so the tables are the
		// whole state); R is re-exposed as the view over their union.
		for _, ts := range ck.resumed.Tables {
			if err := ck.restoreTable(ctx, coord, ts, true); err != nil {
				return nil, err
			}
		}
		if _, err := coord.runStmt(ctx, &sqlparser.CreateViewStmt{Name: pl.rQL, Body: pl.unionBody()}); err != nil {
			return nil, fmt.Errorf("restoring view of %s: %w", cte.Name, err)
		}
		copy(run.rounds, ck.resumed.PartRounds)
		run.startRound = ck.resumed.Round
		run.stats.Iterations = ck.resumed.Round
		ck.markResumed()
	} else {
		for _, st := range pl.partitionStmts() {
			if _, err := coord.runStmt(ctx, st); err != nil {
				return nil, fmt.Errorf("partitioning %s: %w", cte.Name, err)
			}
		}
	}
	publishAdvisoryView(ctx, coord, rUser, pl.rQL)
	if pl.materialized {
		for _, st := range pl.mjoinStmts() {
			if _, err := coord.runStmt(ctx, st); err != nil {
				return nil, fmt.Errorf("materializing join for %s: %w", cte.Name, err)
			}
		}
	}
	if err := run.term.prepare(ctx, coord); err != nil {
		return nil, err
	}

	pool, err := newWorkerPool(ctx, s, s.opts.Threads)
	if err != nil {
		return nil, err
	}
	run.pool = pool
	defer pool.close()

	switch mode {
	case ModeSync:
		err = run.driveSync(ctx)
	default:
		err = run.driveAsync(ctx, mode == ModeAsyncPrio)
	}
	if err != nil {
		return nil, err
	}

	out, err := s.runFinal(ctx, coord, cte, tok)
	if err != nil {
		return nil, err
	}
	run.stats.Mode = mode
	run.stats.Parallelized = true
	run.stats.Elapsed = time.Since(start)
	run.stats.Rounds = run.rt.rounds
	ck.finish(&run.stats)
	out.Stats = run.stats
	return out, nil
}

// saveParallelCkpt snapshots every partition table along with the
// per-partition round counters. Callers must guarantee the message
// registry is empty (drained) so the partition tables are the complete
// iterative state.
func (r *parallelRun) saveParallelCkpt(ctx context.Context, round int) error {
	names := make([]string, r.pl.p)
	for x := range names {
		names[x] = r.pl.partName(x)
	}
	return r.ckpt.save(ctx, r.coord, round, r.pl.p, r.rounds, r.pl.cols, names)
}

// cleanup drops every working object.
func (r *parallelRun) cleanup(ctx context.Context) {
	for _, name := range r.msgs.remaining() {
		_, _ = r.coord.runStmt(ctx, dropTable(name))
	}
	for _, st := range r.pl.cleanupStmts(r.s.opts.KeepTable) {
		_, _ = r.coord.runStmt(ctx, st)
	}
	user := strings.ToLower(r.cte.Name)
	if user != r.pl.rQL {
		// Retire the advisory view regardless of KeepTable; keepStmts
		// already re-published the data under the user name.
		_, _ = r.coord.runStmt(ctx, dropView(user))
	}
	if !r.s.opts.KeepTable {
		_, _ = r.coord.runStmt(ctx, dropTable(r.pl.rQL))
	}
	_ = r.term.cleanup(ctx, r.coord)
}

// computeTask runs the three Compute steps for partition x on a worker
// connection: absorb, emit messages, reset (§V-C). gatherChanged is the
// change count of the gather that preceded this compute for x.
func (r *parallelRun) computeTask(ctx context.Context, x int, c *dbConn, gatherChanged int64) (changed int64, msgs int, err error) {
	hasAbsorb := len(r.pl.valueSets) > 0
	if hasAbsorb {
		res, err := c.runStmt(ctx, r.pl.absorbStmt(x))
		if err != nil {
			return 0, 0, fmt.Errorf("compute(absorb) pt%d: %w", x, err)
		}
		changed += res.RowsAffected
	}
	// Quiet-partition fast path: once a partition has computed, its
	// delta is reset to the identity after every compute; if the gather
	// before this compute accepted nothing and the absorb changed
	// nothing, every delta is still at the identity and the activity
	// filter would yield an empty message table — skip the statements.
	if hasAbsorb && r.computed[x].Load() && gatherChanged == 0 && changed == 0 {
		return 0, 0, nil
	}
	r.computed[x].Store(true)
	msgName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
	if _, err := c.runStmt(ctx, r.pl.messageStmt(x, msgName)); err != nil {
		return 0, 0, fmt.Errorf("compute(messages) pt%d: %w", x, err)
	}
	dests, n, err := r.messageDestinations(ctx, c, msgName)
	if err != nil {
		return 0, 0, err
	}
	if n > 0 {
		r.msgs.add(msgName, dests)
		msgs = 1
	} else if _, err := c.runStmt(ctx, dropTable(msgName)); err != nil {
		return 0, 0, err
	}
	if _, err := c.runStmt(ctx, r.pl.resetStmt(x)); err != nil {
		return 0, 0, fmt.Errorf("compute(reset) pt%d: %w", x, err)
	}
	return changed, msgs, nil
}

// messageDestinations reports which partitions a message table holds
// rows for, plus the row count.
func (r *parallelRun) messageDestinations(ctx context.Context, c *dbConn, msgName string) ([]bool, int, error) {
	q := fmt.Sprintf("SELECT DISTINCT PARTHASH(id, %d) FROM %s", r.pl.p, msgName)
	res, err := c.query(ctx, q)
	if err != nil {
		return nil, 0, err
	}
	if len(res.Rows) == 0 {
		return nil, 0, nil
	}
	dests := make([]bool, r.pl.p)
	n := 0
	for _, row := range res.Rows {
		if p, ok := row[0].(int64); ok && p >= 0 && int(p) < r.pl.p {
			dests[p] = true
			n++
		}
	}
	return dests, n, nil
}

// gatherTask accumulates unread messages into partition x's delta.
func (r *parallelRun) gatherTask(ctx context.Context, x int, c *dbConn) (int64, error) {
	names, through := r.msgs.unreadFor(x)
	if len(names) == 0 {
		// Nothing targets x, but the cursor must still advance past the
		// irrelevant tables or they would count as unread forever.
		r.msgs.doneReading(x, nil, through)
		return 0, nil
	}
	defer r.msgs.doneReading(x, names, through)
	res, err := c.runStmt(ctx, r.pl.gatherStmt(x, names))
	if err != nil {
		return 0, fmt.Errorf("gather pt%d: %w", x, err)
	}
	return res.RowsAffected, nil
}

// collectGarbage drops fully consumed message tables.
func (r *parallelRun) collectGarbage(ctx context.Context) error {
	for _, name := range r.msgs.garbage() {
		if _, err := r.coord.runStmt(ctx, dropTable(name)); err != nil {
			return err
		}
	}
	return nil
}

// driveSync is the Synchronous Execution (§V-E): phase one runs every
// Compute task, a barrier, phase two every Gather task, a barrier, then
// the termination check.
func (r *parallelRun) driveSync(ctx context.Context) error {
	iters := r.startRound
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if iters >= r.s.opts.MaxIterations {
			return fmt.Errorf("core: iterative CTE %s exceeded %d iterations", r.cte.Name, r.s.opts.MaxIterations)
		}
		iters++
		r.rt.begin(iters)
		var roundChanged int64

		// Phase 1: Compute on every partition, then the barrier.
		compute := func(x int) func(*dbConn) taskResult {
			return func(c *dbConn) taskResult {
				t0 := time.Now()
				ch, msgs, err := r.computeTask(ctx, x, c, r.lastGather[x])
				return taskResult{part: x, changed: ch, msgs: msgs, err: err,
					dur: time.Since(t0), phase: "compute"}
			}
		}
		if err := r.runPhase(compute, func(res taskResult) {
			roundChanged += res.changed
			r.stats.MessageTables += res.msgs
			r.rt.msgTables(res.msgs)
			r.rt.task(obs.PartitionDone{Round: iters, Part: res.part,
				Phase: res.phase, Changed: res.changed, Duration: res.dur})
		}); err != nil {
			return err
		}

		// Phase 2: Gather on every partition, then the barrier.
		gather := func(x int) func(*dbConn) taskResult {
			return func(c *dbConn) taskResult {
				t0 := time.Now()
				ch, err := r.gatherTask(ctx, x, c)
				return taskResult{part: x, changed: ch, err: err,
					dur: time.Since(t0), phase: "gather"}
			}
		}
		if err := r.runPhase(gather, func(res taskResult) {
			roundChanged += res.changed
			r.lastGather[res.part] = res.changed
			r.rt.task(obs.PartitionDone{Round: iters, Part: res.part,
				Phase: res.phase, Changed: res.changed, Duration: res.dur})
		}); err != nil {
			return err
		}

		if err := r.collectGarbage(ctx); err != nil {
			return err
		}
		r.rt.end(iters, roundChanged)
		done, err := r.term.satisfied(ctx, r.coord, iters, roundChanged)
		if err != nil {
			return err
		}
		r.stats.Iterations = iters
		if done {
			return nil
		}
		// Post-gather barrier: every message table has been consumed and
		// collected, so the partition tables are the full state.
		if r.ckpt.due(iters) {
			for x := range r.rounds {
				r.rounds[x] = iters
			}
			if err := r.saveParallelCkpt(ctx, iters); err != nil {
				return err
			}
		}
		// Round boundary (post-gather barrier): hand the scheduler slot
		// to any waiting execution before the next round.
		if err := yieldRound(ctx); err != nil {
			return err
		}
	}
}

// runPhase dispatches one task per partition and waits for all of them
// (the explicit barrier of the Sync method). Tasks are fed from a helper
// goroutine so the coordinator can drain results while feeding — with
// more partitions than workers the two would otherwise deadlock.
func (r *parallelRun) runPhase(mk func(int) func(*dbConn) taskResult, onDone func(taskResult)) error {
	go func() {
		for x := 0; x < r.pl.p; x++ {
			r.pool.tasks <- mk(x)
		}
	}()
	var firstErr error
	for i := 0; i < r.pl.p; i++ {
		res := <-r.pool.results
		if res.err != nil && firstErr == nil {
			firstErr = res.err
			continue
		}
		onDone(res)
	}
	return firstErr
}

// driveAsync is the Asynchronous Execution (§V-E): each partition task
// is Gather-then-Compute, so freshly produced intermediate results are
// consumed immediately; no barrier separates iterations. With prio set
// it becomes the Prioritized Asynchronous Execution: the next partition
// is the one whose pending change matters most, recomputed after every
// task (§V-E).
func (r *parallelRun) driveAsync(ctx context.Context, prio bool) error {
	if prio {
		for x := 0; x < r.pl.p; x++ {
			if err := r.refreshPriority(ctx, x); err != nil {
				return err
			}
		}
	}

	inflight := make([]bool, r.pl.p)
	inflightCount := 0
	next := 0 // round-robin cursor
	var roundChanged int64
	lastRound := r.startRound
	taskErr := error(nil)
	done := false
	// Expression- and count-based conditions need a stable view of R:
	// when a round completes, dispatch pauses (a soft barrier), in-flight
	// tasks drain, the condition is evaluated, then dispatch resumes.
	needsBarrier := r.term.term.Kind == sqlparser.TermExpr ||
		(r.term.term.Kind == sqlparser.TermUpdates && r.term.term.N > 0)
	checkPending := false
	// Checkpoints reuse the same soft-barrier machinery: when a round
	// crosses a checkpoint boundary, dispatch pauses, in-flight tasks
	// drain, pending messages are delivered into the deltas, and the
	// partition tables are snapshotted as the complete state.
	ckptPending := false

	// Every partition runs at least one round even for UNTIL 0
	// ITERATIONS, matching the single-threaded executor.
	iterTarget := r.term.term.N
	if iterTarget < 1 {
		iterTarget = 1
	}

	// eligible reports whether partition x may be scheduled now.
	eligible := func(x int) bool {
		if inflight[x] {
			return false
		}
		if r.term.term.Kind == sqlparser.TermIterations &&
			int64(r.rounds[x]) >= iterTarget {
			return false
		}
		return true
	}

	// pick selects the next partition: highest priority first for
	// AsyncP, round-robin otherwise.
	// pick selects the next partition and, for the prioritized
	// scheduler, the task kind: gathers for partitions with pending
	// messages come first (they are cheap and reveal true priorities),
	// then the highest-priority Compute.
	const (
		taskPair = iota
		taskGather
		taskCompute
	)
	pick := func() (int, int, bool) {
		if prio {
			for x := 0; x < r.pl.p; x++ {
				if !inflight[x] && r.msgs.hasUnread(x) {
					return x, taskGather, true
				}
			}
			best, found := -1, false
			bestPrio := 0.0
			for x := 0; x < r.pl.p; x++ {
				if !eligible(x) {
					continue
				}
				if !r.hasPrio[x] {
					continue
				}
				if p := r.priority[x]; !found || p > bestPrio {
					best, bestPrio, found = x, p, true
				}
			}
			if found {
				return best, taskCompute, true
			}
			// Iteration-bounded runs must still complete every
			// partition's rounds even when priorities signal no work.
			if r.term.term.Kind == sqlparser.TermIterations {
				for x := 0; x < r.pl.p; x++ {
					if eligible(x) {
						return x, taskCompute, true
					}
				}
			}
			return -1, 0, false
		}
		iterBounded := r.term.term.Kind == sqlparser.TermIterations
		for i := 0; i < r.pl.p; i++ {
			x := (next + i) % r.pl.p
			if !eligible(x) {
				continue
			}
			// A clean partition with no pending messages is a proven
			// no-op; skipping it lets the pool drain so quiescence can
			// be judged. Iteration-bounded runs still count every round.
			if !iterBounded && r.clean[x] && !r.msgs.hasUnread(x) {
				continue
			}
			next = (x + 1) % r.pl.p
			return x, taskPair, true
		}
		return -1, 0, false
	}

	dispatch := func(x int) {
		inflight[x] = true
		inflightCount++
		r.pool.tasks <- func(c *dbConn) taskResult {
			t0 := time.Now()
			gch, err := r.gatherTask(ctx, x, c)
			if err != nil {
				return taskResult{part: x, err: err}
			}
			cch, msgs, err := r.computeTask(ctx, x, c, gch)
			res := taskResult{part: x, changed: gch + cch, msgs: msgs, err: err, phase: "pair"}
			if prio && err == nil {
				res.prio, res.hasPrio, res.err = r.partitionPriority(ctx, x, c)
			}
			res.dur = time.Since(t0)
			return res
		}
	}

	// The prioritized scheduler runs Gather and Compute as separate
	// tasks (§V-E, Fig. 3): delivering pending messages first and
	// re-evaluating the priority in between keeps the priority queue
	// honest — a fused task would absorb and reset freshly delivered
	// candidates before the scheduler ever saw their priority.
	dispatchGather := func(x int) {
		inflight[x] = true
		inflightCount++
		// Reading the cached priority in the worker is safe: partition
		// tasks serialize, and the coordinator only writes the cache
		// while no task for x is in flight.
		r.pool.tasks <- func(c *dbConn) taskResult {
			t0 := time.Now()
			gch, err := r.gatherTask(ctx, x, c)
			res := taskResult{part: x, changed: gch, err: err, gatherOnly: true, phase: "gather"}
			if err != nil {
				res.dur = time.Since(t0)
				return res
			}
			if gch == 0 {
				// Nothing accepted: the deltas, hence the priority, are
				// unchanged.
				res.prio, res.hasPrio = r.priority[x], r.hasPrio[x]
				res.dur = time.Since(t0)
				return res
			}
			res.prio, res.hasPrio, res.err = r.partitionPriority(ctx, x, c)
			res.dur = time.Since(t0)
			return res
		}
	}
	dispatchCompute := func(x int) {
		inflight[x] = true
		inflightCount++
		r.pool.tasks <- func(c *dbConn) taskResult {
			t0 := time.Now()
			gch := r.lastGather[x]
			r.lastGather[x] = 0
			cch, msgs, err := r.computeTask(ctx, x, c, gch)
			res := taskResult{part: x, changed: cch, msgs: msgs, err: err, phase: "compute"}
			if err != nil {
				res.dur = time.Since(t0)
				return res
			}
			if gch == 0 && cch == 0 && msgs == 0 {
				// Quiet fast path ran: deltas are untouched.
				res.prio, res.hasPrio = r.priority[x], r.hasPrio[x]
				res.dur = time.Since(t0)
				return res
			}
			res.prio, res.hasPrio, res.err = r.partitionPriority(ctx, x, c)
			res.dur = time.Since(t0)
			return res
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Fill free workers (unless a termination check or checkpoint is
		// pending).
		for inflightCount < len(r.pool.conns) && taskErr == nil && !done && !checkPending && !ckptPending {
			x, kind, ok := pick()
			if debugAsync {
				fmt.Printf("DBG pick x=%d kind=%d ok=%v inflight=%d done=%v hasPrio=%v\n",
					x, kind, ok, inflightCount, done, r.hasPrio)
			}
			if !ok {
				break
			}
			switch kind {
			case taskGather:
				dispatchGather(x)
			case taskCompute:
				dispatchCompute(x)
			default:
				dispatch(x)
			}
		}
		if checkPending && inflightCount == 0 {
			// Soft barrier reached: deltas are stable, messages all
			// delivered below before the condition runs.
			for x := 0; x < r.pl.p; x++ {
				if r.msgs.hasUnread(x) {
					ch, err := r.gatherTask(ctx, x, r.coord)
					if err != nil {
						return err
					}
					roundChanged += ch
					if ch > 0 {
						r.lastGather[x] += ch
					}
				}
			}
			d, err := r.term.satisfied(ctx, r.coord, lastRound, roundChanged)
			if err != nil {
				return err
			}
			roundChanged = 0
			checkPending = false
			if d {
				done = true
				break
			}
			if prio {
				// The drain moved mass into deltas behind the cached
				// priorities' backs; recompute them or the scheduler
				// would wrongly conclude there is no work left.
				for x := 0; x < r.pl.p; x++ {
					if err := r.refreshPriority(ctx, x); err != nil {
						return err
					}
				}
			}
			continue
		}
		if ckptPending && !checkPending && !done && inflightCount == 0 && taskErr == nil {
			// Checkpoint soft barrier reached: deliver every pending
			// message so the partition tables alone carry the state, then
			// snapshot them.
			for x := 0; x < r.pl.p; x++ {
				if r.msgs.hasUnread(x) {
					ch, err := r.gatherTask(ctx, x, r.coord)
					if err != nil {
						return err
					}
					roundChanged += ch
					if ch > 0 {
						r.lastGather[x] += ch
						r.clean[x] = false
					}
				}
			}
			if err := r.collectGarbage(ctx); err != nil {
				return err
			}
			if err := r.saveParallelCkpt(ctx, lastRound); err != nil {
				return err
			}
			ckptPending = false
			if prio {
				// Same cache-staleness hazard as the termination drain.
				for x := 0; x < r.pl.p; x++ {
					if err := r.refreshPriority(ctx, x); err != nil {
						return err
					}
				}
			}
			continue
		}
		if inflightCount == 0 {
			break // nothing running and nothing schedulable
		}

		res := <-r.pool.results
		if debugAsync {
			fmt.Printf("DBG task part=%d gatherOnly=%v changed=%d msgs=%d prio=%v/%v err=%v\n",
				res.part, res.gatherOnly, res.changed, res.msgs, res.prio, res.hasPrio, res.err)
		}
		inflight[res.part] = false
		inflightCount--
		if res.err != nil {
			if taskErr == nil {
				taskErr = res.err
			}
			continue
		}
		if res.gatherOnly {
			// Remember the gather outcome for the partition's next
			// Compute (its quiet-partition fast path keys off it).
			r.lastGather[res.part] += res.changed
		} else {
			r.rounds[res.part]++
		}
		// The partition's round in progress: gather-only tasks run ahead
		// of the round they feed.
		evRound := r.rounds[res.part]
		if res.gatherOnly {
			evRound++
		}
		r.rt.task(obs.PartitionDone{Round: evRound, Part: res.part,
			Phase: res.phase, Changed: res.changed, Duration: res.dur})
		r.rt.msgTables(res.msgs)
		roundChanged += res.changed
		r.stats.MessageTables += res.msgs

		// Quiescence bookkeeping: a task that changed nothing and
		// emitted nothing leaves its partition clean; any new messages
		// dirty everyone (they may land anywhere).
		if res.changed == 0 && res.msgs == 0 {
			r.clean[res.part] = true
		} else {
			for i := range r.clean {
				r.clean[i] = false
			}
		}

		if prio {
			r.priority[res.part] = res.prio
			r.hasPrio[res.part] = res.hasPrio
		}
		if err := r.collectGarbage(ctx); err != nil {
			return err
		}

		// A "round" completes when the slowest partition advances.
		minRounds := r.rounds[0]
		for _, n := range r.rounds {
			if n < minRounds {
				minRounds = n
			}
		}
		if minRounds > lastRound {
			lastRound = minRounds
			r.stats.Iterations = minRounds
			r.rt.end(minRounds, roundChanged)
			if needsBarrier {
				checkPending = true
			} else {
				d, err := r.checkAsyncTermination(ctx, minRounds, roundChanged)
				if err != nil {
					return err
				}
				roundChanged = 0
				if d {
					done = true
				}
			}
			if !done && r.ckpt.due(minRounds) {
				ckptPending = true
			}
			// Lazy round boundary: the slowest partition just advanced,
			// which is the async mode's closest analogue of a barrier.
			// Workers keep draining their in-flight tasks while the
			// coordinator waits for its slot back.
			if !done {
				if err := yieldRound(ctx); err != nil {
					return err
				}
			}
		}
		// Quiescence may only be judged with no tasks in flight: an
		// unprocessed result still carries priority/cleanliness updates.
		if !done && inflightCount == 0 && r.quiescent(prio) {
			done = true
		}
		if done && inflightCount == 0 {
			break
		}
		if lastRound >= r.s.opts.MaxIterations {
			return fmt.Errorf("core: iterative CTE %s exceeded %d iterations", r.cte.Name, r.s.opts.MaxIterations)
		}
	}
	if taskErr != nil {
		return taskErr
	}
	// Iteration-capped runs stop computing with messages still in
	// flight; deliver them so no accumulated change is silently lost
	// (the Sync method's final gather phase has the same effect).
	if done && r.term.term.Kind == sqlparser.TermIterations {
		for x := 0; x < r.pl.p; x++ {
			if r.msgs.hasUnread(x) {
				if _, err := r.gatherTask(ctx, x, r.coord); err != nil {
					return err
				}
			}
		}
		if err := r.collectGarbage(ctx); err != nil {
			return err
		}
	}
	if !done && !r.quiescent(prio) {
		return fmt.Errorf("core: async execution of %s stalled before its termination condition", r.cte.Name)
	}
	// Quiescent but the declared condition never fired: only an error
	// for conditions more rounds could still satisfy.
	if !done {
		if r.term.term.Kind == sqlparser.TermExpr {
			d, err := r.term.check(ctx, r.coord, lastRound, 0)
			if err != nil {
				return err
			}
			if !d {
				return fmt.Errorf("core: %s converged without satisfying its UNTIL condition", r.cte.Name)
			}
		}
		r.stats.Iterations = lastRound
	}
	return nil
}

// quiescent reports global convergence. Round-robin scheduling runs
// every partition, so the per-task clean flags suffice; the prioritized
// scheduler deliberately skips workless partitions, so quiescence there
// means no pending messages and no partition signalling work.
func (r *parallelRun) quiescent(prio bool) bool {
	if prio {
		for x := range r.hasPrio {
			if r.hasPrio[x] {
				return false
			}
		}
		return !r.msgs.anyUnread()
	}
	for _, c := range r.clean {
		if !c {
			return false
		}
	}
	return !r.msgs.anyUnread()
}

// checkAsyncTermination evaluates the UNTIL condition at round
// granularity.
func (r *parallelRun) checkAsyncTermination(ctx context.Context, round int, roundChanged int64) (bool, error) {
	switch r.term.term.Kind {
	case sqlparser.TermIterations:
		n := r.term.term.N
		if n < 1 {
			n = 1
		}
		return int64(round) >= n, nil
	case sqlparser.TermUpdates:
		// N == 0 is handled by quiescence detection; N > 0 by the soft
		// barrier. Rounds alone cannot prove either: in-flight messages
		// may still cause updates.
		return false, nil
	default:
		// TermExpr goes through the soft barrier.
		return false, nil
	}
}

// partitionPriority evaluates the priority query for partition x on the
// given connection ("SQLoop updates the priority at the end of each
// task by scanning the correlated partition", §V-E).
func (r *parallelRun) partitionPriority(ctx context.Context, x int, c *dbConn) (float64, bool, error) {
	q := strings.ReplaceAll(r.prioQuery, "$PART", r.pl.partName(x))
	v, ok, err := c.scalar(ctx, q)
	if err != nil {
		return 0, false, fmt.Errorf("priority query for pt%d: %w", x, err)
	}
	return v, ok, nil
}

// refreshPriority updates the cached priority of x from the coordinator
// connection (used at startup and after coordinator-side drains).
func (r *parallelRun) refreshPriority(ctx context.Context, x int) error {
	v, ok, err := r.partitionPriority(ctx, x, r.coord)
	if err != nil {
		return err
	}
	r.priority[x] = v
	r.hasPrio[x] = ok
	return nil
}

// effectivePriority combines the priority signal with pending messages:
// partitions with unread messages always have work; otherwise the query
// must have produced a value.
func (r *parallelRun) effectivePriority(x int) (float64, bool) {
	if r.hasPrio[x] {
		return r.priority[x], true
	}
	if r.msgs.hasUnread(x) {
		return 0, true
	}
	return 0, false
}
