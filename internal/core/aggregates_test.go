package core

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// The COUNT workload: after one iteration each node's delta is its
// active in-degree. COUNT partials must be re-accumulated with SUM on
// the gather side (§V-D) — applying COUNT again would count message
// tables instead.
const countCTE = `
WITH ITERATIVE indeg(Node, Total, Delta) AS (
  SELECT src, 0.0, 1.0
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT indeg.Node,
         indeg.Total + indeg.Delta,
         COALESCE(COUNT(N.Delta), 0.0)
  FROM indeg
  LEFT JOIN edges AS E ON indeg.Node = E.dst
  LEFT JOIN indeg AS N ON N.Node = E.src
  GROUP BY indeg.Node
  UNTIL 1 ITERATIONS
)
SELECT Node, Total + Delta - 1.0 AS Received FROM indeg`

// The AVG workload: after one iteration each node's delta is the average
// weight of its in-edges. AVG ships (sum, count) pairs per §V-D.
const avgCTE = `
WITH ITERATIVE aw(Node, Total, Delta) AS (
  SELECT src, 0.0, 1.0
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT aw.Node,
         aw.Total + aw.Delta,
         COALESCE(AVG(N.Delta * E.weight), 0.0)
  FROM aw
  LEFT JOIN edges AS E ON aw.Node = E.dst
  LEFT JOIN aw AS N ON N.Node = E.src
  GROUP BY aw.Node
  UNTIL 1 ITERATIONS
)
SELECT Node, Delta FROM aw`

func TestCountAggregateAllModes(t *testing.T) {
	// Schedulers may legally deliver counts either into Delta (pending)
	// or already absorbed into Total, so the test reads the
	// schedule-invariant Total + Delta - seed.
	indeg := map[int64]float64{}
	nodes := map[int64]bool{}
	for _, e := range testGraph {
		indeg[e.dst]++
		nodes[e.src] = true
		nodes[e.dst] = true
	}
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 3, Partitions: 4}, false)
			res, err := s.Exec(context.Background(), countCTE)
			if err != nil {
				t.Fatal(err)
			}
			if mode != ModeSingle && !res.Stats.Parallelized {
				t.Fatalf("did not parallelize: %s", res.Stats.FallbackReason)
			}
			got := rowsToMap(t, res)
			for n := range nodes {
				if got[n] != indeg[n] {
					t.Errorf("node %d count = %v, want %v", n, got[n], indeg[n])
				}
			}
		})
	}
}

func TestAvgAggregateAllModes(t *testing.T) {
	sum := map[int64]float64{}
	cnt := map[int64]float64{}
	nodes := map[int64]bool{}
	for _, e := range testGraph {
		sum[e.dst] += e.w
		cnt[e.dst]++
		nodes[e.src] = true
		nodes[e.dst] = true
	}
	// AVG is not accumulative across asynchronous schedules (the paper
	// ships (sum, count) pairs as a mechanism, §V-D); exact values are
	// only defined for synchronized schedules. Async modes are checked
	// for mechanism sanity: they parallelize and produce finite,
	// non-negative averages.
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 3, Partitions: 4}, false)
			res, err := s.Exec(context.Background(), avgCTE)
			if err != nil {
				t.Fatal(err)
			}
			if mode != ModeSingle && !res.Stats.Parallelized {
				t.Fatalf("did not parallelize: %s", res.Stats.FallbackReason)
			}
			got := rowsToMap(t, res)
			if mode == ModeSingle || mode == ModeSync {
				for n := range nodes {
					want := 0.0
					if cnt[n] > 0 {
						want = sum[n] / cnt[n]
					}
					if math.Abs(got[n]-want) > 1e-9 {
						t.Errorf("node %d avg = %v, want %v", n, got[n], want)
					}
				}
				return
			}
			for n, v := range got {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Errorf("node %d avg = %v, want finite non-negative", n, v)
				}
			}
		})
	}
}

// MAX mirrors MIN through the other identity and comparison direction;
// a longest-known-value propagation converges like SSSP.
func TestMaxAggregateAllModes(t *testing.T) {
	const maxCTE = `
WITH ITERATIVE mx(Node, Best, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 10.0 ELSE -Infinity END,
         CASE WHEN src = 1 THEN 10.0 ELSE -Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT mx.Node,
         GREATEST(mx.Best, mx.Delta),
         COALESCE(MAX(N.Best * E.weight), -Infinity)
  FROM mx
  LEFT JOIN edges AS E ON mx.Node = E.dst
  LEFT JOIN mx AS N ON N.Node = E.src
  WHERE N.Delta != -Infinity
  GROUP BY mx.Node
  UNTIL 0 UPDATES
)
SELECT Node, Best FROM mx`
	// Reference: maximum over paths from node 1 of 10 * Π(weights) with
	// weights < 1 keeping it finite; compute by fix-point iteration.
	nodes := map[int64]bool{}
	for _, e := range testGraph {
		nodes[e.src], nodes[e.dst] = true, true
	}
	best := map[int64]float64{}
	for n := range nodes {
		best[n] = math.Inf(-1)
	}
	best[1] = 10
	outdeg := map[int64]int{}
	for _, e := range testGraph {
		outdeg[e.src]++
	}
	for iter := 0; iter < 200; iter++ {
		for _, e := range testGraph {
			w := 1.0 / float64(outdeg[e.src]) // normalized weights < 1
			if v := best[e.src] * w; v > best[e.dst] {
				best[e.dst] = v
			}
		}
	}
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 2, Partitions: 4}, true)
			res, err := s.Exec(context.Background(), maxCTE)
			if err != nil {
				t.Fatal(err)
			}
			got := rowsToMap(t, res)
			for n := range nodes {
				w, g := best[n], got[n]
				if math.IsInf(w, -1) {
					if !math.IsInf(g, -1) {
						t.Errorf("node %d best = %v, want -Inf", n, g)
					}
					continue
				}
				if math.Abs(g-w) > 1e-9 {
					t.Errorf("node %d best = %v, want %v", n, g, w)
				}
			}
		})
	}
}

// TestDialectsEndToEnd runs the PageRank CTE against all three engine
// profiles — the translation module must keep the generated SQL valid on
// each dialect.
func TestDialectsEndToEnd(t *testing.T) {
	for _, profile := range []string{"pgsim", "mysim", "mariasim"} {
		t.Run(profile, func(t *testing.T) {
			s := newTestLoopProfile(t, profile, Options{Mode: ModeSync, Threads: 2, Partitions: 4})
			res, err := s.Exec(context.Background(), fmt.Sprintf(pageRankCTE, 10))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 7 {
				t.Fatalf("rows = %d", len(res.Rows))
			}
			if !res.Stats.Parallelized {
				t.Fatalf("not parallelized: %s", res.Stats.FallbackReason)
			}
		})
	}
}
