// Package core implements SQLoop itself — the paper's contribution: a
// middleware that accepts recursive and iterative CTEs, translates them
// into regular SQL for any engine reachable through database/sql, and
// transparently parallelizes iterative queries that aggregate over a
// self-join using synchronous (Sync), asynchronous (Async, DAIC-based)
// and prioritized asynchronous (AsyncP) execution (§IV–V of the paper).
package core

import (
	"container/list"
	"context"
	"database/sql"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"sqloop/internal/obs"
	"sqloop/internal/serve"
	"sqloop/internal/sqlparser"
)

// Mode selects how the iterative part of a CTE is executed.
type Mode int

// Execution modes. ModeAuto picks Async when the query analysis
// qualifies the CTE for parallelization and Single otherwise.
const (
	ModeAuto Mode = iota
	ModeSingle
	ModeSync
	ModeAsync
	ModeAsyncPrio
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSingle:
		return "single"
	case ModeSync:
		return "sync"
	case ModeAsync:
		return "async"
	case ModeAsyncPrio:
		return "asyncp"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a mode name.
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return ModeAuto, nil
	case "single", "script":
		return ModeSingle, nil
	case "sync":
		return ModeSync, nil
	case "async":
		return ModeAsync, nil
	case "asyncp", "prio", "prioritized":
		return ModeAsyncPrio, nil
	default:
		return ModeAuto, fmt.Errorf("core: unknown mode %q", name)
	}
}

// Options configures a SQLoop instance. The zero value is usable.
type Options struct {
	// Mode selects the execution strategy (default ModeAuto).
	Mode Mode
	// Threads is the size of the connection/worker pool (default: half
	// the CPUs, at least 1 — §V-B of the paper).
	Threads int
	// Partitions is the number of hash partitions of the CTE table
	// (default 256, the paper's default).
	Partitions int
	// Dialect names the target engine's SQL dialect; every statement
	// SQLoop emits is rendered through it (the translation module,
	// §IV-B). Empty means generic.
	Dialect string
	// PriorityQuery is the user-supplied priority function for AsyncP
	// (§V-E): a SQL query with the placeholder $PART standing for a
	// partition table, returning one numeric value; higher runs first.
	// Empty derives a default from the aggregate.
	PriorityQuery string
	// KeepTable leaves the final CTE table materialized under the CTE's
	// name after Exec returns instead of dropping all working state.
	KeepTable bool
	// MaxIterations bounds any iterative/recursive execution as a
	// runaway guard (default 1_000_000).
	MaxIterations int
	// DisableMaterialization turns off the constant-join materialization
	// optimization (§V-B); used by the SQL-script baseline and ablation
	// benchmarks.
	DisableMaterialization bool
	// DisableStmtCache turns off the per-connection prepared-statement
	// cache: every statement is then sent to the engine as fresh text.
	// Escape hatch for engines with unstable prepared-statement support
	// and for cache-ablation benchmarks (results must be identical
	// either way).
	DisableStmtCache bool
	// DisableExprCompile turns off the embedded engine's expression
	// compiler: every expression is then interpreted by walking its AST
	// on each row, the behaviour before compiled programs existed. A/B
	// switch for compile-ablation benchmarks (results must be identical
	// either way). Only honoured by OpenEmbedded — the middleware cannot
	// reconfigure a remote engine.
	DisableExprCompile bool
	// DisableVectorize turns off the embedded engine's vectorized batch
	// execution while keeping compiled programs: expressions then run
	// compiled but row-at-a-time. A/B switch for vectorize-ablation
	// benchmarks (results must be identical either way). Implied by
	// DisableExprCompile — the batch kernels ride on compiled programs.
	// Only honoured by OpenEmbedded, like DisableExprCompile.
	DisableVectorize bool
	// Workers sets the embedded engine's intra-query parallelism degree:
	// morsel-driven parallel scans, joins and aggregation over a shared
	// worker pool. 0 means one worker per CPU (runtime.GOMAXPROCS); 1 is
	// the serial path. Results are bit-identical at every setting. Only
	// honoured by OpenEmbedded, like DisableExprCompile.
	Workers int
	// DisableParallel forces serial intra-query execution regardless of
	// Workers. A/B switch for the parallel-ablation benchmarks (results
	// must be identical either way). Only honoured by OpenEmbedded.
	DisableParallel bool
	// OnRound, when set, is called after every completed round/iteration
	// with the 1-based round number and the number of rows changed in
	// that round. It runs on the coordinator goroutine.
	//
	// OnRound is an adapter over the Observer event API: internally it
	// is registered as a tracer that forwards obs.RoundEnd events. New
	// code should prefer Observer, which also sees per-partition
	// timings, fallback decisions and termination checks.
	OnRound func(round int, changed int64)
	// Observer, when set, receives typed execution events (see
	// internal/obs): ExecStart/ExecEnd, RoundStart/RoundEnd with delta
	// row counts, PartitionDone with per-worker timings, Fallback and
	// TerminationCheck. Parallel executors emit PartitionDone from
	// worker goroutines, so implementations must be safe for concurrent
	// use.
	Observer obs.Tracer
	// Metrics, when non-nil, is used as the instance's registry instead
	// of a fresh one. Sharing a registry lets other layers (the embedded
	// engine, the driver) report into the same snapshot — OpenEmbedded
	// relies on this.
	Metrics *obs.Registry
	// Checkpoint enables crash recovery for iterative and recursive
	// CTEs: execution state is snapshotted to disk at round boundaries
	// and a failed run resumes from the last snapshot instead of the
	// seed. Disabled when Dir is empty.
	Checkpoint CheckpointOptions
	// AfterCheckpoint, when set, runs after every successfully saved
	// snapshot. OpenEmbedded points it at the embedded engine's
	// Checkpoint method when the backend is durable, so a middleware
	// snapshot also flushes the engine's dirty pages and truncates its
	// write-ahead logs — the WAL↔checkpoint truncation contract. The
	// middleware itself attaches no meaning to it.
	AfterCheckpoint func() error
	// DataDir is passed through to OpenEmbedded's engine as the disk
	// backend's data directory (page + WAL files). Empty means a
	// throwaway temp directory. Ignored for in-memory backends and for
	// remote engines.
	DataDir string
	// BufferPoolPages sizes the embedded disk backend's buffer pool in
	// 8 KiB pages (0 = default 256). Ignored for in-memory backends and
	// remote engines.
	BufferPoolPages int
	// Tenant names this instance's tenant for admission control and
	// fair scheduling; empty means the default tenant. Only meaningful
	// together with Scheduler.
	Tenant string
	// Scheduler, when set, admits every iterative/recursive execution
	// before it runs (per-tenant concurrent-execution limits, typed
	// *serve.AdmissionError rejections) and fair-schedules concurrent
	// executions: the round loops yield their slot at round boundaries
	// so two tenants' fix-point computations interleave rounds instead
	// of serializing. Share one Scheduler across the instances that
	// should compete fairly.
	Scheduler *serve.Scheduler
}

// CheckpointOptions configures the checkpoint & recovery subsystem.
type CheckpointOptions struct {
	// Dir is the snapshot directory; empty disables checkpointing.
	Dir string
	// EveryRounds is the checkpoint interval K: state is saved after
	// every K-th completed round (default 1).
	EveryRounds int
	// MaxRecoveries bounds how many times one Exec call may restore
	// from a snapshot and continue after a recoverable failure
	// (default 3).
	MaxRecoveries int
	// RetryBackoff is the base sleep before a recovery attempt; each
	// attempt doubles it, with up to 50% jitter (default 100ms).
	RetryBackoff time.Duration
}

// enabled reports whether checkpointing is on.
func (c CheckpointOptions) enabled() bool { return c.Dir != "" }

// every returns the normalized interval.
func (c CheckpointOptions) every() int {
	if c.EveryRounds < 1 {
		return 1
	}
	return c.EveryRounds
}

// recoveries returns the normalized recovery bound.
func (c CheckpointOptions) recoveries() int {
	if c.MaxRecoveries < 1 {
		return 3
	}
	return c.MaxRecoveries
}

// backoff returns the sleep before recovery attempt n (1-based),
// doubling from the base with up to 50% jitter.
func (c CheckpointOptions) backoff(n int) time.Duration {
	d := c.RetryBackoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < n; i++ {
		d *= 2
		if d >= 5*time.Second {
			d = 5 * time.Second
			break
		}
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.NumCPU() / 2
		if o.Threads < 1 {
			o.Threads = 1
		}
	}
	if o.Partitions <= 0 {
		o.Partitions = 256
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1_000_000
	}
	return o
}

// Result is the outcome of one Exec call.
type Result struct {
	// Columns and Rows hold the final query's result set.
	Columns []string
	Rows    [][]any
	// RowsAffected is set for plain DML statements.
	RowsAffected int64
	// Stats describes how an iterative/recursive CTE was executed.
	Stats ExecStats
}

// ExecStats reports what SQLoop did with a CTE.
type ExecStats struct {
	// Mode is the mode that actually ran (after auto-selection and
	// fallback).
	Mode Mode
	// Parallelized reports whether the partitioned executor ran.
	Parallelized bool
	// FallbackReason explains why a requested parallel mode fell back to
	// single-threaded execution (empty otherwise).
	FallbackReason string
	// Iterations is the number of iterations/rounds executed.
	Iterations int
	// MessageTables counts message tables created (§V-C).
	MessageTables int
	// Elapsed is the wall time of the CTE execution.
	Elapsed time.Duration
	// Rounds holds one entry per completed round/iteration — the
	// per-iteration trace the paper's §VI evaluation plots (delta sizes,
	// round runtimes, straggler spread). len(Rounds) == Iterations.
	Rounds []RoundStats
	// ResumedFromRound is the checkpointed round this execution resumed
	// after (0 when the run started from the seed). Recovery within one
	// Exec call and an explicit ResumeQuery both set it.
	ResumedFromRound int
	// Recoveries counts how many times this Exec call restarted from a
	// snapshot after a recoverable failure.
	Recoveries int
	// ShardCount is how many engine endpoints executed the CTE (0 for a
	// plain single-instance run, 1 when a shard group fell back to a
	// whole-run on one shard).
	ShardCount int
	// CrossShardRows counts message rows routed between shards over the
	// whole execution (0 unless ShardCount > 1).
	CrossShardRows int64
	// Failovers counts shard endpoints replaced by standby replicas
	// during this Exec call (elastic shard groups only).
	Failovers int
	// Rebalances counts online repartitions (shard-count changes between
	// rounds) during this Exec call (elastic shard groups only).
	Rebalances int
	// Handoffs counts straggler work handoffs: AsyncP cycles in which
	// the slowest shard's pending delta queue was pre-combined on a
	// helper shard (elastic shard groups with Handoff enabled only).
	Handoffs int
}

// RoundStats is the trace of one completed round/iteration.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// Changed is the number of rows changed during the round (the
	// per-iteration delta size).
	Changed int64
	// Duration is the wall time of the round. Under the asynchronous
	// executors rounds are virtual (a round completes when the slowest
	// partition advances), so Duration measures between completions.
	Duration time.Duration
	// Partitions counts partition tasks completed in the round (0 for
	// the single-threaded executors).
	Partitions int
	// MessageTables counts message tables created during the round.
	MessageTables int
	// MaxWorker and MinWorker are the longest and shortest per-task
	// worker times in the round — the straggler spread. Zero for the
	// single-threaded executors.
	MaxWorker time.Duration
	MinWorker time.Duration
}

// SQLoop is one middleware instance bound to a target engine.
type SQLoop struct {
	db      *sql.DB
	opts    Options
	dialect sqlparser.Dialect
	// dsn identifies the engine for checkpoint keys (empty when the
	// instance was built from a bare *sql.DB).
	dsn string
	// tracer is never nil: it fans out to Options.Observer and the
	// OnRound adapter, or discards events when neither is set.
	tracer obs.Tracer
	// metrics is this instance's registry. Every statement the
	// middleware issues is timed into it; OpenEmbedded additionally
	// routes engine- and driver-level instruments here.
	metrics *obs.Registry
}

// Open connects SQLoop to the database reachable at dsn via the named
// database/sql driver (the paper's JDBC URL + port step).
func Open(driverName, dsn string, opts Options) (*SQLoop, error) {
	db, err := sql.Open(driverName, dsn)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", dsn, err)
	}
	s, err := NewWithDB(db, opts)
	if err != nil {
		return nil, err
	}
	s.dsn = dsn
	return s, nil
}

// NewWithDB wraps an existing database handle.
func NewWithDB(db *sql.DB, opts Options) (*SQLoop, error) {
	opts = opts.withDefaults()
	d, err := sqlparser.ParseDialect(opts.Dialect)
	if err != nil {
		return nil, err
	}
	// Workers + coordinator + samplers all need simultaneous
	// connections.
	db.SetMaxOpenConns(opts.Threads + 8)
	tracer := obs.Multi(opts.Observer, onRoundTracer(opts.OnRound))
	if tracer == nil {
		tracer = obs.NopTracer{}
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	return &SQLoop{db: db, opts: opts, dialect: d, tracer: tracer, metrics: metrics}, nil
}

// onRoundTracer adapts the legacy OnRound callback to the event API: it
// forwards every RoundEnd. Returns nil when no callback is set.
func onRoundTracer(fn func(round int, changed int64)) obs.Tracer {
	if fn == nil {
		return nil
	}
	return obs.FuncTracer(func(ev obs.Event) {
		if re, ok := ev.(obs.RoundEnd); ok {
			fn(re.Round, re.Changed)
		}
	})
}

// Metrics returns the instance's metrics registry. It always exists;
// callers snapshot it with Metrics().Snapshot().
func (s *SQLoop) Metrics() *obs.Registry { return s.metrics }

// DB exposes the underlying database handle (for samplers and tools).
func (s *SQLoop) DB() *sql.DB { return s.db }

// Options returns the effective options.
func (s *SQLoop) Options() Options { return s.opts }

// Close releases the database handle.
func (s *SQLoop) Close() error { return s.db.Close() }

// Exec runs one statement: iterative and recursive CTEs are executed by
// SQLoop's loop executors; everything else passes through to the engine
// after dialect translation.
func (s *SQLoop) Exec(ctx context.Context, query string) (*Result, error) {
	st, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	if cte, ok := st.(*sqlparser.LoopCTEStmt); ok {
		return s.execLoopCTE(ctx, cte)
	}
	return s.execPlain(ctx, st)
}

// ExecScript runs a multi-statement script sequentially on one
// connection, returning the last statement's result.
func (s *SQLoop) ExecScript(ctx context.Context, script string) (*Result, error) {
	stmts, err := sqlparser.ParseAll(script)
	if err != nil {
		return nil, err
	}
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := s.newConn(conn)
	defer c.closeStmts()
	var res *Result
	for _, st := range stmts {
		if cte, ok := st.(*sqlparser.LoopCTEStmt); ok {
			res, err = s.execLoopCTE(ctx, cte)
		} else {
			res, err = c.runStmt(ctx, st)
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// execPlain runs a non-CTE statement on a pooled connection.
func (s *SQLoop) execPlain(ctx context.Context, st sqlparser.Statement) (*Result, error) {
	conn, err := s.db.Conn(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := s.newConn(conn)
	defer c.closeStmts()
	res, err := c.runStmt(ctx, st)
	if err != nil {
		return nil, err
	}
	res.Stats.Mode = ModeSingle
	return res, nil
}

// execLoopCTE dispatches recursive vs iterative execution and brackets
// it with ExecStart/ExecEnd events.
func (s *SQLoop) execLoopCTE(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	if err := validateCTE(cte); err != nil {
		return nil, err
	}
	kind := "iterative"
	if cte.Kind == sqlparser.CTERecursive {
		kind = "recursive"
	}
	// Admission: one scheduler slot per execution, spanning the whole
	// run including recovery attempts — the ticket's round-boundary
	// yields keep concurrent executions fair, not the recovery loop.
	if s.opts.Scheduler != nil {
		ticket, err := s.opts.Scheduler.Admit(ctx, s.opts.Tenant)
		if err != nil {
			return nil, err
		}
		defer ticket.Done()
		ctx = withTicket(ctx, ticket)
	}
	s.tracer.Emit(obs.ExecStart{Kind: kind, CTE: cte.Name, Mode: s.opts.Mode.String()})
	start := time.Now()
	run := func() (*Result, error) {
		if cte.Kind == sqlparser.CTERecursive {
			return s.execRecursive(ctx, cte)
		}
		return s.execIterative(ctx, cte)
	}
	res, err := run()
	// Recovery loop: with checkpointing on, a transport-level failure
	// (lost engine connection) restarts the executor, which restores
	// from the latest snapshot — including any taken by the attempt
	// that just failed — instead of the seed.
	if err != nil && s.opts.Checkpoint.enabled() {
		for attempt := 1; attempt <= s.opts.Checkpoint.recoveries() && recoverable(err); attempt++ {
			backoff := s.opts.Checkpoint.backoff(attempt)
			s.tracer.Emit(obs.Retry{CTE: cte.Name, Attempt: attempt, Err: err.Error(), Backoff: backoff})
			s.metrics.Counter("sqloop_recoveries_total").Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			var res2 *Result
			if res2, err = run(); err == nil {
				res2.Stats.Recoveries = attempt
				res = res2
			}
		}
	}
	end := obs.ExecEnd{CTE: cte.Name, Elapsed: time.Since(start)}
	if err != nil {
		end.Err = err.Error()
		end.Mode = s.opts.Mode.String()
	} else {
		end.Mode = res.Stats.Mode.String()
		end.Iterations = res.Stats.Iterations
	}
	s.tracer.Emit(end)
	if err != nil {
		return nil, err
	}
	s.metrics.Counter("sqloop_cte_execs_total").Inc()
	s.metrics.Counter("sqloop_rounds_total").Add(int64(res.Stats.Iterations))
	s.metrics.Histogram("sqloop_cte_seconds").Observe(res.Stats.Elapsed)
	return res, nil
}

// validateCTE enforces the structural rules of §III.
func validateCTE(cte *sqlparser.LoopCTEStmt) error {
	if cte.Name == "" {
		return fmt.Errorf("core: CTE must be named")
	}
	if refs := countTableRefs(cte.Step, cte.Name); refs == 0 {
		return fmt.Errorf("core: the iterative/recursive part must reference %s", cte.Name)
	} else if cte.Kind == sqlparser.CTERecursive && refs > 1 {
		return fmt.Errorf("core: recursive CTEs must reference %s exactly once (linear recursion)", cte.Name)
	}
	if cte.Kind == sqlparser.CTEIterative && cte.Until == nil {
		return fmt.Errorf("core: iterative CTE requires an UNTIL termination condition")
	}
	return nil
}

// countTableRefs counts references to name in a body's FROM clauses.
func countTableRefs(b sqlparser.SelectBody, name string) int {
	n := 0
	sqlparser.WalkTableExprs(b, func(te sqlparser.TableExpr) bool {
		if tn, ok := te.(*sqlparser.TableName); ok && strings.EqualFold(tn.Name, name) {
			n++
		}
		return true
	})
	return n
}

// dbConn wraps one pinned connection with dialect-aware statement
// execution. All SQLoop-generated statements flow through runStmt so the
// translation module (§IV-B) touches every query, and every statement's
// latency lands in the instance's registry (resolved once here because
// registry lookups take a lock).
type dbConn struct {
	conn    *sql.Conn
	dialect sqlparser.Dialect

	// stmts caches prepared statements by rendered text so the
	// round-loop's repeated statements prepare once and bind thereafter
	// (nil disables caching). dbConn is single-goroutine, so the cache
	// is unsynchronized.
	stmts *stmtLRU

	stmtLatency *obs.Histogram
	stmtCount   *obs.Counter
	rowsOut     *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

// newConn wraps a pinned connection with the instance's dialect and
// statement instruments.
func (s *SQLoop) newConn(conn *sql.Conn) *dbConn {
	c := &dbConn{
		conn:        conn,
		dialect:     s.dialect,
		stmtLatency: s.metrics.Histogram("sqloop_statement_seconds"),
		stmtCount:   s.metrics.Counter("sqloop_statements_total"),
		rowsOut:     s.metrics.Counter("sqloop_rows_returned_total"),
		cacheHits:   s.metrics.Counter("sqloop_conn_stmt_cache_hits"),
		cacheMisses: s.metrics.Counter("sqloop_conn_stmt_cache_misses"),
	}
	if !s.opts.DisableStmtCache {
		c.stmts = newStmtLRU(dbConnStmtCacheSize)
	}
	return c
}

// dbConnStmtCacheSize bounds each connection's prepared-statement
// cache; the round-loop's working set (a handful of templates per CTE)
// fits with a wide margin.
const dbConnStmtCacheSize = 128

// stmtLRU is a bounded, single-goroutine LRU of prepared statements
// keyed by rendered statement text. Eviction closes the statement.
type stmtLRU struct {
	max int
	lru *list.List // of *stmtLRUEntry, front = most recent
	m   map[string]*list.Element
}

type stmtLRUEntry struct {
	text string
	st   *sql.Stmt
}

func newStmtLRU(max int) *stmtLRU {
	return &stmtLRU{max: max, lru: list.New(), m: make(map[string]*list.Element)}
}

func (l *stmtLRU) get(text string) *sql.Stmt {
	el, ok := l.m[text]
	if !ok {
		return nil
	}
	l.lru.MoveToFront(el)
	return el.Value.(*stmtLRUEntry).st
}

func (l *stmtLRU) put(text string, st *sql.Stmt) {
	l.m[text] = l.lru.PushFront(&stmtLRUEntry{text: text, st: st})
	for l.lru.Len() > l.max {
		el := l.lru.Back()
		ent := el.Value.(*stmtLRUEntry)
		l.lru.Remove(el)
		delete(l.m, ent.text)
		_ = ent.st.Close()
	}
}

func (l *stmtLRU) closeAll() {
	for el := l.lru.Front(); el != nil; el = el.Next() {
		_ = el.Value.(*stmtLRUEntry).st.Close()
	}
	l.lru.Init()
	l.m = make(map[string]*list.Element)
}

// preparedFor returns a cached prepared statement for text, preparing
// and caching on first use. A nil return means "use the direct text
// path" — caching disabled, or the engine refused to prepare (the
// direct execution will then surface the real error or just work).
func (c *dbConn) preparedFor(ctx context.Context, text string) *sql.Stmt {
	if c.stmts == nil {
		return nil
	}
	if st := c.stmts.get(text); st != nil {
		if c.cacheHits != nil {
			c.cacheHits.Inc()
		}
		return st
	}
	if c.cacheMisses != nil {
		c.cacheMisses.Inc()
	}
	st, err := c.conn.PrepareContext(ctx, text)
	if err != nil {
		return nil
	}
	c.stmts.put(text, st)
	return st
}

// closeStmts releases every cached prepared statement. Call before the
// underlying connection goes back to the pool.
func (c *dbConn) closeStmts() {
	if c.stmts != nil {
		c.stmts.closeAll()
	}
}

// observeStmt records one executed statement.
func (c *dbConn) observeStmt(start time.Time, rows int64) {
	if c.stmtLatency == nil {
		return // bare dbConn (tests) — instruments not wired
	}
	c.stmtLatency.Observe(time.Since(start))
	c.stmtCount.Inc()
	if rows > 0 {
		c.rowsOut.Add(rows)
	}
}

// runStmt renders and executes one parsed statement.
func (c *dbConn) runStmt(ctx context.Context, st sqlparser.Statement) (*Result, error) {
	text := sqlparser.FormatDialect(st, c.dialect)
	if isQuery(st) {
		return c.query(ctx, text)
	}
	return c.exec(ctx, text)
}

// runSQL parses, translates and executes raw SQL text.
func (c *dbConn) runSQL(ctx context.Context, text string) (*Result, error) {
	st, err := sqlparser.Parse(text)
	if err != nil {
		return nil, err
	}
	return c.runStmt(ctx, st)
}

func isQuery(st sqlparser.Statement) bool {
	_, ok := st.(*sqlparser.SelectStmt)
	return ok
}

func (c *dbConn) exec(ctx context.Context, text string) (*Result, error) {
	start := time.Now()
	var (
		res sql.Result
		err error
	)
	if st := c.preparedFor(ctx, text); st != nil {
		res, err = st.ExecContext(ctx)
	} else {
		res, err = c.conn.ExecContext(ctx, text)
	}
	if err != nil {
		return nil, fmt.Errorf("exec %q: %w", abbreviate(text), err)
	}
	n, err := res.RowsAffected()
	if err != nil {
		return nil, err
	}
	c.observeStmt(start, 0)
	return &Result{RowsAffected: n}, nil
}

func (c *dbConn) query(ctx context.Context, text string) (*Result, error) {
	start := time.Now()
	var (
		rows *sql.Rows
		err  error
	)
	if st := c.preparedFor(ctx, text); st != nil {
		rows, err = st.QueryContext(ctx)
	} else {
		rows, err = c.conn.QueryContext(ctx, text)
	}
	if err != nil {
		return nil, fmt.Errorf("query %q: %w", abbreviate(text), err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: cols}
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, vals)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	c.observeStmt(start, int64(len(out.Rows)))
	return out, nil
}

// scalar runs a query expected to return a single numeric value;
// missing/NULL results return (0, false).
func (c *dbConn) scalar(ctx context.Context, text string) (float64, bool, error) {
	res, err := c.query(ctx, text)
	if err != nil {
		return 0, false, err
	}
	if len(res.Rows) == 0 || len(res.Rows[0]) == 0 || res.Rows[0][0] == nil {
		return 0, false, nil
	}
	switch v := res.Rows[0][0].(type) {
	case int64:
		return float64(v), true, nil
	case float64:
		return v, true, nil
	case bool:
		if v {
			return 1, true, nil
		}
		return 0, true, nil
	default:
		return 0, false, fmt.Errorf("core: scalar query returned %T", v)
	}
}

func abbreviate(s string) string {
	const max = 120
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}
