package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sqloop/internal/obs"
)

// TestRoundEventsMatchIterations checks the observability invariant on
// every execution mode: each run emits exactly one RoundStart and one
// RoundEnd per iteration reported in ExecStats, and ExecStats.Rounds has
// one entry per iteration.
func TestRoundEventsMatchIterations(t *testing.T) {
	for _, mode := range []Mode{ModeSingle, ModeSync, ModeAsync, ModeAsyncPrio} {
		t.Run(mode.String(), func(t *testing.T) {
			rec := &obs.Recorder{}
			s := newTestLoop(t, Options{
				Mode: mode, Threads: 2, Partitions: 4, Observer: rec,
			}, true)
			res, err := s.Exec(context.Background(), fmt.Sprintf(pageRankCTE, 4))
			if err != nil {
				t.Fatal(err)
			}
			iters := res.Stats.Iterations
			if iters != 4 {
				t.Fatalf("iterations = %d, want 4", iters)
			}
			if got := rec.Count("round_start"); got != iters {
				t.Errorf("round_start events = %d, want %d", got, iters)
			}
			if got := rec.Count("round_end"); got != iters {
				t.Errorf("round_end events = %d, want %d", got, iters)
			}
			if got := len(res.Stats.Rounds); got != iters {
				t.Errorf("len(Stats.Rounds) = %d, want %d", got, iters)
			}
			if rec.Count("exec_start") != 1 || rec.Count("exec_end") != 1 {
				t.Errorf("exec events = %d/%d, want 1/1",
					rec.Count("exec_start"), rec.Count("exec_end"))
			}
			// Round numbers in the trace are 1-based and consecutive.
			for i, r := range res.Stats.Rounds {
				if r.Round != i+1 {
					t.Errorf("Rounds[%d].Round = %d, want %d", i, r.Round, i+1)
				}
			}
			// Parallel executors report partition tasks and worker times.
			if mode != ModeSingle {
				if rec.Count("partition_done") == 0 {
					t.Error("no partition_done events from a parallel mode")
				}
				sawParts := false
				for _, r := range res.Stats.Rounds {
					if r.Partitions > 0 {
						sawParts = true
						if r.MaxWorker < r.MinWorker {
							t.Errorf("round %d: MaxWorker %v < MinWorker %v",
								r.Round, r.MaxWorker, r.MinWorker)
						}
					}
				}
				if !sawParts {
					t.Error("no round recorded partition tasks")
				}
			}
		})
	}
}

// TestRoundDeltasConvergeSSSP runs SSSP on a chain graph in single mode:
// the per-round changed counts must end at zero (the convergent final
// round) and the trace must match the reported iteration count.
func TestRoundDeltasConvergeSSSP(t *testing.T) {
	rec := &obs.Recorder{}
	s := newTestLoop(t, Options{Mode: ModeSingle, Observer: rec}, false)
	res, err := s.Exec(context.Background(), ssspCTE)
	if err != nil {
		t.Fatal(err)
	}
	rounds := res.Stats.Rounds
	if len(rounds) != res.Stats.Iterations || len(rounds) == 0 {
		t.Fatalf("rounds = %d, iterations = %d", len(rounds), res.Stats.Iterations)
	}
	if last := rounds[len(rounds)-1].Changed; last != 0 {
		t.Errorf("final round changed %d rows, want 0 (UNTIL 0 UPDATES)", last)
	}
	// The distance wavefront shrinks: once the per-round delta starts
	// decreasing it never grows again on this fixture.
	peaked := false
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Changed < rounds[i-1].Changed {
			peaked = true
		} else if peaked && rounds[i].Changed > rounds[i-1].Changed {
			t.Errorf("delta grew after shrinking: %v", changes(rounds))
			break
		}
	}
	// Each round evaluated the termination condition once.
	if got := rec.Count("termination_check"); got != res.Stats.Iterations {
		t.Errorf("termination_check events = %d, want %d", got, res.Stats.Iterations)
	}
}

func changes(rs []RoundStats) []int64 {
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Changed
	}
	return out
}

// TestFallbackEventEmitted forces a parallel mode onto a query the
// analyzer rejects and checks the Fallback event and metrics counter.
func TestFallbackEventEmitted(t *testing.T) {
	rec := &obs.Recorder{}
	s := newTestLoop(t, Options{Mode: ModeSync, Observer: rec}, true)
	// No aggregate over a self-join: not parallelizable.
	q := `
WITH ITERATIVE r(id, v) AS (
  SELECT src, 1.0 FROM edges GROUP BY src
  ITERATE
  SELECT r.id, r.v + 1 FROM r
  UNTIL 3 ITERATIONS
)
SELECT COUNT(*) FROM r`
	res, err := s.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FallbackReason == "" {
		t.Fatal("expected a fallback to single-threaded execution")
	}
	if rec.Count("fallback") != 1 {
		t.Fatalf("fallback events = %d, want 1", rec.Count("fallback"))
	}
	for _, ev := range rec.Events() {
		if fb, ok := ev.(obs.Fallback); ok && fb.Reason != res.Stats.FallbackReason {
			t.Errorf("event reason %q != stats reason %q", fb.Reason, res.Stats.FallbackReason)
		}
	}
	if s.Metrics().Counter("sqloop_fallbacks_total").Value() != 1 {
		t.Error("sqloop_fallbacks_total not incremented")
	}
}

// TestMetricsPopulatedAfterExec checks that an iterative Exec leaves a
// non-empty metrics snapshot with statement latencies recorded.
func TestMetricsPopulatedAfterExec(t *testing.T) {
	s := newTestLoop(t, Options{Mode: ModeAsync, Threads: 2, Partitions: 4}, true)
	if _, err := s.Exec(context.Background(), fmt.Sprintf(pageRankCTE, 3)); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Empty() {
		t.Fatal("metrics snapshot empty after iterative Exec")
	}
	if snap.Counters["sqloop_cte_execs_total"] != 1 {
		t.Errorf("sqloop_cte_execs_total = %d", snap.Counters["sqloop_cte_execs_total"])
	}
	if snap.Counters["sqloop_rounds_total"] != 3 {
		t.Errorf("sqloop_rounds_total = %d", snap.Counters["sqloop_rounds_total"])
	}
	h, ok := snap.Histograms["sqloop_statement_seconds"]
	if !ok || h.Count == 0 {
		t.Fatalf("statement latency histogram missing/empty: %+v", snap.Histograms)
	}
	if snap.Counters["sqloop_statements_total"] != h.Count {
		t.Errorf("statement counter %d != histogram count %d",
			snap.Counters["sqloop_statements_total"], h.Count)
	}
	if snap.Format() == "" {
		t.Error("Snapshot.Format returned nothing")
	}
}

// TestOnRoundAdapterMatchesObserver runs with both the legacy callback
// and an observer and checks they see identical round sequences.
func TestOnRoundAdapterMatchesObserver(t *testing.T) {
	type round struct {
		n       int
		changed int64
	}
	var legacy []round
	rec := &obs.Recorder{}
	s := newTestLoop(t, Options{
		Mode:       ModeSync,
		Threads:    2,
		Partitions: 4,
		OnRound:    func(n int, changed int64) { legacy = append(legacy, round{n, changed}) },
		Observer:   rec,
	}, true)
	if _, err := s.Exec(context.Background(), fmt.Sprintf(pageRankCTE, 4)); err != nil {
		t.Fatal(err)
	}
	var observed []round
	for _, ev := range rec.Events() {
		if re, ok := ev.(obs.RoundEnd); ok {
			observed = append(observed, round{re.Round, re.Changed})
		}
	}
	if len(legacy) != len(observed) {
		t.Fatalf("legacy saw %d rounds, observer %d", len(legacy), len(observed))
	}
	for i := range legacy {
		if legacy[i] != observed[i] {
			t.Errorf("round %d: legacy %+v != observed %+v", i, legacy[i], observed[i])
		}
	}
}

// TestExplainAnalyze checks the EXPLAIN ANALYZE path returns the plan
// plus a populated per-round profile and renders it.
func TestExplainAnalyze(t *testing.T) {
	s := newTestLoop(t, Options{Mode: ModeSync, Threads: 2, Partitions: 4}, true)
	ea, err := s.ExplainAnalyzeQuery(context.Background(), fmt.Sprintf(pageRankCTE, 3))
	if err != nil {
		t.Fatal(err)
	}
	if ea.Plan.Kind != "iterative" {
		t.Errorf("kind = %s", ea.Plan.Kind)
	}
	if ea.Stats.Iterations != 3 || len(ea.Stats.Rounds) != 3 {
		t.Errorf("stats = %+v", ea.Stats)
	}
	out := ea.Render()
	if out == "" {
		t.Fatal("Render returned nothing")
	}
	for _, want := range []string{"iterations: 3", "round", "changed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}
