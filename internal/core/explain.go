package core

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"sqloop/internal/sqlparser"
)

// Explain describes what SQLoop would do with a statement without
// executing it: how the query is classified, whether the analyzer
// qualifies it for parallel execution (§V-A), and which pieces the plan
// generator extracted.
type Explain struct {
	// Kind is "statement", "recursive" or "iterative".
	Kind string
	// Mode is the execution mode that would run under the instance's
	// options.
	Mode Mode
	// Analysis is the §V-A outcome (zero value for non-iterative input).
	Analysis Analysis
	// Termination describes the UNTIL clause for iterative CTEs.
	Termination string
}

// ExplainQuery analyzes one SQL statement without running it.
func (s *SQLoop) ExplainQuery(query string) (*Explain, error) {
	st, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	cte, ok := st.(*sqlparser.LoopCTEStmt)
	if !ok {
		return &Explain{Kind: "statement", Mode: ModeSingle}, nil
	}
	if err := validateCTE(cte); err != nil {
		return nil, err
	}
	if cte.Kind == sqlparser.CTERecursive {
		return &Explain{Kind: "recursive", Mode: ModeSingle}, nil
	}
	ex := &Explain{Kind: "iterative", Analysis: analyzeStep(cte)}
	ex.Termination = describeTermination(cte.Until)
	switch {
	case s.opts.Mode == ModeAuto && ex.Analysis.Parallelizable:
		ex.Mode = ModeAsync
	case s.opts.Mode == ModeAuto, !ex.Analysis.Parallelizable:
		ex.Mode = ModeSingle
	default:
		ex.Mode = s.opts.Mode
	}
	return ex, nil
}

// ExplainAnalysis is the EXPLAIN ANALYZE counterpart of Explain: the
// static plan plus the observed execution profile of one actual run.
type ExplainAnalysis struct {
	Plan  *Explain
	Stats ExecStats
}

// ExplainAnalyzeQuery executes the statement and returns the plan
// together with the run's per-round profile. The query's result rows
// are discarded; only the trace survives (mirroring EXPLAIN ANALYZE).
func (s *SQLoop) ExplainAnalyzeQuery(ctx context.Context, query string) (*ExplainAnalysis, error) {
	plan, err := s.ExplainQuery(query)
	if err != nil {
		return nil, err
	}
	res, err := s.Exec(ctx, query)
	if err != nil {
		return nil, err
	}
	return &ExplainAnalysis{Plan: plan, Stats: res.Stats}, nil
}

// Render formats the analysis as an aligned, human-readable report —
// one header block followed by a per-round table when the run was
// iterative.
func (ea *ExplainAnalysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind: %s\n", ea.Plan.Kind)
	fmt.Fprintf(&b, "mode: %s (ran as %s)\n", ea.Plan.Mode, ea.Stats.Mode)
	if ea.Plan.Termination != "" {
		fmt.Fprintf(&b, "until: %s\n", ea.Plan.Termination)
	}
	if ea.Stats.FallbackReason != "" {
		fmt.Fprintf(&b, "fallback: %s\n", ea.Stats.FallbackReason)
	}
	fmt.Fprintf(&b, "iterations: %d  elapsed: %s\n", ea.Stats.Iterations, ea.Stats.Elapsed)
	if ea.Stats.MessageTables > 0 {
		fmt.Fprintf(&b, "message tables: %d\n", ea.Stats.MessageTables)
	}
	if len(ea.Stats.Rounds) > 0 {
		b.WriteString("\n")
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "round\tchanged\tduration\tparts\tmsgs\tmax worker\tmin worker")
		for _, r := range ea.Stats.Rounds {
			fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%d\t%s\t%s\n",
				r.Round, r.Changed, r.Duration, r.Partitions, r.MessageTables, r.MaxWorker, r.MinWorker)
		}
		tw.Flush()
	}
	return b.String()
}

// describeTermination renders a Tc in user terms.
func describeTermination(t *sqlparser.Termination) string {
	if t == nil {
		return ""
	}
	switch t.Kind {
	case sqlparser.TermIterations:
		return fmt.Sprintf("after %d iterations", t.N)
	case sqlparser.TermUpdates:
		return fmt.Sprintf("when an iteration updates at most %d rows", t.N)
	default:
		switch {
		case t.CmpOp != 0:
			return "when the probe query's value satisfies the comparison"
		case t.Any:
			return "when the probe query returns at least one row"
		default:
			return "when the probe query returns every row of the table"
		}
	}
}
