package core

import (
	"fmt"

	"sqloop/internal/sqlparser"
)

// Explain describes what SQLoop would do with a statement without
// executing it: how the query is classified, whether the analyzer
// qualifies it for parallel execution (§V-A), and which pieces the plan
// generator extracted.
type Explain struct {
	// Kind is "statement", "recursive" or "iterative".
	Kind string
	// Mode is the execution mode that would run under the instance's
	// options.
	Mode Mode
	// Analysis is the §V-A outcome (zero value for non-iterative input).
	Analysis Analysis
	// Termination describes the UNTIL clause for iterative CTEs.
	Termination string
}

// ExplainQuery analyzes one SQL statement without running it.
func (s *SQLoop) ExplainQuery(query string) (*Explain, error) {
	st, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	cte, ok := st.(*sqlparser.LoopCTEStmt)
	if !ok {
		return &Explain{Kind: "statement", Mode: ModeSingle}, nil
	}
	if err := validateCTE(cte); err != nil {
		return nil, err
	}
	if cte.Kind == sqlparser.CTERecursive {
		return &Explain{Kind: "recursive", Mode: ModeSingle}, nil
	}
	ex := &Explain{Kind: "iterative", Analysis: analyzeStep(cte)}
	ex.Termination = describeTermination(cte.Until)
	switch {
	case s.opts.Mode == ModeAuto && ex.Analysis.Parallelizable:
		ex.Mode = ModeAsync
	case s.opts.Mode == ModeAuto, !ex.Analysis.Parallelizable:
		ex.Mode = ModeSingle
	default:
		ex.Mode = s.opts.Mode
	}
	return ex, nil
}

// describeTermination renders a Tc in user terms.
func describeTermination(t *sqlparser.Termination) string {
	if t == nil {
		return ""
	}
	switch t.Kind {
	case sqlparser.TermIterations:
		return fmt.Sprintf("after %d iterations", t.N)
	case sqlparser.TermUpdates:
		return fmt.Sprintf("when an iteration updates at most %d rows", t.N)
	default:
		switch {
		case t.CmpOp != 0:
			return "when the probe query's value satisfies the comparison"
		case t.Any:
			return "when the probe query returns at least one row"
		default:
			return "when the probe query returns every row of the table"
		}
	}
}
