package core

// Scale-out execution (shard-parallel): one iterative CTE executes
// across N engine endpoints at once. Each shard is a full SQLoop
// instance bound to its own engine (embedded or remote, mixed backends
// allowed); every shard holds the complete input relations but exactly
// one hash partition of the CTE table. The plan generator's partition
// count is the shard count, so PARTHASH(id, S) = s names the rows shard
// s owns, and the per-partition Compute/Gather statements of §V-C run
// unchanged — each against its shard's local partition.
//
// What is new versus the in-process parallel executor is the delta
// exchange: a shard's message table holds rows for every destination
// id, but only the locally-owned rows are reachable by the local
// gather. After each compute wave the coordinator reads each shard's
// remote-owned message rows (PARTHASH(id, S) <> s), routes them Go-side
// with shard.Route — which hashes bit-identically to the engines'
// PARTHASH — ships them through the shard batch codec, and inserts them
// as receive tables on their owning shards. Termination conditions are
// merged at the coordinator: iteration counts globally, update counts
// sum, and aggregate UNTIL expressions are decomposed per §V-D
// (SUM/COUNT add, MIN/MAX fold, AVG ships as SUM+COUNT).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqloop/internal/ckpt"
	"sqloop/internal/obs"
	"sqloop/internal/shard"
	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// ShardGroup executes statements across a fixed set of SQLoop
// instances, one per engine endpoint. Iterative CTEs run sharded;
// everything else is broadcast to every shard (each shard must see the
// same base relations for a sharded execution to be meaningful).
type ShardGroup struct {
	shards []*SQLoop
	opts   Options
	owned  bool
	// tracer and metrics are the group's own: coordinator-level events
	// (rounds, exchanges, termination checks) land here, while each
	// shard's statement-level instruments stay in its own registry.
	tracer  obs.Tracer
	metrics *obs.Registry
}

// NewShardGroup builds a group over existing instances. With own set
// the group closes the shards on Close; borrowed shards (e.g. router
// targets) stay open.
func NewShardGroup(shards []*SQLoop, opts Options, own bool) (*ShardGroup, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: shard group needs at least one shard")
	}
	opts = opts.withDefaults()
	tracer := obs.Multi(opts.Observer, onRoundTracer(opts.OnRound))
	if tracer == nil {
		tracer = obs.NopTracer{}
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	return &ShardGroup{shards: shards, opts: opts, owned: own, tracer: tracer, metrics: metrics}, nil
}

// Size returns the number of shards.
func (g *ShardGroup) Size() int { return len(g.shards) }

// Shards returns the member instances in shard order.
func (g *ShardGroup) Shards() []*SQLoop { return append([]*SQLoop(nil), g.shards...) }

// Shard returns the instance executing partition i.
func (g *ShardGroup) Shard(i int) *SQLoop { return g.shards[i] }

// Options returns the group's effective options.
func (g *ShardGroup) Options() Options { return g.opts }

// Metrics returns the group-level registry (cross-shard rows,
// checkpoint and round counters).
func (g *ShardGroup) Metrics() *obs.Registry { return g.metrics }

// Close releases owned shards.
func (g *ShardGroup) Close() error {
	if !g.owned {
		return nil
	}
	var errs []error
	for _, sh := range g.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// signature identifies this exact shard topology for checkpoint keys: a
// snapshot taken by a 4-shard group must never be restored by a 2-shard
// group or a plain instance.
func (g *ShardGroup) signature() string {
	dsns := make([]string, len(g.shards))
	for i, sh := range g.shards {
		dsns[i] = sh.dsn
	}
	return strings.Join(dsns, ";") + "|shards=" + strconv.Itoa(len(g.shards))
}

// loopFor builds a synthetic SQLoop over shard i's engine that runs
// under the GROUP's options, tracer and metrics — used for whole-run
// fallbacks and for checkpoint plumbing. Its dsn is the group
// signature so checkpoint keys carry the shard dimension.
func (g *ShardGroup) loopFor(i int) *SQLoop {
	sh := g.shards[i]
	return &SQLoop{db: sh.db, opts: g.opts, dialect: sh.dialect,
		dsn: g.signature(), tracer: g.tracer, metrics: g.metrics}
}

// Exec runs one statement: iterative CTEs execute sharded, everything
// else is broadcast to all shards (shard 0's result is returned).
func (g *ShardGroup) Exec(ctx context.Context, query string) (*Result, error) {
	st, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	if cte, ok := st.(*sqlparser.LoopCTEStmt); ok {
		return g.execShardedCTE(ctx, cte)
	}
	return g.broadcast(ctx, st)
}

// ExecScript runs a multi-statement script: CTEs sharded, the rest
// broadcast. Returns the last statement's result.
func (g *ShardGroup) ExecScript(ctx context.Context, script string) (*Result, error) {
	stmts, err := sqlparser.ParseAll(script)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, st := range stmts {
		if cte, ok := st.(*sqlparser.LoopCTEStmt); ok {
			res, err = g.execShardedCTE(ctx, cte)
		} else {
			res, err = g.broadcast(ctx, st)
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// broadcast runs a plain statement on every shard so base relations
// stay replicated; shard 0's result is returned.
func (g *ShardGroup) broadcast(ctx context.Context, st sqlparser.Statement) (*Result, error) {
	var out *Result
	for s, sh := range g.shards {
		res, err := sh.execPlain(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		if s == 0 {
			out = res
		}
	}
	return out, nil
}

// execShardedCTE is the sharded twin of execLoopCTE: it decides whether
// the CTE can execute across shards, falls back to a whole-run on shard
// 0 otherwise, and brackets the sharded run with the ExecStart/ExecEnd
// events and the checkpoint recovery loop.
func (g *ShardGroup) execShardedCTE(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	if err := validateCTE(cte); err != nil {
		return nil, err
	}
	// Structural non-starters run whole on shard 0 (which already
	// brackets itself with events): a single shard IS a whole run,
	// ModeSingle asks for one, and recursion has no partitioned plan.
	if len(g.shards) == 1 || g.opts.Mode == ModeSingle || cte.Kind == sqlparser.CTERecursive {
		res, err := g.loopFor(0).execLoopCTE(ctx, cte)
		if err != nil {
			return nil, err
		}
		res.Stats.ShardCount = 1
		return res, nil
	}
	an := analyzeStep(cte)
	reason := ""
	var tp *shardTermPlan
	if !an.Parallelizable {
		// The inner executor will emit its own Fallback event if a
		// parallel mode was requested; no shard-level event here.
		reason = an.Reason
	} else {
		var why string
		if tp, why = decomposeTerm(cte); why != "" {
			// A sharding-specific limitation: the plan parallelizes but
			// the UNTIL condition cannot be merged across shards.
			reason = why
			g.tracer.Emit(obs.Fallback{CTE: cte.Name, Reason: reason})
			g.metrics.Counter("sqloop_fallbacks_total").Inc()
		}
	}
	if reason != "" {
		res, err := g.loopFor(0).execLoopCTE(ctx, cte)
		if err != nil {
			return nil, err
		}
		if res.Stats.FallbackReason == "" {
			res.Stats.FallbackReason = reason
		}
		res.Stats.ShardCount = 1
		return res, nil
	}
	mode := g.opts.Mode
	if mode == ModeAuto {
		mode = ModeAsync
	}

	g.tracer.Emit(obs.ExecStart{Kind: "iterative", CTE: cte.Name, Mode: g.opts.Mode.String()})
	start := time.Now()
	run := func() (*Result, error) { return g.execSharded(ctx, cte, an, mode, tp) }
	res, err := run()
	// Recovery loop, mirroring execLoopCTE: a transport-level failure on
	// any shard restarts the whole group run, which restores every
	// shard's partition from the latest group snapshot.
	if err != nil && g.opts.Checkpoint.enabled() {
		for attempt := 1; attempt <= g.opts.Checkpoint.recoveries() && recoverable(err); attempt++ {
			backoff := g.opts.Checkpoint.backoff(attempt)
			g.tracer.Emit(obs.Retry{CTE: cte.Name, Attempt: attempt, Err: err.Error(), Backoff: backoff})
			g.metrics.Counter("sqloop_recoveries_total").Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			var res2 *Result
			if res2, err = run(); err == nil {
				res2.Stats.Recoveries = attempt
				res = res2
			}
		}
	}
	end := obs.ExecEnd{CTE: cte.Name, Elapsed: time.Since(start)}
	if err != nil {
		end.Err = err.Error()
		end.Mode = g.opts.Mode.String()
	} else {
		end.Mode = res.Stats.Mode.String()
		end.Iterations = res.Stats.Iterations
	}
	g.tracer.Emit(end)
	if err != nil {
		return nil, err
	}
	g.metrics.Counter("sqloop_cte_execs_total").Inc()
	g.metrics.Counter("sqloop_rounds_total").Add(int64(res.Stats.Iterations))
	g.metrics.Histogram("sqloop_cte_seconds").Observe(res.Stats.Elapsed)
	return res, nil
}

// shardTermPlan is a decomposed UNTIL expression: one aggregate over
// the CTE, evaluated per shard and merged at the coordinator (§V-D
// decomposition rules applied to the termination side).
type shardTermPlan struct {
	agg   string          // SUM, COUNT, MIN, MAX or AVG
	star  bool            // COUNT(*)
	arg   sqlparser.Expr  // aggregate argument (nil for COUNT(*))
	alias string          // the CTE's alias inside the condition
	where sqlparser.Expr  // optional row filter, references the CTE only
	cmpOp sqltypes.CompareOp
	cmpTo sqltypes.Value  // numeric comparison literal
}

// decomposeTerm decides whether the UNTIL condition can be evaluated
// across shards. ITERATIONS and UPDATES conditions always merge (round
// counts are global, update counts sum); an expression condition must
// be a single decomposable aggregate over the CTE compared to a numeric
// literal. The returned reason is empty when sharding may proceed.
func decomposeTerm(cte *sqlparser.LoopCTEStmt) (*shardTermPlan, string) {
	term := cte.Until
	if term.Kind != sqlparser.TermExpr {
		return nil, ""
	}
	if term.Delta {
		return nil, "UNTIL condition references the Rdelta snapshot"
	}
	if term.Any {
		return nil, "UNTIL ANY conditions do not decompose across shards"
	}
	if term.CmpOp == 0 {
		return nil, "UNTIL condition is not an aggregate comparison"
	}
	lit, ok := term.CmpTo.(*sqlparser.Literal)
	if !ok || !lit.Val.IsNumeric() {
		return nil, "UNTIL comparison target is not a numeric literal"
	}
	sel, ok := term.Expr.(*sqlparser.Select)
	if !ok {
		return nil, "UNTIL condition uses set operations"
	}
	if sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil ||
		len(sel.OrderBy) > 0 || sel.Limit != nil || sel.Offset != nil {
		return nil, "UNTIL condition is not a plain aggregate query"
	}
	if len(sel.From) != 1 {
		return nil, "UNTIL condition must read the CTE table only"
	}
	tn, ok := sel.From[0].(*sqlparser.TableName)
	if !ok || !strings.EqualFold(tn.Name, cte.Name) {
		return nil, "UNTIL condition must read the CTE table only"
	}
	if len(sel.Items) != 1 || sel.Items[0].Star {
		return nil, "UNTIL condition must compute exactly one aggregate"
	}
	fc, ok := sel.Items[0].Expr.(*sqlparser.FuncCall)
	if !ok || fc.Distinct {
		return nil, "UNTIL condition must compute exactly one aggregate"
	}
	tp := &shardTermPlan{agg: fc.Name, alias: tn.Alias, where: sel.Where,
		cmpOp: term.CmpOp, cmpTo: lit.Val}
	if tp.alias == "" {
		tp.alias = tn.Name
	}
	switch fc.Name {
	case "COUNT":
		tp.star = fc.Star
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, "UNTIL aggregate must take one argument"
			}
			tp.arg = fc.Args[0]
		}
	case "SUM", "MIN", "MAX", "AVG":
		if fc.Star || len(fc.Args) != 1 {
			return nil, "UNTIL aggregate must take one argument"
		}
		tp.arg = fc.Args[0]
	default:
		return nil, fmt.Sprintf("UNTIL aggregate %s does not decompose across shards", fc.Name)
	}
	// Subqueries could read anything; the merge only reasons about
	// per-shard partitions of the one CTE table.
	bad := false
	scan := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			switch t := x.(type) {
			case *sqlparser.Subquery, *sqlparser.ExistsExpr:
				bad = true
			case *sqlparser.InExpr:
				if t.Sub != nil {
					bad = true
				}
			}
			return !bad
		})
	}
	scan(tp.where)
	scan(tp.arg)
	if bad {
		return nil, "UNTIL condition contains a subquery"
	}
	return tp, ""
}

// shardedRun is one sharded execution in flight.
type shardedRun struct {
	g    *ShardGroup
	cte  *sqlparser.LoopCTEStmt
	pl   *plan // partition count == shard count
	mode Mode
	// conns pins one connection per shard; conns[s] is only ever used
	// by shard s's worker goroutine or by the coordinator between waves.
	conns []*dbConn
	tp    *shardTermPlan // nil unless the UNTIL is a decomposed aggregate
	tok   string
	ck    *ckptRun
	rt    *roundTrace

	nameSeq atomic.Int64
	// pending[s] lists message tables shard s has not gathered yet
	// (its own compute output plus receive tables routed to it).
	pending    [][]string
	lastGather []int64
	computed   []bool
	rounds     []int
	startRound int
	crossRows  int64

	stats ExecStats
}

// execSharded runs one iterative CTE across every shard.
func (g *ShardGroup) execSharded(ctx context.Context, cte *sqlparser.LoopCTEStmt, an Analysis, mode Mode, tp *shardTermPlan) (*Result, error) {
	start := time.Now()
	S := len(g.shards)
	loop0 := g.loopFor(0)

	ck, err := loop0.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// A group snapshot holds one partition table per shard; anything
	// else (different shard count, a single-instance snapshot) is
	// unusable for this topology.
	if ck.restoring() && (ck.resumed.Partitions != S ||
		len(ck.resumed.PartRounds) != S || len(ck.resumed.Tables) != S) {
		ck.resumed = nil
	}
	tok := ck.execToken()

	conns := make([]*dbConn, S)
	var closers []func() error
	defer func() {
		for _, cl := range closers {
			_ = cl()
		}
	}()
	for s, sh := range g.shards {
		conn, err := sh.db.Conn(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d connection: %w", s, err)
		}
		c := sh.newConn(conn)
		conns[s] = c
		closers = append(closers, func() error {
			c.closeStmts()
			return conn.Close()
		})
	}

	rUser := strings.ToLower(cte.Name)
	rName := rTableName(tok, cte.Name)

	run := &shardedRun{
		g: g, cte: cte, mode: mode, conns: conns, tp: tp, tok: tok, ck: ck,
		rt:         newRoundTrace(g.tracer, false),
		pending:    make([][]string, S),
		lastGather: make([]int64, S),
		computed:   make([]bool, S),
		rounds:     make([]int, S),
	}

	// Stale user-visible objects from a crashed legacy run must not
	// break this one on any shard.
	if err := run.forEach(func(s int) error {
		if _, err := conns[s].runStmt(ctx, dropView(rUser)); err != nil {
			return err
		}
		_, err := conns[s].runStmt(ctx, dropTable(rUser))
		return err
	}); err != nil {
		return nil, err
	}

	var cols []string
	if ck.restoring() {
		cols = ck.resumed.Columns
	} else {
		// Every shard evaluates the full R0 (the seed is tiny next to the
		// iteration) and then keeps only its own partition. Shard 0 runs
		// first so derived column names are settled before the fan-out.
		cols, err = loop0.seedTable(ctx, conns[0], cte, tok, rName, true)
		if err != nil {
			return nil, err
		}
		if err := run.forEach(func(s int) error {
			if s == 0 {
				return nil
			}
			sc, err := loop0.seedTable(ctx, conns[s], cte, tok, rName, true)
			if err != nil {
				return fmt.Errorf("seeding shard %d: %w", s, err)
			}
			if len(sc) != len(cols) {
				return fmt.Errorf("core: shard %d derived %d seed columns, shard 0 derived %d",
					s, len(sc), len(cols))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if len(cols) <= an.DeltaItem {
		return nil, fmt.Errorf("core: CTE %s declares %d columns but the delta is item %d",
			cte.Name, len(cols), an.DeltaItem+1)
	}

	run.pl = newPlan(cte, an, cols, S, tok, !g.opts.DisableMaterialization)
	defer run.cleanup(context.WithoutCancel(ctx))

	if ck.restoring() {
		if err := run.forEach(func(s int) error {
			if err := ck.restoreTable(ctx, conns[s], ck.resumed.Tables[s], true); err != nil {
				return err
			}
			_, err := conns[s].runStmt(ctx, &sqlparser.CreateViewStmt{
				Name: run.pl.rQL, Body: run.localViewBody(s)})
			return err
		}); err != nil {
			return nil, err
		}
		copy(run.rounds, ck.resumed.PartRounds)
		run.startRound = ck.resumed.Round
		run.stats.Iterations = ck.resumed.Round
		ck.markResumed()
	} else {
		if err := run.forEach(func(s int) error {
			for _, st := range run.localPartitionStmts(s) {
				if _, err := conns[s].runStmt(ctx, st); err != nil {
					return fmt.Errorf("partitioning %s on shard %d: %w", cte.Name, s, err)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := run.forEach(func(s int) error {
		publishAdvisoryView(ctx, conns[s], rUser, run.pl.rQL)
		if run.pl.materialized {
			for _, st := range run.pl.mjoinStmts() {
				if _, err := conns[s].runStmt(ctx, st); err != nil {
					return fmt.Errorf("materializing join on shard %d: %w", s, err)
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	switch mode {
	case ModeSync:
		err = run.driveSync(ctx)
	case ModeAsyncPrio:
		err = run.driveAsync(ctx, true)
	default:
		err = run.driveAsync(ctx, false)
	}
	if err != nil {
		return nil, err
	}

	out, err := run.mergeFinal(ctx)
	if err != nil {
		return nil, err
	}
	run.stats.Mode = mode
	run.stats.Parallelized = true
	run.stats.ShardCount = S
	run.stats.CrossShardRows = run.crossRows
	run.stats.Elapsed = time.Since(start)
	run.stats.Rounds = run.rt.rounds
	ck.finish(&run.stats)
	out.Stats = run.stats
	return out, nil
}

// forEach runs fn concurrently for every shard index and joins the
// errors. Each invocation touches only its own shard's connection and
// its own slice slots, so no locking is needed.
func (r *shardedRun) forEach(fn func(s int) error) error {
	errs := make([]error, len(r.conns))
	var wg sync.WaitGroup
	for s := range r.conns {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// localPartitionStmts is partitionStmts restricted to the one partition
// this shard owns: filter the seeded table down to PARTHASH(id,S)=s,
// drop the full copy, and re-expose the CTE name as a view over the
// local partition alone (the union view of the in-process executor
// would claim rows this shard does not have).
func (r *shardedRun) localPartitionStmts(s int) []sqlparser.Statement {
	pl := r.pl
	partCols := append([]string(nil), pl.cols...)
	if pl.avg {
		partCols = append(partCols, avgSumCol, avgCntCol)
	}
	sel := &sqlparser.Select{
		From:  []sqlparser.TableExpr{tbl(pl.rQL)},
		Where: eq(fn("PARTHASH", col("", pl.idCol), intLit(int64(pl.p))), intLit(int64(s))),
	}
	for _, c := range pl.cols {
		sel.Items = append(sel.Items, item(col("", c), ""))
	}
	if pl.avg {
		sel.Items = append(sel.Items,
			item(litVal(sqltypes.NewFloat(0)), avgSumCol),
			item(litVal(sqltypes.NewFloat(0)), avgCntCol))
	}
	return []sqlparser.Statement{
		dropTable(pl.partName(s)),
		createAnyTable(pl.partName(s), partCols, true),
		insertBody(pl.partName(s), sel),
		dropTable(pl.rQL),
		&sqlparser.CreateViewStmt{Name: pl.rQL, Body: r.localViewBody(s)},
	}
}

// localViewBody selects the public CTE columns from this shard's
// partition table.
func (r *shardedRun) localViewBody(s int) sqlparser.SelectBody {
	sel := &sqlparser.Select{From: []sqlparser.TableExpr{tbl(r.pl.partName(s))}}
	for _, c := range r.pl.cols {
		sel.Items = append(sel.Items, item(col("", c), c))
	}
	return sel
}

// computeShard runs the three Compute steps on shard s (absorb, emit
// messages, reset). It returns the rows changed by the absorb and the
// message table name ("" when the shard emitted nothing).
func (r *shardedRun) computeShard(ctx context.Context, s int, gatherChanged int64) (int64, string, error) {
	c := r.conns[s]
	var changed int64
	hasAbsorb := len(r.pl.valueSets) > 0
	if hasAbsorb {
		res, err := c.runStmt(ctx, r.pl.absorbStmt(s))
		if err != nil {
			return 0, "", fmt.Errorf("compute(absorb) shard %d: %w", s, err)
		}
		changed = res.RowsAffected
	}
	// Quiet-shard fast path (same proof as the in-process executor):
	// after a compute every delta is at the identity; if the preceding
	// gather accepted nothing and the absorb changed nothing, the
	// activity filter would yield an empty message table.
	if hasAbsorb && r.computed[s] && gatherChanged == 0 && changed == 0 {
		return 0, "", nil
	}
	r.computed[s] = true
	msgName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
	if _, err := c.runStmt(ctx, r.pl.messageStmt(s, msgName)); err != nil {
		return 0, "", fmt.Errorf("compute(messages) shard %d: %w", s, err)
	}
	n, ok, err := c.scalar(ctx, sqlparser.FormatDialect(countStmt(msgName), c.dialect))
	if err != nil {
		return 0, "", err
	}
	if !ok || n == 0 {
		if _, err := c.runStmt(ctx, dropTable(msgName)); err != nil {
			return 0, "", err
		}
		msgName = ""
	}
	if _, err := c.runStmt(ctx, r.pl.resetStmt(s)); err != nil {
		return 0, "", fmt.Errorf("compute(reset) shard %d: %w", s, err)
	}
	return changed, msgName, nil
}

// exchange is the cross-shard delta wave: for every shard that emitted
// a message table this cycle, read the rows owned by other shards,
// route them Go-side, ship them through the batch codec and insert them
// as receive tables on their owners. The local table keeps all rows —
// the owner-filtered gather ignores the shipped ones — so no deletes
// are needed.
func (r *shardedRun) exchange(ctx context.Context, round int, msgs []string) error {
	S := len(r.conns)
	any := false
	for _, m := range msgs {
		if m != "" {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	msgCols := []string{"id", "val"}
	if r.pl.avg {
		msgCols = append(msgCols, "cnt")
	}

	// Phase one, parallel per source shard: read outbound rows, route by
	// owner, encode each destination's batch for the wire.
	outbound := make([][][]byte, S)
	durs := make([]time.Duration, S)
	moved := make([]int64, S)
	if err := r.forEach(func(s int) error {
		name := msgs[s]
		if name == "" {
			return nil
		}
		r.pending[s] = append(r.pending[s], name)
		t0 := time.Now()
		sel := &sqlparser.Select{
			From: []sqlparser.TableExpr{tbl(name)},
			Where: &sqlparser.ComparisonExpr{Op: sqltypes.CmpNE,
				Left:  fn("PARTHASH", col("", "id"), intLit(int64(S))),
				Right: intLit(int64(s))},
		}
		for _, c := range msgCols {
			sel.Items = append(sel.Items, item(col("", c), c))
		}
		res, err := r.conns[s].runStmt(ctx, &sqlparser.SelectStmt{Body: sel})
		if err != nil {
			return fmt.Errorf("exchange read on shard %d: %w", s, err)
		}
		if len(res.Rows) == 0 {
			durs[s] = time.Since(t0)
			return nil
		}
		parts, err := shard.Route(shard.Batch{Columns: msgCols, Rows: res.Rows}, 0, S)
		if err != nil {
			return fmt.Errorf("exchange route from shard %d: %w", s, err)
		}
		enc := make([][]byte, S)
		for d := 0; d < S; d++ {
			if d == s || len(parts[d].Rows) == 0 {
				continue
			}
			enc[d] = shard.EncodeBatch(parts[d])
			moved[s] += int64(len(parts[d].Rows))
		}
		outbound[s] = enc
		durs[s] = time.Since(t0)
		return nil
	}); err != nil {
		return err
	}

	// Phase two, parallel per destination shard: decode every inbound
	// batch and materialize it as a receive table for the next gather.
	rx := make([]int, S)
	if err := r.forEach(func(d int) error {
		for s := 0; s < S; s++ {
			if outbound[s] == nil || outbound[s][d] == nil {
				continue
			}
			b, err := shard.DecodeBatch(outbound[s][d])
			if err != nil {
				return fmt.Errorf("exchange decode on shard %d: %w", d, err)
			}
			rxName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
			if err := r.insertBatch(ctx, r.conns[d], rxName, b); err != nil {
				return fmt.Errorf("exchange insert on shard %d: %w", d, err)
			}
			r.pending[d] = append(r.pending[d], rxName)
			rx[d]++
		}
		return nil
	}); err != nil {
		return err
	}

	for s := 0; s < S; s++ {
		r.stats.MessageTables += rx[s]
		r.rt.msgTables(rx[s])
		if moved[s] > 0 {
			r.crossRows += moved[s]
			r.g.metrics.Counter("sqloop_shard_rows_exchanged").Add(moved[s])
			r.g.tracer.Emit(obs.ShardExchange{Round: round, Shard: s,
				Rows: moved[s], Tables: 1, Duration: durs[s]})
		}
	}
	return nil
}

// insertBatch materializes a decoded batch as a table on c.
func (r *shardedRun) insertBatch(ctx context.Context, c *dbConn, name string, b shard.Batch) error {
	if _, err := c.runStmt(ctx, createAnyTable(name, b.Columns, false)); err != nil {
		return err
	}
	const batch = 500
	for lo := 0; lo < len(b.Rows); lo += batch {
		hi := min(lo+batch, len(b.Rows))
		vals := &sqlparser.Values{Rows: make([][]sqlparser.Expr, 0, hi-lo)}
		for _, row := range b.Rows[lo:hi] {
			exprs := make([]sqlparser.Expr, len(row))
			for j, v := range row {
				sv, err := sqltypes.FromGo(v)
				if err != nil {
					return fmt.Errorf("batch value: %w", err)
				}
				exprs[j] = litVal(sv)
			}
			vals.Rows = append(vals.Rows, exprs)
		}
		if _, err := c.runStmt(ctx, &sqlparser.InsertStmt{Table: name, Source: vals}); err != nil {
			return err
		}
	}
	return nil
}

// gatherShard accumulates shard s's pending message tables into its
// partition delta and drops them.
func (r *shardedRun) gatherShard(ctx context.Context, s int) (int64, error) {
	names := r.pending[s]
	if len(names) == 0 {
		return 0, nil
	}
	res, err := r.conns[s].runStmt(ctx, r.pl.gatherStmt(s, names))
	if err != nil {
		return 0, fmt.Errorf("gather shard %d: %w", s, err)
	}
	for _, n := range names {
		if _, err := r.conns[s].runStmt(ctx, dropTable(n)); err != nil {
			return 0, err
		}
	}
	r.pending[s] = nil
	return res.RowsAffected, nil
}

// drainGather delivers every pending message into the partition deltas
// (gathers create no new messages, so one wave suffices). The accepted
// changes are credited to lastGather so the next compute cannot take
// its quiet fast path past them.
func (r *shardedRun) drainGather(ctx context.Context) (int64, error) {
	changes := make([]int64, len(r.conns))
	err := r.forEach(func(s int) error {
		ch, err := r.gatherShard(ctx, s)
		if err != nil {
			return err
		}
		changes[s] = ch
		r.lastGather[s] += ch
		return nil
	})
	var total int64
	for _, c := range changes {
		total += c
	}
	return total, err
}

// pendingEmpty reports whether any shard still has undelivered
// messages.
func (r *shardedRun) pendingEmpty() bool {
	for _, p := range r.pending {
		if len(p) > 0 {
			return false
		}
	}
	return true
}

// termKindString mirrors terminator.kindString for coordinator-emitted
// events.
func (r *shardedRun) termKindString() string {
	switch r.cte.Until.Kind {
	case sqlparser.TermIterations:
		return "iterations"
	case sqlparser.TermUpdates:
		return "updates"
	default:
		return "expr"
	}
}

func (r *shardedRun) emitTermCheck(round int, updated int64, satisfied bool) {
	r.g.tracer.Emit(obs.TerminationCheck{Round: round, Kind: r.termKindString(),
		Updated: updated, Satisfied: satisfied})
}

// checkExprMerged evaluates the decomposed UNTIL aggregate: the same
// single-aggregate query runs on every shard's local partition (through
// the rQL view), the partials merge per §V-D, and the merged value
// feeds the original comparison. Fresh AST nodes are built per check so
// no shared statement tree is ever mutated.
func (r *shardedRun) checkExprMerged(ctx context.Context) (bool, error) {
	aggStmt := func(aggName string, arg sqlparser.Expr, star bool) *sqlparser.SelectStmt {
		fc := &sqlparser.FuncCall{Name: aggName, Star: star}
		if !star {
			fc.Args = []sqlparser.Expr{sqlparser.CloneExpr(arg)}
		}
		sel := &sqlparser.Select{
			Items: []sqlparser.SelectItem{item(fc, "")},
			From:  []sqlparser.TableExpr{&sqlparser.TableName{Name: r.pl.rQL, Alias: r.tp.alias}},
		}
		if r.tp.where != nil {
			sel.Where = sqlparser.CloneExpr(r.tp.where)
		}
		return &sqlparser.SelectStmt{Body: sel}
	}
	runAgg := func(aggName string, arg sqlparser.Expr, star bool) ([]float64, []bool, error) {
		vals := make([]float64, len(r.conns))
		oks := make([]bool, len(r.conns))
		err := r.forEach(func(s int) error {
			c := r.conns[s]
			v, ok, err := c.scalar(ctx, sqlparser.FormatDialect(aggStmt(aggName, arg, star), c.dialect))
			if err != nil {
				return fmt.Errorf("termination check on shard %d: %w", s, err)
			}
			vals[s], oks[s] = v, ok
			return nil
		})
		return vals, oks, err
	}

	var merged float64
	switch r.tp.agg {
	case "AVG":
		// AVG does not merge; ship (SUM, COUNT) and divide at the
		// coordinator, the same decomposition the message path uses.
		sums, soks, err := runAgg("SUM", r.tp.arg, false)
		if err != nil {
			return false, err
		}
		cnts, _, err := runAgg("COUNT", r.tp.arg, false)
		if err != nil {
			return false, err
		}
		var sum, cnt float64
		for s := range sums {
			if soks[s] {
				sum += sums[s]
			}
			cnt += cnts[s]
		}
		if cnt <= 0 {
			return false, nil // AVG over no rows is NULL: not satisfied
		}
		merged = sum / cnt
	case "MIN", "MAX":
		vals, oks, err := runAgg(r.tp.agg, r.tp.arg, false)
		if err != nil {
			return false, err
		}
		found := false
		for s := range vals {
			if !oks[s] {
				continue // NULL on an empty shard contributes nothing
			}
			if !found ||
				(r.tp.agg == "MIN" && vals[s] < merged) ||
				(r.tp.agg == "MAX" && vals[s] > merged) {
				merged = vals[s]
				found = true
			}
		}
		if !found {
			return false, nil // all shards NULL: not satisfied
		}
	default: // SUM, COUNT
		vals, oks, err := runAgg(r.tp.agg, r.tp.arg, r.tp.star)
		if err != nil {
			return false, err
		}
		found := false
		for s := range vals {
			if oks[s] {
				merged += vals[s]
				found = true
			}
		}
		if r.tp.agg == "SUM" && !found {
			return false, nil // SUM over no rows anywhere is NULL
		}
	}
	cmp, err := sqltypes.CompareSQL(r.tp.cmpOp, sqltypes.NewFloat(merged), r.tp.cmpTo)
	if err != nil {
		return false, err
	}
	return cmp.IsTrue(), nil
}

// driveSync is the sharded Synchronous Execution: compute on every
// shard concurrently, barrier, exchange remote deltas, gather on every
// shard concurrently, barrier, then the merged termination check.
func (r *shardedRun) driveSync(ctx context.Context) error {
	S := len(r.conns)
	term := r.cte.Until
	iters := r.startRound
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if iters >= r.g.opts.MaxIterations {
			return fmt.Errorf("core: iterative CTE %s exceeded %d iterations", r.cte.Name, r.g.opts.MaxIterations)
		}
		iters++
		r.rt.begin(iters)
		var roundChanged int64
		msgs := make([]string, S)
		changes := make([]int64, S)
		durs := make([]time.Duration, S)

		if err := r.forEach(func(s int) error {
			t0 := time.Now()
			ch, msg, err := r.computeShard(ctx, s, r.lastGather[s])
			changes[s], msgs[s], durs[s] = ch, msg, time.Since(t0)
			return err
		}); err != nil {
			return err
		}
		for s := 0; s < S; s++ {
			roundChanged += changes[s]
			if msgs[s] != "" {
				r.stats.MessageTables++
				r.rt.msgTables(1)
			}
			r.rt.task(obs.PartitionDone{Round: iters, Part: s, Phase: "compute",
				Changed: changes[s], Duration: durs[s]})
		}

		if err := r.exchange(ctx, iters, msgs); err != nil {
			return err
		}

		if err := r.forEach(func(s int) error {
			t0 := time.Now()
			ch, err := r.gatherShard(ctx, s)
			changes[s], durs[s] = ch, time.Since(t0)
			return err
		}); err != nil {
			return err
		}
		for s := 0; s < S; s++ {
			roundChanged += changes[s]
			r.lastGather[s] = changes[s]
			r.rt.task(obs.PartitionDone{Round: iters, Part: s, Phase: "gather",
				Changed: changes[s], Duration: durs[s]})
		}

		r.rt.end(iters, roundChanged)
		r.stats.Iterations = iters

		var done bool
		var err error
		switch term.Kind {
		case sqlparser.TermIterations:
			done = int64(iters) >= term.N
		case sqlparser.TermUpdates:
			done = roundChanged <= term.N
		default:
			if done, err = r.checkExprMerged(ctx); err != nil {
				return err
			}
		}
		r.emitTermCheck(iters, roundChanged, done)
		if done {
			return nil
		}
		// Post-gather barrier: every message table has been delivered, so
		// the partition tables are the complete state.
		if r.ck.due(iters) {
			for x := range r.rounds {
				r.rounds[x] = iters
			}
			if err := r.saveCkpt(ctx, iters); err != nil {
				return err
			}
		}
	}
}

// driveAsync is the sharded Asynchronous Execution: each cycle fuses
// gather-then-compute per shard (all shards concurrent), then exchanges
// remote deltas. With prio set it becomes the prioritized variant: the
// per-shard priority query orders the shards and each shard's exchange
// happens immediately after its own cycle, so high-priority shards see
// the freshest deltas first.
func (r *shardedRun) driveAsync(ctx context.Context, prio bool) error {
	S := len(r.conns)
	term := r.cte.Until
	iterTarget := term.N
	if iterTarget < 1 {
		iterTarget = 1
	}
	prioQuery := r.g.opts.PriorityQuery
	if prioQuery == "" {
		prioQuery = r.pl.defaultPriorityQuery()
	}
	cycle := r.startRound
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cycle >= r.g.opts.MaxIterations {
			return fmt.Errorf("core: iterative CTE %s exceeded %d iterations", r.cte.Name, r.g.opts.MaxIterations)
		}
		cycle++
		r.rt.begin(cycle)
		var cycleChanged int64
		newMsgs := 0
		changes := make([]int64, S)
		durs := make([]time.Duration, S)

		if prio {
			order, err := r.priorityOrder(ctx, prioQuery)
			if err != nil {
				return err
			}
			// Sequential, in priority order, exchanging after every shard:
			// a later shard's gather sees the earlier shards' fresh deltas
			// within the same cycle.
			for _, s := range order {
				t0 := time.Now()
				gch, err := r.gatherShard(ctx, s)
				if err != nil {
					return err
				}
				eff := gch + r.lastGather[s]
				r.lastGather[s] = 0
				cch, msg, err := r.computeShard(ctx, s, eff)
				if err != nil {
					return err
				}
				changes[s] = gch + cch
				durs[s] = time.Since(t0)
				if msg != "" {
					newMsgs++
					r.stats.MessageTables++
					r.rt.msgTables(1)
					one := make([]string, S)
					one[s] = msg
					if err := r.exchange(ctx, cycle, one); err != nil {
						return err
					}
				}
			}
		} else {
			msgs := make([]string, S)
			if err := r.forEach(func(s int) error {
				t0 := time.Now()
				gch, err := r.gatherShard(ctx, s)
				if err != nil {
					return err
				}
				eff := gch + r.lastGather[s]
				r.lastGather[s] = 0
				cch, msg, err := r.computeShard(ctx, s, eff)
				if err != nil {
					return err
				}
				changes[s], msgs[s], durs[s] = gch+cch, msg, time.Since(t0)
				return nil
			}); err != nil {
				return err
			}
			for s := 0; s < S; s++ {
				if msgs[s] != "" {
					newMsgs++
					r.stats.MessageTables++
					r.rt.msgTables(1)
				}
			}
			if err := r.exchange(ctx, cycle, msgs); err != nil {
				return err
			}
		}

		for s := 0; s < S; s++ {
			cycleChanged += changes[s]
			r.rt.task(obs.PartitionDone{Round: cycle, Part: s, Phase: "pair",
				Changed: changes[s], Duration: durs[s]})
		}
		r.rt.end(cycle, cycleChanged)
		r.stats.Iterations = cycle
		r.rounds = fillRounds(r.rounds, cycle)

		switch term.Kind {
		case sqlparser.TermIterations:
			if int64(cycle) >= iterTarget {
				// Deliver in-flight messages so no accumulated change is
				// silently lost (the Sync method's final gather ran too).
				if _, err := r.drainGather(ctx); err != nil {
					return err
				}
				return nil
			}
		case sqlparser.TermUpdates:
			if term.N == 0 {
				// Quiescence: nothing changed, nothing emitted, nothing in
				// flight — more cycles are provably no-ops.
				if cycleChanged == 0 && newMsgs == 0 && r.pendingEmpty() {
					return nil
				}
			} else {
				drained, err := r.drainGather(ctx)
				if err != nil {
					return err
				}
				total := cycleChanged + drained
				done := total <= term.N
				r.emitTermCheck(cycle, total, done)
				if done {
					return nil
				}
			}
		default: // decomposed TermExpr
			drained, err := r.drainGather(ctx)
			if err != nil {
				return err
			}
			done, err := r.checkExprMerged(ctx)
			if err != nil {
				return err
			}
			r.emitTermCheck(cycle, cycleChanged+drained, done)
			if done {
				return nil
			}
			if cycleChanged+drained == 0 && newMsgs == 0 {
				return fmt.Errorf("core: %s converged without satisfying its UNTIL condition", r.cte.Name)
			}
		}

		if r.ck.due(cycle) {
			// Same soft barrier the in-process async executor uses: drain
			// pending messages so the partitions alone carry the state.
			if _, err := r.drainGather(ctx); err != nil {
				return err
			}
			if err := r.saveCkpt(ctx, cycle); err != nil {
				return err
			}
		}
	}
}

// fillRounds sets every shard's completed-round counter (sharded cycles
// advance all shards together).
func fillRounds(rounds []int, n int) []int {
	for i := range rounds {
		rounds[i] = n
	}
	return rounds
}

// priorityOrder evaluates the priority query on every shard's partition
// and returns shard indices in descending priority. Shards whose query
// yields no value sort last but still run — every shard must advance
// every cycle for the global round count to stay meaningful.
func (r *shardedRun) priorityOrder(ctx context.Context, q string) ([]int, error) {
	type sp struct {
		s  int
		p  float64
		ok bool
	}
	sps := make([]sp, len(r.conns))
	if err := r.forEach(func(s int) error {
		text := strings.ReplaceAll(q, "$PART", r.pl.partName(s))
		v, ok, err := r.conns[s].scalar(ctx, text)
		if err != nil {
			return fmt.Errorf("priority query on shard %d: %w", s, err)
		}
		sps[s] = sp{s: s, p: v, ok: ok}
		return nil
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(sps, func(i, j int) bool {
		if sps[i].ok != sps[j].ok {
			return sps[i].ok
		}
		return sps[i].p > sps[j].p
	})
	order := make([]int, len(sps))
	for i, e := range sps {
		order[i] = e.s
	}
	return order, nil
}

// mergeFinal collects every shard's partition onto shard 0 under the
// rQL name and runs the final query there.
func (r *shardedRun) mergeFinal(ctx context.Context) (*Result, error) {
	c0 := r.conns[0]
	if _, err := c0.runStmt(ctx, dropView(r.pl.rQL)); err != nil {
		return nil, err
	}
	if _, err := c0.runStmt(ctx, createAnyTable(r.pl.rQL, r.pl.cols, true)); err != nil {
		return nil, err
	}
	if _, err := c0.runStmt(ctx, insertBody(r.pl.rQL, r.localViewBody(0))); err != nil {
		return nil, err
	}
	for s := 1; s < len(r.conns); s++ {
		res, err := r.conns[s].runStmt(ctx, &sqlparser.SelectStmt{Body: r.localViewBody(s)})
		if err != nil {
			return nil, fmt.Errorf("final merge read from shard %d: %w", s, err)
		}
		if err := r.insertRows(ctx, c0, r.pl.rQL, res.Rows); err != nil {
			return nil, fmt.Errorf("final merge insert from shard %d: %w", s, err)
		}
	}
	final := retargetCTE(r.cte.Final, r.cte, r.tok)
	return c0.runStmt(ctx, &sqlparser.SelectStmt{Body: final})
}

// insertRows batch-inserts driver rows into a table on c.
func (r *shardedRun) insertRows(ctx context.Context, c *dbConn, table string, rows [][]any) error {
	const batch = 500
	for lo := 0; lo < len(rows); lo += batch {
		hi := min(lo+batch, len(rows))
		vals := &sqlparser.Values{Rows: make([][]sqlparser.Expr, 0, hi-lo)}
		for _, row := range rows[lo:hi] {
			exprs := make([]sqlparser.Expr, len(row))
			for j, v := range row {
				sv, err := sqltypes.FromGo(v)
				if err != nil {
					return err
				}
				exprs[j] = litVal(sv)
			}
			vals.Rows = append(vals.Rows, exprs)
		}
		if _, err := c.runStmt(ctx, &sqlparser.InsertStmt{Table: table, Source: vals}); err != nil {
			return err
		}
	}
	return nil
}

// cleanup drops every working object on every shard. KeepTable
// re-publishes the merged result under the user name on shard 0.
func (r *shardedRun) cleanup(ctx context.Context) {
	rUser := strings.ToLower(r.cte.Name)
	_ = r.forEach(func(s int) error {
		c := r.conns[s]
		for _, name := range r.pending[s] {
			_, _ = c.runStmt(ctx, dropTable(name))
		}
		if s == 0 && r.g.opts.KeepTable {
			materializeKeepTable(ctx, c, rUser, r.pl.rQL)
			_, _ = c.runStmt(ctx, dropView(r.pl.rQL))
		} else {
			_, _ = c.runStmt(ctx, dropView(rUser))
			_, _ = c.runStmt(ctx, dropView(r.pl.rQL))
			_, _ = c.runStmt(ctx, dropTable(r.pl.rQL))
		}
		_, _ = c.runStmt(ctx, dropTable(r.pl.partName(s)))
		_, _ = c.runStmt(ctx, dropTable(mjoinTableName(r.pl.tok, r.cte.Name)))
		return nil
	})
}

// saveCkpt writes one group snapshot: every shard's partition table
// (read over that shard's own connection) plus the per-shard round
// counters, under the group-signature key. Callers must have drained
// pending messages first.
func (r *shardedRun) saveCkpt(ctx context.Context, round int) error {
	ck := r.ck
	if ck == nil {
		return nil
	}
	start := time.Now()
	snap := &ckpt.Snapshot{
		Key: ck.key, Query: ck.query, Mode: ck.mode, Engine: ck.s.dsn,
		CTE: ck.cteName, Token: ck.token, Round: round, Partitions: r.pl.p,
		PartRounds: append([]int(nil), r.rounds...),
		Columns:    append([]string(nil), r.pl.cols...),
		CreatedAt:  time.Now().UTC(),
	}
	tables := make([]ckpt.TableState, len(r.conns))
	if err := r.forEach(func(s int) error {
		ts, err := ck.readTable(ctx, r.conns[s], r.pl.partName(s))
		if err != nil {
			return err
		}
		tables[s] = ts
		return nil
	}); err != nil {
		return err
	}
	snap.Tables = tables
	n, err := ck.store.Save(snap)
	if err != nil {
		return fmt.Errorf("checkpoint of %s at round %d: %w", ck.cteName, round, err)
	}
	elapsed := time.Since(start)
	r.g.tracer.Emit(obs.Checkpoint{CTE: ck.cteName, Round: round,
		Tables: len(snap.Tables), Bytes: n, Elapsed: elapsed})
	r.g.metrics.Counter("sqloop_checkpoints_total").Inc()
	r.g.metrics.Counter("sqloop_checkpoint_bytes_total").Add(n)
	r.g.metrics.Histogram("sqloop_checkpoint_seconds").Observe(elapsed)
	return nil
}
