package core

// Scale-out execution (shard-parallel): one iterative CTE executes
// across N engine endpoints at once. Each shard is a full SQLoop
// instance bound to its own engine (embedded or remote, mixed backends
// allowed); every shard holds the complete input relations but exactly
// one hash partition of the CTE table. The plan generator's partition
// count is the shard count, so PARTHASH(id, S) = s names the rows shard
// s owns, and the per-partition Compute/Gather statements of §V-C run
// unchanged — each against its shard's local partition.
//
// What is new versus the in-process parallel executor is the delta
// exchange: a shard's message table holds rows for every destination
// id, but only the locally-owned rows are reachable by the local
// gather. After each compute wave the coordinator reads each shard's
// remote-owned message rows (PARTHASH(id, S) <> s), routes them Go-side
// with shard.Route — which hashes bit-identically to the engines'
// PARTHASH — ships them through the shard batch codec, and inserts them
// as receive tables on their owning shards. Termination conditions are
// merged at the coordinator: iteration counts globally, update counts
// sum, and aggregate UNTIL expressions are decomposed per §V-D
// (SUM/COUNT add, MIN/MAX fold, AVG ships as SUM+COUNT).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqloop/internal/ckpt"
	"sqloop/internal/obs"
	"sqloop/internal/shard"
	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// ShardGroupOptions configures a group's elastic behaviour: standby
// replicas for failover and growth, scheduled online repartitions, and
// AsyncP straggler work handoff. The zero value is a plain fixed-N
// group.
type ShardGroupOptions struct {
	// Replicas are standby instances available to the group: failover
	// replaces a dead shard endpoint with one, and growing the shard
	// count activates them as new shards. Standbys must hold the same
	// base relations as the shards — statements broadcast through the
	// group reach them too, so loading data via the group keeps them in
	// sync. An owned group (OpenEmbeddedElasticShards) closes its
	// replicas on Close.
	Replicas []*SQLoop
	// Rebalance schedules online repartitions: after the step's round
	// completes, the working partitions are re-routed by PARTHASH onto
	// Shards endpoints (growing activates standbys, shrinking retires
	// trailing shards back to the standby pool). Each step fires at
	// most once. RequestRebalance triggers the same transition
	// dynamically.
	Rebalance []RebalanceStep
	// Handoff enables AsyncP straggler mitigation: after each
	// prioritized cycle the slowest shard's pending delta queue is
	// pre-combined on the fastest shard and handed back as a single
	// message table, so the straggler's next gather does one cheap pass.
	Handoff bool
	// ProbeTimeout bounds each per-shard liveness probe during failover
	// (default 2s).
	ProbeTimeout time.Duration
}

// RebalanceStep is one scheduled topology change.
type RebalanceStep struct {
	// AfterRound is the 1-based completed round the change lands after.
	AfterRound int
	// Shards is the new shard count.
	Shards int
}

// ShardGroup executes statements across a set of SQLoop instances, one
// per engine endpoint. Iterative CTEs run sharded; everything else is
// broadcast to every shard and standby (each endpoint must see the
// same base relations for a sharded execution to be meaningful). With
// ShardGroupOptions the set is elastic: dead shards fail over to
// standby replicas and the shard count changes between rounds.
type ShardGroup struct {
	// mu guards the membership slices: failover and rebalance mutate
	// them while accessors may run from other goroutines.
	mu       sync.RWMutex
	shards   []*SQLoop
	standbys []*SQLoop
	retired  []*SQLoop // dead endpoints swapped out by failover
	gopts    ShardGroupOptions
	rebTaken []bool // gopts.Rebalance steps already fired (guarded by mu)
	opts     Options
	owned    bool
	// identity is the group's initial topology signature. It stays
	// fixed across failover and rebalance so the group checkpoint key
	// survives elastic transitions: a snapshot taken before a standby
	// swap or a repartition must still be found by the replay after it.
	identity string
	// epoch counts topology transitions (failover swaps and
	// rebalances). Every group snapshot records it, so the newest
	// snapshot under the stable identity key is unambiguous after a
	// transition.
	epoch atomic.Int64
	// rebalanceReq is a dynamically requested shard count (0 = none),
	// consumed at the next round boundary of a sharded execution.
	rebalanceReq atomic.Int64
	// tracer and metrics are the group's own: coordinator-level events
	// (rounds, exchanges, termination checks) land here, while each
	// shard's statement-level instruments stay in its own registry.
	tracer  obs.Tracer
	metrics *obs.Registry
}

// NewShardGroup builds a fixed-N group over existing instances. With
// own set the group closes the shards on Close; borrowed shards (e.g.
// router targets) stay open.
func NewShardGroup(shards []*SQLoop, opts Options, own bool) (*ShardGroup, error) {
	return NewElasticShardGroup(shards, ShardGroupOptions{}, opts, own)
}

// NewElasticShardGroup builds a group with standby replicas and
// rebalance behaviour. With own set the group closes shards, standbys
// and failed-over endpoints on Close.
func NewElasticShardGroup(shards []*SQLoop, gopts ShardGroupOptions, opts Options, own bool) (*ShardGroup, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: shard group needs at least one shard")
	}
	for _, st := range gopts.Rebalance {
		if st.Shards < 1 || st.AfterRound < 1 {
			return nil, fmt.Errorf("core: rebalance step to %d shards after round %d is not valid",
				st.Shards, st.AfterRound)
		}
	}
	opts = opts.withDefaults()
	tracer := obs.Multi(opts.Observer, onRoundTracer(opts.OnRound))
	if tracer == nil {
		tracer = obs.NopTracer{}
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	g := &ShardGroup{
		shards:   append([]*SQLoop(nil), shards...),
		standbys: append([]*SQLoop(nil), gopts.Replicas...),
		gopts:    gopts,
		rebTaken: make([]bool, len(gopts.Rebalance)),
		opts:     opts, owned: own,
		identity: topologySignature(shards),
		tracer:   tracer, metrics: metrics,
	}
	return g, nil
}

// topologySignature renders a shard list for checkpoint identity.
func topologySignature(shards []*SQLoop) string {
	dsns := make([]string, len(shards))
	for i, sh := range shards {
		dsns[i] = sh.dsn
	}
	return strings.Join(dsns, ";") + "|shards=" + strconv.Itoa(len(shards))
}

// Size returns the current number of shards.
func (g *ShardGroup) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.shards)
}

// Shards returns the current member instances in shard order.
func (g *ShardGroup) Shards() []*SQLoop {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]*SQLoop(nil), g.shards...)
}

// Shard returns the instance currently executing partition i.
func (g *ShardGroup) Shard(i int) *SQLoop {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.shards[i]
}

// Standbys returns the current standby replicas in pool order.
func (g *ShardGroup) Standbys() []*SQLoop {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]*SQLoop(nil), g.standbys...)
}

// Epoch returns the group's topology epoch: 0 at construction,
// incremented by every failover swap and every online repartition.
func (g *ShardGroup) Epoch() int64 { return g.epoch.Load() }

// RequestRebalance asks the group to repartition to n shards at the
// next round boundary of the in-flight (or next) sharded execution.
// Growing past the current count consumes standby replicas; shrinking
// retires trailing shards back to the standby pool.
func (g *ShardGroup) RequestRebalance(n int) {
	if n > 0 {
		g.rebalanceReq.Store(int64(n))
	}
}

// Options returns the group's effective options.
func (g *ShardGroup) Options() Options { return g.opts }

// Metrics returns the group-level registry (cross-shard rows,
// checkpoint, failover and rebalance counters).
func (g *ShardGroup) Metrics() *obs.Registry { return g.metrics }

// Close releases owned shards, standbys and failed-over endpoints.
func (g *ShardGroup) Close() error {
	if !g.owned {
		return nil
	}
	g.mu.Lock()
	all := append([]*SQLoop(nil), g.shards...)
	all = append(all, g.standbys...)
	all = append(all, g.retired...)
	g.shards, g.standbys, g.retired = nil, nil, nil
	g.mu.Unlock()
	var errs []error
	for _, sh := range all {
		if err := sh.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// loopFor builds a synthetic SQLoop over shard i's engine that runs
// under the GROUP's options, tracer and metrics — used for whole-run
// fallbacks and for checkpoint plumbing. Its dsn is the group's stable
// identity so checkpoint keys carry the shard dimension yet survive
// failover and rebalance.
func (g *ShardGroup) loopFor(i int) *SQLoop {
	g.mu.RLock()
	sh := g.shards[i]
	g.mu.RUnlock()
	return &SQLoop{db: sh.db, opts: g.opts, dialect: sh.dialect,
		dsn: g.identity, tracer: g.tracer, metrics: g.metrics}
}

// membership snapshots the current shards and standbys.
func (g *ShardGroup) membership() (members, standbys []*SQLoop) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]*SQLoop(nil), g.shards...), append([]*SQLoop(nil), g.standbys...)
}

// Exec runs one statement: iterative CTEs execute sharded, everything
// else is broadcast to all shards (shard 0's result is returned).
func (g *ShardGroup) Exec(ctx context.Context, query string) (*Result, error) {
	st, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	if cte, ok := st.(*sqlparser.LoopCTEStmt); ok {
		return g.execShardedCTE(ctx, cte)
	}
	return g.broadcast(ctx, st)
}

// ExecScript runs a multi-statement script: CTEs sharded, the rest
// broadcast. Returns the last statement's result.
func (g *ShardGroup) ExecScript(ctx context.Context, script string) (*Result, error) {
	stmts, err := sqlparser.ParseAll(script)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, st := range stmts {
		if cte, ok := st.(*sqlparser.LoopCTEStmt); ok {
			res, err = g.execShardedCTE(ctx, cte)
		} else {
			res, err = g.broadcast(ctx, st)
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// broadcast runs a plain statement on every shard — and every standby —
// so base relations stay replicated across the whole elastic pool:
// failover and growth can then activate a standby without reloading
// data. Shard 0's result is returned.
func (g *ShardGroup) broadcast(ctx context.Context, st sqlparser.Statement) (*Result, error) {
	members, standbys := g.membership()
	var out *Result
	for s, sh := range members {
		res, err := sh.execPlain(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		if s == 0 {
			out = res
		}
	}
	for i, sh := range standbys {
		if _, err := sh.execPlain(ctx, st); err != nil {
			return nil, fmt.Errorf("core: standby %d: %w", i, err)
		}
	}
	return out, nil
}

// hasStandbys reports whether any standby replica remains in the pool.
func (g *ShardGroup) hasStandbys() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.standbys) > 0
}

// probe reports whether sh's engine answers a trivial query. A fresh
// pooled connection is requested so the probe exercises a real dial for
// remote engines; the driver's own dial retry and the probe timeout
// bound the wait.
func (g *ShardGroup) probe(ctx context.Context, sh *SQLoop) bool {
	timeout := g.gopts.ProbeTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := sh.db.Conn(pctx)
	if err != nil {
		return false
	}
	defer conn.Close()
	var one int64
	return conn.QueryRowContext(pctx, "SELECT 1").Scan(&one) == nil
}

// failover probes every current shard and swaps each dead one for a
// live standby replica, bumping the topology epoch per swap. The dead
// instance moves to the retired list (its *sql.DB stays open so an
// owned Close can release it; a healed endpoint rejoins only as a new
// replica). Returns how many shards were replaced. The actual state
// transfer is free: the subsequent re-run restores every partition —
// including the replacement's — from the group checkpoint and replays
// from the checkpointed cut.
func (g *ShardGroup) failover(ctx context.Context, resumeRound int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	swapped := 0
	for s, sh := range g.shards {
		if len(g.standbys) == 0 {
			break
		}
		if g.probe(ctx, sh) {
			continue
		}
		repl := -1
		for i, sb := range g.standbys {
			if g.probe(ctx, sb) {
				repl = i
				break
			}
		}
		if repl < 0 {
			// Every standby is dead too; leave the shard in place so the
			// retry loop surfaces the original failure.
			continue
		}
		sb := g.standbys[repl]
		g.standbys = append(g.standbys[:repl], g.standbys[repl+1:]...)
		g.retired = append(g.retired, sh)
		g.shards[s] = sb
		swapped++
		ep := g.epoch.Add(1)
		g.tracer.Emit(obs.ShardFailover{Shard: s, From: sh.dsn, To: sb.dsn,
			Round: resumeRound, Epoch: ep})
		g.metrics.Counter("sqloop_shard_failovers_total").Inc()
	}
	return swapped
}

// takeRebalance returns the shard count the group should repartition
// to after round completes, or 0. A dynamic RequestRebalance wins over
// the scheduled steps; each scheduled step fires at most once.
func (g *ShardGroup) takeRebalance(round int) int {
	if n := g.rebalanceReq.Swap(0); n > 0 {
		return int(n)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, st := range g.gopts.Rebalance {
		if !g.rebTaken[i] && st.AfterRound <= round {
			g.rebTaken[i] = true
			return st.Shards
		}
	}
	return 0
}

// resize swaps the group membership to n shards. Growth activates the
// first n-S standby replicas as shards S..n-1; shrink retires the
// trailing shards back to the standby pool (they keep their base
// relations, so a later growth or failover can reactivate them). The
// caller moves the partition data.
func (g *ShardGroup) resize(n int) (added, removed []*SQLoop, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	S := len(g.shards)
	switch {
	case n > S:
		need := n - S
		if len(g.standbys) < need {
			return nil, nil, fmt.Errorf("core: rebalance to %d shards needs %d standby replicas, have %d",
				n, need, len(g.standbys))
		}
		added = append([]*SQLoop(nil), g.standbys[:need]...)
		g.standbys = append([]*SQLoop(nil), g.standbys[need:]...)
		g.shards = append(g.shards, added...)
	case n < S:
		removed = append([]*SQLoop(nil), g.shards[n:]...)
		g.shards = g.shards[:n]
		g.standbys = append(g.standbys, removed...)
	}
	return added, removed, nil
}

// peekRound reports the round of the stored group snapshot for cte (0
// when none): failover events record the cut the replay resumes from.
func (g *ShardGroup) peekRound(cte *sqlparser.LoopCTEStmt) int {
	if !g.opts.Checkpoint.enabled() {
		return 0
	}
	store, err := ckpt.NewStore(g.opts.Checkpoint.Dir)
	if err != nil {
		return 0
	}
	key := ckpt.Key(sqlparser.Format(cte), g.opts.Mode.String(), g.identity)
	snap, err := store.Load(key)
	if err != nil || snap == nil {
		return 0
	}
	return snap.Round
}

// execShardedCTE is the sharded twin of execLoopCTE: it decides whether
// the CTE can execute across shards, falls back to a whole-run on shard
// 0 otherwise, and brackets the sharded run with the ExecStart/ExecEnd
// events and the checkpoint recovery loop.
func (g *ShardGroup) execShardedCTE(ctx context.Context, cte *sqlparser.LoopCTEStmt) (*Result, error) {
	if err := validateCTE(cte); err != nil {
		return nil, err
	}
	// Structural non-starters run whole on shard 0 (which already
	// brackets itself with events): a single shard IS a whole run,
	// ModeSingle asks for one, and recursion has no partitioned plan.
	if g.Size() == 1 || g.opts.Mode == ModeSingle || cte.Kind == sqlparser.CTERecursive {
		res, err := g.loopFor(0).execLoopCTE(ctx, cte)
		if err != nil {
			return nil, err
		}
		res.Stats.ShardCount = 1
		return res, nil
	}
	an := analyzeStep(cte)
	reason := ""
	var tp *shardTermPlan
	if !an.Parallelizable {
		// The inner executor will emit its own Fallback event if a
		// parallel mode was requested; no shard-level event here.
		reason = an.Reason
	} else {
		var why string
		if tp, why = decomposeTerm(cte); why != "" {
			// A sharding-specific limitation: the plan parallelizes but
			// the UNTIL condition cannot be merged across shards.
			reason = why
			g.tracer.Emit(obs.Fallback{CTE: cte.Name, Reason: reason})
			g.metrics.Counter("sqloop_fallbacks_total").Inc()
		}
	}
	if reason != "" {
		res, err := g.loopFor(0).execLoopCTE(ctx, cte)
		if err != nil {
			return nil, err
		}
		if res.Stats.FallbackReason == "" {
			res.Stats.FallbackReason = reason
		}
		res.Stats.ShardCount = 1
		return res, nil
	}
	mode := g.opts.Mode
	if mode == ModeAuto {
		mode = ModeAsync
	}

	g.tracer.Emit(obs.ExecStart{Kind: "iterative", CTE: cte.Name, Mode: g.opts.Mode.String()})
	start := time.Now()
	run := func() (*Result, error) { return g.execSharded(ctx, cte, an, mode, tp) }
	res, err := run()
	// Recovery loop, mirroring execLoopCTE: a transport-level failure on
	// any shard restarts the whole group run, which restores every
	// shard's partition from the latest group snapshot. Before each
	// retry an elastic group probes its members and swaps persistently
	// dead endpoints for standby replicas — the re-run then restores the
	// replacement's partition from the same snapshot, so failover costs
	// nothing beyond the replay.
	var failovers int
	if err != nil && g.opts.Checkpoint.enabled() {
		for attempt := 1; attempt <= g.opts.Checkpoint.recoveries() && recoverable(err); attempt++ {
			backoff := g.opts.Checkpoint.backoff(attempt)
			g.tracer.Emit(obs.Retry{CTE: cte.Name, Attempt: attempt, Err: err.Error(), Backoff: backoff})
			g.metrics.Counter("sqloop_recoveries_total").Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			if g.hasStandbys() {
				failovers += g.failover(ctx, g.peekRound(cte))
			}
			var res2 *Result
			if res2, err = run(); err == nil {
				res2.Stats.Recoveries = attempt
				res = res2
			}
		}
	}
	end := obs.ExecEnd{CTE: cte.Name, Elapsed: time.Since(start)}
	if err != nil {
		end.Err = err.Error()
		end.Mode = g.opts.Mode.String()
	} else {
		end.Mode = res.Stats.Mode.String()
		end.Iterations = res.Stats.Iterations
	}
	g.tracer.Emit(end)
	if err != nil {
		return nil, err
	}
	res.Stats.Failovers = failovers
	g.metrics.Counter("sqloop_cte_execs_total").Inc()
	g.metrics.Counter("sqloop_rounds_total").Add(int64(res.Stats.Iterations))
	g.metrics.Histogram("sqloop_cte_seconds").Observe(res.Stats.Elapsed)
	return res, nil
}

// shardTermPlan is a decomposed UNTIL expression: one aggregate over
// the CTE, evaluated per shard and merged at the coordinator (§V-D
// decomposition rules applied to the termination side).
type shardTermPlan struct {
	agg   string          // SUM, COUNT, MIN, MAX or AVG
	star  bool            // COUNT(*)
	arg   sqlparser.Expr  // aggregate argument (nil for COUNT(*))
	alias string          // the CTE's alias inside the condition
	where sqlparser.Expr  // optional row filter, references the CTE only
	cmpOp sqltypes.CompareOp
	cmpTo sqltypes.Value  // numeric comparison literal
}

// decomposeTerm decides whether the UNTIL condition can be evaluated
// across shards. ITERATIONS and UPDATES conditions always merge (round
// counts are global, update counts sum); an expression condition must
// be a single decomposable aggregate over the CTE compared to a numeric
// literal. The returned reason is empty when sharding may proceed.
func decomposeTerm(cte *sqlparser.LoopCTEStmt) (*shardTermPlan, string) {
	term := cte.Until
	if term.Kind != sqlparser.TermExpr {
		return nil, ""
	}
	if term.Delta {
		return nil, "UNTIL condition references the Rdelta snapshot"
	}
	if term.Any {
		return nil, "UNTIL ANY conditions do not decompose across shards"
	}
	if term.CmpOp == 0 {
		return nil, "UNTIL condition is not an aggregate comparison"
	}
	lit, ok := term.CmpTo.(*sqlparser.Literal)
	if !ok || !lit.Val.IsNumeric() {
		return nil, "UNTIL comparison target is not a numeric literal"
	}
	sel, ok := term.Expr.(*sqlparser.Select)
	if !ok {
		return nil, "UNTIL condition uses set operations"
	}
	if sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil ||
		len(sel.OrderBy) > 0 || sel.Limit != nil || sel.Offset != nil {
		return nil, "UNTIL condition is not a plain aggregate query"
	}
	if len(sel.From) != 1 {
		return nil, "UNTIL condition must read the CTE table only"
	}
	tn, ok := sel.From[0].(*sqlparser.TableName)
	if !ok || !strings.EqualFold(tn.Name, cte.Name) {
		return nil, "UNTIL condition must read the CTE table only"
	}
	if len(sel.Items) != 1 || sel.Items[0].Star {
		return nil, "UNTIL condition must compute exactly one aggregate"
	}
	fc, ok := sel.Items[0].Expr.(*sqlparser.FuncCall)
	if !ok || fc.Distinct {
		return nil, "UNTIL condition must compute exactly one aggregate"
	}
	tp := &shardTermPlan{agg: fc.Name, alias: tn.Alias, where: sel.Where,
		cmpOp: term.CmpOp, cmpTo: lit.Val}
	if tp.alias == "" {
		tp.alias = tn.Name
	}
	switch fc.Name {
	case "COUNT":
		tp.star = fc.Star
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, "UNTIL aggregate must take one argument"
			}
			tp.arg = fc.Args[0]
		}
	case "SUM", "MIN", "MAX", "AVG":
		if fc.Star || len(fc.Args) != 1 {
			return nil, "UNTIL aggregate must take one argument"
		}
		tp.arg = fc.Args[0]
	default:
		return nil, fmt.Sprintf("UNTIL aggregate %s does not decompose across shards", fc.Name)
	}
	// Subqueries could read anything; the merge only reasons about
	// per-shard partitions of the one CTE table.
	bad := false
	scan := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			switch t := x.(type) {
			case *sqlparser.Subquery, *sqlparser.ExistsExpr:
				bad = true
			case *sqlparser.InExpr:
				if t.Sub != nil {
					bad = true
				}
			}
			return !bad
		})
	}
	scan(tp.where)
	scan(tp.arg)
	if bad {
		return nil, "UNTIL condition contains a subquery"
	}
	return tp, ""
}

// shardedRun is one sharded execution in flight.
type shardedRun struct {
	g   *ShardGroup
	cte *sqlparser.LoopCTEStmt
	an  Analysis
	pl  *plan // partition count == current shard count
	// cols are the CTE's public columns, kept so an online rebalance can
	// rebuild the plan at the new shard count.
	cols []string
	mode Mode
	// conns pins one connection per shard; conns[s] is only ever used
	// by shard s's worker goroutine or by the coordinator between waves.
	// A rebalance grows or shrinks the slice between rounds (closers
	// stays index-aligned with it).
	conns   []*dbConn
	closers []func() error
	tp      *shardTermPlan // nil unless the UNTIL is a decomposed aggregate
	tok     string
	ck      *ckptRun
	rt      *roundTrace

	nameSeq atomic.Int64
	// pending[s] lists message tables shard s has not gathered yet
	// (its own compute output plus receive tables routed to it).
	pending    [][]string
	lastGather []int64
	computed   []bool
	rounds     []int
	startRound int
	crossRows  int64

	stats ExecStats
}

// connectShard pins one connection to sh and appends it (with its
// closer) to the run's connection set.
func (r *shardedRun) connectShard(ctx context.Context, sh *SQLoop) error {
	conn, err := sh.db.Conn(ctx)
	if err != nil {
		return err
	}
	c := sh.newConn(conn)
	r.conns = append(r.conns, c)
	r.closers = append(r.closers, func() error {
		c.closeStmts()
		return conn.Close()
	})
	return nil
}

// closeConns releases every connection the run still holds.
func (r *shardedRun) closeConns() {
	for _, cl := range r.closers {
		_ = cl()
	}
	r.conns, r.closers = nil, nil
}

// execSharded runs one iterative CTE across every shard.
func (g *ShardGroup) execSharded(ctx context.Context, cte *sqlparser.LoopCTEStmt, an Analysis, mode Mode, tp *shardTermPlan) (*Result, error) {
	start := time.Now()
	members := g.Shards()
	S := len(members)
	loop0 := g.loopFor(0)

	ck, err := loop0.newCkptRun(cte)
	if err != nil {
		return nil, err
	}
	// A usable group snapshot has exactly one partition table (and round
	// counter) per recorded partition; anything else is discarded. A
	// shard-count mismatch alone is NOT a discard — repartitionSnapshot
	// re-routes the recorded rows under the current topology, which is
	// what makes resume after an online rebalance (or into a group
	// rebuilt at a different size) well-defined.
	if ck.restoring() && (ck.resumed.Partitions < 1 ||
		len(ck.resumed.Tables) != ck.resumed.Partitions ||
		len(ck.resumed.PartRounds) != ck.resumed.Partitions) {
		ck.resumed = nil
	}
	tok := ck.execToken()

	rUser := strings.ToLower(cte.Name)
	rName := rTableName(tok, cte.Name)

	run := &shardedRun{
		g: g, cte: cte, an: an, mode: mode, tp: tp, tok: tok, ck: ck,
		rt:         newRoundTrace(g.tracer, false),
		pending:    make([][]string, S),
		lastGather: make([]int64, S),
		computed:   make([]bool, S),
		rounds:     make([]int, S),
	}
	defer run.closeConns()
	for s, sh := range members {
		if err := run.connectShard(ctx, sh); err != nil {
			return nil, fmt.Errorf("core: shard %d connection: %w", s, err)
		}
	}
	conns := run.conns

	// Stale user-visible objects from a crashed legacy run must not
	// break this one on any shard.
	if err := run.forEach(func(s int) error {
		if _, err := conns[s].runStmt(ctx, dropView(rUser)); err != nil {
			return err
		}
		_, err := conns[s].runStmt(ctx, dropTable(rUser))
		return err
	}); err != nil {
		return nil, err
	}

	var cols []string
	if ck.restoring() {
		cols = ck.resumed.Columns
	} else {
		// Every shard evaluates the full R0 (the seed is tiny next to the
		// iteration) and then keeps only its own partition. Shard 0 runs
		// first so derived column names are settled before the fan-out.
		cols, err = loop0.seedTable(ctx, conns[0], cte, tok, rName, true)
		if err != nil {
			return nil, err
		}
		if err := run.forEach(func(s int) error {
			if s == 0 {
				return nil
			}
			sc, err := loop0.seedTable(ctx, conns[s], cte, tok, rName, true)
			if err != nil {
				return fmt.Errorf("seeding shard %d: %w", s, err)
			}
			if len(sc) != len(cols) {
				return fmt.Errorf("core: shard %d derived %d seed columns, shard 0 derived %d",
					s, len(sc), len(cols))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if len(cols) <= an.DeltaItem {
		return nil, fmt.Errorf("core: CTE %s declares %d columns but the delta is item %d",
			cte.Name, len(cols), an.DeltaItem+1)
	}

	run.cols = cols
	run.pl = newPlan(cte, an, cols, S, tok, !g.opts.DisableMaterialization)
	defer run.cleanup(context.WithoutCancel(ctx))

	if ck.restoring() {
		if ck.resumed.Partitions != S {
			if err := run.repartitionSnapshot(); err != nil {
				return nil, err
			}
		}
		// Adopt the snapshot's epoch if it is ahead (a fresh group object
		// resuming another incarnation's work).
		if e := ck.resumed.Epoch; e > g.epoch.Load() {
			g.epoch.Store(e)
		}
		if err := run.forEach(func(s int) error {
			if err := ck.restoreTable(ctx, conns[s], ck.resumed.Tables[s], true); err != nil {
				return err
			}
			_, err := conns[s].runStmt(ctx, &sqlparser.CreateViewStmt{
				Name: run.pl.rQL, Body: run.localViewBody(s)})
			return err
		}); err != nil {
			return nil, err
		}
		copy(run.rounds, ck.resumed.PartRounds)
		run.startRound = ck.resumed.Round
		run.stats.Iterations = ck.resumed.Round
		ck.markResumed()
	} else {
		if err := run.forEach(func(s int) error {
			for _, st := range run.localPartitionStmts(s) {
				if _, err := conns[s].runStmt(ctx, st); err != nil {
					return fmt.Errorf("partitioning %s on shard %d: %w", cte.Name, s, err)
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := run.forEach(func(s int) error {
		publishAdvisoryView(ctx, conns[s], rUser, run.pl.rQL)
		if run.pl.materialized {
			for _, st := range run.pl.mjoinStmts() {
				if _, err := conns[s].runStmt(ctx, st); err != nil {
					return fmt.Errorf("materializing join on shard %d: %w", s, err)
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	switch mode {
	case ModeSync:
		err = run.driveSync(ctx)
	case ModeAsyncPrio:
		err = run.driveAsync(ctx, true)
	default:
		err = run.driveAsync(ctx, false)
	}
	if err != nil {
		return nil, err
	}

	out, err := run.mergeFinal(ctx)
	if err != nil {
		return nil, err
	}
	run.stats.Mode = mode
	run.stats.Parallelized = true
	run.stats.ShardCount = len(run.conns)
	run.stats.CrossShardRows = run.crossRows
	run.stats.Elapsed = time.Since(start)
	run.stats.Rounds = run.rt.rounds
	ck.finish(&run.stats)
	out.Stats = run.stats
	return out, nil
}

// repartitionSnapshot rewrites a group snapshot taken under a different
// shard count in place for the current topology: every recorded
// partition row is re-routed by its id hash under the current count
// (the same Route the live exchange uses), yielding one partition
// table per current shard. Per-row delta state rides inside the rows
// themselves, so re-routing whole rows preserves the execution state
// exactly.
func (r *shardedRun) repartitionSnapshot() error {
	snap := r.ck.resumed
	S := len(r.conns)
	batches := make([]shard.Batch, 0, len(snap.Tables))
	var cols []string
	for _, ts := range snap.Tables {
		if cols == nil {
			cols = ts.Columns
		}
		rows := make([][]any, len(ts.Rows))
		for i, row := range ts.Rows {
			dec := make([]any, len(row))
			for j, v := range row {
				gv, err := v.Decode()
				if err != nil {
					return fmt.Errorf("core: repartition snapshot %s: %w", ts.Name, err)
				}
				dec[j] = gv
			}
			rows[i] = dec
		}
		batches = append(batches, shard.Batch{Columns: ts.Columns, Rows: rows})
	}
	all, err := shard.Merge(batches...)
	if err != nil {
		return fmt.Errorf("core: repartition snapshot: %w", err)
	}
	if len(all.Columns) == 0 {
		all.Columns = cols
	}
	parts, err := shard.Route(all, 0, S) // column 0 is the partition id
	if err != nil {
		return fmt.Errorf("core: repartition snapshot: %w", err)
	}
	tables := make([]ckpt.TableState, S)
	for s := 0; s < S; s++ {
		ts := ckpt.TableState{Name: r.pl.partName(s), Columns: all.Columns,
			Rows: make([][]ckpt.Value, len(parts[s].Rows))}
		for i, row := range parts[s].Rows {
			enc := make([]ckpt.Value, len(row))
			for j, v := range row {
				ev, err := ckpt.EncodeValue(v)
				if err != nil {
					return fmt.Errorf("core: repartition snapshot: %w", err)
				}
				enc[j] = ev
			}
			ts.Rows[i] = enc
		}
		tables[s] = ts
	}
	snap.Tables = tables
	snap.Partitions = S
	snap.PartRounds = fillRounds(make([]int, S), snap.Round)
	return nil
}

// forEach runs fn concurrently for every shard index and joins the
// errors. Each invocation touches only its own shard's connection and
// its own slice slots, so no locking is needed.
func (r *shardedRun) forEach(fn func(s int) error) error {
	errs := make([]error, len(r.conns))
	var wg sync.WaitGroup
	for s := range r.conns {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// localPartitionStmts is partitionStmts restricted to the one partition
// this shard owns: filter the seeded table down to PARTHASH(id,S)=s,
// drop the full copy, and re-expose the CTE name as a view over the
// local partition alone (the union view of the in-process executor
// would claim rows this shard does not have).
func (r *shardedRun) localPartitionStmts(s int) []sqlparser.Statement {
	pl := r.pl
	partCols := append([]string(nil), pl.cols...)
	if pl.avg {
		partCols = append(partCols, avgSumCol, avgCntCol)
	}
	sel := &sqlparser.Select{
		From:  []sqlparser.TableExpr{tbl(pl.rQL)},
		Where: eq(fn("PARTHASH", col("", pl.idCol), intLit(int64(pl.p))), intLit(int64(s))),
	}
	for _, c := range pl.cols {
		sel.Items = append(sel.Items, item(col("", c), ""))
	}
	if pl.avg {
		sel.Items = append(sel.Items,
			item(litVal(sqltypes.NewFloat(0)), avgSumCol),
			item(litVal(sqltypes.NewFloat(0)), avgCntCol))
	}
	return []sqlparser.Statement{
		dropTable(pl.partName(s)),
		createAnyTable(pl.partName(s), partCols, true),
		insertBody(pl.partName(s), sel),
		dropTable(pl.rQL),
		&sqlparser.CreateViewStmt{Name: pl.rQL, Body: r.localViewBody(s)},
	}
}

// localViewBody selects the public CTE columns from this shard's
// partition table.
func (r *shardedRun) localViewBody(s int) sqlparser.SelectBody {
	sel := &sqlparser.Select{From: []sqlparser.TableExpr{tbl(r.pl.partName(s))}}
	for _, c := range r.pl.cols {
		sel.Items = append(sel.Items, item(col("", c), c))
	}
	return sel
}

// computeShard runs the three Compute steps on shard s (absorb, emit
// messages, reset). It returns the rows changed by the absorb and the
// message table name ("" when the shard emitted nothing).
func (r *shardedRun) computeShard(ctx context.Context, s int, gatherChanged int64) (int64, string, error) {
	c := r.conns[s]
	var changed int64
	hasAbsorb := len(r.pl.valueSets) > 0
	if hasAbsorb {
		res, err := c.runStmt(ctx, r.pl.absorbStmt(s))
		if err != nil {
			return 0, "", fmt.Errorf("compute(absorb) shard %d: %w", s, err)
		}
		changed = res.RowsAffected
	}
	// Quiet-shard fast path (same proof as the in-process executor):
	// after a compute every delta is at the identity; if the preceding
	// gather accepted nothing and the absorb changed nothing, the
	// activity filter would yield an empty message table.
	if hasAbsorb && r.computed[s] && gatherChanged == 0 && changed == 0 {
		return 0, "", nil
	}
	r.computed[s] = true
	msgName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
	if _, err := c.runStmt(ctx, r.pl.messageStmt(s, msgName)); err != nil {
		return 0, "", fmt.Errorf("compute(messages) shard %d: %w", s, err)
	}
	n, ok, err := c.scalar(ctx, sqlparser.FormatDialect(countStmt(msgName), c.dialect))
	if err != nil {
		return 0, "", err
	}
	if !ok || n == 0 {
		if _, err := c.runStmt(ctx, dropTable(msgName)); err != nil {
			return 0, "", err
		}
		msgName = ""
	}
	if _, err := c.runStmt(ctx, r.pl.resetStmt(s)); err != nil {
		return 0, "", fmt.Errorf("compute(reset) shard %d: %w", s, err)
	}
	return changed, msgName, nil
}

// exchange is the cross-shard delta wave: for every shard that emitted
// a message table this cycle, read the rows owned by other shards,
// route them Go-side, ship them through the batch codec and insert them
// as receive tables on their owners. The local table keeps all rows —
// the owner-filtered gather ignores the shipped ones — so no deletes
// are needed.
func (r *shardedRun) exchange(ctx context.Context, round int, msgs []string) error {
	S := len(r.conns)
	any := false
	for _, m := range msgs {
		if m != "" {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	msgCols := []string{"id", "val"}
	if r.pl.avg {
		msgCols = append(msgCols, "cnt")
	}

	// Phase one, parallel per source shard: read outbound rows, route by
	// owner, encode each destination's batch for the wire.
	outbound := make([][][]byte, S)
	durs := make([]time.Duration, S)
	moved := make([]int64, S)
	if err := r.forEach(func(s int) error {
		name := msgs[s]
		if name == "" {
			return nil
		}
		r.pending[s] = append(r.pending[s], name)
		t0 := time.Now()
		sel := &sqlparser.Select{
			From: []sqlparser.TableExpr{tbl(name)},
			Where: &sqlparser.ComparisonExpr{Op: sqltypes.CmpNE,
				Left:  fn("PARTHASH", col("", "id"), intLit(int64(S))),
				Right: intLit(int64(s))},
		}
		for _, c := range msgCols {
			sel.Items = append(sel.Items, item(col("", c), c))
		}
		res, err := r.conns[s].runStmt(ctx, &sqlparser.SelectStmt{Body: sel})
		if err != nil {
			return fmt.Errorf("exchange read on shard %d: %w", s, err)
		}
		if len(res.Rows) == 0 {
			durs[s] = time.Since(t0)
			return nil
		}
		parts, err := shard.Route(shard.Batch{Columns: msgCols, Rows: res.Rows}, 0, S)
		if err != nil {
			return fmt.Errorf("exchange route from shard %d: %w", s, err)
		}
		enc := make([][]byte, S)
		for d := 0; d < S; d++ {
			if d == s || len(parts[d].Rows) == 0 {
				continue
			}
			enc[d] = shard.EncodeBatch(parts[d])
			moved[s] += int64(len(parts[d].Rows))
		}
		outbound[s] = enc
		durs[s] = time.Since(t0)
		return nil
	}); err != nil {
		return err
	}

	// Phase two, parallel per destination shard: decode every inbound
	// batch and materialize it as a receive table for the next gather.
	rx := make([]int, S)
	if err := r.forEach(func(d int) error {
		for s := 0; s < S; s++ {
			if outbound[s] == nil || outbound[s][d] == nil {
				continue
			}
			b, err := shard.DecodeBatch(outbound[s][d])
			if err != nil {
				return fmt.Errorf("exchange decode on shard %d: %w", d, err)
			}
			rxName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
			if err := r.insertBatch(ctx, r.conns[d], rxName, b); err != nil {
				return fmt.Errorf("exchange insert on shard %d: %w", d, err)
			}
			r.pending[d] = append(r.pending[d], rxName)
			rx[d]++
		}
		return nil
	}); err != nil {
		return err
	}

	for s := 0; s < S; s++ {
		r.stats.MessageTables += rx[s]
		r.rt.msgTables(rx[s])
		if moved[s] > 0 {
			r.crossRows += moved[s]
			r.g.metrics.Counter("sqloop_shard_rows_exchanged").Add(moved[s])
			r.g.tracer.Emit(obs.ShardExchange{Round: round, Shard: s,
				Rows: moved[s], Tables: 1, Duration: durs[s]})
		}
	}
	return nil
}

// insertBatch materializes a decoded batch as a table on c.
func (r *shardedRun) insertBatch(ctx context.Context, c *dbConn, name string, b shard.Batch) error {
	if _, err := c.runStmt(ctx, createAnyTable(name, b.Columns, false)); err != nil {
		return err
	}
	const batch = 500
	for lo := 0; lo < len(b.Rows); lo += batch {
		hi := min(lo+batch, len(b.Rows))
		vals := &sqlparser.Values{Rows: make([][]sqlparser.Expr, 0, hi-lo)}
		for _, row := range b.Rows[lo:hi] {
			exprs := make([]sqlparser.Expr, len(row))
			for j, v := range row {
				sv, err := sqltypes.FromGo(v)
				if err != nil {
					return fmt.Errorf("batch value: %w", err)
				}
				exprs[j] = litVal(sv)
			}
			vals.Rows = append(vals.Rows, exprs)
		}
		if _, err := c.runStmt(ctx, &sqlparser.InsertStmt{Table: name, Source: vals}); err != nil {
			return err
		}
	}
	return nil
}

// gatherShard accumulates shard s's pending message tables into its
// partition delta and drops them.
func (r *shardedRun) gatherShard(ctx context.Context, s int) (int64, error) {
	names := r.pending[s]
	if len(names) == 0 {
		return 0, nil
	}
	res, err := r.conns[s].runStmt(ctx, r.pl.gatherStmt(s, names))
	if err != nil {
		return 0, fmt.Errorf("gather shard %d: %w", s, err)
	}
	for _, n := range names {
		if _, err := r.conns[s].runStmt(ctx, dropTable(n)); err != nil {
			return 0, err
		}
	}
	r.pending[s] = nil
	return res.RowsAffected, nil
}

// drainGather delivers every pending message into the partition deltas
// (gathers create no new messages, so one wave suffices). The accepted
// changes are credited to lastGather so the next compute cannot take
// its quiet fast path past them.
func (r *shardedRun) drainGather(ctx context.Context) (int64, error) {
	changes := make([]int64, len(r.conns))
	err := r.forEach(func(s int) error {
		ch, err := r.gatherShard(ctx, s)
		if err != nil {
			return err
		}
		changes[s] = ch
		r.lastGather[s] += ch
		return nil
	})
	var total int64
	for _, c := range changes {
		total += c
	}
	return total, err
}

// pendingEmpty reports whether any shard still has undelivered
// messages.
func (r *shardedRun) pendingEmpty() bool {
	for _, p := range r.pending {
		if len(p) > 0 {
			return false
		}
	}
	return true
}

// maybeRebalance consumes a pending topology request and, between
// rounds, repartitions the working table onto the new shard count:
// drain in-flight messages (the same soft barrier a checkpoint uses),
// read every partition, split/merge the PARTHASH ranges by re-routing
// every row under the new count, ship each bucket through the batch
// codec, swap the group membership (standbys activate on growth,
// trailing shards retire to the standby pool on shrink), rebuild the
// per-partition plan and checkpoint the new topology immediately.
// Reports whether a checkpoint was just written so the caller's
// due-save can skip.
func (r *shardedRun) maybeRebalance(ctx context.Context, round int) (bool, error) {
	S := len(r.conns)
	newS := r.g.takeRebalance(round)
	if newS == 0 || newS == S {
		return false, nil
	}
	if newS < 1 {
		return false, fmt.Errorf("core: cannot rebalance to %d shards", newS)
	}
	start := time.Now()
	if _, err := r.drainGather(ctx); err != nil {
		return false, err
	}

	// Read each partition's complete rows (public columns plus the AVG
	// accumulators), route every row under the new count and encode each
	// (source, destination) bucket for the wire.
	batches := make([]shard.Batch, S)
	if err := r.forEach(func(s int) error {
		res, err := r.conns[s].runStmt(ctx, &sqlparser.SelectStmt{Body: selectStar(r.pl.partName(s))})
		if err != nil {
			return fmt.Errorf("rebalance read on shard %d: %w", s, err)
		}
		batches[s] = shard.Batch{Columns: res.Columns, Rows: res.Rows}
		return nil
	}); err != nil {
		return false, err
	}
	outbound := make([][][]byte, S)
	var moved int64
	for s := 0; s < S; s++ {
		parts, err := shard.Route(batches[s], 0, newS)
		if err != nil {
			return false, fmt.Errorf("rebalance route from shard %d: %w", s, err)
		}
		outbound[s] = make([][]byte, newS)
		for d := 0; d < newS; d++ {
			outbound[s][d] = shard.EncodeBatch(parts[d])
			if d != s {
				moved += int64(len(parts[d].Rows))
			}
		}
	}

	partCols := append([]string(nil), r.pl.cols...)
	if r.pl.avg {
		partCols = append(partCols, avgSumCol, avgCntCol)
	}
	rUser := strings.ToLower(r.cte.Name)

	// Retiring shards shed their working objects before leaving (their
	// rows are already captured in the outbound buckets).
	for s := newS; s < S; s++ {
		c := r.conns[s]
		for _, name := range r.pending[s] {
			if _, err := c.runStmt(ctx, dropTable(name)); err != nil {
				return false, err
			}
		}
		for _, st := range []sqlparser.Statement{
			dropView(rUser), dropView(r.pl.rQL), dropTable(r.pl.rQL),
			dropTable(r.pl.partName(s)), dropTable(mjoinTableName(r.pl.tok, r.cte.Name)),
		} {
			if _, err := c.runStmt(ctx, st); err != nil {
				return false, fmt.Errorf("rebalance retire shard %d: %w", s, err)
			}
		}
	}

	added, _, err := r.g.resize(newS)
	if err != nil {
		return false, err
	}
	if newS < S {
		for _, cl := range r.closers[newS:] {
			_ = cl()
		}
		r.conns = r.conns[:newS]
		r.closers = r.closers[:newS]
	}
	for i, sh := range added {
		if err := r.connectShard(ctx, sh); err != nil {
			return false, fmt.Errorf("core: rebalance shard %d connection: %w", S+i, err)
		}
	}

	// Rebuild the plan at the new partition count; every PARTHASH
	// predicate, gather filter and priority query downstream picks the
	// new count up from here.
	r.pl = newPlan(r.cte, r.an, r.cols, newS, r.tok, !r.g.opts.DisableMaterialization)
	r.pending = make([][]string, newS)
	r.lastGather = make([]int64, newS)
	// A fresh topology disables the quiet-shard fast path for one round:
	// every delta already rides inside the moved rows, and the next
	// message wave must re-derive activity from them.
	r.computed = make([]bool, newS)
	r.rounds = fillRounds(make([]int, newS), round)

	if err := r.forEach(func(d int) error {
		c := r.conns[d]
		fresh := d >= S
		if fresh {
			// A standby may hold stale user-visible objects from earlier
			// runs, like any shard at startup.
			if _, err := c.runStmt(ctx, dropView(rUser)); err != nil {
				return err
			}
			if _, err := c.runStmt(ctx, dropTable(rUser)); err != nil {
				return err
			}
		}
		for _, st := range []sqlparser.Statement{
			dropView(r.pl.rQL), dropTable(r.pl.rQL),
			dropTable(r.pl.partName(d)),
			createAnyTable(r.pl.partName(d), partCols, true),
		} {
			if _, err := c.runStmt(ctx, st); err != nil {
				return fmt.Errorf("rebalance rebuild on shard %d: %w", d, err)
			}
		}
		for s := 0; s < S; s++ {
			b, err := shard.DecodeBatch(outbound[s][d])
			if err != nil {
				return fmt.Errorf("rebalance decode on shard %d: %w", d, err)
			}
			if err := r.insertRows(ctx, c, r.pl.partName(d), b.Rows); err != nil {
				return fmt.Errorf("rebalance insert on shard %d: %w", d, err)
			}
		}
		if _, err := c.runStmt(ctx, &sqlparser.CreateViewStmt{
			Name: r.pl.rQL, Body: r.localViewBody(d)}); err != nil {
			return err
		}
		publishAdvisoryView(ctx, c, rUser, r.pl.rQL)
		if fresh && r.pl.materialized {
			for _, st := range r.pl.mjoinStmts() {
				if _, err := c.runStmt(ctx, st); err != nil {
					return fmt.Errorf("rebalance materializing join on shard %d: %w", d, err)
				}
			}
		}
		return nil
	}); err != nil {
		return false, err
	}

	ep := r.g.epoch.Add(1)
	r.stats.Rebalances++
	r.g.metrics.Counter("sqloop_shard_rebalances_total").Inc()
	r.g.tracer.Emit(obs.ShardRebalance{Round: round, From: S, To: newS,
		Epoch: ep, Rows: moved, Duration: time.Since(start)})

	// Checkpoint the new topology immediately so a crash from here on
	// resumes at the new shard count rather than re-routing again.
	if err := r.saveCkpt(ctx, round); err != nil {
		return false, err
	}
	return true, nil
}

// maybeHandoff offloads the slowest shard's pending delta queue after a
// prioritized cycle: its undelivered owned rows ship to the fastest
// shard, which pre-combines them per id with the aggregate's own
// combine rule (exactly what the straggler's gather would compute), and
// the combined rows ship back as a single message table replacing the
// queue. Correct because the exchange already routed away every
// foreign-owned row when each message table was created — a shard's
// pending queue holds only rows its own gather would read — and the
// gather's combine is associative (MIN/MAX fold, SUM/COUNT add, AVG
// ships as SUM+COUNT).
func (r *shardedRun) maybeHandoff(ctx context.Context, cycle int, durs []time.Duration) error {
	S := len(r.conns)
	if S < 2 {
		return nil
	}
	worst, best := -1, -1
	for s := 0; s < S; s++ {
		if len(r.pending[s]) > 1 && (worst < 0 || durs[s] > durs[worst]) {
			worst = s
		}
	}
	if worst < 0 {
		return nil
	}
	for s := 0; s < S; s++ {
		if s != worst && (best < 0 || durs[s] < durs[best]) {
			best = s
		}
	}
	if best < 0 {
		return nil
	}
	msgCols := []string{"id", "val"}
	if r.pl.avg {
		msgCols = append(msgCols, "cnt")
	}
	batches := make([]shard.Batch, 0, len(r.pending[worst]))
	for _, name := range r.pending[worst] {
		sel := &sqlparser.Select{
			From:  []sqlparser.TableExpr{tbl(name)},
			Where: eq(fn("PARTHASH", col("", "id"), intLit(int64(S))), intLit(int64(worst))),
		}
		for _, c := range msgCols {
			sel.Items = append(sel.Items, item(col("", c), c))
		}
		res, err := r.conns[worst].runStmt(ctx, &sqlparser.SelectStmt{Body: sel})
		if err != nil {
			return fmt.Errorf("handoff read on shard %d: %w", worst, err)
		}
		batches = append(batches, shard.Batch{Columns: msgCols, Rows: res.Rows})
	}
	all, err := shard.Merge(batches...)
	if err != nil {
		return fmt.Errorf("handoff merge: %w", err)
	}
	if len(all.Rows) == 0 {
		return nil
	}

	// Ship to the helper through the codec and combine per id there.
	in, err := shard.DecodeBatch(shard.EncodeBatch(all))
	if err != nil {
		return fmt.Errorf("handoff decode on shard %d: %w", best, err)
	}
	inName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
	if err := r.insertBatch(ctx, r.conns[best], inName, in); err != nil {
		return fmt.Errorf("handoff insert on shard %d: %w", best, err)
	}
	comb := &sqlparser.Select{
		Items:   []sqlparser.SelectItem{item(col("", "id"), "id")},
		From:    []sqlparser.TableExpr{tbl(inName)},
		GroupBy: []sqlparser.Expr{col("", "id")},
	}
	switch r.an.AggName {
	case "MIN", "MAX":
		comb.Items = append(comb.Items, item(fn(r.an.AggName, col("", "val")), "val"))
	default: // SUM, COUNT and AVG all ship additive partials
		comb.Items = append(comb.Items, item(fn("SUM", col("", "val")), "val"))
	}
	if r.pl.avg {
		comb.Items = append(comb.Items, item(fn("SUM", col("", "cnt")), "cnt"))
	}
	res, err := r.conns[best].runStmt(ctx, &sqlparser.SelectStmt{Body: comb})
	if err != nil {
		return fmt.Errorf("handoff combine on shard %d: %w", best, err)
	}
	if _, err := r.conns[best].runStmt(ctx, dropTable(inName)); err != nil {
		return err
	}

	// Ship the combined queue back and swap it in for the old tables.
	out, err := shard.DecodeBatch(shard.EncodeBatch(shard.Batch{Columns: msgCols, Rows: res.Rows}))
	if err != nil {
		return fmt.Errorf("handoff decode on shard %d: %w", worst, err)
	}
	outName := msgTableName(r.pl.tok, r.cte.Name, r.nameSeq.Add(1))
	if err := r.insertBatch(ctx, r.conns[worst], outName, out); err != nil {
		return fmt.Errorf("handoff return on shard %d: %w", worst, err)
	}
	old := r.pending[worst]
	r.pending[worst] = []string{outName}
	for _, name := range old {
		if _, err := r.conns[worst].runStmt(ctx, dropTable(name)); err != nil {
			return err
		}
	}
	r.stats.Handoffs++
	r.g.metrics.Counter("sqloop_shard_handoffs_total").Inc()
	r.g.tracer.Emit(obs.ShardHandoff{Round: cycle, From: worst, To: best,
		Tables: len(old), Rows: int64(len(all.Rows))})
	return nil
}

// termKindString mirrors terminator.kindString for coordinator-emitted
// events.
func (r *shardedRun) termKindString() string {
	switch r.cte.Until.Kind {
	case sqlparser.TermIterations:
		return "iterations"
	case sqlparser.TermUpdates:
		return "updates"
	default:
		return "expr"
	}
}

func (r *shardedRun) emitTermCheck(round int, updated int64, satisfied bool) {
	r.g.tracer.Emit(obs.TerminationCheck{Round: round, Kind: r.termKindString(),
		Updated: updated, Satisfied: satisfied})
}

// checkExprMerged evaluates the decomposed UNTIL aggregate: the same
// single-aggregate query runs on every shard's local partition (through
// the rQL view), the partials merge per §V-D, and the merged value
// feeds the original comparison. Fresh AST nodes are built per check so
// no shared statement tree is ever mutated.
func (r *shardedRun) checkExprMerged(ctx context.Context) (bool, error) {
	aggStmt := func(aggName string, arg sqlparser.Expr, star bool) *sqlparser.SelectStmt {
		fc := &sqlparser.FuncCall{Name: aggName, Star: star}
		if !star {
			fc.Args = []sqlparser.Expr{sqlparser.CloneExpr(arg)}
		}
		sel := &sqlparser.Select{
			Items: []sqlparser.SelectItem{item(fc, "")},
			From:  []sqlparser.TableExpr{&sqlparser.TableName{Name: r.pl.rQL, Alias: r.tp.alias}},
		}
		if r.tp.where != nil {
			sel.Where = sqlparser.CloneExpr(r.tp.where)
		}
		return &sqlparser.SelectStmt{Body: sel}
	}
	runAgg := func(aggName string, arg sqlparser.Expr, star bool) ([]float64, []bool, error) {
		vals := make([]float64, len(r.conns))
		oks := make([]bool, len(r.conns))
		err := r.forEach(func(s int) error {
			c := r.conns[s]
			v, ok, err := c.scalar(ctx, sqlparser.FormatDialect(aggStmt(aggName, arg, star), c.dialect))
			if err != nil {
				return fmt.Errorf("termination check on shard %d: %w", s, err)
			}
			vals[s], oks[s] = v, ok
			return nil
		})
		return vals, oks, err
	}

	var merged float64
	switch r.tp.agg {
	case "AVG":
		// AVG does not merge; ship (SUM, COUNT) and divide at the
		// coordinator, the same decomposition the message path uses.
		sums, soks, err := runAgg("SUM", r.tp.arg, false)
		if err != nil {
			return false, err
		}
		cnts, _, err := runAgg("COUNT", r.tp.arg, false)
		if err != nil {
			return false, err
		}
		var sum, cnt float64
		for s := range sums {
			if soks[s] {
				sum += sums[s]
			}
			cnt += cnts[s]
		}
		if cnt <= 0 {
			return false, nil // AVG over no rows is NULL: not satisfied
		}
		merged = sum / cnt
	case "MIN", "MAX":
		vals, oks, err := runAgg(r.tp.agg, r.tp.arg, false)
		if err != nil {
			return false, err
		}
		found := false
		for s := range vals {
			if !oks[s] {
				continue // NULL on an empty shard contributes nothing
			}
			if !found ||
				(r.tp.agg == "MIN" && vals[s] < merged) ||
				(r.tp.agg == "MAX" && vals[s] > merged) {
				merged = vals[s]
				found = true
			}
		}
		if !found {
			return false, nil // all shards NULL: not satisfied
		}
	default: // SUM, COUNT
		vals, oks, err := runAgg(r.tp.agg, r.tp.arg, r.tp.star)
		if err != nil {
			return false, err
		}
		found := false
		for s := range vals {
			if oks[s] {
				merged += vals[s]
				found = true
			}
		}
		if r.tp.agg == "SUM" && !found {
			return false, nil // SUM over no rows anywhere is NULL
		}
	}
	cmp, err := sqltypes.CompareSQL(r.tp.cmpOp, sqltypes.NewFloat(merged), r.tp.cmpTo)
	if err != nil {
		return false, err
	}
	return cmp.IsTrue(), nil
}

// driveSync is the sharded Synchronous Execution: compute on every
// shard concurrently, barrier, exchange remote deltas, gather on every
// shard concurrently, barrier, then the merged termination check.
func (r *shardedRun) driveSync(ctx context.Context) error {
	term := r.cte.Until
	iters := r.startRound
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if iters >= r.g.opts.MaxIterations {
			return fmt.Errorf("core: iterative CTE %s exceeded %d iterations", r.cte.Name, r.g.opts.MaxIterations)
		}
		S := len(r.conns) // a rebalance changes it between rounds
		iters++
		r.rt.begin(iters)
		var roundChanged int64
		msgs := make([]string, S)
		changes := make([]int64, S)
		durs := make([]time.Duration, S)

		if err := r.forEach(func(s int) error {
			t0 := time.Now()
			ch, msg, err := r.computeShard(ctx, s, r.lastGather[s])
			changes[s], msgs[s], durs[s] = ch, msg, time.Since(t0)
			return err
		}); err != nil {
			return err
		}
		for s := 0; s < S; s++ {
			roundChanged += changes[s]
			if msgs[s] != "" {
				r.stats.MessageTables++
				r.rt.msgTables(1)
			}
			r.rt.task(obs.PartitionDone{Round: iters, Part: s, Phase: "compute",
				Changed: changes[s], Duration: durs[s]})
		}

		if err := r.exchange(ctx, iters, msgs); err != nil {
			return err
		}

		if err := r.forEach(func(s int) error {
			t0 := time.Now()
			ch, err := r.gatherShard(ctx, s)
			changes[s], durs[s] = ch, time.Since(t0)
			return err
		}); err != nil {
			return err
		}
		for s := 0; s < S; s++ {
			roundChanged += changes[s]
			r.lastGather[s] = changes[s]
			r.rt.task(obs.PartitionDone{Round: iters, Part: s, Phase: "gather",
				Changed: changes[s], Duration: durs[s]})
		}

		r.rt.end(iters, roundChanged)
		r.stats.Iterations = iters

		var done bool
		var err error
		switch term.Kind {
		case sqlparser.TermIterations:
			done = int64(iters) >= term.N
		case sqlparser.TermUpdates:
			done = roundChanged <= term.N
		default:
			if done, err = r.checkExprMerged(ctx); err != nil {
				return err
			}
		}
		r.emitTermCheck(iters, roundChanged, done)
		if done {
			return nil
		}
		rebalanced, err := r.maybeRebalance(ctx, iters)
		if err != nil {
			return err
		}
		// Post-gather barrier: every message table has been delivered, so
		// the partition tables are the complete state. A rebalance just
		// checkpointed the new topology itself.
		if !rebalanced && r.ck.due(iters) {
			for x := range r.rounds {
				r.rounds[x] = iters
			}
			if err := r.saveCkpt(ctx, iters); err != nil {
				return err
			}
		}
	}
}

// driveAsync is the sharded Asynchronous Execution: each cycle fuses
// gather-then-compute per shard (all shards concurrent), then exchanges
// remote deltas. With prio set it becomes the prioritized variant: the
// per-shard priority query orders the shards and each shard's exchange
// happens immediately after its own cycle, so high-priority shards see
// the freshest deltas first.
func (r *shardedRun) driveAsync(ctx context.Context, prio bool) error {
	term := r.cte.Until
	iterTarget := term.N
	if iterTarget < 1 {
		iterTarget = 1
	}
	prioQuery := r.g.opts.PriorityQuery
	if prioQuery == "" {
		prioQuery = r.pl.defaultPriorityQuery()
	}
	cycle := r.startRound
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cycle >= r.g.opts.MaxIterations {
			return fmt.Errorf("core: iterative CTE %s exceeded %d iterations", r.cte.Name, r.g.opts.MaxIterations)
		}
		S := len(r.conns) // a rebalance changes it between cycles
		cycle++
		r.rt.begin(cycle)
		var cycleChanged int64
		newMsgs := 0
		changes := make([]int64, S)
		durs := make([]time.Duration, S)

		if prio {
			order, err := r.priorityOrder(ctx, prioQuery)
			if err != nil {
				return err
			}
			// Sequential, in priority order, exchanging after every shard:
			// a later shard's gather sees the earlier shards' fresh deltas
			// within the same cycle.
			for _, s := range order {
				t0 := time.Now()
				gch, err := r.gatherShard(ctx, s)
				if err != nil {
					return err
				}
				eff := gch + r.lastGather[s]
				r.lastGather[s] = 0
				cch, msg, err := r.computeShard(ctx, s, eff)
				if err != nil {
					return err
				}
				changes[s] = gch + cch
				durs[s] = time.Since(t0)
				if msg != "" {
					newMsgs++
					r.stats.MessageTables++
					r.rt.msgTables(1)
					one := make([]string, S)
					one[s] = msg
					if err := r.exchange(ctx, cycle, one); err != nil {
						return err
					}
				}
			}
			if r.g.gopts.Handoff {
				if err := r.maybeHandoff(ctx, cycle, durs); err != nil {
					return err
				}
			}
		} else {
			msgs := make([]string, S)
			if err := r.forEach(func(s int) error {
				t0 := time.Now()
				gch, err := r.gatherShard(ctx, s)
				if err != nil {
					return err
				}
				eff := gch + r.lastGather[s]
				r.lastGather[s] = 0
				cch, msg, err := r.computeShard(ctx, s, eff)
				if err != nil {
					return err
				}
				changes[s], msgs[s], durs[s] = gch+cch, msg, time.Since(t0)
				return nil
			}); err != nil {
				return err
			}
			for s := 0; s < S; s++ {
				if msgs[s] != "" {
					newMsgs++
					r.stats.MessageTables++
					r.rt.msgTables(1)
				}
			}
			if err := r.exchange(ctx, cycle, msgs); err != nil {
				return err
			}
		}

		for s := 0; s < S; s++ {
			cycleChanged += changes[s]
			r.rt.task(obs.PartitionDone{Round: cycle, Part: s, Phase: "pair",
				Changed: changes[s], Duration: durs[s]})
		}
		r.rt.end(cycle, cycleChanged)
		r.stats.Iterations = cycle
		r.rounds = fillRounds(r.rounds, cycle)

		switch term.Kind {
		case sqlparser.TermIterations:
			if int64(cycle) >= iterTarget {
				// Deliver in-flight messages so no accumulated change is
				// silently lost (the Sync method's final gather ran too).
				if _, err := r.drainGather(ctx); err != nil {
					return err
				}
				return nil
			}
		case sqlparser.TermUpdates:
			if term.N == 0 {
				// Quiescence: nothing changed, nothing emitted, nothing in
				// flight — more cycles are provably no-ops.
				if cycleChanged == 0 && newMsgs == 0 && r.pendingEmpty() {
					return nil
				}
			} else {
				drained, err := r.drainGather(ctx)
				if err != nil {
					return err
				}
				total := cycleChanged + drained
				done := total <= term.N
				r.emitTermCheck(cycle, total, done)
				if done {
					return nil
				}
			}
		default: // decomposed TermExpr
			drained, err := r.drainGather(ctx)
			if err != nil {
				return err
			}
			done, err := r.checkExprMerged(ctx)
			if err != nil {
				return err
			}
			r.emitTermCheck(cycle, cycleChanged+drained, done)
			if done {
				return nil
			}
			if cycleChanged+drained == 0 && newMsgs == 0 {
				return fmt.Errorf("core: %s converged without satisfying its UNTIL condition", r.cte.Name)
			}
		}

		rebalanced, err := r.maybeRebalance(ctx, cycle)
		if err != nil {
			return err
		}
		if !rebalanced && r.ck.due(cycle) {
			// Same soft barrier the in-process async executor uses: drain
			// pending messages so the partitions alone carry the state.
			if _, err := r.drainGather(ctx); err != nil {
				return err
			}
			if err := r.saveCkpt(ctx, cycle); err != nil {
				return err
			}
		}
	}
}

// fillRounds sets every shard's completed-round counter (sharded cycles
// advance all shards together).
func fillRounds(rounds []int, n int) []int {
	for i := range rounds {
		rounds[i] = n
	}
	return rounds
}

// priorityOrder evaluates the priority query on every shard's partition
// and returns shard indices in descending priority. Shards whose query
// yields no value sort last but still run — every shard must advance
// every cycle for the global round count to stay meaningful.
func (r *shardedRun) priorityOrder(ctx context.Context, q string) ([]int, error) {
	type sp struct {
		s  int
		p  float64
		ok bool
	}
	sps := make([]sp, len(r.conns))
	if err := r.forEach(func(s int) error {
		text := strings.ReplaceAll(q, "$PART", r.pl.partName(s))
		v, ok, err := r.conns[s].scalar(ctx, text)
		if err != nil {
			return fmt.Errorf("priority query on shard %d: %w", s, err)
		}
		sps[s] = sp{s: s, p: v, ok: ok}
		return nil
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(sps, func(i, j int) bool {
		if sps[i].ok != sps[j].ok {
			return sps[i].ok
		}
		return sps[i].p > sps[j].p
	})
	order := make([]int, len(sps))
	for i, e := range sps {
		order[i] = e.s
	}
	return order, nil
}

// mergeFinal collects every shard's partition onto shard 0 under the
// rQL name and runs the final query there.
func (r *shardedRun) mergeFinal(ctx context.Context) (*Result, error) {
	c0 := r.conns[0]
	if _, err := c0.runStmt(ctx, dropView(r.pl.rQL)); err != nil {
		return nil, err
	}
	if _, err := c0.runStmt(ctx, createAnyTable(r.pl.rQL, r.pl.cols, true)); err != nil {
		return nil, err
	}
	if _, err := c0.runStmt(ctx, insertBody(r.pl.rQL, r.localViewBody(0))); err != nil {
		return nil, err
	}
	for s := 1; s < len(r.conns); s++ {
		res, err := r.conns[s].runStmt(ctx, &sqlparser.SelectStmt{Body: r.localViewBody(s)})
		if err != nil {
			return nil, fmt.Errorf("final merge read from shard %d: %w", s, err)
		}
		if err := r.insertRows(ctx, c0, r.pl.rQL, res.Rows); err != nil {
			return nil, fmt.Errorf("final merge insert from shard %d: %w", s, err)
		}
	}
	final := retargetCTE(r.cte.Final, r.cte, r.tok)
	return c0.runStmt(ctx, &sqlparser.SelectStmt{Body: final})
}

// insertRows batch-inserts driver rows into a table on c.
func (r *shardedRun) insertRows(ctx context.Context, c *dbConn, table string, rows [][]any) error {
	const batch = 500
	for lo := 0; lo < len(rows); lo += batch {
		hi := min(lo+batch, len(rows))
		vals := &sqlparser.Values{Rows: make([][]sqlparser.Expr, 0, hi-lo)}
		for _, row := range rows[lo:hi] {
			exprs := make([]sqlparser.Expr, len(row))
			for j, v := range row {
				sv, err := sqltypes.FromGo(v)
				if err != nil {
					return err
				}
				exprs[j] = litVal(sv)
			}
			vals.Rows = append(vals.Rows, exprs)
		}
		if _, err := c.runStmt(ctx, &sqlparser.InsertStmt{Table: table, Source: vals}); err != nil {
			return err
		}
	}
	return nil
}

// cleanup drops every working object on every shard. KeepTable
// re-publishes the merged result under the user name on shard 0.
func (r *shardedRun) cleanup(ctx context.Context) {
	rUser := strings.ToLower(r.cte.Name)
	_ = r.forEach(func(s int) error {
		c := r.conns[s]
		for _, name := range r.pending[s] {
			_, _ = c.runStmt(ctx, dropTable(name))
		}
		if s == 0 && r.g.opts.KeepTable {
			materializeKeepTable(ctx, c, rUser, r.pl.rQL)
			_, _ = c.runStmt(ctx, dropView(r.pl.rQL))
		} else {
			_, _ = c.runStmt(ctx, dropView(rUser))
			_, _ = c.runStmt(ctx, dropView(r.pl.rQL))
			_, _ = c.runStmt(ctx, dropTable(r.pl.rQL))
		}
		_, _ = c.runStmt(ctx, dropTable(r.pl.partName(s)))
		_, _ = c.runStmt(ctx, dropTable(mjoinTableName(r.pl.tok, r.cte.Name)))
		return nil
	})
}

// saveCkpt writes one group snapshot: every shard's partition table
// (read over that shard's own connection) plus the per-shard round
// counters, under the group-signature key. Callers must have drained
// pending messages first.
func (r *shardedRun) saveCkpt(ctx context.Context, round int) error {
	ck := r.ck
	if ck == nil {
		return nil
	}
	start := time.Now()
	snap := &ckpt.Snapshot{
		Key: ck.key, Query: ck.query, Mode: ck.mode, Engine: ck.s.dsn,
		CTE: ck.cteName, Token: ck.token, Round: round, Partitions: r.pl.p,
		Epoch:      r.g.epoch.Load(),
		PartRounds: append([]int(nil), r.rounds...),
		Columns:    append([]string(nil), r.pl.cols...),
		CreatedAt:  time.Now().UTC(),
	}
	tables := make([]ckpt.TableState, len(r.conns))
	if err := r.forEach(func(s int) error {
		ts, err := ck.readTable(ctx, r.conns[s], r.pl.partName(s))
		if err != nil {
			return err
		}
		tables[s] = ts
		return nil
	}); err != nil {
		return err
	}
	snap.Tables = tables
	n, err := ck.store.Save(snap)
	if err != nil {
		return fmt.Errorf("checkpoint of %s at round %d: %w", ck.cteName, round, err)
	}
	elapsed := time.Since(start)
	r.g.tracer.Emit(obs.Checkpoint{CTE: ck.cteName, Round: round,
		Tables: len(snap.Tables), Bytes: n, Elapsed: elapsed})
	r.g.metrics.Counter("sqloop_checkpoints_total").Inc()
	r.g.metrics.Counter("sqloop_checkpoint_bytes_total").Add(n)
	r.g.metrics.Histogram("sqloop_checkpoint_seconds").Observe(elapsed)
	return nil
}
