package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
)

// TestStmtCacheOnOffResultsIdentical runs the same SSSP computation with
// the statement cache enabled and disabled across every engine profile
// and execution mode: the cache is a pure performance layer, so the fix
// points must match exactly (SSSP converges to a unique fix point even
// under asynchronous schedules).
func TestStmtCacheOnOffResultsIdentical(t *testing.T) {
	want := refSSSP()
	for _, profile := range []string{"pgsim", "mysim", "mariasim"} {
		for _, mode := range allModes {
			t.Run(fmt.Sprintf("%s/%s", profile, mode), func(t *testing.T) {
				cfg, err := engine.Profile(profile)
				if err != nil {
					t.Fatal(err)
				}
				run := func(disable bool) map[int64]float64 {
					t.Helper()
					c := cfg
					opts := Options{Mode: mode, Threads: 3, Partitions: 4, Dialect: cfg.Dialect.String()}
					if disable {
						c.StmtCacheSize = -1
						opts.DisableStmtCache = true
					}
					s := newTestLoopCfg(t, c, opts, false)
					res, err := s.Exec(context.Background(), ssspCTE)
					if err != nil {
						t.Fatalf("disable=%v: %v", disable, err)
					}
					return rowsToMap(t, res)
				}
				on, off := run(false), run(true)
				if len(on) != len(off) || len(on) != len(want) {
					t.Fatalf("node counts: cache on %d, off %d, ref %d", len(on), len(off), len(want))
				}
				for n, v := range on {
					if o := off[n]; v != o {
						t.Errorf("node %d: cache on %v != cache off %v", n, v, o)
					}
					if w := want[n]; math.IsInf(w, 1) != math.IsInf(v, 1) ||
						(!math.IsInf(w, 1) && math.Abs(v-w) > 1e-9) {
						t.Errorf("node %d: distance %v, want %v", n, v, w)
					}
				}
			})
		}
	}
}

// TestIterativeRunHitsStmtCache pins the headline property of this PR:
// steady-state iteration rounds execute without DDL, so round statements
// stay cached and hit after round one.
func TestIterativeRunHitsStmtCache(t *testing.T) {
	eng := engine.New(engine.Config{})
	handle := t.Name()
	driver.RegisterEngine(handle, eng)
	t.Cleanup(func() { driver.UnregisterEngine(handle) })
	s, err := Open(driver.DriverName, driver.InprocDSN(handle), Options{Mode: ModeSingle})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	for _, e := range testGraph {
		if _, err := s.Exec(ctx, fmt.Sprintf(`INSERT INTO edges VALUES (%d, %d, %v)`, e.src, e.dst, e.w)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec(ctx, ssspCTE); err != nil {
		t.Fatal(err)
	}
	st := eng.StmtCacheStats()
	if st.Hits == 0 {
		t.Fatalf("iterative run produced no statement-cache hits: %+v", st)
	}
}
