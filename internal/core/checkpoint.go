package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"sqloop/internal/ckpt"
	"sqloop/internal/obs"
	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// This file connects the executors to internal/ckpt. All snapshot I/O
// goes through engine-neutral SQL on the coordinator connection: the
// middleware can checkpoint any engine it can query, exactly as it can
// execute against any engine it can reach — no storage-format access,
// no engine cooperation.
//
// Snapshots are only taken at round boundaries, where the executors'
// invariants make the visible state self-contained: the terminator has
// just refreshed Rdelta to equal R, the Sync barrier has drained every
// message table, and the async executors drain in-flight messages into
// the partition deltas before saving (the same soft barrier their
// termination checks use). Restoring therefore only needs the table
// contents and the round counter.

// CheckpointInfo describes one stored snapshot (see ckpt.Info).
type CheckpointInfo = ckpt.Info

// ckptRun is one execution's checkpoint context; a nil *ckptRun means
// checkpointing is disabled and every method no-ops.
type ckptRun struct {
	s       *SQLoop
	store   *ckpt.Store
	key     string
	query   string
	mode    string
	cteName string
	every   int
	// token is the execution's working-table namespace token, recorded
	// in every snapshot so a restore can recreate the same table names.
	token string
	// resumed is the snapshot this run restores from; nil for a fresh
	// start. Executors clear it when its shape does not match theirs
	// (e.g. the partition count changed between runs).
	resumed *ckpt.Snapshot
}

// execToken settles the run's namespace token: a restored run adopts
// the snapshot's token (its table names embed it), a fresh run mints a
// new one. Safe on a nil receiver (checkpointing disabled): the token
// is then always fresh.
func (r *ckptRun) execToken() string {
	if r == nil {
		return newExecToken()
	}
	if r.token == "" {
		if r.resumed != nil {
			r.token = r.resumed.Token
			// Pre-token snapshots carry no token; adopting "" would
			// collapse to the un-namespaced legacy names they were
			// written under, which is exactly what restoring them needs.
			if r.token == "" {
				return r.token
			}
		} else {
			r.token = newExecToken()
		}
	}
	return r.token
}

// newCkptRun opens the snapshot store and loads any snapshot matching
// this query under the current mode and engine. Corrupt snapshots are
// discarded, not fatal: a damaged file must not make the query
// unrunnable.
func (s *SQLoop) newCkptRun(cte *sqlparser.LoopCTEStmt) (*ckptRun, error) {
	if !s.opts.Checkpoint.enabled() {
		return nil, nil
	}
	store, err := ckpt.NewStore(s.opts.Checkpoint.Dir)
	if err != nil {
		return nil, err
	}
	query := sqlparser.Format(cte)
	r := &ckptRun{
		s: s, store: store,
		query:   query,
		mode:    s.opts.Mode.String(),
		cteName: cte.Name,
		every:   s.opts.Checkpoint.every(),
	}
	r.key = ckpt.Key(query, r.mode, s.dsn)
	snap, err := store.Load(r.key)
	if err != nil {
		var ce *ckpt.CorruptError
		if !errors.As(err, &ce) {
			return nil, err
		}
		_ = store.Remove(r.key)
		snap = nil
	}
	r.resumed = snap
	return r, nil
}

// due reports whether a checkpoint is scheduled after the given round.
func (r *ckptRun) due(round int) bool {
	return r != nil && round > 0 && round%r.every == 0
}

// restoring reports whether this run starts from a snapshot.
func (r *ckptRun) restoring() bool { return r != nil && r.resumed != nil }

// save reads the named tables through SQL and writes one snapshot.
func (r *ckptRun) save(ctx context.Context, c *dbConn, round, partitions int, partRounds []int, cols, tables []string) error {
	if r == nil {
		return nil
	}
	start := time.Now()
	snap := &ckpt.Snapshot{
		Key: r.key, Query: r.query, Mode: r.mode, Engine: r.s.dsn,
		CTE: r.cteName, Token: r.token, Round: round, Partitions: partitions,
		PartRounds: append([]int(nil), partRounds...),
		Columns:    append([]string(nil), cols...),
		CreatedAt:  time.Now().UTC(),
	}
	for _, t := range tables {
		ts, err := r.readTable(ctx, c, t)
		if err != nil {
			return err
		}
		snap.Tables = append(snap.Tables, ts)
	}
	n, err := r.store.Save(snap)
	if err != nil {
		return fmt.Errorf("checkpoint of %s at round %d: %w", r.cteName, round, err)
	}
	elapsed := time.Since(start)
	r.s.tracer.Emit(obs.Checkpoint{CTE: r.cteName, Round: round,
		Tables: len(snap.Tables), Bytes: n, Elapsed: elapsed})
	r.s.metrics.Counter("sqloop_checkpoints_total").Inc()
	r.s.metrics.Counter("sqloop_checkpoint_bytes_total").Add(n)
	r.s.metrics.Histogram("sqloop_checkpoint_seconds").Observe(elapsed)
	if hook := r.s.opts.AfterCheckpoint; hook != nil {
		if err := hook(); err != nil {
			return fmt.Errorf("after-checkpoint hook at round %d: %w", round, err)
		}
	}
	return nil
}

// readTable captures one table's full contents.
func (r *ckptRun) readTable(ctx context.Context, c *dbConn, name string) (ckpt.TableState, error) {
	res, err := c.runStmt(ctx, &sqlparser.SelectStmt{Body: selectStar(name)})
	if err != nil {
		return ckpt.TableState{}, err
	}
	ts := ckpt.TableState{Name: name, Columns: res.Columns, Rows: make([][]ckpt.Value, len(res.Rows))}
	for i, row := range res.Rows {
		enc := make([]ckpt.Value, len(row))
		for j, v := range row {
			ev, err := ckpt.EncodeValue(v)
			if err != nil {
				return ckpt.TableState{}, fmt.Errorf("checkpoint %s: %w", name, err)
			}
			enc[j] = ev
		}
		ts.Rows[i] = enc
	}
	return ts, nil
}

// restoreTable recreates one table from snapshot state, batching rows
// into VALUES inserts.
func (r *ckptRun) restoreTable(ctx context.Context, c *dbConn, ts ckpt.TableState, pk bool) error {
	if _, err := c.runStmt(ctx, dropTable(ts.Name)); err != nil {
		return err
	}
	if _, err := c.runStmt(ctx, createAnyTable(ts.Name, ts.Columns, pk)); err != nil {
		return err
	}
	const batch = 500
	for lo := 0; lo < len(ts.Rows); lo += batch {
		hi := min(lo+batch, len(ts.Rows))
		vals := &sqlparser.Values{Rows: make([][]sqlparser.Expr, 0, hi-lo)}
		for _, row := range ts.Rows[lo:hi] {
			exprs := make([]sqlparser.Expr, len(row))
			for j, v := range row {
				gv, err := v.Decode()
				if err != nil {
					return fmt.Errorf("restore %s: %w", ts.Name, err)
				}
				sv, err := sqltypes.FromGo(gv)
				if err != nil {
					return fmt.Errorf("restore %s: %w", ts.Name, err)
				}
				exprs[j] = litVal(sv)
			}
			vals.Rows = append(vals.Rows, exprs)
		}
		if _, err := c.runStmt(ctx, &sqlparser.InsertStmt{Table: ts.Name, Source: vals}); err != nil {
			return fmt.Errorf("restore %s: %w", ts.Name, err)
		}
	}
	return nil
}

// markResumed emits the restore event once the executor has committed
// to starting from the snapshot.
func (r *ckptRun) markResumed() {
	r.s.tracer.Emit(obs.Restore{CTE: r.cteName, Round: r.resumed.Round, Key: r.key})
	r.s.metrics.Counter("sqloop_restores_total").Inc()
}

// finish removes the snapshot after a successful completion and stamps
// the stats; a completed query must not resume on its next run.
func (r *ckptRun) finish(stats *ExecStats) {
	if r == nil {
		return
	}
	if r.resumed != nil {
		stats.ResumedFromRound = r.resumed.Round
	}
	_ = r.store.Remove(r.key)
}

// recoverable classifies an execution failure as transport-level (the
// engine connection died; the data survived) rather than semantic.
// ConnLost is duck-typed so core does not import the driver package.
func recoverable(err error) bool {
	var lost interface{ ConnLost() bool }
	if errors.As(err, &lost) && lost.ConnLost() {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// ListCheckpoints lists every snapshot in the configured directory,
// newest first.
func (s *SQLoop) ListCheckpoints() ([]CheckpointInfo, error) {
	if !s.opts.Checkpoint.enabled() {
		return nil, fmt.Errorf("core: checkpointing is not enabled (set Options.Checkpoint.Dir)")
	}
	store, err := ckpt.NewStore(s.opts.Checkpoint.Dir)
	if err != nil {
		return nil, err
	}
	return store.List()
}

// ResumeQuery runs query, requiring a stored snapshot to resume from:
// it errors when no snapshot matches the query under the current mode
// and engine. Exec picks snapshots up automatically; ResumeQuery is for
// callers that must know they are resuming (the CLI after a crash).
func (s *SQLoop) ResumeQuery(ctx context.Context, query string) (*Result, error) {
	if !s.opts.Checkpoint.enabled() {
		return nil, fmt.Errorf("core: checkpointing is not enabled (set Options.Checkpoint.Dir)")
	}
	st, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	cte, ok := st.(*sqlparser.LoopCTEStmt)
	if !ok {
		return nil, fmt.Errorf("core: ResumeQuery requires an iterative or recursive CTE")
	}
	key := ckpt.Key(sqlparser.Format(cte), s.opts.Mode.String(), s.dsn)
	store, err := ckpt.NewStore(s.opts.Checkpoint.Dir)
	if err != nil {
		return nil, err
	}
	snap, err := store.Load(key)
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("core: no checkpoint for this query (key %s)", key)
	}
	return s.execLoopCTE(ctx, cte)
}
