package core

import (
	"strings"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// plan holds everything the parallel executor needs to generate the
// per-partition Compute and Gather statements (§V-B..D).
type plan struct {
	cte  *sqlparser.LoopCTEStmt
	an   Analysis
	cols []string // CTE column names, cols[0] = Rid
	p    int      // partition count
	tok  string   // per-execution namespace token
	rQL  string   // name R resolves to (tokenized view over the partitions)

	valueSets []sqlparser.Assignment // absorb-phase SET list (non-delta items)
	deltaCol  string
	idCol     string

	materialized bool // mjoin in use
	avg          bool // AVG needs (sum, count) message columns
}

// Hidden companion columns for AVG accumulation (§V-D).
const (
	avgSumCol = "sqloop_avg_sum"
	avgCntCol = "sqloop_avg_cnt"
)

// newPlan derives the plan from a successful analysis.
func newPlan(cte *sqlparser.LoopCTEStmt, an Analysis, cols []string, parts int, tok string, materialize bool) *plan {
	pl := &plan{
		cte:          cte,
		an:           an,
		cols:         cols,
		p:            parts,
		tok:          tok,
		rQL:          rTableName(tok, cte.Name),
		deltaCol:     cols[an.DeltaItem],
		idCol:        cols[0],
		materialized: materialize,
		avg:          an.AggName == "AVG",
	}
	step := cte.Step.(*sqlparser.Select)
	for i, it := range step.Items {
		if i == 0 || i == an.DeltaItem {
			continue
		}
		pl.valueSets = append(pl.valueSets, sqlparser.Assignment{
			Column: cols[i],
			Value:  sqlparser.CloneExpr(it.Expr),
		})
	}
	return pl
}

// partName is the partition table for index x.
func (pl *plan) partName(x int) string { return partTableName(pl.tok, pl.cte.Name, x) }

// partitionStmts splits table R into p hash partitions and replaces R
// with a view over their union (§V-B). AVG plans add the hidden
// accumulator columns.
func (pl *plan) partitionStmts() []sqlparser.Statement {
	var stmts []sqlparser.Statement
	partCols := append([]string(nil), pl.cols...)
	if pl.avg {
		partCols = append(partCols, avgSumCol, avgCntCol)
	}
	for x := 0; x < pl.p; x++ {
		stmts = append(stmts, dropTable(pl.partName(x)))
		stmts = append(stmts, createAnyTable(pl.partName(x), partCols, true))
		sel := &sqlparser.Select{
			From:  []sqlparser.TableExpr{tbl(pl.rQL)},
			Where: eq(fn("PARTHASH", col("", pl.idCol), intLit(int64(pl.p))), intLit(int64(x))),
		}
		for _, c := range pl.cols {
			sel.Items = append(sel.Items, item(col("", c), ""))
		}
		if pl.avg {
			sel.Items = append(sel.Items,
				item(litVal(sqltypes.NewFloat(0)), avgSumCol),
				item(litVal(sqltypes.NewFloat(0)), avgCntCol))
		}
		stmts = append(stmts, insertBody(pl.partName(x), sel))
	}
	stmts = append(stmts, dropTable(pl.rQL))
	stmts = append(stmts, &sqlparser.CreateViewStmt{Name: pl.rQL, Body: pl.unionBody()})
	return stmts
}

// unionBody selects the public CTE columns from every partition.
func (pl *plan) unionBody() sqlparser.SelectBody {
	bodies := make([]sqlparser.SelectBody, pl.p)
	for x := 0; x < pl.p; x++ {
		sel := &sqlparser.Select{From: []sqlparser.TableExpr{tbl(pl.partName(x))}}
		for _, c := range pl.cols {
			sel.Items = append(sel.Items, item(col("", c), c))
		}
		bodies[x] = sel
	}
	return unionAll(bodies)
}

// mjoinStmts materialize the constant part of the join (§V-B): the
// relation table projected to (src_id, dst_id, used attributes), indexed
// on src_id so Compute's outgoing-message join is a lookup.
func (pl *plan) mjoinStmts() []sqlparser.Statement {
	name := mjoinTableName(pl.tok, pl.cte.Name)
	sel := &sqlparser.Select{
		From: []sqlparser.TableExpr{tblAs(pl.an.EdgeTable, pl.an.EdgeAlias)},
		Items: []sqlparser.SelectItem{
			item(col(pl.an.EdgeAlias, pl.an.EdgeSrcCol), "src_id"),
			item(col(pl.an.EdgeAlias, pl.an.EdgeDstCol), "dst_id"),
		},
	}
	for _, c := range pl.edgeAttrsUsed() {
		sel.Items = append(sel.Items, item(col(pl.an.EdgeAlias, c), c))
	}
	return []sqlparser.Statement{
		dropTable(name),
		&sqlparser.CreateTableStmt{Name: name, AsSelect: sel, Unlogged: true},
		&sqlparser.CreateIndexStmt{Name: name + "_src", Table: name, Columns: []string{"src_id"}},
	}
}

// edgeAttrsUsed lists edge columns (other than the join keys) referenced
// by the aggregate input or the predicate.
func (pl *plan) edgeAttrsUsed() []string {
	seen := map[string]bool{}
	var out []string
	visit := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			cr, ok := x.(*sqlparser.ColumnRef)
			if !ok || !strings.EqualFold(cr.Table, pl.an.EdgeAlias) {
				return true
			}
			lc := strings.ToLower(cr.Name)
			if lc == strings.ToLower(pl.an.EdgeSrcCol) || lc == strings.ToLower(pl.an.EdgeDstCol) {
				return true
			}
			if !seen[lc] {
				seen[lc] = true
				out = append(out, cr.Name)
			}
			return true
		})
	}
	visit(pl.an.MsgExpr)
	if pl.an.Pred != nil {
		visit(pl.an.Pred)
	}
	return out
}

// rewriteEdgeRefs retargets references to the edge alias at the
// materialized join alias "mj".
func (pl *plan) rewriteEdgeRefs(e sqlparser.Expr) sqlparser.Expr {
	return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		if cr, ok := x.(*sqlparser.ColumnRef); ok && strings.EqualFold(cr.Table, pl.an.EdgeAlias) {
			return &sqlparser.ColumnRef{Table: "mj", Name: cr.Name}
		}
		return nil
	})
}

// absorbStmt is phase one of a Compute task: fold the delta into the
// value columns using the user's own update expressions, evaluated on
// the partition table under the user's alias for R.
func (pl *plan) absorbStmt(x int) sqlparser.Statement {
	return &sqlparser.UpdateStmt{
		Table: pl.partName(x),
		Alias: pl.an.TargetAlias,
		Sets:  pl.valueSets,
	}
}

// activityFilter restricts message emission to rows whose delta is not
// the identity (rows with nothing new contribute nothing; skipping them
// is what makes sparse workloads like SSSP cheap, §V-D/E). For MIN/MAX
// plans it additionally requires the delta to have won the absorb — the
// DAIC improvement rule: a delta that did not improve the value carries
// no information the value has not already propagated, and without this
// filter selective algorithms would re-broadcast settled values forever.
func (pl *plan) activityFilter() sqlparser.Expr {
	n := pl.an.NeighborAlias
	filter := sqlparser.Expr(&sqlparser.ComparisonExpr{
		Op:    sqltypes.CmpNE,
		Left:  col(n, pl.deltaCol),
		Right: litVal(pl.an.DeltaDefault),
	})
	if vc := pl.absorbedValueCol(); vc != "" {
		filter = and(filter, eq(col(n, vc), col(n, pl.deltaCol)))
	}
	return filter
}

// absorbedValueCol returns, for selective aggregates (MIN/MAX), the
// value column whose update expression folds the delta in (e.g.
// Distance = LEAST(Distance, Delta)); empty when not applicable.
func (pl *plan) absorbedValueCol() string {
	if pl.an.AggName != "MIN" && pl.an.AggName != "MAX" {
		return ""
	}
	for _, set := range pl.valueSets {
		refsDelta := false
		sqlparser.WalkExpr(set.Value, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok && strings.EqualFold(cr.Name, pl.deltaCol) {
				refsDelta = true
			}
			return true
		})
		if refsDelta {
			return set.Column
		}
	}
	return ""
}

// messageStmt builds the CREATE TABLE for partition x's outgoing
// messages: per destination id, the partial aggregate of h over x's
// active rows (§V-C step one).
func (pl *plan) messageStmt(x int, msgName string) sqlparser.Statement {
	n := pl.an.NeighborAlias
	var from sqlparser.TableExpr
	var dstExpr sqlparser.Expr
	var valExpr sqlparser.Expr
	var hExpr sqlparser.Expr // aggregate input, for AVG's count column
	pred := pl.an.Pred

	if pl.materialized {
		from = &sqlparser.JoinExpr{
			Type:  sqlparser.JoinInner,
			Left:  tblAs(pl.partName(x), n),
			Right: tblAs(mjoinTableName(pl.tok, pl.cte.Name), "mj"),
			On:    eq(col(n, pl.idCol), col("mj", "src_id")),
		}
		dstExpr = col("mj", "dst_id")
		valExpr = pl.rewriteEdgeRefs(pl.an.MsgExpr)
		hExpr = pl.rewriteEdgeRefs(pl.an.Agg.Args[0])
		if pred != nil {
			pred = pl.rewriteEdgeRefs(pred)
		}
	} else {
		from = &sqlparser.JoinExpr{
			Type:  sqlparser.JoinInner,
			Left:  tblAs(pl.partName(x), n),
			Right: tblAs(pl.an.EdgeTable, pl.an.EdgeAlias),
			On:    eq(col(n, pl.idCol), col(pl.an.EdgeAlias, pl.an.EdgeSrcCol)),
		}
		dstExpr = col(pl.an.EdgeAlias, pl.an.EdgeDstCol)
		valExpr = sqlparser.CloneExpr(pl.an.MsgExpr)
		hExpr = sqlparser.CloneExpr(pl.an.Agg.Args[0])
		if pred != nil {
			pred = sqlparser.CloneExpr(pred)
		}
	}

	sel := &sqlparser.Select{
		From:    []sqlparser.TableExpr{from},
		Where:   and(pl.activityFilter(), pred),
		GroupBy: []sqlparser.Expr{dstExpr},
		Items:   []sqlparser.SelectItem{item(dstExpr, "id")},
	}
	if pl.avg {
		// AVG cannot ship partial averages; ship (sum, count) per §V-D.
		sel.Items = append(sel.Items,
			item(fn("SUM", hExpr), "val"),
			item(fn("COUNT", sqlparser.CloneExpr(hExpr)), "cnt"))
	} else {
		sel.Items = append(sel.Items, item(valExpr, "val"))
	}
	return &sqlparser.CreateTableStmt{Name: msgName, AsSelect: sel, Unlogged: true}
}

// resetStmt is phase three of a Compute task: reset the delta column to
// the aggregate identity (and the AVG accumulators to zero).
func (pl *plan) resetStmt(x int) sqlparser.Statement {
	upd := &sqlparser.UpdateStmt{
		Table: pl.partName(x),
		Sets:  []sqlparser.Assignment{{Column: pl.deltaCol, Value: litVal(pl.an.DeltaDefault)}},
		Where: &sqlparser.ComparisonExpr{
			Op:    sqltypes.CmpNE,
			Left:  col("", pl.deltaCol),
			Right: litVal(pl.an.DeltaDefault),
		},
	}
	if pl.avg {
		upd.Sets = append(upd.Sets,
			sqlparser.Assignment{Column: avgSumCol, Value: litVal(sqltypes.NewFloat(0))},
			sqlparser.Assignment{Column: avgCntCol, Value: litVal(sqltypes.NewFloat(0))})
		upd.Where = nil // accumulators may be dirty even when delta is clean
	}
	return upd
}

// gatherStmt updates partition x's delta column from the listed message
// tables (§V-C step two): one statement unioning every unread message
// table, filtered to x's keys, grouped, then accumulated into the delta.
func (pl *plan) gatherStmt(x int, msgTables []string) sqlparser.Statement {
	union := make([]sqlparser.SelectBody, len(msgTables))
	for i, m := range msgTables {
		union[i] = selectStar(m)
	}
	inner := &sqlparser.SubqueryTable{Body: unionAll(union), Alias: "allmsg"}
	agg := &sqlparser.Select{
		From: []sqlparser.TableExpr{inner},
		Where: eq(fn("PARTHASH", col("allmsg", "id"), intLit(int64(pl.p))),
			intLit(int64(x))),
		GroupBy: []sqlparser.Expr{col("allmsg", "id")},
		Items:   []sqlparser.SelectItem{item(col("allmsg", "id"), "id")},
	}
	// Combine partials across message tables per the aggregate (§V-D):
	// SUM for SUM/COUNT/AVG components, MIN/MAX for MIN/MAX.
	switch pl.an.AggName {
	case "MIN":
		agg.Items = append(agg.Items, item(fn("MIN", col("allmsg", "val")), "val"))
	case "MAX":
		agg.Items = append(agg.Items, item(fn("MAX", col("allmsg", "val")), "val"))
	default:
		agg.Items = append(agg.Items, item(fn("SUM", col("allmsg", "val")), "val"))
	}
	if pl.avg {
		agg.Items = append(agg.Items, item(fn("SUM", col("allmsg", "cnt")), "cnt"))
	}

	t := pl.an.TargetAlias
	upd := &sqlparser.UpdateStmt{
		Table: pl.partName(x),
		Alias: t,
		From:  []sqlparser.TableExpr{&sqlparser.SubqueryTable{Body: agg, Alias: "m"}},
		Where: eq(col(t, pl.idCol), col("m", "id")),
	}
	delta := col(t, pl.deltaCol)
	mval := col("m", "val")
	switch pl.an.AggName {
	case "SUM", "COUNT":
		upd.Sets = []sqlparser.Assignment{{
			Column: pl.deltaCol,
			Value:  &sqlparser.BinaryExpr{Op: sqltypes.OpAdd, Left: delta, Right: mval},
		}}
	case "MIN", "MAX":
		// Label-correcting prune: a candidate that does not beat the
		// absorbed value can never affect the fix point; accepting it
		// would only revive the partition and re-broadcast settled
		// values (ties ping-pong forever on unit-weight graphs).
		incoming := sqlparser.Expr(mval)
		if vc := pl.absorbedValueCol(); vc != "" {
			op := sqltypes.CmpLT
			if pl.an.AggName == "MAX" {
				op = sqltypes.CmpGT
			}
			incoming = &sqlparser.CaseExpr{
				Whens: []sqlparser.CaseWhen{{
					Cond:   &sqlparser.ComparisonExpr{Op: op, Left: mval, Right: col(t, vc)},
					Result: mval,
				}},
				Else: litVal(pl.an.DeltaDefault),
			}
		}
		comb := "LEAST"
		if pl.an.AggName == "MAX" {
			comb = "GREATEST"
		}
		upd.Sets = []sqlparser.Assignment{{Column: pl.deltaCol, Value: fn(comb, delta, incoming)}}
	case "AVG":
		newSum := &sqlparser.BinaryExpr{Op: sqltypes.OpAdd, Left: col(t, avgSumCol), Right: mval}
		newCnt := &sqlparser.BinaryExpr{Op: sqltypes.OpAdd, Left: col(t, avgCntCol), Right: col("m", "cnt")}
		upd.Sets = []sqlparser.Assignment{
			{Column: avgSumCol, Value: newSum},
			{Column: avgCntCol, Value: newCnt},
			{Column: pl.deltaCol, Value: &sqlparser.CaseExpr{
				Whens: []sqlparser.CaseWhen{{
					Cond: &sqlparser.ComparisonExpr{Op: sqltypes.CmpGT,
						Left:  sqlparser.CloneExpr(newCnt),
						Right: litVal(sqltypes.NewFloat(0))},
					Result: &sqlparser.BinaryExpr{Op: sqltypes.OpDiv,
						Left:  sqlparser.CloneExpr(newSum),
						Right: sqlparser.CloneExpr(newCnt)},
				}},
				Else: litVal(pl.an.DeltaDefault),
			}},
		}
	}
	return upd
}

// keepStmts re-materialize the CTE's final contents as a real table
// under the user-visible name (for Options.KeepTable) before the
// partitions are dropped.
func (pl *plan) keepStmts() []sqlparser.Statement {
	user := strings.ToLower(pl.cte.Name)
	stmts := []sqlparser.Statement{dropView(pl.rQL)}
	if user != pl.rQL {
		stmts = append(stmts, dropView(user), dropTable(user))
	}
	stmts = append(stmts, &sqlparser.CreateTableStmt{Name: user, AsSelect: pl.unionBody(), Unlogged: true})
	return stmts
}

// cleanupStmts drop every working object (message tables are handled by
// the registry).
func (pl *plan) cleanupStmts(keep bool) []sqlparser.Statement {
	var stmts []sqlparser.Statement
	if keep {
		stmts = append(stmts, pl.keepStmts()...)
	} else {
		stmts = append(stmts, dropView(pl.rQL))
	}
	for x := 0; x < pl.p; x++ {
		stmts = append(stmts, dropTable(pl.partName(x)))
	}
	stmts = append(stmts, dropTable(mjoinTableName(pl.tok, pl.cte.Name)))
	return stmts
}

// defaultPriorityQuery derives the AsyncP priority function from the
// aggregate when the user supplies none (§V-E): total pending change for
// accumulative aggregates, closest frontier for MIN, largest for MAX.
func (pl *plan) defaultPriorityQuery() string {
	part := "$PART"
	delta := pl.deltaCol
	identity := sqlparser.FormatExpr(litVal(pl.an.DeltaDefault))
	switch pl.an.AggName {
	case "MIN":
		return "SELECT 0 - MIN(" + delta + ") FROM " + part + " WHERE " + delta + " != " + identity
	case "MAX":
		return "SELECT MAX(" + delta + ") FROM " + part + " WHERE " + delta + " != " + identity
	default:
		return "SELECT SUM(ABS(" + delta + ")) FROM " + part + " WHERE " + delta + " != " + identity
	}
}
