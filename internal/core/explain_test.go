package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestExplainQuery(t *testing.T) {
	s := newTestLoop(t, Options{Mode: ModeAuto}, true)
	tests := []struct {
		q        string
		kind     string
		mode     Mode
		parallel bool
	}{
		{`SELECT 1`, "statement", ModeSingle, false},
		{`WITH RECURSIVE f(n, pn) AS (VALUES (0, 1) UNION ALL SELECT n + pn, n FROM f WHERE n < 10) SELECT * FROM f`,
			"recursive", ModeSingle, false},
		{fmt.Sprintf(pageRankCTE, 5), "iterative", ModeAsync, true},
		{`WITH ITERATIVE c(id, v) AS (VALUES (1, 1.0) ITERATE SELECT id, v * 2 FROM c UNTIL 3 ITERATIONS) SELECT * FROM c`,
			"iterative", ModeSingle, false},
	}
	for _, tt := range tests {
		ex, err := s.ExplainQuery(tt.q)
		if err != nil {
			t.Fatalf("ExplainQuery(%.40q): %v", tt.q, err)
		}
		if ex.Kind != tt.kind || ex.Mode != tt.mode || ex.Analysis.Parallelizable != tt.parallel {
			t.Errorf("ExplainQuery(%.40q) = %+v, want kind=%s mode=%v parallel=%v",
				tt.q, ex, tt.kind, tt.mode, tt.parallel)
		}
	}
	ex, err := s.ExplainQuery(fmt.Sprintf(pageRankCTE, 5))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Analysis.AggName != "SUM" || ex.Analysis.EdgeTable != "edges" {
		t.Errorf("analysis = %+v", ex.Analysis)
	}
	if !strings.Contains(ex.Termination, "5 iterations") {
		t.Errorf("termination = %q", ex.Termination)
	}
	if _, err := s.ExplainQuery("SELECT FROM"); err == nil {
		t.Error("bad SQL must error")
	}
}

func TestContextCancellation(t *testing.T) {
	for _, mode := range []Mode{ModeSingle, ModeSync, ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 2, Partitions: 4}, true)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				// An effectively unbounded run: cancellation must stop it.
				_, err := s.Exec(ctx, fmt.Sprintf(pageRankCTE, 1_000_000))
				done <- err
			}()
			time.Sleep(50 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("cancelled run returned nil error")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled run did not stop")
			}
			// The instance stays usable afterwards.
			if _, err := s.Exec(context.Background(), `SELECT COUNT(*) FROM edges`); err != nil {
				t.Fatalf("instance unusable after cancellation: %v", err)
			}
		})
	}
}
