package core

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqloop/internal/obs"
)

// snapshotKeeper copies every snapshot file out of dir as checkpoints
// are taken, so a test can put one back after the successful run has
// removed it — simulating the on-disk state of a crashed process.
type snapshotKeeper struct {
	dir   string
	files map[string][]byte
}

func newSnapshotKeeper(dir string) *snapshotKeeper {
	return &snapshotKeeper{dir: dir, files: map[string][]byte{}}
}

// Emit implements obs.Tracer: on the first Checkpoint event the store
// file exists (the event is emitted after Save), so capture it.
func (k *snapshotKeeper) Emit(ev obs.Event) {
	if _, ok := ev.(obs.Checkpoint); !ok {
		return
	}
	if len(k.files) > 0 {
		return // keep the first (lowest-round) snapshot
	}
	paths, _ := filepath.Glob(filepath.Join(k.dir, "*.ckpt"))
	for _, p := range paths {
		if b, err := os.ReadFile(p); err == nil {
			k.files[filepath.Base(p)] = b
		}
	}
}

// restore writes the captured snapshot files back into dir.
func (k *snapshotKeeper) restore(t *testing.T) {
	t.Helper()
	if len(k.files) == 0 {
		t.Fatal("no snapshot was captured")
	}
	for name, b := range k.files {
		if err := os.WriteFile(filepath.Join(k.dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// rankMap indexes a (Node, Rank) result set by node.
func rankMap(t *testing.T, res *Result) map[int64]float64 {
	t.Helper()
	out := map[int64]float64{}
	for _, row := range res.Rows {
		out[row[0].(int64)] = row[1].(float64)
	}
	return out
}

func sameRanks(t *testing.T, want, got map[int64]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row counts differ: want %d, got %d", len(want), len(got))
	}
	for n, w := range want {
		g, ok := got[n]
		if !ok {
			t.Fatalf("node %d missing from resumed result", n)
		}
		if math.Abs(w-g) > 1e-9 {
			t.Fatalf("node %d: want %g, got %g", n, w, g)
		}
	}
}

// checkpointResume runs query to completion with checkpointing on, puts
// the first snapshot back, resumes, and requires the resumed run to
// match the uninterrupted one. Deterministic queries only: round-based
// PageRank for the barriered modes, fix-point SSSP for the async ones
// (an iteration-capped async run is schedule-dependent by design, so
// only a schedule-independent fix point can be compared exactly).
func checkpointResume(t *testing.T, mode Mode, query string, every, wantIters int) {
	dir := t.TempDir()
	keeper := newSnapshotKeeper(dir)
	rec := &obs.Recorder{}
	opts := Options{
		Mode:       mode,
		Partitions: 4,
		Threads:    2,
		Observer:   obs.Multi(rec, keeper),
		Checkpoint: CheckpointOptions{Dir: dir, EveryRounds: every},
	}
	s := newTestLoop(t, opts, true)
	ctx := context.Background()

	res, err := s.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumedFromRound != 0 {
		t.Fatalf("fresh run reports ResumedFromRound = %d", res.Stats.ResumedFromRound)
	}
	if n := rec.Count("checkpoint"); n < 1 {
		t.Fatalf("no checkpoint events were emitted")
	}
	// A completed run must not leave a snapshot behind.
	left, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(left) != 0 {
		t.Fatalf("snapshot survived a successful run: %v", left)
	}
	want := rankMap(t, res)

	keeper.restore(t)
	res2, err := s.ResumeQuery(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.ResumedFromRound < 1 {
		t.Fatalf("ResumedFromRound = %d, want >= 1", res2.Stats.ResumedFromRound)
	}
	if wantIters > 0 && res2.Stats.Iterations != wantIters {
		t.Fatalf("resumed Iterations = %d, want %d", res2.Stats.Iterations, wantIters)
	}
	if rec.Count("restore") != 1 {
		t.Fatalf("restore events = %d, want 1", rec.Count("restore"))
	}
	sameRanks(t, want, rankMap(t, res2))
}

func TestCheckpointResumeSingle(t *testing.T) {
	checkpointResume(t, ModeSingle, fmt.Sprintf(pageRankCTE, 6), 2, 6)
}
func TestCheckpointResumeSync(t *testing.T) {
	checkpointResume(t, ModeSync, fmt.Sprintf(pageRankCTE, 6), 2, 6)
}
func TestCheckpointResumeAsync(t *testing.T) {
	checkpointResume(t, ModeAsync, ssspCTE, 1, 0)
}
func TestCheckpointResumeAsyncPrio(t *testing.T) {
	checkpointResume(t, ModeAsyncPrio, ssspCTE, 1, 0)
}

func TestCheckpointRecursiveResume(t *testing.T) {
	dir := t.TempDir()
	keeper := newSnapshotKeeper(dir)
	opts := Options{
		Observer:   keeper,
		Checkpoint: CheckpointOptions{Dir: dir, EveryRounds: 1},
	}
	s := newTestLoop(t, opts, false)
	ctx := context.Background()
	query := `
WITH RECURSIVE reach(Node) AS (
  VALUES (1)
  UNION
  SELECT dst FROM reach, edges WHERE reach.Node = edges.src
)
SELECT Node FROM reach ORDER BY Node`

	res, err := s.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(res.Rows)

	keeper.restore(t)
	res2, err := s.ResumeQuery(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.ResumedFromRound < 1 {
		t.Fatalf("ResumedFromRound = %d, want >= 1", res2.Stats.ResumedFromRound)
	}
	if got := fmt.Sprint(res2.Rows); got != want {
		t.Fatalf("resumed rows differ:\nwant %s\ngot  %s", want, got)
	}
}

func TestCheckpointListAndMissing(t *testing.T) {
	dir := t.TempDir()
	keeper := newSnapshotKeeper(dir)
	opts := Options{
		Mode:       ModeSingle,
		Observer:   keeper,
		Checkpoint: CheckpointOptions{Dir: dir, EveryRounds: 1},
	}
	s := newTestLoop(t, opts, true)
	ctx := context.Background()
	query := fmt.Sprintf(pageRankCTE, 4)

	// No snapshot yet: ResumeQuery must refuse rather than silently
	// start over.
	if _, err := s.ResumeQuery(ctx, query); err == nil ||
		!strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("ResumeQuery without snapshot: err = %v", err)
	}

	if _, err := s.Exec(ctx, query); err != nil {
		t.Fatal(err)
	}
	keeper.restore(t)

	infos, err := s.ListCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("ListCheckpoints returned %d entries, want 1", len(infos))
	}
	if infos[0].CTE != "PageRank" || infos[0].Round < 1 {
		t.Fatalf("unexpected checkpoint info: %+v", infos[0])
	}

	// Plain Exec must also pick the snapshot up (transparent recovery).
	res, err := s.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumedFromRound < 1 {
		t.Fatalf("Exec ignored the stored snapshot (ResumedFromRound = %d)", res.Stats.ResumedFromRound)
	}
}

func TestCheckpointDisabledErrors(t *testing.T) {
	s := newTestLoop(t, Options{}, true)
	if _, err := s.ListCheckpoints(); err == nil {
		t.Fatal("ListCheckpoints with checkpointing disabled did not error")
	}
	if _, err := s.ResumeQuery(context.Background(), fmt.Sprintf(pageRankCTE, 2)); err == nil {
		t.Fatal("ResumeQuery with checkpointing disabled did not error")
	}
}
