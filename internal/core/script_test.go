package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"sqloop/internal/sqlparser"
)

func TestGenerateScriptEquivalence(t *testing.T) {
	// The generated hand-written script must produce the same result as
	// the iterative CTE in single mode.
	const iters = 8
	cteQuery := fmt.Sprintf(pageRankCTE, iters)

	s := newTestLoop(t, Options{Mode: ModeSingle}, true)
	ctx := context.Background()
	want, err := s.Exec(ctx, cteQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantMap := rowsToMap(t, want)

	script, err := GenerateScript(cteQuery, 0, sqlparser.DialectGeneric)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ExecScript(ctx, script)
	if err != nil {
		t.Fatalf("script failed: %v\n%s", err, script)
	}
	gotMap := rowsToMap(t, got)
	if len(gotMap) != len(wantMap) {
		t.Fatalf("script rows = %d, CTE rows = %d", len(gotMap), len(wantMap))
	}
	for n, w := range wantMap {
		if math.Abs(gotMap[n]-w) > 1e-9 {
			t.Errorf("node %d: script %v vs CTE %v", n, gotMap[n], w)
		}
	}
}

func TestGenerateScriptLineCounts(t *testing.T) {
	// The paper's usability claim (§VI-D): the CTE is 20-25 lines, the
	// equivalent script exceeds 100-200 lines.
	cteQuery := fmt.Sprintf(pageRankCTE, 100)
	script, err := GenerateScript(cteQuery, 0, sqlparser.DialectPGSim)
	if err != nil {
		t.Fatal(err)
	}
	cteLines := len(strings.Split(strings.TrimSpace(cteQuery), "\n"))
	scriptLines := len(strings.Split(strings.TrimSpace(script), "\n"))
	if cteLines > 25 {
		t.Errorf("CTE is %d lines, paper says 20-25", cteLines)
	}
	if scriptLines < 200 {
		t.Errorf("script is %d lines, paper says more than 200", scriptLines)
	}
	t.Logf("CTE %d lines vs script %d lines", cteLines, scriptLines)
}

func TestGenerateScriptDialects(t *testing.T) {
	cteQuery := fmt.Sprintf(pageRankCTE, 2)
	pg, err := GenerateScript(cteQuery, 0, sqlparser.DialectPGSim)
	if err != nil {
		t.Fatal(err)
	}
	my, err := GenerateScript(cteQuery, 0, sqlparser.DialectMySim)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pg, "UPDATE pagerank SET") || !strings.Contains(pg, " FROM ") {
		t.Errorf("pgsim script lacks UPDATE...FROM:\n%s", pg[:400])
	}
	if !strings.Contains(my, "UPDATE pagerank AS") == false && !strings.Contains(my, "JOIN") {
		t.Errorf("mysim script lacks UPDATE...JOIN")
	}
	// The paper: "we also needed to manually change the syntax for some
	// SQL statements" — the two dialects must actually differ.
	if pg == my {
		t.Error("dialect scripts are identical")
	}
}

func TestGenerateScriptErrors(t *testing.T) {
	if _, err := GenerateScript(`SELECT 1`, 5, sqlparser.DialectGeneric); err == nil {
		t.Error("non-CTE input must error")
	}
	q := `WITH ITERATIVE r(id, v) AS (VALUES (1, 1.0) ITERATE SELECT id, v * 2 FROM r UNTIL 0 UPDATES) SELECT * FROM r`
	if _, err := GenerateScript(q, 0, sqlparser.DialectGeneric); err == nil {
		t.Error("UNTIL 0 UPDATES without an iteration count must error")
	}
	if _, err := GenerateScript(q, 4, sqlparser.DialectGeneric); err != nil {
		t.Errorf("explicit iteration count should work: %v", err)
	}
}
