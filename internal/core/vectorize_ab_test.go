package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"sqloop/internal/engine"
)

// TestVectorizeOnOffResultsIdentical runs the SSSP matrix (every
// engine backend × execution mode) with vectorized batch execution
// enabled and disabled. Vectorization is a pure performance layer on
// top of compiled programs: fix points and row sets must match
// exactly.
func TestVectorizeOnOffResultsIdentical(t *testing.T) {
	want := refSSSP()
	for _, profile := range []string{"pgsim", "mysim", "mariasim"} {
		for _, mode := range allModes {
			t.Run(fmt.Sprintf("%s/%s", profile, mode), func(t *testing.T) {
				cfg, err := engine.Profile(profile)
				if err != nil {
					t.Fatal(err)
				}
				run := func(disable bool) map[int64]float64 {
					t.Helper()
					c := cfg
					c.DisableVectorize = disable
					opts := Options{
						Mode: mode, Threads: 3, Partitions: 4,
						Dialect: cfg.Dialect.String(), DisableVectorize: disable,
					}
					s := newTestLoopCfg(t, c, opts, false)
					res, err := s.Exec(context.Background(), ssspCTE)
					if err != nil {
						t.Fatalf("disable=%v: %v", disable, err)
					}
					return rowsToMap(t, res)
				}
				on, off := run(false), run(true)
				if len(on) != len(off) || len(on) != len(want) {
					t.Fatalf("node counts: vectorize on %d, off %d, ref %d", len(on), len(off), len(want))
				}
				for n, v := range on {
					if o := off[n]; v != o {
						t.Errorf("node %d: vectorize on %v != vectorize off %v", n, v, o)
					}
					if w := want[n]; math.IsInf(w, 1) != math.IsInf(v, 1) ||
						(!math.IsInf(w, 1) && math.Abs(v-w) > 1e-9) {
						t.Errorf("node %d: distance %v, want %v", n, v, w)
					}
				}
			})
		}
	}
}

// TestVectorizeOnOffRecursiveIdentical covers the semi-naive WITH
// RECURSIVE path under the same A/B switch (connected components over
// an undirected reachability closure).
func TestVectorizeOnOffRecursiveIdentical(t *testing.T) {
	const query = `
WITH RECURSIVE reach(Node) AS (
  VALUES (1)
  UNION
  SELECT dst FROM reach, edges WHERE reach.Node = edges.src
)
SELECT Node FROM reach ORDER BY Node`
	run := func(disable bool) string {
		t.Helper()
		cfg := engine.Config{DisableVectorize: disable}
		s := newTestLoopCfg(t, cfg, Options{DisableVectorize: disable}, false)
		res, err := s.Exec(context.Background(), query)
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		return fmt.Sprint(res.Rows)
	}
	on, off := run(false), run(true)
	if on != off {
		t.Fatalf("recursive results differ:\nvectorize on:  %s\nvectorize off: %s", on, off)
	}
	if on == "[]" {
		t.Fatal("reachability returned no rows")
	}
}
