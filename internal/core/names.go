package core

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// Working-table naming. All internal tables carry the sqloop_ prefix so
// they never collide with user tables. Each execution additionally
// namespaces its working tables with a per-execution token so two
// concurrent executions of same-named CTEs cannot clobber each other's
// state; an empty token collapses every name to the historical layout
// (R and Rdelta under user-visible names, §III-B), which is what
// GenerateScript emits and what pre-token checkpoints restore to.

// newExecToken mints the per-execution namespace token. It is a
// variable so tests can pin a deterministic token.
var newExecToken = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("c%d", tokenFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var tokenFallback atomic.Int64

// namePrefix is the shared sqloop_<cte>_[<tok>_] prefix of every
// internal working table.
func namePrefix(tok, cte string) string {
	if tok == "" {
		return "sqloop_" + strings.ToLower(cte) + "_"
	}
	return "sqloop_" + strings.ToLower(cte) + "_" + tok + "_"
}

// rTableName is the physical table (or view, in parallel mode) the CTE
// name resolves to during execution. With no token it is the
// user-visible lower-cased CTE name itself.
func rTableName(tok, cte string) string {
	if tok == "" {
		return strings.ToLower(cte)
	}
	return namePrefix(tok, cte) + "r"
}

func tmpTableName(tok, cte string) string { return namePrefix(tok, cte) + "tmp" }

func deltaTableName(tok, cte string) string {
	if tok == "" {
		return strings.ToLower(cte) + "delta"
	}
	return namePrefix(tok, cte) + "delta"
}

func mjoinTableName(tok, cte string) string  { return namePrefix(tok, cte) + "mjoin" }
func workTableName(tok, cte string) string   { return namePrefix(tok, cte) + "work" }
func nextTableName(tok, cte string) string   { return namePrefix(tok, cte) + "next" }
func seedScratchName(tok, cte string) string { return namePrefix(tok, cte) + "seed" }

func partTableName(tok, cte string, i int) string {
	return fmt.Sprintf("%spt%d", namePrefix(tok, cte), i)
}
func msgTableName(tok, cte string, seq int64) string {
	return fmt.Sprintf("%smsg%d", namePrefix(tok, cte), seq)
}

// retargetCTE deep-copies body with references to the CTE's
// user-visible names (R and Rdelta) redirected at this execution's
// tokenized working tables. With an empty token both renames are
// no-ops by construction.
func retargetCTE(body sqlparser.SelectBody, cte *sqlparser.LoopCTEStmt, tok string) sqlparser.SelectBody {
	out := renameTableRefs(body, cte.Name, rTableName(tok, cte.Name))
	if tok != "" {
		out = renameTableRefs(out, strings.ToLower(cte.Name)+"delta", deltaTableName(tok, cte.Name))
	}
	return out
}

// --- tiny AST builders used by the plan generator ---

func tbl(name string) *sqlparser.TableName { return &sqlparser.TableName{Name: name} }

func tblAs(name, alias string) *sqlparser.TableName {
	return &sqlparser.TableName{Name: name, Alias: alias}
}

func col(table, name string) *sqlparser.ColumnRef {
	return &sqlparser.ColumnRef{Table: table, Name: name}
}

func intLit(v int64) *sqlparser.Literal {
	return &sqlparser.Literal{Val: sqltypes.NewInt(v)}
}

func litVal(v sqltypes.Value) *sqlparser.Literal { return &sqlparser.Literal{Val: v} }

func eq(l, r sqlparser.Expr) *sqlparser.ComparisonExpr {
	return &sqlparser.ComparisonExpr{Op: sqltypes.CmpEQ, Left: l, Right: r}
}

func and(l, r sqlparser.Expr) sqlparser.Expr {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return &sqlparser.LogicalExpr{Op: sqlparser.LogicAnd, Left: l, Right: r}
}

func fn(name string, args ...sqlparser.Expr) *sqlparser.FuncCall {
	return &sqlparser.FuncCall{Name: name, Args: args}
}

func item(e sqlparser.Expr, alias string) sqlparser.SelectItem {
	return sqlparser.SelectItem{Expr: e, Alias: alias}
}

func starItem() sqlparser.SelectItem { return sqlparser.SelectItem{Star: true} }

// selectStar builds SELECT * FROM <table>.
func selectStar(table string) *sqlparser.Select {
	return &sqlparser.Select{
		Items: []sqlparser.SelectItem{starItem()},
		From:  []sqlparser.TableExpr{tbl(table)},
	}
}

// unionAll folds bodies into a left-deep UNION ALL tree.
func unionAll(bodies []sqlparser.SelectBody) sqlparser.SelectBody {
	out := bodies[0]
	for _, b := range bodies[1:] {
		out = &sqlparser.SetOp{Left: out, Right: b, All: true}
	}
	return out
}

// dropTable / dropView build DROP statements with IF EXISTS.
func dropTable(name string) sqlparser.Statement {
	return &sqlparser.DropStmt{Kind: sqlparser.DropTable, Name: name, IfExists: true}
}

func dropView(name string) sqlparser.Statement {
	return &sqlparser.DropStmt{Kind: sqlparser.DropView, Name: name, IfExists: true}
}

// createAnyTable builds CREATE TABLE name (c0 ANY [PRIMARY KEY], ...)
// with the first column as primary key when pk is true. SQLoop declares
// CTE working tables with ANY columns because the engine infers value
// kinds at runtime (§IV-B: the middleware cannot know seed types before
// running R0).
func createAnyTable(name string, cols []string, pk bool) sqlparser.Statement {
	defs := make([]sqlparser.ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = sqlparser.ColumnDef{Name: c, Type: sqltypes.TypeAny, PrimaryKey: pk && i == 0}
	}
	return &sqlparser.CreateTableStmt{Name: name, Columns: defs, Unlogged: true}
}

// insertBody builds INSERT INTO table <body>.
func insertBody(table string, body sqlparser.SelectBody) sqlparser.Statement {
	return &sqlparser.InsertStmt{Table: table, Source: body}
}

// renameTableRefs returns a deep copy of body with every reference to
// fromName (as a FROM table) retargeted to toName, keeping the original
// alias so column qualifiers keep resolving; a reference without an
// alias gets the old name as its alias.
func renameTableRefs(body sqlparser.SelectBody, fromName, toName string) sqlparser.SelectBody {
	return sqlparser.RewriteBodyTables(body, func(tn *sqlparser.TableName) sqlparser.TableExpr {
		if !strings.EqualFold(tn.Name, fromName) {
			return nil
		}
		alias := tn.Alias
		if alias == "" {
			alias = tn.Name
		}
		return &sqlparser.TableName{Name: toName, Alias: alias}
	})
}

// columnNamesOf asks the engine for a table's column names via a
// zero-row probe (SQLoop has no engine-specific catalog access).
func columnNamesOf(ctx context.Context, c *dbConn, table string) ([]string, error) {
	sel := selectStar(table)
	lim := int64(0)
	sel.Limit = &lim
	res, err := c.runStmt(ctx, &sqlparser.SelectStmt{Body: sel})
	if err != nil {
		return nil, err
	}
	return res.Columns, nil
}
