package core

// Differential conformance suite for sharded execution: the same
// iterative CTE runs on one instance and on a shard group, and the
// final result sets must match BIT-IDENTICALLY — same columns, same row
// order (the finals sort on the unique key), same Go types, same
// values. Only schedule-independent fix points qualify: SSSP (MIN over
// path sums), connected components (MIN label propagation) and a
// PageRank variant on a DAG whose weights, damping factor and seed are
// dyadic rationals, so every float operation is exact and SUM order
// cannot matter.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/obs"
)

// newTestShardGroup builds a ShardGroup of n fresh embedded engines of
// the named profile. The group borrows the shards (own = false); their
// lifecycle belongs to t.Cleanup.
func newTestShardGroup(t *testing.T, profile string, n int, opts Options) *ShardGroup {
	t.Helper()
	cfg, err := engine.Profile(profile)
	if err != nil {
		t.Fatal(err)
	}
	opts.Dialect = cfg.Dialect.String()
	shards := make([]*SQLoop, n)
	for i := range shards {
		eng := engine.New(cfg)
		handle := fmt.Sprintf("%s-shard%d-%p", strings.ReplaceAll(t.Name(), "/", "_"), i, &shards)
		driver.RegisterEngine(handle, eng)
		t.Cleanup(func() { driver.UnregisterEngine(handle) })
		s, err := Open(driver.DriverName, driver.InprocDSN(handle), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		shards[i] = s
	}
	g, err := NewShardGroup(shards, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// shardEdge is one weighted directed edge of a conformance graph.
type shardEdge struct {
	src, dst int64
	w        float64
}

// diffGraph has two weakly-connected components, cycles and enough
// diameter that every fix point below needs at least three rounds.
var diffGraph = []shardEdge{
	{1, 2, 1}, {2, 3, 1}, {3, 4, 2}, {4, 5, 1}, {5, 6, 3},
	{6, 2, 1}, {1, 7, 10}, {7, 6, 1}, {3, 8, 2}, {8, 9, 1},
	{9, 10, 1}, {10, 8, 4},
	{20, 21, 1}, {21, 22, 2}, {22, 20, 1}, // separate component
}

// diffDAG is a layered DAG whose out-degrees are all powers of two, so
// the 1/outdeg edge weights are dyadic rationals and PageRank-style
// accumulation is exact in binary floating point.
var diffDAG = []shardEdge{
	{1, 2, 0}, {1, 3, 0},
	{2, 4, 0}, {2, 5, 0}, {3, 5, 0}, {3, 6, 0},
	{4, 7, 0}, {5, 7, 0}, {5, 8, 0}, {6, 8, 0},
	{7, 9, 0}, {7, 10, 0}, {8, 10, 0},
	{9, 11, 0}, {10, 11, 0}, {10, 12, 0},
}

// loadShardFixtures creates the conformance relations through exec so
// the same statements hit the single instance and (broadcast) every
// shard: edges (weighted, directed), biedges (both directions, weight
// 0, for label propagation) and dag (out-degree-normalized dyadic
// weights).
func loadShardFixtures(t *testing.T, exec func(string) (*Result, error)) {
	t.Helper()
	must := func(q string) {
		t.Helper()
		if _, err := exec(q); err != nil {
			t.Fatalf("fixture %q: %v", q, err)
		}
	}
	must(`CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`)
	must(`CREATE TABLE biedges (src BIGINT, dst BIGINT, weight DOUBLE)`)
	must(`CREATE TABLE dag (src BIGINT, dst BIGINT, weight DOUBLE)`)
	var rows, birows []string
	nodes := map[int64]bool{}
	for _, e := range diffGraph {
		rows = append(rows, fmt.Sprintf("(%d, %d, %g)", e.src, e.dst, e.w))
		birows = append(birows,
			fmt.Sprintf("(%d, %d, 0.0)", e.src, e.dst),
			fmt.Sprintf("(%d, %d, 0.0)", e.dst, e.src))
		nodes[e.src], nodes[e.dst] = true, true
	}
	// Self-loops make synchronous min-propagation monotone: without
	// them a bipartite component's deltas oscillate between its two
	// color classes forever and UNTIL 0 UPDATES never quiesces.
	for n := range nodes {
		birows = append(birows, fmt.Sprintf("(%d, %d, 0.0)", n, n))
	}
	must(`INSERT INTO edges VALUES ` + strings.Join(rows, ", "))
	must(`INSERT INTO biedges VALUES ` + strings.Join(birows, ", "))
	outdeg := map[int64]int{}
	for _, e := range diffDAG {
		outdeg[e.src]++
	}
	var dagRows []string
	for _, e := range diffDAG {
		dagRows = append(dagRows, fmt.Sprintf("(%d, %d, %g)", e.src, e.dst, 1.0/float64(outdeg[e.src])))
	}
	must(`INSERT INTO dag VALUES ` + strings.Join(dagRows, ", "))
}

// The conformance queries. Every final sorts on the unique key so row
// order is part of the bit-identity contract.

const shardSSSP = `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT Node, Distance FROM sssp ORDER BY Node`

const shardCC = `
WITH ITERATIVE cc(Node, Label, Delta) AS (
  SELECT src, src + 0.0, src + 0.0
  FROM (SELECT src FROM biedges UNION SELECT dst AS src FROM biedges) AS alledges
  GROUP BY src
  ITERATE
  SELECT cc.Node,
         LEAST(cc.Label, cc.Delta),
         COALESCE(MIN(Neighbor.Delta + Links.weight), Infinity)
  FROM cc
  LEFT JOIN biedges AS Links ON cc.Node = Links.dst
  LEFT JOIN cc AS Neighbor ON Neighbor.Node = Links.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY cc.Node
  UNTIL 0 UPDATES
)
SELECT Node, Label FROM cc ORDER BY Node`

const shardDAGRank = `
WITH ITERATIVE dagrank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.25
  FROM (SELECT src FROM dag UNION SELECT dst AS src FROM dag) AS alledges
  GROUP BY src
  ITERATE
  SELECT dagrank.Node,
         COALESCE(dagrank.Rank + dagrank.Delta, 0.25),
         COALESCE(0.5 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM dagrank
  LEFT JOIN dag AS IncomingEdges ON dagrank.Node = IncomingEdges.dst
  LEFT JOIN dagrank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY dagrank.Node
  UNTIL 0 UPDATES
)
SELECT Node, Rank + Delta AS Rank FROM dagrank ORDER BY Node`

// shardDAGRankExpr is the same fix point terminated by a decomposable
// aggregate UNTIL, exercising the cross-shard termination merge.
const shardDAGRankExpr = `
WITH ITERATIVE dagrank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.25
  FROM (SELECT src FROM dag UNION SELECT dst AS src FROM dag) AS alledges
  GROUP BY src
  ITERATE
  SELECT dagrank.Node,
         COALESCE(dagrank.Rank + dagrank.Delta, 0.25),
         COALESCE(0.5 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM dagrank
  LEFT JOIN dag AS IncomingEdges ON dagrank.Node = IncomingEdges.dst
  LEFT JOIN dagrank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY dagrank.Node
  UNTIL (SELECT MAX(dagrank.Delta) FROM dagrank) < 0.0000001
)
SELECT Node, Rank + Delta AS Rank FROM dagrank ORDER BY Node`

// requireIdenticalRows compares two results for bit identity: columns,
// row count, row order, and the exact Go type and value of every cell.
func requireIdenticalRows(t *testing.T, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Columns, got.Columns) {
		t.Fatalf("columns differ: want %v, got %v", want.Columns, got.Columns)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts differ: want %d, got %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			w, g := want.Rows[i][j], got.Rows[i][j]
			if reflect.TypeOf(w) != reflect.TypeOf(g) || !reflect.DeepEqual(w, g) {
				t.Fatalf("row %d col %d: want %T(%v), got %T(%v)", i, j, w, w, g, g)
			}
		}
	}
}

// singleNodeReference runs the query on one instance in ModeSingle.
func singleNodeReference(t *testing.T, profile, query string) *Result {
	t.Helper()
	g := newTestShardGroup(t, profile, 1, Options{Mode: ModeSingle})
	loadShardFixtures(t, func(q string) (*Result, error) {
		return g.Exec(context.Background(), q)
	})
	res, err := g.Exec(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedDifferential is the conformance matrix: every storage
// profile x execution mode x shard count x query must reproduce the
// single-node ModeSingle result bit for bit.
func TestShardedDifferential(t *testing.T) {
	queries := map[string]string{
		"sssp":        shardSSSP,
		"cc":          shardCC,
		"dagrank":     shardDAGRank,
		"dagrankExpr": shardDAGRankExpr,
	}
	profiles := []string{"pgsim", "mysim", "mariasim"}
	modes := []Mode{ModeSync, ModeAsync, ModeAsyncPrio}
	for _, profile := range profiles {
		t.Run(profile, func(t *testing.T) {
			for name, query := range queries {
				want := singleNodeReference(t, profile, query)
				for _, mode := range modes {
					for _, n := range []int{1, 2, 4} {
						t.Run(fmt.Sprintf("%s/%s/%dshards", name, mode, n), func(t *testing.T) {
							g := newTestShardGroup(t, profile, n, Options{Mode: mode})
							ctx := context.Background()
							loadShardFixtures(t, func(q string) (*Result, error) {
								return g.Exec(ctx, q)
							})
							res, err := g.Exec(ctx, query)
							if err != nil {
								t.Fatal(err)
							}
							requireIdenticalRows(t, want, res)
							if n > 1 {
								if res.Stats.ShardCount != n {
									t.Errorf("ShardCount = %d, want %d", res.Stats.ShardCount, n)
								}
								if !res.Stats.Parallelized {
									t.Error("sharded run did not report Parallelized")
								}
								if res.Stats.FallbackReason != "" {
									t.Errorf("sharded run fell back: %s", res.Stats.FallbackReason)
								}
							} else if res.Stats.ShardCount != 1 {
								t.Errorf("single-shard group ShardCount = %d, want 1", res.Stats.ShardCount)
							}
						})
					}
				}
			}
		})
	}
}

// TestShardedCrossShardTraffic pins the observability contract: a
// multi-shard run over a connected graph must actually exchange rows,
// report them in ExecStats and the metrics registry, and emit
// shard_exchange events.
func TestShardedCrossShardTraffic(t *testing.T) {
	rec := &obs.Recorder{}
	g := newTestShardGroup(t, "pgsim", 4, Options{Mode: ModeSync, Observer: rec})
	ctx := context.Background()
	loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
	res, err := g.Exec(ctx, shardSSSP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CrossShardRows == 0 {
		t.Error("CrossShardRows = 0 for a connected graph on 4 shards")
	}
	if rec.Count("shard_exchange") == 0 {
		t.Error("no shard_exchange events were emitted")
	}
	snap := g.Metrics().Snapshot()
	if snap.Counters["sqloop_shard_rows_exchanged"] != res.Stats.CrossShardRows {
		t.Errorf("metric sqloop_shard_rows_exchanged = %d, want %d",
			snap.Counters["sqloop_shard_rows_exchanged"], res.Stats.CrossShardRows)
	}
	if rec.Count("exec_start") != 1 || rec.Count("exec_end") != 1 {
		t.Errorf("exec bracket events: start=%d end=%d, want 1/1",
			rec.Count("exec_start"), rec.Count("exec_end"))
	}
	if rec.Count("round_end") != res.Stats.Iterations {
		t.Errorf("round_end events = %d, want %d", rec.Count("round_end"), res.Stats.Iterations)
	}
}

// TestShardedFallbacks pins the downgrade paths: recursive CTEs,
// ModeSingle and non-decomposable UNTIL conditions all run whole on
// shard 0 and still return correct results.
func TestShardedFallbacks(t *testing.T) {
	ctx := context.Background()

	t.Run("recursive", func(t *testing.T) {
		g := newTestShardGroup(t, "pgsim", 2, Options{})
		loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
		res, err := g.Exec(ctx, `
WITH RECURSIVE reach(Node) AS (
  VALUES (1)
  UNION
  SELECT dst FROM reach, edges WHERE reach.Node = edges.src
)
SELECT Node FROM reach ORDER BY Node`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ShardCount != 1 {
			t.Errorf("recursive CTE ShardCount = %d, want 1", res.Stats.ShardCount)
		}
		// Nodes reachable from 1 in diffGraph: the whole first component.
		if len(res.Rows) != 10 {
			t.Errorf("reach returned %d rows, want 10", len(res.Rows))
		}
	})

	t.Run("undecomposable-until", func(t *testing.T) {
		rec := &obs.Recorder{}
		g := newTestShardGroup(t, "pgsim", 2, Options{Mode: ModeSync, Observer: rec})
		loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
		// DISTINCT inside the UNTIL aggregate blocks the cross-shard
		// merge (COUNT DISTINCT does not decompose) but not the
		// single-node parallel plan.
		query := strings.Replace(shardDAGRankExpr,
			"(SELECT MAX(dagrank.Delta) FROM dagrank) < 0.0000001",
			"(SELECT COUNT(DISTINCT dagrank.Delta) FROM dagrank) < 2", 1)
		res, err := g.Exec(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ShardCount != 1 {
			t.Errorf("ShardCount = %d, want 1 after termination fallback", res.Stats.ShardCount)
		}
		if res.Stats.FallbackReason == "" {
			t.Error("fallback reason missing from stats")
		}
		if rec.Count("fallback") == 0 {
			t.Error("no fallback event emitted for undecomposable UNTIL")
		}
	})
}

// TestShardedBroadcastErrors pins the broadcast contract: a statement
// that fails on any shard reports which shard failed.
func TestShardedBroadcastErrors(t *testing.T) {
	g := newTestShardGroup(t, "pgsim", 2, Options{})
	ctx := context.Background()
	if _, err := g.Exec(ctx, `SELECT * FROM nope`); err == nil ||
		!strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("broadcast error = %v, want shard-indexed error", err)
	}
}

// TestShardedCheckpointResume runs a sharded execution with
// checkpointing, puts the first snapshot back after the clean run has
// removed it (the crashed-process simulation of the single-node suite),
// and requires the resumed sharded run to restore every shard's
// partition and still match the single-node result bit for bit.
func TestShardedCheckpointResume(t *testing.T) {
	want := singleNodeReference(t, "pgsim", shardSSSP)
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		for _, n := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/%dshards", mode, n), func(t *testing.T) {
				dir := t.TempDir()
				keeper := newSnapshotKeeper(dir)
				rec := &obs.Recorder{}
				g := newTestShardGroup(t, "pgsim", n, Options{
					Mode:       mode,
					Observer:   obs.Multi(rec, keeper),
					Checkpoint: CheckpointOptions{Dir: dir, EveryRounds: 1},
				})
				ctx := context.Background()
				loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })

				res, err := g.Exec(ctx, shardSSSP)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.ResumedFromRound != 0 {
					t.Fatalf("fresh run reports ResumedFromRound = %d", res.Stats.ResumedFromRound)
				}
				if rec.Count("checkpoint") < 1 {
					t.Fatal("no checkpoint events were emitted")
				}
				requireIdenticalRows(t, want, res)

				keeper.restore(t)
				res2, err := g.Exec(ctx, shardSSSP)
				if err != nil {
					t.Fatal(err)
				}
				if res2.Stats.ResumedFromRound < 1 {
					t.Fatalf("ResumedFromRound = %d, want >= 1", res2.Stats.ResumedFromRound)
				}
				if res2.Stats.ShardCount != n {
					t.Fatalf("resumed ShardCount = %d, want %d", res2.Stats.ShardCount, n)
				}
				if rec.Count("restore") != 1 {
					t.Fatalf("restore events = %d, want 1", rec.Count("restore"))
				}
				requireIdenticalRows(t, want, res2)
			})
		}
	}
}
