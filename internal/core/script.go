package core

import (
	"fmt"
	"strings"

	"sqloop/internal/sqlparser"
)

// GenerateScript renders the multi-statement SQL script a user would
// have to write by hand to emulate an iterative CTE without SQLoop —
// the paper's §VI-D baseline ("SQL scripts in most cases were more than
// 200 lines ... SQLoop queries were composed by only 20-25 lines").
//
// The script unrolls a fixed number of iterations, because plain SQL has
// no loop construct: each iteration materializes Ri into a temporary
// table, merges it back by primary key and drops it. Value- or
// count-based termination conditions cannot be expressed this way — the
// exact limitation the paper's iterative CTEs remove — so the iteration
// count must be supplied (for `UNTIL n ITERATIONS` it is taken from the
// query).
func GenerateScript(query string, iterations int, dialect sqlparser.Dialect) (string, error) {
	st, err := sqlparser.Parse(query)
	if err != nil {
		return "", err
	}
	cte, ok := st.(*sqlparser.LoopCTEStmt)
	if !ok || cte.Kind != sqlparser.CTEIterative {
		return "", fmt.Errorf("core: GenerateScript requires an iterative CTE")
	}
	if err := validateCTE(cte); err != nil {
		return "", err
	}
	if cte.Until.Kind == sqlparser.TermIterations {
		iterations = int(cte.Until.N)
	}
	if iterations <= 0 {
		return "", fmt.Errorf("core: the unrolled script needs a positive iteration count")
	}
	if len(cte.Columns) == 0 {
		return "", fmt.Errorf("core: GenerateScript requires declared CTE columns")
	}

	// The hand-written script uses the legacy un-namespaced names: it is
	// meant to be read (and run) by a human, not raced concurrently.
	rName := strings.ToLower(cte.Name)
	tmpName := tmpTableName("", cte.Name)
	var sb strings.Builder
	emit := func(st sqlparser.Statement) {
		sb.WriteString(sqlparser.FormatDialect(st, dialect))
		sb.WriteString(";\n")
	}

	sb.WriteString("-- Hand-written equivalent of the iterative CTE " + cte.Name + ",\n")
	sb.WriteString("-- unrolled for " + fmt.Sprint(iterations) + " iterations (plain SQL cannot loop).\n")
	emit(dropTable(rName))
	emit(createAnyTable(rName, cte.Columns, true))
	emit(insertBody(rName, cte.Seed))

	upd := &sqlparser.UpdateStmt{
		Table: rName,
		Where: eq(col(rName, cte.Columns[0]), col("t", cte.Columns[0])),
		From:  []sqlparser.TableExpr{tblAs(tmpName, "t")},
	}
	for i := 1; i < len(cte.Columns); i++ {
		upd.Sets = append(upd.Sets, sqlparser.Assignment{
			Column: cte.Columns[i],
			Value:  col("t", cte.Columns[i]),
		})
	}
	for i := 1; i <= iterations; i++ {
		fmt.Fprintf(&sb, "-- iteration %d\n", i)
		emit(dropTable(tmpName))
		step := renameTableRefs(cte.Step, cte.Name, rName)
		// The merge below addresses the temporary table's columns by the
		// CTE's names, so alias Ri's projections accordingly.
		if sel, ok := step.(*sqlparser.Select); ok && len(sel.Items) == len(cte.Columns) {
			for j := range sel.Items {
				sel.Items[j].Alias = cte.Columns[j]
			}
		}
		emit(&sqlparser.CreateTableStmt{Name: tmpName, AsSelect: step, Unlogged: true})
		emit(upd)
	}
	emit(dropTable(tmpName))
	sb.WriteString("-- final query\n")
	emit(&sqlparser.SelectStmt{Body: renameTableRefs(cte.Final, cte.Name, rName)})
	return sb.String(), nil
}
