package core

import (
	"fmt"
	"math"
	"strings"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
)

// Analysis is the outcome of SQLoop's query analysis (§V-A): whether the
// iterative part qualifies for partitioned execution and, if so, every
// piece the plan generator needs.
type Analysis struct {
	// Parallelizable reports whether the partitioned executor can run.
	Parallelizable bool
	// Reason explains a false Parallelizable in user terms.
	Reason string

	// AggName is the aggregate function (SUM, MIN, MAX, COUNT, AVG).
	AggName string
	// Agg is the aggregate call node inside the delta item.
	Agg *sqlparser.FuncCall
	// MsgExpr is the delta item with its COALESCE default stripped:
	// g(AGG(h)) where h references the neighbor and edge aliases only.
	MsgExpr sqlparser.Expr
	// DeltaDefault is the aggregate's identity/reset value (taken from
	// the COALESCE default when present).
	DeltaDefault sqltypes.Value
	// DeltaItem is the position of the delta column in the select list
	// (and therefore in the CTE schema).
	DeltaItem int

	// TargetAlias and NeighborAlias are how Ri refers to R and to its
	// self-joined copy.
	TargetAlias   string
	NeighborAlias string
	// TargetIDCol is the name of the Rid column (§III-A).
	TargetIDCol string

	// EdgeTable/EdgeAlias describe the joined relation table.
	EdgeTable string
	EdgeAlias string
	// EdgeDstCol is the edge column equated with the target id;
	// EdgeSrcCol the one equated with the neighbor id.
	EdgeDstCol string
	EdgeSrcCol string

	// Pred is Ri's WHERE clause (references neighbor/edge only).
	Pred sqlparser.Expr
}

// aggIdentity returns the reset value of an aggregate: the value such
// that accumulating it is a no-op.
func aggIdentity(agg string) sqltypes.Value {
	switch agg {
	case "MIN":
		return sqltypes.NewFloat(math.Inf(1))
	case "MAX":
		return sqltypes.NewFloat(math.Inf(-1))
	default: // SUM, COUNT, AVG
		return sqltypes.NewFloat(0)
	}
}

// analyzeStep decides whether Ri matches the parallelizable pattern the
// paper targets (§V-A):
//
//	SELECT R.id, <f(R row)>..., <g(AGG(h(N, E)))>
//	FROM R LEFT JOIN E ON R.id = E.dst LEFT JOIN R AS N ON N.id = E.src
//	[WHERE pred(N, E)]
//	GROUP BY R.id
func analyzeStep(cte *sqlparser.LoopCTEStmt) Analysis {
	fail := func(format string, args ...any) Analysis {
		return Analysis{Reason: fmt.Sprintf(format, args...)}
	}

	step, ok := cte.Step.(*sqlparser.Select)
	if !ok {
		return fail("iterative part is not a plain SELECT")
	}
	if len(step.From) != 1 {
		return fail("iterative part must have a single (joined) FROM item")
	}

	// Walk the left-deep join chain: R ⟕ edges ⟕ R AS N.
	join2, ok := step.From[0].(*sqlparser.JoinExpr)
	if !ok {
		return fail("iterative part has no join, nothing to parallelize")
	}
	join1, ok := join2.Left.(*sqlparser.JoinExpr)
	if !ok {
		return fail("iterative part needs the two-join self-join pattern (R JOIN edges JOIN R)")
	}
	target, ok := join1.Left.(*sqlparser.TableName)
	if !ok || !strings.EqualFold(target.Name, cte.Name) {
		return fail("first FROM relation must be the CTE table %s", cte.Name)
	}
	edge, ok := join1.Right.(*sqlparser.TableName)
	if !ok {
		return fail("second FROM relation must be a base table")
	}
	if strings.EqualFold(edge.Name, cte.Name) {
		return fail("self-join must go through a relation table (R JOIN edges JOIN R)")
	}
	neighbor, ok := join2.Right.(*sqlparser.TableName)
	if !ok || !strings.EqualFold(neighbor.Name, cte.Name) {
		return fail("third FROM relation must be the self-joined CTE table %s", cte.Name)
	}

	an := Analysis{
		TargetAlias:   aliasOf(target),
		EdgeTable:     edge.Name,
		EdgeAlias:     aliasOf(edge),
		NeighborAlias: aliasOf(neighbor),
	}
	if strings.EqualFold(an.TargetAlias, an.NeighborAlias) {
		return fail("the self-joined copy of %s needs a distinct alias", cte.Name)
	}

	// join1: R.id = E.dst (either side order).
	tCol, eDst, ok := equiPair(join1.On, an.TargetAlias, an.EdgeAlias)
	if !ok {
		return fail("join between %s and %s must be an equality on single columns",
			an.TargetAlias, an.EdgeAlias)
	}
	// join2: N.id = E.src.
	nCol, eSrc, ok := equiPair(join2.On, an.NeighborAlias, an.EdgeAlias)
	if !ok {
		return fail("self-join between %s and %s must be an equality on single columns",
			an.NeighborAlias, an.EdgeAlias)
	}
	if !strings.EqualFold(tCol, nCol) {
		return fail("both joins must use the same key column of %s (%s vs %s)", cte.Name, tCol, nCol)
	}
	an.TargetIDCol = tCol
	an.EdgeDstCol = eDst
	an.EdgeSrcCol = eSrc

	// GROUP BY R.id only.
	if len(step.GroupBy) != 1 {
		return fail("iterative part must GROUP BY exactly the key column")
	}
	if gb, ok := step.GroupBy[0].(*sqlparser.ColumnRef); !ok ||
		!refersTo(gb, an.TargetAlias, an.TargetIDCol) {
		return fail("GROUP BY must be %s.%s", an.TargetAlias, an.TargetIDCol)
	}

	// Select items: Items[0] = R.id; exactly one aggregate-bearing item
	// (the delta column); the rest reference the target row only.
	if len(step.Items) < 2 {
		return fail("iterative part must select the key and at least one computed column")
	}
	if id, ok := step.Items[0].Expr.(*sqlparser.ColumnRef); !ok ||
		!refersTo(id, an.TargetAlias, an.TargetIDCol) {
		return fail("first select item must be the key column %s.%s", an.TargetAlias, an.TargetIDCol)
	}
	an.DeltaItem = -1
	itemViolation := ""
	for i, it := range step.Items {
		var aggs []*sqlparser.FuncCall
		collectAggregatesExpr(it.Expr, &aggs)
		switch {
		case len(aggs) == 0:
			if i > 0 && itemViolation == "" && !referencesOnly(it.Expr, []string{an.TargetAlias}, an) {
				itemViolation = fmt.Sprintf("select item %d must reference only the %s row", i+1, an.TargetAlias)
			}
		case len(aggs) == 1:
			if an.DeltaItem >= 0 {
				return fail("only one aggregate-computed column is supported")
			}
			an.DeltaItem = i
			an.Agg = aggs[0]
			an.AggName = aggs[0].Name
		default:
			return fail("select item %d uses multiple aggregates", i+1)
		}
	}
	if an.DeltaItem <= 0 {
		return fail("iterative part contains no supported aggregate (SUM, MIN, MAX, COUNT, AVG)")
	}
	if itemViolation != "" {
		return fail("%s", itemViolation)
	}
	if an.Agg.Star || an.Agg.Distinct {
		return fail("%s(*) and DISTINCT aggregates are not parallelizable", an.AggName)
	}
	if !referencesOnly(an.Agg.Args[0], []string{an.NeighborAlias, an.EdgeAlias}, an) {
		return fail("the aggregate must range over the self-joined row (%s) and the relation (%s)",
			an.NeighborAlias, an.EdgeAlias)
	}

	// Strip the COALESCE default, keep g(AGG(h)).
	deltaExpr := step.Items[an.DeltaItem].Expr
	an.DeltaDefault = aggIdentity(an.AggName)
	if co, ok := deltaExpr.(*sqlparser.FuncCall); ok && co.Name == "COALESCE" && len(co.Args) == 2 {
		if lit, ok := co.Args[1].(*sqlparser.Literal); ok {
			var inner []*sqlparser.FuncCall
			collectAggregatesExpr(co.Args[0], &inner)
			if len(inner) == 1 {
				deltaExpr = co.Args[0]
				an.DeltaDefault = lit.Val
			}
		}
	}
	an.MsgExpr = deltaExpr
	if reason := checkOuterShape(an.MsgExpr, an.Agg, an.AggName); reason != "" {
		return fail("%s", reason)
	}

	// WHERE must predicate on the message sources only.
	if step.Where != nil {
		if !referencesOnly(step.Where, []string{an.NeighborAlias, an.EdgeAlias}, an) {
			return fail("WHERE of the iterative part must reference only %s and %s",
				an.NeighborAlias, an.EdgeAlias)
		}
		an.Pred = step.Where
	}
	if step.Having != nil || step.Distinct || len(step.OrderBy) > 0 || step.Limit != nil {
		return fail("HAVING/DISTINCT/ORDER BY/LIMIT in the iterative part are not parallelizable")
	}

	an.Parallelizable = true
	return an
}

// checkOuterShape validates that g in g(AGG(h)) distributes over the
// aggregate so per-partition partial aggregation stays correct (§V-D):
// linear scaling for SUM/COUNT, monotone shifts for MIN/MAX, identity
// for AVG.
func checkOuterShape(e sqlparser.Expr, agg *sqlparser.FuncCall, name string) string {
	if e == agg {
		return ""
	}
	be, ok := e.(*sqlparser.BinaryExpr)
	if !ok {
		return "the expression around the aggregate is too complex to parallelize"
	}
	lit, aggSide := literalAndAgg(be, agg)
	if lit == nil || aggSide == nil {
		return "the expression around the aggregate must combine it with a constant"
	}
	switch name {
	case "SUM", "COUNT":
		if be.Op != sqltypes.OpMul {
			return fmt.Sprintf("only constant scaling of %s distributes across partitions", name)
		}
	case "MIN", "MAX":
		if be.Op != sqltypes.OpAdd {
			return fmt.Sprintf("only constant shifts of %s distribute across partitions", name)
		}
	case "AVG":
		return "AVG cannot carry an outer expression across partitions"
	}
	return ""
}

func literalAndAgg(be *sqlparser.BinaryExpr, agg *sqlparser.FuncCall) (*sqlparser.Literal, sqlparser.Expr) {
	if l, ok := be.Left.(*sqlparser.Literal); ok && be.Right == agg {
		return l, be.Right
	}
	if l, ok := be.Right.(*sqlparser.Literal); ok && be.Left == agg {
		return l, be.Left
	}
	return nil, nil
}

func aliasOf(t *sqlparser.TableName) string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// refersTo reports whether cr is <alias>.<colName> (an unqualified name
// also counts when it matches colName).
func refersTo(cr *sqlparser.ColumnRef, alias, colName string) bool {
	if !strings.EqualFold(cr.Name, colName) {
		return false
	}
	return cr.Table == "" || strings.EqualFold(cr.Table, alias)
}

// equiPair extracts (aCol, bCol) from `a.x = b.y` in either order.
func equiPair(on sqlparser.Expr, aAlias, bAlias string) (string, string, bool) {
	cmp, ok := on.(*sqlparser.ComparisonExpr)
	if !ok || cmp.Op != sqltypes.CmpEQ {
		return "", "", false
	}
	l, lok := cmp.Left.(*sqlparser.ColumnRef)
	r, rok := cmp.Right.(*sqlparser.ColumnRef)
	if !lok || !rok {
		return "", "", false
	}
	switch {
	case strings.EqualFold(l.Table, aAlias) && strings.EqualFold(r.Table, bAlias):
		return l.Name, r.Name, true
	case strings.EqualFold(r.Table, aAlias) && strings.EqualFold(l.Table, bAlias):
		return r.Name, l.Name, true
	default:
		return "", "", false
	}
}

// referencesOnly reports whether every column reference in e names one
// of the allowed aliases. Unqualified references fail closed (SQLoop
// cannot attribute them without engine catalogs) unless they name the id
// column, which is unambiguous across the self-join pattern.
func referencesOnly(e sqlparser.Expr, allowed []string, an Analysis) bool {
	ok := true
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		cr, isRef := x.(*sqlparser.ColumnRef)
		if !isRef {
			return true
		}
		if cr.Table == "" {
			if !strings.EqualFold(cr.Name, an.TargetIDCol) {
				ok = false
			}
			return true
		}
		for _, a := range allowed {
			if strings.EqualFold(cr.Table, a) {
				return true
			}
		}
		ok = false
		return true
	})
	return ok
}

// collectAggregatesExpr mirrors the engine's aggregate collection for
// the analyzer's purposes.
func collectAggregatesExpr(e sqlparser.Expr, into *[]*sqlparser.FuncCall) {
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if fc, ok := x.(*sqlparser.FuncCall); ok {
			switch fc.Name {
			case "SUM", "MIN", "MAX", "COUNT", "AVG":
				*into = append(*into, fc)
				return false
			}
		}
		return true
	})
}
