package core

// Elastic-shard conformance: online repartitioning (grow and shrink)
// between rounds, snapshot repartitioning on resume, and AsyncP
// straggler handoff must all preserve bit-identical results against the
// undisturbed single-node run. The failover half of the elastic story
// needs killable endpoints and lives in the root package's fault-matrix
// suite (elastic_test.go); everything here runs on embedded engines.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/obs"
	"sqloop/internal/sqlparser"
)

// newElasticTestGroup builds a ShardGroup of n embedded shards plus
// standby replicas of the same profile. Borrowed instances, lifecycle
// on t.Cleanup, like newTestShardGroup.
func newElasticTestGroup(t *testing.T, profile string, n, replicas int, gopts ShardGroupOptions, opts Options) *ShardGroup {
	t.Helper()
	cfg, err := engine.Profile(profile)
	if err != nil {
		t.Fatal(err)
	}
	opts.Dialect = cfg.Dialect.String()
	all := make([]*SQLoop, n+replicas)
	for i := range all {
		eng := engine.New(cfg)
		handle := fmt.Sprintf("%s-elastic%d-%p", strings.ReplaceAll(t.Name(), "/", "_"), i, &all)
		driver.RegisterEngine(handle, eng)
		t.Cleanup(func() { driver.UnregisterEngine(handle) })
		s, err := Open(driver.DriverName, driver.InprocDSN(handle), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		all[i] = s
	}
	gopts.Replicas = append(gopts.Replicas, all[n:]...)
	g, err := NewElasticShardGroup(all[:n], gopts, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardedRebalanceDifferential is the rebalance-during-iteration
// conformance matrix: a scheduled 2→4 grow and a 4→2 shrink fire in
// the middle of the fix point, across profiles, modes and all three
// algorithm families, and the final result must match the undisturbed
// single-node run bit for bit.
func TestShardedRebalanceDifferential(t *testing.T) {
	queries := map[string]string{
		"sssp":    shardSSSP,
		"cc":      shardCC,
		"dagrank": shardDAGRank,
	}
	steps := map[string]struct {
		from, to int
	}{
		"grow2to4":   {2, 4},
		"shrink4to2": {4, 2},
	}
	profiles := []string{"pgsim", "mysim", "mariasim"}
	modes := []Mode{ModeSync, ModeAsync, ModeAsyncPrio}
	for _, profile := range profiles {
		t.Run(profile, func(t *testing.T) {
			for name, query := range queries {
				want := singleNodeReference(t, profile, query)
				for _, mode := range modes {
					for stepName, step := range steps {
						t.Run(fmt.Sprintf("%s/%s/%s", name, mode, stepName), func(t *testing.T) {
							rec := &obs.Recorder{}
							replicas := 0
							if step.to > step.from {
								replicas = step.to - step.from
							}
							g := newElasticTestGroup(t, profile, step.from, replicas,
								ShardGroupOptions{Rebalance: []RebalanceStep{{AfterRound: 2, Shards: step.to}}},
								Options{Mode: mode, Observer: rec,
									Checkpoint: CheckpointOptions{Dir: t.TempDir(), EveryRounds: 1}})
							ctx := context.Background()
							loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
							res, err := g.Exec(ctx, query)
							if err != nil {
								t.Fatal(err)
							}
							requireIdenticalRows(t, want, res)
							if res.Stats.Rebalances != 1 {
								t.Errorf("Stats.Rebalances = %d, want 1", res.Stats.Rebalances)
							}
							if res.Stats.ShardCount != step.to {
								t.Errorf("ShardCount = %d, want %d after rebalance", res.Stats.ShardCount, step.to)
							}
							if g.Size() != step.to {
								t.Errorf("group Size = %d, want %d", g.Size(), step.to)
							}
							if g.Epoch() < 1 {
								t.Errorf("Epoch = %d, want >= 1 after a rebalance", g.Epoch())
							}
							if rec.Count("shard_rebalance") != 1 {
								t.Errorf("shard_rebalance events = %d, want 1", rec.Count("shard_rebalance"))
							}
							if n := g.Metrics().Snapshot().Counters["sqloop_shard_rebalances_total"]; n != 1 {
								t.Errorf("sqloop_shard_rebalances_total = %d, want 1", n)
							}
							// A shrink parks the retirees as standbys for later use.
							if step.to < step.from {
								if len(g.Standbys()) != step.from-step.to {
									t.Errorf("standbys after shrink = %d, want %d",
										len(g.Standbys()), step.from-step.to)
								}
							}
						})
					}
				}
			}
		})
	}
}

// TestShardedRebalanceRoundTrip grows 2→4 and shrinks back to 2 inside
// one execution, finishing on the original shard count.
func TestShardedRebalanceRoundTrip(t *testing.T) {
	want := singleNodeReference(t, "pgsim", shardSSSP)
	rec := &obs.Recorder{}
	g := newElasticTestGroup(t, "pgsim", 2, 2,
		ShardGroupOptions{Rebalance: []RebalanceStep{
			{AfterRound: 1, Shards: 4},
			{AfterRound: 3, Shards: 2},
		}},
		Options{Mode: ModeSync, Observer: rec,
			Checkpoint: CheckpointOptions{Dir: t.TempDir(), EveryRounds: 1}})
	ctx := context.Background()
	loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
	res, err := g.Exec(ctx, shardSSSP)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalRows(t, want, res)
	if res.Stats.Rebalances != 2 {
		t.Errorf("Stats.Rebalances = %d, want 2", res.Stats.Rebalances)
	}
	if g.Size() != 2 || len(g.Standbys()) != 2 {
		t.Errorf("final topology = %d shards / %d standbys, want 2/2", g.Size(), len(g.Standbys()))
	}
	if g.Epoch() != 2 {
		t.Errorf("Epoch = %d, want 2", g.Epoch())
	}
}

// TestShardedRequestRebalance covers the dynamic path: a rebalance
// requested mid-flight from the observer (no scheduled steps) must land
// at the next round boundary.
func TestShardedRequestRebalance(t *testing.T) {
	want := singleNodeReference(t, "pgsim", shardCC)
	var g *ShardGroup
	requested := false
	tr := obs.FuncTracer(func(ev obs.Event) {
		if re, ok := ev.(obs.RoundEnd); ok && re.Round == 2 && !requested {
			requested = true
			g.RequestRebalance(4)
		}
	})
	g = newElasticTestGroup(t, "pgsim", 2, 2, ShardGroupOptions{},
		Options{Mode: ModeAsync, Observer: tr,
			Checkpoint: CheckpointOptions{Dir: t.TempDir(), EveryRounds: 1}})
	ctx := context.Background()
	loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
	res, err := g.Exec(ctx, shardCC)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalRows(t, want, res)
	if res.Stats.Rebalances != 1 {
		t.Errorf("Stats.Rebalances = %d, want 1", res.Stats.Rebalances)
	}
	if g.Size() != 4 {
		t.Errorf("group Size = %d, want 4", g.Size())
	}
}

// TestShardedRepartitionResume is the epoch-keyed resume contract: a
// snapshot taken at one shard count must restore onto a different live
// topology of the same group (the state after an online rebalance) by
// re-routing its rows, not by being discarded.
func TestShardedRepartitionResume(t *testing.T) {
	want := singleNodeReference(t, "pgsim", shardSSSP)
	dir := t.TempDir()
	keeper := newSnapshotKeeper(dir)
	rec := &obs.Recorder{}
	g := newElasticTestGroup(t, "pgsim", 2, 2,
		ShardGroupOptions{Rebalance: []RebalanceStep{{AfterRound: 2, Shards: 4}}},
		Options{Mode: ModeSync, Observer: obs.Multi(rec, keeper),
			Checkpoint: CheckpointOptions{Dir: dir, EveryRounds: 1}})
	ctx := context.Background()
	loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })

	res, err := g.Exec(ctx, shardSSSP)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalRows(t, want, res)
	if g.Size() != 4 {
		t.Fatalf("group Size = %d, want 4 after the scheduled rebalance", g.Size())
	}

	// The keeper holds the FIRST snapshot — taken at round 1 with 2
	// partitions, before the rebalance. Restoring it against the now
	// 4-shard topology must re-route the 2 recorded partitions onto 4
	// shards and replay to the same result.
	keeper.restore(t)
	res2, err := g.Exec(ctx, shardSSSP)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalRows(t, want, res2)
	if res2.Stats.ResumedFromRound < 1 {
		t.Fatalf("ResumedFromRound = %d, want >= 1", res2.Stats.ResumedFromRound)
	}
	if res2.Stats.ShardCount != 4 {
		t.Fatalf("resumed ShardCount = %d, want 4", res2.Stats.ShardCount)
	}
	if rec.Count("restore") != 1 {
		t.Fatalf("restore events = %d, want 1", rec.Count("restore"))
	}
}

// TestShardedMalformedGroupSnapshot pins the discard half of the resume
// contract: a snapshot whose table list does not match its recorded
// partition count is internally inconsistent and must be discarded (a
// count MISMATCH with the live topology alone is handled by
// repartitioning, so the discard must key off internal shape only).
func TestShardedMalformedGroupSnapshot(t *testing.T) {
	want := singleNodeReference(t, "pgsim", shardSSSP)
	dir := t.TempDir()
	keeper := newSnapshotKeeper(dir)
	rec := &obs.Recorder{}
	g := newTestShardGroup(t, "pgsim", 2, Options{
		Mode:       ModeSync,
		Observer:   obs.Multi(rec, keeper),
		Checkpoint: CheckpointOptions{Dir: dir, EveryRounds: 1},
	})
	ctx := context.Background()
	loadShardFixtures(t, func(q string) (*Result, error) { return g.Exec(ctx, q) })
	if _, err := g.Exec(ctx, shardSSSP); err != nil {
		t.Fatal(err)
	}

	keeper.restore(t)
	// Truncate ONE shard's partition table out of the snapshot: the
	// shape check must reject it and the run must start fresh.
	loop0 := g.loopFor(0)
	ck, err := loop0.newCkptRun(mustLoopCTE(t, shardSSSP))
	if err != nil {
		t.Fatal(err)
	}
	if !ck.restoring() {
		t.Fatal("sanity: restored snapshot not visible")
	}
	snap := ck.resumed
	snap.Tables = snap.Tables[:1]
	if _, err := ck.store.Save(snap); err != nil {
		t.Fatal(err)
	}

	res, err := g.Exec(ctx, shardSSSP)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalRows(t, want, res)
	if res.Stats.ResumedFromRound != 0 {
		t.Fatalf("ResumedFromRound = %d, want 0 for a malformed snapshot", res.Stats.ResumedFromRound)
	}
	if rec.Count("restore") != 0 {
		t.Fatalf("restore events = %d, want 0", rec.Count("restore"))
	}
}

// mustLoopCTE parses a WITH ITERATIVE statement for test plumbing.
func mustLoopCTE(t *testing.T, query string) *sqlparser.LoopCTEStmt {
	t.Helper()
	st, err := sqlparser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	cte, ok := st.(*sqlparser.LoopCTEStmt)
	if !ok {
		t.Fatalf("parsed %T, want *sqlparser.LoopCTEStmt", st)
	}
	return cte
}

// TestShardedHandoffDifferential runs AsyncP with straggler handoff on
// enough shards that pending queues build up, and requires both that
// handoffs actually happen and that they change nothing about the
// result.
func TestShardedHandoffDifferential(t *testing.T) {
	for _, q := range []struct{ name, query string }{
		{"sssp", shardSSSP},
		{"dagrank", shardDAGRank},
	} {
		t.Run(q.name, func(t *testing.T) {
			want := singleNodeReference(t, "pgsim", q.query)
			rec := &obs.Recorder{}
			g := newElasticTestGroup(t, "pgsim", 4, 0, ShardGroupOptions{Handoff: true},
				Options{Mode: ModeAsyncPrio, Observer: rec})
			ctx := context.Background()
			loadShardFixtures(t, func(qq string) (*Result, error) { return g.Exec(ctx, qq) })
			res, err := g.Exec(ctx, q.query)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalRows(t, want, res)
			if res.Stats.Handoffs < 1 {
				t.Errorf("Stats.Handoffs = %d, want >= 1", res.Stats.Handoffs)
			}
			if rec.Count("shard_handoff") != res.Stats.Handoffs {
				t.Errorf("shard_handoff events = %d, stats say %d",
					rec.Count("shard_handoff"), res.Stats.Handoffs)
			}
		})
	}
}

// TestElasticGroupValidation pins constructor errors: invalid rebalance
// steps and growing past the standby pool.
func TestElasticGroupValidation(t *testing.T) {
	if _, err := NewElasticShardGroup(nil, ShardGroupOptions{}, Options{}, false); err == nil {
		t.Error("empty shard list accepted")
	}
	g := newTestShardGroup(t, "pgsim", 1, Options{})
	if _, err := NewElasticShardGroup(g.Shards(), ShardGroupOptions{
		Rebalance: []RebalanceStep{{AfterRound: 0, Shards: 2}},
	}, Options{}, false); err == nil {
		t.Error("rebalance step with AfterRound 0 accepted")
	}
	if _, err := NewElasticShardGroup(g.Shards(), ShardGroupOptions{
		Rebalance: []RebalanceStep{{AfterRound: 1, Shards: 0}},
	}, Options{}, false); err == nil {
		t.Error("rebalance step to 0 shards accepted")
	}

	// Growing beyond the standby pool must fail the execution cleanly.
	eg := newElasticTestGroup(t, "pgsim", 2, 0,
		ShardGroupOptions{Rebalance: []RebalanceStep{{AfterRound: 1, Shards: 4}}},
		Options{Mode: ModeSync})
	ctx := context.Background()
	loadShardFixtures(t, func(q string) (*Result, error) { return eg.Exec(ctx, q) })
	if _, err := eg.Exec(ctx, shardSSSP); err == nil ||
		!strings.Contains(err.Error(), "standby") {
		t.Errorf("grow without standbys: err = %v, want standby shortage", err)
	}
}
