package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// pinToken fixes the per-execution namespace token for the duration of
// a test, so working-table names become deterministic and sabotage /
// stale-table tests can target the real physical names.
func pinToken(t *testing.T, tok string) {
	t.Helper()
	old := newExecToken
	newExecToken = func() string { return tok }
	t.Cleanup(func() { newExecToken = old })
}

// TestParallelRunSurvivesDroppedDependency drops the relation table out
// from under a running parallel CTE: the run must fail with an error
// (not hang or panic) and must still clean up its working tables.
func TestParallelRunSurvivesDroppedDependency(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			// Working tables are namespaced per execution; pin the token
			// so the sabotage below hits this run's materialized join.
			pinToken(t, "t0")
			s := newTestLoop(t, Options{Mode: mode, Threads: 2, Partitions: 4}, true)
			ctx := context.Background()

			var wg sync.WaitGroup
			var execErr error
			started := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				close(started)
				// Long enough that the sabotage lands mid-run; an error
				// is the expected outcome, nil means it (validly) beat
				// the drop.
				_, execErr = s.Exec(ctx, fmt.Sprintf(pageRankCTE, 50000))
			}()
			<-started
			// Sabotage: remove the constant join's source mid-run. The
			// materialized join shields Compute tasks, so aim at the
			// materialization table itself via a second connection.
			sab, err := s.DB().Conn(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				if _, err := sab.ExecContext(ctx, `DROP TABLE sqloop_pagerank_t0_mjoin`); err == nil {
					break
				}
			}
			_ = sab.Close()
			wg.Wait()
			if execErr == nil {
				t.Skip("run finished before the sabotage landed")
			}
			if !strings.Contains(execErr.Error(), "mjoin") &&
				!strings.Contains(execErr.Error(), "does not exist") {
				t.Logf("error (acceptable): %v", execErr)
			}
			// The middleware must still be usable and not leak its
			// partition tables into later runs.
			res, err := s.Exec(ctx, fmt.Sprintf(pageRankCTE, 3))
			if err != nil {
				t.Fatalf("instance unusable after failure: %v", err)
			}
			if len(res.Rows) != 7 {
				t.Fatalf("recovery run rows = %d", len(res.Rows))
			}
		})
	}
}

// TestStaleWorkingTablesAreReplaced simulates a crashed previous run by
// pre-creating stale working tables under SQLoop's names; a new run must
// replace them and succeed.
func TestStaleWorkingTablesAreReplaced(t *testing.T) {
	// Pin the token so the stale tables collide with the names the run
	// will actually use (a real crash with random tokens cannot collide,
	// but the drop-before-create paths must still hold).
	pinToken(t, "t0")
	s := newTestLoop(t, Options{Mode: ModeSync, Threads: 2, Partitions: 4}, true)
	ctx := context.Background()
	stale := []string{
		`CREATE TABLE pagerank (junk BIGINT)`,
		`CREATE TABLE sqloop_pagerank_t0_mjoin (junk BIGINT)`,
		`CREATE TABLE sqloop_pagerank_t0_pt0 (junk BIGINT)`,
		`CREATE TABLE sqloop_pagerank_t0_delta (junk BIGINT)`,
		`CREATE TABLE pagerankdelta (junk BIGINT)`,
	}
	for _, q := range stale {
		if _, err := s.Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Exec(ctx, fmt.Sprintf(pageRankCTE, 3))
	if err != nil {
		t.Fatalf("run over stale tables: %v", err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

// TestConcurrentIndependentCTEs runs two different iterative CTEs (on
// separate relation tables) through one SQLoop instance concurrently.
func TestConcurrentIndependentCTEs(t *testing.T) {
	s := newTestLoop(t, Options{Mode: ModeSync, Threads: 2, Partitions: 2}, true)
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE edges2 (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, `INSERT INTO edges2 SELECT src, dst, weight FROM edges`); err != nil {
		t.Fatal(err)
	}
	other := strings.ReplaceAll(strings.ReplaceAll(fmt.Sprintf(pageRankCTE, 5),
		"PageRank", "PageRank2"), "edges", "edges2")

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = s.Exec(ctx, fmt.Sprintf(pageRankCTE, 5))
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = s.Exec(ctx, other)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("cte %d: %v", i, err)
		}
	}
}

// TestConcurrentSameNamedCTEs runs the SAME iterative CTE (same name,
// same relation table) several times concurrently through one SQLoop
// instance. Per-execution name tokens must keep the runs' working
// tables apart — before tokens, both runs wrote R/Rdelta/partition
// tables under identical names and clobbered each other's state.
func TestConcurrentSameNamedCTEs(t *testing.T) {
	const iters = 5
	want := refPageRank(iters, true)
	for _, mode := range []Mode{ModeSingle, ModeSync, ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 2, Partitions: 2}, true)
			ctx := context.Background()
			const runs = 3
			var wg sync.WaitGroup
			results := make([]*Result, runs)
			errs := make([]error, runs)
			wg.Add(runs)
			for i := 0; i < runs; i++ {
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = s.Exec(ctx, fmt.Sprintf(pageRankCTE, iters))
				}(i)
			}
			wg.Wait()
			for i := 0; i < runs; i++ {
				if errs[i] != nil {
					t.Fatalf("run %d: %v", i, errs[i])
				}
				got := rowsToMap(t, results[i])
				if len(got) != len(want) {
					t.Fatalf("run %d: %d nodes, want %d", i, len(got), len(want))
				}
				for n, v := range got {
					if v < 0.15-1e-9 {
						t.Errorf("run %d: node %d rank %v below base rank", i, n, v)
					}
				}
				// Exact values are only defined for synchronized
				// schedules (cf. TestAvgAggregateAllModes).
				if mode == ModeSingle || mode == ModeSync {
					for n, v := range want {
						if math.Abs(got[n]-v) > 1e-9 {
							t.Errorf("run %d: node %d = %v, want %v", i, n, got[n], v)
						}
					}
				}
			}
		})
	}
}
