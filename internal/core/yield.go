package core

import (
	"context"

	"sqloop/internal/serve"
)

// Fair round scheduling (the serving layer's contract with the round
// loops): when an execution was admitted through a serve.Scheduler,
// its ticket travels down to the executors in the context, and every
// round loop calls yieldRound at the round boundary — the same place
// the checkpoint barrier sits, where no statement is in flight and the
// CTE tables are consistent. With slot contention the scheduler parks
// this execution there and runs another tenant's round; without it the
// yield is a single mutex acquisition.

// ticketKey carries the admission ticket in the context.
type ticketKey struct{}

// withTicket attaches an admission ticket for the round loops.
func withTicket(ctx context.Context, t *serve.Ticket) context.Context {
	return context.WithValue(ctx, ticketKey{}, t)
}

// yieldRound marks a round boundary. It returns ctx.Err() when the
// wait for a fresh slot was cancelled; unscheduled executions (no
// ticket in ctx) pay only the context lookup.
func yieldRound(ctx context.Context) error {
	if t, ok := ctx.Value(ticketKey{}).(*serve.Ticket); ok {
		return t.Yield(ctx)
	}
	return nil
}
