package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/sqlparser"
	"sqloop/internal/wire"
)

// testEdge is one weighted directed edge.
type testEdge struct {
	src, dst int64
	w        float64
}

// testGraph is a small graph with cycles, a dangling node and an
// unreachable node — enough structure to exercise PageRank and SSSP.
var testGraph = []testEdge{
	{1, 2, 1}, {1, 3, 4}, {2, 3, 2}, {2, 4, 7},
	{3, 4, 3}, {4, 1, 1}, {4, 5, 2}, {5, 3, 5},
	{6, 7, 1}, {7, 6, 1}, // separate component
}

// newTestLoop builds a SQLoop over a fresh in-process engine with the
// test graph loaded, using out-degree-normalized weights for PageRank
// when normalized is true and the raw weights otherwise.
func newTestLoop(t *testing.T, opts Options, normalized bool) *SQLoop {
	t.Helper()
	return newTestLoopCfg(t, engine.Config{}, opts, normalized)
}

// newTestLoopProfile is newTestLoop against a named engine profile, with
// normalized weights.
func newTestLoopProfile(t *testing.T, profile string, opts Options) *SQLoop {
	t.Helper()
	cfg, err := engine.Profile(profile)
	if err != nil {
		t.Fatal(err)
	}
	opts.Dialect = cfg.Dialect.String()
	return newTestLoopCfg(t, cfg, opts, true)
}

func newTestLoopCfg(t *testing.T, cfg engine.Config, opts Options, normalized bool) *SQLoop {
	t.Helper()
	eng := engine.New(cfg)
	handle := t.Name() + fmt.Sprintf("-%p", &opts)
	driver.RegisterEngine(handle, eng)
	t.Cleanup(func() { driver.UnregisterEngine(handle) })
	s, err := Open(driver.DriverName, driver.InprocDSN(handle), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	outdeg := map[int64]int{}
	for _, e := range testGraph {
		outdeg[e.src]++
	}
	for _, e := range testGraph {
		w := e.w
		if normalized {
			w = 1.0 / float64(outdeg[e.src])
		}
		insert := fmt.Sprintf(`INSERT INTO edges VALUES (%d, %d, %g)`, e.src, e.dst, w)
		if _, err := s.Exec(ctx, insert); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

const pageRankCTE = `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL %d ITERATIONS
)
SELECT Node, Rank + Delta AS Rank FROM PageRank`

const ssspCTE = `
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT Node, Distance FROM sssp`

// refPageRank computes the delta-accumulative PageRank fix point the CTE
// expresses (rank absorbed per iteration, synchronous rounds).
func refPageRank(iters int, normalized bool) map[int64]float64 {
	outdeg := map[int64]int{}
	nodes := map[int64]bool{}
	for _, e := range testGraph {
		outdeg[e.src]++
		nodes[e.src] = true
		nodes[e.dst] = true
	}
	w := func(e testEdge) float64 {
		if normalized {
			return 1.0 / float64(outdeg[e.src])
		}
		return e.w
	}
	rank := map[int64]float64{}
	delta := map[int64]float64{}
	for n := range nodes {
		rank[n] = 0
		delta[n] = 0.15
	}
	for i := 0; i < iters; i++ {
		next := map[int64]float64{}
		for _, e := range testGraph {
			next[e.dst] += 0.85 * delta[e.src] * w(e)
		}
		for n := range nodes {
			rank[n] += delta[n]
			delta[n] = next[n]
		}
	}
	// Report total mass (rank plus pending delta) per node, matching the
	// CTE's final query.
	for n := range nodes {
		rank[n] += delta[n]
	}
	return rank
}

// refSSSP is Dijkstra from node 1 over the test graph.
func refSSSP() map[int64]float64 {
	dist := map[int64]float64{}
	nodes := map[int64]bool{}
	for _, e := range testGraph {
		nodes[e.src] = true
		nodes[e.dst] = true
	}
	for n := range nodes {
		dist[n] = math.Inf(1)
	}
	dist[1] = 0
	visited := map[int64]bool{}
	for range nodes {
		best, bd := int64(-1), math.Inf(1)
		for n := range nodes {
			if !visited[n] && dist[n] <= bd {
				best, bd = n, dist[n]
			}
		}
		if best < 0 {
			break
		}
		visited[best] = true
		for _, e := range testGraph {
			if e.src == best && dist[best]+e.w < dist[e.dst] {
				dist[e.dst] = dist[best] + e.w
			}
		}
	}
	return dist
}

func rowsToMap(t *testing.T, res *Result) map[int64]float64 {
	t.Helper()
	out := make(map[int64]float64, len(res.Rows))
	for _, r := range res.Rows {
		id, ok := r[0].(int64)
		if !ok {
			t.Fatalf("row id = %T(%v)", r[0], r[0])
		}
		switch v := r[1].(type) {
		case float64:
			out[id] = v
		case int64:
			out[id] = float64(v)
		case nil:
			out[id] = math.NaN()
		default:
			t.Fatalf("row value = %T(%v)", r[1], r[1])
		}
	}
	return out
}

var allModes = []Mode{ModeSingle, ModeSync, ModeAsync, ModeAsyncPrio}

// pageRankConvergeCTE terminates on the data values rather than an
// iteration count, which every scheduler must drive to the same fix
// point.
const pageRankConvergeCTE = `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL (SELECT MAX(PageRank.Delta) FROM PageRank) < 0.0000001
)
SELECT Node, Rank + Delta AS Rank FROM PageRank`

func TestPageRankIterationBound(t *testing.T) {
	// Synchronous schedules with a fixed iteration count must match the
	// Go reference exactly; asynchronous schedules run the same number
	// of rounds per partition but in a different order, so only the
	// mass bounds hold (ordering can defer amplification, never invent
	// mass).
	const iters = 40
	want := refPageRank(iters, true)
	var wantSum float64
	for _, v := range want {
		wantSum += v
	}
	converged := 0.0
	for _, v := range refPageRank(400, true) {
		converged += v
	}
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 3, Partitions: 4}, true)
			res, err := s.Exec(context.Background(), fmt.Sprintf(pageRankCTE, iters))
			if err != nil {
				t.Fatal(err)
			}
			got := rowsToMap(t, res)
			if len(got) != len(want) {
				t.Fatalf("%d nodes, want %d", len(got), len(want))
			}
			var gotSum float64
			for _, v := range got {
				gotSum += v
			}
			if gotSum > converged*(1+1e-9) {
				t.Errorf("total mass = %v exceeds converged mass %v", gotSum, converged)
			}
			if gotSum < 0.15*float64(len(want)) {
				t.Errorf("total mass = %v below seed mass", gotSum)
			}
			for n, v := range got {
				if v < 0.15-1e-9 {
					t.Errorf("node %d rank %v below base rank", n, v)
				}
			}
			if mode == ModeSingle || mode == ModeSync {
				for n, v := range got {
					if math.Abs(v-want[n]) > 1e-6 {
						t.Errorf("node %d rank = %v, want %v", n, v, want[n])
					}
				}
				if math.Abs(gotSum-wantSum) > 1e-6 {
					t.Errorf("total mass = %v, want %v", gotSum, wantSum)
				}
			}
			if mode != ModeSingle && !res.Stats.Parallelized {
				t.Errorf("mode %v did not parallelize: %s", mode, res.Stats.FallbackReason)
			}
		})
	}
}

func TestPageRankConvergesToFixPoint(t *testing.T) {
	converged := 0.0
	for _, v := range refPageRank(400, true) {
		converged += v
	}
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 3, Partitions: 4}, true)
			res, err := s.Exec(context.Background(), pageRankConvergeCTE)
			if err != nil {
				t.Fatal(err)
			}
			got := rowsToMap(t, res)
			var gotSum float64
			for _, v := range got {
				gotSum += v
			}
			if math.Abs(gotSum-converged) > 1e-3 {
				t.Errorf("fix-point mass = %v, want %v", gotSum, converged)
			}
		})
	}
}

func TestSSSPAllModes(t *testing.T) {
	want := refSSSP()
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 3, Partitions: 4}, false)
			res, err := s.Exec(context.Background(), ssspCTE)
			if err != nil {
				t.Fatal(err)
			}
			got := rowsToMap(t, res)
			if len(got) != len(want) {
				t.Fatalf("%d nodes, want %d", len(got), len(want))
			}
			for n, w := range want {
				g := got[n]
				if math.IsInf(w, 1) {
					if !math.IsInf(g, 1) {
						t.Errorf("node %d distance = %v, want unreachable", n, g)
					}
					continue
				}
				if math.Abs(g-w) > 1e-9 {
					t.Errorf("node %d distance = %v, want %v", n, g, w)
				}
			}
		})
	}
}

func TestRecursiveFibonacci(t *testing.T) {
	s := newTestLoop(t, Options{}, false)
	res, err := s.Exec(context.Background(), `
WITH RECURSIVE Fibonacci(n, pn) AS (
  VALUES (0, 1)
  UNION ALL
  SELECT n + pn, n FROM Fibonacci WHERE n < 1000
)
SELECT SUM(n) FROM Fibonacci`)
	if err != nil {
		t.Fatal(err)
	}
	// 0,1,1,2,3,5,...,987: sum of all values < 1000 plus the final
	// overflow row 1597 which the recursion produces before stopping.
	// Semi-naive bag semantics: rows are 0,1,1,2,...,987,1597.
	var want int64
	a, b := int64(0), int64(1)
	for a < 1000 {
		want += a
		a, b = a+b, a
	}
	want += a // the first row ≥ 1000 is still produced by the last recursion
	got := res.Rows[0][0].(int64)
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if res.Stats.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestTerminationConditionsSingle(t *testing.T) {
	// A tiny counter CTE: value doubles each iteration.
	base := `
WITH ITERATIVE counter(id, v) AS (
  VALUES (1, 1.0)
  ITERATE
  SELECT id, v * 2 FROM counter
  UNTIL %s
)
SELECT v FROM counter`
	tests := []struct {
		until string
		want  float64
	}{
		{"5 ITERATIONS", 32},
		{"(SELECT id FROM counter WHERE v >= 8)", 8},
		{"ANY (SELECT id FROM counter WHERE v >= 16)", 16},
		{"(SELECT MAX(v) FROM counter) > 40", 64},
		{"(SELECT MAX(v) FROM counter) >= 4", 4},
		{"DELTA (SELECT MAX(counter.v - counterdelta.v) FROM counter JOIN counterdelta ON counter.id = counterdelta.id) > 10", 32},
		{"ANY DELTA (SELECT counter.id FROM counter JOIN counterdelta ON counter.id = counterdelta.id WHERE counter.v - counterdelta.v > 10)", 32},
	}
	for _, tt := range tests {
		t.Run(tt.until, func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: ModeSingle}, false)
			res, err := s.Exec(context.Background(), fmt.Sprintf(base, tt.until))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Rows[0][0].(float64); got != tt.want {
				t.Errorf("UNTIL %s: v = %v, want %v", tt.until, got, tt.want)
			}
		})
	}
}

func TestUpdatesTermination(t *testing.T) {
	// v converges to 64 and stops changing; UNTIL 0 UPDATES must detect
	// the fix point via changed-row counting.
	q := `
WITH ITERATIVE conv(id, v) AS (
  VALUES (1, 1.0)
  ITERATE
  SELECT id, LEAST(v * 2, 64.0) FROM conv
  UNTIL 0 UPDATES
)
SELECT v FROM conv`
	s := newTestLoop(t, Options{Mode: ModeSingle}, false)
	res, err := s.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 64 {
		t.Fatalf("v = %v, want 64", got)
	}
	if res.Stats.Iterations < 7 {
		t.Errorf("iterations = %d, want ≥ 7", res.Stats.Iterations)
	}
}

func TestAnalyzerAcceptsPaperQueries(t *testing.T) {
	for name, q := range map[string]string{
		"pagerank": fmt.Sprintf(pageRankCTE, 10),
		"sssp":     ssspCTE,
	} {
		t.Run(name, func(t *testing.T) {
			cte := mustParseCTE(t, q)
			an := analyzeStep(cte)
			if !an.Parallelizable {
				t.Fatalf("not parallelizable: %s", an.Reason)
			}
			if an.TargetIDCol != "Node" {
				t.Errorf("id col = %q", an.TargetIDCol)
			}
			if an.EdgeTable != "edges" {
				t.Errorf("edge table = %q", an.EdgeTable)
			}
		})
	}
}

func TestAnalyzerRejections(t *testing.T) {
	tests := []struct {
		name string
		q    string
		want string // substring of the reason
	}{
		{
			"no-aggregate",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, n.v FROM r JOIN edges AS e ON r.id = e.dst JOIN r AS n ON n.id = e.src GROUP BY r.id
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"no supported aggregate",
		},
		{
			"no-join",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT id, v + 1 FROM r UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"no join",
		},
		{
			"no-self-join",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, SUM(e.weight) FROM r JOIN edges AS e ON r.id = e.dst GROUP BY r.id
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"self-join",
		},
		{
			"aggregate-over-target",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, SUM(r.v * e.weight) FROM r JOIN edges AS e ON r.id = e.dst JOIN r AS n ON n.id = e.src GROUP BY r.id
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"aggregate must range over",
		},
		{
			"where-on-target",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, SUM(n.v) FROM r JOIN edges AS e ON r.id = e.dst JOIN r AS n ON n.id = e.src
			   WHERE r.v > 0 GROUP BY r.id
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"WHERE of the iterative part",
		},
		{
			"distinct-aggregate",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, SUM(DISTINCT n.v) FROM r JOIN edges AS e ON r.id = e.dst JOIN r AS n ON n.id = e.src GROUP BY r.id
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"DISTINCT",
		},
		{
			"group-by-missing",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, SUM(n.v) FROM r JOIN edges AS e ON r.id = e.dst JOIN r AS n ON n.id = e.src
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"GROUP BY",
		},
		{
			"nonlinear-outer",
			`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE
			   SELECT r.id, COALESCE(SUM(n.v) + 1, 0.0) FROM r JOIN edges AS e ON r.id = e.dst JOIN r AS n ON n.id = e.src GROUP BY r.id
			   UNTIL 3 ITERATIONS) SELECT * FROM r`,
			"scaling",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cte := mustParseCTE(t, tt.q)
			an := analyzeStep(cte)
			if an.Parallelizable {
				t.Fatal("unexpectedly parallelizable")
			}
			if !strings.Contains(an.Reason, tt.want) {
				t.Errorf("reason = %q, want it to mention %q", an.Reason, tt.want)
			}
		})
	}
}

func mustParseCTE(t *testing.T, q string) *sqlparser.LoopCTEStmt {
	t.Helper()
	st, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := st.(*sqlparser.LoopCTEStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	return c
}

func TestParallelFallback(t *testing.T) {
	// Requesting async on a non-parallelizable CTE must fall back with a
	// reason, not fail.
	s := newTestLoop(t, Options{Mode: ModeAsync}, false)
	res, err := s.Exec(context.Background(), `
WITH ITERATIVE counter(id, v) AS (
  VALUES (1, 1.0)
  ITERATE SELECT id, v * 2 FROM counter
  UNTIL 3 ITERATIONS
) SELECT v FROM counter`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Parallelized {
		t.Error("counter CTE must not parallelize")
	}
	if res.Stats.FallbackReason == "" {
		t.Error("missing fallback reason")
	}
	if got := res.Rows[0][0].(float64); got != 8 {
		t.Errorf("v = %v, want 8", got)
	}
}

func TestKeepTable(t *testing.T) {
	for _, mode := range []Mode{ModeSingle, ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 2, Partitions: 4, KeepTable: true}, true)
			ctx := context.Background()
			if _, err := s.Exec(ctx, fmt.Sprintf(pageRankCTE, 5)); err != nil {
				t.Fatal(err)
			}
			res, err := s.Exec(ctx, `SELECT COUNT(*) FROM PageRank`)
			if err != nil {
				t.Fatalf("kept table missing: %v", err)
			}
			if res.Rows[0][0].(int64) != 7 {
				t.Errorf("kept rows = %v", res.Rows[0][0])
			}
		})
	}
}

func TestWorkingTablesCleanedUp(t *testing.T) {
	eng := engine.New(engine.Config{})
	driver.RegisterEngine(t.Name(), eng)
	t.Cleanup(func() { driver.UnregisterEngine(t.Name()) })
	s, err := Open(driver.DriverName, driver.InprocDSN(t.Name()),
		Options{Mode: ModeAsync, Threads: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, `INSERT INTO edges VALUES (1, 2, 0.5), (2, 1, 0.5)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, fmt.Sprintf(pageRankCTE, 3)); err != nil {
		t.Fatal(err)
	}
	for _, name := range eng.TableNames() {
		if name != "edges" {
			t.Errorf("leftover table %q after execution", name)
		}
	}
}

func TestPassthroughStatements(t *testing.T) {
	s := newTestLoop(t, Options{}, false)
	ctx := context.Background()
	res, err := s.Exec(ctx, `SELECT COUNT(*) FROM edges`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != int64(len(testGraph)) {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if _, err := s.Exec(ctx, `CREATE TABLE extra (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Exec(ctx, `INSERT INTO extra VALUES (1), (2)`)
	if err != nil {
		t.Fatal(err)
	}
	if r2.RowsAffected != 2 {
		t.Errorf("affected = %d", r2.RowsAffected)
	}
}

func TestExecScriptMixed(t *testing.T) {
	s := newTestLoop(t, Options{Mode: ModeSingle}, false)
	res, err := s.ExecScript(context.Background(), `
CREATE TABLE nums (n BIGINT);
INSERT INTO nums VALUES (1), (2), (3);
SELECT SUM(n) FROM nums;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 6 {
		t.Errorf("sum = %v", res.Rows[0][0])
	}
}

func TestValidationErrors(t *testing.T) {
	s := newTestLoop(t, Options{}, false)
	ctx := context.Background()
	bad := []string{
		// Step never references the CTE.
		`WITH ITERATIVE r(id, v) AS (VALUES (1, 1) ITERATE SELECT 1, 2 UNTIL 1 ITERATIONS) SELECT * FROM r`,
		// Nonlinear recursion.
		`WITH RECURSIVE r(a) AS (VALUES (1) UNION ALL SELECT x.a FROM r AS x, r AS y) SELECT * FROM r`,
	}
	for _, q := range bad {
		if _, err := s.Exec(ctx, q); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", q)
		}
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	s := newTestLoop(t, Options{Mode: ModeSingle, MaxIterations: 5}, false)
	_, err := s.Exec(context.Background(), `
WITH ITERATIVE r(id, v) AS (
  VALUES (1, 1.0) ITERATE SELECT id, v + 1 FROM r UNTIL (SELECT MAX(v) FROM r) > 1000
) SELECT * FROM r`)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want max-iterations guard", err)
	}
}

func TestOnRoundCallback(t *testing.T) {
	var rounds []int
	s := newTestLoop(t, Options{Mode: ModeSync, Threads: 2, Partitions: 4,
		OnRound: func(r int, _ int64) { rounds = append(rounds, r) }}, true)
	if _, err := s.Exec(context.Background(), fmt.Sprintf(pageRankCTE, 4)); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 || rounds[3] != 4 {
		t.Errorf("rounds = %v", rounds)
	}
}

func TestModeParsing(t *testing.T) {
	for in, want := range map[string]Mode{
		"auto": ModeAuto, "single": ModeSingle, "script": ModeSingle,
		"sync": ModeSync, "async": ModeAsync, "asyncp": ModeAsyncPrio, "prio": ModeAsyncPrio,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("warp"); err == nil {
		t.Error("unknown mode must error")
	}
	if ModeAsyncPrio.String() != "asyncp" {
		t.Error("mode String wrong")
	}
}

// TestDeltaTerminationParallel exercises the Rdelta snapshot machinery
// under the partitioned executors: terminate once the largest per-node
// rank gain over one iteration falls under a threshold.
func TestDeltaTerminationParallel(t *testing.T) {
	q := `
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL DELTA (SELECT MAX(PageRank.Rank - PageRankdelta.Rank)
               FROM PageRank JOIN PageRankdelta ON PageRank.Node = PageRankdelta.Node) < 0.001
)
SELECT Node, Rank + Delta AS Rank FROM PageRank`
	converged := 0.0
	for _, v := range refPageRank(400, true) {
		converged += v
	}
	for _, mode := range []Mode{ModeSingle, ModeSync, ModeAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestLoop(t, Options{Mode: mode, Threads: 2, Partitions: 4}, true)
			res, err := s.Exec(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			got := rowsToMap(t, res)
			var sum float64
			for _, v := range got {
				sum += v
			}
			// The threshold cuts off slightly before the fix point.
			if sum < 0.9*converged || sum > converged*(1+1e-9) {
				t.Errorf("sum = %v, converged = %v", sum, converged)
			}
			if res.Stats.Iterations < 3 {
				t.Errorf("iterations = %d, suspiciously few", res.Stats.Iterations)
			}
		})
	}
}

// TestTCPParallelExecution drives the full partitioned executor over the
// wire protocol — every Compute/Gather statement crosses the network.
func TestTCPParallelExecution(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := wire.NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s, err := Open(driver.DriverName, driver.TCPDSN(addr),
		Options{Mode: ModeAsync, Threads: 3, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	outdeg := map[int64]int{}
	for _, e := range testGraph {
		outdeg[e.src]++
	}
	for _, e := range testGraph {
		q := fmt.Sprintf(`INSERT INTO edges VALUES (%d, %d, %g)`, e.src, e.dst, 1.0/float64(outdeg[e.src]))
		if _, err := s.Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Exec(ctx, pageRankConvergeCTE)
	if err != nil {
		t.Fatal(err)
	}
	converged := 0.0
	for _, v := range refPageRank(400, true) {
		converged += v
	}
	got := rowsToMap(t, res)
	var sum float64
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-converged) > 1e-3 {
		t.Fatalf("over-TCP fix point = %v, want %v", sum, converged)
	}
	if !res.Stats.Parallelized {
		t.Fatal("not parallelized over TCP")
	}
}

// TestRecursiveUnionDistinct computes transitive closure over a cyclic
// graph — terminates only because UNION (without ALL) deduplicates the
// delta against R (semi-naive with set semantics).
func TestRecursiveUnionDistinct(t *testing.T) {
	s := newTestLoop(t, Options{}, false)
	res, err := s.Exec(context.Background(), `
WITH RECURSIVE reach(src, dst) AS (
  SELECT src, dst FROM edges
  UNION
  SELECT reach.src, edges.dst
  FROM reach JOIN edges ON reach.dst = edges.src
)
SELECT COUNT(*) FROM reach`)
	if err != nil {
		t.Fatal(err)
	}
	// Reference closure via Floyd-Warshall-style saturation.
	adj := map[[2]int64]bool{}
	nodes := map[int64]bool{}
	for _, e := range testGraph {
		adj[[2]int64{e.src, e.dst}] = true
		nodes[e.src], nodes[e.dst] = true, true
	}
	for changed := true; changed; {
		changed = false
		for a := range nodes {
			for b := range nodes {
				if !adj[[2]int64{a, b}] {
					continue
				}
				for c := range nodes {
					if adj[[2]int64{b, c}] && !adj[[2]int64{a, c}] {
						adj[[2]int64{a, c}] = true
						changed = true
					}
				}
			}
		}
	}
	if got := res.Rows[0][0].(int64); got != int64(len(adj)) {
		t.Fatalf("closure size = %d, want %d", got, len(adj))
	}
}
