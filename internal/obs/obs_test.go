package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderAndMulti(t *testing.T) {
	rec := &Recorder{}
	var funcCount int
	tr := Multi(nil, rec, FuncTracer(func(Event) { funcCount++ }))
	tr.Emit(RoundStart{Round: 1})
	tr.Emit(RoundEnd{Round: 1, Changed: 5})
	tr.Emit(RoundStart{Round: 2})
	if got := rec.Count("round_start"); got != 2 {
		t.Errorf("round_start count = %d, want 2", got)
	}
	if got := rec.Count("round_end"); got != 1 {
		t.Errorf("round_end count = %d, want 1", got)
	}
	if funcCount != 3 {
		t.Errorf("func tracer saw %d events, want 3", funcCount)
	}
	evs := rec.Events()
	if len(evs) != 3 || evs[1].Name() != "round_end" {
		t.Errorf("events = %v", evs)
	}
	if re, ok := evs[1].(RoundEnd); !ok || re.Changed != 5 {
		t.Errorf("round_end payload = %+v", evs[1])
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Error("Reset left events behind")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils must be nil")
	}
	if Multi(rec) == nil {
		t.Error("Multi of one tracer must not be nil")
	}
}

func TestEventNames(t *testing.T) {
	for ev, want := range map[Event]string{
		ExecStart{}:        "exec_start",
		ExecEnd{}:          "exec_end",
		RoundStart{}:       "round_start",
		RoundEnd{}:         "round_end",
		PartitionDone{}:    "partition_done",
		Fallback{}:         "fallback",
		TerminationCheck{}: "termination_check",
	} {
		if ev.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", ev, ev.Name(), want)
		}
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("stmt_total").Add(3)
	r.Counter("stmt_total").Inc()
	if got := r.Counter("stmt_total").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Gauge("inflight").Set(7)
	r.Gauge("inflight").Add(-2)
	if got := r.Gauge("inflight").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	h := r.Histogram("latency")
	h.Observe(5 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(time.Minute) // overflow bucket
	snap := r.Snapshot()
	if snap.Empty() {
		t.Fatal("snapshot must not be empty")
	}
	hs := snap.Histograms["latency"]
	if hs.Count != 3 || hs.Min != 5*time.Microsecond || hs.Max != time.Minute {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	var bucketTotal int64
	sawOverflow := false
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
		if b.UpperBound == 0 {
			sawOverflow = true
		}
	}
	if bucketTotal != 3 || !sawOverflow {
		t.Errorf("buckets = %+v", hs.Buckets)
	}
	if hs.Mean() <= 0 {
		t.Errorf("mean = %v", hs.Mean())
	}
	if out := snap.Format(); out == "" {
		t.Error("Format returned nothing")
	}
}

func TestHistogramTime(t *testing.T) {
	h := &Histogram{}
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
}

// TestConcurrentUse exercises the registry and a recorder from many
// goroutines (run under -race by the CI target).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	rec := &Recorder{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
				rec.Emit(PartitionDone{Part: i, Round: j})
				if j%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 1600 || snap.Gauges["g"] != 1600 || snap.Histograms["h"].Count != 1600 {
		t.Errorf("snapshot = %+v", snap)
	}
	if rec.Count("partition_done") != 1600 {
		t.Errorf("recorded = %d", rec.Count("partition_done"))
	}
}
