// Package obs is SQLoop's dependency-free observability layer: a
// Tracer interface carrying typed execution events, and a lightweight
// metrics registry (counters, gauges, duration histograms) with
// snapshot export. The paper's entire evaluation (§VI) depends on
// seeing inside iterative execution — per-iteration runtimes, message
// table counts, convergence of Sync vs. Async vs. AsyncP — and every
// layer of this repository (core executors, embedded engine, driver,
// wire protocol) reports through this package.
//
// The package deliberately imports nothing beyond the standard
// library's sync/time/fmt so that any layer, including the engine and
// the wire protocol, can depend on it without cycles.
package obs

import (
	"sync"
	"time"
)

// Event is one typed execution event. Concrete event types are plain
// structs so observers can switch on them; Name returns a stable
// snake_case identifier for logging and counting.
type Event interface {
	Name() string
}

// Tracer receives execution events. Implementations must be safe for
// concurrent use: parallel executors emit PartitionDone from worker
// goroutines while the coordinator emits round events.
type Tracer interface {
	Emit(ev Event)
}

// ExecStart is emitted once when an iterative or recursive CTE begins
// executing (after validation, before any table work).
type ExecStart struct {
	// Kind is "iterative" or "recursive".
	Kind string
	// CTE is the CTE's declared name.
	CTE string
	// Mode names the requested execution mode (before auto-selection
	// and fallback).
	Mode string
}

// Name implements Event.
func (ExecStart) Name() string { return "exec_start" }

// ExecEnd is emitted once when the CTE execution finishes (successfully
// or not).
type ExecEnd struct {
	// CTE is the CTE's declared name.
	CTE string
	// Mode names the mode that actually ran.
	Mode string
	// Iterations is the number of completed rounds.
	Iterations int
	// Elapsed is the wall time of the execution.
	Elapsed time.Duration
	// Err holds the failure message, empty on success.
	Err string
}

// Name implements Event.
func (ExecEnd) Name() string { return "exec_end" }

// RoundStart is emitted when a round/iteration begins. Under the
// asynchronous executors a "round" is virtual — it completes when the
// slowest partition advances — so RoundStart is emitted at the moment
// the round is recognized, immediately before its RoundEnd.
type RoundStart struct {
	// Round is the 1-based round number.
	Round int
}

// Name implements Event.
func (RoundStart) Name() string { return "round_start" }

// RoundEnd is emitted when a round/iteration completes. One RoundEnd is
// emitted per counted iteration in every mode, so observers can rely on
// count(RoundEnd) == ExecStats.Iterations.
type RoundEnd struct {
	// Round is the 1-based round number.
	Round int
	// Changed is the number of rows changed during the round (the
	// paper's per-iteration delta size).
	Changed int64
	// Duration is the wall time of the round.
	Duration time.Duration
	// Partitions counts partition tasks that completed in the round
	// (0 for the single-threaded executors).
	Partitions int
	// MessageTables counts message tables created during the round.
	MessageTables int
	// MaxWorker and MinWorker are the longest and shortest per-partition
	// worker times observed in the round — the straggler spread (§V-B
	// barrier cost). Zero for the single-threaded executors.
	MaxWorker time.Duration
	MinWorker time.Duration
}

// Name implements Event.
func (RoundEnd) Name() string { return "round_end" }

// PartitionDone is emitted by the parallel executors whenever one
// partition task finishes on a worker connection.
type PartitionDone struct {
	// Round is the partition's 1-based completed round count at the
	// time the task finished.
	Round int
	// Part is the partition index.
	Part int
	// Phase is "compute", "gather" or "pair" (the fused
	// gather-then-compute task of the async scheduler).
	Phase string
	// Changed is the number of rows the task changed.
	Changed int64
	// Duration is the task's wall time on the worker.
	Duration time.Duration
}

// Name implements Event.
func (PartitionDone) Name() string { return "partition_done" }

// Fallback is emitted when a requested parallel mode falls back to
// single-threaded execution because the analyzer (§V-A) did not qualify
// the query.
type Fallback struct {
	// CTE is the CTE's declared name.
	CTE string
	// Reason is the analyzer's explanation.
	Reason string
}

// Name implements Event.
func (Fallback) Name() string { return "fallback" }

// TerminationCheck is emitted each time the UNTIL condition (Table I of
// the paper) is evaluated.
type TerminationCheck struct {
	// Round is the 1-based round the check ran after.
	Round int
	// Kind is "iterations", "updates" or "expr".
	Kind string
	// Updated is the row-change count handed to the check.
	Updated int64
	// Satisfied reports whether the condition held.
	Satisfied bool
}

// Name implements Event.
func (TerminationCheck) Name() string { return "termination_check" }

// Checkpoint is emitted after the execution state of an iterative or
// recursive CTE is snapshotted to disk at a round boundary.
type Checkpoint struct {
	// CTE is the CTE's declared name.
	CTE string
	// Round is the 1-based round the snapshot captures.
	Round int
	// Tables is the number of state tables in the snapshot.
	Tables int
	// Bytes is the snapshot file size.
	Bytes int64
	// Elapsed is the wall time spent reading state and writing the file.
	Elapsed time.Duration
}

// Name implements Event.
func (Checkpoint) Name() string { return "checkpoint" }

// ShardExchange is emitted once per source shard per exchange wave of
// a sharded execution: the rows this shard's message tables emitted for
// keys owned by other shards, routed to their owners between rounds.
type ShardExchange struct {
	// Round is the 1-based round (or async cycle) the exchange follows.
	Round int
	// Shard is the source shard index the rows were read from.
	Shard int
	// Rows is how many rows left this shard for other shards.
	Rows int64
	// Tables is the number of message tables drained on this shard.
	Tables int
	// Duration is the wall time of the read+route+insert wave.
	Duration time.Duration
}

// Name implements Event.
func (ShardExchange) Name() string { return "shard_exchange" }

// ShardFailover is emitted when the shard-group coordinator replaces a
// dead shard endpoint with a standby replica before replaying the run
// from the last group checkpoint.
type ShardFailover struct {
	// Shard is the partition index whose endpoint was replaced.
	Shard int
	// From and To are the old (dead) and new (standby) engine DSNs.
	From string
	To   string
	// Round is the checkpointed round the replay resumes after (0 when
	// no snapshot existed yet and the run replays from the seed).
	Round int
	// Epoch is the group topology epoch after the swap.
	Epoch int64
}

// Name implements Event.
func (ShardFailover) Name() string { return "shard_failover" }

// ShardRebalance is emitted when a shard group repartitions online
// between rounds: partition rows are re-routed by PARTHASH under the
// new shard count and shipped through the batch codec.
type ShardRebalance struct {
	// Round is the completed round the repartition landed after.
	Round int
	// From and To are the old and new shard counts.
	From int
	To   int
	// Epoch is the group topology epoch after the change.
	Epoch int64
	// Rows counts partition rows that changed owner.
	Rows int64
	// Duration is the wall time of the whole repartition wave.
	Duration time.Duration
}

// Name implements Event.
func (ShardRebalance) Name() string { return "shard_rebalance" }

// ShardHandoff is emitted when the prioritized async scheduler offloads
// the slowest shard's pending delta queue: the straggler's undelivered
// message rows are combined on a helper shard and handed back as one
// pre-aggregated message table.
type ShardHandoff struct {
	// Round is the async cycle the handoff happened in.
	Round int
	// From is the straggler shard whose pending queue was offloaded.
	From int
	// To is the helper shard that combined the rows.
	To int
	// Tables is how many pending message tables were folded into one.
	Tables int
	// Rows is how many pending rows were shipped to the helper.
	Rows int64
}

// Name implements Event.
func (ShardHandoff) Name() string { return "shard_handoff" }

// Restore is emitted when an execution starts from a snapshot instead
// of the seed query.
type Restore struct {
	// CTE is the CTE's declared name.
	CTE string
	// Round is the checkpointed round execution resumes after.
	Round int
	// Key identifies the snapshot (query+mode+engine hash).
	Key string
}

// Name implements Event.
func (Restore) Name() string { return "restore" }

// Retry is emitted when CTE execution restarts after a recoverable
// failure (a lost engine connection with checkpointing enabled).
type Retry struct {
	// CTE is the CTE's declared name.
	CTE string
	// Attempt is the 1-based recovery attempt.
	Attempt int
	// Err is the failure that triggered the retry.
	Err string
	// Backoff is the sleep taken before this attempt.
	Backoff time.Duration
}

// Name implements Event.
func (Retry) Name() string { return "retry" }

// NopTracer discards every event.
type NopTracer struct{}

// Emit implements Tracer.
func (NopTracer) Emit(Event) {}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(Event)

// Emit implements Tracer.
func (f FuncTracer) Emit(ev Event) { f(ev) }

// multiTracer fans one event out to several tracers in order.
type multiTracer []Tracer

// Emit implements Tracer.
func (m multiTracer) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// Multi combines tracers, skipping nils. It returns nil when nothing
// remains so callers can test for "no observer at all".
func Multi(ts ...Tracer) Tracer {
	var kept multiTracer
	for _, t := range ts {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}

// Recorder is a Tracer that stores every event, for tests and for
// EXPLAIN ANALYZE-style reporting. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many recorded events carry the given Name.
func (r *Recorder) Count(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Name() == name {
			n++
		}
	}
	return n
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}
