package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named counters, gauges and duration histograms.
// Lookup by name takes a short lock; the returned instruments update
// via atomics, so hot paths should resolve them once and cache the
// pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBounds is the number of finite histogram bucket bounds; the array
// carries one extra slot for the overflow bucket.
const numBounds = 7

// histogramBounds are the upper bounds of the histogram buckets, a
// log-ish ladder from 10µs to 10s; observations above the last bound
// land in the implicit overflow bucket.
var histogramBounds = [numBounds]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram aggregates durations into fixed log-scale buckets plus
// count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [numBounds + 1]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(histogramBounds) && d > histogramBounds[i] {
		i++
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[i]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Time runs f and observes its duration (a convenience for
// instrumenting call sites).
func (h *Histogram) Time(f func()) {
	start := time.Now()
	f()
	h.Observe(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i < len(histogramBounds) {
			b.UpperBound = histogramBounds[i]
		} // else: overflow bucket, UpperBound zero means +inf
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Bucket is one populated histogram bucket. UpperBound zero marks the
// overflow bucket (observations above the largest bound).
type Bucket struct {
	UpperBound time.Duration
	Count      int64
}

// HistogramSnapshot is a plain-value copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets []Bucket
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot is a plain-value copy of a registry at one instant.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Empty reports whether the snapshot carries no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Format renders the snapshot as sorted human-readable lines (the CLI's
// \metrics output).
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-40s count=%d mean=%v min=%v max=%v\n",
			n, h.Count, h.Mean().Round(time.Microsecond),
			h.Min.Round(time.Microsecond), h.Max.Round(time.Microsecond))
		for _, bk := range h.Buckets {
			bound := "+inf"
			if bk.UpperBound != 0 {
				bound = bk.UpperBound.String()
			}
			fmt.Fprintf(&b, "%-40s   le=%-8s %d\n", "", bound, bk.Count)
		}
	}
	return b.String()
}
