package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"sqloop/internal/engine"
	"sqloop/internal/sqltypes"
)

// PR8Run is one SSSP matrix measurement in BENCH_PR8.json: a backend ×
// mode × vectorize-switch cell, with the wall time, engine row
// throughput and the engine's batch/fallback counters for the run.
type PR8Run struct {
	Figure       string  `json:"figure"`
	Backend      string  `json:"backend"` // heap | btree | lsm
	Profile      string  `json:"profile"`
	Mode         string  `json:"mode"`
	Vectorize    bool    `json:"vectorize"`
	Rounds       int     `json:"rounds"`
	RowsScanned  int64   `json:"rows_scanned"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`
	Result       float64 `json:"result"`
	VecBatches   int64   `json:"vec_batches"`
	VecFallbacks int64   `json:"vec_fallbacks"`
}

// PR8Micro is one hot-loop micro-measurement in BENCH_PR8.json:
// steady-state per-row time and allocations per prepared-statement
// execution with vectorization off (compiled row-at-a-time) and on
// (batch kernels). Both configurations keep the expression compiler
// enabled, so the delta isolates the batch layer.
type PR8Micro struct {
	Figure     string  `json:"figure"`
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	NsPerRowRo float64 `json:"ns_per_row_rowpath"`
	NsPerRowV  float64 `json:"ns_per_row_vectorized"`
	Speedup    float64 `json:"speedup"`
	AllocsRo   float64 `json:"allocs_per_op_rowpath"`
	AllocsV    float64 `json:"allocs_per_op_vectorized"`
}

// PR8Report is the top-level BENCH_PR8.json document (schema in
// EXPERIMENTS.md).
type PR8Report struct {
	Figure string     `json:"figure"`
	Runs   []PR8Run   `json:"runs"`
	Micro  []PR8Micro `json:"micro"`
}

// PR8Fig reruns the SSSP matrix (every engine backend × mode) with
// vectorized batch execution on and off, verifies the two halves
// agree, and writes the measurements plus per-row micro-benchmarks to
// outPath as BENCH_PR8.json.
func PR8Fig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	report := &PR8Report{Figure: "vec"}
	for _, eng := range sc.Engines {
		backend := backendFor(eng)
		fmt.Fprintf(w, "\n== PR8 / SSSP with %s (%s): vectorize on vs off ==\n", EngineLabel(eng), backend)
		fmt.Fprintf(w, "%-12s %10s %10s %12s %10s %10s\n",
			"mode", "vectorize", "time(s)", "rows/sec", "batches", "fallbacks")
		for _, mode := range pr4Modes {
			var results [2]float64
			for i, disable := range []bool{false, true} {
				m, err := Run(ctx, Config{
					Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
					Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
					WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
					DisableVectorize: disable,
				}, SSSPQuery(sc.SSSPDest))
				if err != nil {
					return fmt.Errorf("pr8 %s/%s: %w", eng, ModeLabel(mode), err)
				}
				results[i] = m.ScalarResult()
				rps := 0.0
				if m.Elapsed > 0 {
					rps = float64(m.Work.RowsScanned) / m.Elapsed.Seconds()
				}
				label := "on"
				if disable {
					label = "off"
				}
				fmt.Fprintf(w, "%-12s %10s %10.3f %12.0f %10d %10d\n",
					ModeLabel(mode), label, m.Elapsed.Seconds(), rps, m.VecBatches, m.VecFallbacks)
				report.Runs = append(report.Runs, PR8Run{
					Figure: "pr8-sssp", Backend: backend, Profile: eng,
					Mode: ModeLabel(mode), Vectorize: !disable,
					Rounds: m.Rounds, RowsScanned: m.Work.RowsScanned,
					RowsPerSec: rps, WallSeconds: m.Elapsed.Seconds(),
					Result:     results[i],
					VecBatches: m.VecBatches, VecFallbacks: m.VecFallbacks,
				})
				if disable && m.VecBatches != 0 {
					return fmt.Errorf("pr8 %s/%s: vectorize off still ran %d batches",
						eng, ModeLabel(mode), m.VecBatches)
				}
			}
			if results[0] != results[1] {
				return fmt.Errorf("pr8 %s/%s: vectorize on/off results differ: %v vs %v",
					eng, ModeLabel(mode), results[0], results[1])
			}
		}
	}

	micro, err := pr8Micro()
	if err != nil {
		return err
	}
	report.Micro = micro
	fmt.Fprintf(w, "\n== PR8 / hot-loop ns per row: compiled row-at-a-time vs vectorized ==\n")
	fmt.Fprintf(w, "%-16s %12s %12s %8s %12s %12s\n",
		"workload", "row ns/row", "vec ns/row", "speedup", "row allocs", "vec allocs")
	for _, mr := range micro {
		fmt.Fprintf(w, "%-16s %12.1f %12.1f %7.2fx %12.1f %12.1f\n",
			mr.Name, mr.NsPerRowRo, mr.NsPerRowV, mr.Speedup, mr.AllocsRo, mr.AllocsV)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d runs, %d micro rows)\n", outPath, len(report.Runs), len(micro))
	return nil
}

// pr8Micro measures the per-row cost of three hot-path statements
// through prepared statements, vectorize off vs on (compiler enabled
// in both). Each pair is first cross-checked for identical rendered
// results — the batch layer must be invisible to queries.
func pr8Micro() ([]PR8Micro, error) {
	const tableRows = 2000
	workloads := []struct{ name, sql string }{
		{"VecFilter", "SELECT a FROM t WHERE b < 500 AND a % 7 = 1"},
		{"VecGroupBy", "SELECT a % 10, COUNT(*), SUM(b) FROM t GROUP BY a % 10"},
		{"VecJoinProbe", "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE u.b >= 0"},
	}
	out := make([]PR8Micro, 0, len(workloads))
	for _, wl := range workloads {
		var nsPerOp, allocs [2]float64
		var rendered [2]string
		for i, disable := range []bool{true, false} {
			cfg, err := engine.Profile("pgsim")
			if err != nil {
				return nil, err
			}
			cfg.DisableVectorize = disable
			sess := engine.New(cfg).NewSession()
			if err := pr4Load(sess); err != nil {
				return nil, err
			}
			h, err := sess.Prepare(wl.sql)
			if err != nil {
				return nil, err
			}
			res, err := sess.ExecPrepared(h, nil)
			if err != nil {
				return nil, err
			}
			rendered[i] = renderRows(res.Rows)
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					if _, err := sess.ExecPrepared(h, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsPerOp[i] = float64(br.NsPerOp())
			allocs[i] = testing.AllocsPerRun(20, func() {
				_, _ = sess.ExecPrepared(h, nil)
			})
		}
		if rendered[0] != rendered[1] {
			return nil, fmt.Errorf("pr8 %s: vectorize on/off results differ", wl.name)
		}
		speedup := 0.0
		if nsPerOp[1] > 0 {
			speedup = nsPerOp[0] / nsPerOp[1]
		}
		out = append(out, PR8Micro{
			Figure: "pr8-micro", Name: wl.name, Rows: tableRows,
			NsPerRowRo: nsPerOp[0] / tableRows, NsPerRowV: nsPerOp[1] / tableRows,
			Speedup: speedup, AllocsRo: allocs[0], AllocsV: allocs[1],
		})
	}
	return out, nil
}

// renderRows prints a result row set with value types, so the
// identical-result gate catches type drift (int vs float) that a plain
// string render would mask.
func renderRows(rows []sqltypes.Row) string {
	s := ""
	for _, r := range rows {
		for _, v := range r {
			s += fmt.Sprintf("%T:%v|", v.GoValue(), v.GoValue())
		}
		s += "\n"
	}
	return s
}
