package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"sqloop/internal/core"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/graph"
)

// PR5Run is one scale-out measurement in BENCH_PR5.json: an engine ×
// mode × shard-count cell of the sharded SSSP experiment, with the wall
// time, round count and the number of delta rows shipped between shards.
type PR5Run struct {
	Figure         string  `json:"figure"`
	Backend        string  `json:"backend"` // heap | btree | lsm
	Profile        string  `json:"profile"`
	Mode           string  `json:"mode"`
	Shards         int     `json:"shards"`
	Rounds         int     `json:"rounds"`
	WallSeconds    float64 `json:"wall_seconds"`
	CrossShardRows int64   `json:"cross_shard_rows"`
	Result         float64 `json:"result"`
}

// PR5Report is the top-level BENCH_PR5.json document (schema in
// EXPERIMENTS.md).
type PR5Report struct {
	Figure string   `json:"figure"`
	Runs   []PR5Run `json:"runs"`
}

// pr5ShardCounts is the scale-out axis: the same query on one, two and
// four engine endpoints.
var pr5ShardCounts = []int{1, 2, 4}

// pr5Modes is the scheduler axis; ModeSingle is covered by the 1-shard
// delegation path already, so only the parallel schedulers sweep here.
var pr5Modes = []core.Mode{core.ModeSync, core.ModeAsync, core.ModeAsyncPrio}

// runSharded executes query on a fresh group of n embedded engines with
// the dataset loaded on every shard, returning the result and wall time.
func runSharded(ctx context.Context, cfg Config, n int, query string) (*core.Result, time.Duration, error) {
	engCfg, err := engine.Profile(cfg.Profile)
	if err != nil {
		return nil, 0, err
	}
	if cfg.WithCost {
		engCfg.Cost = engine.DefaultCost(engCfg.Dialect)
	}
	opts := core.Options{
		Mode:          cfg.Mode,
		Threads:       cfg.Threads,
		Partitions:    cfg.Partitions,
		Dialect:       engCfg.Dialect.String(),
		PriorityQuery: cfg.Priority,
	}
	handles := make([]string, 0, n)
	unregister := func() {
		for _, h := range handles {
			driver.UnregisterEngine(h)
		}
	}
	shards := make([]*core.SQLoop, 0, n)
	for i := 0; i < n; i++ {
		handle := "bench-shard-" + strconv.FormatInt(handleSeq.Add(1), 10)
		driver.RegisterEngine(handle, engine.New(engCfg))
		handles = append(handles, handle)
		s, err := core.Open(driver.DriverName, driver.InprocDSN(handle), opts)
		if err != nil {
			for _, sh := range shards {
				_ = sh.Close()
			}
			unregister()
			return nil, 0, err
		}
		shards = append(shards, s)
	}
	grp, err := core.NewShardGroup(shards, opts, true)
	if err != nil {
		for _, sh := range shards {
			_ = sh.Close()
		}
		unregister()
		return nil, 0, err
	}
	defer func() {
		_ = grp.Close()
		unregister()
	}()

	g, err := graph.ByName(cfg.Dataset, cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, 0, err
	}
	// Every shard holds the full edge relation; the group hash-partitions
	// only the working table.
	for i := 0; i < n; i++ {
		if err := graph.Load(ctx, grp.Shard(i).DB(), "edges", g, 500); err != nil {
			return nil, 0, err
		}
	}

	started := time.Now()
	res, err := grp.Exec(ctx, query)
	elapsed := time.Since(started)
	if err != nil {
		return nil, 0, err
	}
	return res, elapsed, nil
}

// pr5Scalar extracts the single numeric result cell (the SSSP distance).
func pr5Scalar(res *core.Result) float64 {
	if res == nil || len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
		return 0
	}
	switch v := res.Rows[0][0].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return 0
	}
}

// PR5Fig reruns sharded SSSP across every engine backend, scheduler and
// shard count, verifies every shard count of a cell agrees bit for bit,
// and writes the measurements to outPath as BENCH_PR5.json.
func PR5Fig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	report := &PR5Report{Figure: "pr5"}
	for _, eng := range sc.Engines {
		backend := backendFor(eng)
		fmt.Fprintf(w, "\n== PR5 / sharded SSSP with %s (%s): scale-out across engine endpoints ==\n",
			EngineLabel(eng), backend)
		fmt.Fprintf(w, "%-8s %8s %10s %8s %12s %10s\n",
			"mode", "shards", "time(s)", "rounds", "exchanged", "result")
		for _, mode := range pr5Modes {
			results := make([]float64, 0, len(pr5ShardCounts))
			for _, n := range pr5ShardCounts {
				cfg := Config{
					Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
					Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
					WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
				}
				res, elapsed, err := runSharded(ctx, cfg, n, SSSPQuery(sc.SSSPDest))
				if err != nil {
					return fmt.Errorf("pr5 %s/%s/%d shards: %w", eng, ModeLabel(mode), n, err)
				}
				val := pr5Scalar(res)
				results = append(results, val)
				fmt.Fprintf(w, "%-8s %8d %10.3f %8d %12d %10.3f\n",
					ModeLabel(mode), n, elapsed.Seconds(), res.Stats.Iterations,
					res.Stats.CrossShardRows, val)
				report.Runs = append(report.Runs, PR5Run{
					Figure: "pr5-sssp", Backend: backend, Profile: eng,
					Mode: ModeLabel(mode), Shards: n,
					Rounds: res.Stats.Iterations, WallSeconds: elapsed.Seconds(),
					CrossShardRows: res.Stats.CrossShardRows, Result: val,
				})
			}
			for _, v := range results[1:] {
				if v != results[0] {
					return fmt.Errorf("pr5 %s/%s: results diverge across shard counts: %v",
						eng, ModeLabel(mode), results)
				}
			}
		}
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d runs)\n", outPath, len(report.Runs))
	return nil
}
