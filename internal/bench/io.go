package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// IORun is one durability-cost measurement in BENCH_PR7.json: an
// engine × mode × backend cell of the SSSP workload, where the disk
// backend sweeps the buffer pool size. RoundsPerSec is the headline
// series: how much iteration throughput the durable pager costs
// relative to the in-memory heap at each pool size.
type IORun struct {
	Figure       string  `json:"figure"`
	Profile      string  `json:"profile"`
	Mode         string  `json:"mode"`
	Backend      string  `json:"backend"`    // heap | disk
	PoolPages    int     `json:"pool_pages"` // 8 KiB pages; 0 for heap
	Rounds       int     `json:"rounds"`
	WallSeconds  float64 `json:"wall_seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	PageReads    int64   `json:"page_reads"`
	PageWrites   int64   `json:"page_writes"`
	Evictions    int64   `json:"evictions"`
	HitRatePct   int64   `json:"hit_rate_percent"`
	Result       float64 `json:"result"`
}

// IOReport is the top-level BENCH_PR7.json document (schema in
// EXPERIMENTS.md).
type IOReport struct {
	Figure string  `json:"figure"`
	Runs   []IORun `json:"runs"`
}

// roundsPerSec is the throughput headline; 0 when the run measured no
// wall time (degenerate smoke scales).
func roundsPerSec(rounds int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(rounds) / seconds
}

// IOFig compares the in-memory heap backend against the durable pager
// backend on SSSP, sweeping the disk buffer pool across sc.IOPoolPages.
// Every disk run must reproduce the heap result exactly — durability
// may cost throughput, never answers. Measurements go to outPath as
// BENCH_PR7.json.
func IOFig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	report := &IOReport{Figure: "io"}
	for _, eng := range sc.Engines {
		fmt.Fprintf(w, "\n== IO / SSSP with %s: heap vs durable pager, %d nodes ==\n",
			EngineLabel(eng), sc.SSSPNodes)
		fmt.Fprintf(w, "%-8s %-8s %10s %10s %8s %10s %10s %10s %9s %8s\n",
			"mode", "backend", "pool", "time(s)", "rounds", "rounds/s",
			"pg-reads", "pg-writes", "evicted", "hit%")
		for _, mode := range parallelModes {
			base := Config{
				Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
				Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
				WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
			}
			query := SSSPQuery(sc.SSSPDest)

			heap, err := Run(ctx, base, query)
			if err != nil {
				return fmt.Errorf("io %s/%s heap: %w", eng, ModeLabel(mode), err)
			}
			want := heap.ScalarResult()
			fmt.Fprintf(w, "%-8s %-8s %10s %10.3f %8d %10.2f %10s %10s %9s %8s\n",
				ModeLabel(mode), "heap", "-", heap.Elapsed.Seconds(), heap.Rounds,
				roundsPerSec(heap.Rounds, heap.Elapsed.Seconds()), "-", "-", "-", "-")
			report.Runs = append(report.Runs, IORun{
				Figure: "io-sssp", Profile: eng, Mode: ModeLabel(mode), Backend: "heap",
				Rounds: heap.Rounds, WallSeconds: heap.Elapsed.Seconds(),
				RoundsPerSec: roundsPerSec(heap.Rounds, heap.Elapsed.Seconds()),
				Result:       want,
			})

			for _, pool := range sc.IOPoolPages {
				cfg := base
				cfg.Backend = "disk"
				cfg.BufferPoolPages = pool
				disk, err := Run(ctx, cfg, query)
				if err != nil {
					return fmt.Errorf("io %s/%s disk pool=%d: %w", eng, ModeLabel(mode), pool, err)
				}
				if got := disk.ScalarResult(); got != want {
					return fmt.Errorf("io %s/%s disk pool=%d: result %v diverges from heap %v",
						eng, ModeLabel(mode), pool, got, want)
				}
				fmt.Fprintf(w, "%-8s %-8s %10d %10.3f %8d %10.2f %10d %10d %9d %8d\n",
					ModeLabel(mode), "disk", pool, disk.Elapsed.Seconds(), disk.Rounds,
					roundsPerSec(disk.Rounds, disk.Elapsed.Seconds()),
					disk.Pager.PageReads, disk.Pager.PageWrites,
					disk.Pager.Evictions, disk.Pager.HitRatePct)
				report.Runs = append(report.Runs, IORun{
					Figure: "io-sssp", Profile: eng, Mode: ModeLabel(mode), Backend: "disk",
					PoolPages: pool, Rounds: disk.Rounds, WallSeconds: disk.Elapsed.Seconds(),
					RoundsPerSec: roundsPerSec(disk.Rounds, disk.Elapsed.Seconds()),
					PageReads:    disk.Pager.PageReads, PageWrites: disk.Pager.PageWrites,
					Evictions: disk.Pager.Evictions, HitRatePct: disk.Pager.HitRatePct,
					Result: disk.ScalarResult(),
				})
			}
		}
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d runs)\n", outPath, len(report.Runs))
	return nil
}
