package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"sqloop/internal/core"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/graph"
	"sqloop/internal/obs"
	"sqloop/internal/wire"
)

// ElasticRun is one elasticity measurement in BENCH_PR10.json: either a
// failover cell (a shard endpoint dies mid-round and a standby takes
// over) or a rebalance cell (the group repartitions 2→4 online). Every
// cell carries an identical-result gate against an undisturbed
// single-node run over the same transport.
type ElasticRun struct {
	Figure      string  `json:"figure"` // elastic-failover | elastic-rebalance
	Backend     string  `json:"backend"`
	Profile     string  `json:"profile"`
	Mode        string  `json:"mode"`
	Shards      int     `json:"shards"`
	Standbys    int     `json:"standbys,omitempty"`
	ToShards    int     `json:"to_shards,omitempty"`
	Rounds      int     `json:"rounds"`
	WallSeconds float64 `json:"wall_seconds"`

	// Failover cells.
	Failovers       int     `json:"failovers,omitempty"`
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`

	// Rebalance cells.
	Rebalances         int     `json:"rebalances,omitempty"`
	RebalanceSeconds   float64 `json:"rebalance_seconds,omitempty"`
	RowsMoved          int64   `json:"rows_moved,omitempty"`
	RoundsPerSecBefore float64 `json:"rounds_per_sec_before,omitempty"`
	RoundsPerSecAfter  float64 `json:"rounds_per_sec_after,omitempty"`

	Identical bool `json:"identical"`
}

// ElasticReport is the top-level BENCH_PR10.json document (schema in
// EXPERIMENTS.md).
type ElasticReport struct {
	Figure string       `json:"figure"`
	Runs   []ElasticRun `json:"runs"`
}

// sameResults is the identical-result gate: column names, row count,
// row order and the Go type and value of every cell must agree.
func sameResults(a, b *core.Result) bool {
	if a == nil || b == nil || len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if fmt.Sprintf("%T|%v", a.Rows[i][j], a.Rows[i][j]) !=
				fmt.Sprintf("%T|%v", b.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// wireInstance starts one killable wire endpoint and opens a SQLoop
// over TCP with fast reconnect policies. The returned cleanup closes
// the instance, server and DSN override.
func wireInstance(cfg engine.Config, opts core.Options) (*wire.Server, *core.SQLoop, func(), error) {
	srv := wire.NewServer(engine.New(cfg))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	dsn := driver.TCPDSN(addr)
	driver.Configure(dsn, driver.Config{Retry: driver.RetryPolicy{
		MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	}})
	s, err := core.Open(driver.DriverName, dsn, opts)
	if err != nil {
		driver.Configure(dsn, driver.Config{})
		_ = srv.Close()
		return nil, nil, nil, err
	}
	cleanup := func() {
		_ = s.Close()
		_ = srv.Close()
		driver.Configure(dsn, driver.Config{})
	}
	return srv, s, cleanup, nil
}

// elasticFailoverCell runs SSSP on 2 wire shards with one standby,
// kills shard 0's server at the end of round 2, and measures how long
// the group takes from the kill to the first completed round on the
// promoted replica.
func elasticFailoverCell(ctx context.Context, cfg Config, query string) (ElasticRun, error) {
	run := ElasticRun{
		Figure: "elastic-failover", Backend: backendFor(cfg.Profile),
		Profile: cfg.Profile, Mode: ModeLabel(cfg.Mode), Shards: 2, Standbys: 1,
	}
	engCfg, err := engine.Profile(cfg.Profile)
	if err != nil {
		return run, err
	}
	if cfg.WithCost {
		engCfg.Cost = engine.DefaultCost(engCfg.Dialect)
	}
	baseOpts := core.Options{
		Mode: cfg.Mode, Threads: cfg.Threads, Partitions: cfg.Partitions,
		Dialect: engCfg.Dialect.String(), PriorityQuery: cfg.Priority,
	}

	// Undisturbed single-node reference over the same transport.
	refOpts := baseOpts
	refOpts.Mode = core.ModeSingle
	_, ref, refCleanup, err := wireInstance(engCfg, refOpts)
	if err != nil {
		return run, err
	}
	defer refCleanup()

	g, err := graph.ByName(cfg.Dataset, cfg.Nodes, cfg.Seed)
	if err != nil {
		return run, err
	}
	if err := graph.Load(ctx, ref.DB(), "edges", g, 500); err != nil {
		return run, err
	}
	want, err := ref.Exec(ctx, query)
	if err != nil {
		return run, err
	}

	ckptDir, err := os.MkdirTemp("", "sqloop-elastic-")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(ckptDir)

	var mu sync.Mutex
	var killAt, recoveredAt time.Time
	var failedOver bool
	opts := baseOpts
	servers := make([]*wire.Server, 3)
	instances := make([]*core.SQLoop, 3)
	opts.Observer = obs.FuncTracer(func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case obs.RoundEnd:
			if e.Round == 2 && killAt.IsZero() {
				killAt = time.Now()
				_ = servers[0].Close()
			}
			if failedOver && recoveredAt.IsZero() {
				recoveredAt = time.Now()
			}
		case obs.ShardFailover:
			failedOver = true
		}
	})
	opts.Checkpoint = core.CheckpointOptions{
		Dir: ckptDir, EveryRounds: 1, RetryBackoff: time.Millisecond,
	}
	for i := range servers {
		srv, s, cleanup, err := wireInstance(engCfg, opts)
		if err != nil {
			return run, err
		}
		defer cleanup()
		servers[i], instances[i] = srv, s
		if err := graph.Load(ctx, s.DB(), "edges", g, 500); err != nil {
			return run, err
		}
	}
	group, err := core.NewElasticShardGroup(instances[:2], core.ShardGroupOptions{
		Replicas:     instances[2:],
		ProbeTimeout: time.Second,
	}, opts, false)
	if err != nil {
		return run, err
	}

	started := time.Now()
	res, err := group.Exec(ctx, query)
	if err != nil {
		return run, fmt.Errorf("faulted run: %w", err)
	}
	run.WallSeconds = time.Since(started).Seconds()
	run.Rounds = res.Stats.Iterations
	run.Failovers = res.Stats.Failovers
	run.Identical = sameResults(want, res)
	mu.Lock()
	if !killAt.IsZero() && !recoveredAt.IsZero() {
		run.RecoverySeconds = recoveredAt.Sub(killAt).Seconds()
	}
	mu.Unlock()
	return run, nil
}

// elasticRebalanceCell runs SSSP on 2 embedded shards with 2 standbys
// and a scheduled 2→4 repartition after round 2, measuring round
// throughput on both sides of the topology change.
func elasticRebalanceCell(ctx context.Context, cfg Config, query string) (ElasticRun, error) {
	run := ElasticRun{
		Figure: "elastic-rebalance", Backend: backendFor(cfg.Profile),
		Profile: cfg.Profile, Mode: ModeLabel(cfg.Mode), Shards: 2, Standbys: 2, ToShards: 4,
	}
	engCfg, err := engine.Profile(cfg.Profile)
	if err != nil {
		return run, err
	}
	if cfg.WithCost {
		engCfg.Cost = engine.DefaultCost(engCfg.Dialect)
	}
	opts := core.Options{
		Mode: cfg.Mode, Threads: cfg.Threads, Partitions: cfg.Partitions,
		Dialect: engCfg.Dialect.String(), PriorityQuery: cfg.Priority,
	}

	g, err := graph.ByName(cfg.Dataset, cfg.Nodes, cfg.Seed)
	if err != nil {
		return run, err
	}
	open := func(opts core.Options) (*core.SQLoop, func(), error) {
		handle := "bench-elastic-" + strconv.FormatInt(handleSeq.Add(1), 10)
		driver.RegisterEngine(handle, engine.New(engCfg))
		s, err := core.Open(driver.DriverName, driver.InprocDSN(handle), opts)
		if err != nil {
			driver.UnregisterEngine(handle)
			return nil, nil, err
		}
		return s, func() {
			_ = s.Close()
			driver.UnregisterEngine(handle)
		}, nil
	}

	refOpts := opts
	refOpts.Mode = core.ModeSingle
	ref, refCleanup, err := open(refOpts)
	if err != nil {
		return run, err
	}
	defer refCleanup()
	if err := graph.Load(ctx, ref.DB(), "edges", g, 500); err != nil {
		return run, err
	}
	want, err := ref.Exec(ctx, query)
	if err != nil {
		return run, err
	}

	ckptDir, err := os.MkdirTemp("", "sqloop-elastic-")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(ckptDir)

	var mu sync.Mutex
	roundAt := map[int]time.Time{}
	var rebAt time.Time
	var rebRound int
	var rebDur time.Duration
	opts.Observer = obs.FuncTracer(func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e := ev.(type) {
		case obs.RoundEnd:
			if _, seen := roundAt[e.Round]; !seen {
				roundAt[e.Round] = time.Now()
			}
		case obs.ShardRebalance:
			rebAt, rebRound, rebDur = time.Now(), e.Round, e.Duration
			run.RowsMoved = e.Rows
		}
	})
	opts.Checkpoint = core.CheckpointOptions{
		Dir: ckptDir, EveryRounds: 1, RetryBackoff: time.Millisecond,
	}
	instances := make([]*core.SQLoop, 4)
	for i := range instances {
		s, cleanup, err := open(opts)
		if err != nil {
			return run, err
		}
		defer cleanup()
		instances[i] = s
		if err := graph.Load(ctx, s.DB(), "edges", g, 500); err != nil {
			return run, err
		}
	}
	group, err := core.NewElasticShardGroup(instances[:2], core.ShardGroupOptions{
		Replicas:  instances[2:],
		Rebalance: []core.RebalanceStep{{AfterRound: 2, Shards: 4}},
	}, opts, false)
	if err != nil {
		return run, err
	}

	started := time.Now()
	res, err := group.Exec(ctx, query)
	if err != nil {
		return run, fmt.Errorf("rebalanced run: %w", err)
	}
	run.WallSeconds = time.Since(started).Seconds()
	run.Rounds = res.Stats.Iterations
	run.Rebalances = res.Stats.Rebalances
	run.RebalanceSeconds = rebDur.Seconds()
	run.Identical = sameResults(want, res)
	mu.Lock()
	defer mu.Unlock()
	if !rebAt.IsZero() {
		if before := rebAt.Sub(started) - rebDur; before > 0 && rebRound > 0 {
			run.RoundsPerSecBefore = float64(rebRound) / before.Seconds()
		}
		if after := time.Since(rebAt); after > 0 && run.Rounds > rebRound {
			run.RoundsPerSecAfter = float64(run.Rounds-rebRound) / after.Seconds()
		}
	}
	return run, nil
}

// ElasticFig measures elastic shard execution: replica failover cost
// and online 2→4 rebalance throughput, per engine backend and
// scheduler, with an identical-result gate on every cell. Results go to
// outPath as BENCH_PR10.json.
func ElasticFig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	report := &ElasticReport{Figure: "elastic"}
	for _, eng := range sc.Engines {
		fmt.Fprintf(w, "\n== PR10 / elastic shards with %s (%s): failover and online rebalance ==\n",
			EngineLabel(eng), backendFor(eng))
		fmt.Fprintf(w, "%-10s %-8s %8s %10s %12s %12s %10s\n",
			"axis", "mode", "rounds", "time(s)", "recovery(s)", "reb rows", "identical")
		for _, mode := range pr5Modes {
			cfg := Config{
				Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
				Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
				WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
			}
			query := SSSPQuery(sc.SSSPDest)

			fo, err := elasticFailoverCell(ctx, cfg, query)
			if err != nil {
				return fmt.Errorf("pr10 failover %s/%s: %w", eng, ModeLabel(mode), err)
			}
			if !fo.Identical {
				return fmt.Errorf("pr10 failover %s/%s: result diverged from single-node", eng, ModeLabel(mode))
			}
			if fo.Failovers < 1 {
				return fmt.Errorf("pr10 failover %s/%s: no failover recorded", eng, ModeLabel(mode))
			}
			report.Runs = append(report.Runs, fo)
			fmt.Fprintf(w, "%-10s %-8s %8d %10.3f %12.3f %12s %10v\n",
				"failover", ModeLabel(mode), fo.Rounds, fo.WallSeconds, fo.RecoverySeconds, "-", fo.Identical)

			rb, err := elasticRebalanceCell(ctx, cfg, query)
			if err != nil {
				return fmt.Errorf("pr10 rebalance %s/%s: %w", eng, ModeLabel(mode), err)
			}
			if !rb.Identical {
				return fmt.Errorf("pr10 rebalance %s/%s: result diverged from single-node", eng, ModeLabel(mode))
			}
			if rb.Rebalances < 1 {
				return fmt.Errorf("pr10 rebalance %s/%s: the 2→4 step never fired", eng, ModeLabel(mode))
			}
			report.Runs = append(report.Runs, rb)
			fmt.Fprintf(w, "%-10s %-8s %8d %10.3f %12.3f %12d %10v\n",
				"rebalance", ModeLabel(mode), rb.Rounds, rb.WallSeconds, rb.RebalanceSeconds, rb.RowsMoved, rb.Identical)
		}
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d runs)\n", outPath, len(report.Runs))
	return nil
}
