package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"sqloop/internal/core"
)

func tinyScale() Scale {
	return Scale{
		PRNodes: 120, PRIters: 3,
		SSSPNodes: 120, SSSPDest: 20,
		DQNodes: 150, DQHops: []int{1, 5},
		Partitions: 4,
		Threads:    []int{1, 2},
		MaxThreads: 2,
		Engines:    []string{"pgsim"},
		WithCost:   false,
		Seed:       1,
	}
}

func TestRunMetrics(t *testing.T) {
	m, err := Run(context.Background(), Config{
		Profile: "pgsim", Mode: core.ModeSync, Threads: 2, Partitions: 4,
		Dataset: "google-web", Nodes: 150, Seed: 1,
		SampleEvery: 5 * time.Millisecond,
		SampleQuery: "SELECT SUM(Rank + Delta) FROM pagerank",
	}, PageRankQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 5 {
		t.Errorf("rounds = %d", m.Rounds)
	}
	if m.Elapsed <= 0 || m.Work.Statements == 0 || m.Work.RowsJoined == 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ConvergenceTime > m.Elapsed {
		t.Errorf("convergence %v > elapsed %v", m.ConvergenceTime, m.Elapsed)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Profile: "oracle", Dataset: "google-web", Nodes: 10}, "SELECT 1"); err == nil {
		t.Error("bad profile must error")
	}
	if _, err := Run(ctx, Config{Profile: "pgsim", Dataset: "nope", Nodes: 10}, "SELECT 1"); err == nil {
		t.Error("bad dataset must error")
	}
	if _, err := Run(ctx, Config{Profile: "pgsim", Dataset: "google-web", Nodes: 10}, "SELEC"); err == nil {
		t.Error("bad SQL must error")
	}
}

func TestScalarResult(t *testing.T) {
	m, err := Run(context.Background(), Config{
		Profile: "pgsim", Mode: core.ModeSync, Threads: 1, Partitions: 2,
		Dataset: "berkstan-web", Nodes: 100, Seed: 1,
	}, DQQuery(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if m.ScalarResult() < 1 {
		t.Errorf("explored = %v", m.ScalarResult())
	}
}

func TestFigureRunnersProduceSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure at tiny scale")
	}
	ctx := context.Background()
	sc := tinyScale()
	var buf bytes.Buffer
	if err := Fig4SSSP(ctx, &buf, sc); err != nil {
		t.Fatal(err)
	}
	if err := Fig4PR(ctx, &buf, sc); err != nil {
		t.Fatal(err)
	}
	if err := Fig4DQ(ctx, &buf, sc); err != nil {
		t.Fatal(err)
	}
	if err := Fig5(ctx, &buf, sc); err != nil {
		t.Fatal(err)
	}
	if err := Fig6(ctx, &buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig 4 / SSSP", "Fig 4 / PR", "Fig 4 / DQ", "Fig 5 / PR",
		"Fig 5 / SSSP", "Fig 6 / PR", "Fig 6 / DQ",
		"Sync", "Async", "AsyncP", "SQL Script", "PostgreSQL(sim)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestLabels(t *testing.T) {
	if ModeLabel(core.ModeSingle) != "SQL Script" || ModeLabel(core.ModeAsyncPrio) != "AsyncP" {
		t.Error("mode labels wrong")
	}
	if EngineLabel("pgsim") != "PostgreSQL(sim)" || EngineLabel("x") != "x" {
		t.Error("engine labels wrong")
	}
	if len(Engines()) != 3 {
		t.Error("engines list wrong")
	}
}
