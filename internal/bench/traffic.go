package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sqloop/internal/core"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/graph"
	"sqloop/internal/obs"
	"sqloop/internal/serve"
	"sqloop/internal/wire"
)

// The PR6 traffic experiment: an open-loop generator fires point
// queries at a pooled server at a fixed arrival rate while a second
// tenant runs iterative CTEs in the background, sweeping the client
// concurrency (connection) budget. Open loop means arrivals never wait
// for completions, so queueing delay shows up in the latency tail
// instead of silently throttling the offered load — the
// coordinated-omission-free way to measure a serving layer.

// TrafficRun is one concurrency level of BENCH_PR6.json.
type TrafficRun struct {
	Figure      string  `json:"figure"`
	Backend     string  `json:"backend"`
	Profile     string  `json:"profile"`
	Connections int     `json:"connections"`  // client connection budget
	RatePerSec  int     `json:"rate_per_sec"` // offered point-query arrival rate
	Offered     int     `json:"offered"`      // point queries issued
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected"`          // server admission rejections
	Deadlined   int     `json:"deadline_exceeded"` // per-request deadline expiries
	Errors      int     `json:"errors"`            // anything else
	Throughput  float64 `json:"throughput_per_sec"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	P999Millis  float64 `json:"p999_ms"`
	IterRounds  int64   `json:"iter_rounds"` // background tenant's completed CTE rounds
	IterExecs   int64   `json:"iter_execs"`  // background tenant's completed executions
}

// TrafficReport is the top-level BENCH_PR6.json document.
type TrafficReport struct {
	Figure      string       `json:"figure"`
	MaxSessions int          `json:"max_sessions"`
	QueueDepth  int          `json:"queue_depth"`
	Runs        []TrafficRun `json:"runs"`
}

// trafficServer is the system under test: an embedded engine behind
// the wire protocol with the multi-tenant session pool enabled.
func trafficServer(profile string, withCost bool, pool serve.Config) (*wire.Server, string, error) {
	engCfg, err := engine.Profile(profile)
	if err != nil {
		return nil, "", err
	}
	if withCost {
		engCfg.Cost = engine.DefaultCost(engCfg.Dialect)
	}
	eng := engine.New(engCfg)
	srv := wire.NewServer(eng)
	eng.SetMetrics(srv.Metrics())
	srv.EnablePool(pool)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return srv, addr, nil
}

// percentile reads the q-quantile from an already-sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// trafficIterLoop runs iterative CTEs back to back as tenant "iter"
// until ctx is cancelled, reporting completed rounds and executions.
func trafficIterLoop(ctx context.Context, dsn, query string, rounds, execs *atomic.Int64) error {
	s, err := core.Open(driver.DriverName, dsn, core.Options{
		Mode:    core.ModeSingle,
		Dialect: "postgres",
		Observer: obs.FuncTracer(func(e obs.Event) {
			if _, ok := e.(obs.RoundEnd); ok {
				rounds.Add(1)
			}
		}),
	})
	if err != nil {
		return err
	}
	defer s.Close()
	for ctx.Err() == nil {
		if _, err := s.Exec(ctx, query); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		execs.Add(1)
	}
	return nil
}

// trafficLevel drives one concurrency level against a fresh server and
// returns its measurements.
func trafficLevel(ctx context.Context, sc Scale, profile string, conns int) (TrafficRun, error) {
	run := TrafficRun{
		Figure: "pr6-traffic", Backend: backendFor(profile), Profile: profile,
		Connections: conns, RatePerSec: sc.TrafficRate,
	}
	srv, addr, err := trafficServer(profile, sc.WithCost, serve.Config{
		MaxSessions: sc.TrafficSessions, QueueDepth: sc.TrafficQueue,
	})
	if err != nil {
		return run, err
	}
	defer srv.Close()
	base := driver.TCPDSN(addr)

	// Load the shared edge relation through a setup tenant.
	loader, err := core.Open(driver.DriverName, driver.TenantDSN(base, "setup", 0),
		core.Options{Dialect: "postgres"})
	if err != nil {
		return run, err
	}
	g, err := graph.ByName("twitter-ego", sc.TrafficNodes, sc.Seed)
	if err != nil {
		_ = loader.Close()
		return run, err
	}
	if err := graph.Load(ctx, loader.DB(), "edges", g, 500); err != nil {
		_ = loader.Close()
		return run, err
	}
	if err := loader.Close(); err != nil {
		return run, err
	}

	// Background iterative tenant: SSSP fix points back to back.
	bg, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	var iterRounds, iterExecs atomic.Int64
	iterDone := make(chan error, 1)
	go func() {
		iterDone <- trafficIterLoop(bg, driver.TenantDSN(base, "iter", 0),
			SSSPQuery(sc.SSSPDest%sc.TrafficNodes), &iterRounds, &iterExecs)
	}()

	// Point-query tenant: an open-loop arrival process over a bounded
	// connection budget. database/sql queues requests beyond the budget
	// client-side, so that wait is part of the measured latency.
	point, err := core.Open(driver.DriverName, driver.TenantDSN(base, "point", 0),
		core.Options{Dialect: "postgres"})
	if err != nil {
		return run, err
	}
	defer point.Close()
	db := point.DB()
	db.SetMaxOpenConns(conns)

	total := int(float64(sc.TrafficRate) * sc.TrafficSeconds)
	interval := time.Second / time.Duration(sc.TrafficRate)
	var (
		mu        sync.Mutex
		durations = make([]time.Duration, 0, total)
		rejected  atomic.Int64
		deadlined atomic.Int64
		failed    atomic.Int64
		wg        sync.WaitGroup
	)
	started := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < total; i++ {
		select {
		case <-tick.C:
		case <-ctx.Done():
			return run, ctx.Err()
		}
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			qctx, cancel := context.WithTimeout(ctx, sc.TrafficDeadline)
			defer cancel()
			src := int64(seq) % sc.TrafficNodes
			t0 := time.Now()
			var n int64
			err := db.QueryRowContext(qctx,
				fmt.Sprintf("SELECT COUNT(*) FROM edges WHERE src = %d", src)).Scan(&n)
			d := time.Since(t0)
			switch {
			case err == nil:
				mu.Lock()
				durations = append(durations, d)
				mu.Unlock()
			case errors.Is(err, serve.ErrAdmissionRejected):
				rejected.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				deadlined.Add(1)
			default:
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(started)
	bgCancel()
	if err := <-iterDone; err != nil {
		return run, fmt.Errorf("background iterative tenant: %w", err)
	}

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	run.Offered = total
	run.Completed = len(durations)
	run.Rejected = int(rejected.Load())
	run.Deadlined = int(deadlined.Load())
	run.Errors = int(failed.Load())
	run.Throughput = float64(len(durations)) / elapsed.Seconds()
	run.P50Millis = millis(percentile(durations, 0.50))
	run.P99Millis = millis(percentile(durations, 0.99))
	run.P999Millis = millis(percentile(durations, 0.999))
	run.IterRounds = iterRounds.Load()
	run.IterExecs = iterExecs.Load()
	return run, nil
}

// TrafficFig sweeps the open-loop mixed workload across client
// concurrency levels and writes BENCH_PR6.json.
func TrafficFig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	profile := sc.Engines[0]
	report := &TrafficReport{
		Figure: "pr6-traffic", MaxSessions: sc.TrafficSessions, QueueDepth: sc.TrafficQueue,
	}
	fmt.Fprintf(w, "\n== PR6 / serving traffic with %s: %d req/s open loop + background iterative tenant, %d sessions ==\n",
		EngineLabel(profile), sc.TrafficRate, sc.TrafficSessions)
	fmt.Fprintf(w, "%-6s %9s %9s %8s %8s %8s %9s %9s %9s %7s\n",
		"conns", "offered", "done", "rej", "dline", "thru/s", "p50(ms)", "p99(ms)", "p999(ms)", "rounds")
	for _, conns := range sc.TrafficConns {
		run, err := trafficLevel(ctx, sc, profile, conns)
		if err != nil {
			return fmt.Errorf("traffic level %d conns: %w", conns, err)
		}
		if run.Errors > 0 {
			return fmt.Errorf("traffic level %d conns: %d unexpected query errors", conns, run.Errors)
		}
		fmt.Fprintf(w, "%-6d %9d %9d %8d %8d %8.0f %9.2f %9.2f %9.2f %7d\n",
			run.Connections, run.Offered, run.Completed, run.Rejected, run.Deadlined,
			run.Throughput, run.P50Millis, run.P99Millis, run.P999Millis, run.IterRounds)
		report.Runs = append(report.Runs, run)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d levels)\n", outPath, len(report.Runs))
	return nil
}
