package bench

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"sqloop/internal/core"
	"sqloop/internal/driver"
	"sqloop/internal/engine"
	"sqloop/internal/graph"
	"sqloop/internal/obs"
	"sqloop/internal/storage"
)

// Config describes one experiment run.
type Config struct {
	Profile    string // pgsim | mysim | mariasim
	Mode       core.Mode
	Threads    int
	Partitions int
	Dataset    string // google-web | twitter-ego | berkstan-web
	Nodes      int64
	Seed       int64
	// WithCost enables the calibrated latency model (DESIGN.md) so that
	// multi-connection parallelism behaves like the paper's multi-core
	// server.
	WithCost bool
	// Priority overrides the AsyncP priority query.
	Priority string
	// DisableMaterialization turns off the constant-join
	// materialization (the SQL-script baseline runs without it).
	DisableMaterialization bool
	// SampleEvery enables the convergence sampler at this period
	// (0 disables). The paper sampled every 5 s; scaled-down runs sample
	// faster.
	SampleEvery time.Duration
	// SampleQuery is what the sampler evaluates (e.g. the sum of rank).
	SampleQuery string
	// DisableStmtCache turns off both the engine's parse+plan cache and
	// the middleware's per-connection prepared statements, for
	// cache-ablation runs (the -fig stmtcache comparison).
	DisableStmtCache bool
	// DisableExprCompile turns off the engine's expression compiler so
	// every predicate and projection is interpreted from its AST, for
	// compile-ablation runs (the -fig pr4 comparison).
	DisableExprCompile bool
	// DisableVectorize turns off vectorized batch execution while
	// keeping compiled programs, for vectorize-ablation runs (the
	// -fig vec comparison).
	DisableVectorize bool
	// Workers sets the engine's intra-query parallelism degree (0 = one
	// per CPU, 1 = serial); DisableParallel forces serial execution, for
	// parallel-ablation runs (the -fig par comparison).
	Workers         int
	DisableParallel bool
	// Backend selects the engine's storage backend by name (heap, btree,
	// lsm, disk); empty keeps the profile default. The disk backend runs
	// with DataDir and BufferPoolPages (both optional) and reports pager
	// I/O in Metrics.Pager (the -fig io comparison).
	Backend         string
	DataDir         string
	BufferPoolPages int
}

// PagerStats is the durable backend's I/O delta over one run, all zero
// for the in-memory backends.
type PagerStats struct {
	PageReads  int64
	PageWrites int64
	Evictions  int64
	HitRatePct int64 // buffer pool hit rate, percent
}

// Sample is one convergence observation.
type Sample struct {
	At    time.Duration
	Value float64
}

// Metrics is the outcome of one experiment run.
type Metrics struct {
	Elapsed   time.Duration
	Rounds    int
	MsgTables int
	// RoundStats is the per-round execution trace (delta sizes, round
	// runtimes, straggler spread) — the data behind the paper's §VI
	// convergence plots.
	RoundStats []core.RoundStats
	Result     *core.Result
	Samples    []Sample
	FinalValue float64 // last sampled value (or NaN when sampling off)
	// ConvergenceTime is when the sampled value first reached 99% of its
	// final value (the paper's convergence definition for PageRank).
	ConvergenceTime time.Duration
	// Work is the engine's logical work delta over the run.
	Work engine.StatsSnapshot
	// StmtCache is the engine statement-cache delta over the run (all
	// zero when the cache is disabled).
	StmtCache engine.StmtCacheStats
	// Pager is the buffer pool / page I/O activity of the run (disk
	// backend only).
	Pager PagerStats
	// VecBatches / VecFallbacks count vectorized windows executed and
	// windows that fell back to row-at-a-time execution during the run
	// (both zero with vectorization disabled).
	VecBatches   int64
	VecFallbacks int64
}

// StmtsPerRound is the statement overhead per completed round.
func (m *Metrics) StmtsPerRound() float64 {
	if m.Rounds == 0 {
		return float64(m.Work.Statements)
	}
	return float64(m.Work.Statements) / float64(m.Rounds)
}

var handleSeq atomic.Int64

// Run executes the query under cfg against a fresh embedded engine with
// the dataset loaded, returning the measured metrics.
func Run(ctx context.Context, cfg Config, query string) (*Metrics, error) {
	engCfg, err := engine.Profile(cfg.Profile)
	if err != nil {
		return nil, err
	}
	if cfg.WithCost {
		engCfg.Cost = engine.DefaultCost(engCfg.Dialect)
	}
	if cfg.DisableStmtCache {
		engCfg.StmtCacheSize = -1
	}
	engCfg.DisableExprCompile = cfg.DisableExprCompile
	engCfg.DisableVectorize = cfg.DisableVectorize
	engCfg.Workers = cfg.Workers
	engCfg.DisableParallel = cfg.DisableParallel
	if cfg.Backend != "" {
		kind, err := storage.ParseKind(cfg.Backend)
		if err != nil {
			return nil, err
		}
		engCfg.Backend = kind
		engCfg.DataDir = cfg.DataDir
		engCfg.BufferPoolPages = cfg.BufferPoolPages
	}
	eng := engine.New(engCfg)
	var pagerReg *obs.Registry
	if engCfg.Backend == storage.KindDisk {
		pagerReg = obs.NewRegistry()
		eng.SetMetrics(pagerReg)
	}
	handle := "bench-" + strconv.FormatInt(handleSeq.Add(1), 10)
	driver.RegisterEngine(handle, eng)
	defer func() {
		driver.UnregisterEngine(handle)
		// The disk backend holds page files, WALs and possibly a temp
		// data directory; the in-memory backends make this a no-op.
		_ = eng.Close()
	}()

	s, err := core.Open(driver.DriverName, driver.InprocDSN(handle), core.Options{
		Mode:                   cfg.Mode,
		Threads:                cfg.Threads,
		Partitions:             cfg.Partitions,
		Dialect:                engCfg.Dialect.String(),
		PriorityQuery:          cfg.Priority,
		DisableMaterialization: cfg.DisableMaterialization,
		DisableStmtCache:       cfg.DisableStmtCache,
		DisableExprCompile:     cfg.DisableExprCompile,
		DisableVectorize:       cfg.DisableVectorize,
		Workers:                cfg.Workers,
		DisableParallel:        cfg.DisableParallel,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	g, err := graph.ByName(cfg.Dataset, cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := graph.Load(ctx, s.DB(), "edges", g, 500); err != nil {
		return nil, err
	}
	before := eng.Stats()
	cacheBefore := eng.StmtCacheStats()
	vecBatchesBefore, vecFallbacksBefore := eng.VecStats()

	// Convergence sampler: a separate connection polling the live CTE
	// view, like the paper's sampling thread (§VI-A).
	var samples []Sample
	stopSampler := func() {}
	if cfg.SampleEvery > 0 && cfg.SampleQuery != "" {
		stop := make(chan struct{})
		done := make(chan struct{})
		start := time.Now()
		go func() {
			defer close(done)
			ticker := time.NewTicker(cfg.SampleEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					var v float64
					// The view appears once partitioning finishes;
					// ignore errors before/after.
					if err := s.DB().QueryRowContext(ctx, cfg.SampleQuery).Scan(&v); err == nil {
						samples = append(samples, Sample{At: time.Since(start), Value: v})
					}
				}
			}
		}()
		stopSampler = func() {
			close(stop)
			<-done
		}
	}

	started := time.Now()
	res, err := s.Exec(ctx, query)
	elapsed := time.Since(started)
	stopSampler()
	if err != nil {
		return nil, err
	}

	after := eng.Stats()
	cacheAfter := eng.StmtCacheStats()
	m := &Metrics{
		Elapsed:    elapsed,
		Rounds:     res.Stats.Iterations,
		MsgTables:  res.Stats.MessageTables,
		RoundStats: res.Stats.Rounds,
		Result:     res,
		Samples:    samples,
		Work: engine.StatsSnapshot{
			RowsScanned:  after.RowsScanned - before.RowsScanned,
			RowsJoined:   after.RowsJoined - before.RowsJoined,
			RowsGrouped:  after.RowsGrouped - before.RowsGrouped,
			RowsInserted: after.RowsInserted - before.RowsInserted,
			RowsUpdated:  after.RowsUpdated - before.RowsUpdated,
			RowsDeleted:  after.RowsDeleted - before.RowsDeleted,
			Statements:   after.Statements - before.Statements,
		},
		StmtCache: engine.StmtCacheStats{
			Hits:      cacheAfter.Hits - cacheBefore.Hits,
			Misses:    cacheAfter.Misses - cacheBefore.Misses,
			Evictions: cacheAfter.Evictions - cacheBefore.Evictions,
			Size:      cacheAfter.Size,
		},
	}
	vecBatchesAfter, vecFallbacksAfter := eng.VecStats()
	m.VecBatches = vecBatchesAfter - vecBatchesBefore
	m.VecFallbacks = vecFallbacksAfter - vecFallbacksBefore
	if pagerReg != nil {
		snap := pagerReg.Snapshot()
		m.Pager = PagerStats{
			PageReads:  snap.Counters["sqloop_pager_page_reads"],
			PageWrites: snap.Counters["sqloop_pager_page_writes"],
			Evictions:  snap.Counters["sqloop_pager_evictions"],
			HitRatePct: snap.Gauges["sqloop_pager_hit_rate_percent"],
		}
	}
	m.ConvergenceTime = elapsed
	if n := len(samples); n > 0 {
		m.FinalValue = samples[n-1].Value
		for _, sm := range samples {
			if sm.Value >= 0.99*m.FinalValue {
				m.ConvergenceTime = sm.At
				break
			}
		}
	}
	return m, nil
}

// ScalarResult extracts a single numeric result value (for SSSP/DQ).
func (m *Metrics) ScalarResult() float64 {
	if m.Result == nil || len(m.Result.Rows) == 0 || len(m.Result.Rows[0]) == 0 {
		return 0
	}
	switch v := m.Result.Rows[0][0].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return 0
	}
}

// ModeLabel renders a mode the way the paper's legends do.
func ModeLabel(m core.Mode) string {
	switch m {
	case core.ModeSingle:
		return "SQL Script"
	case core.ModeSync:
		return "Sync"
	case core.ModeAsync:
		return "Async"
	case core.ModeAsyncPrio:
		return "AsyncP"
	default:
		return m.String()
	}
}

// Engines lists the three simulated engines in the paper's order.
func Engines() []string { return []string{"pgsim", "mysim", "mariasim"} }

// EngineLabel maps a profile to the engine it simulates.
func EngineLabel(profile string) string {
	switch profile {
	case "pgsim":
		return "PostgreSQL(sim)"
	case "mysim":
		return "MySQL(sim)"
	case "mariasim":
		return "MariaDB(sim)"
	default:
		return profile
	}
}

// fmtDur prints a duration with millisecond resolution.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%8.3fs", d.Seconds())
}
