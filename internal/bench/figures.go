package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"sqloop/internal/core"
)

// Scale sets the experiment sizes. The defaults reproduce every figure
// at laptop scale; the paper's absolute dataset sizes are not a
// reproduction target (DESIGN.md).
type Scale struct {
	PRNodes    int64
	PRIters    int
	SSSPNodes  int64
	SSSPDest   int64
	DQNodes    int64
	DQHops     []int
	Partitions int
	Threads    []int // Fig 5 sweep
	MaxThreads int   // Fig 6 thread count
	Engines    []string
	WithCost   bool
	Seed       int64

	// IOPoolPages is the -fig io buffer pool sweep for the disk backend,
	// in 8 KiB pages.
	IOPoolPages []int

	// Serving-traffic experiment (BENCH_PR6.json): an open-loop point
	// query stream plus a background iterative tenant, swept across
	// client connection budgets against a fixed-size session pool.
	TrafficConns    []int         // client concurrency sweep
	TrafficRate     int           // offered arrivals per second
	TrafficSeconds  float64       // generator duration per level
	TrafficNodes    int64         // edge relation size
	TrafficSessions int           // server session pool size
	TrafficQueue    int           // per-tenant admission queue depth
	TrafficDeadline time.Duration // per point query deadline
}

// DefaultScale is the scaled-down default used by cmd/sqloopbench.
func DefaultScale() Scale {
	return Scale{
		PRNodes:    4000,
		PRIters:    30,
		SSSPNodes:  3000,
		SSSPDest:   100,
		DQNodes:    4000,
		DQHops:     []int{1, 5, 20, 100},
		Partitions: 16,
		Threads:    []int{1, 2, 4, 8, 16},
		MaxThreads: 16,
		Engines:    Engines(),
		WithCost:   true,
		Seed:       42,

		IOPoolPages: []int{64, 512, 4096},

		TrafficConns:    []int{2, 8, 32},
		TrafficRate:     200,
		TrafficSeconds:  3,
		TrafficNodes:    800,
		TrafficSessions: 4,
		TrafficQueue:    64,
		TrafficDeadline: 2 * time.Second,
	}
}

// Quick shrinks a scale for smoke runs.
func (s Scale) Quick() Scale {
	s.PRNodes, s.SSSPNodes, s.DQNodes = 1500, 1200, 1500
	s.PRIters = 15
	s.DQHops = []int{1, 20, 100}
	s.Partitions = 8
	s.Threads = []int{1, 2, 4}
	s.MaxThreads = 4
	s.Engines = []string{"pgsim"}
	s.TrafficConns = []int{2, 4, 8}
	s.TrafficRate = 100
	s.TrafficSeconds = 1
	s.TrafficNodes = 400
	return s
}

var parallelModes = []core.Mode{core.ModeSync, core.ModeAsync, core.ModeAsyncPrio}

func priorityFor(mode core.Mode, q string) string {
	if mode != core.ModeAsyncPrio {
		return ""
	}
	return q
}

// Fig4SSSP regenerates the Fig. 4 SSSP bars: single-threaded execution
// time per engine and method.
func Fig4SSSP(ctx context.Context, w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "\n== Fig 4 / SSSP: single-thread execution time (s), %d nodes ==\n", sc.SSSPNodes)
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "engine", "Sync", "Async", "AsyncP")
	for _, eng := range sc.Engines {
		times := make([]time.Duration, 0, 3)
		for _, mode := range parallelModes {
			m, err := Run(ctx, Config{
				Profile: eng, Mode: mode, Threads: 1, Partitions: sc.Partitions,
				Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
				WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
			}, SSSPQuery(sc.SSSPDest))
			if err != nil {
				return fmt.Errorf("fig4 sssp %s/%s: %w", eng, ModeLabel(mode), err)
			}
			times = append(times, m.Elapsed)
		}
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %10.3f\n", EngineLabel(eng),
			times[0].Seconds(), times[1].Seconds(), times[2].Seconds())
	}
	return nil
}

// Fig4PR regenerates the Fig. 4 PageRank convergence curves: sum of rank
// over time per method, one block per engine, plus the 99% convergence
// time.
func Fig4PR(ctx context.Context, w io.Writer, sc Scale) error {
	for _, eng := range sc.Engines {
		fmt.Fprintf(w, "\n== Fig 4 / PR with %s: convergence (sum of rank) vs time, single thread ==\n",
			EngineLabel(eng))
		for _, mode := range parallelModes {
			m, err := Run(ctx, Config{
				Profile: eng, Mode: mode, Threads: 1, Partitions: sc.Partitions,
				Dataset: "google-web", Nodes: sc.PRNodes, Seed: sc.Seed,
				WithCost: sc.WithCost, Priority: priorityFor(mode, PendingRankPriority),
				SampleEvery: 100 * time.Millisecond,
				SampleQuery: "SELECT SUM(Rank + Delta) FROM pagerank",
			}, PageRankQuery(sc.PRIters))
			if err != nil {
				return fmt.Errorf("fig4 pr %s/%s: %w", eng, ModeLabel(mode), err)
			}
			fmt.Fprintf(w, "%-8s total %s  convergence(99%%) %s  rounds %d\n",
				ModeLabel(mode), fmtDur(m.Elapsed), fmtDur(m.ConvergenceTime), m.Rounds)
			fmt.Fprintf(w, "  t(s):sum  ")
			for i, sm := range m.Samples {
				if i >= 12 {
					fmt.Fprintf(w, "...")
					break
				}
				fmt.Fprintf(w, "%.1f:%.0f  ", sm.At.Seconds(), sm.Value)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RoundTrace prints the per-round execution trace of one PageRank run
// per method: delta size, round runtime and straggler spread from
// ExecStats.Rounds. It is the tabular form of the paper's per-iteration
// convergence plots, built from the observability layer rather than the
// external sampler.
func RoundTrace(ctx context.Context, w io.Writer, sc Scale) error {
	eng := sc.Engines[0]
	fmt.Fprintf(w, "\n== Per-round trace / PR with %s, %d threads ==\n", EngineLabel(eng), sc.MaxThreads)
	for _, mode := range parallelModes {
		m, err := Run(ctx, Config{
			Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
			Dataset: "google-web", Nodes: sc.PRNodes, Seed: sc.Seed,
			WithCost: sc.WithCost, Priority: priorityFor(mode, PendingRankPriority),
		}, PageRankQuery(sc.PRIters))
		if err != nil {
			return fmt.Errorf("round trace %s/%s: %w", eng, ModeLabel(mode), err)
		}
		fmt.Fprintf(w, "%-8s %d rounds in %s\n", ModeLabel(mode), m.Rounds, fmtDur(m.Elapsed))
		fmt.Fprintf(w, "  %5s %10s %10s %6s %6s %12s %12s\n",
			"round", "changed", "dur(s)", "parts", "msgs", "max-worker", "min-worker")
		for i, r := range m.RoundStats {
			if i >= 12 && len(m.RoundStats) > 14 {
				fmt.Fprintf(w, "  ... (%d more rounds)\n", len(m.RoundStats)-i)
				break
			}
			fmt.Fprintf(w, "  %5d %10d %10.3f %6d %6d %12s %12s\n",
				r.Round, r.Changed, r.Duration.Seconds(), r.Partitions, r.MessageTables,
				r.MaxWorker.Round(time.Microsecond), r.MinWorker.Round(time.Microsecond))
		}
	}
	return nil
}

// StmtCacheFig compares PageRank runs with the statement/plan cache
// enabled and disabled: total time, per-round statement overhead and
// the cache hit rate. With the cache on, every round from the second
// onward re-executes statements prepared in round one, so the hit rate
// climbs toward 1 as rounds accumulate.
func StmtCacheFig(ctx context.Context, w io.Writer, sc Scale) error {
	modes := []core.Mode{core.ModeSingle, core.ModeSync, core.ModeAsync, core.ModeAsyncPrio}
	for _, eng := range sc.Engines {
		fmt.Fprintf(w, "\n== Statement cache / PR with %s, %d threads: cache on vs off ==\n",
			EngineLabel(eng), sc.MaxThreads)
		fmt.Fprintf(w, "%-12s %10s %10s %12s %12s %10s\n",
			"mode", "cache", "time(s)", "stmts/round", "ms/round", "hit-rate")
		for _, mode := range modes {
			for _, disable := range []bool{false, true} {
				m, err := Run(ctx, Config{
					Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
					Dataset: "google-web", Nodes: sc.PRNodes, Seed: sc.Seed,
					WithCost: sc.WithCost, Priority: priorityFor(mode, PendingRankPriority),
					DisableStmtCache: disable,
				}, PageRankQuery(sc.PRIters))
				if err != nil {
					return fmt.Errorf("stmtcache %s/%s: %w", eng, ModeLabel(mode), err)
				}
				label := "on"
				if disable {
					label = "off"
				}
				msPerRound := 0.0
				if m.Rounds > 0 {
					msPerRound = m.Elapsed.Seconds() * 1000 / float64(m.Rounds)
				}
				fmt.Fprintf(w, "%-12s %10s %10.3f %12.1f %12.3f %10.3f\n",
					ModeLabel(mode), label, m.Elapsed.Seconds(),
					m.StmtsPerRound(), msPerRound, m.StmtCache.HitRate())
			}
		}
	}
	return nil
}

// Fig4DQ regenerates the Fig. 4 DQ curves: execution time vs number of
// nodes explored, per engine and method.
func Fig4DQ(ctx context.Context, w io.Writer, sc Scale) error {
	for _, eng := range sc.Engines {
		fmt.Fprintf(w, "\n== Fig 4 / DQ with %s: execution time (s) vs nodes explored, single thread ==\n",
			EngineLabel(eng))
		fmt.Fprintf(w, "%-6s %10s %10s %10s %10s\n", "hops", "explored", "Sync", "Async", "AsyncP")
		for _, hops := range sc.DQHops {
			times := make([]time.Duration, 0, 3)
			explored := 0.0
			for _, mode := range parallelModes {
				m, err := Run(ctx, Config{
					Profile: eng, Mode: mode, Threads: 1, Partitions: sc.Partitions,
					Dataset: "berkstan-web", Nodes: sc.DQNodes, Seed: sc.Seed,
					WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
				}, DQQuery(1, hops))
				if err != nil {
					return fmt.Errorf("fig4 dq %s/%s: %w", eng, ModeLabel(mode), err)
				}
				times = append(times, m.Elapsed)
				explored = m.ScalarResult()
			}
			fmt.Fprintf(w, "%-6d %10.0f %10.3f %10.3f %10.3f\n", hops, explored,
				times[0].Seconds(), times[1].Seconds(), times[2].Seconds())
		}
	}
	return nil
}

// Fig5 regenerates the thread-scaling plots: PR convergence time and
// SSSP execution time vs worker threads, per engine and method.
func Fig5(ctx context.Context, w io.Writer, sc Scale) error {
	for _, query := range []string{"pr", "sssp"} {
		for _, eng := range sc.Engines {
			fmt.Fprintf(w, "\n== Fig 5 / %s with %s: time (s) vs threads ==\n",
				map[string]string{"pr": "PR", "sssp": "SSSP"}[query], EngineLabel(eng))
			fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "threads", "Sync", "Async", "AsyncP")
			for _, th := range sc.Threads {
				times := make([]time.Duration, 0, 3)
				for _, mode := range parallelModes {
					cfg := Config{
						Profile: eng, Mode: mode, Threads: th, Partitions: sc.Partitions,
						Seed: sc.Seed, WithCost: sc.WithCost,
					}
					var q string
					if query == "pr" {
						cfg.Dataset, cfg.Nodes = "google-web", sc.PRNodes
						cfg.Priority = priorityFor(mode, PendingRankPriority)
						q = PageRankQuery(sc.PRIters)
					} else {
						cfg.Dataset, cfg.Nodes = "twitter-ego", sc.SSSPNodes
						cfg.Priority = priorityFor(mode, MinFrontierPriority)
						q = SSSPQuery(sc.SSSPDest)
					}
					m, err := Run(ctx, cfg, q)
					if err != nil {
						return fmt.Errorf("fig5 %s %s/%s t=%d: %w", query, eng, ModeLabel(mode), th, err)
					}
					times = append(times, m.Elapsed)
				}
				fmt.Fprintf(w, "%-8d %10.3f %10.3f %10.3f\n", th,
					times[0].Seconds(), times[1].Seconds(), times[2].Seconds())
			}
		}
	}
	return nil
}

// Fig6 regenerates the SQL-script comparison: the naive multi-statement
// baseline (the single-threaded §III algorithm, no partitioning, no
// materialized join) against SQLoop's three parallel methods at full
// thread count, for PR and for the two-pages DQ.
func Fig6(ctx context.Context, w io.Writer, sc Scale) error {
	modes := []core.Mode{core.ModeSingle, core.ModeSync, core.ModeAsync, core.ModeAsyncPrio}
	for _, query := range []string{"pr", "dq"} {
		fmt.Fprintf(w, "\n== Fig 6 / %s: SQL script vs SQLoop (%d threads), time (s) ==\n",
			map[string]string{"pr": "PR", "dq": "DQ (100 clicks)"}[query], sc.MaxThreads)
		fmt.Fprintf(w, "%-16s %12s %10s %10s %10s\n", "engine", "SQL Script", "Sync", "Async", "AsyncP")
		for _, eng := range sc.Engines {
			times := make([]time.Duration, 0, 4)
			for _, mode := range modes {
				cfg := Config{
					Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
					Seed: sc.Seed, WithCost: sc.WithCost,
					DisableMaterialization: mode == core.ModeSingle,
				}
				var q string
				if query == "pr" {
					cfg.Dataset, cfg.Nodes = "google-web", sc.PRNodes
					cfg.Priority = priorityFor(mode, PendingRankPriority)
					q = PageRankQuery(sc.PRIters)
				} else {
					cfg.Dataset, cfg.Nodes = "berkstan-web", sc.DQNodes
					cfg.Priority = priorityFor(mode, MinFrontierPriority)
					q = DQQuery(1, 100)
				}
				m, err := Run(ctx, cfg, q)
				if err != nil {
					return fmt.Errorf("fig6 %s %s/%s: %w", query, eng, ModeLabel(mode), err)
				}
				times = append(times, m.Elapsed)
			}
			fmt.Fprintf(w, "%-16s %12.3f %10.3f %10.3f %10.3f\n", EngineLabel(eng),
				times[0].Seconds(), times[1].Seconds(), times[2].Seconds(), times[3].Seconds())
		}
	}
	return nil
}
