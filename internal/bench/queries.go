// Package bench is the experiment harness: the canonical workload
// queries (PageRank, SSSP, the Descendant Query), a convergence sampler,
// and one runner per table/figure of the paper's §VI, printing the same
// series the paper plots (see DESIGN.md's experiment index).
package bench

import "fmt"

// PageRankQuery is the paper's Example 2. The final query reports
// Rank + Delta so pending (unabsorbed) mass is visible to the
// convergence metric regardless of scheduler.
func PageRankQuery(iterations int) string {
	return fmt.Sprintf(`
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0.0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL %d ITERATIONS
)
SELECT Node, Rank + Delta AS Rank FROM PageRank`, iterations)
}

// SSSPQuery is the paper's Example 3 (source node 1, destination dest),
// with the source's Distance seeded to 0 — as printed in the paper the
// query cannot progress under snapshot semantics (see DESIGN.md).
func SSSPQuery(dest int64) string {
	return fmt.Sprintf(`
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, CASE WHEN src = 1 THEN 0.0 ELSE Infinity END,
         CASE WHEN src = 1 THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.Node
  UNTIL 0 UPDATES
)
SELECT sssp.Distance FROM sssp WHERE sssp.Node = %d`, dest)
}

// DQQuery is the Descendant Query: pages within hops clicks of the root
// (§VI-A; the Fig. 6 variant asks how many clicks separate two pages).
func DQQuery(root int64, hops int) string {
	return fmt.Sprintf(`
WITH ITERATIVE dq(Node, Hops, Delta) AS (
  SELECT src, CASE WHEN src = %d THEN 0.0 ELSE Infinity END,
         CASE WHEN src = %d THEN 0.0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst AS src FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT dq.Node,
         LEAST(dq.Hops, dq.Delta),
         COALESCE(MIN(Neighbor.Hops + IncomingEdges.weight), Infinity)
  FROM dq
  LEFT JOIN edges AS IncomingEdges ON dq.Node = IncomingEdges.dst
  LEFT JOIN dq AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY dq.Node
  UNTIL 0 UPDATES
)
SELECT COUNT(*) FROM dq WHERE dq.Hops <= %d`, root, root, hops)
}

// MinFrontierPriority is the SSSP/DQ priority function from §V-E: the
// partition holding the node closest to the source runs first.
const MinFrontierPriority = "SELECT 0 - MIN(Delta) FROM $PART WHERE Delta != Infinity"

// PendingRankPriority is the PageRank priority function from §V-E: the
// partition with the most pending rank runs first.
const PendingRankPriority = "SELECT SUM(Delta) FROM $PART WHERE Delta != 0.0"
