package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"sqloop/internal/core"
	"sqloop/internal/engine"
	"sqloop/internal/sqltypes"
	"sqloop/internal/wire"
)

// PR4Run is one SSSP matrix measurement in BENCH_PR4.json: a backend ×
// mode × compile-switch cell, with the wall time, engine row
// throughput and the size the result relation occupies on the wire
// under each response codec.
type PR4Run struct {
	Figure          string  `json:"figure"`
	Backend         string  `json:"backend"` // heap | btree | lsm
	Profile         string  `json:"profile"`
	Mode            string  `json:"mode"`
	Compile         bool    `json:"compile"`
	Rounds          int     `json:"rounds"`
	RowsScanned     int64   `json:"rows_scanned"`
	RowsPerSec      float64 `json:"rows_per_sec"`
	WallSeconds     float64 `json:"wall_seconds"`
	Result          float64 `json:"result"`
	WireBytesJSON   int     `json:"wire_bytes_json"`
	WireBytesBinary int     `json:"wire_bytes_binary"`
}

// PR4Micro is one allocation micro-measurement in BENCH_PR4.json:
// steady-state allocations per prepared-statement execution with the
// expression compiler off (interpreted) and on (compiled).
type PR4Micro struct {
	Figure         string  `json:"figure"`
	Name           string  `json:"name"`
	AllocsInterp   float64 `json:"allocs_per_op_interp"`
	AllocsCompiled float64 `json:"allocs_per_op_compiled"`
	Ratio          float64 `json:"ratio"`
}

// PR4Report is the top-level BENCH_PR4.json document (schema in
// EXPERIMENTS.md).
type PR4Report struct {
	Figure string     `json:"figure"`
	Runs   []PR4Run   `json:"runs"`
	Micro  []PR4Micro `json:"micro"`
}

// backendFor maps an engine profile to its storage backend name.
func backendFor(profile string) string {
	cfg, err := engine.Profile(profile)
	if err != nil {
		return profile
	}
	return cfg.Backend.String()
}

// wireSizes measures how many payload bytes the final result relation
// occupies as a wire response under the JSON codec and under the
// binary codec.
func wireSizes(res *core.Result) (jsonBytes, binBytes int, err error) {
	resp := &wire.Response{Columns: res.Columns}
	rows := make([]sqltypes.Row, len(res.Rows))
	wr := make([][]wire.WireValue, len(res.Rows))
	for i, r := range res.Rows {
		row := make(sqltypes.Row, len(r))
		wvs := make([]wire.WireValue, len(r))
		for j, g := range r {
			v, err := sqltypes.FromGo(g)
			if err != nil {
				return 0, 0, err
			}
			row[j] = v
			wvs[j] = wire.ToWire(v)
		}
		rows[i] = row
		wr[i] = wvs
	}
	resp.Rows = wr
	jb, err := json.Marshal(resp)
	if err != nil {
		return 0, 0, err
	}
	resp.Rows = nil
	return len(jb), len(wire.AppendBinaryResponse(nil, resp, rows)), nil
}

// pr4Modes is the SSSP matrix's mode axis: the sequential SQL-script
// rewrite plus the three parallel schedulers.
var pr4Modes = []core.Mode{core.ModeSingle, core.ModeSync, core.ModeAsync, core.ModeAsyncPrio}

// PR4Fig reruns the SSSP matrix (every engine backend × mode) with the
// expression compiler on and off, verifies the two halves agree, and
// writes the measurements plus allocation micro-benchmarks to outPath
// as BENCH_PR4.json.
func PR4Fig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	report := &PR4Report{Figure: "pr4"}
	for _, eng := range sc.Engines {
		backend := backendFor(eng)
		fmt.Fprintf(w, "\n== PR4 / SSSP with %s (%s): compile on vs off ==\n", EngineLabel(eng), backend)
		fmt.Fprintf(w, "%-12s %8s %10s %12s %12s %12s\n",
			"mode", "compile", "time(s)", "rows/sec", "json-bytes", "bin-bytes")
		for _, mode := range pr4Modes {
			var results [2]float64
			for i, disable := range []bool{false, true} {
				m, err := Run(ctx, Config{
					Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
					Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
					WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
					DisableExprCompile: disable,
				}, SSSPQuery(sc.SSSPDest))
				if err != nil {
					return fmt.Errorf("pr4 %s/%s: %w", eng, ModeLabel(mode), err)
				}
				results[i] = m.ScalarResult()
				jb, bb, err := wireSizes(m.Result)
				if err != nil {
					return fmt.Errorf("pr4 %s/%s: wire sizes: %w", eng, ModeLabel(mode), err)
				}
				rps := 0.0
				if m.Elapsed > 0 {
					rps = float64(m.Work.RowsScanned) / m.Elapsed.Seconds()
				}
				label := "on"
				if disable {
					label = "off"
				}
				fmt.Fprintf(w, "%-12s %8s %10.3f %12.0f %12d %12d\n",
					ModeLabel(mode), label, m.Elapsed.Seconds(), rps, jb, bb)
				report.Runs = append(report.Runs, PR4Run{
					Figure: "pr4-sssp", Backend: backend, Profile: eng,
					Mode: ModeLabel(mode), Compile: !disable,
					Rounds: m.Rounds, RowsScanned: m.Work.RowsScanned,
					RowsPerSec: rps, WallSeconds: m.Elapsed.Seconds(),
					Result: results[i], WireBytesJSON: jb, WireBytesBinary: bb,
				})
			}
			if results[0] != results[1] {
				return fmt.Errorf("pr4 %s/%s: compile on/off results differ: %v vs %v",
					eng, ModeLabel(mode), results[0], results[1])
			}
		}
	}

	micro, err := pr4Micro()
	if err != nil {
		return err
	}
	report.Micro = micro
	fmt.Fprintf(w, "\n== PR4 / steady-state allocations per statement: interpreted vs compiled ==\n")
	fmt.Fprintf(w, "%-16s %14s %14s %8s\n", "workload", "interp", "compiled", "ratio")
	for _, mr := range micro {
		fmt.Fprintf(w, "%-16s %14.1f %14.1f %8.2f\n", mr.Name, mr.AllocsInterp, mr.AllocsCompiled, mr.Ratio)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d runs, %d micro rows)\n", outPath, len(report.Runs), len(micro))
	return nil
}

// pr4Micro measures steady-state allocations of three hot-path
// statements through prepared statements, interpreted vs compiled.
// Statements are sized so per-row expression work dominates the fixed
// per-execution overhead.
func pr4Micro() ([]PR4Micro, error) {
	workloads := []struct{ name, sql string }{
		{"FilterEval", "SELECT a FROM t WHERE ABS(b) < 500 AND COALESCE(a, 0) % 7 = 1"},
		{"GroupByHash", "SELECT a % 10, COUNT(*), SUM(b) FROM t GROUP BY a % 10"},
		{"HashJoinProbe", "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE u.b >= 0"},
	}
	out := make([]PR4Micro, 0, len(workloads))
	for _, wl := range workloads {
		var allocs [2]float64
		for i, disable := range []bool{true, false} {
			cfg, err := engine.Profile("pgsim")
			if err != nil {
				return nil, err
			}
			cfg.DisableExprCompile = disable
			sess := engine.New(cfg).NewSession()
			if err := pr4Load(sess); err != nil {
				return nil, err
			}
			h, err := sess.Prepare(wl.sql)
			if err != nil {
				return nil, err
			}
			if _, err := sess.ExecPrepared(h, nil); err != nil {
				return nil, err
			}
			allocs[i] = testing.AllocsPerRun(20, func() {
				_, _ = sess.ExecPrepared(h, nil)
			})
		}
		ratio := 0.0
		if allocs[1] > 0 {
			ratio = allocs[0] / allocs[1]
		}
		out = append(out, PR4Micro{
			Figure: "pr4-micro", Name: wl.name,
			AllocsInterp: allocs[0], AllocsCompiled: allocs[1], Ratio: ratio,
		})
	}
	return out, nil
}

// pr4Load builds the micro-benchmark tables: t with 2000 rows and u
// with 500 rows keyed to join against t.
func pr4Load(sess *engine.Session) error {
	stmts := []string{
		"CREATE TABLE t (a INT, b INT)",
		"CREATE TABLE u (a INT, b INT)",
	}
	for _, s := range stmts {
		if _, err := sess.Exec(s); err != nil {
			return err
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := sess.Exec("INSERT INTO t VALUES (?, ?)",
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64((i*37)%1000))); err != nil {
			return err
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := sess.Exec("INSERT INTO u VALUES (?, ?)",
			sqltypes.NewInt(int64(i*3)), sqltypes.NewInt(int64(i))); err != nil {
			return err
		}
	}
	return nil
}
