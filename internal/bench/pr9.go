package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sqloop/internal/engine"
	"sqloop/internal/obs"
)

// PR9Run is one SSSP matrix measurement in BENCH_PR9.json: a backend ×
// mode × worker-count cell. The workers=1 cells are the serial
// baseline; the workers=4 cells run morsel-driven parallelism; the
// disabled cells prove the DisableParallel escape hatch forces the
// serial path even with a worker pool configured.
type PR9Run struct {
	Figure      string  `json:"figure"`
	Backend     string  `json:"backend"` // heap | btree | lsm
	Profile     string  `json:"profile"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	Parallel    bool    `json:"parallel"`
	Rounds      int     `json:"rounds"`
	RowsScanned int64   `json:"rows_scanned"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	WallSeconds float64 `json:"wall_seconds"`
	Result      float64 `json:"result"`
}

// PR9Micro is one cost-model micro-measurement in BENCH_PR9.json: the
// wall time per prepared-statement execution of a scan-heavy workload
// under the calibrated latency model, at a given worker count. Speedup
// is against the workers=1 row of the same workload; morsels counts
// the morsels dispatched to the pool per execution.
type PR9Micro struct {
	Figure      string  `json:"figure"`
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds_per_exec"`
	Speedup     float64 `json:"speedup"`
	Morsels     int64   `json:"morsels_per_exec"`
}

// PR9Report is the top-level BENCH_PR9.json document (schema in
// EXPERIMENTS.md).
type PR9Report struct {
	Figure string     `json:"figure"`
	Runs   []PR9Run   `json:"runs"`
	Micro  []PR9Micro `json:"micro"`
}

// PR9Fig reruns the SSSP matrix (every engine backend × mode) at
// workers=1, workers=4, and workers=4 with DisableParallel, verifies
// all three agree, then measures filter / group-by / join micros under
// the cost model at workers 1/2/4/8 with an identical-result gate, and
// writes everything to outPath as BENCH_PR9.json.
//
// The host may have a single CPU; the speedup measured here is the
// paper's simulated multi-core server (DESIGN.md): morsel workers
// sleep their per-row latency charges concurrently, so wall time drops
// with worker count the way real scan time would on real cores.
func PR9Fig(ctx context.Context, w io.Writer, sc Scale, outPath string) error {
	report := &PR9Report{Figure: "par"}
	cells := []struct {
		workers int
		disable bool
	}{{1, false}, {4, false}, {4, true}}
	for _, eng := range sc.Engines {
		backend := backendFor(eng)
		fmt.Fprintf(w, "\n== PR9 / SSSP with %s (%s): workers 1 vs 4 vs disabled ==\n", EngineLabel(eng), backend)
		fmt.Fprintf(w, "%-12s %10s %10s %12s\n", "mode", "workers", "time(s)", "rows/sec")
		for _, mode := range pr4Modes {
			results := make([]float64, 0, len(cells))
			for _, cell := range cells {
				m, err := Run(ctx, Config{
					Profile: eng, Mode: mode, Threads: sc.MaxThreads, Partitions: sc.Partitions,
					Dataset: "twitter-ego", Nodes: sc.SSSPNodes, Seed: sc.Seed,
					WithCost: sc.WithCost, Priority: priorityFor(mode, MinFrontierPriority),
					Workers: cell.workers, DisableParallel: cell.disable,
				}, SSSPQuery(sc.SSSPDest))
				if err != nil {
					return fmt.Errorf("pr9 %s/%s workers=%d: %w", eng, ModeLabel(mode), cell.workers, err)
				}
				results = append(results, m.ScalarResult())
				rps := 0.0
				if m.Elapsed > 0 {
					rps = float64(m.Work.RowsScanned) / m.Elapsed.Seconds()
				}
				label := fmt.Sprintf("%d", cell.workers)
				if cell.disable {
					label += " (off)"
				}
				fmt.Fprintf(w, "%-12s %10s %10.3f %12.0f\n",
					ModeLabel(mode), label, m.Elapsed.Seconds(), rps)
				report.Runs = append(report.Runs, PR9Run{
					Figure: "pr9-sssp", Backend: backend, Profile: eng,
					Mode: ModeLabel(mode), Workers: cell.workers, Parallel: !cell.disable,
					Rounds: m.Rounds, RowsScanned: m.Work.RowsScanned,
					RowsPerSec: rps, WallSeconds: m.Elapsed.Seconds(),
					Result: m.ScalarResult(),
				})
			}
			for i := 1; i < len(results); i++ {
				if results[i] != results[0] {
					return fmt.Errorf("pr9 %s/%s: worker-count results differ: %v vs %v",
						eng, ModeLabel(mode), results[0], results[i])
				}
			}
		}
	}

	micro, err := pr9Micro()
	if err != nil {
		return err
	}
	report.Micro = micro
	fmt.Fprintf(w, "\n== PR9 / cost-model wall time per exec: workers 1/2/4/8 ==\n")
	fmt.Fprintf(w, "%-14s %8s %14s %8s %12s\n", "workload", "workers", "wall/exec", "speedup", "morsels")
	for _, mr := range micro {
		fmt.Fprintf(w, "%-14s %8d %13.1fms %7.2fx %12d\n",
			mr.Name, mr.Workers, mr.WallSeconds*1e3, mr.Speedup, mr.Morsels)
	}
	// The acceptance gate: parallelism must pay off on the scan-bound
	// workloads at workers=4 under the calibrated latency model.
	for _, mr := range micro {
		if mr.Workers == 4 && (mr.Name == "ParFilter" || mr.Name == "ParGroupBy") && mr.Speedup < 1.5 {
			return fmt.Errorf("pr9 %s: workers=4 speedup %.2fx below the 1.5x gate", mr.Name, mr.Speedup)
		}
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s (%d runs, %d micro rows)\n", outPath, len(report.Runs), len(micro))
	return nil
}

// pr9Micro measures the wall time of three scan-heavy prepared
// statements under the calibrated latency model at workers 1/2/4/8.
// The tables are sized well past the morsel threshold (2 × 4096 rows)
// so the default dispatcher engages without test-only knobs. Every
// worker count is first cross-checked for a rendered result identical
// to the workers=1 baseline — parallelism must be invisible to
// queries.
func pr9Micro() ([]PR9Micro, error) {
	const (
		tRows = 40000
		uRows = 10000
		reps  = 5
	)
	workloads := []struct{ name, sql string }{
		{"ParFilter", "SELECT a FROM t WHERE b < 500 AND a % 7 = 1"},
		{"ParGroupBy", "SELECT a % 10, COUNT(*), SUM(b) FROM t GROUP BY a % 10"},
		{"ParJoinProbe", "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE u.b >= 0"},
	}
	workerCounts := []int{1, 2, 4, 8}
	type cell struct {
		wall    float64
		morsels int64
	}
	measured := make(map[string]map[int]cell, len(workloads))
	baseline := make(map[string]string, len(workloads))
	for _, wl := range workloads {
		measured[wl.name] = make(map[int]cell, len(workerCounts))
	}
	for _, workers := range workerCounts {
		cfg, err := engine.Profile("pgsim")
		if err != nil {
			return nil, err
		}
		cfg.Cost = engine.DefaultCost(cfg.Dialect)
		cfg.Workers = workers
		eng := engine.New(cfg)
		reg := obs.NewRegistry()
		eng.SetMetrics(reg)
		sess := eng.NewSession()
		if err := pr9Load(sess, tRows, uRows); err != nil {
			eng.Close()
			return nil, err
		}
		for _, wl := range workloads {
			h, err := sess.Prepare(wl.sql)
			if err != nil {
				eng.Close()
				return nil, err
			}
			res, err := sess.ExecPrepared(h, nil)
			if err != nil {
				eng.Close()
				return nil, err
			}
			rendered := renderRows(res.Rows)
			if workers == 1 {
				baseline[wl.name] = rendered
			} else if rendered != baseline[wl.name] {
				eng.Close()
				return nil, fmt.Errorf("pr9 %s: workers=%d result differs from serial", wl.name, workers)
			}
			before := reg.Snapshot().Counters["sqloop_parallel_morsels_total"]
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := sess.ExecPrepared(h, nil); err != nil {
					eng.Close()
					return nil, err
				}
			}
			wall := time.Since(start).Seconds() / reps
			after := reg.Snapshot().Counters["sqloop_parallel_morsels_total"]
			measured[wl.name][workers] = cell{wall: wall, morsels: (after - before) / reps}
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	out := make([]PR9Micro, 0, len(workloads)*len(workerCounts))
	for _, wl := range workloads {
		base := measured[wl.name][1].wall
		for _, workers := range workerCounts {
			c := measured[wl.name][workers]
			speedup := 0.0
			if c.wall > 0 {
				speedup = base / c.wall
			}
			out = append(out, PR9Micro{
				Figure: "pr9-micro", Name: wl.name, Rows: tRows,
				Workers: workers, WallSeconds: c.wall,
				Speedup: speedup, Morsels: c.morsels,
			})
		}
	}
	return out, nil
}

// pr9Load fills t (tRows) and u (uRows) with deterministic data via
// batched multi-row inserts. t.a covers [0, 10000) so every t row
// finds exactly one u partner; b spreads over [0, 1000) so the filter
// workload keeps roughly half the rows before the modulus cut.
func pr9Load(sess *engine.Session, tRows, uRows int) error {
	if _, err := sess.Exec("CREATE TABLE t (a BIGINT, b BIGINT)"); err != nil {
		return err
	}
	if _, err := sess.Exec("CREATE TABLE u (a BIGINT, b BIGINT)"); err != nil {
		return err
	}
	insert := func(table string, n int, row func(i int) (int, int)) error {
		const batch = 500
		var sb strings.Builder
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			sb.Reset()
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteByte(',')
				}
				a, b := row(i)
				fmt.Fprintf(&sb, "(%d, %d)", a, b)
			}
			if _, err := sess.Exec(sb.String()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := insert("t", tRows, func(i int) (int, int) { return i % 10000, (i * 37) % 1000 }); err != nil {
		return err
	}
	return insert("u", uRows, func(i int) (int, int) { return i, (i * 13) % 700 })
}

// TrendFig aggregates every committed BENCH_PR*.json in the current
// directory into one performance-trajectory table, so the repo's perf
// history reads in one place without opening each artifact.
func TrendFig(w io.Writer) error {
	files, err := filepath.Glob("BENCH_PR*.json")
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("trend: no BENCH_PR*.json artifacts in the current directory")
	}
	sort.Strings(files)
	fmt.Fprintf(w, "== Performance trajectory: committed BENCH_PR*.json artifacts ==\n")
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("trend: %s: %w", f, err)
		}
		figure, _ := doc["figure"].(string)
		fmt.Fprintf(w, "\n%s  (figure %q)\n", f, figure)
		keys := make([]string, 0, len(doc))
		for k := range doc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			arr, ok := doc[k].([]any)
			if !ok {
				continue
			}
			wall := 0.0
			var highlights []string
			for _, e := range arr {
				obj, ok := e.(map[string]any)
				if !ok {
					continue
				}
				if v, ok := obj["wall_seconds"].(float64); ok {
					wall += v
				}
				if sp, ok := obj["speedup"].(float64); ok {
					name, _ := obj["name"].(string)
					if wk, ok := obj["workers"].(float64); ok {
						name = fmt.Sprintf("%s@w%d", name, int(wk))
					}
					highlights = append(highlights, fmt.Sprintf("%s %.2fx", name, sp))
				}
			}
			line := fmt.Sprintf("  %-8s %3d entries", k, len(arr))
			if wall > 0 {
				line += fmt.Sprintf(", %.1fs total wall", wall)
			}
			fmt.Fprintln(w, line)
			if len(highlights) > 0 {
				fmt.Fprintf(w, "           speedups: %s\n", strings.Join(highlights, ", "))
			}
		}
	}
	return nil
}
