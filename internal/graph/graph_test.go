package graph

import (
	"context"
	"database/sql"
	"math"
	"testing"

	"sqloop/internal/driver"
	"sqloop/internal/engine"
)

func TestGoogleWebShape(t *testing.T) {
	g := GoogleWeb(2000, 5, 1)
	if g.Name != "google-web" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Edges) < 2000 {
		t.Fatalf("only %d edges", len(g.Edges))
	}
	// Power-law-ish: max in-degree far above the mean.
	mean := float64(len(g.Edges)) / 2000
	if got := g.MaxInDegree(); float64(got) < 6*mean {
		t.Errorf("max in-degree %d not skewed (mean %.1f)", got, mean)
	}
	// PageRank weights: out-weights of every node sum to 1.
	sums := map[int64]float64{}
	for _, e := range g.Edges {
		sums[e.Src] += e.Weight
	}
	for n, s := range sums {
		if math.Abs(s-1.0) > 1e-9 {
			t.Fatalf("node %d out-weight sum = %v", n, s)
		}
	}
}

func TestGoogleWebDeterministic(t *testing.T) {
	a := GoogleWeb(500, 4, 7)
	b := GoogleWeb(500, 4, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := GoogleWeb(500, 4, 8)
	same := len(a.Edges) == len(c.Edges)
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestTwitterEgoShape(t *testing.T) {
	g := TwitterEgo(1000, 20, 2)
	if len(g.Edges) == 0 {
		t.Fatal("no edges")
	}
	for _, e := range g.Edges {
		if e.Weight <= 0 {
			t.Fatalf("non-positive weight %v", e.Weight)
		}
		if e.Src < 1 || e.Src > 1000 || e.Dst < 1 || e.Dst > 1000 {
			t.Fatalf("edge out of range: %+v", e)
		}
	}
	// SSSP needs most of the graph reachable from node 1.
	if got := g.ReachableFrom(1); got < 900 {
		t.Errorf("only %d/1000 nodes reachable from 1", got)
	}
}

func TestBerkStanShape(t *testing.T) {
	g := BerkStan(2000, 120, 3)
	for _, e := range g.Edges {
		if e.Weight != 1 {
			t.Fatalf("click weight = %v", e.Weight)
		}
	}
	// The deterministic chain guarantees a page ~120 hops from node 1.
	hops := bfsHops(g, 1)
	far := 0
	for _, h := range hops {
		if h >= 100 {
			far++
		}
	}
	if far == 0 {
		t.Error("no pages 100+ clicks away; DQ sweep needs them")
	}
	if got := g.ReachableFrom(1); got < 800 {
		t.Errorf("only %d/2000 reachable from root", got)
	}
}

func bfsHops(g *Graph, src int64) map[int64]int {
	adj := map[int64][]int64{}
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	hops := map[int64]int{src: 0}
	queue := []int64{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if _, ok := hops[u]; !ok {
				hops[u] = hops[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return hops
}

func TestByName(t *testing.T) {
	for _, name := range []string{"google-web", "twitter-ego", "berkstan-web"} {
		g, err := ByName(name, 200, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name != name {
			t.Errorf("name = %q, want %q", g.Name, name)
		}
	}
	if _, err := ByName("livejournal", 10, 1); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestLoad(t *testing.T) {
	eng := engine.New(engine.Config{})
	driver.RegisterEngine(t.Name(), eng)
	t.Cleanup(func() { driver.UnregisterEngine(t.Name()) })
	db, err := sql.Open(driver.DriverName, driver.InprocDSN(t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	g := GoogleWeb(300, 4, 5)
	if err := Load(context.Background(), db, "edges", g, 100); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM edges`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != len(g.Edges) {
		t.Fatalf("loaded %d rows, want %d", n, len(g.Edges))
	}
	var w float64
	if err := db.QueryRow(`SELECT SUM(weight) FROM edges WHERE src = 2`).Scan(&w); err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1.0) > 1e-9 {
		t.Errorf("node 2 out-weight sum = %v", w)
	}
}
