// Package graph provides the deterministic synthetic datasets standing
// in for the paper's three SNAP graphs (web-Google, Twitter ego
// networks, web-BerkStan — see DESIGN.md, substitutions) and a bulk
// loader into an edges(src, dst, weight) table.
package graph

import (
	"context"
	"database/sql"
	"fmt"
	"math/rand"
	"strings"
)

// Edge is one weighted directed edge.
type Edge struct {
	Src, Dst int64
	Weight   float64
}

// Graph is an edge list over nodes 1..NumNodes.
type Graph struct {
	Name     string
	NumNodes int64
	Edges    []Edge
}

// GoogleWeb generates a preferential-attachment web graph: heavily
// skewed in-degree, small diameter, one giant component — the qualities
// of web-Google that matter to PageRank convergence. Weights are set to
// 1/outdegree (the paper's PageRank convention).
func GoogleWeb(nodes int64, avgOutDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: "google-web", NumNodes: nodes}
	if nodes < 2 {
		return g
	}
	// Repeated-endpoint preferential attachment: new targets are chosen
	// from the endpoint pool so high-degree pages attract more links.
	pool := make([]int64, 0, nodes*int64(avgOutDeg))
	pool = append(pool, 1)
	seen := make(map[[2]int64]bool)
	for v := int64(2); v <= nodes; v++ {
		deg := 1 + rng.Intn(2*avgOutDeg-1) // mean ≈ avgOutDeg
		for i := 0; i < deg; i++ {
			var dst int64
			if rng.Float64() < 0.25 {
				dst = 1 + rng.Int63n(v-1) // uniform: keeps a long tail
			} else {
				dst = pool[rng.Intn(len(pool))]
			}
			if dst == v || seen[[2]int64{v, dst}] {
				continue
			}
			seen[[2]int64{v, dst}] = true
			g.Edges = append(g.Edges, Edge{Src: v, Dst: dst})
			pool = append(pool, dst)
		}
		pool = append(pool, v)
		// Occasional back-link keeps the graph strongly connected-ish,
		// as hyperlink graphs are within their core.
		if rng.Float64() < 0.3 {
			dst := 1 + rng.Int63n(nodes)
			if dst != v && !seen[[2]int64{dst, v}] {
				seen[[2]int64{dst, v}] = true
				g.Edges = append(g.Edges, Edge{Src: dst, Dst: v})
			}
		}
	}
	g.normalizeByOutDegree()
	return g
}

// TwitterEgo generates an ego-network-style social graph: dense
// clusters (circles) around hub accounts with sparse bridges and
// positive random path weights — the structure that makes SSSP traverse
// only a small active frontier, as on the Twitter dataset.
func TwitterEgo(nodes int64, clusterSize int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: "twitter-ego", NumNodes: nodes}
	if clusterSize < 2 {
		clusterSize = 2
	}
	seen := make(map[[2]int64]bool)
	addEdge := func(s, d int64, w float64) {
		if s == d || s < 1 || d < 1 || s > nodes || d > nodes || seen[[2]int64{s, d}] {
			return
		}
		seen[[2]int64{s, d}] = true
		g.Edges = append(g.Edges, Edge{Src: s, Dst: d, Weight: w})
	}
	cs := int64(clusterSize)
	for base := int64(1); base <= nodes; base += cs {
		hub := base
		end := base + cs - 1
		if end > nodes {
			end = nodes
		}
		for v := base + 1; v <= end; v++ {
			// Bidirected hub spokes plus a few intra-cluster links.
			w := 1 + rng.Float64()*9
			addEdge(hub, v, w)
			addEdge(v, hub, 1+rng.Float64()*9)
			if rng.Float64() < 0.4 {
				u := base + 1 + rng.Int63n(end-base)
				addEdge(v, u, 1+rng.Float64()*9)
			}
		}
		// Bridge this cluster's hub to a previous hub so the graph is
		// reachable from node 1.
		if base > 1 {
			prevHub := 1 + cs*rng.Int63n((base-1+cs-1)/cs)
			if prevHub > nodes {
				prevHub = 1
			}
			addEdge(prevHub, hub, 1+rng.Float64()*9)
			addEdge(hub, prevHub, 1+rng.Float64()*9)
		}
	}
	return g
}

// BerkStan generates a two-community web graph with long chain paths:
// pages deep in a site hierarchy are many clicks away from the root,
// which is what the paper's descendant query explores on web-BerkStan.
// Weights are 1 (a click per edge). chainLen controls the depth of the
// deepest page chains.
func BerkStan(nodes int64, chainLen int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{Name: "berkstan-web", NumNodes: nodes}
	if nodes < 4 {
		return g
	}
	// Community split: [1, half] = "berkeley", (half, nodes] = "stanford".
	half := nodes / 2
	// A deterministic deep chain from node 1 so hop-sweep queries have a
	// well-defined long path: 1 -> 2 -> ... -> chainLen+1. Chain nodes
	// accept no other in-links — a shortcut would collapse the depth the
	// descendant-query sweep depends on.
	depth := int64(chainLen)
	if depth > half-1 {
		depth = half - 1
	}
	isChainInterior := func(d int64) bool { return d >= 2 && d <= depth+1 }
	seen := make(map[[2]int64]bool)
	addEdge := func(s, d int64) {
		if s == d || s < 1 || d < 1 || s > nodes || d > nodes || seen[[2]int64{s, d}] {
			return
		}
		if isChainInterior(d) && s != d-1 {
			return
		}
		seen[[2]int64{s, d}] = true
		g.Edges = append(g.Edges, Edge{Src: s, Dst: d, Weight: 1})
	}
	for v := int64(1); v <= depth; v++ {
		addEdge(v, v+1)
	}
	// Hierarchical tree links inside each community plus random
	// cross-links within the community.
	for v := int64(2); v <= nodes; v++ {
		lo, hi := int64(1), half
		if v > half {
			lo, hi = half+1, nodes
		}
		if v > lo {
			parent := lo + rng.Int63n(v-lo)
			addEdge(parent, v)
			if rng.Float64() < 0.5 {
				addEdge(v, parent)
			}
		}
		if rng.Float64() < 0.8 {
			u := lo + rng.Int63n(hi-lo+1)
			addEdge(v, u)
		}
	}
	// Sparse cross-community links (berkeley.edu pages linking
	// stanford.edu and back).
	for i := int64(0); i < nodes/50+1; i++ {
		addEdge(1+rng.Int63n(half), half+1+rng.Int63n(nodes-half))
		addEdge(half+1+rng.Int63n(nodes-half), 1+rng.Int63n(half))
	}
	return g
}

// normalizeByOutDegree sets every edge weight to 1/outdegree(src).
func (g *Graph) normalizeByOutDegree() {
	outdeg := make(map[int64]int, g.NumNodes)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	for i := range g.Edges {
		g.Edges[i].Weight = 1.0 / float64(outdeg[g.Edges[i].Src])
	}
}

// MaxInDegree reports the largest in-degree (tests use it to check the
// generated skew).
func (g *Graph) MaxInDegree() int {
	in := make(map[int64]int)
	max := 0
	for _, e := range g.Edges {
		in[e.Dst]++
		if in[e.Dst] > max {
			max = in[e.Dst]
		}
	}
	return max
}

// ReachableFrom counts nodes reachable from src (including src).
func (g *Graph) ReachableFrom(src int64) int {
	adj := make(map[int64][]int64)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	seen := map[int64]bool{src: true}
	queue := []int64{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return len(seen)
}

// Load bulk-inserts the graph into table (created if needed) through any
// database/sql handle, batching rows per INSERT.
func Load(ctx context.Context, db *sql.DB, table string, g *Graph, batch int) error {
	if batch <= 0 {
		batch = 500
	}
	create := fmt.Sprintf(
		"CREATE UNLOGGED TABLE IF NOT EXISTS %s (src BIGINT, dst BIGINT, weight DOUBLE)", table)
	if _, err := db.ExecContext(ctx, create); err != nil {
		return fmt.Errorf("graph: create %s: %w", table, err)
	}
	var sb strings.Builder
	for start := 0; start < len(g.Edges); start += batch {
		end := start + batch
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		sb.Reset()
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
		for i, e := range g.Edges[start:end] {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g)", e.Src, e.Dst, e.Weight)
		}
		if _, err := db.ExecContext(ctx, sb.String()); err != nil {
			return fmt.Errorf("graph: load %s rows %d..%d: %w", table, start, end, err)
		}
	}
	return nil
}

// ByName builds one of the named datasets at the given scale, with
// generator-appropriate shape parameters.
func ByName(name string, nodes int64, seed int64) (*Graph, error) {
	switch strings.ToLower(name) {
	case "google-web", "google":
		return GoogleWeb(nodes, 5, seed), nil
	case "twitter-ego", "twitter":
		return TwitterEgo(nodes, 20, seed), nil
	case "berkstan-web", "berkstan":
		return BerkStan(nodes, 120, seed), nil
	default:
		return nil, fmt.Errorf("graph: unknown dataset %q", name)
	}
}
