package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"sqloop/internal/obs"
)

// Scheduler fairly schedules concurrent iterative executions: each
// execution holds one of a bounded number of slots only for the
// duration of one round and yields at the round boundary (core's
// checkpoint barrier), where the slot passes to the longest-waiting
// execution. Two tenants' fix-point loops therefore interleave rounds
// instead of serializing, even on a single slot.
//
// It also carries per-tenant admission control for executions: a tenant
// at its concurrent-execution limit is turned away with a typed
// *AdmissionError before any work runs.
type Scheduler struct {
	workers     int
	tenantLimit int
	metrics     *obs.Registry // nil disables instrumentation

	mu      sync.Mutex
	free    int
	waiters *list.List // of chan struct{}, FIFO
	active  map[string]int
}

// NewScheduler builds a fair round scheduler with the given number of
// concurrently-running rounds (slots; minimum 1) and per-tenant
// concurrent-execution limit (0 = unlimited).
func NewScheduler(workers, tenantLimit int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if tenantLimit < 0 {
		tenantLimit = 0
	}
	return &Scheduler{
		workers:     workers,
		tenantLimit: tenantLimit,
		free:        workers,
		waiters:     list.New(),
		active:      make(map[string]int),
	}
}

// SetMetrics attaches a registry for the scheduler's admission counters
// and wait histograms; call before the scheduler is shared.
func (s *Scheduler) SetMetrics(r *obs.Registry) { s.metrics = r }

// count/observe/gauge are nil-safe metric helpers.

func (s *Scheduler) count(name string) {
	if s.metrics != nil {
		s.metrics.Counter(name).Inc()
	}
}

func (s *Scheduler) observe(name string, d time.Duration) {
	if s.metrics != nil {
		s.metrics.Histogram(name).Observe(d)
	}
}

func (s *Scheduler) gaugeAdd(name string, delta int64) {
	if s.metrics != nil {
		s.metrics.Gauge(name).Add(delta)
	}
}

// Ticket is one admitted iterative execution's claim on the scheduler.
// Yield must be called at every round boundary; Done exactly once when
// the execution finishes (success or failure).
type Ticket struct {
	s       *Scheduler
	tenant  string
	holding bool // the ticket currently owns a slot
	done    bool
}

// Admit registers one iterative execution for tenant, blocking until a
// slot is free (FIFO) or ctx is done. The error is *AdmissionError for
// a tenant over its execution limit and ctx.Err() for a cancelled wait.
func (s *Scheduler) Admit(ctx context.Context, tenant string) (*Ticket, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	if s.tenantLimit > 0 && s.active[tenant] >= s.tenantLimit {
		s.mu.Unlock()
		s.count("serve_exec_rejected_total")
		return nil, &AdmissionError{Tenant: tenant, Reason: ReasonTenantLimit}
	}
	s.active[tenant]++
	s.mu.Unlock()
	s.count("serve_exec_admitted_total")
	s.gaugeAdd("serve_exec_active", 1)
	start := time.Now()
	if err := s.acquire(ctx); err != nil {
		s.release(tenant, false)
		return nil, err
	}
	s.observe(TenantMetric("serve_exec_admit_wait_seconds", tenant), time.Since(start))
	return &Ticket{s: s, tenant: tenant, holding: true}, nil
}

// acquire takes one slot, joining the FIFO wait queue when none is
// free.
func (s *Scheduler) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return nil
	}
	grant := make(chan struct{})
	el := s.waiters.PushBack(grant)
	s.mu.Unlock()
	select {
	case <-grant:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		// The grant may have raced the cancellation: if the channel is
		// already closed, a slot was handed to us and must be passed
		// on, not leaked.
		select {
		case <-grant:
			s.handoffLocked()
		default:
			s.waiters.Remove(el)
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// handoffLocked passes one held slot to the first waiter, or frees it.
func (s *Scheduler) handoffLocked() {
	if el := s.waiters.Front(); el != nil {
		s.waiters.Remove(el)
		close(el.Value.(chan struct{}))
		return
	}
	s.free++
}

// release settles one execution's admission count and, when
// holdingSlot, returns its slot to the fair queue.
func (s *Scheduler) release(tenant string, holdingSlot bool) {
	s.mu.Lock()
	if holdingSlot {
		s.handoffLocked()
	}
	if s.active[tenant] > 0 {
		s.active[tenant]--
	}
	s.mu.Unlock()
	s.gaugeAdd("serve_exec_active", -1)
}

// Yield marks a round boundary: if any other execution is waiting for a
// slot, the caller's slot is handed over and the caller rejoins the
// FIFO queue; with no contention it keeps its slot and returns
// immediately. The returned error is ctx.Err() when the re-acquire wait
// is cancelled — the ticket no longer holds a slot then, and only Done
// (still required, now slotless) remains to settle admission.
func (t *Ticket) Yield(ctx context.Context) error {
	s := t.s
	s.mu.Lock()
	if s.waiters.Len() == 0 {
		s.mu.Unlock()
		return ctx.Err()
	}
	s.handoffLocked()
	t.holding = false
	s.mu.Unlock()
	s.count("serve_round_yields_total")
	start := time.Now()
	if err := s.acquire(ctx); err != nil {
		return err
	}
	t.holding = true
	s.observe("serve_round_wait_seconds", time.Since(start))
	return nil
}

// Done releases the execution's slot and admission count. Idempotent.
func (t *Ticket) Done() {
	if t.done {
		return
	}
	t.done = true
	t.s.release(t.tenant, t.holding)
	t.holding = false
}

// Tenant reports the tenant the ticket was admitted for.
func (t *Ticket) Tenant() string { return t.tenant }

// Waiting reports how many executions are queued for a slot (tests,
// diagnostics).
func (s *Scheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}
