package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sqloop/internal/obs"
)

// waitWaiters blocks until n executions queue for a slot.
func waitWaiters(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Waiting() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waiters (have %d)", n, s.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerInterleavesRounds is the fairness core: two executions
// on ONE slot must strictly alternate rounds — neither runs its whole
// fix-point while the other waits.
func TestSchedulerInterleavesRounds(t *testing.T) {
	s := NewScheduler(1, 0)
	const rounds = 5
	var mu sync.Mutex
	var order []string

	ta, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("admit a: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tb, err := s.Admit(context.Background(), "b") // blocks: a holds the slot
		if err != nil {
			t.Errorf("admit b: %v", err)
			return
		}
		defer tb.Done()
		for r := 1; r <= rounds; r++ {
			mu.Lock()
			order = append(order, fmt.Sprintf("b%d", r))
			mu.Unlock()
			if err := tb.Yield(context.Background()); err != nil {
				t.Errorf("b yield: %v", err)
				return
			}
		}
	}()
	waitWaiters(t, s, 1) // b is queued before a runs a single round
	for r := 1; r <= rounds; r++ {
		mu.Lock()
		order = append(order, fmt.Sprintf("a%d", r))
		mu.Unlock()
		if err := ta.Yield(context.Background()); err != nil {
			t.Fatalf("a yield: %v", err)
		}
	}
	ta.Done()
	wg.Wait()

	want := []string{"a1", "b1", "a2", "b2", "a3", "b3", "a4", "b4", "a5", "b5"}
	if len(order) != len(want) {
		t.Fatalf("recorded %v, want %d rounds", order, len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round order %v, want strict alternation %v", order, want)
		}
	}
}

func TestSchedulerYieldWithoutContentionKeepsSlot(t *testing.T) {
	s := NewScheduler(1, 0)
	tk, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := tk.Yield(context.Background()); err != nil {
			t.Fatalf("yield %d: %v", i, err)
		}
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("100 uncontended yields took %v", d)
	}
	tk.Done()
	if s.free != 1 {
		t.Fatalf("slot not returned: free = %d", s.free)
	}
}

func TestSchedulerTenantLimit(t *testing.T) {
	s := NewScheduler(4, 1)
	tk, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	_, err = s.Admit(context.Background(), "a")
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != ReasonTenantLimit {
		t.Fatalf("second admit = %v, want AdmissionError{tenant_limit}", err)
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("errors.Is sentinel match failed for %v", err)
	}
	// A different tenant is unaffected; after Done the tenant re-admits.
	tb, err := s.Admit(context.Background(), "b")
	if err != nil {
		t.Fatalf("admit b: %v", err)
	}
	tb.Done()
	tk.Done()
	tk2, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("re-admit a after Done: %v", err)
	}
	tk2.Done()
}

func TestSchedulerAdmitCancelledWhileWaiting(t *testing.T) {
	s := NewScheduler(1, 0)
	tk, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, "b")
		errc <- err
	}()
	waitWaiters(t, s, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled admit = %v, want context.Canceled", err)
	}
	tk.Done()
	// The slot must not have leaked to the cancelled waiter.
	tk2, err := s.Admit(context.Background(), "c")
	if err != nil {
		t.Fatalf("admit after cancel: %v", err)
	}
	tk2.Done()
}

func TestSchedulerYieldCancelled(t *testing.T) {
	s := NewScheduler(1, 0)
	ta, _ := s.Admit(context.Background(), "a")
	done := make(chan *Ticket, 1)
	go func() {
		tb, err := s.Admit(context.Background(), "b")
		if err != nil {
			done <- nil
			return
		}
		done <- tb
	}()
	waitWaiters(t, s, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// a's yield hands the slot to b, then a's re-acquire is cancelled.
	if err := ta.Yield(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("yield = %v, want context.Canceled", err)
	}
	ta.Done() // slotless Done must not corrupt the free count
	tb := <-done
	if tb == nil {
		t.Fatal("b was never admitted")
	}
	tb.Done()
	if s.free != 1 {
		t.Fatalf("free slots = %d after all Done, want 1", s.free)
	}
}

func TestSchedulerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(1, 1)
	s.SetMetrics(reg)
	tk, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := s.Admit(context.Background(), "a"); err == nil {
		t.Fatal("expected tenant-limit rejection")
	}
	tk.Done()
	snap := reg.Snapshot()
	if snap.Counters["serve_exec_admitted_total"] != 1 || snap.Counters["serve_exec_rejected_total"] != 1 {
		t.Fatalf("admission counters = %v", snap.Counters)
	}
	if snap.Gauges["serve_exec_active"] != 0 {
		t.Fatalf("serve_exec_active = %d at rest", snap.Gauges["serve_exec_active"])
	}
}
