// Package serve is SQLoop's multi-tenant serving layer: the piece that
// stands between "one goroutine per connection" and "heavy traffic from
// many tenants". It provides
//
//   - Pool: a bounded server-side session pool. Incoming statements are
//     enqueued per tenant and executed by a fixed set of worker
//     goroutines that visit tenant queues round-robin, so one tenant's
//     statement flood cannot head-of-line-block everyone else's point
//     queries.
//   - Scheduler: fair round scheduling of concurrent iterative
//     executions. An iterative CTE is a long-running job; each
//     execution holds a slot only for the duration of one round and
//     yields at the round boundary, so two tenants' loops interleave
//     rounds instead of serializing whole fix-point computations.
//   - Admission control: per-tenant concurrent-execution and
//     queue-depth limits, rejected with a typed *AdmissionError that
//     upper layers (the wire protocol, the driver's retry
//     classification) recognize.
//
// The package imports only internal/obs and the standard library so
// every layer — the wire server, the driver and core's executors — can
// depend on it without cycles.
package serve

import (
	"errors"
	"fmt"
	"time"

	"sqloop/internal/obs"
)

// ErrAdmissionRejected is the sentinel every admission failure matches
// via errors.Is, regardless of the rejection reason.
var ErrAdmissionRejected = errors.New("serve: admission rejected")

// Rejection reasons carried by AdmissionError.Reason.
const (
	// ReasonQueueFull marks a tenant whose statement queue is at its
	// depth limit.
	ReasonQueueFull = "queue_full"
	// ReasonTenantLimit marks a tenant at its concurrent-execution
	// limit.
	ReasonTenantLimit = "tenant_limit"
	// ReasonClosed marks a pool or scheduler that is shutting down.
	ReasonClosed = "closed"
)

// AdmissionError reports a request or execution turned away by
// admission control before any work ran. It is safe to retry after
// backoff: nothing was executed.
type AdmissionError struct {
	// Tenant is the tenant the rejected work belonged to.
	Tenant string
	// Reason is one of the Reason* constants.
	Reason string
}

// Error implements error.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: admission rejected for tenant %q: %s", e.Tenant, e.Reason)
}

// Is matches ErrAdmissionRejected so callers can use errors.Is without
// caring about the reason.
func (e *AdmissionError) Is(target error) bool { return target == ErrAdmissionRejected }

// AdmissionRejected marks the error for duck-typed detection (the same
// pattern as driver.ConnLostError.ConnLost), keeping layers that cannot
// import this package able to classify it.
func (e *AdmissionError) AdmissionRejected() bool { return true }

// DefaultTenant is the tenant id used when a client never identified
// itself (pre-multi-tenant clients, tests).
const DefaultTenant = "default"

// Config bounds a Pool (and, through the public API, a Scheduler).
// The zero value is usable: every field falls back to its default.
type Config struct {
	// MaxSessions is the number of worker goroutines executing
	// statements — the server's concurrency bound (default
	// DefaultMaxSessions).
	MaxSessions int
	// QueueDepth caps each tenant's queued-but-not-running statements;
	// submissions beyond it are rejected with ReasonQueueFull (default
	// DefaultQueueDepth).
	QueueDepth int
	// TenantLimit caps one tenant's admitted (queued + running) work
	// items; 0 means unlimited. Rejections carry ReasonTenantLimit.
	TenantLimit int
	// DefaultDeadline bounds each work item that arrives without its
	// own deadline; 0 means no deadline.
	DefaultDeadline time.Duration
	// Metrics receives the pool's gauges, counters and histograms;
	// nil disables instrumentation.
	Metrics *obs.Registry
}

// Defaults for Config fields left at zero.
const (
	DefaultMaxSessions = 8
	DefaultQueueDepth  = 64
)

// withDefaults normalizes the config.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.TenantLimit < 0 {
		c.TenantLimit = 0
	}
	return c
}

// TenantMetric renders a per-tenant instrument name in the
// label-in-name convention the registry uses (it has no label
// dimension): e.g. TenantMetric("serve_exec_seconds", "acme") →
// `serve_exec_seconds{tenant=acme}`.
func TenantMetric(base, tenant string) string {
	if tenant == "" {
		tenant = DefaultTenant
	}
	return base + "{tenant=" + tenant + "}"
}
