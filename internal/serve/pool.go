package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// job states (atomic): a job is claimed exactly once, either by a
// worker (queued → running) or by its abandoning submitter
// (queued → abandoned), so a caller that gives up on a queued job can
// return immediately without racing the worker over shared results.
const (
	jobQueued int32 = iota
	jobRunning
	jobAbandoned
)

type job struct {
	ctx      context.Context
	fn       func(context.Context)
	state    atomic.Int32
	done     chan struct{}
	enqueued time.Time
	// err is set (before done closes) when the job completed without
	// running fn — a deadline that expired while the job was queued.
	err error
}

// tenantQueue is one tenant's FIFO of queued jobs plus its admission
// accounting. Queues are kept in Pool.tenants even while empty so the
// admitted counter survives between bursts.
type tenantQueue struct {
	name     string
	jobs     []*job
	admitted int  // queued + running
	ringed   bool // present in the ready ring
}

// Pool is the bounded session pool: MaxSessions workers drain per-tenant
// queues round-robin. Submissions beyond a tenant's queue depth or
// admitted limit are rejected with *AdmissionError instead of queuing
// unboundedly — backpressure the caller can see and retry.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with at least one queued job, FIFO
	ready   chan struct{}  // buffered wake-ups, one per queued job
	closed  bool
	wg      sync.WaitGroup
}

// NewPool starts the worker goroutines. Close releases them.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:     cfg,
		tenants: make(map[string]*tenantQueue),
		// One token per queued job; sized generously so enqueue never
		// blocks (bounded by MaxSessions*QueueDepth admission anyway).
		ready: make(chan struct{}, 1<<16),
	}
	p.wg.Add(cfg.MaxSessions)
	for i := 0; i < cfg.MaxSessions; i++ {
		go p.worker()
	}
	return p
}

// Do submits fn for tenant and blocks until it has run, the context is
// done, or admission rejects it. fn receives a context bounded by the
// pool's default deadline (when ctx carries none). When Do returns a
// non-nil error, fn did not and will not run.
func (p *Pool) Do(ctx context.Context, tenant string, fn func(context.Context)) error {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if _, ok := ctx.Deadline(); !ok && p.cfg.DefaultDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.DefaultDeadline)
		defer cancel()
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{}), enqueued: time.Now()}
	if err := p.enqueue(tenant, j); err != nil {
		p.count("serve_rejected_total")
		p.count("serve_rejected_" + err.Reason + "_total")
		return err
	}
	p.count("serve_admitted_total")
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobQueued, jobAbandoned) {
			// Claimed before any worker: fn will never run. The queue
			// entry is lazily skipped by the worker that drains it.
			p.finish(tenant)
			return ctx.Err()
		}
		// A worker got there first: wait for fn to finish so the
		// caller's result variables are safe to read (fn observes the
		// same ctx and is expected to wind down promptly).
		<-j.done
		return j.err
	}
}

// enqueue admits and queues one job, waking a worker.
func (p *Pool) enqueue(tenant string, j *job) *AdmissionError {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return &AdmissionError{Tenant: tenant, Reason: ReasonClosed}
	}
	tq := p.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{name: tenant}
		p.tenants[tenant] = tq
	}
	if len(tq.jobs) >= p.cfg.QueueDepth {
		p.mu.Unlock()
		return &AdmissionError{Tenant: tenant, Reason: ReasonQueueFull}
	}
	if p.cfg.TenantLimit > 0 && tq.admitted >= p.cfg.TenantLimit {
		p.mu.Unlock()
		return &AdmissionError{Tenant: tenant, Reason: ReasonTenantLimit}
	}
	tq.jobs = append(tq.jobs, j)
	tq.admitted++
	if !tq.ringed {
		tq.ringed = true
		p.ring = append(p.ring, tq)
	}
	// The wake-up token is sent under the lock so Close (which closes
	// the channel under the same lock, after flipping closed) can never
	// race a send.
	select {
	case p.ready <- struct{}{}:
	default:
	}
	p.mu.Unlock()
	p.gaugeAdd("serve_queue_depth", 1)
	return nil
}

// next pops the next job fairly: the tenant at the ring head gives up
// one job and, if it still has queued work, rejoins at the tail — a
// round-robin over tenants, FIFO within each tenant.
func (p *Pool) next() (*tenantQueue, *job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.ring) > 0 {
		tq := p.ring[0]
		p.ring = p.ring[1:]
		if len(tq.jobs) == 0 {
			tq.ringed = false
			continue
		}
		j := tq.jobs[0]
		tq.jobs = tq.jobs[1:]
		if len(tq.jobs) > 0 {
			p.ring = append(p.ring, tq)
		} else {
			tq.ringed = false
		}
		return tq, j
	}
	return nil, nil
}

// finish settles a job's admission accounting (called by the worker
// that ran it, or by the submitter that abandoned it while queued).
func (p *Pool) finish(tenant string) {
	p.mu.Lock()
	if tq := p.tenants[tenant]; tq != nil {
		tq.admitted--
	}
	p.mu.Unlock()
}

// worker is one session slot: each ready token corresponds to one
// enqueued job (tokens for abandoned jobs drain as no-ops).
func (p *Pool) worker() {
	defer p.wg.Done()
	for range p.ready {
		tq, j := p.next()
		if j == nil {
			continue
		}
		p.gaugeAdd("serve_queue_depth", -1)
		if !j.state.CompareAndSwap(jobQueued, jobRunning) {
			continue // abandoned while queued; submitter already settled it
		}
		p.observe("serve_queue_wait_seconds", time.Since(j.enqueued))
		if err := j.ctx.Err(); err != nil {
			// Deadline spent entirely in the queue: complete the job
			// without running fn so Do returns and reports ctx.Err.
			j.err = err
			p.count("serve_deadline_in_queue_total")
		} else {
			p.gaugeAdd("serve_active_sessions", 1)
			start := time.Now()
			j.fn(j.ctx)
			p.observe(TenantMetric("serve_exec_seconds", tq.name), time.Since(start))
			p.gaugeAdd("serve_active_sessions", -1)
		}
		p.finish(tq.name)
		close(j.done)
	}
}

// Close stops the workers after the jobs already claimed finish.
// Queued-but-unclaimed jobs complete too: the ready channel is drained
// before it is closed only by the workers themselves.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.ready)
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats reports the pool's live accounting (tests, diagnostics).
func (p *Pool) Stats() (queued, admitted int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, tq := range p.tenants {
		queued += len(tq.jobs)
		admitted += tq.admitted
	}
	return queued, admitted
}

// metric helpers — all nil-safe so an unmetered pool pays one branch.

func (p *Pool) count(name string) {
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Counter(name).Inc()
	}
}

func (p *Pool) gaugeAdd(name string, d int64) {
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Gauge(name).Add(d)
	}
}

func (p *Pool) observe(name string, d time.Duration) {
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Histogram(name).Observe(d)
	}
}
