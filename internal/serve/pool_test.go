package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqloop/internal/obs"
)

// gatedPool builds a 1-worker pool whose worker is parked on a gate
// job, so tests can stage queues deterministically before any job runs.
func gatedPool(t *testing.T, cfg Config) (p *Pool, release func()) {
	t.Helper()
	cfg.MaxSessions = 1
	p = NewPool(cfg)
	t.Cleanup(p.Close)
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = p.Do(context.Background(), "gate", func(context.Context) {
			close(started)
			<-gate
		})
	}()
	<-started
	var once sync.Once
	return p, func() { once.Do(func() { close(gate) }) }
}

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(Config{MaxSessions: 4})
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		tenant := string(rune('a' + i%3))
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), tenant, func(context.Context) { ran.Add(1) }); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 jobs", ran.Load())
	}
	if q, a := p.Stats(); q != 0 || a != 0 {
		t.Fatalf("leaked accounting: queued=%d admitted=%d", q, a)
	}
}

// TestPoolFairRoundRobin stages two tenants' bursts behind a parked
// worker and requires the drain order to alternate tenants — tenant A's
// burst must not run to completion before tenant B's first job.
func TestPoolFairRoundRobin(t *testing.T) {
	p, release := gatedPool(t, Config{})
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = p.Do(context.Background(), tenant, func(context.Context) {
					mu.Lock()
					order = append(order, tenant)
					mu.Unlock()
				})
			}()
			// Each submission must be queued before the next so the
			// per-tenant FIFO order (and the ring order) is settled.
			waitQueued(t, p, 1+i+map[string]int{"a": 0, "b": n}[tenant])
		}
	}
	enqueue("a", 4)
	enqueue("b", 4)
	release()
	wg.Wait()
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("ran %d jobs, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want alternating %v", order, want)
		}
	}
}

// waitQueued blocks until the pool holds n queued jobs (excluding the
// gate job, which is running, not queued).
func waitQueued(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := p.Stats(); q >= n {
			return
		}
		if time.Now().After(deadline) {
			q, a := p.Stats()
			t.Fatalf("queue never reached %d (queued=%d admitted=%d)", n, q, a)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolQueueFullRejection(t *testing.T) {
	p, release := gatedPool(t, Config{QueueDepth: 2})
	defer release()
	for i := 0; i < 2; i++ {
		go func() { _ = p.Do(context.Background(), "a", func(context.Context) {}) }()
	}
	waitQueued(t, p, 2)
	err := p.Do(context.Background(), "a", func(context.Context) { t.Error("rejected job ran") })
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != ReasonQueueFull {
		t.Fatalf("err = %v, want AdmissionError{queue_full}", err)
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("errors.Is(err, ErrAdmissionRejected) = false for %v", err)
	}
	if ae.Tenant != "a" {
		t.Fatalf("rejected tenant %q, want a", ae.Tenant)
	}
}

func TestPoolTenantLimitRejection(t *testing.T) {
	p, release := gatedPool(t, Config{TenantLimit: 1})
	defer release()
	go func() { _ = p.Do(context.Background(), "a", func(context.Context) {}) }()
	waitQueued(t, p, 1)
	err := p.Do(context.Background(), "a", func(context.Context) { t.Error("rejected job ran") })
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != ReasonTenantLimit {
		t.Fatalf("err = %v, want AdmissionError{tenant_limit}", err)
	}
	// Another tenant is unaffected by a's limit.
	if err := p.Do(contextWithTimeout(t, time.Second), "b", func(context.Context) {}); err == nil {
		t.Fatal("tenant b should queue (then time out behind the gate), not be rejected")
	} else if errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("tenant b rejected: %v", err)
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestPoolAbandonQueued cancels a queued job's context and requires Do
// to return promptly without ever running the job.
func TestPoolAbandonQueued(t *testing.T) {
	p, release := gatedPool(t, Config{})
	var ran atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, "a", func(context.Context) { ran.Store(true) })
	}()
	waitQueued(t, p, 1)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancelling a queued job")
	}
	release()
	// Drain through another job, then confirm the abandoned fn never ran.
	if err := p.Do(context.Background(), "a", func(context.Context) {}); err != nil {
		t.Fatalf("follow-up Do: %v", err)
	}
	if ran.Load() {
		t.Fatal("abandoned job ran")
	}
	if q, a := p.Stats(); q != 0 || a != 0 {
		t.Fatalf("leaked accounting after abandon: queued=%d admitted=%d", q, a)
	}
}

func TestPoolDefaultDeadline(t *testing.T) {
	p := NewPool(Config{MaxSessions: 1, DefaultDeadline: 40 * time.Millisecond})
	defer p.Close()
	var got time.Duration
	err := p.Do(context.Background(), "a", func(ctx context.Context) {
		if dl, ok := ctx.Deadline(); ok {
			got = time.Until(dl)
		}
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got <= 0 || got > 40*time.Millisecond {
		t.Fatalf("job deadline headroom %v, want (0, 40ms]", got)
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(Config{MaxSessions: 2, QueueDepth: 1, Metrics: reg})
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := p.Do(context.Background(), "acme", func(context.Context) {}); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_admitted_total"]; got != 5 {
		t.Fatalf("serve_admitted_total = %d, want 5", got)
	}
	if got := snap.Gauges["serve_queue_depth"]; got != 0 {
		t.Fatalf("serve_queue_depth = %d, want 0 at rest", got)
	}
	h, ok := snap.Histograms[TenantMetric("serve_exec_seconds", "acme")]
	if !ok || h.Count != 5 {
		t.Fatalf("per-tenant exec histogram = %+v (present=%v), want count 5", h, ok)
	}
}

func TestPoolClosedRejects(t *testing.T) {
	p := NewPool(Config{MaxSessions: 1})
	p.Close()
	err := p.Do(context.Background(), "a", func(context.Context) {})
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != ReasonClosed {
		t.Fatalf("err = %v, want AdmissionError{closed}", err)
	}
}
