package engine

import (
	"math"
	"testing"

	"sqloop/internal/sqltypes"
)

// TestSumAvgInt64Overflow checks the aggregate accumulator's overflow
// behaviour: an int64 SUM that would wrap promotes to float, keeping
// magnitude and sign at the cost of integer precision; AVG divides the
// promoted sum. Non-overflowing integer sums stay exact int64.
func TestSumAvgInt64Overflow(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE big (v BIGINT)`)
	mustExec(t, s, `INSERT INTO big VALUES (?)`, sqltypes.NewInt(math.MaxInt64))
	mustExec(t, s, `INSERT INTO big VALUES (?)`, sqltypes.NewInt(math.MaxInt64))

	res := mustExec(t, s, `SELECT SUM(v) FROM big`)
	sum := res.Rows[0][0]
	if sum.Kind() != sqltypes.KindFloat {
		t.Fatalf("overflowing SUM kind = %v, want float promotion", sum.Kind())
	}
	want := 2 * float64(math.MaxInt64)
	if math.Abs(sum.Float()-want) > want*1e-12 {
		t.Fatalf("SUM = %v, want ~%v", sum.Float(), want)
	}

	res = mustExec(t, s, `SELECT AVG(v) FROM big`)
	avg := res.Rows[0][0]
	if avg.Kind() != sqltypes.KindFloat {
		t.Fatalf("AVG kind = %v, want float", avg.Kind())
	}
	if wantAvg := float64(math.MaxInt64); math.Abs(avg.Float()-wantAvg) > wantAvg*1e-12 {
		t.Fatalf("AVG = %v, want ~%v", avg.Float(), wantAvg)
	}

	// Negative direction overflows the same way.
	mustExec(t, s, `CREATE TABLE neg (v BIGINT)`)
	mustExec(t, s, `INSERT INTO neg VALUES (?)`, sqltypes.NewInt(math.MinInt64))
	mustExec(t, s, `INSERT INTO neg VALUES (?)`, sqltypes.NewInt(math.MinInt64))
	res = mustExec(t, s, `SELECT SUM(v) FROM neg`)
	nsum := res.Rows[0][0]
	if nsum.Kind() != sqltypes.KindFloat {
		t.Fatalf("negative overflowing SUM kind = %v, want float", nsum.Kind())
	}
	if nwant := 2 * float64(math.MinInt64); math.Abs(nsum.Float()-nwant) > -nwant*1e-12 {
		t.Fatalf("SUM = %v, want ~%v", nsum.Float(), nwant)
	}

	// A sum that fits stays an exact integer.
	mustExec(t, s, `CREATE TABLE small (v BIGINT)`)
	mustExec(t, s, `INSERT INTO small VALUES (?)`, sqltypes.NewInt(math.MaxInt64-1))
	mustExec(t, s, `INSERT INTO small VALUES (?)`, sqltypes.NewInt(1))
	res = mustExec(t, s, `SELECT SUM(v) FROM small`)
	ssum := res.Rows[0][0]
	if ssum.Kind() != sqltypes.KindInt || ssum.Int() != math.MaxInt64 {
		t.Fatalf("in-range SUM = %v (%v), want exact int64 %d", ssum, ssum.Kind(), int64(math.MaxInt64))
	}
}
