package engine

import (
	"math"

	"sqloop/internal/sqltypes"
	"sqloop/internal/vec"
)

// This file provides the hash-keyed row index behind GROUP BY,
// DISTINCT, set operations, hash-join builds and DISTINCT aggregates.
// It replaces the per-row encodeRowKey string construction (the
// dominant allocation of those operators) with a 64-bit FNV-1a row
// hash plus collision buckets compared value-by-value. The string path
// is kept as the interpreted baseline behind Config.DisableExprCompile
// so the A/B matrix can pin both implementations to identical results.

// fnv-1a parameters, matching sqltypes.Value.Hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func isNaNValue(v sqltypes.Value) bool {
	return v.Kind() == sqltypes.KindFloat && math.IsNaN(v.Float())
}

// rowHash combines the value hashes of a row into one 64-bit key.
// Value.Hash already unifies numerically-equal ints and floats, so two
// rows that encodeRowKey would consider equal always hash equal. It
// delegates to the vec package so the scalar and columnar hash paths
// share one definition (vec.HashRow canonicalizes NaN payloads the same
// way this file historically did).
func rowHash(r sqltypes.Row) uint64 { return vec.HashRow(r) }

// hashValueEqual is the grouping equality for one column: CompareTotal
// with an explicit NaN guard. Compare reports NaN as neither below nor
// above any float, so a bare CompareTotal==0 would merge NaN with
// every number; grouping instead treats NaN as equal only to NaN,
// exactly like encodeRowKey's string form.
func hashValueEqual(a, b sqltypes.Value) bool {
	if an, bn := isNaNValue(a), isNaNValue(b); an || bn {
		return an && bn
	}
	return sqltypes.CompareTotal(a, b) == 0
}

// rowsEqual reports grouping equality of two key rows of equal arity.
func rowsEqual(a, b sqltypes.Row) bool {
	for i := range a {
		if !hashValueEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// rowIndex assigns dense bucket ids (0,1,2,... in first-seen order) to
// distinct key rows. Hashed mode chains bucket ids off the 64-bit row
// hash and resolves collisions by value comparison against the stored
// key; string mode is the encodeRowKey baseline.
type rowIndex struct {
	hashed  bool
	buckets map[uint64][]int // row hash -> bucket ids sharing it
	keys    []sqltypes.Row   // bucket id -> its key row (hashed mode)
	strs    map[string]int   // encoded key -> bucket id (string mode)
	count   int              // bucket count in string mode
}

// newRowIndex builds an index in the mode matching the engine's A/B
// switch: hashing is part of the compiled hot path, so disabling
// expression compilation also falls back to string keys.
func (x *executor) newRowIndex(hint int) *rowIndex {
	if x.eng.cfg.DisableExprCompile {
		return &rowIndex{strs: make(map[string]int, hint)}
	}
	return &rowIndex{hashed: true, buckets: make(map[uint64][]int, hint)}
}

// bucket returns the id for key, allocating the next dense id when the
// key is new (isNew reports which). In hashed mode a newly-inserted
// key row is retained: pass own=true when the caller hands over the
// slice, own=false when key is a reused scratch buffer that must be
// cloned.
func (ix *rowIndex) bucket(key sqltypes.Row, own bool) (id int, isNew bool) {
	if !ix.hashed {
		k := encodeRowKey(key)
		if id, ok := ix.strs[k]; ok {
			return id, false
		}
		id = ix.count
		ix.count++
		ix.strs[k] = id
		return id, true
	}
	h := rowHash(key)
	for _, id := range ix.buckets[h] {
		if rowsEqual(ix.keys[id], key) {
			return id, false
		}
	}
	if !own {
		key = append(sqltypes.Row(nil), key...)
	}
	id = len(ix.keys)
	ix.keys = append(ix.keys, key)
	ix.buckets[h] = append(ix.buckets[h], id)
	return id, true
}

// bucketPre is bucket(key, false) with the row hash computed by the
// caller — the batch path hashes whole key columns at once and probes
// with the precomputed values. Non-hashed (string-key) indexes ignore
// the hash and delegate.
func (ix *rowIndex) bucketPre(h uint64, key sqltypes.Row) (id int, isNew bool) {
	if !ix.hashed {
		return ix.bucket(key, false)
	}
	for _, id := range ix.buckets[h] {
		if rowsEqual(ix.keys[id], key) {
			return id, false
		}
	}
	key = append(sqltypes.Row(nil), key...)
	id = len(ix.keys)
	ix.keys = append(ix.keys, key)
	ix.buckets[h] = append(ix.buckets[h], id)
	return id, true
}

// lookup returns the bucket id for key, or -1 when absent. It never
// inserts, so probing with a scratch buffer needs no clone.
func (ix *rowIndex) lookup(key sqltypes.Row) int {
	if !ix.hashed {
		if id, ok := ix.strs[encodeRowKey(key)]; ok {
			return id
		}
		return -1
	}
	h := rowHash(key)
	for _, id := range ix.buckets[h] {
		if rowsEqual(ix.keys[id], key) {
			return id
		}
	}
	return -1
}

// lookupPre is lookup with a caller-computed row hash.
func (ix *rowIndex) lookupPre(h uint64, key sqltypes.Row) int {
	if !ix.hashed {
		return ix.lookup(key)
	}
	for _, id := range ix.buckets[h] {
		if rowsEqual(ix.keys[id], key) {
			return id
		}
	}
	return -1
}

// size is the number of distinct keys seen.
func (ix *rowIndex) size() int {
	if !ix.hashed {
		return ix.count
	}
	return len(ix.keys)
}
