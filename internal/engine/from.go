package engine

import (
	"fmt"
	"strings"
	"time"

	"sqloop/internal/sqlparser"
	"sqloop/internal/sqltypes"
	"sqloop/internal/vec"
)

// sleep is the charge primitive for the cost model. A variable so tests
// can stub it; production code always uses time.Sleep.
var sleep = time.Sleep

// evalFromList materializes the FROM clause: each item becomes a source;
// multiple items are cross-joined. where (may be nil) enables index
// pushdown for the single-base-table fast path.
func (x *executor) evalFromList(items []sqlparser.TableExpr, where sqlparser.Expr) (*source, error) {
	if len(items) == 0 {
		// SELECT without FROM: a single empty row.
		return &source{frame: &frame{}, rows: []sqltypes.Row{{}}}, nil
	}
	var cur *source
	for i, te := range items {
		var s *source
		var err error
		// Index pushdown only applies when the whole FROM is one base
		// table (predicates referencing other relations cannot be used).
		if len(items) == 1 {
			s, err = x.evalTableExpr(te, where)
		} else {
			s, err = x.evalTableExpr(te, nil)
		}
		if err != nil {
			return nil, err
		}
		if i == 0 {
			cur = s
			continue
		}
		cur = crossJoin(cur, s)
		x.work.joined += int64(len(cur.rows))
	}
	return cur, nil
}

func crossJoin(a, b *source) *source {
	out := &source{frame: concatFrames(a.frame, b.frame)}
	out.rows = make([]sqltypes.Row, 0, len(a.rows)*len(b.rows))
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			row := make(sqltypes.Row, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// evalTableExpr materializes one FROM item. pushWhere, when non-nil, may
// be used for index lookups on a base table (it is still re-checked by
// the caller, so using it is purely an optimization).
func (x *executor) evalTableExpr(te sqlparser.TableExpr, pushWhere sqlparser.Expr) (*source, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		return x.scanNamed(t, pushWhere)
	case *sqlparser.SubqueryTable:
		rel, err := x.evalBody(t.Body)
		if err != nil {
			return nil, err
		}
		f := &frame{}
		f.addRel(t.Alias, rel.cols)
		return &source{frame: f, rows: rel.rows}, nil
	case *sqlparser.JoinExpr:
		return x.evalJoin(t)
	default:
		return nil, fmt.Errorf("engine: unsupported table expression %T", te)
	}
}

// scanNamed resolves a name to a CTE, view or base table and returns its
// rows under the effective alias.
func (x *executor) scanNamed(t *sqlparser.TableName, pushWhere sqlparser.Expr) (*source, error) {
	alias := t.Alias
	if alias == "" {
		alias = t.Name
	}
	// Plain CTEs shadow tables and views.
	if rel, ok := x.ctes[strings.ToLower(t.Name)]; ok {
		f := &frame{}
		f.addRel(alias, rel.cols)
		return &source{frame: f, rows: rel.rows}, nil
	}
	if v, ok := x.eng.lookupView(t.Name); ok {
		rel, err := x.evalBody(v.body)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", v.name, err)
		}
		f := &frame{}
		f.addRel(alias, rel.cols)
		return &source{frame: f, rows: rel.rows}, nil
	}
	tbl, ok := x.eng.lookupTable(t.Name)
	if !ok {
		return nil, &ErrTableNotFound{Name: t.Name}
	}
	f := &frame{}
	f.addRel(alias, tbl.schema.Names())

	// Index pushdown: a conjunct `col = const` on the PK or an indexed
	// column turns the scan into a point lookup.
	if rows, ok, err := x.indexLookup(tbl, alias, pushWhere); err != nil {
		return nil, err
	} else if ok {
		return &source{frame: f, rows: rows}, nil
	}

	rows := make([]sqltypes.Row, 0, tbl.store.Len())
	tbl.store.Scan(func(_ sqltypes.Key, r sqltypes.Row) bool {
		rows = append(rows, r)
		return true
	})
	x.work.scanned += int64(len(rows))
	x.eng.stats.RowsScanned.Add(int64(len(rows)))
	// scanCharged lets a downstream parallel region move this charge onto
	// its morsel workers (see takeScanCharge).
	return &source{frame: f, rows: rows, scanCharged: true}, nil
}

// indexLookup tries to satisfy a scan via the primary key or a secondary
// index using an equality conjunct in where. The table's lock is already
// held by the statement prologue.
func (x *executor) indexLookup(tbl *Table, alias string, where sqlparser.Expr) ([]sqltypes.Row, bool, error) {
	if where == nil {
		return nil, false, nil
	}
	col, val, ok := x.equalityOn(where, tbl, alias)
	if !ok {
		return nil, false, nil
	}
	x.work.scanned++ // a lookup costs about one row touch
	x.eng.stats.RowsScanned.Add(1)
	if tbl.pkCol >= 0 && col == tbl.pkCol {
		if row, found := tbl.store.Get(val.MapKey()); found {
			return []sqltypes.Row{row}, true, nil
		}
		return nil, true, nil
	}
	for _, ix := range tbl.indexes {
		if ix.col != col {
			continue
		}
		var rows []sqltypes.Row
		for pk := range ix.buckets[val.MapKey()] {
			if row, found := tbl.store.Get(pk); found {
				rows = append(rows, row)
			}
		}
		return rows, true, nil
	}
	return nil, false, nil
}

// equalityOn scans the conjuncts of where for `col = literal` (or
// parameter) on the given table, returning the column index and value.
func (x *executor) equalityOn(where sqlparser.Expr, tbl *Table, alias string) (int, sqltypes.Value, bool) {
	switch e := where.(type) {
	case *sqlparser.LogicalExpr:
		if e.Op != sqlparser.LogicAnd {
			return 0, sqltypes.Null, false
		}
		if c, v, ok := x.equalityOn(e.Left, tbl, alias); ok {
			return c, v, ok
		}
		return x.equalityOn(e.Right, tbl, alias)
	case *sqlparser.ComparisonExpr:
		if e.Op != sqltypes.CmpEQ {
			return 0, sqltypes.Null, false
		}
		if c, v, ok := x.colConstPair(e.Left, e.Right, tbl, alias); ok {
			return c, v, ok
		}
		return x.colConstPair(e.Right, e.Left, tbl, alias)
	default:
		return 0, sqltypes.Null, false
	}
}

func (x *executor) colConstPair(colSide, constSide sqlparser.Expr, tbl *Table, alias string) (int, sqltypes.Value, bool) {
	cr, ok := colSide.(*sqlparser.ColumnRef)
	if !ok {
		return 0, sqltypes.Null, false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
		return 0, sqltypes.Null, false
	}
	col := tbl.schema.ColumnIndex(cr.Name)
	if col < 0 {
		return 0, sqltypes.Null, false
	}
	switch c := constSide.(type) {
	case *sqlparser.Literal:
		return col, c.Val, true
	case *sqlparser.Param:
		if c.Index < len(x.args) {
			return col, x.args[c.Index], true
		}
	}
	return 0, sqltypes.Null, false
}

// evalJoin materializes a JOIN tree, using an index nested-loop join
// when the right side is an indexed base table, a hash join when the ON
// clause contains equi-conjuncts separable into left/right sides, and a
// plain nested loop otherwise.
func (x *executor) evalJoin(j *sqlparser.JoinExpr) (*source, error) {
	left, err := x.evalTableExpr(j.Left, nil)
	if err != nil {
		return nil, err
	}
	if out, ok, err := x.tryIndexJoin(j, left); err != nil {
		return nil, err
	} else if ok {
		return out, nil
	}
	right, err := x.evalTableExpr(j.Right, nil)
	if err != nil {
		return nil, err
	}
	if j.Type == sqlparser.JoinCross {
		out := crossJoin(left, right)
		x.work.joined += int64(len(out.rows))
		return out, nil
	}

	leftKeys, rightKeys, residual := splitEquiConjuncts(j.On, left.frame, right.frame)
	outFrame := concatFrames(left.frame, right.frame)
	out := &source{frame: outFrame}
	nullsRight := make(sqltypes.Row, right.frame.width)
	joined := int64(0)

	if len(leftKeys) > 0 {
		// Hash join: build on right, probe from left. Distinct key rows
		// get dense bucket ids; buildRows holds each bucket's rows.
		rightProgs := make([]program, len(rightKeys))
		for i, ke := range rightKeys {
			rightProgs[i] = x.prog(ke, right.frame)
		}
		var build *rowIndex
		var buildRows [][]sqltypes.Row
		if x.parallelOK(len(right.rows)) {
			var err error
			build, buildRows, err = x.parBuildJoin(rightProgs, right)
			if err != nil {
				return nil, err
			}
		} else {
			build = x.newRowIndex(len(right.rows))
			renv := &evalEnv{frame: right.frame, x: x}
			kvals := make(sqltypes.Row, len(rightKeys))
			for _, rb := range right.rows {
				renv.row = rb
				null := false
				for i, p := range rightProgs {
					v, err := p(renv)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						null = true
						break
					}
					kvals[i] = v
				}
				if null {
					continue // NULL keys never match
				}
				id, isNew := build.bucket(kvals, false)
				if isNew {
					buildRows = append(buildRows, nil)
				}
				buildRows[id] = append(buildRows[id], rb)
			}
		}
		leftProgs := make([]program, len(leftKeys))
		for i, ke := range leftKeys {
			leftProgs[i] = x.prog(ke, left.frame)
		}
		hj := &hashJoinProbe{
			joinType:   j.Type,
			leftFrame:  left.frame,
			outFrame:   outFrame,
			leftKeys:   leftKeys,
			leftProgs:  leftProgs,
			resProg:    x.residualProg(residual, outFrame),
			build:      build,
			buildRows:  buildRows,
			nullsRight: nullsRight,
		}
		vp := x.vecJoinPlan(j.On, leftKeys, left.frame)
		if x.parallelOK(len(left.rows)) {
			rows, jn, err := x.parProbeJoin(hj, vp, left)
			if err != nil {
				return nil, err
			}
			out.rows = rows
			// The per-row join cost was charged (and slept) inside the
			// parallel region; only the engine-wide stat remains.
			x.eng.stats.RowsJoined.Add(jn)
			return out, nil
		}
		rows, jn, err := hj.probeSlice(x, vp, left.rows)
		if err != nil {
			return nil, err
		}
		out.rows = rows
		joined = jn
	} else {
		// Nested loop.
		onProg := x.prog(j.On, outFrame)
		cenv := &evalEnv{frame: outFrame, x: x}
		combined := make(sqltypes.Row, outFrame.width)
		for _, ra := range left.rows {
			matched := false
			for _, rb := range right.rows {
				joined++
				copy(combined, ra)
				copy(combined[len(ra):], rb)
				cenv.row = combined
				v, err := onProg(cenv)
				if err != nil {
					return nil, err
				}
				if v.IsTrue() {
					matched = true
					row := make(sqltypes.Row, 0, len(ra)+len(rb))
					row = append(row, ra...)
					row = append(row, rb...)
					out.rows = append(out.rows, row)
				}
			}
			if !matched && j.Type == sqlparser.JoinLeft {
				row := make(sqltypes.Row, 0, len(ra)+len(nullsRight))
				row = append(row, ra...)
				row = append(row, nullsRight...)
				out.rows = append(out.rows, row)
			}
		}
	}
	x.work.joined += joined
	x.eng.stats.RowsJoined.Add(joined)
	return out, nil
}

// hashJoinProbe carries the probe phase's shared, effectively-immutable
// state: the build index and its buckets, the compiled key and residual
// programs, and the join shape. probeSlice runs the probe over a slice
// of left rows with per-call environments and buffers, so the serial
// probe and every parallel morsel share one code path (and, per morsel,
// identical window boundaries — morselRows is a multiple of
// vec.BatchSize).
type hashJoinProbe struct {
	joinType   sqlparser.JoinType
	leftFrame  *frame
	outFrame   *frame
	leftKeys   []sqlparser.Expr
	leftProgs  []program
	resProg    program
	build      *rowIndex
	buildRows  [][]sqltypes.Row
	nullsRight sqltypes.Row
}

// probeSlice probes the build index with rows, returning the joined
// output in probe-row order and the matched-pair count. x is the
// executor the probe's environments evaluate under (a morsel's child
// executor on the parallel path). vp, when non-nil, enables the batch
// key-evaluation probe; errors fall back to the row probe per window,
// reproducing the interpreter's error ordering.
func (hj *hashJoinProbe) probeSlice(x *executor, vp *vplan, rows []sqltypes.Row) ([]sqltypes.Row, int64, error) {
	var out []sqltypes.Row
	joined := int64(0)
	cenv := &evalEnv{frame: hj.outFrame, x: x}
	combined := make(sqltypes.Row, hj.outFrame.width)
	appendJoined := func(ra, rb sqltypes.Row) {
		row := make(sqltypes.Row, 0, len(ra)+len(rb))
		row = append(row, ra...)
		row = append(row, rb...)
		out = append(out, row)
	}
	// probeRow emits the join output of one probe row against its
	// matching bucket (nil for NULL keys or no match): the residual
	// filter, the inner emission, and the left-join NULL padding. Both
	// the row and the batch probe paths funnel through it.
	probeRow := func(ra sqltypes.Row, bucket []sqltypes.Row) error {
		matched := false
		for _, rb := range bucket {
			joined++
			if hj.resProg != nil {
				copy(combined, ra)
				copy(combined[len(ra):], rb)
				cenv.row = combined
				v, err := hj.resProg(cenv)
				if err != nil {
					return err
				}
				if !v.IsTrue() {
					continue
				}
			}
			matched = true
			appendJoined(ra, rb)
		}
		if !matched && hj.joinType == sqlparser.JoinLeft {
			appendJoined(ra, hj.nullsRight)
		}
		return nil
	}
	// rowProbe is the row-at-a-time probe over a slice of left rows:
	// the whole input when vectorization is off, one batch window when
	// a batch kernel errored and the window re-runs to reproduce the
	// interpreter's error ordering.
	rowProbe := func(rows []sqltypes.Row) error {
		lenv := &evalEnv{frame: hj.leftFrame, x: x}
		lvals := make(sqltypes.Row, len(hj.leftKeys))
		for _, ra := range rows {
			lenv.row = ra
			null := false
			for i, p := range hj.leftProgs {
				v, err := p(lenv)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				lvals[i] = v
			}
			var bucket []sqltypes.Row
			if !null {
				if id := hj.build.lookup(lvals); id >= 0 {
					bucket = hj.buildRows[id]
				}
			}
			if err := probeRow(ra, bucket); err != nil {
				return err
			}
		}
		return nil
	}
	if vp != nil {
		// Batch probe: evaluate the key columns per window, drop
		// NULL-keyed rows from the selection key-by-key (NULL keys
		// never match, and later key expressions must not run on them,
		// matching the row path's early break), hash the surviving
		// rows column-wise, then probe the build index with the
		// precomputed hashes in row order.
		vx := x.newVecExec(hj.leftFrame, rows)
		keyVecs := make([]*vec.Vec, len(hj.leftKeys))
		lvals := make(sqltypes.Row, len(hj.leftKeys))
		hash := make([]uint64, vec.BatchSize)
		isKeyed := make([]bool, vec.BatchSize)
		var selBuf [2][]int
		cur := vec.NewCursor(len(rows))
		for {
			lo, hi, ok := cur.Next()
			if !ok {
				break
			}
			vx.window(lo, hi)
			cursel := vx.selAll
			failed := false
			for k := range keyVecs {
				v, err := vp.nodes[k].eval(vx, cursel)
				if err != nil {
					failed = true
					break
				}
				keyVecs[k] = v
				nb := selBuf[k&1][:0]
				for _, i := range cursel {
					if !v.IsNullAt(i) {
						nb = append(nb, i)
					}
				}
				selBuf[k&1] = nb
				cursel = nb
			}
			if failed {
				x.eng.vecFallbacks.Add(1)
				if err := rowProbe(vx.win); err != nil {
					return nil, 0, err
				}
				continue
			}
			for i := 0; i < vx.n; i++ {
				isKeyed[i] = false
			}
			for _, i := range cursel {
				isKeyed[i] = true
			}
			vec.HashInit(hash[:vx.n], cursel)
			for _, v := range keyVecs {
				v.HashMix(hash[:vx.n], cursel)
			}
			for i := 0; i < vx.n; i++ {
				var bucket []sqltypes.Row
				if isKeyed[i] {
					for k, v := range keyVecs {
						lvals[k] = v.Get(i)
					}
					if id := hj.build.lookupPre(hash[i], lvals); id >= 0 {
						bucket = hj.buildRows[id]
					}
				}
				if err := probeRow(vx.win[i], bucket); err != nil {
					return nil, 0, err
				}
			}
		}
	} else if err := rowProbe(rows); err != nil {
		return nil, 0, err
	}
	return out, joined, nil
}

// splitEquiConjuncts decomposes an ON clause into hash-joinable key
// pairs (left expr, right expr) and the residual conjuncts to evaluate
// on the combined row (as a left-associative AND chain; see
// residualProg). Returning the original conjunct nodes instead of a
// synthesized AND tree keeps them compilable through the per-node
// program cache.
func splitEquiConjuncts(on sqlparser.Expr, lf, rf *frame) (leftKeys, rightKeys, residual []sqlparser.Expr) {
	var conjuncts []sqlparser.Expr
	var flatten func(e sqlparser.Expr)
	flatten = func(e sqlparser.Expr) {
		if le, ok := e.(*sqlparser.LogicalExpr); ok && le.Op == sqlparser.LogicAnd {
			flatten(le.Left)
			flatten(le.Right)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(on)

	for _, c := range conjuncts {
		cmp, ok := c.(*sqlparser.ComparisonExpr)
		if ok && cmp.Op == sqltypes.CmpEQ {
			ls, rs := exprSide(cmp.Left, lf, rf), exprSide(cmp.Right, lf, rf)
			switch {
			case ls == sideLeft && rs == sideRight:
				leftKeys = append(leftKeys, cmp.Left)
				rightKeys = append(rightKeys, cmp.Right)
				continue
			case ls == sideRight && rs == sideLeft:
				leftKeys = append(leftKeys, cmp.Right)
				rightKeys = append(rightKeys, cmp.Left)
				continue
			}
		}
		residual = append(residual, c)
	}
	return leftKeys, rightKeys, residual
}

type side int

const (
	sideNone  side = iota // no column references (constant)
	sideLeft              // references only the left frame
	sideRight             // references only the right frame
	sideBoth              // mixed or unresolvable
)

// exprSide classifies which side(s) of a join an expression references.
func exprSide(e sqlparser.Expr, lf, rf *frame) side {
	result := sideNone
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		cr, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return true
		}
		inL := lf.hasColumn(cr.Table, cr.Name)
		inR := rf.hasColumn(cr.Table, cr.Name)
		var s side
		switch {
		case inL && inR:
			s = sideBoth // ambiguous
		case inL:
			s = sideLeft
		case inR:
			s = sideRight
		default:
			s = sideBoth // unresolvable here; be conservative
		}
		switch {
		case result == sideNone:
			result = s
		case result != s:
			result = sideBoth
		}
		return true
	})
	return result
}

// collectTables gathers every base table a statement will read,
// expanding views and skipping plain-CTE names.
func (x *executor) collectTables(st sqlparser.Statement) ([]*Table, error) {
	seen := make(map[string]*Table)
	local := make(map[string]bool)
	var fromBody func(b sqlparser.SelectBody) error
	var fromExpr func(e sqlparser.Expr) error

	addName := func(name string) error {
		lc := strings.ToLower(name)
		if local[lc] {
			return nil
		}
		if _, ok := seen[lc]; ok {
			return nil
		}
		if v, ok := x.eng.lookupView(name); ok {
			// Guard against self-referential views.
			local[lc] = true
			err := fromBody(v.body)
			local[lc] = false
			return err
		}
		if t, ok := x.eng.lookupTable(name); ok {
			seen[lc] = t
		}
		// Unknown names error later, during evaluation, with better
		// context.
		return nil
	}

	fromExpr = func(e sqlparser.Expr) error {
		var innerErr error
		sqlparser.WalkExpr(e, func(sub sqlparser.Expr) bool {
			switch t := sub.(type) {
			case *sqlparser.Subquery:
				if err := fromBody(t.Body); err != nil {
					innerErr = err
				}
				return false
			case *sqlparser.ExistsExpr:
				if err := fromBody(t.Body); err != nil {
					innerErr = err
				}
				return false
			case *sqlparser.InExpr:
				if t.Sub != nil {
					if err := fromBody(t.Sub); err != nil {
						innerErr = err
					}
				}
				return true
			}
			return true
		})
		return innerErr
	}

	fromBody = func(b sqlparser.SelectBody) error {
		switch s := b.(type) {
		case *sqlparser.Select:
			var err error
			sqlparser.WalkTableExprs(s, func(te sqlparser.TableExpr) bool {
				if tn, ok := te.(*sqlparser.TableName); ok {
					if e := addName(tn.Name); e != nil {
						err = e
						return false
					}
				}
				if je, ok := te.(*sqlparser.JoinExpr); ok && je.On != nil {
					if e := fromExpr(je.On); e != nil {
						err = e
						return false
					}
				}
				return true
			})
			if err != nil {
				return err
			}
			for _, it := range s.Items {
				if it.Expr != nil {
					if err := fromExpr(it.Expr); err != nil {
						return err
					}
				}
			}
			for _, e := range []sqlparser.Expr{s.Where, s.Having} {
				if e != nil {
					if err := fromExpr(e); err != nil {
						return err
					}
				}
			}
			return nil
		case *sqlparser.SetOp:
			if err := fromBody(s.Left); err != nil {
				return err
			}
			return fromBody(s.Right)
		case *sqlparser.Values:
			return nil
		case nil:
			return nil
		default:
			return nil
		}
	}

	switch s := st.(type) {
	case *sqlparser.SelectStmt:
		for _, cte := range s.With {
			if err := fromBody(cte.Body); err != nil {
				return nil, err
			}
			local[strings.ToLower(cte.Name)] = true
		}
		if err := fromBody(s.Body); err != nil {
			return nil, err
		}
	case *sqlparser.InsertStmt:
		if err := fromBody(s.Source); err != nil {
			return nil, err
		}
	case *sqlparser.UpdateStmt:
		for _, te := range s.From {
			if tn, ok := te.(*sqlparser.TableName); ok {
				if err := addName(tn.Name); err != nil {
					return nil, err
				}
			}
			if sq, ok := te.(*sqlparser.SubqueryTable); ok {
				if err := fromBody(sq.Body); err != nil {
					return nil, err
				}
			}
			if je, ok := te.(*sqlparser.JoinExpr); ok {
				var err error
				walkJoin(je, func(tn *sqlparser.TableName) {
					if e := addName(tn.Name); e != nil {
						err = e
					}
				})
				if err != nil {
					return nil, err
				}
			}
		}
		for _, a := range s.Sets {
			if err := fromExpr(a.Value); err != nil {
				return nil, err
			}
		}
		if s.Where != nil {
			if err := fromExpr(s.Where); err != nil {
				return nil, err
			}
		}
	case *sqlparser.DeleteStmt:
		if s.Where != nil {
			if err := fromExpr(s.Where); err != nil {
				return nil, err
			}
		}
	}

	out := make([]*Table, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	return out, nil
}

func walkJoin(je *sqlparser.JoinExpr, fn func(*sqlparser.TableName)) {
	for _, side := range []sqlparser.TableExpr{je.Left, je.Right} {
		switch t := side.(type) {
		case *sqlparser.TableName:
			fn(t)
		case *sqlparser.JoinExpr:
			walkJoin(t, fn)
		}
	}
}

// tryIndexJoin runs an index nested-loop join when the right side is a
// base table whose single equi-join column is its primary key or carries
// a hash index: each left row becomes a point lookup instead of a scan.
// This is the access path SQLoop's materialized-join index exists for
// (§V-C: "indexes on all tables ensure that unnecessary scans will be
// avoided").
func (x *executor) tryIndexJoin(j *sqlparser.JoinExpr, left *source) (*source, bool, error) {
	if j.Type == sqlparser.JoinCross {
		return nil, false, nil
	}
	tn, ok := j.Right.(*sqlparser.TableName)
	if !ok {
		return nil, false, nil
	}
	// CTEs and views shadow tables; only real base tables have indexes.
	if _, isCTE := x.ctes[strings.ToLower(tn.Name)]; isCTE {
		return nil, false, nil
	}
	if _, isView := x.eng.lookupView(tn.Name); isView {
		return nil, false, nil
	}
	tbl, ok := x.eng.lookupTable(tn.Name)
	if !ok {
		return nil, false, nil
	}
	alias := tn.Alias
	if alias == "" {
		alias = tn.Name
	}
	rightFrame := &frame{}
	rightFrame.addRel(alias, tbl.schema.Names())

	leftKeys, rightKeys, residual := splitEquiConjuncts(j.On, left.frame, rightFrame)
	if len(leftKeys) != 1 {
		return nil, false, nil
	}
	rc, ok := rightKeys[0].(*sqlparser.ColumnRef)
	if !ok {
		return nil, false, nil
	}
	col := tbl.schema.ColumnIndex(rc.Name)
	if col < 0 {
		return nil, false, nil
	}
	// Locate the access path: primary key or a hash index on the column.
	var ix *hashIndex
	if !(tbl.pkCol >= 0 && col == tbl.pkCol) {
		for _, cand := range tbl.indexes {
			if cand.col == col {
				ix = cand
				break
			}
		}
		if ix == nil {
			return nil, false, nil
		}
	}

	outFrame := concatFrames(left.frame, rightFrame)
	out := &source{frame: outFrame}
	nullsRight := make(sqltypes.Row, rightFrame.width)
	keyProg := x.prog(leftKeys[0], left.frame)
	resProg := x.residualProg(residual, outFrame)
	lenv := &evalEnv{frame: left.frame, x: x}
	cenv := &evalEnv{frame: outFrame, x: x}
	combined := make(sqltypes.Row, outFrame.width)
	joined := int64(0)

	for _, ra := range left.rows {
		lenv.row = ra
		kv, err := keyProg(lenv)
		if err != nil {
			return nil, false, err
		}
		matched := false
		if !kv.IsNull() {
			var candidates []sqltypes.Row
			if ix == nil {
				if row, found := tbl.store.Get(kv.MapKey()); found {
					candidates = []sqltypes.Row{row}
				}
			} else {
				for pk := range ix.buckets[kv.MapKey()] {
					if row, found := tbl.store.Get(pk); found {
						candidates = append(candidates, row)
					}
				}
			}
			for _, rb := range candidates {
				joined++
				if resProg != nil {
					copy(combined, ra)
					copy(combined[len(ra):], rb)
					cenv.row = combined
					v, err := resProg(cenv)
					if err != nil {
						return nil, false, err
					}
					if !v.IsTrue() {
						continue
					}
				}
				matched = true
				row := make(sqltypes.Row, 0, len(ra)+len(rb))
				row = append(row, ra...)
				row = append(row, rb...)
				out.rows = append(out.rows, row)
			}
		}
		if !matched && j.Type == sqlparser.JoinLeft {
			row := make(sqltypes.Row, 0, len(ra)+len(nullsRight))
			row = append(row, ra...)
			row = append(row, nullsRight...)
			out.rows = append(out.rows, row)
		}
	}
	x.work.joined += joined
	x.work.scanned += int64(len(left.rows)) // one lookup per probe
	x.eng.stats.RowsJoined.Add(joined)
	return out, true, nil
}
