package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sqloop/internal/sqltypes"
)

// newCompileTestPair returns two sessions over identically-loaded
// engines, one with the expression compiler on and one with it off.
func newCompileTestPair(t *testing.T, load func(t *testing.T, s *Session)) (compiled, interp *Session) {
	t.Helper()
	compiled = New(Config{}).NewSession()
	interp = New(Config{DisableExprCompile: true}).NewSession()
	load(t, compiled)
	load(t, interp)
	return compiled, interp
}

// renderResult formats a result so comparison is bit-exact: column
// names, affected count, and every value with its Go type (so 2 and
// 2.0 render differently, as do NULL and empty string).
func renderResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cols=%v affected=%d\n", res.Columns, res.RowsAffected)
	for _, row := range res.Rows {
		for _, v := range row {
			gv := v.GoValue()
			fmt.Fprintf(&b, "%T:%v|", gv, gv)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func loadCompileCorpus(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE nums (id BIGINT PRIMARY KEY, a BIGINT, f DOUBLE, name TEXT, flag BOOLEAN)`)
	for i := 1; i <= 40; i++ {
		name := fmt.Sprintf("row_%d", i)
		if i%7 == 0 {
			mustExec(t, s, `INSERT INTO nums VALUES (?, NULL, NULL, NULL, NULL)`, sqltypes.NewInt(int64(i)))
			continue
		}
		mustExec(t, s, `INSERT INTO nums VALUES (?, ?, ?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%9)),
			sqltypes.NewFloat(float64(i)*0.5), sqltypes.NewString(name),
			sqltypes.NewBool(i%2 == 0))
	}
	// Rows that stress key hashing: 2 vs 2.0 group keys, NaN floats,
	// negative zero, infinities.
	mustExec(t, s, `CREATE TABLE mix (k DOUBLE, v BIGINT)`)
	for i, k := range []float64{2.0, 2.5, math.NaN(), math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0.0} {
		mustExec(t, s, `INSERT INTO mix VALUES (?, ?)`, sqltypes.NewFloat(k), sqltypes.NewInt(int64(i+1)))
	}
	mustExec(t, s, `CREATE TABLE other (a BIGINT, label TEXT)`)
	mustExec(t, s, `INSERT INTO other VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, 'four'), (NULL, 'none')`)
}

// TestCompiledVsInterpretedEquivalence runs a corpus covering every
// compiled operator against an interpreter-only engine and requires
// bit-identical results.
func TestCompiledVsInterpretedEquivalence(t *testing.T) {
	corpus := []string{
		// Filters: arithmetic, comparison, logic, NULL handling.
		`SELECT id, a FROM nums WHERE a * 2 + 1 > 7 ORDER BY id`,
		`SELECT id FROM nums WHERE a IS NULL ORDER BY id`,
		`SELECT id FROM nums WHERE NOT (flag AND a > 3) ORDER BY id`,
		`SELECT id FROM nums WHERE a IN (1, 3, 5, NULL) ORDER BY id`,
		`SELECT id FROM nums WHERE a NOT IN (1, 3) ORDER BY id`,
		`SELECT id FROM nums WHERE f BETWEEN 3.0 AND 12.5 ORDER BY id`,
		// Projections: CASE, functions, casts, constant folding.
		`SELECT id, CASE WHEN a > 5 THEN 'hi' WHEN a IS NULL THEN 'null' ELSE 'lo' END FROM nums ORDER BY id`,
		`SELECT id, COALESCE(a, -1), ABS(0 - f), UPPER(name) FROM nums ORDER BY id`,
		`SELECT id, CAST(f AS BIGINT), CAST(a AS TEXT) FROM nums ORDER BY id`,
		`SELECT id, 1 + 2 * 3, 'x' || 'y' FROM nums WHERE id <= 3 ORDER BY id`,
		// LIKE in all shapes.
		`SELECT id FROM nums WHERE name LIKE 'row_1%' ORDER BY id`,
		`SELECT id FROM nums WHERE name LIKE '%_3' ORDER BY id`,
		`SELECT id FROM nums WHERE name LIKE 'row!_7' ESCAPE '!' ORDER BY id`,
		`SELECT id FROM nums WHERE name LIKE '%ow%2%' ORDER BY id`,
		`SELECT id FROM nums WHERE name NOT LIKE 'row_1%' ORDER BY id`,
		// GROUP BY / HAVING / aggregates, including NULL keys and
		// expression keys.
		`SELECT a, COUNT(*), SUM(f) FROM nums GROUP BY a ORDER BY 1`,
		`SELECT a % 3, MIN(f), MAX(f), AVG(f) FROM nums WHERE a IS NOT NULL GROUP BY a % 3 ORDER BY 1`,
		`SELECT a, COUNT(*) FROM nums GROUP BY a HAVING COUNT(*) > 4 ORDER BY a`,
		`SELECT flag, COUNT(DISTINCT a) FROM nums GROUP BY flag ORDER BY 1`,
		// Hash-sensitive keys: NaN, ±0, 2 vs 2.0, infinities.
		`SELECT k, COUNT(*), SUM(v) FROM mix GROUP BY k ORDER BY 2, 3`,
		`SELECT DISTINCT k FROM mix ORDER BY 1`,
		// DISTINCT and set operations.
		`SELECT DISTINCT a FROM nums ORDER BY 1`,
		`SELECT a FROM nums UNION SELECT a FROM other ORDER BY 1`,
		`SELECT a FROM nums INTERSECT SELECT a FROM other ORDER BY 1`,
		`SELECT a FROM nums EXCEPT SELECT a FROM other ORDER BY 1`,
		// Joins: hash equi-join, residual conjuncts, nested loop.
		`SELECT n.id, o.label FROM nums AS n JOIN other AS o ON n.a = o.a ORDER BY n.id, o.label`,
		`SELECT n.id, o.label FROM nums AS n JOIN other AS o ON n.a = o.a AND n.id > 10 ORDER BY n.id, o.label`,
		`SELECT n.id, o.label FROM nums AS n LEFT JOIN other AS o ON n.a = o.a ORDER BY n.id, o.label`,
		`SELECT n.id, o.label FROM nums AS n JOIN other AS o ON n.a < o.a WHERE n.id <= 5 ORDER BY n.id, o.label`,
		// ORDER BY: ordinals, aliases, expressions, DESC, multi-key.
		`SELECT id, a AS alias_a FROM nums ORDER BY alias_a, id`,
		`SELECT id, f FROM nums ORDER BY 2 DESC, 1`,
		`SELECT id FROM nums ORDER BY a * -1, id DESC`,
		// Subqueries stay on the interpreter path but must agree too.
		`SELECT id FROM nums WHERE a = (SELECT MIN(a) FROM nums) ORDER BY id`,
		`SELECT id FROM nums WHERE EXISTS (SELECT 1 FROM other WHERE other.a = nums.a) ORDER BY id`,
	}
	compiled, interp := newCompileTestPair(t, loadCompileCorpus)
	for _, q := range corpus {
		got, err1 := compiled.Exec(q)
		want, err2 := interp.Exec(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s:\ncompiled err = %v\ninterp err = %v", q, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("%s: error mismatch:\ncompiled: %v\ninterp: %v", q, err1, err2)
			}
			continue
		}
		if g, w := renderResult(got), renderResult(want); g != w {
			t.Fatalf("%s:\ncompiled:\n%s\ninterp:\n%s", q, g, w)
		}
	}
}

// TestCompiledVsInterpretedDML checks UPDATE/DELETE (including the
// UPDATE ... FROM hash-join path) change the same rows either way.
func TestCompiledVsInterpretedDML(t *testing.T) {
	steps := []string{
		`UPDATE nums SET f = f * 2 WHERE a % 2 = 0`,
		`UPDATE nums SET a = o.a + 100 FROM other AS o WHERE nums.a = o.a AND nums.id < 20`,
		`UPDATE nums SET name = 'neg' FROM other AS o WHERE nums.id > o.a + 30`,
		`DELETE FROM nums WHERE f > 30.0`,
		`DELETE FROM nums WHERE a IS NULL`,
	}
	compiled, interp := newCompileTestPair(t, loadCompileCorpus)
	for _, q := range steps {
		got, err1 := compiled.Exec(q)
		want, err2 := interp.Exec(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: compiled err %v, interp err %v", q, err1, err2)
		}
		if got.RowsAffected != want.RowsAffected {
			t.Fatalf("%s: affected %d (compiled) vs %d (interp)", q, got.RowsAffected, want.RowsAffected)
		}
		const check = `SELECT id, a, f, name, flag FROM nums ORDER BY id`
		g := renderResult(mustExec(t, compiled, check))
		w := renderResult(mustExec(t, interp, check))
		if g != w {
			t.Fatalf("after %s: table state diverged:\ncompiled:\n%s\ninterp:\n%s", q, g, w)
		}
	}
}

// TestCompileErrorTimingMatchesInterpreter: lowering must never report
// errors earlier than the interpreter would. A WHERE referencing an
// unknown function or dividing by zero fails identically, and a DML
// WHERE over zero rows fails (or not) exactly as before.
func TestCompileErrorTimingMatchesInterpreter(t *testing.T) {
	queries := []string{
		`SELECT id FROM nums WHERE a / 0 > 1`,
		`SELECT 1 / 0 FROM nums`,
		`SELECT NOSUCHFUNC(a) FROM nums`,
		`SELECT id FROM nums WHERE ? > 1`, // missing bind parameter
	}
	compiled, interp := newCompileTestPair(t, loadCompileCorpus)
	for _, q := range queries {
		_, err1 := compiled.Exec(q)
		_, err2 := interp.Exec(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s:\ncompiled err = %v\ninterp err = %v", q, err1, err2)
		}
		if err1 != nil && err1.Error() != err2.Error() {
			t.Fatalf("%s: error text mismatch:\ncompiled: %v\ninterp: %v", q, err1, err2)
		}
	}
	// DML on an empty table: an invalid expression must not fail at
	// lowering time when no row is ever evaluated.
	for _, s := range []*Session{compiled, interp} {
		mustExec(t, s, `CREATE TABLE empty_t (x BIGINT)`)
		if _, err := s.Exec(`UPDATE empty_t SET x = 1 / 0 WHERE x / 0 = 1`); err != nil {
			t.Fatalf("zero-row UPDATE evaluated its expressions: %v", err)
		}
		if _, err := s.Exec(`DELETE FROM empty_t WHERE x / 0 = 1`); err != nil {
			t.Fatalf("zero-row DELETE evaluated its WHERE: %v", err)
		}
	}
}

// TestLikeLargeInput is the precompiled-LIKE regression test: matching
// against inputs far larger than the pattern must stay correct for
// every pattern shape the matcher splits into.
func TestLikeLargeInput(t *testing.T) {
	big := strings.Repeat("abcdefghij", 10_000) // 100 KB
	cases := []struct {
		pattern string
		want    bool
	}{
		{"%cdef%", true},
		{"%cdxf%", false},
		{"abcde%", true},
		{"bbcde%", false},
		{"%ghij", true},
		{"%ghia", false},
		{"%abc%hij%abc%", true},
		{"a%j", true},
		{"a_cdefghij%", true},
		{"_" + strings.Repeat("%", 5) + "j", true},
		{big, true},         // exact, no wildcards
		{big[:1000], false}, // exact prefix only
		{"%" + big[:100] + "%", true},
	}
	compiled, interp := newCompileTestPair(t, func(t *testing.T, s *Session) {
		mustExec(t, s, `CREATE TABLE big (s TEXT)`)
		mustExec(t, s, `INSERT INTO big VALUES (?)`, sqltypes.NewString(big))
	})
	for _, tc := range cases {
		for name, s := range map[string]*Session{"compiled": compiled, "interp": interp} {
			res, err := s.Exec(`SELECT COUNT(*) FROM big WHERE s LIKE ?`, sqltypes.NewString(tc.pattern))
			if err != nil {
				t.Fatalf("%s LIKE %.40q: %v", name, tc.pattern, err)
			}
			got := res.Rows[0][0].Int() == 1
			if got != tc.want {
				t.Errorf("%s: LIKE %.40q = %v, want %v", name, tc.pattern, got, tc.want)
			}
		}
	}
}

// TestPreparedStatementsNeverRelower: after the first execution of a
// prepared statement, steady-state rounds must reuse cached programs
// instead of lowering expressions again.
func TestPreparedStatementsNeverRelower(t *testing.T) {
	eng := New(Config{})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT, b BIGINT)`)
	for i := 0; i < 50; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%5)))
	}
	h, err := s.Prepare(`SELECT b, COUNT(*) FROM t WHERE a % 3 = ? GROUP BY b ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	arg := []sqltypes.Value{sqltypes.NewInt(1)}
	if _, err := s.ExecPrepared(h, arg); err != nil {
		t.Fatal(err)
	}
	compilesAfterFirst, _ := eng.ExprCompileStats()
	for i := 0; i < 20; i++ {
		if _, err := s.ExecPrepared(h, arg); err != nil {
			t.Fatal(err)
		}
	}
	compiles, hits := eng.ExprCompileStats()
	if compiles != compilesAfterFirst {
		t.Errorf("steady-state executions re-lowered expressions: %d compiles after first run, %d after 20 more",
			compilesAfterFirst, compiles)
	}
	if hits == 0 {
		t.Errorf("expected program cache hits in steady state, got 0")
	}
}

// TestExprCompileDisabledCompilesNothing: the A/B switch must keep the
// engine on the pure interpreter.
func TestExprCompileDisabledCompilesNothing(t *testing.T) {
	eng := New(Config{DisableExprCompile: true})
	s := eng.NewSession()
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, s, `SELECT a * 2 FROM t WHERE a > 1 ORDER BY a`)
	if compiles, _ := eng.ExprCompileStats(); compiles != 0 {
		t.Errorf("DisableExprCompile engine compiled %d programs", compiles)
	}
}

// --- micro-benchmarks -------------------------------------------------

// benchSession builds a session with the benchmark tables loaded.
func benchSession(b *testing.B, disableCompile bool) *Session {
	b.Helper()
	s := New(Config{DisableExprCompile: disableCompile}).NewSession()
	exec := func(sql string, args ...sqltypes.Value) {
		if _, err := s.Exec(sql, args...); err != nil {
			b.Fatalf("Exec(%q): %v", sql, err)
		}
	}
	exec(`CREATE TABLE t (a BIGINT, b BIGINT)`)
	exec(`CREATE TABLE u (a BIGINT, b BIGINT)`)
	for i := 0; i < 1000; i++ {
		exec(`INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64((i*37)%1000)))
	}
	for i := 0; i < 250; i++ {
		exec(`INSERT INTO u VALUES (?, ?)`, sqltypes.NewInt(int64(i*3)), sqltypes.NewInt(int64(i)))
	}
	return s
}

// benchStatement runs one prepared statement under both engines as
// interp/compiled sub-benchmarks.
func benchStatement(b *testing.B, sql string) {
	for name, disable := range map[string]bool{"interp": true, "compiled": false} {
		b.Run(name, func(b *testing.B) {
			s := benchSession(b, disable)
			h, err := s.Prepare(sql)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.ExecPrepared(h, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecPrepared(h, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFilterEval(b *testing.B) {
	benchStatement(b, `SELECT a FROM t WHERE ABS(b) < 500 AND COALESCE(a, 0) % 7 = 1`)
}

func BenchmarkGroupByHash(b *testing.B) {
	benchStatement(b, `SELECT a % 10, COUNT(*), SUM(b) FROM t GROUP BY a % 10`)
}

func BenchmarkHashJoinProbe(b *testing.B) {
	benchStatement(b, `SELECT COUNT(*) FROM t JOIN u ON t.a = u.a WHERE u.b >= 0`)
}
